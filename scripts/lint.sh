#!/usr/bin/env bash
# Static analysis gate for src/, tests/, and bench/ (also wired as the
# `lint` CMake target).
#
# Preferred backend: clang-tidy over a compile_commands.json, using the
# checks in .clang-tidy (bugprone-*, concurrency-*, performance-*).  When
# clang-tidy is not installed (the reference container ships GCC only) the
# script falls back to a strict warnings-as-errors GCC build of the library,
# test, and bench targets, which still catches the bulk of the
# bugprone/performance classes the tidy profile targets.
#
# Usage: scripts/lint.sh [build-dir]
# Exits non-zero on any finding.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== lint: clang-tidy over src/ tests/ bench/ =="
  if [ ! -f "$build/compile_commands.json" ]; then
    cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t sources \
    < <(find "$repo/src" "$repo/tests" "$repo/bench" -name '*.cpp' | sort)
  clang-tidy -p "$build" --quiet --warnings-as-errors='*' "${sources[@]}"
  echo "lint: clang-tidy clean"
  exit 0
fi

echo "== lint: clang-tidy not found; strict GCC warnings build of src/ tests/ bench/ =="
lint_build="$repo/build-lint"
cmake -B "$lint_build" -S "$repo" \
  -DSRUMMA_WERROR=ON \
  -DSRUMMA_BUILD_TESTS=ON \
  -DSRUMMA_BUILD_BENCH=ON \
  -DSRUMMA_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-Wnon-virtual-dtor -Woverloaded-virtual -Wcast-align \
-Wpointer-arith -Wundef -Wwrite-strings -Wvla -Wformat=2 \
-Wimplicit-fallthrough=5 -Wlogical-op -Wduplicated-cond -Wduplicated-branches \
-Wconversion -Wsign-conversion" \
  >/dev/null
cmake --build "$lint_build" -j "$jobs"
echo "lint: strict GCC build clean"
