#!/usr/bin/env bash
# Tier-1 verification wrapper:
#   1. configure + build + full ctest suite (Release), and
#   2. an ASan/UBSan build of the library + kernel-verification harness,
#      running test_gemm_kernels under the sanitizers.
#
# Usage: scripts/check.sh [build-dir] [asan-build-dir]
# Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
asan_build="${2:-$repo/build-asan}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: configure + build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo
echo "== tier 1b: kernel harness under ASan/UBSan ($asan_build) =="
cmake -B "$asan_build" -S "$repo" \
  -DSRUMMA_SANITIZE=address,undefined \
  -DSRUMMA_BUILD_BENCH=OFF \
  -DSRUMMA_BUILD_EXAMPLES=OFF
cmake --build "$asan_build" -j "$jobs" --target test_gemm_kernels
ctest --test-dir "$asan_build" --output-on-failure -R '^test_gemm_kernels$'

echo
echo "check.sh: all green"
