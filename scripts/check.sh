#!/usr/bin/env bash
# Tier-1 verification wrapper (see docs/CHECKING.md for the full matrix):
#   1.  configure + build + full ctest suite (Release);
#   1b. an ASan/UBSan build of the library + kernel-verification harness,
#       running test_gemm_kernels under the sanitizers;
#   1c. the full suite again with the shadow-state RMA checker enabled
#       (SRUMMA_RMA_CHECK=1) — any diagnostic fails the run;
#   1d. the fault matrix (docs/FAULTS.md): the dedicated fault suites
#       (ctest label `faults`) in a clean environment, then the rest of
#       the suite with low-rate fail+delay injection and a raised retry
#       budget — every code path must survive transparent retries.
#       Corruption is only injected inside the labeled suites, which
#       verify and repair it; unsuspecting tests would (correctly) fail.
#   2.  a TSan build running the concurrency-heavy suites
#       (test_rma, test_runtime, test_srumma, test_rma_checker);
#   3.  static analysis via scripts/lint.sh.
#
# Usage: scripts/check.sh [build-dir] [asan-build-dir] [tsan-build-dir]
# Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
asan_build="${2:-$repo/build-asan}"
tsan_build="${3:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: configure + build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo
echo "== tier 1b: kernel harness under ASan/UBSan ($asan_build) =="
cmake -B "$asan_build" -S "$repo" \
  -DSRUMMA_SANITIZE=address,undefined \
  -DSRUMMA_BUILD_BENCH=OFF \
  -DSRUMMA_BUILD_EXAMPLES=OFF
cmake --build "$asan_build" -j "$jobs" --target test_gemm_kernels
ctest --test-dir "$asan_build" --output-on-failure -R '^test_gemm_kernels$'

echo
echo "== tier 1c: full suite with the RMA checker enabled ($build) =="
SRUMMA_RMA_CHECK=1 ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo
echo "== tier 1d: fault matrix (label 'faults', then injected full pass) =="
ctest --test-dir "$build" --output-on-failure -L faults
# Low-rate transient failures + stragglers across every other suite; the
# raised attempt budget makes retry exhaustion statistically impossible,
# so any failure here is a real retry-path bug.  The `faults` suites are
# excluded: they assert clean-environment baselines and inject their own.
SRUMMA_FAULT_FAIL_RATE=0.002 \
SRUMMA_FAULT_DELAY_RATE=0.002 \
SRUMMA_FAULT_MAX_ATTEMPTS=20 \
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -LE faults

echo
echo "== tier 2: concurrency suites under TSan ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" \
  -DSRUMMA_SANITIZE=thread \
  -DSRUMMA_BUILD_BENCH=OFF \
  -DSRUMMA_BUILD_EXAMPLES=OFF
cmake --build "$tsan_build" -j "$jobs" \
  --target test_rma --target test_runtime --target test_srumma \
  --target test_rma_checker
# halt_on_error: a data race must fail the suite, not just print.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ctest --test-dir "$tsan_build" --output-on-failure \
  -R '^(test_rma|test_runtime|test_srumma|test_rma_checker)$'

echo
echo "== tier 3: static analysis (scripts/lint.sh) =="
"$repo/scripts/lint.sh" "$build"

echo
echo "check.sh: all green"
