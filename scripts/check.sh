#!/usr/bin/env bash
# Tier-1 verification wrapper (see docs/CHECKING.md for the full matrix):
#   1.  configure + build + full ctest suite (Release);
#   1b. an ASan/UBSan build of the library + kernel-verification harness,
#       running test_gemm_kernels under the sanitizers;
#   1c. the full suite again with the shadow-state RMA checker enabled
#       (SRUMMA_RMA_CHECK=1) — any diagnostic fails the run;
#   1d. the fault matrix (docs/FAULTS.md): the dedicated fault suites
#       (ctest label `faults`) in a clean environment, then the rest of
#       the suite with low-rate fail+delay injection and a raised retry
#       budget — every code path must survive transparent retries.
#       Corruption is only injected inside the labeled suites, which
#       verify and repair it; unsuspecting tests would (correctly) fail.
#   1e. observability (docs/OBSERVABILITY.md): a small traced multiply
#       (SRUMMA_TRACE) plus a smoke bench-metrics run, validating both
#       emitted JSON documents (schema, matched async pairs, monotone
#       per-rank instant/counter timestamps);
#   1f. the cooperative block cache (docs/CACHE.md): the full suite with
#       SRUMMA_CACHE=1, then cache x RMA checker, then cache x fault
#       injection (faults-labeled suites excluded, as in 1d) — caching
#       must be invisible to every correctness, checker, and fault path;
#   1g. the dependency-driven task engine (docs/ENGINE.md): the
#       SRUMMA-executing suites with SRUMMA_ENGINE=1, so every multiply
#       runs out-of-order with intra-domain work stealing — C must stay
#       bitwise identical and the steal ledger must reconcile
#       (test_block_cache is excluded: its single-flight sharing test
#       pins the pipeline's fetch schedule, which the engine's
#       operand-slot dedup legitimately changes);
#   1h. the static plan analyzer (docs/ANALYSIS.md): srumma-analyze must
#       certify a sweep of clean configurations with zero findings, flag
#       all five seeded plan-mutation classes, and cross-validate the
#       dynamic RMA checker on journaled runs of both executors via the
#       happens-before race detector (--trace);
#   1i. permanent domain death (docs/FAULTS.md §7): every kill point x
#       executor through the SRUMMA_FAULT_KILL_* environment knobs under
#       the RMA checker — buddy replication + task adoption must recover
#       the exact result with zero checker diagnostics;
#   1j. the GEMM request plane (docs/SERVICE.md): the service suite under
#       the shadow-state RMA checker (every concurrent sub-team's epochs
#       verified independently), then under low-rate env fault injection
#       with a raised retry budget — scheduling decisions, batch packing,
#       and the bitwise-identity contract must survive both;
#   1k. the pooled execution harness (docs/HARNESS.md): a 1024-rank
#       pooled smoke run under a wall-clock budget, the pooled vs
#       thread-per-rank differential on a contention-free workload
#       (modeled results must match bitwise), and the static
#       buffer_bytes_peak bound re-asserted against a pooled-mode
#       multiply (bench_scale --check);
#   2.  a TSan build running the concurrency-heavy suites
#       (test_rma, test_runtime, test_srumma, test_rma_checker,
#       test_block_cache, test_engine, test_chaos, test_service,
#       test_harness_pool — the pooled fiber scheduler under TSan);
#   3.  static analysis via scripts/lint.sh.
#
# Usage: scripts/check.sh [build-dir] [asan-build-dir] [tsan-build-dir]
# Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
asan_build="${2:-$repo/build-asan}"
tsan_build="${3:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: configure + build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo
echo "== tier 1b: kernel harness under ASan/UBSan ($asan_build) =="
cmake -B "$asan_build" -S "$repo" \
  -DSRUMMA_SANITIZE=address,undefined \
  -DSRUMMA_BUILD_BENCH=OFF \
  -DSRUMMA_BUILD_EXAMPLES=OFF
cmake --build "$asan_build" -j "$jobs" --target test_gemm_kernels
ctest --test-dir "$asan_build" --output-on-failure -R '^test_gemm_kernels$'

echo
echo "== tier 1c: full suite with the RMA checker enabled ($build) =="
SRUMMA_RMA_CHECK=1 ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo
echo "== tier 1d: fault matrix (label 'faults', then injected full pass) =="
ctest --test-dir "$build" --output-on-failure -L faults
# Low-rate transient failures + stragglers across every other suite; the
# raised attempt budget makes retry exhaustion statistically impossible,
# so any failure here is a real retry-path bug.  The `faults` suites are
# excluded: they assert clean-environment baselines and inject their own.
SRUMMA_FAULT_FAIL_RATE=0.002 \
SRUMMA_FAULT_DELAY_RATE=0.002 \
SRUMMA_FAULT_MAX_ATTEMPTS=20 \
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -LE faults

echo
echo "== tier 1e: traced multiply + bench metrics, JSON validation =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SRUMMA_TRACE="$trace_dir/trace.json" \
  "$build/examples/quickstart" --n 96 --nodes 2 > /dev/null
SRUMMA_BENCH_SMOKE=1 SRUMMA_BENCH_JSON="$trace_dir/fig3.json" \
  "$build/bench/bench_fig3_pipeline" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "$trace_dir/trace.json" "$trace_dir/fig3.json" << 'EOF'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as f:
    trace = json.load(f)
assert trace["otherData"]["schema"] == "srumma-chrome-trace/1"
events = trace["traceEvents"]
assert events, "trace has no events"
last_ts = defaultdict(float)   # per (pid, tid) monotone instants/counters
open_async = defaultdict(dict)
spans = counters = 0
for e in events:
    ph = e["ph"]
    if ph == "M":
        continue
    key = (e["pid"], e["tid"])
    assert e["ts"] >= 0.0, e
    if ph == "X":
        assert e["dur"] >= 0.0, e
        spans += 1
    elif ph == "b":
        open_async[key][e["id"]] = e["ts"]
        spans += 1
    elif ph == "e":
        assert e["ts"] >= open_async[key].pop(e["id"]), e
    elif ph in ("i", "C"):
        # Recorded at the owning rank's clock: must never run backwards.
        assert e["ts"] >= last_ts[key] - 1e-9, e
        last_ts[key] = e["ts"]
        counters += ph == "C"
    else:
        raise AssertionError(f"unexpected phase {ph}")
assert not any(open_async.values()), "unmatched async begin events"
assert spans and counters, "expected both spans and counter samples"
print(f"{sys.argv[1]}: ok ({len(events)} events)")

with open(sys.argv[2]) as f:
    doc = json.load(f)
assert doc["schema"] == "srumma-bench-metrics/1"
assert doc["rows"] and all(r["metrics"] for r in doc["rows"])
for row in doc["rows"]:
    # fig3 rows embed the srumma-analyze static ceiling; the measured
    # peak crossing it would falsify the analyzer's resource-bound proof.
    bound = row["params"].get("buffer_bytes_peak_bound")
    peak = row["counters"].get("buffer_bytes_peak")
    assert bound is not None and peak is not None, \
        f"fig3/{row['label']}: missing static bound or runtime peak"
    assert peak <= bound, (
        f"fig3/{row['label']}: buffer_bytes_peak {peak} exceeds "
        f"static bound {bound}")
print(f"{sys.argv[2]}: ok ({len(doc['rows'])} rows, peaks under bounds)")
EOF
else
  echo "check.sh: python3 not found, skipping trace JSON validation"
fi

echo
echo "== tier 1f: cooperative block cache (on x checker x faults) =="
# The cache is off by default; these passes force it on across the whole
# suite.  Results must be bit-identical, the shadow-state checker must
# stay silent (cache reads register at the true remote origin), and the
# fault plane must interoperate (a failed single-flight fetch is re-armed
# by a waiter, never silently shared).
SRUMMA_CACHE=1 ctest --test-dir "$build" --output-on-failure -j "$jobs"
SRUMMA_CACHE=1 SRUMMA_RMA_CHECK=1 \
  ctest --test-dir "$build" --output-on-failure -j "$jobs"
SRUMMA_CACHE=1 \
SRUMMA_FAULT_FAIL_RATE=0.002 \
SRUMMA_FAULT_DELAY_RATE=0.002 \
SRUMMA_FAULT_MAX_ATTEMPTS=20 \
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -LE faults

echo
echo "== tier 1g: dependency-driven engine across the multiply suites =="
# Forces the engine executor (docs/ENGINE.md) through every suite that
# drives srumma_multiply.  Steal scheduling races are benign (C is
# bitwise-deterministic; only modeled timings move), so correctness,
# checker, fault and accounting assertions must all hold unchanged.
# test_block_cache asserts the pipeline's exact fetch schedule
# (single-flight share counts), which operand-slot dedup changes, so it
# stays a pipeline-only suite.
SRUMMA_ENGINE=1 ctest --test-dir "$build" --output-on-failure \
  -R '^(test_engine|test_srumma|test_task_plan|test_fault_recovery|test_integration|test_rma_checker)$'

echo
echo "== tier 1h: static plan analyzer + happens-before cross-check =="
analyze="$build/tools/srumma-analyze"
# Clean sweep: the analyzer must certify (exit 0, zero findings) one
# configuration per machine family the paper reports, covering both
# shared-memory flavors, tiling, and an oversubscribed SMP.
clean_configs=(
  "--machine testing --nodes 2 --rpn 2 --m 96 --n 96 --k 96"
  "--machine testing --nodes 2 --rpn 2 --m 96 --n 96 --k 96 --flavor copy"
  "--machine cluster --nodes 4 --m 192 --n 192 --k 192 --c-chunk 48"
  "--machine sp --nodes 2 --m 128 --n 128 --k 128"
  "--machine x1 --nodes 2 --flavor copy --m 96 --n 96 --k 96"
  "--machine altix --nodes 4 --rpn 2 --m 96 --n 96 --k 96"
)
for cfg in "${clean_configs[@]}"; do
  # shellcheck disable=SC2086
  "$analyze" $cfg > /dev/null \
    || { echo "check.sh: analyzer rejected clean config: $cfg"; exit 1; }
done
echo "analyzer: ${#clean_configs[@]} clean configurations certified"
# Negative tests: every seeded mutation class must be flagged (nonzero
# exit).  A mutation slipping through means the analyzer lost coverage.
for mut in drop-wait reorder-commit widen-get alias-scratch adopt-chain; do
  if "$analyze" --machine cluster --nodes 2 --flavor copy \
      --m 96 --n 96 --k 96 --k-chunk 24 --mutate "$mut" > /dev/null 2>&1; then
    echo "check.sh: analyzer missed seeded mutation: $mut"
    exit 1
  fi
done
echo "analyzer: all 5 seeded mutation classes flagged"
# Happens-before cross-validation: journal real runs of both executors
# under the dynamic checker, then prove the epoch-based checker missed no
# race the HB model finds (srumma-analyze --trace exits nonzero on a miss).
SRUMMA_RMA_CHECK=1 SRUMMA_RMA_JOURNAL="$trace_dir/journal_pipeline.jsonl" \
  "$build/examples/quickstart" --n 96 --nodes 2 > /dev/null
"$analyze" --trace "$trace_dir/journal_pipeline.jsonl" > /dev/null
SRUMMA_ENGINE=1 SRUMMA_RMA_CHECK=1 \
SRUMMA_RMA_JOURNAL="$trace_dir/journal_engine.jsonl" \
  "$build/examples/quickstart" --n 96 --nodes 2 > /dev/null
"$analyze" --trace "$trace_dir/journal_engine.jsonl" > /dev/null
echo "analyzer: HB race detector cross-validated both executors' journals"

echo
echo "== tier 1i: permanent-kill sweep under the RMA checker =="
# Every kill point x executor through the SRUMMA_FAULT_* environment path
# (docs/FAULTS.md §7): domain 1 of a 4-node cluster fail-stops mid-run,
# survivors adopt its work from the buddy replicas, and quickstart's
# serial-reference comparison proves the recovered C exact while the
# shadow-state checker proves the recovery epochs race-free.  The
# pipeline x steal arm is the deliberate no-op (the pipeline never
# steals, so that kill never trips and the run stays fault-free).
for point in prefetch chain steal barrier; do
  for engine in 0 1; do
    SRUMMA_ENGINE="$engine" SRUMMA_RMA_CHECK=1 \
    SRUMMA_FAULT_KILL_DOMAIN=1 SRUMMA_FAULT_KILL_POINT="$point" \
    SRUMMA_FAULT_BUDDY_OFFSET=1 \
      "$build/examples/quickstart" --n 96 --nodes 4 > /dev/null \
      || { echo "check.sh: kill sweep failed: point=$point engine=$engine"
           exit 1; }
  done
done
echo "kill sweep: 4 points x 2 executors recovered exactly, checker silent"

echo
echo "== tier 1j: request plane under checker + fault injection =="
# The service suite already ran clean in tier 1 and under the checker in
# tier 1c; these arms make the two service-critical matrices explicit.
# Checker arm: each job's sub-team owns an independent shadow state, so a
# cross-job epoch leak surfaces here.  Fault arm: low-rate transient
# failures under a raised retry budget — the RMA layer absorbs every
# fault, so job-level outcomes, scheduling order, and bitwise identity
# must be unchanged (suites that inject their own planes override the
# env plane per sub-team, keeping their exact-count assertions valid).
SRUMMA_RMA_CHECK=1 \
  ctest --test-dir "$build" --output-on-failure -R '^test_service$'
SRUMMA_FAULT_FAIL_RATE=0.002 \
SRUMMA_FAULT_DELAY_RATE=0.002 \
SRUMMA_FAULT_MAX_ATTEMPTS=20 \
  ctest --test-dir "$build" --output-on-failure -R '^test_service$'

echo
echo "== tier 1k: pooled harness — 1024-rank smoke + mode differential =="
cmake --build "$build" -j "$jobs" --target bench_scale
"$build/bench/bench_scale" --check

echo
echo "== tier 2: concurrency suites under TSan ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" \
  -DSRUMMA_SANITIZE=thread \
  -DSRUMMA_BUILD_BENCH=OFF \
  -DSRUMMA_BUILD_EXAMPLES=OFF
cmake --build "$tsan_build" -j "$jobs" \
  --target test_rma --target test_runtime --target test_srumma \
  --target test_rma_checker --target test_block_cache --target test_engine \
  --target test_chaos --target test_service --target test_harness_pool
# halt_on_error: a data race must fail the suite, not just print.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ctest --test-dir "$tsan_build" --output-on-failure \
  -R '^(test_rma|test_runtime|test_srumma|test_rma_checker|test_block_cache|test_engine|test_chaos|test_service|test_harness_pool)$'

echo
echo "== tier 3: static analysis (scripts/lint.sh) =="
"$repo/scripts/lint.sh" "$build"

echo
echo "check.sh: all green"
