#!/usr/bin/env bash
# Regenerate the machine-readable bench metrics: one BENCH_<id>.json per
# wired paper figure, written to the repo root in the stable
# "srumma-bench-metrics/1" schema (docs/OBSERVABILITY.md §4) so the
# performance trajectory is diffable across PRs.  BENCH_service.json is
# the one exception: the request plane reports jobs/s and latency
# percentiles, not GFLOP/s, so it uses the "srumma-service-metrics/1"
# schema (docs/SERVICE.md §8) and is validated in its own block below.
#
# Default is smoke mode (SRUMMA_BENCH_SMOKE=1): shrunken problem sizes that
# finish in seconds while exercising the identical code paths and emitting
# the identical schema — the row params record the sizes actually used.
# Pass --full for paper-sized runs.
#
# Usage: scripts/bench_report.sh [--full] [build-dir]
# Exits non-zero if a bench fails or an emitted file does not validate.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
smoke=1
if [[ "${1:-}" == "--full" ]]; then
  smoke=0
  shift
fi
build="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DSRUMMA_BUILD_BENCH=ON
cmake --build "$build" -j "$jobs" \
  --target bench_fig3_pipeline --target bench_fig5_direct_vs_copy \
  --target bench_fig7_overlap --target bench_cache \
  --target bench_ablation_blocksize --target bench_steal \
  --target bench_chaos --target bench_service --target bench_scale

benches=(fig3:bench_fig3_pipeline fig5:bench_fig5_direct_vs_copy
         fig7:bench_fig7_overlap cache:bench_cache
         ablation_blocksize:bench_ablation_blocksize
         steal:bench_steal chaos:bench_chaos service:bench_service
         scale:bench_scale)

for entry in "${benches[@]}"; do
  id="${entry%%:*}"
  bin="${entry#*:}"
  out="$repo/BENCH_${id}.json"
  echo "== $bin -> $out (smoke=$smoke) =="
  SRUMMA_BENCH_SMOKE="$smoke" SRUMMA_BENCH_JSON="$out" "$build/bench/$bin" \
    > /dev/null
  [[ -s "$out" ]] || { echo "bench_report: $out was not written"; exit 1; }
done

if command -v python3 > /dev/null; then
  python3 - \
    "$repo"/BENCH_{fig3,fig5,fig7,cache,ablation_blocksize,steal,chaos}.json \
    "$repo/BENCH_scale.json" \
    << 'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "srumma-bench-metrics/1", path
    assert doc["bench"], path
    assert doc["rows"], f"{path}: no rows"
    for row in doc["rows"]:
        assert row["label"], path
        assert isinstance(row["params"], dict), path
        assert row["metrics"], f"{path}: row without metrics"
        for v in list(row["params"].values()) + list(row["metrics"].values()):
            assert isinstance(v, (int, float)), f"{path}: non-numeric value"
        # Harness-speed columns are part of the schema on every row: real
        # seconds the arm took, and wall per modeled virtual second.
        assert row["metrics"].get("wall_seconds", -1.0) >= 0.0, \
            f"{path}/{row['label']}: missing wall_seconds"
        assert row["metrics"].get("wall_per_virtual_second", -1.0) >= 0.0, \
            f"{path}/{row['label']}: missing wall_per_virtual_second"
        # Rows that carry a srumma-analyze static ceiling must stay under
        # it at runtime — the analyzer's resource-bound proof is only a
        # proof if the measured peak never crosses it.
        bound = row["params"].get("buffer_bytes_peak_bound")
        peak = row.get("counters", {}).get("buffer_bytes_peak")
        if bound is not None and peak is not None:
            assert peak <= bound, (
                f"{path}/{row['label']}: buffer_bytes_peak {peak} exceeds "
                f"static bound {bound}")
    print(f"{path}: ok ({len(doc['rows'])} rows)")

# BENCH_cache.json additionally carries the cooperative block cache's
# acceptance bar (docs/CACHE.md): on both machine models the cache must
# at least halve modeled inter-node get bytes, strictly reduce virtual
# time, and keep the byte accounting exact (every saved byte is a byte
# the off arm transferred; the off arm saves nothing).
with open(sys.argv[4]) as f:
    cache = json.load(f)
rows = {r["label"]: r for r in cache["rows"]}
for m in ("cluster", "sp"):
    off, on = rows[f"{m}_off"], rows[f"{m}_on"]
    off_c, on_c = off["counters"], on["counters"]
    assert 2 * on_c["bytes_remote"] <= off_c["bytes_remote"], \
        f"cache/{m}: inter-node byte reduction below 2x"
    assert on["metrics"]["elapsed_s"] < off["metrics"]["elapsed_s"], \
        f"cache/{m}: cache did not reduce virtual time"
    assert on_c["bytes_remote"] + on_c["cache_bytes_saved"] \
        == off_c["bytes_remote"], f"cache/{m}: byte accounting broken"
    assert off_c["cache_bytes_saved"] == 0, \
        f"cache/{m}: off arm reported cache savings"
print("BENCH_cache.json: cache acceptance bar ok (cluster, sp)")

# BENCH_steal.json carries the task engine's acceptance bar
# (docs/ENGINE.md): with one 8x straggler node, the engine arm must be
# >= 1.3x faster in virtual time than the static pipeline, must actually
# steal tasks, and the steal ledger must reconcile exactly —
# engine_tasks + tasks_stolen == copy_tasks + direct_tasks == gemm_calls.
with open(sys.argv[6]) as f:
    steal = json.load(f)
rows = {r["label"]: r for r in steal["rows"]}
pipe, eng = rows["pipeline"], rows["engine"]
ratio = pipe["metrics"]["elapsed_s"] / eng["metrics"]["elapsed_s"]
assert ratio >= 1.3, f"steal: speedup {ratio:.3f}x below the 1.3x bar"
ec = eng["counters"]
assert ec["tasks_stolen"] > 0, "steal: engine arm stole nothing"
assert ec["engine_tasks"] + ec["tasks_stolen"] \
    == ec["copy_tasks"] + ec["direct_tasks"] == ec["gemm_calls"], \
    "steal: engine ledger does not reconcile"
assert ec["task_requeues"] == 0, \
    "steal: engine must re-arm fetches, never requeue tasks"
pc = pipe["counters"]
assert pc["engine_tasks"] == pc["tasks_stolen"] == 0, \
    "steal: pipeline arm reported engine activity"
assert pc["copy_tasks"] + pc["direct_tasks"] == pc["gemm_calls"], \
    "steal: pipeline ledger does not reconcile"
print(f"BENCH_steal.json: engine acceptance bar ok "
      f"({ratio:.2f}x, {int(ec['tasks_stolen'])} steals)")

# BENCH_chaos.json carries the permanent-domain-death acceptance bar
# (docs/FAULTS.md §7): with one dead domain, every killed arm must
# complete within 1.5x (engine) / 2x (pipeline) of its executor's
# fault-free virtual time — the static pipeline has already drained its
# per-rank schedule when recovery starts, so its adoption pass rides the
# critical path (measured ~1.5-1.75x; the looser bar absorbs scheduler
# nondeterminism in the cooperative cache's fetcher election).  Every
# arm whose kill point is reachable must adopt tasks (the pipeline never steals, so its steal arm runs fault-free and
# adopts nothing), and the ledger must reconcile exactly with adoption:
# copy_tasks + direct_tasks == gemm_calls on every row, and on engine
# rows additionally engine_tasks + tasks_stolen + tasks_adopted ==
# gemm_calls (pipeline rows run no engine tasks and steal nothing).
with open(sys.argv[7]) as f:
    chaos = json.load(f)
rows = {r["label"]: r for r in chaos["rows"]}
worst = {"engine": 0.0, "pipeline": 0.0}
for label, row in rows.items():
    execu = "engine" if row["params"]["engine"] else "pipeline"
    c = row["counters"]
    assert c["copy_tasks"] + c["direct_tasks"] == c["gemm_calls"], \
        f"chaos/{label}: copy/direct ledger does not reconcile"
    if execu == "engine":
        assert c["engine_tasks"] + c["tasks_stolen"] + c["tasks_adopted"] \
            == c["gemm_calls"], \
            f"chaos/{label}: engine ledger does not reconcile with adoption"
    else:
        assert c["engine_tasks"] == c["tasks_stolen"] == 0, \
            f"chaos/{label}: pipeline arm reported engine activity"
    if not row["params"]["killed"]:
        assert c["tasks_adopted"] == c["rma_domain_dead"] == 0, \
            f"chaos/{label}: fault-free arm reported recovery activity"
        continue
    overhead = row["params"]["overhead_vs_faultfree"]
    bar = 1.5 if execu == "engine" else 2.0
    assert overhead <= bar, (
        f"chaos/{label}: recovery overhead {overhead:.3f}x exceeds the "
        f"{bar}x {execu} bar")
    worst[execu] = max(worst[execu], overhead)
    if label == "pipeline_kill_steal":
        # The pipeline never reaches a steal point, so this kill never
        # trips: the arm pays replication but performs no adoption.
        assert c["tasks_adopted"] == 0, \
            f"chaos/{label}: untrippable kill point adopted tasks"
    else:
        assert c["tasks_adopted"] > 0, \
            f"chaos/{label}: killed arm adopted nothing"
print(f"BENCH_chaos.json: domain-death acceptance bar ok "
      f"(worst engine {worst['engine']:.2f}x <= 1.5x, "
      f"worst pipeline {worst['pipeline']:.2f}x <= 2x)")

# BENCH_scale.json carries the harness-speed acceptance bar (ISSUE 10,
# docs/HARNESS.md): at 1024 ranks the pooled harness must simulate >= 3x
# more virtual seconds per wall second than thread-per-rank, the modeled
# (virtual-time) metrics must be bitwise identical between the two modes
# on every common rank count — the workload is contention-free by
# construction, so any divergence is a harness bug, not model noise —
# and the 4096-rank pooled point must complete.
with open(sys.argv[8]) as f:
    scale = json.load(f)
rows = {r["label"]: r for r in scale["rows"]}
for p in (64, 256, 1024):
    pooled, threads = rows[f"p{p}_pooled"], rows[f"p{p}_threads"]
    for key in ("elapsed_s", "gflops", "final_clock_hash"):
        assert pooled["metrics"][key] == threads["metrics"][key], (
            f"scale/p{p}: {key} diverged between pooled and threads — "
            f"{pooled['metrics'][key]} vs {threads['metrics'][key]}")
    assert {k: v for k, v in pooled["params"].items() if k != "pooled"} == \
        {k: v for k, v in threads["params"].items() if k != "pooled"}, \
        f"scale/p{p}: arms ran different configurations"
pooled, threads = rows["p1024_pooled"], rows["p1024_threads"]
vps = lambda r: 1.0 / r["metrics"]["wall_per_virtual_second"]
ratio = vps(pooled) / vps(threads)
assert ratio >= 3.0, (
    f"scale: pooled harness throughput {ratio:.2f}x thread-per-rank at "
    f"1024 ranks, below the 3x bar")
big = rows["p4096_pooled"]
assert big["metrics"]["elapsed_s"] > 0, "scale: 4096-rank point incomplete"
assert "p4096_threads" not in rows, \
    "scale: thread-per-rank must not run the 4096-rank point"
print(f"BENCH_scale.json: harness-speed bar ok ({ratio:.2f}x pooled "
      f"throughput at 1024 ranks, modes bitwise identical, 4096 ranks in "
      f"{big['metrics']['wall_seconds']*1e3:.0f} ms wall)")
EOF

  # BENCH_service.json uses its own schema (jobs/s and latency percentiles
  # instead of GFLOP/s), so it is deliberately NOT in the generic list
  # above.  Acceptance bar (docs/SERVICE.md §8): the concurrent arm must
  # deliver >= 1.5x the jobs/s of the whole-machine serial arm on the
  # identical seeded arrival stream, with sane latency percentiles and
  # utilization, zero failed jobs, and the whole stream accepted (the
  # queue cap is sized so throughput, not shed rate, is what's measured).
  python3 - "$repo/BENCH_service.json" << 'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "srumma-service-metrics/1", sys.argv[1]
assert doc["bench"] == "service", sys.argv[1]
arms = {a["label"]: a for a in doc["arms"]}
assert set(arms) == {"concurrent", "serial"}, f"unexpected arms: {set(arms)}"
for label, arm in arms.items():
    m = arm["metrics"]
    assert isinstance(arm["params"], dict) and arm["params"], label
    assert m["jobs_per_s"] > 0, f"service/{label}: no throughput"
    assert m["latency_p99_s"] >= m["latency_p50_s"] > 0, \
        f"service/{label}: latency percentiles not ordered"
    assert m["mean_wait_s"] >= 0, label
    assert 0 < m["utilization"] <= 1.0, \
        f"service/{label}: utilization {m['utilization']} out of range"
    assert m["jobs_submitted"] == m["jobs_accepted"] == m["jobs_completed"], \
        f"service/{label}: stream not fully accepted and completed"
    assert m["jobs_failed"] == 0, f"service/{label}: jobs failed"
conc, ser = arms["concurrent"]["metrics"], arms["serial"]["metrics"]
ratio = conc["jobs_per_s"] / ser["jobs_per_s"]
assert ratio >= 1.5, (
    f"service: concurrent/serial throughput {ratio:.3f}x below the 1.5x bar")
assert conc["batches"] > 0, "service: concurrent arm never batched smalls"
assert ser["batches"] == 0, "service: whole-machine serial arm batched"
print(f"BENCH_service.json: request-plane acceptance bar ok "
      f"({ratio:.2f}x jobs/s, p50 {conc['latency_p50_s']*1e3:.2f} ms, "
      f"utilization {conc['utilization']:.2f})")
EOF
else
  echo "bench_report: python3 not found, skipping JSON validation"
fi

echo "bench_report.sh: done"
