// Platform sweep: a what-if tool for the virtual-time machine models.
// Runs SRUMMA and the pdgemm model on a chosen platform/size/processor
// count (phantom mode: full cost accounting, no data) and prints the
// comparison — the interactive counterpart of the Figure 10 bench.
//
//   $ ./platform_sweep --platform altix --cpus 128 --n 4000
//   $ ./platform_sweep --platform linux --cpus 32 --n 2000 --transpose

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "baselines/summa.hpp"
#include "core/srumma.hpp"
#include "trace/profile.hpp"
#include "util/cli.hpp"

namespace {

srumma::MachineModel make_machine(const std::string& platform, int cpus) {
  using srumma::MachineModel;
  if (platform == "linux") return MachineModel::linux_myrinet((cpus + 1) / 2);
  if (platform == "ib") return MachineModel::infiniband_cluster((cpus + 1) / 2);
  if (platform == "sp") return MachineModel::ibm_sp((cpus + 15) / 16);
  if (platform == "x1") return MachineModel::cray_x1((cpus + 3) / 4);
  if (platform == "altix") return MachineModel::sgi_altix(cpus);
  throw srumma::Error("unknown platform (use linux|ib|sp|x1|altix): " + platform);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srumma;

  CliParser cli;
  cli.add_flag("platform", "linux", "linux | ib | sp | x1 | altix");
  cli.add_flag("cpus", "16", "processor count (rounded up to whole nodes)");
  cli.add_flag("n", "2000", "square matrix size");
  cli.add_flag("k", "0", "inner dimension (0 = n, i.e. square)");
  cli.add_flag("transpose", "false", "compute C = A^T B^T instead of C = AB");
  cli.add_flag("blocking", "false", "disable the nonblocking get pipeline");
  cli.add_flag("profile", "false", "print the per-rank / per-NIC profile");
  cli.add_flag("timeline", "false", "print an ASCII Gantt of the SRUMMA run");
  if (!cli.parse(argc, argv)) return 0;

  Team team(make_machine(cli.get("platform"), static_cast<int>(cli.get_int("cpus"))));
  if (cli.get_bool("timeline")) team.enable_timeline();
  RmaRuntime rma(team);
  Comm comm(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  const index_t n = cli.get_int("n");
  const index_t k = cli.get_int("k") > 0 ? cli.get_int("k") : n;
  const bool tr = cli.get_bool("transpose");

  SrummaOptions sopt;
  sopt.ta = sopt.tb = tr ? blas::Trans::Yes : blas::Trans::No;
  sopt.nonblocking = !cli.get_bool("blocking");
  if (team.machine().single_shared_domain && !team.machine().remote_cacheable)
    sopt.shm_flavor = ShmFlavor::Copy;
  PdgemmOptions dopt;
  dopt.ta = sopt.ta;
  dopt.tb = sopt.tb;

  MultiplyResult s, d;
  std::ostringstream srumma_gantt;
  team.run([&](Rank& me) {
    const index_t am = tr ? k : n, an = tr ? n : k;
    const index_t bm = tr ? n : k, bn = tr ? k : n;
    DistMatrix a(rma, me, am, an, grid, true);
    DistMatrix b(rma, me, bm, bn, grid, true);
    DistMatrix c(rma, me, n, n, grid, true);
    MultiplyResult rs = srumma_multiply(me, a, b, c, sopt);
    me.barrier();
    if (me.id() == 0 && team.timeline() != nullptr) {
      team.timeline()->print_gantt(srumma_gantt);  // SRUMMA only
      team.timeline()->clear();
    }
    me.barrier();
    MultiplyResult rd = pdgemm_model(me, comm, a, b, c, dopt);
    if (me.id() == 0) {
      s = rs;
      d = rd;
    }
  });

  std::printf("%s, %d CPUs, N=%td K=%td%s\n", team.machine().name.c_str(),
              team.size(), n, k, tr ? ", C = A^T B^T" : "");
  std::printf("  SRUMMA : %s\n", describe(s).c_str());
  std::printf("  pdgemm : %s\n", describe(d).c_str());
  std::printf("  SRUMMA speedup over pdgemm: %.2fx\n", d.elapsed / s.elapsed);
  if (cli.get_bool("profile")) {
    std::puts("");
    print_profile(std::cout, team);
  }
  if (cli.get_bool("timeline")) {
    std::puts("\nSRUMMA virtual-time Gantt:");
    std::cout << srumma_gantt.str();
  }
  return 0;
}
