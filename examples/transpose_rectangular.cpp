// Transpose and rectangular shapes (the paper's Section 4.2 cases) with
// real data: runs every op(A) op(B) variant on a deliberately awkward
// rectangular problem and verifies each against the serial kernel, then
// shows the modeled cost difference vs the pdgemm baseline, which pays an
// explicit redistribution for transposed operands.
//
//   $ ./transpose_rectangular --m 150 --n 90 --k 210

#include <cstdio>

#include "baselines/summa.hpp"
#include "core/srumma.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace srumma;
  using blas::Trans;

  CliParser cli;
  cli.add_flag("m", "150", "C rows");
  cli.add_flag("n", "90", "C cols");
  cli.add_flag("k", "210", "inner dimension");
  if (!cli.parse(argc, argv)) return 0;
  const index_t m = cli.get_int("m");
  const index_t n = cli.get_int("n");
  const index_t k = cli.get_int("k");

  Team team(MachineModel::linux_myrinet(3));  // 6 ranks, 3x2 grid
  RmaRuntime rma(team);
  Comm comm(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  std::printf("%td x %td x %td on %d ranks (%dx%d grid)\n\n", m, n, k,
              team.size(), grid.p, grid.q);

  bool all_ok = true;
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      const index_t am = ta == Trans::No ? m : k;
      const index_t an = ta == Trans::No ? k : m;
      const index_t bm = tb == Trans::No ? k : n;
      const index_t bn = tb == Trans::No ? n : k;

      Matrix a_g(am, an), b_g(bm, bn), c_ref(m, n);
      fill_random(a_g.view(), 21);
      fill_random(b_g.view(), 22);
      blas::gemm(ta, tb, 1.0, a_g.view(), b_g.view(), 0.0, c_ref.view());

      Matrix c_out(m, n);
      MultiplyResult rs, rd;
      team.run([&](Rank& me) {
        DistMatrix a(rma, me, am, an, grid);
        DistMatrix b(rma, me, bm, bn, grid);
        DistMatrix c(rma, me, m, n, grid);
        a.scatter_from(me, a_g.view());
        b.scatter_from(me, b_g.view());
        SrummaOptions sopt;
        sopt.ta = ta;
        sopt.tb = tb;
        MultiplyResult r1 = srumma_multiply(me, a, b, c, sopt);
        c.gather_to(me, c_out.view());
        PdgemmOptions dopt;
        dopt.ta = ta;
        dopt.tb = tb;
        MultiplyResult r2 = pdgemm_model(me, comm, a, b, c, dopt);
        if (me.id() == 0) {
          rs = r1;
          rd = r2;
        }
      });
      const double err = max_abs_diff(c_out.view(), c_ref.view());
      const bool ok = err < 1e-9 * static_cast<double>(k);
      all_ok = all_ok && ok;
      std::printf("C = %s %s : err %.2e [%s]\n",
                  ta == Trans::No ? "A " : "At", tb == Trans::No ? "B " : "Bt",
                  err, ok ? "ok" : "FAIL");
      std::printf("  SRUMMA %.3f ms | pdgemm %.3f ms (%.2fx; transposes cost "
                  "pdgemm a redistribution)\n",
                  rs.elapsed * 1e3, rd.elapsed * 1e3, rd.elapsed / rs.elapsed);
    }
  }
  std::puts(all_ok ? "\nOK" : "\nFAILED");
  return all_ok ? 0 : 1;
}
