// Global-Arrays-style API walkthrough — the programming surface SRUMMA
// shipped under in production (GA / NWChem).  Shows collective creation,
// one-sided get/put/accumulate, ga::dgemm (SRUMMA underneath), the
// one-sided transpose, and dot-product reductions, all on real, verified
// data.
//
//   $ ./ga_quickstart --n 128

#include <cstdio>

#include "blas/gemm.hpp"
#include "ga/global_array.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace srumma;

  CliParser cli;
  cli.add_flag("n", "128", "array dimension");
  if (!cli.parse(argc, argv)) return 0;
  const index_t n = cli.get_int("n");

  Team team(MachineModel::sgi_altix(8));  // one shared-memory domain
  RmaRuntime rma(team);
  std::printf("GA layer on %s, %d ranks\n", team.machine().name.c_str(),
              team.size());

  Matrix h_global(n, n);
  fill_random(h_global.view(), 7);

  bool ok = true;
  team.run([&](Rank& me) {
    // GA_Create / GA_Fill
    ga::GlobalArray h(rma, me, n, n);
    ga::GlobalArray c(rma, me, n, n);
    ga::GlobalArray s(rma, me, n, n);
    h.dist().scatter_from(me, h_global.view());
    c.fill(me, 0.0);

    // One-sided puts: rank 0 seeds the identity into C.
    if (me.id() == 0) {
      Matrix eye(n, n);
      for (index_t i = 0; i < n; ++i) eye(i, i) = 1.0;
      c.put(me, 0, 0, n, n, eye.view());
    }
    c.sync(me);

    // ga::dgemm dispatches to SRUMMA: S = H * C = H.
    MultiplyResult r = ga::dgemm(me, 'n', 'n', 1.0, h, c, 0.0, s);
    if (me.id() == 0)
      std::printf("  S = H*I      : %s\n", describe(r).c_str());

    // One-sided transpose + symmetrization: S := (H + H^T) / 2.
    ga::GlobalArray ht(rma, me, n, n);
    ga::transpose(me, h, ht);
    ga::add(me, 0.5, h, 0.5, ht, s);

    // Every rank accumulates a rank-stamped contribution, atomically.
    Matrix bump(1, 1);
    bump(0, 0) = 1.0;
    s.acc(me, 0, 0, 1, 1, 1.0, bump.view());
    s.sync(me);

    // Verify: s(0,0) = h(0,0) + P, s symmetric, and dot(S, S) finite.
    Matrix probe(2, 2);
    s.get(me, 0, 0, 2, 2, probe.view());
    const double expect00 =
        h_global(0, 0) + static_cast<double>(team.size());
    if (std::abs(probe(0, 0) - expect00) > 1e-12) ok = false;
    const double sym = 0.5 * (h_global(0, 1) + h_global(1, 0));
    if (std::abs(probe(0, 1) - sym) > 1e-12 ||
        std::abs(probe(1, 0) - sym) > 1e-12)
      ok = false;

    const double selfdot = ga::dot(me, s, s);
    if (me.id() == 0)
      std::printf("  dot(S, S)    : %.6f\n", selfdot);

    h.destroy(me);
    c.destroy(me);
    s.destroy(me);
    ht.destroy(me);
  });

  std::puts(ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
