// SCF-like workload: the kind of repeated dense-matrix-multiplication inner
// loop that motivated SRUMMA's production use inside Global Arrays /
// NWChem.  Each "iteration" forms a density-like update
//
//     F_{t+1} = alpha * C_t^T (H C_t) + beta * F_t
//
// i.e. two chained multiplies per iteration, one with a transposed operand,
// reusing distributed arrays across iterations.  Runs with real data and
// verifies the final matrix against a serial computation.
//
//   $ ./scf_like --n 192 --iters 4

#include <cstdio>

#include "blas/gemm.hpp"
#include "core/srumma.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace srumma;
  using blas::Trans;

  CliParser cli;
  cli.add_flag("n", "192", "matrix dimension");
  cli.add_flag("iters", "4", "SCF-like iterations");
  cli.add_flag("nodes", "2", "16-way SMP nodes to simulate (IBM SP model)");
  if (!cli.parse(argc, argv)) return 0;
  const index_t n = cli.get_int("n");
  const int iters = static_cast<int>(cli.get_int("iters"));

  Team team(MachineModel::ibm_sp(static_cast<int>(cli.get_int("nodes"))));
  RmaRuntime rma(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  std::printf("SCF-like loop on %s with %d ranks, N=%td, %d iterations\n",
              team.machine().name.c_str(), team.size(), n, iters);

  // Serial reference computation.
  Matrix h(n, n), c0(n, n);
  fill_random(h.view(), 11);
  fill_random(c0.view(), 12);
  Matrix f_ref(n, n), tmp_ref(n, n);
  for (int it = 0; it < iters; ++it) {
    blas::gemm(Trans::No, Trans::No, 1.0, h.view(), c0.view(), 0.0,
               tmp_ref.view());
    blas::gemm(Trans::Yes, Trans::No, 0.5, c0.view(), tmp_ref.view(), 0.5,
               f_ref.view());
  }

  Matrix f_out(n, n);
  double total_elapsed = 0.0;
  double total_gflops = 0.0;
  team.run([&](Rank& me) {
    DistMatrix hd(rma, me, n, n, grid);
    DistMatrix cd(rma, me, n, n, grid);
    DistMatrix tmp(rma, me, n, n, grid);
    DistMatrix fd(rma, me, n, n, grid);
    hd.scatter_from(me, h.view());
    cd.scatter_from(me, c0.view());

    double elapsed = 0.0, flops = 0.0;
    for (int it = 0; it < iters; ++it) {
      SrummaOptions first;  // tmp = H * C
      MultiplyResult r1 = srumma_multiply(me, hd, cd, tmp, first);
      SrummaOptions second;  // F = 0.5 * C^T * tmp + 0.5 * F
      second.ta = Trans::Yes;
      second.alpha = 0.5;
      second.beta = 0.5;
      MultiplyResult r2 = srumma_multiply(me, cd, tmp, fd, second);
      elapsed += r1.elapsed + r2.elapsed;
      flops += r1.trace.flops + r2.trace.flops;
      if (me.id() == 0) {
        std::printf("  iter %d: %s | %s\n", it, describe(r1).c_str(),
                    describe(r2).c_str());
      }
    }
    if (me.id() == 0) {
      total_elapsed = elapsed;
      total_gflops = flops / elapsed / 1e9;
    }
    fd.gather_to(me, f_out.view());
  });

  const double err = max_abs_diff(f_out.view(), f_ref.view());
  std::printf("aggregate: %.2f ms virtual, %.1f GFLOP/s sustained\n",
              total_elapsed * 1e3, total_gflops);
  std::printf("max |error| vs serial reference: %.3e\n", err);
  if (err > 1e-8) {
    std::puts("FAILED");
    return 1;
  }
  std::puts("OK");
  return 0;
}
