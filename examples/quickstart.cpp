// Quickstart: multiply two distributed matrices with SRUMMA on a simulated
// 4-node cluster, with real data, and verify against the serial kernel.
//
//   $ ./quickstart --n 256
//
// Walks through the whole public API surface: machine model -> Team ->
// RmaRuntime -> DistMatrix -> srumma_multiply -> result/trace.

#include <cstdio>
#include <iostream>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "core/srumma.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace srumma;

  CliParser cli;
  cli.add_flag("n", "256", "matrix size (N x N)");
  cli.add_flag("nodes", "4", "number of 2-way SMP nodes to simulate");
  std::vector<std::string> kernels{"auto"};
  for (const blas::GemmKernel* k : blas::kernel_registry())
    kernels.push_back(k->name);
  cli.add_choice_flag("gemm-kernel", "auto", kernels,
                      "serial dgemm micro-kernel to pin (auto = best "
                      "supported; also settable via SRUMMA_GEMM_KERNEL)");
  if (!cli.parse(argc, argv)) return 0;
  const index_t n = cli.get_int("n");
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  // Only pin on an explicit request: the "auto" default must not override
  // an SRUMMA_GEMM_KERNEL environment pin (first use resolves it).
  if (cli.get("gemm-kernel") != "auto")
    blas::set_active_kernel(cli.get("gemm-kernel"));
  std::printf("serial dgemm kernel: %s\n", blas::active_kernel().name);

  // 1. Pick a machine: a Linux/Myrinet-2000 cluster of dual-CPU nodes.
  Team team(MachineModel::linux_myrinet(nodes));
  RmaRuntime rma(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  std::printf("machine: %s, %d ranks on a %dx%d grid\n",
              team.machine().name.c_str(), team.size(), grid.p, grid.q);

  // 2. Prepare reference data.
  Matrix a_global(n, n), b_global(n, n), c_reference(n, n);
  fill_random(a_global.view(), 1);
  fill_random(b_global.view(), 2);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a_global.view(),
             b_global.view(), 0.0, c_reference.view());

  // 3. Run the SPMD multiply: every rank executes this body.
  Matrix c_out(n, n);
  MultiplyResult result;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, grid);
    DistMatrix b(rma, me, n, n, grid);
    DistMatrix c(rma, me, n, n, grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());

    MultiplyResult r = srumma_multiply(me, a, b, c, SrummaOptions{});

    if (me.id() == 0) result = r;
    c.gather_to(me, c_out.view());
  });

  // 4. Verify and report.
  const double err = max_abs_diff(c_out.view(), c_reference.view());
  std::printf("max |error| vs serial dgemm: %.3e\n", err);
  std::printf("modeled performance: %s\n", describe(result).c_str());
  std::printf("tasks: %llu direct (in-place views), %llu copied via RMA\n",
              static_cast<unsigned long long>(result.trace.direct_tasks),
              static_cast<unsigned long long>(result.trace.copy_tasks));
  if (err > 1e-9) {
    std::puts("FAILED: result does not match the serial reference");
    return 1;
  }
  std::puts("OK");
  return 0;
}
