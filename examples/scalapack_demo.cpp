// ScaLAPACK-layout demo: the block-cyclic distribution and the
// layout-faithful pdgemm, with real data verified against the serial
// kernel — and a side-by-side with SRUMMA on the same machine model,
// including the one-sided access fragmentation that motivates SRUMMA's
// plain block layout.
//
//   $ ./scalapack_demo --n 240 --nb 32

#include <cstdio>

#include "blas/gemm.hpp"
#include "core/srumma.hpp"
#include "cyclic/pdgemm_cyclic.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace srumma;

  CliParser cli;
  cli.add_flag("n", "240", "matrix size");
  cli.add_flag("nb", "32", "block-cyclic blocking factor (ScaLAPACK NB)");
  if (!cli.parse(argc, argv)) return 0;
  const index_t n = cli.get_int("n");
  const index_t nb = cli.get_int("nb");

  Team team(MachineModel::sgi_altix(16));
  RmaRuntime rma(team);
  Comm comm(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  std::printf("%s, %d ranks (%dx%d grid), N=%td, NB=%td\n",
              team.machine().name.c_str(), team.size(), grid.p, grid.q, n, nb);

  Matrix a_g(n, n), b_g(n, n), c_ref(n, n);
  fill_random(a_g.view(), 1);
  fill_random(b_g.view(), 2);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a_g.view(), b_g.view(),
             0.0, c_ref.view());

  Matrix c_cyclic(n, n);
  MultiplyResult r_cyclic, r_srumma;
  team.run([&](Rank& me) {
    // The ScaLAPACK path: block-cyclic arrays + SUMMA over MPI.
    CyclicMatrix a(rma, me, n, n, nb, nb, grid);
    CyclicMatrix b(rma, me, n, n, nb, nb, grid);
    CyclicMatrix c(rma, me, n, n, nb, nb, grid);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    MultiplyResult rc = pdgemm_cyclic(me, comm, a, b, c);
    c.gather_to(me, c_cyclic.view());

    // The SRUMMA path on the same data, plain block layout.
    DistMatrix ad(rma, me, n, n, grid);
    DistMatrix bd(rma, me, n, n, grid);
    DistMatrix cd(rma, me, n, n, grid);
    ad.scatter_from(me, a_g.view());
    bd.scatter_from(me, b_g.view());
    MultiplyResult rs = srumma_multiply(me, ad, bd, cd, SrummaOptions{});

    if (me.id() == 0) {
      r_cyclic = rc;
      r_srumma = rs;
    }
  });

  const double err = max_abs_diff(c_cyclic.view(), c_ref.view());
  std::printf("pdgemm (block-cyclic NB=%td): %s\n", nb,
              describe(r_cyclic).c_str());
  std::printf("SRUMMA (plain block)       : %s\n", describe(r_srumma).c_str());
  std::printf("max |error| vs serial      : %.3e\n", err);
  if (err > 1e-9 * static_cast<double>(n)) {
    std::puts("FAILED");
    return 1;
  }
  std::puts("OK");
  return 0;
}
