// Cache ablation: the domain-level cooperative remote-block cache
// (src/cache, docs/CACHE.md) on the paper's two cluster platforms.
//
// SRUMMA's owner-computes tiling re-fetches the same remote operand
// patches — once per C row tile for B, once per C column tile for A — and
// domain mates pull overlapping panels.  With the cache on, every repeat
// becomes an intra-domain copy instead of a modeled NIC get.  This bench
// runs the identical tiled multiply with the cache off and on and reports
// the modeled inter-node byte reduction and the virtual-time win:
//
//   * Linux cluster (dual-CPU nodes): reuse is mostly temporal — each
//     rank's own C tiling re-touches its patches;
//   * IBM SP (16-way nodes): on top of that, the 16 domain mates share
//     whole operand panels, so cooperative joins ride along.
//
// The single-buffer A-reuse ordering is disabled in both arms: it can
// only hold one A patch per pipeline slot (lookahead+2 buffers), so it
// models the memory-constrained case where buffer-level reuse is not
// available and every re-touch goes back to the interconnect.  The cache
// recovers that reuse at domain scope.
//
// Expected: >= 2x fewer modeled inter-node get bytes and lower elapsed
// virtual time on both machines.  The guaranteed floor comes from
// intra-rank temporal reuse alone (the monotone issue-time invariant in
// src/cache/block_cache.hpp makes a rank's own re-touches always share);
// cross-mate sharing is opportunistic extra.

#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

struct Arm {
  MultiplyResult result;
  double wall = 0.0;
  bool cached = false;
};

Arm run_arm(MachineModel machine, bool cache, index_t n) {
  Testbed tb(std::move(machine), cache_rma_config(cache));
  SrummaOptions opt = platform_options(tb.team.machine());
  // C tiling fine enough that every remote patch is touched several times
  // by its rank — the reuse the cache converts into intra-domain copies.
  // A patches are touched once per C column tile, B patches once per C
  // row tile; at n/16 the worst-case harmonic floor is >= 2.67x on both
  // machine models.
  opt.c_chunk = n / 16;
  // See the header comment: ablate buffer-level A reuse so operand
  // re-fetch is visible to both arms equally.
  opt.ordering.a_reuse = false;
  opt.ordering.a_group = false;
  Arm arm;
  arm.cached = cache_engaged(tb.rma);
  arm.result = run_srumma(tb, n, n, n, opt, &arm.wall);
  return arm;
}

void machine_pair(const std::string& name, const std::string& label,
                  MachineModel machine, MetricsLog& log) {
  const index_t n = smoke_n(2000, 256);
  const Arm off = run_arm(machine, false, n);
  const Arm on = run_arm(machine, true, n);

  TableWriter table({"cache", "time ms", "GFLOP/s", "remote MB", "shm MB",
                     "saved MB", "hits", "joins", "misses", "refetches"});
  for (const Arm* a : {&off, &on}) {
    const TraceCounters& t = a->result.trace;
    table.add_row(
        {a->cached ? "on" : "off", ms(a->result.elapsed),
         gf(a->result.gflops),
         TableWriter::num(static_cast<double>(t.bytes_remote) / 1e6, 2),
         TableWriter::num(static_cast<double>(t.bytes_shm) / 1e6, 2),
         TableWriter::num(static_cast<double>(t.cache_bytes_saved) / 1e6, 2),
         TableWriter::num(static_cast<long long>(t.cache_hits)),
         TableWriter::num(static_cast<long long>(t.cache_joins)),
         TableWriter::num(static_cast<long long>(t.cache_misses)),
         TableWriter::num(static_cast<long long>(t.cache_refetches))});
  }
  table.print(std::cout, name + ", N=" + std::to_string(n));
  const double off_b = static_cast<double>(off.result.trace.bytes_remote);
  const double on_b = static_cast<double>(on.result.trace.bytes_remote);
  std::cout << "  inter-node byte reduction: "
            << TableWriter::num(on_b > 0.0 ? off_b / on_b : 0.0, 2)
            << "x, virtual-time speedup: "
            << TableWriter::num(off.result.elapsed / on.result.elapsed, 3)
            << "x\n\n";

  for (const Arm* a : {&off, &on}) {
    log.add(label + (a->cached ? "_on" : "_off"), a->result,
            {{"n", static_cast<double>(n)},
             {"cache", a->cached ? 1.0 : 0.0}},
            a->wall);
  }
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Cooperative remote-block cache: modeled NIC traffic and "
               "virtual time, cache off vs on\n\n";
  MetricsLog log("cache");
  machine_pair("Linux cluster, 4 dual nodes (8 ranks)", "cluster",
               MachineModel::linux_myrinet(4), log);
  machine_pair("IBM SP, 2 sixteen-way nodes (32 ranks)", "sp",
               MachineModel::ibm_sp(2), log);
  std::cout << "Expected shape: >= 2x fewer modeled inter-node get bytes "
               "and lower virtual time on both machines; the SP's wide "
               "domains add cooperative (cross-rank) hits on top of each "
               "rank's own C-tiling reuse.\n";
  return log.write_env() ? 0 : 1;
}
