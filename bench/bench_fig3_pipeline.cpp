// Figure 3: the double-buffered pipeline — "a processor receives data in
// B2 while computing the data in B1... Overlapping communication with
// computation is achieved in all steps, except first."
//
// The paper draws this as an illustration; here it is regenerated from a
// live run: an ASCII Gantt of rank 0's virtual time on the Linux cluster
// model, nonblocking vs blocking.  In the nonblocking chart the gets (G)
// run concurrently with compute (C) and no waits appear after the first
// task; in the blocking chart every task serializes get -> wait -> compute.

#include <iostream>

#include "bench/common.hpp"
#include "vtime/timeline.hpp"

namespace srumma::bench {
namespace {

void run_arm(const std::string& label, bool nonblocking,
             std::optional<bool> cache, MetricsLog& log) {
  const index_t n = smoke_n(1536, 192);
  Team team(MachineModel::linux_myrinet(4));  // 8 ranks
  team.enable_timeline();
  RmaRuntime rma(team, cache_rma_config(cache));
  const ProcGrid g = ProcGrid::near_square(team.size());
  MultiplyResult out;
  const WallTimer wall;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g, true);
    DistMatrix b(rma, me, n, n, g, true);
    DistMatrix c(rma, me, n, n, g, true);
    SrummaOptions opt;
    opt.nonblocking = nonblocking;
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  const double wall_s = wall.seconds();
  std::cout << label << " — " << TableWriter::num(out.gflops, 1)
            << " GFLOP/s, overlap "
            << TableWriter::num(out.overlap * 100.0, 1) << "%\n";
  team.timeline()->print_gantt(std::cout, 0.0, 0.0, 100, 4);
  std::cout << "\n";
  trace::NumberMap params{{"n", static_cast<double>(n)},
                          {"ranks", static_cast<double>(team.size())},
                          {"cache", cache_engaged(rma) ? 1.0 : 0.0}};
  SrummaOptions aopt;
  aopt.nonblocking = nonblocking;
  append_static_bounds(params, team.machine(), n, n, n, aopt);
  log.add(nonblocking ? "nonblocking" : "blocking", out, std::move(params),
          wall_s);
}

}  // namespace
}  // namespace srumma::bench

int main(int argc, char** argv) {
  using namespace srumma;
  using namespace srumma::bench;
  // --cache / --no-cache: run the pipeline with the cooperative
  // remote-block cache toggled (bytes saved land in the metrics JSON).
  const std::optional<bool> cache = parse_cache_flag(argc, argv);
  std::cout << "Figure 3: the double-buffered nonblocking pipeline, "
               "regenerated as a virtual-time Gantt\n(Linux cluster model, "
               "8 ranks; first 4 ranks shown)\n\n";
  MetricsLog log("fig3");
  run_arm("Nonblocking (paper's Fig. 3: overlap in all steps except first)",
          true, cache, log);
  run_arm("Blocking (no pipeline: every get exposed as a wait)", false, cache,
          log);
  std::cout << "Expected shape: nonblocking shows G spans riding alongside "
               "C with no W cells after the first task; blocking shows "
               "G/W cells serializing with C.\n";
  return log.write_env() ? 0 : 1;
}
