// Multiply-as-a-service throughput: the request plane (src/service,
// docs/SERVICE.md) sharding the machine into right-sized sub-teams vs the
// same job stream run whole-machine job-at-a-time.
//
// An open-loop Poisson arrival process submits a fixed, seeded stream of
// mixed-size GEMM jobs (1-node smalls through full-machine larges, random
// priorities, deadline hints).  Two arms consume the identical stream:
//
//   concurrent — the scheduler carves sub-teams sized by FLOP cost, packs
//                them side by side, and batches the smallest jobs onto a
//                shared lease;
//   serial     — ServiceConfig::serialize: every job gets all nodes and
//                runs alone, the classic "one big allocation" baseline.
//
// Small multiplies cannot use a big machine: their runtime is dominated by
// latency-bound barriers and O(P) fan-in, so giving them 16 ranks is pure
// waste.  Packing them onto small leases while the larges run beside them
// is where the service earns its keep.  Expected: >= 1.5x jobs/s for the
// concurrent arm, with lower p50 latency and higher utilization.
//
// Emits srumma-service-metrics/1 (NOT the srumma-bench-metrics/1 schema of
// the multiply benches — jobs/s and latency percentiles, not GFLOP/s).

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/metrics.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace srumma::service {
namespace {

struct Stream {
  std::vector<JobSpec> jobs;
  std::vector<double> arrivals;
  double mean_interarrival = 0.0;
};

/// Seeded open-loop arrival stream: exponential inter-arrival gaps, a
/// 70/30 small/medium size mix, and uniform random priorities.
/// Deterministic — both arms replay exactly this sequence.
Stream make_stream(index_t n_base, int count, double mean_gap,
                   std::uint64_t seed) {
  Stream s;
  s.mean_interarrival = mean_gap;
  Rng rng(seed);
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    const double u_size = rng.uniform();
    JobSpec job;
    const index_t n = u_size < 0.7 ? n_base : 2 * n_base;
    job.m = job.n = job.k = n;
    const double u_prio = rng.uniform();
    job.priority = u_prio < 0.2   ? JobPriority::High
                   : u_prio < 0.8 ? JobPriority::Normal
                                  : JobPriority::Low;
    // Deadline hint: generous for larges, tight-ish for smalls.
    job.deadline_hint = t + mean_gap * (n == n_base ? 8.0 : 32.0);
    job.label = std::string("n").append(std::to_string(n));
    s.jobs.push_back(job);
    s.arrivals.push_back(t);
    t += -std::log(1.0 - rng.uniform()) * mean_gap;
  }
  return s;
}

struct Arm {
  std::string label;
  ServiceMetrics metrics;
  double wall = 0.0;
};

Arm run_arm(const MachineModel& machine, const Stream& stream,
            const ServiceConfig& cfg, const std::string& label) {
  const bench::WallTimer wall;
  GemmService svc(machine, cfg);
  for (std::size_t i = 0; i < stream.jobs.size(); ++i) {
    (void)svc.submit(stream.jobs[i], stream.arrivals[i]);
  }
  svc.drain();
  return {label, svc.metrics(), wall.seconds()};
}

}  // namespace
}  // namespace srumma::service

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  using namespace srumma::service;
  std::cout << "GEMM request plane: right-sized concurrent sub-teams vs "
               "whole-machine job-at-a-time\n\n";

  const MachineModel machine = MachineModel::linux_myrinet(8);
  const index_t n_base = smoke_n(128, 64);
  const int jobs = smoke_mode() ? 24 : 48;

  ServiceConfig cfg;
  cfg.queue_cap = 4 * jobs;  // accept the whole stream: measure throughput,
                             // not shed rate, so both arms complete equally
  // Size leases so the mix spreads: n -> 1 node, 2n -> 3 nodes (two
  // mediums overlap with two nodes to spare for smalls).
  JobSpec unit;
  unit.m = unit.n = unit.k = 2 * n_base;
  cfg.flops_per_node = unit.flops() / 3.0;
  JobSpec small;
  small.m = small.n = small.k = n_base;
  cfg.batch_flops = small.flops() + 1;  // smalls share one lease
  cfg.batch_max = 4;

  // Calibrate the arrival rate off the modeled service time of one small
  // job on one node: mean gap = half that, i.e. the plane stays busy
  // (open-loop, offered load exceeds a single lease's capacity).
  double small_makespan = 0.0;
  {
    GemmService probe(machine, cfg);
    const SubmitResult r = probe.submit(small, 0.0);
    probe.drain();
    small_makespan = probe.report(r.id).service();
  }
  const Stream stream =
      make_stream(n_base, jobs, small_makespan / 2.0, /*seed=*/0xbeefcafe);

  ServiceConfig serial_cfg = cfg;
  serial_cfg.serialize = true;

  const Arm arms[] = {
      run_arm(machine, stream, cfg, "concurrent"),
      run_arm(machine, stream, serial_cfg, "serial"),
  };

  TableWriter table({"arm", "jobs/s", "p50 ms", "p99 ms", "mean wait ms",
                     "util", "batches", "deadline misses"});
  std::vector<ServiceArm> emit;
  for (const Arm& a : arms) {
    const ServiceMetrics& m = a.metrics;
    table.add_row({a.label, TableWriter::num(m.jobs_per_s, 1),
                   ms(m.p50_latency), ms(m.p99_latency), ms(m.mean_wait),
                   TableWriter::num(m.utilization, 3),
                   TableWriter::num(static_cast<long long>(m.batches)),
                   TableWriter::num(
                       static_cast<long long>(m.deadline_misses))});
    trace::NumberMap params{
        {"n_base", static_cast<double>(n_base)},
        {"jobs", static_cast<double>(jobs)},
        {"mean_interarrival_s", stream.mean_interarrival},
        {"queue_cap", static_cast<double>(cfg.queue_cap)},
        {"flops_per_node", cfg.flops_per_node},
        {"batch_flops", cfg.batch_flops},
        {"batch_max", static_cast<double>(cfg.batch_max)},
        {"serialize", a.label == "serial" ? 1.0 : 0.0},
    };
    emit.push_back({a.label, std::move(params), m, a.wall});
  }
  table.print(std::cout, "Linux cluster, 8 dual nodes (16 ranks), " +
                             std::to_string(jobs) +
                             " jobs, Poisson arrivals, N in {" +
                             std::to_string(n_base) + "," +
                             std::to_string(2 * n_base) + "}");

  const double ratio = arms[0].metrics.jobs_per_s / arms[1].metrics.jobs_per_s;
  std::cout << "  throughput ratio (concurrent/serial): "
            << TableWriter::num(ratio, 3) << "x\n\n"
            << "Expected shape: >= 1.5x jobs/s for the concurrent arm — "
               "small multiplies are latency-bound and cannot use 16 ranks, "
               "so packing right-sized sub-teams beats job-at-a-time.\n";
  return write_service_metrics_env("service", emit) ? 0 : 1;
}
