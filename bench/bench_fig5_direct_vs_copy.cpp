// Figure 5: shared-memory flavors — direct access vs copy-based — for
// C = AB and C = A^T B with N = 2000 on 16 processors of the Cray X1 and
// the SGI Altix.
//
// Expected shape (paper): copy wins on the X1 (remote memory is not
// cacheable, so dgemm on in-place views starves), direct wins on the Altix
// (cacheable NUMA; the copy only adds memory traffic).

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  using blas::Trans;

  const index_t n = smoke_n(2000, 200);
  MetricsLog log("fig5");
  std::cout << "Figure 5: direct access vs copy, N=" << n << ", 16 CPUs\n\n";
  struct Platform {
    const char* name;
    MachineModel machine;
  };
  const Platform platforms[] = {
      {"Cray X1", MachineModel::cray_x1(4)},
      {"SGI Altix", MachineModel::sgi_altix(16)},
  };
  for (const auto& p : platforms) {
    Testbed tb(p.machine);
    TableWriter table({"case", "direct GFLOP/s", "copy GFLOP/s", "winner"});
    for (Trans ta : {Trans::No, Trans::Yes}) {
      SrummaOptions direct;
      direct.ta = ta;
      direct.shm_flavor = ShmFlavor::Direct;
      SrummaOptions copy = direct;
      copy.shm_flavor = ShmFlavor::Copy;
      double wall_d = 0.0, wall_c = 0.0;
      const MultiplyResult rd = run_srumma(tb, n, n, n, direct, &wall_d);
      const MultiplyResult rc = run_srumma(tb, n, n, n, copy, &wall_c);
      const char* op = ta == Trans::No ? "C=AB" : "C=AtB";
      table.add_row({op, gf(rd.gflops), gf(rc.gflops),
                     rd.gflops >= rc.gflops ? "direct" : "copy"});
      const trace::NumberMap params = {
          {"n", static_cast<double>(n)},
          {"cpus", static_cast<double>(tb.team.size())}};
      log.add(std::string(p.name) + " " + op + " direct", rd, params,
              wall_d);
      log.add(std::string(p.name) + " " + op + " copy", rc, params, wall_c);
    }
    table.print(std::cout, p.name);
    std::cout << "\n";
  }
  // The paper adds: "the gap between these two algorithms actually
  // increases for larger processor counts on the Altix" — show that cut.
  std::cout << "Altix processor-count cut (N=" << n << "):\n";
  TableWriter growth({"CPUs", "direct ms", "copy ms", "copy penalty %"});
  for (int cpus : {16, 32, 64, 128}) {
    Testbed tb(MachineModel::sgi_altix(cpus));
    SrummaOptions d;
    d.shm_flavor = ShmFlavor::Direct;
    SrummaOptions c;
    c.shm_flavor = ShmFlavor::Copy;
    double wall_d = 0.0, wall_c = 0.0;
    const MultiplyResult rd = run_srumma(tb, n, n, n, d, &wall_d);
    const MultiplyResult rc = run_srumma(tb, n, n, n, c, &wall_c);
    growth.add_row({TableWriter::num(static_cast<long long>(cpus)),
                    ms(rd.elapsed), ms(rc.elapsed),
                    TableWriter::num(
                        100.0 * (rc.elapsed - rd.elapsed) / rd.elapsed, 1)});
    const trace::NumberMap params = {{"n", static_cast<double>(n)},
                                     {"cpus", static_cast<double>(cpus)}};
    log.add("Altix growth direct", rd, params, wall_d);
    log.add("Altix growth copy", rc, params, wall_c);
  }
  growth.print(std::cout);
  std::cout << "\nExpected shape: copy wins on the X1, direct on the Altix "
               "(with a gap that grows with P).\n";
  return log.write_env() ? 0 : 1;
}
