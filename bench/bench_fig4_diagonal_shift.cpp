// Figure 4 / Section 3.1: the diagonal-shift task ordering reduces
// communication contention on SMP clusters — and doubles as the ordering
// ablation called out in DESIGN.md (naive -> shm-first -> +diagonal-shift
// -> +A-reuse).
//
// The effect is strongest on wide SMP nodes (16-way IBM SP): without the
// shift, all processors of a node start by fetching from the same remote
// node and share one NIC's bandwidth.

#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

void run_machine(const std::string& name, MachineModel machine, index_t n) {
  Testbed tb(std::move(machine));
  struct Arm {
    const char* label;
    OrderingPolicy policy;
  };
  const Arm arms[] = {
      {"naive", OrderingPolicy::naive()},
      {"shm-first", {true, false, false}},
      {"shm-first + diagonal shift", {true, true, false}},
      {"full (+A-reuse)", OrderingPolicy::full()},
  };
  TableWriter table({"ordering", "time ms", "GFLOP/s", "overlap %",
                     "wait ms/rank"});
  for (const Arm& arm : arms) {
    SrummaOptions opt;
    opt.ordering = arm.policy;
    const MultiplyResult r = run_srumma(tb, n, n, n, opt);
    table.add_row({arm.label, ms(r.elapsed), gf(r.gflops),
                   TableWriter::num(r.overlap * 100.0, 1),
                   ms(r.trace.time_wait / tb.team.size())});
  }
  table.print(std::cout, name + " (" + std::to_string(tb.team.size()) +
                             " CPUs, N=" + std::to_string(n) + ")");
  std::cout << "\n";
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Figure 4: diagonal-shift ordering vs contention "
               "(+ ordering ablation)\n\n";
  run_machine("IBM SP, 16-way nodes", MachineModel::ibm_sp(4), 2048);
  run_machine("Linux cluster, 2-way nodes", MachineModel::linux_myrinet(8),
              2048);
  std::cout << "Expected shape: the diagonal shift matters most on the "
               "16-way SP (paper: \"performs better if there are more "
               "processors per node\").\n";
  return 0;
}
