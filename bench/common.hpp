#pragma once
// Shared runners for the paper-reproduction benches.
//
// Every bench builds phantom (model-only) distributed matrices, runs the
// algorithms through the identical code paths the correctness tests
// exercise with real data, and prints the rows the corresponding paper
// table or figure reports.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "baselines/cannon.hpp"
#include "baselines/summa.hpp"
#include "core/srumma.hpp"
#include "dist/dist_matrix.hpp"
#include "msg/comm.hpp"
#include "perf/model.hpp"
#include "rma/rma.hpp"
#include "trace/metrics_json.hpp"
#include "util/table.hpp"

namespace srumma::bench {

using trace::MetricsLog;

/// SRUMMA_BENCH_SMOKE=1 shrinks problem sizes so scripts/bench_report.sh
/// can regenerate every BENCH_*.json in seconds; the emitted schema is
/// identical to a full run (params record the sizes actually used).
inline bool smoke_mode() {
  const char* v = std::getenv("SRUMMA_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Problem size under the current mode: `full` normally, `small` in smoke.
inline index_t smoke_n(index_t full, index_t small) {
  return smoke_mode() ? small : full;
}

/// One machine + comm stack, reusable across experiment runs.
struct Testbed {
  Team team;
  RmaRuntime rma;
  Comm comm;

  explicit Testbed(MachineModel machine, RmaConfig rma_cfg = {})
      : team(std::move(machine)), rma(team, rma_cfg), comm(team) {}

  [[nodiscard]] ProcGrid grid() const {
    // const_cast-free: ProcGrid::near_square needs only the size.
    return ProcGrid::near_square(team.machine().total_ranks());
  }
};

/// Phantom SRUMMA run: C(m x n) = op(A) op(B) with inner dimension k.
inline MultiplyResult run_srumma(Testbed& tb, index_t m, index_t n, index_t k,
                                 SrummaOptions opt = {}) {
  const ProcGrid g = tb.grid();
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;
  MultiplyResult out;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    DistMatrix a(tb.rma, me, tra ? k : m, tra ? m : k, g, true);
    DistMatrix b(tb.rma, me, trb ? n : k, trb ? k : n, g, true);
    DistMatrix c(tb.rma, me, m, n, g, true);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  return out;
}

/// Phantom pdgemm (SUMMA + transpose redistribution) run.
inline MultiplyResult run_pdgemm(Testbed& tb, index_t m, index_t n, index_t k,
                                 PdgemmOptions opt = {}) {
  const ProcGrid g = tb.grid();
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;
  MultiplyResult out;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    DistMatrix a(tb.rma, me, tra ? k : m, tra ? m : k, g, true);
    DistMatrix b(tb.rma, me, trb ? n : k, trb ? k : n, g, true);
    DistMatrix c(tb.rma, me, m, n, g, true);
    MultiplyResult r = pdgemm_model(me, tb.comm, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  return out;
}

/// Phantom Cannon run (square grid machines only).
inline MultiplyResult run_cannon(Testbed& tb, index_t n) {
  MultiplyResult out;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    CannonOptions opt;
    opt.m = opt.n = opt.k = n;
    opt.phantom = true;
    MultiplyResult r = cannon_multiply(me, tb.comm, MatrixView{}, MatrixView{},
                                       MatrixView{}, opt);
    if (me.id() == 0) out = r;
  });
  return out;
}

/// SRUMMA options matched to a platform, as the paper configures it:
/// copy-based shared-memory flavor where remote memory is not cacheable.
inline SrummaOptions platform_options(const MachineModel& m) {
  SrummaOptions opt;
  if (m.single_shared_domain && !m.remote_cacheable) {
    opt.shm_flavor = ShmFlavor::Copy;
  }
  return opt;
}

inline std::string gf(double gflops) { return TableWriter::num(gflops, 1); }
inline std::string ms(double seconds) {
  return TableWriter::num(seconds * 1e3, 2);
}

}  // namespace srumma::bench
