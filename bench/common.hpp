#pragma once
// Shared runners for the paper-reproduction benches.
//
// Every bench builds phantom (model-only) distributed matrices, runs the
// algorithms through the identical code paths the correctness tests
// exercise with real data, and prints the rows the corresponding paper
// table or figure reports.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "analysis/analyzer.hpp"
#include "baselines/cannon.hpp"
#include "baselines/summa.hpp"
#include "cache/block_cache.hpp"
#include "core/srumma.hpp"
#include "dist/dist_matrix.hpp"
#include "msg/comm.hpp"
#include "perf/model.hpp"
#include "rma/rma.hpp"
#include "trace/metrics_json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace srumma::bench {

using trace::MetricsLog;

/// SRUMMA_BENCH_SMOKE=1 shrinks problem sizes so scripts/bench_report.sh
/// can regenerate every BENCH_*.json in seconds; the emitted schema is
/// identical to a full run (params record the sizes actually used).
inline bool smoke_mode() {
  const char* v = std::getenv("SRUMMA_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Problem size under the current mode: `full` normally, `small` in smoke.
inline index_t smoke_n(index_t full, index_t small) {
  return smoke_mode() ? small : full;
}

/// Wall-clock stopwatch for the harness-speed metrics (wall_seconds /
/// wall_per_virtual_second in every BENCH_*.json row): starts on
/// construction, seconds() reads elapsed real time.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One machine + comm stack, reusable across experiment runs.
struct Testbed {
  Team team;
  RmaRuntime rma;
  Comm comm;

  explicit Testbed(MachineModel machine, RmaConfig rma_cfg = {})
      : team(std::move(machine)), rma(team, rma_cfg), comm(team) {}

  [[nodiscard]] ProcGrid grid() const {
    // const_cast-free: ProcGrid::near_square needs only the size.
    return ProcGrid::near_square(team.machine().total_ranks());
  }
};

/// Phantom SRUMMA run: C(m x n) = op(A) op(B) with inner dimension k.
/// `wall_out`, when given, receives the wall-clock seconds of the run.
inline MultiplyResult run_srumma(Testbed& tb, index_t m, index_t n, index_t k,
                                 SrummaOptions opt = {},
                                 double* wall_out = nullptr) {
  const ProcGrid g = tb.grid();
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;
  MultiplyResult out;
  tb.team.reset();
  const WallTimer wall;
  tb.team.run([&](Rank& me) {
    DistMatrix a(tb.rma, me, tra ? k : m, tra ? m : k, g, true);
    DistMatrix b(tb.rma, me, trb ? n : k, trb ? k : n, g, true);
    DistMatrix c(tb.rma, me, m, n, g, true);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  if (wall_out != nullptr) *wall_out = wall.seconds();
  return out;
}

/// Phantom pdgemm (SUMMA + transpose redistribution) run.
inline MultiplyResult run_pdgemm(Testbed& tb, index_t m, index_t n, index_t k,
                                 PdgemmOptions opt = {},
                                 double* wall_out = nullptr) {
  const ProcGrid g = tb.grid();
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;
  MultiplyResult out;
  tb.team.reset();
  const WallTimer wall;
  tb.team.run([&](Rank& me) {
    DistMatrix a(tb.rma, me, tra ? k : m, tra ? m : k, g, true);
    DistMatrix b(tb.rma, me, trb ? n : k, trb ? k : n, g, true);
    DistMatrix c(tb.rma, me, m, n, g, true);
    MultiplyResult r = pdgemm_model(me, tb.comm, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  if (wall_out != nullptr) *wall_out = wall.seconds();
  return out;
}

/// Phantom Cannon run (square grid machines only).
inline MultiplyResult run_cannon(Testbed& tb, index_t n,
                                 double* wall_out = nullptr) {
  MultiplyResult out;
  tb.team.reset();
  const WallTimer wall;
  tb.team.run([&](Rank& me) {
    CannonOptions opt;
    opt.m = opt.n = opt.k = n;
    opt.phantom = true;
    MultiplyResult r = cannon_multiply(me, tb.comm, MatrixView{}, MatrixView{},
                                       MatrixView{}, opt);
    if (me.id() == 0) out = r;
  });
  if (wall_out != nullptr) *wall_out = wall.seconds();
  return out;
}

/// `--cache` / `--no-cache` CLI toggle shared by the benches.  Returns the
/// explicit choice, or nullopt when neither flag is given — RmaConfig then
/// defers to the SRUMMA_CACHE environment variable (default off).
inline std::optional<bool> parse_cache_flag(int argc, char** argv) {
  std::optional<bool> flag;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--cache") {
      flag = true;
    } else if (a == "--no-cache") {
      flag = false;
    }
  }
  return flag;
}

/// RmaConfig for a bench arm with the cooperative block cache toggled.
/// The explicit capacity is generous (256 MiB modeled per domain) so
/// cross-C-tile temporal reuse is not LRU-evicted mid-multiply; the
/// default capacity is sized for the pipeline lookahead footprint only.
inline RmaConfig cache_rma_config(std::optional<bool> cache) {
  RmaConfig cfg;
  cfg.cache = cache;
  cfg.cache_capacity = std::uint64_t{256} << 20;
  return cfg;
}

/// Whether `rma` actually has the cache engaged (flag or environment).
inline bool cache_engaged(RmaRuntime& rma) {
  return rma.block_cache() != nullptr && rma.block_cache()->config().enabled;
}

/// SRUMMA options matched to a platform, as the paper configures it:
/// copy-based shared-memory flavor where remote memory is not cacheable.
inline SrummaOptions platform_options(const MachineModel& m) {
  SrummaOptions opt;
  if (m.single_shared_domain && !m.remote_cacheable) {
    opt.shm_flavor = ShmFlavor::Copy;
  }
  return opt;
}

/// Static-analyzer ceilings for this bench configuration, appended to the
/// metrics-JSON params.  scripts/bench_report.sh and check.sh assert every
/// row's runtime buffer_bytes_peak counter stays <= the emitted bound, so
/// a pipeline/engine buffering regression fails the report, not just the
/// unit tests.  Requires the analyzer to certify the configuration — a
/// bench must never run a schedule the static verifier rejects.
inline void append_static_bounds(trace::NumberMap& params,
                                 const MachineModel& machine, index_t m,
                                 index_t n, index_t k,
                                 const SrummaOptions& opt) {
  analysis::AnalysisConfig cfg;
  cfg.machine = machine;
  cfg.options = opt;
  cfg.m = m;
  cfg.n = n;
  cfg.k = k;
  const analysis::AnalysisReport rep =
      analysis::analyze(analysis::build_plan_model(cfg));
  SRUMMA_REQUIRE(rep.certified(),
                 "static analyzer flagged this bench configuration");
  params.emplace_back("buffer_bytes_peak_bound",
                      static_cast<double>(rep.bounds.buffer_bytes));
  params.emplace_back("cache_pins_bound",
                      static_cast<double>(rep.bounds.cache_pins));
}

inline std::string gf(double gflops) { return TableWriter::num(gflops, 1); }
inline std::string ms(double seconds) {
  return TableWriter::num(seconds * 1e3, 2);
}

}  // namespace srumma::bench
