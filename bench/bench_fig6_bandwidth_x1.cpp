// Figure 6: point-to-point bandwidth comparison on the Cray X1 — the
// ARMCI-style get (an optimized block copy through globally addressable
// memory) vs MPI send/receive (buffered copies through the MPI library).
//
// MPI timings follow the paper's convention: half of the round-trip
// exchange, measured at the receiver.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;

  std::cout << "Figure 6: bandwidth comparison on the Cray X1\n\n";
  Testbed tb(MachineModel::cray_x1(2));  // 8 MSPs, one shared domain

  TableWriter table({"message bytes", "ARMCI get MB/s", "MPI send/recv MB/s"});
  for (std::size_t bytes = 8; bytes <= (4u << 20); bytes *= 4) {
    const std::size_t elems = bytes / sizeof(double);
    double t_get = 0.0, t_mpi = 0.0;
    tb.team.reset();
    tb.team.run([&](Rank& me) {
      // One-sided: rank 0 gets from rank 4 (another node's MSP — still the
      // same shared-memory domain on the X1).
      me.barrier();
      if (me.id() == 0 && elems > 0) {
        const double t0 = me.clock().now();
        RmaHandle h = tb.rma.nbget(me, 4, nullptr, nullptr, elems);
        tb.rma.wait(me, h);
        t_get = me.clock().now() - t0;
      }
      me.barrier();
      // Two-sided: half of a same-size ping-pong (the paper's convention).
      if (me.id() == 0 && elems > 0) {
        const double t0 = me.clock().now();
        tb.comm.send(me, 4, 1, nullptr, elems);
        tb.comm.recv(me, 4, 2, nullptr, elems);  // echo
        t_mpi = (me.clock().now() - t0) / 2.0;
      } else if (me.id() == 4 && elems > 0) {
        tb.comm.recv(me, 0, 1, nullptr, elems);
        tb.comm.send(me, 0, 2, nullptr, elems);
      }
      me.barrier();
    });
    table.add_row({TableWriter::num(static_cast<long long>(bytes)),
                   TableWriter::num(static_cast<double>(bytes) / t_get / 1e6, 1),
                   TableWriter::num(static_cast<double>(bytes) / t_mpi / 1e6, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the block-copy get wins across the whole "
               "range on the X1 (its globally addressable memory needs no "
               "request/reply; the short-message exception the paper notes "
               "applies to the cluster gets of Fig. 8).\n";
  return 0;
}
