// Figure 8: point-to-point performance of MPI send/receive vs ARMCI get on
// the IBM SP (top) and the Linux cluster with Myrinet (bottom), across
// message sizes.
//
// Shapes to reproduce: on the SP, LAPI's interrupt-driven get has *higher*
// latency than polling MPI, and neither protocol is zero-copy, so both
// saturate at similar sub-wire bandwidth.  On Myrinet, the zero-copy GM get
// clearly beats MPI for medium and large messages.

#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

void run_machine(const std::string& name, MachineModel machine) {
  Testbed tb(std::move(machine));
  const int peer = tb.team.machine().ranks_per_node;  // first off-node rank
  TableWriter table({"message bytes", "ARMCI get MB/s", "MPI MB/s",
                     "get latency us", "MPI latency us"});
  for (std::size_t bytes = 8; bytes <= (4u << 20); bytes *= 4) {
    const std::size_t elems = bytes / sizeof(double);
    double t_get = 0.0, t_mpi = 0.0;
    tb.team.reset();
    tb.team.run([&](Rank& me) {
      me.barrier();
      if (me.id() == 0) {
        const double t0 = me.clock().now();
        RmaHandle h = tb.rma.nbget(me, peer, nullptr, nullptr, elems);
        tb.rma.wait(me, h);
        t_get = me.clock().now() - t0;
      }
      me.barrier();
      // Half of a same-size ping-pong: the wire is paid exactly once per
      // direction, so RTT/2 is the delivered one-way time.
      if (me.id() == 0) {
        const double t0 = me.clock().now();
        tb.comm.send(me, peer, 1, nullptr, elems);
        tb.comm.recv(me, peer, 2, nullptr, elems);
        t_mpi = (me.clock().now() - t0) / 2.0;
      } else if (me.id() == peer) {
        tb.comm.recv(me, 0, 1, nullptr, elems);
        tb.comm.send(me, 0, 2, nullptr, elems);
      }
      me.barrier();
    });
    table.add_row({TableWriter::num(static_cast<long long>(bytes)),
                   TableWriter::num(static_cast<double>(bytes) / t_get / 1e6, 1),
                   TableWriter::num(static_cast<double>(bytes) / t_mpi / 1e6, 1),
                   TableWriter::num(t_get * 1e6, 1),
                   TableWriter::num(t_mpi * 1e6, 1)});
  }
  table.print(std::cout, name);
  std::cout << "\n";
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Figure 8: MPI vs ARMCI_Get across message sizes\n\n";
  run_machine("IBM SP (LAPI: interrupt-driven, not zero-copy)",
              MachineModel::ibm_sp(2));
  run_machine("Linux cluster (Myrinet GM: zero-copy)",
              MachineModel::linux_myrinet(2));
  return 0;
}
