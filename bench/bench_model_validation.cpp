// Section 2.1 model validation: the measured (virtual-time) SRUMMA
// makespan against the analytic model — eq. (1) with fully exposed
// communication and eq. (3) with the achieved overlap — plus the
// isoefficiency table showing the O(P^1.5) scaling SRUMMA shares with
// Cannon's algorithm.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;

  std::cout << "Section 2.1: analytic model vs measured virtual time "
               "(Linux cluster)\n\n";
  TableWriter table({"N", "P", "measured ms", "eq(3) ms", "ratio", "eq(1) ms",
                     "overlap %", "efficiency"});
  for (int nodes : {8, 32}) {
    Testbed tb(MachineModel::linux_myrinet(nodes));
    const int p = tb.team.size();
    for (index_t n : {1000, 2000, 4000, 8000}) {
      const MultiplyResult r = run_srumma(tb, n, n, n);
      // The model's t_ma should reflect the rate of the blocks dgemm
      // actually runs on (local C rows x k-chunk panels).
      const auto params = perf::params_from_machine(
          tb.team.machine(), std::max<index_t>(n / 8, 64));
      const double eq3 = perf::t_par_rma_overlap(
          static_cast<double>(n), p, params, 1.0 - r.overlap);
      const double eq1 =
          perf::t_par_rma(static_cast<double>(n), p, params);
      const double t_serial = perf::t_seq(static_cast<double>(n), params);
      table.add_row({TableWriter::num(static_cast<long long>(n)),
                     TableWriter::num(static_cast<long long>(p)),
                     ms(r.elapsed), ms(eq3),
                     TableWriter::num(r.elapsed / eq3, 2), ms(eq1),
                     TableWriter::num(r.overlap * 100.0, 1),
                     TableWriter::num(t_serial / (r.elapsed * p), 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nIsoefficiency (eta = 0.8): N required grows like sqrt(P), "
               "so work N^3 grows like P^1.5 — same as Cannon's algorithm\n\n";
  TableWriter iso({"P", "N(eta=0.8)", "work ratio vs previous"});
  const auto params =
      perf::params_from_machine(MachineModel::linux_myrinet(1), 512);
  double prev_work = 0.0;
  for (double p : {4.0, 16.0, 64.0, 256.0}) {
    const double n = perf::isoefficiency_n(p, 0.8, params);
    const double work = n * n * n;
    iso.add_row({TableWriter::num(static_cast<long long>(p)),
                 TableWriter::num(n, 0),
                 prev_work > 0 ? TableWriter::num(work / prev_work, 1) : "-"});
    prev_work = work;
  }
  iso.print(std::cout);
  std::cout << "\n(each 4x in P should multiply the required work by "
               "4^1.5 = 8)\n";
  return 0;
}
