// The paper's memory-efficiency claim: "The described algorithm is more
// general, memory efficient..." (Section 1).
//
// Per-rank algorithm-internal buffer memory (communication panels,
// circulation temporaries, redistribution copies — beyond the matrices
// themselves), worst rank, as a fraction of the per-rank matrix storage:
//
//   * SRUMMA: a handful of patch buffers bounded by the K/C chunking —
//     and zero on shared-memory machines with direct access;
//   * SUMMA/pdgemm: two full panels per step; a transposed operand costs a
//     whole redistributed copy of the matrix;
//   * Cannon: two full circulating block temporaries.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;

  std::cout << "Memory footprint: per-rank algorithm buffers, worst rank "
               "(Linux cluster, 16 CPUs)\n\n";
  Testbed tb(MachineModel::linux_myrinet(8));
  const int p_ranks = tb.team.size();

  TableWriter table({"N", "matrix KB/rank", "SRUMMA KB", "SRUMMA capped KB",
                     "pdgemm KB", "pdgemm At*Bt KB", "Cannon KB"});
  for (index_t n : {1000, 2000, 4000, 8000}) {
    const double matrix_kb =
        static_cast<double>(n) * static_cast<double>(n) *
        static_cast<double>(sizeof(double)) / p_ranks / 1024.0;

    const MultiplyResult s = run_srumma(tb, n, n, n, SrummaOptions{});
    SrummaOptions capped;
    capped.c_chunk = 256;
    capped.k_chunk = 128;
    const MultiplyResult sc = run_srumma(tb, n, n, n, capped);
    const MultiplyResult d = run_pdgemm(tb, n, n, n, {});
    PdgemmOptions tt;
    tt.ta = tt.tb = blas::Trans::Yes;
    const MultiplyResult dtt = run_pdgemm(tb, n, n, n, tt);
    const MultiplyResult cn = run_cannon(tb, n);

    auto kb = [](std::uint64_t bytes) {
      return TableWriter::num(static_cast<double>(bytes) / 1024.0, 0);
    };
    table.add_row({TableWriter::num(static_cast<long long>(n)),
                   TableWriter::num(matrix_kb, 0),
                   kb(s.trace.buffer_bytes_peak),
                   kb(sc.trace.buffer_bytes_peak),
                   kb(d.trace.buffer_bytes_peak),
                   kb(dtt.trace.buffer_bytes_peak),
                   kb(cn.trace.buffer_bytes_peak)});
  }
  table.print(std::cout);

  std::cout << "\nShared-memory machine (SGI Altix, 16 CPUs): direct access "
               "needs no buffers at all\n";
  Testbed altix(MachineModel::sgi_altix(16));
  TableWriter t2({"flavor", "SRUMMA buffer KB (N=4000)"});
  for (ShmFlavor fl : {ShmFlavor::Direct, ShmFlavor::Copy}) {
    SrummaOptions opt;
    opt.shm_flavor = fl;
    const MultiplyResult r = run_srumma(altix, 4000, 4000, 4000, opt);
    t2.add_row({fl == ShmFlavor::Direct ? "direct" : "copy",
                TableWriter::num(
                    static_cast<double>(r.trace.buffer_bytes_peak) / 1024.0,
                    0)});
  }
  t2.print(std::cout);
  std::cout << "\nExpected shape: SRUMMA's footprint is bounded by the "
               "chunking (and zero for direct access); Cannon carries two "
               "full blocks; pdgemm's transposed cases duplicate the "
               "operand.\n";
  return 0;
}
