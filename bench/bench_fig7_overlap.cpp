// Figure 7: potential degree of communication/computation overlap as a
// function of message size, for ARMCI nonblocking get vs MPI nonblocking
// send, on the IBM SP and the Linux cluster.
//
// Protocol (COMB-style): issue the nonblocking op, compute for exactly the
// transfer's own duration, then wait.  overlap = 1 - exposed/transfer,
// where exposed is the extra time beyond pure computation.  ARMCI's
// zero-copy gets approach 99%; MPI falls off a cliff at the 16 KB
// eager->rendezvous switch because it makes no progress outside the
// library (the paper's Section 4.1).

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

// Transfer-only time for calibrating the compute phase.
double blocking_get_time(Testbed& tb, std::size_t elems) {
  double t = 0.0;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    me.barrier();
    if (me.id() == 0) {
      const double t0 = me.clock().now();
      RmaHandle h = tb.rma.nbget(me, tb.team.size() - 1, nullptr, nullptr,
                                 elems);
      tb.rma.wait(me, h);
      t = me.clock().now() - t0;
    }
  });
  return t;
}

// One-way delivered time, measured at the receiver against clocks
// synchronized by the preceding barrier — the proper denominator for the
// COMB overlap metric.
double blocking_send_time(Testbed& tb, std::size_t elems) {
  double t = 0.0;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    const int peer = tb.team.size() - 1;
    me.barrier();
    const double t0 = me.clock().now();
    if (me.id() == 0) {
      tb.comm.send(me, peer, 1, nullptr, elems);
    } else if (me.id() == peer) {
      tb.comm.recv(me, 0, 1, nullptr, elems);
      t = me.clock().now() - t0;
    }
  });
  return t;
}

double get_overlap(Testbed& tb, std::size_t elems, double comm_time) {
  double total = 0.0;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    me.barrier();
    if (me.id() == 0) {
      const double t0 = me.clock().now();
      RmaHandle h = tb.rma.nbget(me, tb.team.size() - 1, nullptr, nullptr,
                                 elems);
      me.charge_seconds(comm_time);
      tb.rma.wait(me, h);
      total = me.clock().now() - t0;
    }
  });
  const double exposed = total - comm_time;
  return std::clamp(1.0 - exposed / comm_time, 0.0, 1.0);
}

double isend_overlap(Testbed& tb, std::size_t elems, double comm_time) {
  double total = 0.0;
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    const int peer = tb.team.size() - 1;
    if (me.id() == peer) {
      RecvHandle rh = tb.comm.irecv(me, 0, 1, nullptr, elems);
      me.barrier();
      tb.comm.wait(me, rh);
    } else {
      me.barrier();
    }
    if (me.id() == 0) {
      const double t0 = me.clock().now();
      SendHandle h = tb.comm.isend(me, peer, 1, nullptr, elems);
      me.charge_seconds(comm_time);
      tb.comm.wait(me, h);
      total = me.clock().now() - t0;
    }
  });
  const double exposed = total - comm_time;
  return std::clamp(1.0 - exposed / comm_time, 0.0, 1.0);
}

void run_machine(const std::string& name, MachineModel machine,
                 MetricsLog& log) {
  Testbed tb(std::move(machine));
  TableWriter table(
      {"message bytes", "ARMCI nbget overlap %", "MPI isend overlap %"});
  const std::size_t max_bytes = smoke_mode() ? (64u << 10) : (4u << 20);
  for (std::size_t bytes = 256; bytes <= max_bytes; bytes *= 4) {
    const std::size_t elems = bytes / sizeof(double);
    const WallTimer wall;
    const double tg = blocking_get_time(tb, elems);
    const double tm = blocking_send_time(tb, elems);
    const double get_ov = get_overlap(tb, elems, tg);
    const double send_ov = isend_overlap(tb, elems, tm);
    table.add_row({TableWriter::num(static_cast<long long>(bytes)),
                   TableWriter::num(get_ov * 100.0, 1),
                   TableWriter::num(send_ov * 100.0, 1)});
    // The row's virtual denominator: the two measured transfer times (the
    // overlap arms re-run them against a calibrated compute phase).
    log.add_metrics(name,
                    {{"armci_nbget_overlap", get_ov},
                     {"mpi_isend_overlap", send_ov}},
                    {{"bytes", static_cast<double>(bytes)}}, wall.seconds(),
                    tg + tm);
  }
  table.print(std::cout, name);
  std::cout << "\n";
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Figure 7: potential communication/computation overlap vs "
               "message size\n(note the MPI cliff at the 16 KB "
               "eager->rendezvous switch)\n\n";
  MetricsLog log("fig7");
  run_machine("IBM SP", MachineModel::ibm_sp(2), log);
  run_machine("Linux cluster (Myrinet)", MachineModel::linux_myrinet(2), log);
  return log.write_env() ? 0 : 1;
}
