// Fault-plane overhead: what deterministic injection + retry costs SRUMMA
// at realistic fault rates, for the nonblocking pipeline and the blocking
// arm.
//
// Three injection levels (off / 0.1% / 1% per-transfer fail+delay rate)
// on the Linux cluster model.  The "off" rows are the zero-cost baseline:
// with no plane installed the hot paths only test a null pointer.  The
// nonblocking pipeline should absorb most of the recovery time — retries
// of prefetched patches overlap with compute — while the blocking arm
// pays every retry on the critical path.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;

  std::cout << "Fault-injection overhead: SRUMMA nonblocking vs blocking, "
               "Linux cluster (Myrinet), 16 CPUs\n\n";
  const MachineModel machine = MachineModel::linux_myrinet(8);
  const index_t n = 4000;

  TableWriter table({"rate %", "mode", "GFLOP/s", "overhead %", "retries",
                     "delayed", "recovery ms"});
  for (const bool nonblocking : {true, false}) {
    double base_elapsed = 0.0;
    for (const double rate : {0.0, 0.001, 0.01}) {
      RmaConfig cfg;
      if (rate > 0.0) {
        fault::FaultConfig f;
        f.seed = 0xbe7c;
        f.fail_rate = rate;
        f.delay_rate = rate;
        f.delay_factor = 8.0;
        RetryPolicy rp;
        rp.max_attempts = 8;
        cfg.faults = f;
        cfg.retry = rp;
      }
      Testbed tb(machine, cfg);
      SrummaOptions opt;
      opt.nonblocking = nonblocking;
      const MultiplyResult r = run_srumma(tb, n, n, n, opt);
      if (rate == 0.0) base_elapsed = r.elapsed;
      const double overhead = (r.elapsed - base_elapsed) / base_elapsed;
      table.add_row(
          {TableWriter::num(rate * 100.0, 1),
           nonblocking ? "nonblocking" : "blocking", gf(r.gflops),
           TableWriter::num(overhead * 100.0, 2),
           TableWriter::num(static_cast<long long>(r.trace.rma_retries)),
           TableWriter::num(static_cast<long long>(r.trace.faults_delayed)),
           ms(r.trace.time_recovery)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: zero rows show the disabled-plane "
               "baseline; at 1% the blocking arm loses a larger fraction "
               "than the pipeline, which hides retried prefetches behind "
               "compute.\n";
  return 0;
}
