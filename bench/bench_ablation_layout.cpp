// Ablation: data layout — ScaLAPACK's block-cyclic distribution (what the
// real pdgemm runs on) vs the plain block distribution (what SRUMMA uses).
//
// Two effects to show:
//   * pdgemm over block-cyclic is sensitive to the blocking factor NB
//     (more panels = more broadcast latency; the paper tuned block sizes
//     empirically), and the plain-block pdgemm model used by the
//     paper-figure benches sits inside that NB envelope;
//   * one-sided access *fragments* on the cyclic layout (one get per
//     intersected tile) — the structural reason SRUMMA assumes plain
//     blocks.

#include <iostream>

#include "bench/common.hpp"
#include "cyclic/pdgemm_cyclic.hpp"

namespace srumma::bench {
namespace {

void nb_sweep(const std::string& name, MachineModel machine, index_t n) {
  Testbed tb(std::move(machine));
  const ProcGrid grid = tb.grid();
  TableWriter table({"layout", "NB", "time ms", "GFLOP/s"});

  for (index_t nb : {16, 32, 64, 128, 256}) {
    MultiplyResult out;
    tb.team.reset();
    tb.team.run([&](Rank& me) {
      CyclicMatrix a(tb.rma, me, n, n, nb, nb, grid, true);
      CyclicMatrix b(tb.rma, me, n, n, nb, nb, grid, true);
      CyclicMatrix c(tb.rma, me, n, n, nb, nb, grid, true);
      MultiplyResult r = pdgemm_cyclic(me, tb.comm, a, b, c);
      if (me.id() == 0) out = r;
    });
    table.add_row({"block-cyclic", TableWriter::num(static_cast<long long>(nb)),
                   ms(out.elapsed), gf(out.gflops)});
  }
  const MultiplyResult plain = run_pdgemm(tb, n, n, n, {});
  table.add_row({"plain block (model)", "-", ms(plain.elapsed),
                 gf(plain.gflops)});
  const MultiplyResult srumma_r =
      run_srumma(tb, n, n, n, platform_options(tb.team.machine()));
  table.add_row({"SRUMMA (plain block)", "-", ms(srumma_r.elapsed),
                 gf(srumma_r.gflops)});
  table.print(std::cout, name + ", N=" + std::to_string(n) + ", " +
                             std::to_string(tb.team.size()) + " CPUs");
  std::cout << "\n";
}

void fragmentation_demo() {
  // One-sided panel fetch cost by layout: gets issued for an A-panel-like
  // rectangle (full row band x 512 columns) of a 4096^2 matrix on 16 ranks.
  Testbed tb(MachineModel::linux_myrinet(8));
  const ProcGrid grid = tb.grid();
  TableWriter table({"layout", "gets for one A panel", "latency cost ms"});
  tb.team.reset();
  tb.team.run([&](Rank& me) {
    CyclicMatrix cyc(tb.rma, me, 4096, 4096, 64, 64, grid, true);
    DistMatrix blk(tb.rma, me, 4096, 4096, grid, true);
    me.barrier();
    if (me.id() == 0) {
      const auto g0 = me.trace().gets;
      const double t0 = me.clock().now();
      auto h1 = cyc.fetch_nb(me, 0, 0, 1024, 512, MatrixView{});
      cyc.wait(me, h1);
      const auto cyc_gets = me.trace().gets - g0;
      const double cyc_t = me.clock().now() - t0;
      PatchHandle h2 = blk.fetch_nb(me, 0, 0, 1024, 512, MatrixView{});
      blk.wait(me, h2);
      const auto blk_gets = me.trace().gets - g0 - cyc_gets;
      const double blk_t = me.clock().now() - t0 - cyc_t;
      table.add_row({"block-cyclic 64x64",
                     TableWriter::num(static_cast<long long>(cyc_gets)),
                     ms(cyc_t)});
      table.add_row({"plain block",
                     TableWriter::num(static_cast<long long>(blk_gets)),
                     ms(blk_t)});
    }
  });
  table.print(std::cout, "One-sided access fragmentation (why SRUMMA uses "
                         "plain blocks)");
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Ablation: block-cyclic (ScaLAPACK layout) vs plain block\n\n";
  nb_sweep("SGI Altix", MachineModel::sgi_altix(16), 2000);
  nb_sweep("Linux cluster", MachineModel::linux_myrinet(8), 2000);
  fragmentation_demo();
  return 0;
}
