// Figure 9: impact of the zero-copy protocol and of nonblocking
// communication on SRUMMA, on the Linux cluster with Myrinet.
//
// Four arms: {blocking, nonblocking} x {zero-copy disabled, enabled}.
// Expected shape: nonblocking+zero-copy is best; the benefit of nonblocking
// communication is amplified when zero-copy is enabled, because without it
// the remote host CPU is stolen to stage the data (paper Section 4.1).

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;

  std::cout << "Figure 9: zero-copy x nonblocking on the Linux cluster "
               "(Myrinet), 16 CPUs\n\n";
  const MachineModel machine = MachineModel::linux_myrinet(8);
  TableWriter table({"N", "blk+copy GF", "blk+zcopy GF", "nb+copy GF",
                     "nb+zcopy GF", "overlap(nb+zcopy) %"});
  for (index_t n : {1000, 2000, 4000, 8000}) {
    std::vector<std::string> row{TableWriter::num(static_cast<long long>(n))};
    double overlap = 0.0;
    for (bool nonblocking : {false, true}) {
      for (bool zero_copy : {false, true}) {
        RmaConfig rc;
        rc.zero_copy = zero_copy;
        Testbed tb(machine, rc);
        SrummaOptions opt;
        opt.nonblocking = nonblocking;
        const MultiplyResult r = run_srumma(tb, n, n, n, opt);
        row.push_back(gf(r.gflops));
        if (nonblocking && zero_copy) overlap = r.overlap;
      }
    }
    row.push_back(TableWriter::num(overlap * 100.0, 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: nb+zcopy highest everywhere; the paper "
               "reports >90% of communication overlapped in this "
               "configuration.\n";
  return 0;
}
