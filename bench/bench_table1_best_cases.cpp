// Table 1: SRUMMA best cases — the nine configurations the paper lists,
// including the transposed and rectangular ones, each printed with the
// paper's measured GFLOP/s for side-by-side comparison.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  using blas::Trans;

  struct Case {
    const char* label;
    MachineModel machine;
    index_t m, n, k;
    Trans ta, tb;
    double paper_srumma, paper_pdgemm;
  };
  const Case cases[] = {
      {"C=AB (Altix)", MachineModel::sgi_altix(128), 4000, 4000, 4000,
       Trans::No, Trans::No, 384.0, 33.9},
      {"C=AB (Cray X1)", MachineModel::cray_x1(32), 2000, 2000, 2000,
       Trans::No, Trans::No, 922.0, 128.0},
      {"C=AB (Linux)", MachineModel::linux_myrinet(64), 12000, 12000, 12000,
       Trans::No, Trans::No, 323.2, 138.6},
      {"C=AB (IBM SP3)", MachineModel::ibm_sp(16), 8000, 8000, 8000,
       Trans::No, Trans::No, 223.0, 186.0},
      {"C=AtBt (Linux)", MachineModel::linux_myrinet(64), 600, 600, 600,
       Trans::Yes, Trans::Yes, 16.64, 6.4},
      {"C=AtB (IBM SP3)", MachineModel::ibm_sp(8), 16000, 16000, 16000,
       Trans::Yes, Trans::No, 108.9, 77.4},
      {"C=AtBt (Altix)", MachineModel::sgi_altix(128), 4000, 4000, 4000,
       Trans::Yes, Trans::Yes, 369.0, 24.3},
      {"rect m4000 n4000 k1000 (Linux)", MachineModel::linux_myrinet(64), 4000,
       4000, 1000, Trans::No, Trans::No, 160.0, 107.5},
      {"rect m1000 n1000 k2000 (Altix)", MachineModel::sgi_altix(64), 1000,
       1000, 2000, Trans::No, Trans::No, 288.0, 17.28},
  };

  std::cout << "Table 1: SRUMMA best cases (model vs paper)\n\n";
  TableWriter table({"case", "CPUs", "SRUMMA GF", "paper", "pdgemm GF",
                     "paper", "model speedup", "paper speedup"});
  for (const Case& c : cases) {
    Testbed tb(c.machine);
    SrummaOptions sopt = platform_options(tb.team.machine());
    sopt.ta = c.ta;
    sopt.tb = c.tb;
    PdgemmOptions dopt;
    dopt.ta = c.ta;
    dopt.tb = c.tb;
    const MultiplyResult s = run_srumma(tb, c.m, c.n, c.k, sopt);
    const MultiplyResult d = run_pdgemm(tb, c.m, c.n, c.k, dopt);
    table.add_row({c.label,
                   TableWriter::num(static_cast<long long>(tb.team.size())),
                   gf(s.gflops), gf(c.paper_srumma), gf(d.gflops),
                   gf(c.paper_pdgemm),
                   TableWriter::num(d.elapsed / s.elapsed, 2),
                   TableWriter::num(c.paper_srumma / c.paper_pdgemm, 2)});
  }
  table.print(std::cout);
  std::cout << "\nNote: the IBM SP At-B case uses 128 CPUs (the paper's "
               "count); absolute pdgemm gaps on the shared-memory machines "
               "are under-reproduced (see EXPERIMENTS.md).\n";
  return 0;
}
