// Ablation: the paper states "optimum block sizes were chosen empirically
// for all matrix sizes and processor counts".  This bench exposes the
// tradeoff the authors tuned by hand:
//
//   * k_chunk — the K-segment length.  Too coarse: the first (unhidden)
//     get is huge and the pipeline has nothing to rotate; too fine: per-get
//     latency dominates.
//   * c_chunk — local C tiling, which bounds buffer memory and creates the
//     A-reuse opportunity.
//   * lookahead — prefetch depth (paper: 1 = the classic double buffer);
//     deeper pipelines are an extension ablated here.
//
// --cache / --no-cache reruns every sweep with the cooperative
// remote-block cache toggled (src/cache); its bytes-saved gauge rides
// along in the metrics JSON rows.

#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

void k_chunk_sweep(const std::string& name, MachineModel machine, index_t n,
                   std::optional<bool> cache, MetricsLog& log) {
  Testbed tb(std::move(machine), cache_rma_config(cache));
  const double cached = cache_engaged(tb.rma) ? 1.0 : 0.0;
  TableWriter table({"k_chunk", "time ms", "GFLOP/s", "overlap %",
                     "gets/rank"});
  for (index_t kc : {0, 32, 64, 125, 250, 500, 1000}) {
    SrummaOptions opt = platform_options(tb.team.machine());
    opt.k_chunk = kc;
    double wall_s = 0.0;
    const MultiplyResult r = run_srumma(tb, n, n, n, opt, &wall_s);
    table.add_row({kc == 0 ? "auto" : TableWriter::num(static_cast<long long>(kc)),
                   ms(r.elapsed), gf(r.gflops),
                   TableWriter::num(r.overlap * 100.0, 1),
                   TableWriter::num(static_cast<long long>(
                       r.trace.gets / static_cast<std::uint64_t>(tb.team.size())))});
    log.add("k_chunk/" + name, r,
            {{"n", static_cast<double>(n)},
             {"k_chunk", static_cast<double>(kc)},
             {"cache", cached}},
            wall_s);
  }
  table.print(std::cout, name + ": k_chunk sweep, N=" + std::to_string(n));
  std::cout << "\n";
}

void lookahead_sweep(const std::string& name, MachineModel machine, index_t n,
                     std::optional<bool> cache, MetricsLog& log) {
  Testbed tb(std::move(machine), cache_rma_config(cache));
  const double cached = cache_engaged(tb.rma) ? 1.0 : 0.0;
  TableWriter table({"lookahead", "time ms", "GFLOP/s", "overlap %"});
  for (int la : {1, 2, 4, 8}) {
    SrummaOptions opt = platform_options(tb.team.machine());
    opt.lookahead = la;
    opt.k_chunk = 64;  // fine tasks so depth can matter
    double wall_s = 0.0;
    const MultiplyResult r = run_srumma(tb, n, n, n, opt, &wall_s);
    table.add_row({TableWriter::num(static_cast<long long>(la)),
                   ms(r.elapsed), gf(r.gflops),
                   TableWriter::num(r.overlap * 100.0, 1)});
    log.add("lookahead/" + name, r,
            {{"n", static_cast<double>(n)},
             {"lookahead", static_cast<double>(la)},
             {"cache", cached}},
            wall_s);
  }
  table.print(std::cout, name + ": prefetch-depth sweep, N=" + std::to_string(n));
  std::cout << "\n";
}

void c_chunk_sweep(const std::string& name, MachineModel machine, index_t n,
                   std::optional<bool> cache, MetricsLog& log) {
  Testbed tb(std::move(machine), cache_rma_config(cache));
  const double cached = cache_engaged(tb.rma) ? 1.0 : 0.0;
  TableWriter table({"c_chunk", "time ms", "GFLOP/s", "buffer KB/rank"});
  for (index_t cc : {0, 64, 128, 256, 512}) {
    SrummaOptions opt = platform_options(tb.team.machine());
    opt.c_chunk = cc;
    double wall_s = 0.0;
    const MultiplyResult r = run_srumma(tb, n, n, n, opt, &wall_s);
    // Buffer footprint ~ 2*(lookahead+2) panels of (c_tile x k_chunk).
    const index_t tile = cc == 0 ? n / tb.grid().p : cc;
    const double buf_kb =
        2.0 * 3.0 * static_cast<double>(tile) * 512.0 * 8.0 / 1024.0;
    table.add_row({cc == 0 ? "whole" : TableWriter::num(static_cast<long long>(cc)),
                   ms(r.elapsed), gf(r.gflops), TableWriter::num(buf_kb, 0)});
    log.add("c_chunk/" + name, r,
            {{"n", static_cast<double>(n)},
             {"c_chunk", static_cast<double>(cc)},
             {"cache", cached}},
            wall_s);
  }
  table.print(std::cout,
              name + ": C-tile sweep (memory cap), N=" + std::to_string(n));
  std::cout << "\n";
}

}  // namespace
}  // namespace srumma::bench

int main(int argc, char** argv) {
  using namespace srumma;
  using namespace srumma::bench;
  const std::optional<bool> cache = parse_cache_flag(argc, argv);
  std::cout << "Ablation: empirical block-size tuning (paper Section 4) and "
               "the prefetch-depth extension\n\n";
  MetricsLog log("ablation_blocksize");
  const index_t n = smoke_n(2000, 256);
  k_chunk_sweep("Linux cluster, 16 CPUs", MachineModel::linux_myrinet(8), n,
                cache, log);
  k_chunk_sweep("SGI Altix, 32 CPUs", MachineModel::sgi_altix(32), n, cache,
                log);
  lookahead_sweep("Linux cluster, 16 CPUs", MachineModel::linux_myrinet(8), n,
                  cache, log);
  c_chunk_sweep("Linux cluster, 16 CPUs", MachineModel::linux_myrinet(8), n,
                cache, log);
  return log.write_env() ? 0 : 1;
}
