// Chaos soak: permanent domain death at each kill point vs the fault-free
// baseline, under both executors (docs/FAULTS.md §7).
//
// A killed arm pays the full recovery stack: up-front buddy replication of
// A, B and the beta-applied C (one inter-domain block mirror per rank),
// the drain of in-flight handles against the dead domain, the team-wide
// declaration barrier, and the survivors' adoption of the dead ranks' C
// commit chains from the replicas (replayed in plan order, so C stays
// bitwise identical — tests/test_chaos.cpp proves that on real data; this
// bench measures the modeled cost of the same code path on phantoms).
//
// Acceptance bar (enforced by scripts/bench_report.sh on the emitted
// BENCH_chaos.json): killed arms complete within 1.5x the fault-free
// virtual time of the engine executor and 2x of the pipeline executor,
// every tripping arm adopts tasks, and the ledger reconciles exactly with
// adoption: copy_tasks + direct_tasks == gemm_calls on every row, and on
// engine rows engine_tasks + tasks_stolen + tasks_adopted == gemm_calls
// (tests/test_chaos.cpp asserts the same split).  The engine holds the
// tighter bar because its dependency-driven scheduler overlaps adoption
// with the tail of its own work; the static pipeline has already drained its
// per-rank schedule when recovery starts, so the whole adoption pass rides
// the critical path — measured ~1.5-1.75x, enforced at 2x to absorb the
// virtual-time jitter from the cooperative cache's fetcher election.

#include <iostream>

#include "bench/common.hpp"
#include "fault/fault_plane.hpp"

namespace srumma::bench {
namespace {

struct Arm {
  MultiplyResult result;
  double wall = 0.0;
  std::string label;
  bool killed = false;
};

const char* point_name(fault::KillPoint p) {
  switch (p) {
    case fault::KillPoint::Prefetch: return "prefetch";
    case fault::KillPoint::Chain: return "chain";
    case fault::KillPoint::Steal: return "steal";
    case fault::KillPoint::Barrier: return "barrier";
    default: return "none";
  }
}

Arm run_arm(const MachineModel& machine, EngineMode mode, index_t n,
            fault::KillPoint kp, std::optional<bool> cache) {
  RmaConfig cfg = cache_rma_config(cache);
  if (kp != fault::KillPoint::None) {
    fault::FaultConfig f;
    f.kill_domain = 1;
    f.kill_point = kp;
    f.buddy_offset = 1;
    cfg.faults = f;
  }
  Testbed tb(machine, cfg);
  SrummaOptions opt = platform_options(tb.team.machine());
  // Several C tiles per rank: each tile's commit chain is one adoption
  // unit, so the dead domain's work spreads over the survivors.
  opt.c_chunk = n / 16;
  opt.engine = mode;
  Arm arm;
  arm.killed = kp != fault::KillPoint::None;
  arm.label = std::string(mode == EngineMode::On ? "engine" : "pipeline") +
              (arm.killed ? std::string("_kill_") + point_name(kp)
                          : std::string("_faultfree"));
  arm.result = run_srumma(tb, n, n, n, opt, &arm.wall);
  return arm;
}

}  // namespace
}  // namespace srumma::bench

int main(int argc, char** argv) {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Permanent domain death: buddy replication + task adoption "
               "vs the fault-free baseline\n\n";
  // 8 dual nodes: recovery cost scales with the DEAD FRACTION of the
  // machine (1/8 here — each survivor adopts ~1/14 extra compute and the
  // replica mirror is one block per rank regardless), so a mid-size
  // cluster is where the 1.5x bar is the honest headline.  On the 4-node
  // testing grid the same code sits near its floor of ~1.5x: one dead
  // domain of 4 means every survivor replays 1/3 extra compute before any
  // communication is even counted (tests/test_chaos.cpp covers that shape
  // for correctness).
  const MachineModel machine = MachineModel::linux_myrinet(8);
  const index_t n = smoke_n(1024, 512);
  // Cache defaults ON here (unlike other benches): adoption replays the
  // dead ranks' panels out of the survivors' warm cooperative caches
  // (docs/FAULTS.md §7), so the cached configuration is the one the 1.5x
  // recovery bar is enforced on.  --no-cache still measures cold recovery.
  const std::optional<bool> cache =
      parse_cache_flag(argc, argv).value_or(true);

  const fault::KillPoint points[] = {
      fault::KillPoint::None, fault::KillPoint::Prefetch,
      fault::KillPoint::Chain, fault::KillPoint::Steal,
      fault::KillPoint::Barrier};

  MetricsLog log("chaos");
  TableWriter table({"arm", "time ms", "GFLOP/s", "overhead", "adopted",
                     "dead drains", "reissues"});
  for (const EngineMode mode : {EngineMode::Off, EngineMode::On}) {
    double faultfree = 0.0;
    for (const fault::KillPoint kp : points) {
      Arm arm = run_arm(machine, mode, n, kp, cache);
      if (!arm.killed) faultfree = arm.result.elapsed;
      const double overhead =
          faultfree > 0.0 ? arm.result.elapsed / faultfree : 1.0;
      const TraceCounters& t = arm.result.trace;
      table.add_row(
          {arm.label, ms(arm.result.elapsed), gf(arm.result.gflops),
           TableWriter::num(overhead, 3) + "x",
           TableWriter::num(static_cast<long long>(t.tasks_adopted)),
           TableWriter::num(static_cast<long long>(t.rma_domain_dead)),
           TableWriter::num(static_cast<long long>(t.task_reissues))});
      trace::NumberMap params{
          {"n", static_cast<double>(n)},
          {"engine", mode == EngineMode::On ? 1.0 : 0.0},
          {"killed", arm.killed ? 1.0 : 0.0},
          {"kill_domain", arm.killed ? 1.0 : -1.0},
          {"buddy_offset", 1.0},
          {"overhead_vs_faultfree", overhead}};
      log.add(arm.label, arm.result, std::move(params), arm.wall);
    }
  }
  table.print(std::cout, "Linux cluster, 8 dual nodes (16 ranks), N=" +
                             std::to_string(n) + ", kill domain 1");
  std::cout
      << "\nExpected shape: killed arms within 1.5x (engine) / 2x "
         "(pipeline) of the executor's fault-free virtual time (replication "
         "mirror + drain + adoption; the pipeline's adoption pass rides the "
         "critical path), nonzero adopted tasks whenever the kill point is "
         "reachable (the pipeline never steals, so its steal arm runs "
         "fault-free), and an exactly reconciling ledger: copy_tasks + "
         "direct_tasks == gemm_calls everywhere, engine_tasks + "
         "tasks_stolen + tasks_adopted == gemm_calls on engine rows.\n";
  return log.write_env() ? 0 : 1;
}
