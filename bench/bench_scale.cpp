// Harness scaling sweep: ranks {64, 256, 1024, 4096} running the paper's
// Fig. 3 double-buffered nonblocking pipeline, pooled fiber execution vs
// thread-per-rank (docs/HARNESS.md).
//
// This bench tracks the *simulator's* speed, not the model's: every row
// reports wall_seconds and wall_per_virtual_second, and bench_report.sh
// holds two bars against BENCH_scale.json — pooled mode simulates >= 3x
// more virtual seconds per wall second than thread-per-rank at 1024
// ranks, and the modeled (virtual-time) metrics are bitwise identical
// between the two modes on every common row.
//
// The workload is chosen to sit inside the simulator's determinism
// envelope (docs/MODEL.md §2: residual order sensitivity exists only
// when two transfers compete for the same resource gap).  Each rank runs
// Fig. 3's pipeline against a ring: get the next block from the right
// neighbor into B2 while computing the block in B1.  With one rank per
// node, every NIC and memory resource is booked by exactly one rank —
// no gap competition — so the modeled schedule is provably independent
// of execution order, for any worker count in either mode.  That is what
// makes the cross-mode identity bar sound; contended workloads are
// deterministic only up to first-fit booking order.
//
// `--check` is scripts/check.sh tier 1k: a 1024-rank pooled smoke run
// under a wall budget, the pooled-vs-threaded differential on the
// 64-rank row, and the static buffer_bytes_peak bound assertion for a
// pooled-mode multiply (the analyzer's ceilings are execution-order
// independent, so pooled runs must still respect them).

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

/// One rank per node: p nodes of Myrinet wires, so every per-node NIC
/// and per-domain memory resource has a single booking rank.
MachineModel ring_machine(int ranks) {
  MachineModel m = MachineModel::linux_myrinet(ranks);
  m.ranks_per_node = 1;
  return m;
}

struct ScaleRun {
  double elapsed = 0.0;     ///< modeled pipeline time (virtual s)
  double gflops = 0.0;      ///< modeled team rate
  double clock_hash = 0.0;  ///< FNV-1a over per-rank final clocks
  double wall = 0.0;        ///< real seconds the run took to simulate
};

/// FNV-1a over the raw bytes of every rank's final virtual clock, folded
/// to 32 bits so the value is exactly representable as a double.  A
/// single perturbed clock anywhere in the team changes the hash — the
/// cheap bitwise-identity probe for the cross-mode differential.
double fold_clocks(const std::vector<double>& clocks) {
  std::uint64_t h = 1469598103934665603ull;
  for (double c : clocks) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &c, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
}

/// Fig. 3 on a ring: `steps` double-buffered iterations of "get block
/// b x b from the right neighbor while computing the current block".
ScaleRun run_ring(int ranks, ExecMode mode, index_t b, int steps) {
  Team team(ring_machine(ranks));
  team.set_execution(mode);
  RmaRuntime rma(team);
  std::vector<double> final_clock(static_cast<std::size_t>(ranks), 0.0);
  const double compute_s = team.machine().dgemm.time(b, b, b);
  const std::size_t elems = static_cast<std::size_t>(b) *
                            static_cast<std::size_t>(b);
  ScaleRun out;
  const WallTimer wall;
  team.run([&](Rank& me) {
    const int src = (me.id() + 1) % team.size();
    me.barrier();
    const double t0 = me.clock().now();
    // Prologue: the first block is exposed (Fig. 3: "overlapping ... is
    // achieved in all steps, except first").
    RmaHandle next = rma.nbget(me, src, nullptr, nullptr, elems);
    for (int s = 0; s < steps; ++s) {
      rma.wait(me, next);
      if (s + 1 < steps) next = rma.nbget(me, src, nullptr, nullptr, elems);
      me.charge_seconds(compute_s);
      // Tile-handoff barrier: each step is one C-tile phase.  The sync
      // resyncs every clock (keeping the run deterministic) and makes
      // thread-per-rank pay a full condvar round per step — exactly the
      // per-parked-rank OS cost the pooled harness exists to remove.
      me.barrier();
    }
    const double t1 = me.clock().now();
    if (me.id() == 0) out.elapsed = t1 - t0;
    final_clock[static_cast<std::size_t>(me.id())] = me.clock().now();
  });
  out.wall = wall.seconds();
  const double flops = 2.0 * static_cast<double>(b) * static_cast<double>(b) *
                       static_cast<double>(b) * steps *
                       static_cast<double>(ranks);
  out.gflops = out.elapsed > 0.0 ? flops / out.elapsed * 1e-9 : 0.0;
  out.clock_hash = fold_clocks(final_clock);
  return out;
}

void add_row(MetricsLog& log, int ranks, ExecMode mode, index_t b, int steps,
             const ScaleRun& r, TableWriter& table) {
  const std::string mode_name = mode == ExecMode::Pooled ? "pooled"
                                                         : "threads";
  table.add_row({TableWriter::num(static_cast<long long>(ranks)), mode_name,
                 ms(r.elapsed), TableWriter::num(r.wall * 1e3, 1),
                 TableWriter::num(r.wall > 0.0 ? r.elapsed / r.wall : 0.0,
                                  4)});
  // Built up with += (not operator+ chaining) to sidestep GCC 12's
  // -Wrestrict false positive on literal+string concatenation at -O2.
  std::string label = "p";
  label += std::to_string(ranks);
  label += "_";
  label += mode_name;
  log.add_metrics(
      std::move(label),
      {{"elapsed_s", r.elapsed},
       {"gflops", r.gflops},
       {"final_clock_hash", r.clock_hash}},
      {{"ranks", static_cast<double>(ranks)},
       {"block_n", static_cast<double>(b)},
       {"steps", static_cast<double>(steps)},
       {"pooled", mode == ExecMode::Pooled ? 1.0 : 0.0}},
      r.wall, r.elapsed);
}

int check_mode() {
  const index_t b = 64;
  const int steps = 4;
  // Tier 1k bar 1: a 1024-rank pooled smoke run inside a generous wall
  // budget (the point is "routine", not a tight race with CI noise).
  {
    const WallTimer wall;
    const ScaleRun r = run_ring(1024, ExecMode::Pooled, b, steps);
    SRUMMA_REQUIRE(r.elapsed > 0.0, "1024-rank pooled run produced no time");
    const double budget = 30.0;
    if (wall.seconds() > budget) {
      std::cerr << "FAIL: 1024-rank pooled smoke took " << wall.seconds()
                << " s (budget " << budget << " s)\n";
      return 1;
    }
    std::cout << "ok: 1024-rank pooled smoke in "
              << TableWriter::num(wall.seconds(), 3) << " s\n";
  }
  // Tier 1k bar 2: pooled vs thread-per-rank differential on a
  // contention-free row — modeled results must match bitwise.
  {
    const ScaleRun p = run_ring(64, ExecMode::Pooled, b, steps);
    const ScaleRun t = run_ring(64, ExecMode::Threads, b, steps);
    if (p.elapsed != t.elapsed || p.gflops != t.gflops ||
        p.clock_hash != t.clock_hash) {
      std::cerr << "FAIL: pooled vs threads differential diverged: elapsed "
                << p.elapsed << " vs " << t.elapsed << ", clock hash "
                << p.clock_hash << " vs " << t.clock_hash << "\n";
      return 1;
    }
    std::cout << "ok: 64-rank pooled-vs-threads differential bitwise equal\n";
  }
  // Tier 1k bar 3: pooled-mode multiplies still respect the static
  // analyzer's buffer_bytes_peak ceiling (execution-order independent).
  {
    Testbed tb(MachineModel::linux_myrinet(4));
    tb.team.set_execution(ExecMode::Pooled);
    SrummaOptions opt;
    opt.nonblocking = true;
    const index_t n = 192;
    double mwall = 0.0;
    const MultiplyResult r = run_srumma(tb, n, n, n, opt, &mwall);
    trace::NumberMap params;
    append_static_bounds(params, tb.team.machine(), n, n, n, opt);
    double bound = 0.0;
    for (const auto& [k, v] : params) {
      if (k == "buffer_bytes_peak_bound") bound = v;
    }
    if (static_cast<double>(r.trace.buffer_bytes_peak) > bound) {
      std::cerr << "FAIL: pooled-mode buffer_bytes_peak "
                << r.trace.buffer_bytes_peak << " exceeds static bound "
                << bound << "\n";
      return 1;
    }
    std::cout << "ok: pooled-mode buffer_bytes_peak "
              << r.trace.buffer_bytes_peak << " <= static bound " << bound
              << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace srumma::bench

int main(int argc, char** argv) {
  using namespace srumma;
  using namespace srumma::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") return check_mode();
  }
  std::cout << "Harness scaling: Fig. 3 ring pipeline, pooled fibers vs "
               "thread-per-rank\n(1 rank/node Myrinet wires; modeled "
               "results are mode-independent by construction)\n\n";
  const index_t b = 64;
  const int steps = smoke_mode() ? 8 : 64;
  MetricsLog log("scale");
  TableWriter table(
      {"ranks", "mode", "virtual ms", "wall ms", "virtual s / wall s"});
  for (const int ranks : {64, 256, 1024, 4096}) {
    const ScaleRun pooled = run_ring(ranks, ExecMode::Pooled, b, steps);
    add_row(log, ranks, ExecMode::Pooled, b, steps, pooled, table);
    // Thread-per-rank is the oracle arm; 4096 OS threads is exactly the
    // configuration the pooled harness exists to avoid, so the largest
    // point runs pooled only.
    if (ranks <= 1024) {
      const ScaleRun threads = run_ring(ranks, ExecMode::Threads, b, steps);
      add_row(log, ranks, ExecMode::Threads, b, steps, threads, table);
    }
  }
  table.print(std::cout, "Fig. 3 ring pipeline, block " + std::to_string(b) +
                             ", " + std::to_string(steps) + " steps");
  std::cout << "\nExpected shape: identical virtual columns across modes at "
               "each rank count, and a widening wall-clock gap as ranks "
               "grow (the pooled harness spends no OS threads on parked "
               "ranks).\n";
  return log.write_env() ? 0 : 1;
}
