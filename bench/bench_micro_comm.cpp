// Micro-benchmark (google-benchmark): real host-time overheads of the
// simulation substrate itself — how fast the harness can issue RMA ops,
// match messages, book contended resources and run barriers.  These bound
// how large a simulated machine the benches can afford.
//
// Where an op needs two ranks, each benchmark iteration runs a fixed-count
// batch inside one Team::run (thread spawn included — it is part of the
// harness cost being measured); per-op cost = iteration time / batch size.

#include <benchmark/benchmark.h>

#include "msg/comm.hpp"
#include "rma/rma.hpp"
#include "runtime/team.hpp"
#include "vtime/resource.hpp"

namespace {

using namespace srumma;

constexpr int kBatch = 1024;

void BM_ResourceBook(benchmark::State& state) {
  Resource r;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.book(t, 1e-6));
    t += 5e-7;
  }
}
BENCHMARK(BM_ResourceBook);

void BM_RmaGetBatch(benchmark::State& state) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  for (auto _ : state) {
    team.reset();
    team.run([&](Rank& me) {
      if (me.id() != 0) return;
      for (int i = 0; i < kBatch; ++i) {
        RmaHandle h = rma.nbget(me, 1, nullptr, nullptr, 1024);
        rma.wait(me, h);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_RmaGetBatch);

void BM_MsgSendRecvBatch(benchmark::State& state) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  for (auto _ : state) {
    team.reset();
    team.run([&](Rank& me) {
      if (me.id() == 0) {
        for (int i = 0; i < kBatch; ++i) comm.send(me, 1, 1, nullptr, 16);
      } else {
        for (int i = 0; i < kBatch; ++i) comm.recv(me, 0, 1, nullptr, 16);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MsgSendRecvBatch);

void BM_RendezvousExchangeBatch(benchmark::State& state) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  constexpr int kRvBatch = 64;
  constexpr std::size_t kElems = 8192;  // 64 KB: rendezvous path
  for (auto _ : state) {
    team.reset();
    team.run([&](Rank& me) {
      const int peer = 1 - me.id();
      for (int i = 0; i < kRvBatch; ++i) {
        comm.sendrecv(me, peer, 1, nullptr, kElems, peer, 1, nullptr, kElems);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kRvBatch);
}
BENCHMARK(BM_RendezvousExchangeBatch);

void BM_BarrierBatch(benchmark::State& state) {
  Team team(MachineModel::testing(4, 1));
  for (auto _ : state) {
    team.reset();
    team.run([&](Rank& me) {
      for (int i = 0; i < kBatch; ++i) me.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_BarrierBatch);

void BM_TeamSpawn128(benchmark::State& state) {
  Team team(MachineModel::linux_myrinet(64));  // 128 rank threads
  for (auto _ : state) {
    team.reset();
    team.run([](Rank& me) { me.barrier(); });
  }
}
BENCHMARK(BM_TeamSpawn128);

}  // namespace

BENCHMARK_MAIN();
