// Micro-benchmark (google-benchmark): the real serial dgemm kernels that
// back the numerics — every registered micro-kernel, blocked vs naive, plus
// transposed variants.  These run actual floating-point work on this host
// (they are the one bench not in virtual time).
//
// "BM_GemmBlocked" exercises whatever kernel dispatch selected (honouring
// SRUMMA_GEMM_KERNEL); the dynamically registered "BM_GemmKernel/<name>/<n>"
// series pins each supported kernel in turn so they can be compared in one
// run.

#include <benchmark/benchmark.h>

#include <string>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using srumma::index_t;
using srumma::Matrix;
using srumma::blas::GemmKernel;
using srumma::blas::Trans;

void setup(index_t n, Matrix& a, Matrix& b, Matrix& c) {
  a = Matrix(n, n);
  b = Matrix(n, n);
  c = Matrix(n, n);
  srumma::fill_random(a.view(), 1);
  srumma::fill_random(b.view(), 2);
}

double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

void set_gflops(benchmark::State& state, double flops_per_iter) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_GemmBlocked(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix a, b, c;
  setup(n, a, b, c);
  for (auto _ : state) {
    srumma::blas::gemm_blocked(Trans::No, Trans::No, n, n, n, 1.0, a.data(),
                               n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(srumma::blas::active_kernel().name);
  set_gflops(state, gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNaive(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix a, b, c;
  setup(n, a, b, c);
  for (auto _ : state) {
    srumma::blas::gemm_naive(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n,
                             b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlockedTransposed(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix a, b, c;
  setup(n, a, b, c);
  for (auto _ : state) {
    srumma::blas::gemm_blocked(Trans::Yes, Trans::Yes, n, n, n, 1.0, a.data(),
                               n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmBlockedTransposed)->Arg(128)->Arg(256);

// Panel shapes SRUMMA actually feeds the kernel (tall C tile x k-chunk).
void BM_GemmPanel(benchmark::State& state) {
  const index_t m = state.range(0);
  const index_t k = state.range(1);
  Matrix a(m, k), b(k, m), c(m, m);
  srumma::fill_random(a.view(), 3);
  srumma::fill_random(b.view(), 4);
  for (auto _ : state) {
    srumma::blas::gemm_blocked(Trans::No, Trans::No, m, m, k, 1.0, a.data(),
                               m, b.data(), k, 1.0, c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flops(m, m, k));
}
BENCHMARK(BM_GemmPanel)->Args({256, 64})->Args({256, 128})->Args({512, 128});

// One square-gemm series per registered kernel, pinned explicitly so a
// single run reports scalar vs portable vs avx2 side by side.
void BM_GemmKernel(benchmark::State& state, const GemmKernel* kern) {
  const index_t n = state.range(0);
  Matrix a, b, c;
  setup(n, a, b, c);
  for (auto _ : state) {
    srumma::blas::gemm_blocked_with(*kern, Trans::No, Trans::No, n, n, n, 1.0,
                                    a.data(), n, b.data(), n, 0.0, c.data(),
                                    n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flops(n, n, n));
}

void register_per_kernel_benches() {
  for (const GemmKernel* kern : srumma::blas::kernel_registry()) {
    if (!kern->supported()) continue;
    const std::string name = "BM_GemmKernel/" + std::string(kern->name);
    benchmark::RegisterBenchmark(name.c_str(), BM_GemmKernel, kern)
        ->Arg(256)
        ->Arg(512)
        ->Arg(1024);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_kernel_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
