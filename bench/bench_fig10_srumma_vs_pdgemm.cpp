// Figure 10: SRUMMA vs ScaLAPACK pdgemm on all four platforms, square
// matrices N = 600 .. 12000, at the paper's processor counts.
//
// For each platform the bench prints one series per algorithm in GFLOP/s —
// the same axes the paper plots.  Absolute rates come from the calibrated
// machine models; the reproduction claim is the shape (SRUMMA wins
// everywhere, most on the shared-memory machines, with the gap largest at
// small N / large P).

#include <iostream>
#include <vector>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

void run_platform(const std::string& name, MachineModel machine,
                  const std::vector<index_t>& sizes) {
  Testbed tb(std::move(machine));
  const SrummaOptions sopt = platform_options(tb.team.machine());
  TableWriter table({"N", "SRUMMA GFLOP/s", "pdgemm GFLOP/s", "speedup",
                     "SRUMMA overlap %"});
  for (index_t n : sizes) {
    const MultiplyResult s = run_srumma(tb, n, n, n, sopt);
    const MultiplyResult d = run_pdgemm(tb, n, n, n, {});
    table.add_row({TableWriter::num(static_cast<long long>(n)), gf(s.gflops),
                   gf(d.gflops), TableWriter::num(d.elapsed / s.elapsed, 2),
                   TableWriter::num(s.overlap * 100.0, 1)});
  }
  table.print(std::cout,
              name + " (" + std::to_string(tb.team.size()) + " CPUs)");
  std::cout << "\n";
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Figure 10: SRUMMA vs ScaLAPACK pdgemm, square matrices\n\n";

  const std::vector<index_t> cluster_sizes{600, 1000, 2000, 4000, 8000, 12000};
  run_platform("Linux cluster (Myrinet)", MachineModel::linux_myrinet(64),
               cluster_sizes);
  run_platform("IBM SP (16-way nodes)", MachineModel::ibm_sp(16),
               {600, 1000, 2000, 4000, 8000, 16000});
  run_platform("Cray X1", MachineModel::cray_x1(32), cluster_sizes);
  run_platform("SGI Altix 3000", MachineModel::sgi_altix(128), cluster_sizes);

  // The paper also varies processor counts; show the scaling cut at N=4000.
  std::cout << "Scaling cut: N = 4000 on the Linux cluster\n";
  TableWriter scaling({"P", "SRUMMA GFLOP/s", "pdgemm GFLOP/s", "speedup"});
  for (int nodes : {2, 4, 8, 16, 32, 64}) {
    Testbed tb(MachineModel::linux_myrinet(nodes));
    const MultiplyResult s = run_srumma(tb, 4000, 4000, 4000);
    const MultiplyResult d = run_pdgemm(tb, 4000, 4000, 4000);
    scaling.add_row({TableWriter::num(static_cast<long long>(tb.team.size())),
                     gf(s.gflops), gf(d.gflops),
                     TableWriter::num(d.elapsed / s.elapsed, 2)});
  }
  scaling.print(std::cout);
  return 0;
}
