// Straggler absorption: the dependency-driven task engine (src/engine,
// docs/ENGINE.md) vs the static pipeline when one node's link runs slow.
//
// The fault plane multiplies the wire time of every inter-node transfer
// touching one node (FaultConfig::straggler_node) — the paper's "slow
// switch port / flaky NIC" scenario.  The static pipeline consumes its
// fetches in plan order, so one 8x-delayed patch stalls every product
// queued behind it.  The engine executes C tiles out of order (whatever
// operands arrive first), dedups shared operand patches, and lets a rank
// whose next products are all parked on the slow link steal remote-operand
// tasks from its SMP-domain mate, committing the handed-back tile at the
// exact plan position so C stays bitwise identical.
//
// Both arms run the identical plan on the identical machine and fault
// stream; only the executor differs.  Reported per arm: modeled elapsed
// virtual time, GFLOP/s, and the task ledger.  The steal ledger must
// reconcile exactly: engine_tasks + tasks_stolen == copy_tasks +
// direct_tasks == gemm_calls.
//
// Expected: >= 1.3x lower elapsed virtual time with the engine on, and a
// nonzero stolen-task count on the straggler run.

#include <iostream>

#include "bench/common.hpp"

namespace srumma::bench {
namespace {

struct Arm {
  MultiplyResult result;
  double wall = 0.0;
  const char* label;
};

Arm run_arm(const MachineModel& machine, EngineMode mode, index_t n,
            int straggler_node) {
  RmaConfig cfg;
  fault::FaultConfig faults;
  faults.straggler_node = straggler_node;
  faults.straggler_factor = 8.0;
  cfg.faults = faults;
  Testbed tb(machine, cfg);
  SrummaOptions opt = platform_options(tb.team.machine());
  // Several C tiles per rank so the engine has reorder freedom, and a
  // k-grain fine enough that each tile chain crosses both the healthy and
  // the straggler-owned operand panels.
  opt.c_chunk = n / 16;
  opt.engine = mode;
  Arm arm;
  arm.label = mode == EngineMode::On ? "engine" : "pipeline";
  arm.result = run_srumma(tb, n, n, n, opt, &arm.wall);
  return arm;
}

}  // namespace
}  // namespace srumma::bench

int main() {
  using namespace srumma;
  using namespace srumma::bench;
  std::cout << "Dependency-driven engine vs static pipeline with one "
               "straggler node (8x wire time on its link)\n\n";
  const MachineModel machine = MachineModel::linux_myrinet(4);
  const index_t n = smoke_n(1024, 256);
  const int straggler = 1;

  MetricsLog log("steal");
  TableWriter table({"executor", "time ms", "GFLOP/s", "engine tasks",
                     "stolen", "copy tasks", "direct tasks", "reissues"});
  Arm arms[] = {run_arm(machine, EngineMode::Off, n, straggler),
                run_arm(machine, EngineMode::On, n, straggler)};
  for (const Arm& a : arms) {
    const TraceCounters& t = a.result.trace;
    table.add_row({a.label, ms(a.result.elapsed), gf(a.result.gflops),
                   TableWriter::num(static_cast<long long>(t.engine_tasks)),
                   TableWriter::num(static_cast<long long>(t.tasks_stolen)),
                   TableWriter::num(static_cast<long long>(t.copy_tasks)),
                   TableWriter::num(static_cast<long long>(t.direct_tasks)),
                   TableWriter::num(static_cast<long long>(t.task_reissues))});
    trace::NumberMap params{{"n", static_cast<double>(n)},
                            {"straggler_node", static_cast<double>(straggler)},
                            {"straggler_factor", 8.0},
                            {"engine", a.label[0] == 'e' ? 1.0 : 0.0}};
    // The overall bound covers both executors, so one emitted ceiling is
    // valid for the pipeline and the engine arm alike.
    SrummaOptions aopt = platform_options(machine);
    aopt.c_chunk = n / 16;
    append_static_bounds(params, machine, n, n, n, aopt);
    log.add(a.label, a.result, std::move(params), a.wall);
  }
  table.print(std::cout,
              "Linux cluster, 4 dual nodes (8 ranks), N=" +
                  std::to_string(n) + ", straggler node " +
                  std::to_string(straggler));
  const double ratio = arms[0].result.elapsed / arms[1].result.elapsed;
  std::cout << "  virtual-time speedup (pipeline/engine): "
            << TableWriter::num(ratio, 3) << "x, tasks stolen: "
            << arms[1].result.trace.tasks_stolen << "\n\n"
            << "Expected shape: >= 1.3x lower elapsed virtual time with the "
               "engine, nonzero steals, and an exactly reconciling ledger "
               "(engine_tasks + tasks_stolen == copy_tasks + direct_tasks == "
               "gemm_calls).\n";
  return log.write_env() ? 0 : 1;
}
