// Domain-level cooperative block cache: single-flight fetch sharing,
// LRU eviction under capacity pressure, dirty-entry re-arm under fault
// injection, checker cleanliness, and the zero-byte RMA fast path.
//
// Determinism caveat baked into the assertions: WHICH domain mate becomes
// the fetcher for a key is a real-time race (an accepted design property,
// like resource booking order), so per-role counters (hits vs joins,
// which rank missed) are asserted as sums/inequalities — but the numerical
// result is always bitwise equal to the serial reference, because only
// bytes equal to the owner's are ever published.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "cache/block_cache.hpp"
#include "core/srumma.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

// Small-integer fill: every partial product is exactly representable, so
// cache-on, cache-off, and faulty runs must all match the serial reference
// bitwise.
void fill_ints(MatrixView v, std::uint64_t seed) {
  Rng rng(seed);
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i)
      v(i, j) = static_cast<double>(static_cast<int>(rng.below(9))) - 4.0;
}

Matrix reference_product(index_t n, std::uint64_t fill_seed) {
  Matrix a(n, n), b(n, n), c(n, n);
  fill_ints(a.view(), fill_seed);
  fill_ints(b.view(), fill_seed + 1);
  c.view().fill(0.0);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, 1.0, a, b, 0.0, c);
  return c;
}

struct CacheRun {
  Matrix c;
  MultiplyResult result;
  std::size_t checker_reports = 0;
};

// testing(4, 2) with a 4x2 grid: each node's two ranks sit in one grid
// column (ranks 2n, 2n+1 = (pi, pj), (pi+1, pj)), so domain mates own the
// same C column range and request IDENTICAL remote B patches — the
// cooperative-sharing case — while remote A patches stay unique per rank.
CacheRun run_grid_multiply(const RmaConfig& cfg, const SrummaOptions& opt,
                           index_t n, std::uint64_t fill_seed) {
  Team team(MachineModel::testing(4, 2));
  RmaRuntime rma(team, cfg);
  const ProcGrid grid{4, 2};
  Matrix a_global(n, n), b_global(n, n);
  fill_ints(a_global.view(), fill_seed);
  fill_ints(b_global.view(), fill_seed + 1);

  CacheRun out{Matrix(n, n), {}, 0};
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, grid);
    DistMatrix b(rma, me, n, n, grid);
    DistMatrix c(rma, me, n, n, grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());
    c.local_view(me).fill(0.0);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out.result = r;
    c.gather_to(me, out.c.view());
  });
  if (rma.checker() != nullptr) out.checker_reports = rma.checker()->report_count();
  return out;
}

// Copy flavor + small C tiles: every task goes through the fetch path and
// each remote B patch is requested Tci times per rank, so the cache sees
// both cooperative sharing and temporal reuse.
SrummaOptions tiled_copy_options() {
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;
  opt.c_chunk = 16;
  return opt;
}

TEST(BlockCache, OffByDefaultAndExplicitlyDisabled) {
  // This test is about the *defaults*, so shield it from the cache-enabled
  // environment matrix (scripts/check.sh tier 1f exports SRUMMA_CACHE=1).
  struct EnvGuard {
    std::string saved = [] {
      const char* v = std::getenv("SRUMMA_CACHE");
      return v != nullptr ? std::string(v) : std::string();
    }();
    bool had = std::getenv("SRUMMA_CACHE") != nullptr;
    EnvGuard() { unsetenv("SRUMMA_CACHE"); }
    ~EnvGuard() {
      if (had) setenv("SRUMMA_CACHE", saved.c_str(), 1);
    }
  } guard;
  Team team(MachineModel::testing(2, 2));
  RmaRuntime plain(team);
  EXPECT_EQ(plain.block_cache(), nullptr);
  RmaConfig off;
  off.cache = false;
  RmaRuntime disabled(team, off);
  EXPECT_EQ(disabled.block_cache(), nullptr);
  RmaConfig on;
  on.cache = true;
  RmaRuntime enabled(team, on);
  ASSERT_NE(enabled.block_cache(), nullptr);
  EXPECT_TRUE(enabled.block_cache()->config().enabled);
}

TEST(BlockCache, SingleFlightSharesRemoteBytesBitIdentically) {
  const index_t n = 128;
  SrummaOptions opt = tiled_copy_options();
  // Four row tiles per local C block: every remote patch is touched at
  // least four times by its rank, so intra-rank temporal reuse ALONE cuts
  // modeled NIC bytes >= 2x even if thread scheduling denies every
  // cross-mate share (the causality rule refetches a key published later
  // in virtual time than the requester's now — see src/cache).
  opt.c_chunk = 8;
  RmaConfig off_cfg;
  off_cfg.cache = false;
  const CacheRun off = run_grid_multiply(off_cfg, opt, n, 11);
  RmaConfig on_cfg;
  on_cfg.cache = true;
  on_cfg.cache_capacity = 1u << 20;  // hold the whole B working set
  const CacheRun on = run_grid_multiply(on_cfg, opt, n, 11);

  // Bitwise identical to each other and to the serial reference.
  const Matrix ref = reference_product(n, 11);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(off.c(i, j), ref(i, j)) << i << "," << j;
      ASSERT_EQ(on.c(i, j), ref(i, j)) << i << "," << j;
    }

  // The cache engaged: every duplicate inter-node get became a share, and
  // the modeled NIC byte reduction is exactly the bytes-saved gauge.
  const TraceCounters& t = on.result.trace;
  EXPECT_GT(t.cache_misses, 0u);
  EXPECT_GT(t.cache_hits + t.cache_joins, 0u);
  EXPECT_EQ(t.cache_rearms, 0u);  // no faults injected
  EXPECT_GT(t.cache_bytes_saved, 0u);
  EXPECT_EQ(t.bytes_remote + t.cache_bytes_saved,
            off.result.trace.bytes_remote);
  // Domain mates duplicate every remote B patch and C tiling re-requests
  // it per row tile: cooperative + temporal reuse cuts modeled inter-node
  // get bytes at least in half on this topology, with the intra-rank half
  // guaranteed regardless of OS scheduling (a rank's own repeat touch of a
  // key always shares).
  EXPECT_LE(2 * t.bytes_remote, off.result.trace.bytes_remote);
}

TEST(BlockCache, LruEvictionUnderCapacityPressureStaysCorrect) {
  const index_t n = 128;
  const SrummaOptions opt = tiled_copy_options();
  RmaConfig cfg;
  cfg.cache = true;
  // Room for only two 32x16 patches: constant eviction pressure.
  cfg.cache_capacity = 2 * 32 * 16 * sizeof(double);
  const CacheRun run = run_grid_multiply(cfg, opt, n, 23);

  const Matrix ref = reference_product(n, 23);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(run.c(i, j), ref(i, j)) << i << "," << j;
  EXPECT_GT(run.result.trace.cache_evictions, 0u);
}

TEST(BlockCache, FaultyFetchesRearmAndStillMatchReference) {
  const index_t n = 128;
  SrummaOptions opt = tiled_copy_options();
  opt.verify_checksums = true;  // corrupted payloads must never publish
  RmaConfig cfg;
  cfg.cache = true;
  cfg.cache_capacity = 1u << 20;
  fault::FaultConfig fc;
  fc.seed = 0xCAFE;
  fc.fail_rate = 0.15;
  fc.corrupt_rate = 0.10;
  cfg.faults = fc;
  RetryPolicy retry;
  retry.max_attempts = 20;
  cfg.retry = retry;
  const CacheRun run = run_grid_multiply(cfg, opt, n, 37);

  const Matrix ref = reference_product(n, 37);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(run.c(i, j), ref(i, j)) << i << "," << j;
  const TraceCounters& t = run.result.trace;
  EXPECT_GT(t.faults_injected + t.faults_corrupted, 0u);
  EXPECT_GT(t.cache_misses, 0u);
}

TEST(BlockCache, CheckerSeesNoDiagnosticsWithSharingActive) {
  const index_t n = 128;
  const SrummaOptions opt = tiled_copy_options();
  RmaConfig cfg;
  cfg.cache = true;
  cfg.cache_capacity = 1u << 20;
  cfg.check = true;
  cfg.check_throw = false;
  const CacheRun run = run_grid_multiply(cfg, opt, n, 41);
  EXPECT_EQ(run.checker_reports, 0u);
  EXPECT_GT(run.result.trace.cache_hits + run.result.trace.cache_joins, 0u);
}

// ---------------------------------------------------------------------------
// Protocol-level unit tests driving BlockCacheSet directly.

TEST(BlockCacheProtocol, DirtyEntryIsRearmedNotShared) {
  Team team(MachineModel::testing(1, 2));
  RmaConfig cfg;
  cfg.cache = true;
  cfg.cache_capacity = 1u << 16;
  RmaRuntime rma(team, cfg);
  cache::BlockCacheSet* cs = rma.block_cache();
  ASSERT_NE(cs, nullptr);

  Matrix payload(4, 4);
  fill_ints(payload.view(), 5);
  const cache::PatchKey key{1, 0, 0, 4, 4};

  team.run([&](Rank& me) {
    cs->begin_epoch(me, 0);
    me.barrier();
    if (me.id() == 0) {
      // First fetch draws a fault: dirty, never published.
      cache::Ref r1 = cs->acquire(
          me, key, 128,
          [&] { return cache::FetchOutcome{me.clock().now(), false}; },
          payload.view());
      ASSERT_EQ(r1.role, cache::Role::Fetch);
      EXPECT_FALSE(r1.rearmed);
      cs->finish_fetch(me, r1, /*publishable=*/false, payload.view());

      // Second request re-arms (fresh generation) instead of sharing, and
      // its clean outcome publishes.
      cache::Ref r2 = cs->acquire(
          me, key, 128,
          [&] { return cache::FetchOutcome{me.clock().now() + 1e-6, true}; },
          payload.view());
      ASSERT_EQ(r2.role, cache::Role::Fetch);
      EXPECT_TRUE(r2.rearmed);
      cs->finish_fetch(me, r2, /*publishable=*/true, payload.view());
      EXPECT_EQ(me.trace().cache_rearms, 1u);

      // Third request is a plain share of the published copy.
      Matrix dst(4, 4);
      cache::Ref r3 = cs->acquire(
          me, key, 128,
          [&] {
            ADD_FAILURE() << "ready entry must not refetch";
            return cache::FetchOutcome{};
          },
          ConstMatrixView{});
      ASSERT_EQ(r3.role, cache::Role::Shared);
      cs->consume_shared(me, r3, dst.view());
      for (index_t j = 0; j < 4; ++j)
        for (index_t i = 0; i < 4; ++i)
          ASSERT_EQ(dst(i, j), payload(i, j));
      EXPECT_EQ(me.trace().cache_bytes_saved, 128u);
    }
    me.barrier();
    cs->end_epoch(me);
  });
}

TEST(BlockCacheProtocol, LatePublishGuardedByGeneration) {
  Team team(MachineModel::testing(1, 2));
  RmaConfig cfg;
  cfg.cache = true;
  cfg.cache_capacity = 1u << 16;
  RmaRuntime rma(team, cfg);
  cache::BlockCacheSet* cs = rma.block_cache();
  Matrix stale(2, 2), fresh(2, 2);
  stale.view().fill(-1.0);
  fresh.view().fill(7.0);
  const cache::PatchKey key{9, 0, 0, 2, 2};

  team.run([&](Rank& me) {
    cs->begin_epoch(me, 0);
    me.barrier();
    if (me.id() == 0) {
      cache::Ref r1 = cs->acquire(
          me, key, 32,
          [&] { return cache::FetchOutcome{me.clock().now(), false}; },
          stale.view());
      // A re-arm races ahead of r1's recovery and publishes generation 2...
      cache::Ref r2 = cs->acquire(
          me, key, 32,
          [&] { return cache::FetchOutcome{me.clock().now(), true}; },
          fresh.view());
      ASSERT_EQ(r2.role, cache::Role::Fetch);
      cs->finish_fetch(me, r2, true, fresh.view());
      // ...so r1's stale late publish must be discarded by the generation
      // guard instead of overwriting the newer bytes.
      cs->finish_fetch(me, r1, true, stale.view());

      Matrix dst(2, 2);
      cache::Ref r3 =
          cs->acquire(me, key, 32, [] { return cache::FetchOutcome{}; },
                      ConstMatrixView{});
      ASSERT_EQ(r3.role, cache::Role::Shared);
      cs->consume_shared(me, r3, dst.view());
      for (index_t j = 0; j < 2; ++j)
        for (index_t i = 0; i < 2; ++i) ASSERT_EQ(dst(i, j), 7.0);
    }
    me.barrier();
    cs->end_epoch(me);
  });
}

// TSan stress: every rank of two 8-rank domains hammers the same small key
// set concurrently; shared payloads must always match what the key's
// fetcher published, under both ample capacity and eviction pressure.
TEST(BlockCacheProtocol, ConcurrentSameKeyStressDeliversExactBytes) {
  for (const std::uint64_t capacity : {std::uint64_t{1} << 20,
                                       std::uint64_t{3 * 6 * 6 * 8}}) {
    Team team(MachineModel::testing(2, 8));
    RmaConfig cfg;
    cfg.cache = true;
    cfg.cache_capacity = capacity;
    RmaRuntime rma(team, cfg);
    cache::BlockCacheSet* cs = rma.block_cache();
    constexpr int kKeys = 12;
    constexpr int kRounds = 40;
    std::atomic<std::uint64_t> shares{0};

    team.run([&](Rank& me) {
      cs->begin_epoch(me, 0);
      me.barrier();
      Matrix mine(6, 6), dst(6, 6);
      for (int round = 0; round < kRounds; ++round) {
        // Different visit orders per rank maximize interleaving.
        const int ki = (round * (1 + me.id() % 5) + me.id()) % kKeys;
        const cache::PatchKey key{7, index_t{6 * ki}, 0, 6, 6};
        const double expect = static_cast<double>(ki) + 0.5;
        mine.view().fill(expect);
        cache::Ref ref = cs->acquire(
            me, key, 6 * 6 * sizeof(double),
            [&] { return cache::FetchOutcome{me.clock().now(), true}; },
            mine.view());
        if (ref.role == cache::Role::Shared) {
          dst.view().fill(0.0);
          cs->consume_shared(me, ref, dst.view());
          for (index_t j = 0; j < 6; ++j)
            for (index_t i = 0; i < 6; ++i) ASSERT_EQ(dst(i, j), expect);
          shares.fetch_add(1, std::memory_order_relaxed);
        } else if (ref.role == cache::Role::Fetch) {
          cs->finish_fetch(me, ref, true, mine.view());
        }
      }
      me.barrier();
      cs->end_epoch(me);
    });
    EXPECT_GT(shares.load(), 0u);
    const TraceCounters total = team.total_trace();
    if (capacity < (std::uint64_t{1} << 20)) {
      EXPECT_GT(total.cache_evictions + total.cache_bypasses, 0u);
    }
    // All entries unpinned at the epoch boundary: both domains drained.
    EXPECT_EQ(cs->resident(0), 0u);
    EXPECT_EQ(cs->resident(1), 0u);
  }
}

// ---------------------------------------------------------------------------
// Satellite regressions.

TEST(RmaZeroByte, CompletesImmediatelyWithoutOverheadOrFaultDraw) {
  // A fault window covering ONLY the first drawn op: if a zero-byte get
  // consumed a decision-stream slot, the real get after it would escape
  // the window and complete cleanly.
  RmaConfig cfg;
  fault::FaultConfig fc;
  fc.fail_rate = 1.0;
  fc.first_op = 0;
  fc.last_op = 0;
  cfg.faults = fc;
  RetryPolicy retry;
  retry.max_attempts = 1;
  cfg.retry = retry;

  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team, cfg);
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 64);
    if (me.id() == 0) {
      Matrix dst(8, 8);
      const double t0 = me.clock().now();
      RmaHandle zr = rma.nbget2d(me, 1, region.base(1), 8, 0, 5,
                                 dst.data(), dst.ld());
      RmaHandle zc = rma.nbget2d(me, 1, region.base(1), 8, 5, 0,
                                 dst.data(), dst.ld());
      // No issue overhead charged, completion at the current clock, no
      // fault consulted (rate is 1.0 inside the window).
      EXPECT_EQ(me.clock().now(), t0);
      EXPECT_EQ(zr.completion, t0);
      EXPECT_EQ(zc.completion, t0);
      EXPECT_FALSE(zr.failed);
      EXPECT_FALSE(zc.failed);
      EXPECT_EQ(rma.try_wait(me, zr), RmaStatus::Ok);
      EXPECT_EQ(rma.try_wait(me, zc), RmaStatus::Ok);
      EXPECT_EQ(me.clock().now(), t0);

      // The first REAL op draws decision slot 0 and fails — proof the
      // zero-byte issues above did not advance the fault stream.
      RmaHandle real = rma.nbget2d(me, 1, region.base(1), 8, 4, 4,
                                   dst.data(), dst.ld());
      EXPECT_EQ(rma.try_wait(me, real), RmaStatus::Error);
      EXPECT_EQ(me.trace().faults_injected, 1u);
    }
    me.barrier();
    rma.free_symmetric(me, region);
  });
}

TEST(Lookahead, EnvOverrideAndHeuristicBothMatchReference) {
  const index_t n = 128;
  SrummaOptions opt = tiled_copy_options();
  ASSERT_EQ(opt.lookahead, 0);  // default = auto
  const Matrix ref = reference_product(n, 53);

  // Heuristic path (no env): clamp(ceil(latency*bw/patch_bytes), 1, 8).
  const CacheRun heur = run_grid_multiply(RmaConfig{}, opt, n, 53);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(heur.c(i, j), ref(i, j));

  // Env override path.
  ASSERT_EQ(setenv("SRUMMA_LOOKAHEAD", "3", 1), 0);
  const CacheRun env = run_grid_multiply(RmaConfig{}, opt, n, 53);
  unsetenv("SRUMMA_LOOKAHEAD");
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(env.c(i, j), ref(i, j));

  // Explicit option still wins over auto.
  opt.lookahead = 2;
  const CacheRun expl = run_grid_multiply(RmaConfig{}, opt, n, 53);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(expl.c(i, j), ref(i, j));
}

}  // namespace
}  // namespace srumma
