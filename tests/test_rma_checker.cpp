// Shadow-state RMA checker: one deliberately-broken SPMD body per
// diagnostic class (the checker must catch each), the documented
// exemptions (origin-ordered ops, acc/acc), and clean full-pipeline runs
// with the checker in throw mode (no false positives).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/rma_checker.hpp"
#include "core/srumma.hpp"
#include "ga/global_array.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using check::Diag;

/// RmaRuntime with the checker recording (not throwing) regardless of the
/// environment.
RmaConfig recording_checker() {
  RmaConfig cfg;
  cfg.check = true;
  cfg.check_throw = false;
  return cfg;
}

RmaConfig throwing_checker() {
  RmaConfig cfg;
  cfg.check = true;
  cfg.check_throw = true;
  return cfg;
}

int count(const std::vector<check::CheckReport>& rs, Diag d) {
  return static_cast<int>(std::count_if(
      rs.begin(), rs.end(),
      [&](const check::CheckReport& r) { return r.diag == d; }));
}

// (1) Re-targeting the destination buffer of a get that has not been
// wait()ed is premature reuse.
TEST(CheckerDiag, UseBeforeWait) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    const int peer = 1 - me.id();
    std::vector<double> buf(16, 0.0);
    RmaHandle h1 = rma.nbget(me, peer, region.base(peer), buf.data(), 16);
    RmaHandle h2 = rma.nbget(me, peer, region.base(peer), buf.data(), 16);
    rma.wait(me, h1);
    rma.wait(me, h2);
    me.barrier();
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::UseBeforeWait), 2);  // one per rank
  EXPECT_EQ(static_cast<int>(rs.size()), 2);
}

// (1) Reading the buffer from compute before wait() is the same bug.
TEST(CheckerDiag, UseBeforeWaitFromCompute) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    const int peer = 1 - me.id();
    std::vector<double> buf(16, 0.0);
    RmaHandle h =
        rma.nbget2d(me, peer, region.base(peer), 4, 4, 4, buf.data(), 4);
    rma.declare_compute_read(me, buf.data(), 4, 4, 4);  // dgemm would do this
    rma.wait(me, h);
    me.barrier();
  });
  EXPECT_EQ(count(rma.checker()->reports(), Diag::UseBeforeWait), 2);
}

// (2) A handle must not cross a barrier without wait().
TEST(CheckerDiag, UnwaitedAtBarrier) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 8);
    const int peer = 1 - me.id();
    std::vector<double> buf(8, 0.0);
    RmaHandle h = rma.nbget(me, peer, region.base(peer), buf.data(), 8);
    me.barrier();  // h still pending: completion is now undefined
    (void)h;
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::UnwaitedAtBarrier), 2);
  EXPECT_EQ(static_cast<int>(rs.size()), 2);
}

// (3) An unwaited put overlapping a get in the same epoch is a race.
TEST(CheckerDiag, EpochConflict) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    if (me.id() == 0) {
      std::vector<double> src(4, 1.0);
      std::vector<double> dst(4, 0.0);
      RmaHandle hp =
          rma.nbput2d(me, 1, src.data(), 4, 4, 1, region.base(1), 4);
      RmaHandle hg =  // overlaps the put, same epoch, put not waited
          rma.nbget2d(me, 1, region.base(1), 4, 4, 1, dst.data(), 4);
      rma.wait(me, hp);
      rma.wait(me, hg);
    }
    me.barrier();
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::EpochConflict), 1);
  EXPECT_EQ(static_cast<int>(rs.size()), 1);
}

// (3-exemption) The same pair ordered by wait() is legal: one origin's
// completed op happens-before its next op.
TEST(CheckerDiag, EpochConflictExemptsOriginOrderedOps) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    if (me.id() == 0) {
      std::vector<double> src(4, 1.0);
      std::vector<double> dst(4, 0.0);
      RmaHandle hp =
          rma.nbput2d(me, 1, src.data(), 4, 4, 1, region.base(1), 4);
      rma.wait(me, hp);  // orders the put before the get
      RmaHandle hg =
          rma.nbget2d(me, 1, region.base(1), 4, 4, 1, dst.data(), 4);
      rma.wait(me, hg);
    }
    me.barrier();
  });
  EXPECT_EQ(rma.checker()->report_count(), 0u);
}

// (3-exemption) Concurrent accumulates are atomic by specification.
TEST(CheckerDiag, EpochConflictExemptsAccAcc) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    std::vector<double> src(16, 1.0);
    // Both ranks accumulate into rank 0's whole segment concurrently.
    RmaHandle h =
        rma.nbacc2d(me, 0, 1.0, src.data(), 4, 4, 4, region.base(0), 4);
    rma.wait(me, h);
    me.barrier();
  });
  EXPECT_EQ(rma.checker()->report_count(), 0u);
}

// (3) Interleaved strided patches that do NOT overlap must not conflict:
// rank 0 puts the even columns, rank 1 the odd columns, concurrently.
TEST(CheckerDiag, EpochConflictExactStridesNoFalsePositive) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 32);  // 4 x 8, ld 4
    std::vector<double> src(16, static_cast<double>(me.id()));
    // Columns me, me+2, me+4, me+6 of owner 0's block: stride 2 columns.
    RmaHandle h = rma.nbput2d(me, 0, src.data(), 4, 4, 4,
                              region.base(0) + 4 * me.id(), 8);
    rma.wait(me, h);
    me.barrier();
  });
  EXPECT_EQ(rma.checker()->report_count(), 0u);
}

// (4) Direct load/store is only legal within the caller's memory domain.
TEST(CheckerDiag, NonDomainDirect) {
  Team team(MachineModel::testing(2, 1));  // two single-rank nodes
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 16);
    if (me.id() == 0) {
      // Rank 1 lives on the other node; reach-through is illegal.
      rma.declare_direct_access(me, region, 1, 0, 4, 4, 4);
    }
    me.barrier();
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::NonDomainDirect), 1);
  EXPECT_EQ(static_cast<int>(rs.size()), 1);
}

// (5) free_symmetric while a transfer is still pending.
TEST(CheckerDiag, PendingAtFree) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 8);
    const int peer = 1 - me.id();
    std::vector<double> buf(8, 0.0);
    RmaHandle h = rma.nbget(me, peer, region.base(peer), buf.data(), 8);
    rma.free_symmetric(me, region);  // h never waited
    (void)h;
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::PendingAtFree), 2);
  EXPECT_EQ(static_cast<int>(rs.size()), 2);
}

// (5) A footprint that runs past the end of the owner's segment.
TEST(CheckerDiag, OutOfBounds) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 8);  // 64 bytes
    const int peer = 1 - me.id();
    // 4 x 4 patch = 128 bytes from a 64-byte segment.  dst is null so the
    // runtime skips the (genuinely out-of-bounds) data copy; the checker
    // diagnoses from the owner-side footprint alone.
    RmaHandle h =
        rma.nbget2d(me, peer, region.base(peer), 4, 4, 4, nullptr, 4);
    rma.wait(me, h);
    me.barrier();
  });
  EXPECT_EQ(count(rma.checker()->reports(), Diag::OutOfBounds), 2);
}

// (6) wait() on a handle that already completed.
TEST(CheckerDiag, DoubleWait) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team, recording_checker());
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 8);
    const int peer = 1 - me.id();
    std::vector<double> buf(8, 0.0);
    RmaHandle h = rma.nbget(me, peer, region.base(peer), buf.data(), 8);
    rma.wait(me, h);
    rma.wait(me, h);  // idempotent at runtime, diagnosed by the checker
    me.barrier();
  });
  const auto rs = rma.checker()->reports();
  EXPECT_EQ(count(rs, Diag::DoubleWait), 2);
  EXPECT_EQ(static_cast<int>(rs.size()), 2);
}

// RmaConfig::check = false keeps the checker off even when the environment
// asks for it (the zero-overhead disabled path).
TEST(CheckerConfig, ExplicitOffOverridesEnvironment) {
  Team team(MachineModel::testing(1, 2));
  RmaConfig cfg;
  cfg.check = false;
  RmaRuntime rma(team, cfg);
  EXPECT_EQ(rma.checker(), nullptr);
}

// Clean full-pipeline runs: with the checker in throw mode any diagnostic
// aborts the run, so completing is the assertion.
TEST(CheckerClean, SrummaMultiplyPassesUnderChecker) {
  for (const bool phantom : {false, true}) {
    Team team(MachineModel::testing(2, 2));
    RmaRuntime rma(team, throwing_checker());
    const index_t n = 24;
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, n, n, ProcGrid{2, 2}, phantom);
      DistMatrix b(rma, me, n, n, ProcGrid{2, 2}, phantom);
      DistMatrix c(rma, me, n, n, ProcGrid{2, 2}, phantom);
      if (!phantom) {
        a.fill_coords_local(me);
        b.fill_coords_local(me);
        c.local_view(me).fill(0.0);
      }
      me.barrier();
      SrummaOptions opt;
      (void)srumma_multiply(me, a, b, c, opt);
      a.destroy(me);
      b.destroy(me);
      c.destroy(me);
    });
    ASSERT_NE(rma.checker(), nullptr);
    EXPECT_EQ(rma.checker()->report_count(), 0u) << "phantom=" << phantom;
  }
}

TEST(CheckerClean, GlobalArrayOpsPassUnderChecker) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team, throwing_checker());
  const index_t n = 16;
  team.run([&](Rank& me) {
    ga::GlobalArray a(rma, me, n, n);
    ga::GlobalArray b(rma, me, n, n);
    ga::GlobalArray c(rma, me, n, n);
    a.fill_pattern(me);
    b.fill(me, 0.5);
    c.fill(me, 0.0);
    if (me.id() == 0) {
      Matrix patch(4, 4);
      patch.view().fill(2.0);
      a.put(me, 0, 0, 4, 4, patch.view());
    }
    a.sync(me);
    Matrix out(4, 4);
    a.get(me, 0, 0, 4, 4, out.view());
    a.sync(me);
    Matrix inc(2, 2);
    inc.view().fill(1.0);
    b.acc(me, 0, 0, 2, 2, 1.0, inc.view());
    b.sync(me);
    (void)ga::dgemm(me, 'n', 'n', 1.0, a, b, 0.0, c);
    (void)ga::dot(me, a, b);
    ga::scale(me, c, 2.0);
    a.destroy(me);
    b.destroy(me);
    c.destroy(me);
  });
  ASSERT_NE(rma.checker(), nullptr);
  EXPECT_EQ(rma.checker()->report_count(), 0u);
}

}  // namespace
}  // namespace srumma
