// Tests for the two-sided (MPI-model) layer: matching semantics, data
// correctness, eager vs rendezvous behaviour (including the overlap cliff),
// collectives, and deadlock-freedom of the exchange patterns the baselines
// rely on.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "msg/comm.hpp"
#include "runtime/team.hpp"

namespace srumma {
namespace {

TEST(MsgP2P, SmallMessageRoundTrip) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    double v[4] = {};
    if (me.id() == 0) {
      double s[4] = {1, 2, 3, 4};
      comm.send(me, 1, 7, s, 4);
    } else {
      comm.recv(me, 0, 7, v, 4);
      EXPECT_EQ(v[3], 4.0);
      EXPECT_EQ(me.trace().recvs, 1u);
    }
  });
}

TEST(MsgP2P, LargeMessageUsesRendezvous) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  const std::size_t elems = 8192;  // 64 KB > 16 KB threshold
  team.run([&](Rank& me) {
    std::vector<double> buf(elems);
    if (me.id() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      comm.send(me, 1, 1, buf.data(), elems);
    } else {
      comm.recv(me, 0, 1, buf.data(), elems);
      EXPECT_EQ(buf[8191], 8191.0);
    }
  });
}

TEST(MsgP2P, RendezvousSynchronizesClocks) {
  // A blocking rendezvous send cannot complete before the receiver posts:
  // the sender's clock must jump to (at least) the receiver's posting time.
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    std::vector<double> buf(4096);  // 32 KB
    if (me.id() == 0) {
      comm.send(me, 1, 1, buf.data(), buf.size());
      EXPECT_GE(me.clock().now(), 0.5);
    } else {
      me.charge_seconds(0.5);  // receiver shows up late
      comm.recv(me, 0, 1, buf.data(), buf.size());
    }
  });
}

TEST(MsgP2P, EagerSenderDoesNotBlock) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    double v[8] = {};
    if (me.id() == 0) {
      comm.send(me, 1, 3, v, 8);
      // Sender cost is local only: latency + copy, no receiver dependency.
      EXPECT_LT(me.clock().now(), mm.mpi_latency * 2 + 1e-6);
    } else {
      me.charge_seconds(0.25);
      comm.recv(me, 0, 3, v, 8);
    }
  });
}

TEST(MsgP2P, TagsKeepStreamsSeparate) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    if (me.id() == 0) {
      double a = 1.0, b = 2.0;
      comm.send(me, 1, 10, &a, 1);
      comm.send(me, 1, 20, &b, 1);
    } else {
      double b = 0, a = 0;
      comm.recv(me, 0, 20, &b, 1);  // out of arrival order
      comm.recv(me, 0, 10, &a, 1);
      EXPECT_EQ(a, 1.0);
      EXPECT_EQ(b, 2.0);
    }
  });
}

TEST(MsgP2P, FifoPerSourceAndTag) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    if (me.id() == 0) {
      for (int i = 0; i < 5; ++i) {
        double v = i;
        comm.send(me, 1, 4, &v, 1);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        double v = -1;
        comm.recv(me, 0, 4, &v, 1);
        EXPECT_EQ(v, static_cast<double>(i));
      }
    }
  });
}

TEST(MsgP2P, CountMismatchThrows) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    double v[4] = {};
    if (me.id() == 0) {
      comm.send(me, 1, 1, v, 4);
    } else {
      comm.recv(me, 0, 1, v, 2);
    }
  }),
               Error);
  team.reset();
}

TEST(MsgP2P, SelfSendThrows) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    double v = 0;
    comm.send(me, me.id(), 0, &v, 1);
  }),
               Error);
}

TEST(MsgNonblocking, EagerIsendOverlapsFully) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    double v[4] = {};
    if (me.id() == 0) {
      SendHandle h = comm.isend(me, 1, 1, v, 4);
      const double before_wait = me.clock().now();
      comm.wait(me, h);
      EXPECT_DOUBLE_EQ(me.clock().now(), before_wait);  // nothing to do
    } else {
      comm.recv(me, 0, 1, v, 4);
    }
  });
}

TEST(MsgNonblocking, RendezvousIsendPaysAtWait) {
  // The Fig. 7 cliff: a rendezvous isend makes no progress while the sender
  // computes; the whole transfer lands in wait().
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  const MachineModel& mm = team.machine();
  const std::size_t elems = 1 << 16;  // 512 KB
  team.run([&](Rank& me) {
    std::vector<double> buf(elems);
    if (me.id() == 0) {
      SendHandle h = comm.isend(me, 1, 1, buf.data(), elems);
      me.charge_seconds(10.0);  // plenty of computation to hide behind
      const double before_wait = me.clock().now();
      comm.wait(me, h);
      // Despite 10 s of compute, the wire time was NOT hidden.
      EXPECT_GE(me.clock().now() - before_wait,
                static_cast<double>(elems * 8) / mm.net_bw * 0.99);
    } else {
      std::vector<double> rbuf(elems);
      comm.recv(me, 0, 1, rbuf.data(), elems);
    }
  });
}

TEST(MsgNonblocking, IrecvMatchesLateSender) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    double v[2] = {};
    if (me.id() == 1) {
      RecvHandle h = comm.irecv(me, 0, 9, v, 2);
      comm.wait(me, h);
      EXPECT_EQ(v[1], 5.0);
    } else {
      me.charge_seconds(0.01);
      double s[2] = {4.0, 5.0};
      comm.send(me, 1, 9, s, 2);
    }
  });
}

TEST(MsgNonblocking, ExchangePairDoesNotDeadlock) {
  // Symmetric large-message exchange via sendrecv on every rank pair of a
  // ring — the pattern Cannon's shifts use.
  Team team(MachineModel::testing(4, 1));
  Comm comm(team);
  const std::size_t elems = 4096;  // rendezvous-sized
  team.run([&](Rank& me) {
    std::vector<double> sbuf(elems, static_cast<double>(me.id()));
    std::vector<double> rbuf(elems, -1.0);
    const int right = (me.id() + 1) % team.size();
    const int left = (me.id() + team.size() - 1) % team.size();
    comm.sendrecv(me, right, 5, sbuf.data(), elems, left, 5, rbuf.data(),
                  elems);
    EXPECT_EQ(rbuf[100], static_cast<double>(left));
  });
}

TEST(MsgCollective, BcastDeliversToAll) {
  Team team(MachineModel::testing(3, 2));
  Comm comm(team);
  std::vector<int> group{0, 1, 2, 3, 4, 5};
  team.run([&](Rank& me) {
    double v[3] = {};
    if (me.id() == 2) {
      v[0] = 1.5;
      v[1] = 2.5;
      v[2] = 3.5;
    }
    comm.bcast(me, group, 2, v, 3);
    EXPECT_EQ(v[0], 1.5);
    EXPECT_EQ(v[2], 3.5);
  });
}

TEST(MsgCollective, BcastSubGroup) {
  Team team(MachineModel::testing(4, 1));
  Comm comm(team);
  std::vector<int> group{1, 3};
  team.run([&](Rank& me) {
    if (me.id() != 1 && me.id() != 3) return;
    double v = me.id() == 3 ? 42.0 : 0.0;
    comm.bcast(me, group, 3, &v, 1);
    EXPECT_EQ(v, 42.0);
  });
}

TEST(MsgCollective, BcastNonMemberThrows) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    std::vector<int> group{0};
    double v = 0;
    comm.bcast(me, group, 0, &v, 1);  // rank 1 is not in the group
  }),
               Error);
}

TEST(MsgCollective, ReduceSumToRoot) {
  Team team(MachineModel::testing(5, 1));
  Comm comm(team);
  std::vector<int> group{0, 1, 2, 3, 4};
  team.run([&](Rank& me) {
    double v[2] = {static_cast<double>(me.id()), 1.0};
    comm.reduce_sum(me, group, 2, v, 2);
    if (me.id() == 2) {
      EXPECT_EQ(v[0], 0.0 + 1 + 2 + 3 + 4);
      EXPECT_EQ(v[1], 5.0);
    }
  });
}

TEST(MsgCollective, AllreduceMaxEverywhere) {
  Team team(MachineModel::testing(4, 1));
  Comm comm(team);
  std::vector<int> group{0, 1, 2, 3};
  team.run([&](Rank& me) {
    double v = static_cast<double>(10 - me.id());
    comm.allreduce_max(me, group, &v, 1);
    EXPECT_EQ(v, 10.0);
  });
}

TEST(MsgCollective, BarrierSynchronizes) {
  Team team(MachineModel::testing(3, 1));
  Comm comm(team);
  std::vector<int> group{0, 1, 2};
  team.run([&](Rank& me) {
    me.charge_seconds(me.id() * 0.1);
    comm.barrier(me, group);
    EXPECT_GE(me.clock().now(), 0.2);  // nobody leaves before the slowest
  });
}

TEST(MsgCollective, PhantomBcastTimesWithoutData) {
  Team team(MachineModel::testing(4, 1));
  Comm comm(team);
  std::vector<int> group{0, 1, 2, 3};
  team.run([&](Rank& me) {
    comm.bcast(me, group, 0, nullptr, 1 << 16);
    EXPECT_GT(me.clock().now(), 0.0);
  });
  EXPECT_GT(team.total_trace().bytes_msg, 0u);
}

TEST(MsgConfig, EagerThresholdOverride) {
  // Lowering the threshold turns a small message into a rendezvous one:
  // the sender must then synchronize with a late receiver.
  Team team(MachineModel::testing(2, 1));
  Comm comm(team, MsgConfig{.eager_threshold = 64.0});
  EXPECT_DOUBLE_EQ(comm.eager_threshold(), 64.0);
  team.run([&](Rank& me) {
    double buf[32] = {};  // 256 bytes: rendezvous under the override
    if (me.id() == 0) {
      comm.send(me, 1, 1, buf, 32);
      EXPECT_GE(me.clock().now(), 0.25);  // blocked until the recv posted
    } else {
      me.charge_seconds(0.25);
      comm.recv(me, 0, 1, buf, 32);
    }
  });
}

TEST(MsgConfig, RaisedThresholdKeepsLargeMessagesEager) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team, MsgConfig{.eager_threshold = 1e9});
  team.run([&](Rank& me) {
    std::vector<double> buf(1 << 16);  // 512 KB, eager under the override
    if (me.id() == 0) {
      comm.send(me, 1, 1, buf.data(), buf.size());
      EXPECT_LT(me.clock().now(), 0.2);  // returned without the receiver
    } else {
      me.charge_seconds(0.25);
      comm.recv(me, 0, 1, buf.data(), buf.size());
    }
  });
}

TEST(MsgTiming, HalfRoundTripLatencySemantics) {
  // A 1-element ping: receiver completes at roughly sender latency + copy
  // costs, i.e. "half of the round-trip exchange" as the paper measures.
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    double v = 0;
    if (me.id() == 0) {
      comm.send(me, 1, 1, &v, 1);
    } else {
      comm.recv(me, 0, 1, &v, 1);
      EXPECT_GE(me.clock().now(), mm.mpi_latency);
      EXPECT_LE(me.clock().now(), mm.mpi_latency * 4);
    }
  });
}

}  // namespace
}  // namespace srumma
