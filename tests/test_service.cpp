// The GEMM request plane (src/service, docs/SERVICE.md): admission
// control, priority scheduling without inversion, aging, batching,
// sub-team exhaustion, fault retries that never stall the queue, and the
// bitwise-identity contract against standalone multiplies.
//
// Injects its own fault planes and asserts clean-environment timings, so
// the suite carries the `faults` ctest label (it runs in the clean
// fault-matrix pass, not the env-injected one).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "fault/fault_plane.hpp"
#include "runtime/subteam.hpp"
#include "service/metrics.hpp"
#include "service/service.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace srumma::service {
namespace {

using srumma::testing::coords_matrix;
using srumma::testing::gemm_tolerance;
using srumma::testing::reference_gemm;

MachineModel quiet_machine(int nodes, int rpn) {
  return MachineModel::testing(nodes, rpn);  // no OS noise: deterministic
}

JobSpec phantom_job(index_t n, JobPriority prio = JobPriority::Normal) {
  JobSpec s;
  s.m = s.n = s.k = n;
  s.priority = prio;
  return s;
}

// -- TeamPartition / carve ---------------------------------------------------

TEST(Partition, FirstFitAcquireRelease) {
  TeamPartition part(4);
  EXPECT_EQ(part.total_nodes(), 4);
  EXPECT_EQ(part.free_nodes(), 4);
  auto a = part.acquire(2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_node, 0);
  EXPECT_EQ(a->nodes, 2);
  auto b = part.acquire(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first_node, 2);
  EXPECT_EQ(part.free_nodes(), 0);
  EXPECT_FALSE(part.acquire(1).has_value());
  part.release(*a);
  EXPECT_EQ(part.free_nodes(), 2);
  // First fit reuses the freed low run.
  auto c = part.acquire(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first_node, 0);
  part.release(*b);
  part.release(*c);
  EXPECT_EQ(part.free_nodes(), 4);
}

TEST(Partition, LargestFreeRunTracksFragmentation) {
  TeamPartition part(5);
  auto a = part.acquire(1);  // node 0
  auto b = part.acquire(2);  // nodes 1-2
  ASSERT_TRUE(a && b);
  part.release(*a);  // free: {0}, {3,4}
  EXPECT_EQ(part.free_nodes(), 3);
  EXPECT_EQ(part.largest_free_run(), 2);
  // A 3-node lease cannot be satisfied contiguously despite 3 free nodes.
  EXPECT_FALSE(part.acquire(3).has_value());
  part.release(*b);
  EXPECT_EQ(part.largest_free_run(), 5);
}

TEST(Partition, ReleaseValidates) {
  TeamPartition part(2);
  EXPECT_THROW(part.release(NodeLease{0, 1}), Error);          // not leased
  EXPECT_THROW((void)part.acquire(3), Error);  // larger than machine
}

TEST(Machine, CarveKeepsPerNodeParameters) {
  const MachineModel m = MachineModel::linux_myrinet(8);
  const MachineModel sub = m.carve(3);
  EXPECT_EQ(sub.num_nodes, 3);
  EXPECT_EQ(sub.ranks_per_node, m.ranks_per_node);
  EXPECT_EQ(sub.net_bw, m.net_bw);
  EXPECT_EQ(sub.dgemm.peak_flops, m.dgemm.peak_flops);
  EXPECT_THROW(m.carve(0), Error);
  EXPECT_THROW(m.carve(9), Error);
}

TEST(SubTeam, RunsLikeStandaloneMachine) {
  const MachineModel parent = quiet_machine(4, 2);
  SubTeam st(parent, NodeLease{1, 2});
  EXPECT_EQ(st.ranks(), 4);
  double sub_clock = 0.0;
  st.team().run([](Rank& me) { me.barrier(); });
  sub_clock = st.team().max_clock();
  Team solo(parent.carve(2));
  solo.run([](Rank& me) { me.barrier(); });
  EXPECT_EQ(sub_clock, solo.max_clock());
}

// -- admission control -------------------------------------------------------

TEST(Service, QueueFullRejectsTyped) {
  ServiceConfig cfg;
  cfg.queue_cap = 2;
  cfg.flops_per_node = 1.0;  // every job wants the whole machine
  GemmService svc(quiet_machine(2, 2), cfg);
  const SubmitResult r1 = svc.submit(phantom_job(64), 0.0);  // dispatches
  const SubmitResult r2 = svc.submit(phantom_job(64), 0.0);  // waits
  const SubmitResult r3 = svc.submit(phantom_job(64), 0.0);  // waits
  const SubmitResult r4 = svc.submit(phantom_job(64), 0.0);  // shed
  EXPECT_TRUE(r1.accepted && r2.accepted && r3.accepted);
  EXPECT_FALSE(r4.accepted);
  EXPECT_EQ(r4.reject, RejectReason::QueueFull);
  EXPECT_EQ(svc.report(r4.id).state, JobState::Rejected);
  svc.drain();
  for (auto id : {r1.id, r2.id, r3.id}) {
    EXPECT_EQ(svc.report(id).state, JobState::Done);
  }
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.submitted, 4u);
  EXPECT_EQ(m.accepted, 3u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 3u);
}

TEST(Service, BadShapeRejectsTyped) {
  GemmService svc(quiet_machine(2, 2));
  JobSpec bad = phantom_job(0);
  const SubmitResult r = svc.submit(bad, 0.0);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reject, RejectReason::BadShape);
  // Real-data job with mismatched views.
  Matrix a(8, 8), b(8, 8), c(8, 4);  // c should be 8 x 8
  JobSpec real = phantom_job(8);
  real.phantom = false;
  real.a = a.view();
  real.b = b.view();
  real.c = c.view();
  EXPECT_EQ(svc.submit(real, 0.0).reject, RejectReason::BadShape);
  svc.drain();
}

TEST(Service, CloseShedsShuttingDown) {
  GemmService svc(quiet_machine(2, 2));
  EXPECT_TRUE(svc.submit(phantom_job(32), 0.0).accepted);
  svc.close();
  const SubmitResult r = svc.submit(phantom_job(32), 1.0);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reject, RejectReason::ShuttingDown);
  svc.drain();
}

// -- scheduling policy -------------------------------------------------------

TEST(Service, HighPriorityOvertakesEarlierLowPriority) {
  // A huge job owns the machine; a low-priority and (later) a
  // high-priority full-machine job queue behind it.  Despite arriving
  // second, the high-priority job must dispatch first.
  ServiceConfig cfg;
  cfg.flops_per_node = 1.0;  // all jobs full-machine: strict serialization
  GemmService svc(quiet_machine(4, 2), cfg);
  const auto huge = svc.submit(phantom_job(96, JobPriority::Low), 0.0);
  const auto low = svc.submit(phantom_job(48, JobPriority::Low), 1e-6);
  const auto high = svc.submit(phantom_job(48, JobPriority::High), 2e-6);
  svc.drain();
  const JobReport& rl = svc.report(low.id);
  const JobReport& rh = svc.report(high.id);
  EXPECT_EQ(svc.report(huge.id).state, JobState::Done);
  EXPECT_LT(rh.start_vt, rl.start_vt);
  EXPECT_GE(rl.start_vt, rh.completion_vt);
}

TEST(Service, NoBackfillPastBlockedHighPriorityJob) {
  // Job A (low, 2 nodes) runs; job B (high, 4 nodes) blocks on the 2 free
  // nodes; job C (low, 1 node) would fit the free nodes but must NOT jump
  // the blocked higher-priority head — that is the no-starvation rule.
  const MachineModel machine = quiet_machine(4, 2);
  const double unit = phantom_job(64).flops();  // 64^3 as the size quantum
  ServiceConfig cfg;
  cfg.flops_per_node = unit / 2 + 1;  // 64^3 -> 2 nodes
  GemmService svc(machine, cfg);
  JobSpec a = phantom_job(64, JobPriority::Low);       // 2 nodes
  JobSpec b = phantom_job(102, JobPriority::High);     // ~4.2 units -> 4 nodes
  JobSpec c = phantom_job(32, JobPriority::Low);       // 1 node
  const auto ra = svc.submit(a, 0.0);
  const auto rb = svc.submit(b, 1e-6);
  const auto rc = svc.submit(c, 2e-6);
  svc.drain();
  EXPECT_EQ(svc.report(rb.id).nodes, 4);
  EXPECT_EQ(svc.report(rc.id).nodes, 1);
  // B waits for A; C waits for B even though nodes sat free during A.
  EXPECT_GE(svc.report(rb.id).start_vt, svc.report(ra.id).completion_vt);
  EXPECT_GE(svc.report(rc.id).start_vt, svc.report(rb.id).completion_vt);
}

TEST(Service, AgingLiftsStarvedLowPriorityJobs) {
  // With age_boost, a Low job that has waited long enough outranks a
  // freshly arrived High job (Low + 3 boosts > High).
  ServiceConfig cfg;
  cfg.flops_per_node = 1.0;  // full-machine jobs: strict serialization
  GemmService svc(quiet_machine(2, 2), cfg);
  // Measure the huge job's service time first (deterministic model).
  const auto huge = svc.submit(phantom_job(96), 0.0);
  svc.drain();
  const double busy_until = svc.report(huge.id).completion_vt;
  ServiceConfig aged = cfg;
  aged.age_boost = busy_until / 4;  // the waiting Low job gains >= 3 classes
  GemmService svc2(quiet_machine(2, 2), aged);
  svc2.submit(phantom_job(96), 0.0);
  const auto low = svc2.submit(phantom_job(48, JobPriority::Low), 1e-6);
  const auto high =
      svc2.submit(phantom_job(48, JobPriority::High), busy_until * 0.99);
  svc2.drain();
  EXPECT_LT(svc2.report(low.id).start_vt, svc2.report(high.id).start_vt);
}

TEST(Service, SerializeArmRunsWholeMachineJobs) {
  ServiceConfig cfg;
  cfg.serialize = true;
  cfg.batch_flops = 1e18;  // ignored when serializing
  GemmService svc(quiet_machine(4, 2), cfg);
  const auto r1 = svc.submit(phantom_job(48), 0.0);
  const auto r2 = svc.submit(phantom_job(48), 0.0);
  svc.drain();
  EXPECT_EQ(svc.report(r1.id).nodes, 4);
  EXPECT_EQ(svc.report(r2.id).nodes, 4);
  EXPECT_EQ(svc.report(r2.id).batch_size, 1);
  EXPECT_GE(svc.report(r2.id).start_vt, svc.report(r1.id).completion_vt);
}

// -- concurrency & exhaustion ------------------------------------------------

TEST(Service, ExhaustionOverlapsJobsAndDrainsClean) {
  const double unit = phantom_job(64).flops();
  ServiceConfig cfg;
  cfg.flops_per_node = unit / 2 + 1;  // every job -> 2 of 4 nodes
  GemmService svc(quiet_machine(4, 2), cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const SubmitResult r = svc.submit(phantom_job(64), 0.0);
    ASSERT_TRUE(r.accepted);
    ids.push_back(r.id);
  }
  svc.drain();
  int started_at_zero = 0;
  double makespan = 0.0;
  double busy = 0.0;
  for (auto id : ids) {
    const JobReport& rep = svc.report(id);
    EXPECT_EQ(rep.state, JobState::Done);
    EXPECT_EQ(rep.nodes, 2);
    started_at_zero += rep.start_vt == 0.0 ? 1 : 0;
    makespan = std::max(makespan, rep.completion_vt);
    busy += rep.service();
  }
  // Two leases fit side by side, so exactly two jobs start at t=0 and the
  // eight-job makespan is roughly half the serial sum of service times.
  EXPECT_EQ(started_at_zero, 2);
  EXPECT_LT(makespan, busy);
  EXPECT_EQ(svc.partition().free_nodes(), 4);
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.completed, 8u);
  EXPECT_GT(m.utilization, 0.5);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GT(m.jobs_per_s, 0.0);
  EXPECT_GE(m.p99_latency, m.p50_latency);
  EXPECT_GT(m.p50_latency, 0.0);
}

TEST(Service, DeterministicReplay) {
  const auto run = [] {
    ServiceConfig cfg;
    cfg.flops_per_node = phantom_job(64).flops() / 2 + 1;
    GemmService svc(quiet_machine(4, 2), cfg);
    for (int i = 0; i < 6; ++i) {
      svc.submit(phantom_job(48 + 8 * (i % 3)),
                 static_cast<double>(i) * 1e-4);
    }
    svc.drain();
    return svc.reports();
  };
  const std::vector<JobReport> a = run();
  const std::vector<JobReport> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_vt, b[i].start_vt);
    EXPECT_EQ(a[i].completion_vt, b[i].completion_vt);
    EXPECT_EQ(a[i].result.elapsed, b[i].result.elapsed);
  }
}

// -- batching ----------------------------------------------------------------

TEST(Service, SmallJobsBatchOntoOneLease) {
  const double small = phantom_job(32).flops();
  ServiceConfig cfg;
  cfg.flops_per_node = 1.0;      // the huge job takes the whole machine
  cfg.batch_flops = small + 1;   // 32^3 jobs are batchable
  cfg.batch_max = 3;
  GemmService svc(quiet_machine(4, 2), cfg);
  const auto huge = svc.submit(phantom_job(96), 0.0);
  std::vector<std::uint64_t> smalls;
  for (int i = 0; i < 3; ++i) {
    smalls.push_back(svc.submit(phantom_job(32), 1e-6).id);
  }
  svc.drain();
  EXPECT_EQ(svc.report(huge.id).batch_size, 1);
  double prev_end = -1.0;
  for (auto id : smalls) {
    const JobReport& rep = svc.report(id);
    EXPECT_EQ(rep.state, JobState::Done);
    EXPECT_EQ(rep.batch_size, 3);
    if (prev_end >= 0) {
      EXPECT_EQ(rep.start_vt, prev_end);  // back to back on one lease
    }
    prev_end = rep.completion_vt;
  }
  EXPECT_EQ(svc.metrics().batches, 1u);
}

// -- bitwise identity --------------------------------------------------------

TEST(Service, ConcurrentJobsBitwiseIdenticalToStandalone) {
  const MachineModel machine = quiet_machine(4, 2);
  ServiceConfig cfg;
  cfg.flops_per_node = phantom_job(40).flops() + 1;  // mixed 1-2 node jobs
  GemmService svc(machine, cfg);

  struct Case {
    index_t m, n, k;
    blas::Trans ta, tb;
    double alpha, beta;
  };
  const Case cases[] = {
      {40, 36, 28, blas::Trans::No, blas::Trans::No, 1.0, 0.0},
      {32, 40, 24, blas::Trans::Yes, blas::Trans::No, 0.5, 0.0},
      {44, 28, 36, blas::Trans::No, blas::Trans::Yes, 1.0, 0.5},
      {48, 48, 48, blas::Trans::No, blas::Trans::No, 2.0, 1.0},
  };
  struct Bundle {
    Matrix a{1, 1}, b{1, 1}, c0{1, 1}, c_svc{1, 1};
    std::uint64_t id = 0;
    Case cs{};
  };
  std::vector<Bundle> jobs;
  std::uint64_t seed = 77;
  for (const Case& cs : cases) {
    Bundle j;
    j.cs = cs;
    const bool tra = cs.ta == blas::Trans::Yes;
    const bool trb = cs.tb == blas::Trans::Yes;
    j.a = Matrix(tra ? cs.k : cs.m, tra ? cs.m : cs.k);
    j.b = Matrix(trb ? cs.n : cs.k, trb ? cs.k : cs.n);
    j.c0 = Matrix(cs.m, cs.n);
    fill_random(j.a.view(), seed++);
    fill_random(j.b.view(), seed++);
    fill_random(j.c0.view(), seed++);
    j.c_svc = j.c0;  // serviced destination starts from the beta input
    jobs.push_back(std::move(j));
  }
  for (Bundle& j : jobs) {
    JobSpec s;
    s.m = j.cs.m;
    s.n = j.cs.n;
    s.k = j.cs.k;
    s.ta = j.cs.ta;
    s.tb = j.cs.tb;
    s.alpha = j.cs.alpha;
    s.beta = j.cs.beta;
    s.phantom = false;
    s.a = j.a.view();
    s.b = j.b.view();
    s.c = j.c_svc.view();
    const SubmitResult r = svc.submit(s, 0.0);
    ASSERT_TRUE(r.accepted);
    j.id = r.id;
  }
  svc.drain();
  for (Bundle& j : jobs) {
    const JobReport& rep = svc.report(j.id);
    ASSERT_EQ(rep.state, JobState::Done);
    // Standalone reference on a fresh machine of the lease's size.
    Matrix c_ref = j.c0;
    JobSpec s;
    s.m = j.cs.m;
    s.n = j.cs.n;
    s.k = j.cs.k;
    s.ta = j.cs.ta;
    s.tb = j.cs.tb;
    s.alpha = j.cs.alpha;
    s.beta = j.cs.beta;
    s.phantom = false;
    s.a = j.a.view();
    s.b = j.b.view();
    s.c = c_ref.view();
    run_standalone(machine, rep.nodes, s, cfg);
    EXPECT_EQ(max_abs_diff(j.c_svc.view(), c_ref.view()), 0.0)
        << "job " << j.id << " differs from its standalone run";
    // And both agree with the dense reference within tolerance.
    Matrix c_naive = j.c0;
    reference_gemm(j.cs.ta, j.cs.tb, j.cs.alpha, j.a, j.b, j.cs.beta, c_naive);
    EXPECT_LE(max_abs_diff(j.c_svc.view(), c_naive.view()),
              gemm_tolerance(j.cs.k));
  }
}

// -- faults ------------------------------------------------------------------

TEST(Service, FaultyJobFailsTypedWithoutStallingQueue) {
  // fail_rate=1.0 scoped to rank 2: only sub-teams of >= 2 nodes contain
  // that rank, so the big job deterministically exhausts its retries on
  // every (reseeded) attempt while 1-node jobs sail through — the queue
  // must keep flowing around the failing job.
  const MachineModel machine = quiet_machine(4, 2);
  const double unit = phantom_job(64).flops();
  ServiceConfig cfg;
  cfg.flops_per_node = unit / 2 + 1;  // 64^3 -> 2 nodes; 32^3 -> 1 node
  cfg.retries = 2;
  fault::FaultConfig faults;
  faults.fail_rate = 1.0;
  faults.only_rank = 2;
  cfg.rma.faults = faults;
  GemmService svc(machine, cfg);
  const auto doomed = svc.submit(phantom_job(64), 0.0);
  std::vector<std::uint64_t> fine;
  for (int i = 0; i < 3; ++i) {
    fine.push_back(svc.submit(phantom_job(32), 0.0).id);
  }
  svc.drain();
  const JobReport& bad = svc.report(doomed.id);
  EXPECT_EQ(bad.state, JobState::Failed);
  EXPECT_EQ(bad.attempts, 3);  // 1 + retries, each on a fresh sub-team
  for (auto id : fine) EXPECT_EQ(svc.report(id).state, JobState::Done);
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.completed, 3u);
  EXPECT_EQ(m.retries, 2u);
  // The retry instants landed in the service trace.
  int job_retries = 0;
  for (int node = 0; node < machine.num_nodes; ++node) {
    for (const trace::TraceEvent& e : svc.tracer().events(node)) {
      job_retries += e.phase == trace::Phase::JobRetry ? 1 : 0;
    }
  }
  EXPECT_EQ(job_retries, 2);
}

TEST(Service, TransparentRmaRetriesDegradeWithoutJobFailures) {
  // Low-rate transient failures with a raised attempt budget: the RMA
  // layer's own retries absorb every fault, so jobs complete first-try
  // while the counters record the degradation.
  ServiceConfig cfg;
  cfg.flops_per_node = phantom_job(64).flops() / 2 + 1;  // 64^3 -> 2 nodes
  cfg.multiply.k_chunk = 8;   // many small tasks -> many fault draws
  cfg.multiply.c_chunk = 16;
  fault::FaultConfig faults;
  faults.fail_rate = 0.2;
  faults.delay_rate = 0.1;
  cfg.rma.faults = faults;
  RetryPolicy retry;
  retry.max_attempts = 20;
  cfg.rma.retry = retry;
  GemmService svc(quiet_machine(4, 2), cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(svc.submit(phantom_job(64), 0.0).id);
  }
  svc.drain();
  std::uint64_t rma_retries = 0;
  for (auto id : ids) {
    const JobReport& rep = svc.report(id);
    EXPECT_EQ(rep.state, JobState::Done);
    EXPECT_EQ(rep.attempts, 1);
    rma_retries += rep.result.trace.rma_retries;
  }
  EXPECT_GT(rma_retries, 0u);
  EXPECT_EQ(svc.metrics().retries, 0u);
}

// -- deadlines, trace, metrics serialization ---------------------------------

TEST(Service, DeadlineHintsReportedNotEnforced) {
  ServiceConfig cfg;
  cfg.flops_per_node = 1.0;
  GemmService svc(quiet_machine(2, 2), cfg);
  JobSpec tight = phantom_job(64);
  tight.deadline_hint = 1e-9;  // unmeetable, but never a reject cause
  JobSpec slack = phantom_job(64);
  slack.deadline_hint = 1e9;
  const auto r1 = svc.submit(tight, 0.0);
  const auto r2 = svc.submit(slack, 0.0);
  svc.drain();
  EXPECT_EQ(svc.report(r1.id).state, JobState::Done);
  EXPECT_FALSE(svc.report(r1.id).deadline_met);
  EXPECT_TRUE(svc.report(r2.id).deadline_met);
  EXPECT_EQ(svc.metrics().deadline_misses, 1u);
}

TEST(Service, TraceCarriesJobSpansAndInstants) {
  ServiceConfig cfg;
  cfg.flops_per_node = phantom_job(48).flops() + 1;
  GemmService svc(quiet_machine(2, 2), cfg);
  const auto r1 = svc.submit(phantom_job(48), 0.0);
  const auto r2 = svc.submit(phantom_job(48), 1e-5);
  svc.drain();
  int job_spans = 0;
  int wait_spans = 0;
  int arrivals = 0;
  for (int node = 0; node < 2; ++node) {
    for (const trace::TraceEvent& e : svc.tracer().events(node)) {
      if (e.phase == trace::Phase::Job && e.type == trace::EvType::Span) {
        ++job_spans;
        const JobReport& rep = svc.report(e.arg);
        EXPECT_EQ(e.t0, rep.start_vt);
        EXPECT_EQ(e.t1, rep.completion_vt);
      }
      wait_spans += e.phase == trace::Phase::JobWait ? 1 : 0;
      arrivals += e.phase == trace::Phase::JobArrive ? 1 : 0;
    }
  }
  EXPECT_EQ(job_spans, 2);
  EXPECT_EQ(wait_spans, 2);
  EXPECT_EQ(arrivals, 2);
  (void)r1;
  (void)r2;
}

TEST(Service, MetricsJsonSerializes) {
  ServiceMetrics m;
  m.submitted = 3;
  m.accepted = 2;
  m.completed = 2;
  m.window = 2.0;
  m.jobs_per_s = 1.0;
  m.p50_latency = 0.5;
  m.p99_latency = 0.9;
  m.utilization = 0.75;
  const std::string doc = service_metrics_json(
      "service", {{"concurrent", {{"jobs", 3.0}}, m, 0.5}});
  EXPECT_NE(doc.find("\"schema\":\"srumma-service-metrics/1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"jobs_per_s\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"latency_p99_s\":0.9"), std::string::npos);
  EXPECT_NE(doc.find("\"utilization\":0.75"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_seconds\":0.5"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_per_virtual_second\":0.25"), std::string::npos);
}

TEST(Service, ConfigFromEnvironment) {
  ::setenv("SRUMMA_SERVICE_QUEUE_CAP", "7", 1);
  ::setenv("SRUMMA_SERVICE_FLOPS_PER_NODE", "5e6", 1);
  ::setenv("SRUMMA_SERVICE_BATCH_MAX", "9", 1);
  ::setenv("SRUMMA_SERVICE_AGE_BOOST", "0.25", 1);
  const ServiceConfig cfg = ServiceConfig::from_env();
  EXPECT_EQ(cfg.queue_cap, 7);
  EXPECT_EQ(cfg.flops_per_node, 5e6);
  EXPECT_EQ(cfg.batch_max, 9);
  EXPECT_EQ(cfg.age_boost, 0.25);
  ::unsetenv("SRUMMA_SERVICE_QUEUE_CAP");
  ::unsetenv("SRUMMA_SERVICE_FLOPS_PER_NODE");
  ::unsetenv("SRUMMA_SERVICE_BATCH_MAX");
  ::unsetenv("SRUMMA_SERVICE_AGE_BOOST");
}

}  // namespace
}  // namespace srumma::service
