// Stress and fuzz suites: randomized many-to-many communication storms,
// randomized SRUMMA configurations against the serial oracle, and
// concurrency hammering of the one-sided layer.  These run with real
// concurrency (ranks are OS threads), so they exercise the matching,
// eviction and synchronization logic under arbitrary interleavings.

#include <gtest/gtest.h>

#include "blas/kernel.hpp"
#include "core/srumma.hpp"
#include "msg/comm.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

TEST(Stress, ManyToManyMessageStorm) {
  // Every rank sends a tagged burst to every other rank in random order;
  // every payload must arrive intact.
  Team team(MachineModel::testing(3, 2));
  Comm comm(team);
  constexpr int kMsgs = 8;
  team.run([&](Rank& me) {
    const int p = team.size();
    Rng rng(static_cast<std::uint64_t>(500 + me.id()));
    // Post all receives first (wildcard-free: exact src/tag).
    std::vector<RecvHandle> handles;
    std::vector<std::vector<double>> bufs;
    for (int src = 0; src < p; ++src) {
      if (src == me.id()) continue;
      for (int k = 0; k < kMsgs; ++k) {
        bufs.emplace_back(4, -1.0);
        handles.push_back(
            comm.irecv(me, src, 1000 + k, bufs.back().data(), 4));
      }
    }
    // Send bursts in a per-rank random destination order.
    std::vector<std::pair<int, int>> sends;  // (dst, k)
    for (int dst = 0; dst < p; ++dst) {
      if (dst == me.id()) continue;
      for (int k = 0; k < kMsgs; ++k) sends.push_back({dst, k});
    }
    for (std::size_t i = sends.size(); i > 1; --i) {
      std::swap(sends[i - 1], sends[rng.below(i)]);
    }
    for (auto [dst, k] : sends) {
      double payload[4] = {static_cast<double>(me.id()),
                           static_cast<double>(dst),
                           static_cast<double>(k), 42.0};
      comm.send(me, dst, 1000 + k, payload, 4);
    }
    // Complete everything and validate contents.
    std::size_t idx = 0;
    for (int src = 0; src < p; ++src) {
      if (src == me.id()) continue;
      for (int k = 0; k < kMsgs; ++k, ++idx) {
        comm.wait(me, handles[idx]);
        EXPECT_EQ(bufs[idx][0], static_cast<double>(src));
        EXPECT_EQ(bufs[idx][1], static_cast<double>(me.id()));
        EXPECT_EQ(bufs[idx][2], static_cast<double>(k));
      }
    }
  });
}

TEST(Stress, MixedEagerAndRendezvousInterleaved) {
  // Alternating small (eager) and large (rendezvous) messages on one
  // channel must stay FIFO and intact.
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  constexpr int kRounds = 10;
  team.run([&](Rank& me) {
    if (me.id() == 0) {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<double> big(4096, static_cast<double>(r));
        double small = static_cast<double>(r) + 0.5;
        comm.send(me, 1, 7, &small, 1);
        comm.send(me, 1, 7, big.data(), big.size());
      }
    } else {
      for (int r = 0; r < kRounds; ++r) {
        double small = -1;
        std::vector<double> big(4096, -1.0);
        comm.recv(me, 0, 7, &small, 1);
        comm.recv(me, 0, 7, big.data(), big.size());
        EXPECT_EQ(small, r + 0.5);
        EXPECT_EQ(big[4095], static_cast<double>(r));
      }
    }
  });
}

TEST(Stress, ConcurrentGetsFromOneOwner) {
  // All ranks hammer rank 0's segment with overlapping strided gets; data
  // must always match and the owner's memory must be untouched.
  Team team(MachineModel::testing(4, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion region = rma.malloc_symmetric(me, 32 * 32);
    MatrixView mine(region.base(me.id()), 32, 32, 32);
    fill_coords(mine, me.id() * 32, 0);
    me.barrier();
    Rng rng(static_cast<std::uint64_t>(900 + me.id()));
    for (int trial = 0; trial < 40; ++trial) {
      const index_t i0 = static_cast<index_t>(rng.below(28));
      const index_t j0 = static_cast<index_t>(rng.below(28));
      const index_t rows = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(32 - i0)));
      const index_t cols = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(32 - j0)));
      Matrix dst(rows, cols);
      RmaHandle h = rma.nbget2d(me, 0, region.base(0) + i0 + j0 * 32, 32,
                                rows, cols, dst.data(), dst.ld());
      rma.wait(me, h);
      Matrix expect(rows, cols);
      fill_coords(expect.view(), i0, j0);
      EXPECT_EQ(max_abs_diff(dst.view(), expect.view()), 0.0);
    }
    me.barrier();
    // Owner's data unchanged.
    Matrix expect(32, 32);
    fill_coords(expect.view(), me.id() * 32, 0);
    EXPECT_EQ(max_abs_diff(ConstMatrixView(mine), expect.view()), 0.0);
  });
}

TEST(Stress, RandomizedSrummaConfigsAgainstOracle) {
  // Fuzz: 12 random configurations (shape, grid, transposes, chunking,
  // ordering, lookahead, flavor) checked against the naive serial kernel.
  Rng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const int nodes = 1 + static_cast<int>(rng.below(3));
    const int rpn = 1 + static_cast<int>(rng.below(3));
    const int p_ranks = nodes * rpn;
    // Random grid factorization of p_ranks.
    int gp = 1;
    for (int d = 1; d <= p_ranks; ++d)
      if (p_ranks % d == 0 && rng.below(2)) gp = d;
    const ProcGrid grid{gp, p_ranks / gp};

    SrummaOptions opt;
    opt.ta = rng.below(2) ? blas::Trans::Yes : blas::Trans::No;
    opt.tb = rng.below(2) ? blas::Trans::Yes : blas::Trans::No;
    opt.alpha = rng.uniform(-2.0, 2.0);
    opt.beta = rng.below(3) == 0 ? 0.0 : rng.uniform(-1.0, 1.0);
    opt.k_chunk = static_cast<index_t>(1 + rng.below(24));
    opt.c_chunk = rng.below(2) ? 0 : static_cast<index_t>(3 + rng.below(12));
    opt.lookahead = 1 + static_cast<int>(rng.below(4));
    opt.nonblocking = rng.below(4) != 0;
    opt.shm_flavor = rng.below(2) ? ShmFlavor::Direct : ShmFlavor::Copy;
    opt.ordering = OrderingPolicy{rng.below(2) == 1, rng.below(2) == 1,
                                  rng.below(2) == 1};

    const index_t m = 1 + static_cast<index_t>(rng.below(40));
    const index_t n = 1 + static_cast<index_t>(rng.below(40));
    const index_t k = 1 + static_cast<index_t>(rng.below(40));
    const bool tra = opt.ta == blas::Trans::Yes;
    const bool trb = opt.tb == blas::Trans::Yes;

    Team team(MachineModel::testing(nodes, rpn));
    RmaRuntime rma(team);
    Matrix a_g(tra ? k : m, tra ? m : k);
    Matrix b_g(trb ? n : k, trb ? k : n);
    fill_random(a_g.view(), static_cast<std::uint64_t>(10 + trial));
    fill_random(b_g.view(), static_cast<std::uint64_t>(20 + trial));
    Matrix c_init(m, n);
    fill_random(c_init.view(), static_cast<std::uint64_t>(30 + trial));
    Matrix c_ref = c_init;
    testing::reference_gemm(opt.ta, opt.tb, opt.alpha, a_g, b_g, opt.beta,
                            c_ref);
    Matrix c_out(m, n);
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, a_g.rows(), a_g.cols(), grid);
      DistMatrix b(rma, me, b_g.rows(), b_g.cols(), grid);
      DistMatrix c(rma, me, m, n, grid);
      a.scatter_from(me, a_g.view());
      b.scatter_from(me, b_g.view());
      c.scatter_from(me, c_init.view());
      srumma_multiply(me, a, b, c, opt);
      c.gather_to(me, c_out.view());
    });
    EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
              testing::gemm_tolerance(k))
        << "trial " << trial << " m=" << m << " n=" << n << " k=" << k
        << " grid=" << grid.p << "x" << grid.q
        << " ta=" << static_cast<char>(opt.ta)
        << " tb=" << static_cast<char>(opt.tb) << " kc=" << opt.k_chunk
        << " cc=" << opt.c_chunk << " la=" << opt.lookahead;
  }
}

TEST(Stress, RepeatedTeamReuseIsSchedulingInsensitive) {
  // Run many multiplies on one team/runtime.  Virtual time is *almost*
  // order-independent: the contention allocator places transfers by their
  // virtual ready times, but when two transfers compete for the same gap
  // the OS-dependent booking order breaks the tie.  The guaranteed
  // property is therefore a tight tolerance, not bit-equality.
  Team team(MachineModel::linux_myrinet(4));
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(team.size());
  double first = -1.0;
  for (int round = 0; round < 5; ++round) {
    team.reset();
    MultiplyResult out;
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, 1024, 1024, g, true);
      DistMatrix b(rma, me, 1024, 1024, g, true);
      DistMatrix c(rma, me, 1024, 1024, g, true);
      MultiplyResult r = srumma_multiply(me, a, b, c, SrummaOptions{});
      if (me.id() == 0) out = r;
    });
    if (first < 0) {
      first = out.elapsed;
    } else {
      EXPECT_NEAR(out.elapsed, first, first * 0.03) << "round " << round;
    }
  }
}

TEST(Stress, TwoHundredFiftySixRanksRealData) {
  // Full-scale functional run: 256 rank threads (the paper's largest
  // processor count) with real data, verified.
  Team team(MachineModel::testing(16, 16));
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(256);
  const index_t n = 64;
  Matrix a_g = testing::coords_matrix(n, n);
  Matrix b_g(n, n);
  fill_random(b_g.view(), 7);
  Matrix c_ref(n, n);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, 1.0, a_g, b_g,
                          0.0, c_ref);
  Matrix c_out(n, n);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g);
    DistMatrix b(rma, me, n, n, g);
    DistMatrix c(rma, me, n, n, g);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    srumma_multiply(me, a, b, c, SrummaOptions{});
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(n));
}

TEST(Stress, PackBufferLifecycle) {
  // The dgemm pack workspace is thread_local and grow-only: a small gemm
  // must size it to its own (rounded) panels, not the kernel's full
  // mc x kc / kc x nc footprint; a larger gemm grows it; a later small gemm
  // leaves it alone; reset_pack_buffers() releases it.  All calls run on
  // this thread so they hit one buffer pair.
  blas::reset_pack_buffers();
  EXPECT_EQ(blas::pack_buffer_bytes(), 0u);

  const blas::GemmKernel& kern = blas::active_kernel();
  auto round_up = [](index_t x, index_t mult) {
    return (x + mult - 1) / mult * mult;
  };
  const std::size_t full_panel_bytes =
      static_cast<std::size_t>(round_up(kern.mc, kern.mr) * kern.kc +
                               kern.kc * round_up(kern.nc, kern.nr)) *
      sizeof(double);

  auto run_gemm = [](index_t n) {
    Matrix a(n, n), b(n, n), c(n, n);
    fill_random(a.view(), 81);
    fill_random(b.view(), 82);
    blas::gemm_blocked(blas::Trans::No, blas::Trans::No, n, n, n, 1.0,
                       a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
                       c.ld());
  };

  run_gemm(16);
  const std::size_t small = blas::pack_buffer_bytes();
  EXPECT_GT(small, 0u);
  EXPECT_LT(small, full_panel_bytes) << "16x16 gemm paid full-panel cost";

  run_gemm(400);  // spans several cache blocks in every dimension
  const std::size_t big = blas::pack_buffer_bytes();
  EXPECT_GT(big, small);

  run_gemm(16);  // grow-only: revisiting a small problem must not shrink
  EXPECT_EQ(blas::pack_buffer_bytes(), big);

  blas::reset_pack_buffers();
  EXPECT_EQ(blas::pack_buffer_bytes(), 0u);

  // Still fully functional after a reset.
  Matrix a(33, 29), b(29, 31), c(33, 31), c_ref(33, 31);
  fill_random(a.view(), 83);
  fill_random(b.view(), 84);
  blas::gemm_blocked(blas::Trans::No, blas::Trans::No, 33, 31, 29, 1.0,
                     a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
                     c.ld());
  blas::gemm_naive(blas::Trans::No, blas::Trans::No, 33, 31, 29, 1.0,
                   a.data(), a.ld(), b.data(), b.ld(), 0.0, c_ref.data(),
                   c_ref.ld());
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()), testing::gemm_tolerance(29));
  EXPECT_GT(blas::pack_buffer_bytes(), 0u);
}

TEST(Stress, BigTeamManyBarriers) {
  Team team(MachineModel::sgi_altix(64));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 64);
    for (int i = 0; i < 20; ++i) {
      r.base(me.id())[i % 64] = static_cast<double>(i);
      me.barrier();
      const int peer = (me.id() + i + 1) % team.size();
      RmaHandle h = rma.nbget(me, peer, r.base(peer), nullptr, 64);
      rma.wait(me, h);
      me.barrier();
    }
  });
}

}  // namespace
}  // namespace srumma
