// The pooled execution harness (src/runtime/fiber_exec, docs/HARNESS.md):
// fiber-pool primitives, and the pooled vs thread-per-rank differential.
//
// The differential's exact arms run on MachineModel::testing(2, 1): two
// ranks, one per node, so every modeled resource (per-node NICs, each
// domain's memory system) is booked by exactly one rank and the virtual
// schedule has no first-fit gap competition (docs/MODEL.md §2).  Inside
// that envelope the two execution modes must agree *bitwise* — result
// matrix, every TraceCounters field, and every rank's final virtual
// clock.  On contended machines only the numerics are order-independent,
// so those arms assert bitwise-identical C and leave timings free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "core/srumma.hpp"
#include "dist/dist_matrix.hpp"
#include "rma/rma.hpp"
#include "runtime/fiber_exec.hpp"
#include "runtime/team.hpp"
#include "tests/helpers.hpp"
#include "trace/metrics_json.hpp"
#include "util/error.hpp"

namespace srumma {
namespace {

// ---------------------------------------------------------------------------
// Fiber-pool primitives.

TEST(FiberExec, RunsEveryBodyExactlyOnce) {
  std::vector<int> hits(32, 0);
  EXPECT_FALSE(exec::on_fiber());
  exec::run_fibers(32, 1, exec::default_stack_bytes(), [&](int i) {
    EXPECT_TRUE(exec::on_fiber());
    hits[static_cast<std::size_t>(i)]++;
  });
  EXPECT_FALSE(exec::on_fiber());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(FiberExec, SingleWorkerYieldIsDeterministicRoundRobin) {
  // One worker, yielding fibers: each yield re-enqueues at the tail, so
  // the interleaving is a fixed round-robin — the determinism the pooled
  // differential relies on.
  std::vector<int> order;
  exec::run_fibers(3, 1, exec::default_stack_bytes(), [&](int i) {
    order.push_back(i);
    exec::yield();
    order.push_back(i);
  });
  const std::vector<int> expect = {0, 1, 2, 0, 1, 2};
  EXPECT_EQ(order, expect);
}

TEST(FiberExec, MultiWorkerCompletesAllBodies) {
  std::atomic<int> done{0};
  exec::run_fibers(64, 4, exec::default_stack_bytes(), [&](int) {
    exec::yield();
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(FiberExec, DeepStackUseStaysInsideGuardedStack) {
  // Touch well past a page of stack; the guard page would fault if the
  // fiber were running on a too-small or mismanaged stack.
  exec::run_fibers(2, 1, exec::default_stack_bytes(), [&](int i) {
    volatile char probe[16 * 1024];
    probe[0] = static_cast<char>(i);
    probe[sizeof probe - 1] = static_cast<char>(i);
    EXPECT_EQ(probe[0], probe[sizeof probe - 1]);
  });
}

// ---------------------------------------------------------------------------
// Team integration.

TEST(HarnessPool, PooledRunMatchesReference) {
  Team team(MachineModel::testing(2, 2));
  team.set_execution(ExecMode::Pooled);
  RmaRuntime rma(team);
  const index_t n = 32;
  const ProcGrid g{2, 2};
  Matrix a_g = testing::coords_matrix(n, n);
  Matrix b_g(n, n);
  fill_random(b_g.view(), 7);
  Matrix c_ref(n, n);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, 1.0, a_g, b_g,
                          0.0, c_ref);
  Matrix c_out(n, n);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g);
    DistMatrix b(rma, me, n, n, g);
    DistMatrix c(rma, me, n, n, g);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    (void)srumma_multiply(me, a, b, c, {});
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(n));
}

TEST(HarnessPool, ExplicitWorkerCountsAllComplete) {
  for (int workers : {1, 2, 5}) {
    Team team(MachineModel::testing(2, 2));
    team.set_execution(ExecMode::Pooled, workers);
    std::atomic<int> ran{0};
    team.run([&](Rank& me) {
      me.barrier();
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 4) << workers << " workers";
  }
}

TEST(HarnessPool, AbortPropagatesAcrossParkedFibers) {
  // A rank throwing while its peers are parked at a barrier must wake
  // them and rethrow at the Team::run call site — the same contract the
  // thread-per-rank mode has always had.
  Team team(MachineModel::testing(2, 2));
  team.set_execution(ExecMode::Pooled);
  EXPECT_THROW(team.run([&](Rank& me) {
    if (me.id() == 2) throw Error("rank 2 failed");
    me.barrier();
  }),
               Error);
  EXPECT_TRUE(team.aborted());
  team.reset();
  EXPECT_FALSE(team.aborted());
}

TEST(HarnessPool, NestedRunFallsBackToThreads) {
  // A Team::run issued from inside a fiber (the request plane does this)
  // must not recurse into the fiber pool.
  Team outer(MachineModel::testing(1, 2));
  outer.set_execution(ExecMode::Pooled);
  std::atomic<int> inner_ran{0};
  outer.run([&](Rank& me) {
    if (me.id() == 0) {
      Team inner(MachineModel::testing(1, 2));
      inner.set_execution(ExecMode::Pooled);  // overridden by the guard
      inner.run([&](Rank& im) {
        im.barrier();
        inner_ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    me.barrier();
  });
  EXPECT_EQ(inner_ran.load(), 2);
}

// ---------------------------------------------------------------------------
// The pooled vs thread-per-rank differential.

struct ModeRun {
  Matrix c;
  std::string counters;        ///< counters_json of the aggregated trace
  std::vector<double> clocks;  ///< per-rank final virtual clocks
  ModeRun() : c(0, 0) {}
};

struct DiffConfig {
  bool engine = false;
  bool cache = false;
  bool faults = false;
  [[nodiscard]] std::string label() const {
    return std::string(engine ? "engine" : "pipeline") +
           (cache ? "+cache" : "") + (faults ? "+faults" : "");
  }
};

ModeRun run_mode(const MachineModel& machine, ExecMode mode,
                 const DiffConfig& cfg, index_t n) {
  Team team(machine);
  team.set_execution(mode);
  RmaConfig rc;
  rc.cache = cfg.cache;
  if (cfg.faults) {
    fault::FaultConfig f;
    f.fail_rate = 0.02;
    f.delay_rate = 0.02;
    rc.faults = f;
    RetryPolicy retry;
    retry.max_attempts = 20;
    rc.retry = retry;
  }
  RmaRuntime rma(team, rc);
  const ProcGrid g = ProcGrid::near_square(team.size());
  Matrix a_g = testing::coords_matrix(n, n);
  Matrix b_g(n, n);
  fill_random(b_g.view(), 41);

  ModeRun out;
  out.c = Matrix(n, n);
  out.clocks.assign(static_cast<std::size_t>(team.size()), 0.0);
  SrummaOptions opt;
  opt.engine = cfg.engine ? EngineMode::On : EngineMode::Off;
  MultiplyResult result;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g);
    DistMatrix b(rma, me, n, n, g);
    DistMatrix c(rma, me, n, n, g);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) result = r;
    c.gather_to(me, out.c.view());
    out.clocks[static_cast<std::size_t>(me.id())] = me.clock().now();
  });
  out.counters = trace::counters_json(result.trace);
  return out;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

class HarnessDifferential : public ::testing::TestWithParam<DiffConfig> {};

// Exact arm: contention-free machine, so pooled and thread-per-rank must
// agree on everything — bitwise C, every counter, every final clock.
TEST_P(HarnessDifferential, ExactOnContentionFreeMachine) {
  const DiffConfig cfg = GetParam();
  const MachineModel machine = MachineModel::testing(2, 1);
  const index_t n = 48;
  const ModeRun pooled = run_mode(machine, ExecMode::Pooled, cfg, n);
  const ModeRun threads = run_mode(machine, ExecMode::Threads, cfg, n);
  EXPECT_TRUE(bitwise_equal(pooled.c, threads.c)) << cfg.label();
  EXPECT_EQ(pooled.counters, threads.counters) << cfg.label();
  ASSERT_EQ(pooled.clocks.size(), threads.clocks.size());
  for (std::size_t i = 0; i < pooled.clocks.size(); ++i) {
    EXPECT_EQ(pooled.clocks[i], threads.clocks[i])
        << cfg.label() << " rank " << i;
  }
}

// Contended arm: a dual-rank-per-node cluster shares NICs and memory
// systems, so modeled timings are deterministic only up to first-fit
// booking order — but the numerics must stay bitwise identical in every
// mode (the engine commits handed-back tiles at exact plan positions).
TEST_P(HarnessDifferential, NumericsExactOnContendedMachine) {
  const DiffConfig cfg = GetParam();
  const MachineModel machine = MachineModel::linux_myrinet(2);
  const index_t n = 48;
  const ModeRun pooled = run_mode(machine, ExecMode::Pooled, cfg, n);
  const ModeRun threads = run_mode(machine, ExecMode::Threads, cfg, n);
  EXPECT_TRUE(bitwise_equal(pooled.c, threads.c)) << cfg.label();
}

std::vector<DiffConfig> diff_configs() {
  std::vector<DiffConfig> out;
  for (bool engine : {false, true}) {
    for (bool cache : {false, true}) {
      for (bool faults : {false, true}) {
        out.push_back({engine, cache, faults});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, HarnessDifferential,
                         ::testing::ValuesIn(diff_configs()),
                         [](const auto& param_info) {
                           std::string name = param_info.param.label();
                           for (char& ch : name) {
                             if (ch == '+') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace srumma
