// Static analyzer (src/analysis): clean configurations must certify with
// zero findings, every seeded mutation class must be flagged, the static
// resource bounds must dominate both the pipeline replay and real runs of
// both executors, and the happens-before detector must agree with the
// epoch checker on crafted journals.

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/analyzer.hpp"
#include "analysis/hb.hpp"
#include "analysis/plan_model.hpp"
#include "core/srumma.hpp"
#include "tests/helpers.hpp"
#include "trace/journal.hpp"

namespace srumma {
namespace {

using analysis::AnalysisConfig;
using analysis::AnalysisReport;
using analysis::FindingKind;
using analysis::Mutation;
using blas::Trans;

AnalysisConfig base_config() {
  AnalysisConfig cfg;
  cfg.machine = MachineModel::testing(2, 2);
  cfg.m = cfg.n = cfg.k = 96;
  return cfg;
}

std::vector<std::pair<const char*, AnalysisConfig>> clean_configs() {
  std::vector<std::pair<const char*, AnalysisConfig>> out;
  out.emplace_back("testing-direct", base_config());

  AnalysisConfig copy = base_config();
  copy.options.shm_flavor = ShmFlavor::Copy;
  out.emplace_back("testing-copy", copy);

  AnalysisConfig cluster = base_config();
  cluster.machine = MachineModel::linux_myrinet(4);
  cluster.options.shm_flavor = ShmFlavor::Copy;
  cluster.m = cluster.n = cluster.k = 128;
  cluster.options.c_chunk = 32;
  out.emplace_back("cluster-copy-tiled", cluster);

  AnalysisConfig altix = base_config();
  altix.machine = MachineModel::sgi_altix(8);
  out.emplace_back("altix-direct", altix);

  AnalysisConfig x1 = base_config();
  x1.machine = MachineModel::cray_x1(2);
  x1.options.shm_flavor = ShmFlavor::Copy;
  out.emplace_back("x1-copy", x1);

  AnalysisConfig blocking = base_config();
  blocking.machine = MachineModel::ibm_sp(2);
  blocking.options.nonblocking = false;
  out.emplace_back("sp-blocking", blocking);

  AnalysisConfig trans = base_config();
  trans.options.ta = Trans::Yes;
  trans.options.tb = Trans::Yes;
  trans.options.ordering = OrderingPolicy::naive();
  trans.m = 96; trans.n = 72; trans.k = 60;
  out.emplace_back("transposed-naive", trans);

  AnalysisConfig rect = base_config();
  rect.machine = MachineModel::testing(3, 2);
  rect.m = 90; rect.n = 84; rect.k = 110;
  rect.options.shm_flavor = ShmFlavor::Copy;
  rect.options.k_chunk = 24;
  out.emplace_back("rectangular-kchunk", rect);
  return out;
}

TEST(Analysis, CleanConfigsCertify) {
  for (const auto& [label, cfg] : clean_configs()) {
    const analysis::PlanModel pm = analysis::build_plan_model(cfg);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_TRUE(rep.certified()) << label;
    for (const analysis::Finding& f : rep.findings)
      ADD_FAILURE() << label << ": ["
                    << analysis::finding_kind_name(f.kind) << "] "
                    << f.message;
    EXPECT_GT(rep.total_tasks, 0u) << label;
    EXPECT_GT(rep.bounds.buffer_bytes, 0u) << label;
    // The replayed exact pipeline footprint never exceeds the closed-form
    // ceiling (also enforced as a ResourceBound finding, but assert the
    // margin explicitly).
    EXPECT_LE(rep.pipeline_replay_peak_bytes,
              rep.bounds.pipeline_buffer_bytes)
        << label;
    EXPECT_LE(rep.pipeline_replay_peak_pins, rep.bounds.pipeline_cache_pins)
        << label;
  }
}

TEST(Analysis, ReportJsonShape) {
  const analysis::PlanModel pm = analysis::build_plan_model(base_config());
  const AnalysisReport rep = analysis::analyze(pm);
  const std::string j = analysis::report_json(pm, rep, "none", "");
  EXPECT_NE(j.find("\"schema\":\"srumma-analysis/1\""), std::string::npos);
  EXPECT_NE(j.find("\"certified\":true"), std::string::npos);
  EXPECT_NE(j.find("\"buffer_bytes_peak_bound\""), std::string::npos);
  EXPECT_NE(j.find("\"cache_pins_bound\""), std::string::npos);
}

// -- seeded mutations ---------------------------------------------------------

bool has_kind(const AnalysisReport& rep, FindingKind kind) {
  for (const analysis::Finding& f : rep.findings)
    if (f.kind == kind) return true;
  return false;
}

AnalysisConfig mutation_config() {
  // Copy flavor on a 2-node machine: copy-path fetches exist (DropWait),
  // multi-link chains exist (ReorderCommit) and the steal board is
  // populated (AliasStealScratch).
  AnalysisConfig cfg = base_config();
  cfg.options.shm_flavor = ShmFlavor::Copy;
  return cfg;
}

TEST(Analysis, MutationDropWaitFlagged) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    analysis::PlanModel pm = analysis::build_plan_model(mutation_config());
    const std::string what =
        analysis::mutate_plan(pm, Mutation::DropWait, seed);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_FALSE(rep.certified()) << what;
    EXPECT_TRUE(has_kind(rep, FindingKind::Pipeline)) << what;
    // The replay must name the dynamic class the fault surfaces as.
    bool use_before_wait = false;
    for (const analysis::Finding& f : rep.findings)
      if (f.diag == check::Diag::UseBeforeWait) use_before_wait = true;
    EXPECT_TRUE(use_before_wait) << what;
  }
}

TEST(Analysis, MutationReorderCommitFlagged) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    analysis::PlanModel pm = analysis::build_plan_model(mutation_config());
    const std::string what =
        analysis::mutate_plan(pm, Mutation::ReorderCommit, seed);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_FALSE(rep.certified()) << what;
    EXPECT_TRUE(has_kind(rep, FindingKind::CommitChain)) << what;
  }
}

TEST(Analysis, MutationWidenGetWindowFlagged) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    analysis::PlanModel pm = analysis::build_plan_model(mutation_config());
    const std::string what =
        analysis::mutate_plan(pm, Mutation::WidenGetWindow, seed);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_FALSE(rep.certified()) << what;
    EXPECT_TRUE(has_kind(rep, FindingKind::PlanShape)) << what;
  }
}

TEST(Analysis, MutationAliasStealScratchFlagged) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    analysis::PlanModel pm = analysis::build_plan_model(mutation_config());
    const std::string what =
        analysis::mutate_plan(pm, Mutation::AliasStealScratch, seed);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_FALSE(rep.certified()) << what;
    EXPECT_TRUE(has_kind(rep, FindingKind::StealProtocol)) << what;
  }
}

TEST(Analysis, MutationAdoptChainFlagged) {
  // The recovery-side analogue of reorder-commit (docs/FAULTS.md §7): a
  // survivor adopts a dead rank's tile but replays the chain out of plan
  // order.  The analyzer must prove the replay order against the dead
  // rank's own chain layout.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    analysis::PlanModel pm = analysis::build_plan_model(mutation_config());
    const std::string what =
        analysis::mutate_plan(pm, Mutation::AdoptChain, seed);
    const AnalysisReport rep = analysis::analyze(pm);
    EXPECT_FALSE(rep.certified()) << what;
    EXPECT_TRUE(has_kind(rep, FindingKind::CommitChain)) << what;
  }
}

TEST(Analysis, MutationsDeterministic) {
  for (const Mutation mut :
       {Mutation::DropWait, Mutation::ReorderCommit, Mutation::WidenGetWindow,
        Mutation::AliasStealScratch, Mutation::AdoptChain}) {
    analysis::PlanModel pm1 = analysis::build_plan_model(mutation_config());
    analysis::PlanModel pm2 = analysis::build_plan_model(mutation_config());
    EXPECT_EQ(analysis::mutate_plan(pm1, mut, 42),
              analysis::mutate_plan(pm2, mut, 42));
  }
}

// -- static bounds vs real runs -----------------------------------------------

/// Run the real multiply for the modeled configuration and return the
/// team-wide buffer peak (MAX across ranks, matching the bound semantics).
std::uint64_t run_real_peak(const AnalysisConfig& cfg, EngineMode engine) {
  Team team(cfg.machine);
  RmaRuntime rma(team);
  const ProcGrid grid = ProcGrid::near_square(team.size());
  Matrix a_global = testing::coords_matrix(cfg.m, cfg.k);
  Matrix b_global(cfg.k, cfg.n);
  fill_random(b_global.view(), 7);

  Matrix c_out(cfg.m, cfg.n);
  MultiplyResult result;
  SrummaOptions opt = cfg.options;
  opt.engine = engine;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, cfg.m, cfg.k, grid);
    DistMatrix b(rma, me, cfg.k, cfg.n, grid);
    DistMatrix c(rma, me, cfg.m, cfg.n, grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) result = r;
    c.gather_to(me, c_out.view());
  });
  return result.trace.buffer_bytes_peak;
}

TEST(Analysis, StaticBoundCoversPipelineRun) {
  AnalysisConfig cfg = base_config();
  cfg.options.shm_flavor = ShmFlavor::Copy;
  const AnalysisReport rep =
      analysis::analyze(analysis::build_plan_model(cfg));
  ASSERT_TRUE(rep.certified());
  const std::uint64_t peak = run_real_peak(cfg, EngineMode::Off);
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, rep.bounds.pipeline_buffer_bytes);
  EXPECT_LE(peak, rep.bounds.buffer_bytes);
}

TEST(Analysis, StaticBoundCoversEngineRun) {
  AnalysisConfig cfg = base_config();
  cfg.options.shm_flavor = ShmFlavor::Copy;
  const AnalysisReport rep =
      analysis::analyze(analysis::build_plan_model(cfg));
  ASSERT_TRUE(rep.certified());
  const std::uint64_t peak = run_real_peak(cfg, EngineMode::On);
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, rep.bounds.engine_buffer_bytes);
  EXPECT_LE(peak, rep.bounds.buffer_bytes);
}

TEST(Analysis, StaticBoundCoversTiledClusterRun) {
  AnalysisConfig cfg;
  cfg.machine = MachineModel::linux_myrinet(4);
  cfg.m = cfg.n = cfg.k = 128;
  cfg.options.c_chunk = 32;
  const AnalysisReport rep =
      analysis::analyze(analysis::build_plan_model(cfg));
  ASSERT_TRUE(rep.certified());
  for (const EngineMode mode : {EngineMode::Off, EngineMode::On})
    EXPECT_LE(run_real_peak(cfg, mode), rep.bounds.buffer_bytes);
}

// -- happens-before cross-checker ---------------------------------------------

trace::JournalRecord op_rec(int rank, const char* kind, int owner,
                            std::uint64_t seq, std::uint64_t handle,
                            std::uint64_t rlo, std::uint64_t bytes) {
  trace::JournalRecord r;
  r.ev = "op";
  r.rank = rank;
  r.kind = kind;
  r.owner = owner;
  r.seq = seq;
  r.handle = handle;
  r.rlo = rlo;
  r.rrows = bytes;
  r.rcols = 1;
  r.rld = bytes;
  return r;
}

trace::JournalRecord wait_rec(int rank, std::uint64_t handle) {
  trace::JournalRecord r;
  r.ev = "wait";
  r.rank = rank;
  r.handle = handle;
  return r;
}

trace::JournalRecord barrier_rec(int rank) {
  trace::JournalRecord r;
  r.ev = "barrier";
  r.rank = rank;
  return r;
}

TEST(AnalysisHb, OverlappingReadsDoNotRace) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "get", 2, 5, 1, 0, 256), op_rec(1, "get", 2, 5, 2, 128, 256),
      wait_rec(0, 1), wait_rec(1, 2)};
  const analysis::HbResult res = analysis::analyze_journal(recs);
  EXPECT_EQ(res.ops.size(), 2u);
  EXPECT_TRUE(res.races.empty());
}

TEST(AnalysisHb, UnorderedPutGetRaceIsMissedWithoutDiag) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), op_rec(1, "get", 2, 5, 2, 128, 256),
      wait_rec(0, 1), wait_rec(1, 2)};
  const analysis::HbResult res = analysis::analyze_journal(recs);
  ASSERT_EQ(res.races.size(), 1u);
  EXPECT_TRUE(res.races[0].remote);
  EXPECT_FALSE(res.races[0].matched);
  EXPECT_EQ(res.missed(), 1u);
}

TEST(AnalysisHb, RaceWithMatchingDiagIsCrossValidated) {
  trace::JournalRecord diag;
  diag.ev = "diag";
  diag.rank = 1;
  diag.kind = "EpochConflict";
  diag.seq = 5;
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), op_rec(1, "get", 2, 5, 2, 128, 256),
      wait_rec(0, 1), wait_rec(1, 2), diag};
  const analysis::HbResult res = analysis::analyze_journal(recs);
  ASSERT_EQ(res.races.size(), 1u);
  EXPECT_TRUE(res.races[0].matched);
  EXPECT_EQ(res.missed(), 0u);
}

TEST(AnalysisHb, BarrierSeparationOrdersAcrossRanks) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), wait_rec(0, 1),
      barrier_rec(0),                    barrier_rec(1),
      op_rec(1, "get", 2, 5, 2, 0, 256), wait_rec(1, 2)};
  const analysis::HbResult res = analysis::analyze_journal(recs);
  EXPECT_TRUE(res.races.empty());
  EXPECT_EQ(res.n_barriers, 2u);
}

TEST(AnalysisHb, SameRankWaitBeforeIssueOrders) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), wait_rec(0, 1),
      op_rec(0, "get", 2, 5, 2, 0, 256), wait_rec(0, 2)};
  EXPECT_TRUE(analysis::analyze_journal(recs).races.empty());
}

TEST(AnalysisHb, SameRankConcurrentPutGetRaces) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), op_rec(0, "get", 2, 5, 2, 0, 256),
      wait_rec(0, 1), wait_rec(0, 2)};
  EXPECT_EQ(analysis::analyze_journal(recs).races.size(), 1u);
}

TEST(AnalysisHb, AccumulatesAreAtomic) {
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "acc", 2, 5, 1, 0, 256), op_rec(1, "acc", 2, 5, 2, 0, 256),
      wait_rec(0, 1), wait_rec(1, 2)};
  EXPECT_TRUE(analysis::analyze_journal(recs).races.empty());
}

TEST(AnalysisHb, UnwaitedOpStaysOpenAcrossBarriers) {
  // Rank 0's put is never waited: even a barrier-separated get still races
  // with it (the op interval never closes).
  const std::vector<trace::JournalRecord> recs = {
      op_rec(0, "put", 2, 5, 1, 0, 256), barrier_rec(0), barrier_rec(1),
      op_rec(1, "get", 2, 5, 2, 0, 256), wait_rec(1, 2)};
  EXPECT_EQ(analysis::analyze_journal(recs).races.size(), 1u);
}

TEST(AnalysisHb, LocalBufferConflictDetected) {
  // A get's destination buffer overlapping a declared compute read on the
  // same rank, unordered -> local race.
  trace::JournalRecord get = op_rec(0, "get", 2, 5, 1, 0, 256);
  get.llo = 0x1000; get.lrows = 256; get.lcols = 1; get.lld = 256;
  trace::JournalRecord read;
  read.ev = "op";
  read.rank = 0;
  read.kind = "compute-read";
  read.owner = -1;
  read.handle = 0;  // declaration: completes at issue
  read.llo = 0x1080; read.lrows = 256; read.lcols = 1; read.lld = 256;
  const std::vector<trace::JournalRecord> recs = {get, read, wait_rec(0, 1)};
  const analysis::HbResult res = analysis::analyze_journal(recs);
  ASSERT_EQ(res.races.size(), 1u);
  EXPECT_FALSE(res.races[0].remote);
}

TEST(AnalysisHb, RealRunCrossValidates) {
  // End to end through the real checker: journal a traced run, then the HB
  // detector must find nothing the epoch model missed.
  const std::string path =
      ::testing::TempDir() + "/srumma_hb_crosscheck.jsonl";
  setenv("SRUMMA_RMA_JOURNAL", path.c_str(), 1);
  {
    AnalysisConfig cfg = base_config();
    Team team(cfg.machine);
    RmaConfig rc;
    rc.check = true;
    RmaRuntime rma(team, rc);
    const ProcGrid grid = ProcGrid::near_square(team.size());
    Matrix a_global = testing::coords_matrix(cfg.m, cfg.k);
    Matrix b_global(cfg.k, cfg.n);
    fill_random(b_global.view(), 9);
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, cfg.m, cfg.k, grid);
      DistMatrix b(rma, me, cfg.k, cfg.n, grid);
      DistMatrix c(rma, me, cfg.m, cfg.n, grid);
      a.scatter_from(me, a_global.view());
      b.scatter_from(me, b_global.view());
      srumma_multiply(me, a, b, c, SrummaOptions{});
    });
  }
  unsetenv("SRUMMA_RMA_JOURNAL");
  const analysis::HbResult res =
      analysis::analyze_journal(trace::read_journal(path));
  EXPECT_GT(res.ops.size(), 0u);
  EXPECT_EQ(res.missed(), 0u);
  std::remove(path.c_str());
}

TEST(AnalysisHb, TraceReportJsonShape) {
  const analysis::HbResult res = analysis::analyze_journal({});
  const std::string j = analysis::hb_report_json("x.jsonl", res);
  EXPECT_NE(j.find("\"schema\":\"srumma-analysis-trace/1\""),
            std::string::npos);
  EXPECT_NE(j.find("\"cross_validated\":true"), std::string::npos);
}

}  // namespace
}  // namespace srumma
