// Tests for the block-cyclic (ScaLAPACK-layout) substrate: 1-D cyclic
// distribution properties (swept), the 2-D cyclic matrix, and the cyclic
// pdgemm against the serial oracle.

#include <gtest/gtest.h>

#include "baselines/summa.hpp"
#include "cyclic/pdgemm_cyclic.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

// ---- CyclicDist1D property sweep ------------------------------------------

class CyclicDistSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(CyclicDistSweep, PartitionAndRoundTrip) {
  const auto [n, nb, parts] = GetParam();
  CyclicDist1D d(n, nb, parts);
  // local_count sums to n.
  index_t total = 0;
  for (int p = 0; p < parts; ++p) total += d.local_count(p);
  EXPECT_EQ(total, n);
  // owner / to_local / to_global are consistent bijections.
  for (index_t i = 0; i < n; ++i) {
    const int o = d.owner(i);
    const index_t l = d.to_local(i);
    EXPECT_LT(l, d.local_count(o));
    EXPECT_EQ(d.to_global(o, l), i);
    // run_length stays within one block and one owner; the next element
    // after a completed block belongs to the next part (when parts > 1).
    const index_t run = d.run_length(i);
    EXPECT_GE(run, 1);
    EXPECT_EQ(d.owner(i + run - 1), o);
    if (i + run < n && run == nb - i % nb && parts > 1) {
      EXPECT_NE(d.owner(i + run), o);
    }
  }
  // Local enumeration covers each owner's elements exactly once, in order.
  for (int p = 0; p < parts; ++p) {
    index_t prev = -1;
    for (index_t l = 0; l < d.local_count(p); ++l) {
      const index_t g = d.to_global(p, l);
      EXPECT_EQ(d.owner(g), p);
      EXPECT_GT(g, prev);
      prev = g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclicDistSweep,
    ::testing::Values(std::tuple<index_t, index_t, int>{0, 4, 3},
                      std::tuple<index_t, index_t, int>{1, 1, 1},
                      std::tuple<index_t, index_t, int>{10, 3, 2},
                      std::tuple<index_t, index_t, int>{17, 4, 3},
                      std::tuple<index_t, index_t, int>{64, 8, 4},
                      std::tuple<index_t, index_t, int>{65, 8, 4},
                      std::tuple<index_t, index_t, int>{7, 16, 2},  // nb > n
                      std::tuple<index_t, index_t, int>{100, 1, 7}));

TEST(CyclicDist, PlainBlockIsSpecialCase) {
  // nb = ceil(n/parts) degenerates into the plain block distribution.
  CyclicDist1D cyc(20, 7, 3);
  BlockDist1D blk(20, 3);
  // parts 0..2 get 7, 7, 6 under cyclic(7); plain block gives 7, 7, 6.
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(cyc.local_count(p), blk.count(p));
  for (index_t i = 0; i < 20; ++i) EXPECT_EQ(cyc.owner(i), blk.owner(i));
}

TEST(CyclicDist, InvalidArgsThrow) {
  EXPECT_THROW(CyclicDist1D(10, 0, 2), Error);
  EXPECT_THROW(CyclicDist1D(-1, 2, 2), Error);
  CyclicDist1D d(10, 2, 2);
  EXPECT_THROW((void)d.owner(10), Error);
  EXPECT_THROW((void)d.to_global(0, 99), Error);
}

// ---- CyclicMatrix -----------------------------------------------------------

struct CyEnv {
  Team team;
  RmaRuntime rma;
  explicit CyEnv(MachineModel m) : team(std::move(m)), rma(team) {}
};

TEST(CyclicMatrix, ScatterGatherRoundTrip) {
  CyEnv env(MachineModel::testing(2, 2));
  Matrix global = testing::coords_matrix(13, 9);
  Matrix out(13, 9);
  env.team.run([&](Rank& me) {
    CyclicMatrix x(env.rma, me, 13, 9, 3, 2, ProcGrid{2, 2});
    x.scatter_from(me, global.view());
    x.gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(global.view(), out.view()), 0.0);
}

TEST(CyclicMatrix, LocalCountsMatchDist) {
  CyEnv env(MachineModel::testing(3, 2));
  env.team.run([&](Rank& me) {
    CyclicMatrix x(env.rma, me, 20, 15, 4, 3, ProcGrid{3, 2});
    index_t total = 0;
    for (int r = 0; r < env.team.size(); ++r)
      total += x.local_rows(r) * x.local_cols(r);
    EXPECT_EQ(total, 20 * 15);
    EXPECT_EQ(x.local_view(me).rows(), x.local_rows(me.id()));
  });
}

TEST(CyclicMatrix, FetchRandomRectangles) {
  CyEnv env(MachineModel::testing(2, 2));
  Matrix global = testing::coords_matrix(19, 17);
  env.team.run([&](Rank& me) {
    CyclicMatrix x(env.rma, me, 19, 17, 3, 4, ProcGrid{2, 2});
    x.scatter_from(me, global.view());
    me.barrier();
    Rng rng(static_cast<std::uint64_t>(777 + me.id()));
    for (int trial = 0; trial < 15; ++trial) {
      const index_t i0 = static_cast<index_t>(rng.below(19));
      const index_t j0 = static_cast<index_t>(rng.below(17));
      const index_t mi = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(19 - i0)));
      const index_t nj = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(17 - j0)));
      Matrix dst(mi, nj);
      auto handles = x.fetch_nb(me, i0, j0, mi, nj, dst.view());
      x.wait(me, handles);
      EXPECT_EQ(max_abs_diff(dst.view(), global.block(i0, j0, mi, nj)), 0.0);
    }
  });
}

TEST(CyclicMatrix, FetchCostsMorePiecesThanPlainBlock) {
  // The cyclic layout fragments one-sided access: fetching a whole row
  // band touches every column block — the structural reason SRUMMA uses a
  // plain block distribution.
  CyEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    CyclicMatrix cyc(env.rma, me, 32, 32, 4, 4, ProcGrid{2, 2}, true);
    DistMatrix blk(env.rma, me, 32, 32, ProcGrid{2, 2}, true);
    me.barrier();
    const auto gets0 = me.trace().gets;
    auto h1 = cyc.fetch_nb(me, 0, 0, 8, 32, MatrixView{});
    cyc.wait(me, h1);
    const auto cyc_gets = me.trace().gets - gets0;
    PatchHandle h2 = blk.fetch_nb(me, 0, 0, 8, 32, MatrixView{});
    blk.wait(me, h2);
    const auto blk_gets = me.trace().gets - gets0 - cyc_gets;
    EXPECT_GT(cyc_gets, blk_gets * 4);
  });
}

// ---- cyclic pdgemm ----------------------------------------------------------

struct CyclicGemmCase {
  index_t m, n, k, mb, nb, kb;
  int p, q;
};

class CyclicGemmSweep : public ::testing::TestWithParam<CyclicGemmCase> {};

TEST_P(CyclicGemmSweep, MatchesReference) {
  const CyclicGemmCase cc = GetParam();
  CyEnv env(MachineModel::testing(cc.p, cc.q));
  const ProcGrid grid{cc.p, cc.q};
  Matrix a_g = testing::coords_matrix(cc.m, cc.k);
  Matrix b_g(cc.k, cc.n);
  fill_random(b_g.view(), 99);
  Matrix c_ref(cc.m, cc.n);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, 1.0, a_g, b_g,
                          0.0, c_ref);
  Matrix c_out(cc.m, cc.n);
  Comm comm(env.team);
  env.team.run([&](Rank& me) {
    CyclicMatrix a(env.rma, me, cc.m, cc.k, cc.mb, cc.kb, grid);
    CyclicMatrix b(env.rma, me, cc.k, cc.n, cc.kb, cc.nb, grid);
    CyclicMatrix c(env.rma, me, cc.m, cc.n, cc.mb, cc.nb, grid);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    MultiplyResult r = pdgemm_cyclic(me, comm, a, b, c);
    EXPECT_GT(r.gflops, 0.0);
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(cc.k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclicGemmSweep,
    ::testing::Values(CyclicGemmCase{16, 16, 16, 4, 4, 4, 2, 2},
                      CyclicGemmCase{17, 13, 19, 3, 2, 4, 2, 2},
                      CyclicGemmCase{24, 18, 30, 2, 2, 2, 3, 2},
                      CyclicGemmCase{9, 9, 9, 16, 16, 16, 2, 2},  // nb > n
                      CyclicGemmCase{20, 20, 20, 5, 5, 5, 1, 4},
                      CyclicGemmCase{33, 21, 27, 4, 6, 5, 2, 3}));

TEST(CyclicGemm, BlockingMismatchThrows) {
  CyEnv env(MachineModel::testing(2, 1));
  Comm comm(env.team);
  EXPECT_THROW(env.team.run([&](Rank& me) {
    CyclicMatrix a(env.rma, me, 8, 8, 2, 2, ProcGrid{2, 1}, true);
    CyclicMatrix b(env.rma, me, 8, 8, 3, 2, ProcGrid{2, 1}, true);  // KB != MB
    CyclicMatrix c(env.rma, me, 8, 8, 2, 2, ProcGrid{2, 1}, true);
    pdgemm_cyclic(me, comm, a, b, c);
  }),
               Error);
}

TEST(CyclicGemm, AccumulatesWithAlphaBeta) {
  CyEnv env(MachineModel::testing(2, 2));
  const ProcGrid grid{2, 2};
  Matrix a_g = testing::coords_matrix(12, 12);
  Matrix c_init(12, 12);
  fill_random(c_init.view(), 3);
  Matrix c_ref = c_init;
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, -2.0, a_g, a_g,
                          0.5, c_ref);
  Matrix c_out(12, 12);
  Comm comm(env.team);
  env.team.run([&](Rank& me) {
    CyclicMatrix a(env.rma, me, 12, 12, 3, 3, grid);
    CyclicMatrix c(env.rma, me, 12, 12, 3, 3, grid);
    a.scatter_from(me, a_g.view());
    c.scatter_from(me, c_init.view());
    PdgemmCyclicOptions opt;
    opt.alpha = -2.0;
    opt.beta = 0.5;
    pdgemm_cyclic(me, comm, a, a, c, opt);
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(12));
}

TEST(CyclicGemm, PhantomModelsSensibly) {
  // Cyclic pdgemm on the Altix model should land within ~2x of the
  // plain-block pdgemm model (they run the same algorithm; blocking
  // granularity differs) — sanity that the baseline simplification used in
  // the paper-figure benches is representative.
  CyEnv env(MachineModel::sgi_altix(16));
  const ProcGrid grid = ProcGrid::near_square(16);
  Comm comm(env.team);
  double t_cyclic = 0.0, t_block = 0.0;
  env.team.run([&](Rank& me) {
    CyclicMatrix a(env.rma, me, 2000, 2000, 64, 64, grid, true);
    CyclicMatrix b(env.rma, me, 2000, 2000, 64, 64, grid, true);
    CyclicMatrix c(env.rma, me, 2000, 2000, 64, 64, grid, true);
    MultiplyResult rc = pdgemm_cyclic(me, comm, a, b, c);
    if (me.id() == 0) t_cyclic = rc.elapsed;
  });
  env.team.reset();
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 2000, 2000, grid, true);
    DistMatrix b(env.rma, me, 2000, 2000, grid, true);
    DistMatrix c(env.rma, me, 2000, 2000, grid, true);
    MultiplyResult rb = pdgemm_model(me, comm, a, b, c, PdgemmOptions{});
    if (me.id() == 0) t_block = rb.elapsed;
  });
  EXPECT_LT(t_cyclic, t_block * 2.0);
  EXPECT_GT(t_cyclic, t_block * 0.5);
}

}  // namespace
}  // namespace srumma
