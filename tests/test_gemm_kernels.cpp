// Kernel verification harness: every kernel in the registry — present and
// future — must match the gemm_naive oracle over a randomized grid of
// shapes, transposes, non-tight leading dimensions, alpha/beta values and
// register-tile edge cases.  Any new micro-kernel only has to register
// itself to inherit this coverage (and the sanitizer sweep in
// scripts/check.sh runs this binary under ASan/UBSan).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "tests/helpers.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

using blas::Trans;

// Normwise relative error: max |diff| / max(1, max |ref|).  With values in
// [-1, 1) and k <= a few hundred this sits orders of magnitude under the
// 1e-12 acceptance bound for any summation order (including FMA kernels).
double rel_error(ConstMatrixView out, ConstMatrixView ref) {
  double max_ref = 0.0;
  for (index_t j = 0; j < ref.cols(); ++j)
    for (index_t i = 0; i < ref.rows(); ++i)
      max_ref = std::max(max_ref, std::abs(ref(i, j)));
  return max_abs_diff(out, ref) / std::max(1.0, max_ref);
}

// One randomized case: padded storage (ld > rows), random alpha, the
// beta in {0, 1, 0.5} acceptance set, random C prior contents.
void check_case(const blas::GemmKernel& kern, Rng& rng, index_t m, index_t n,
                index_t k, Trans ta, Trans tb, double beta) {
  const index_t a_rows = ta == Trans::No ? m : k;
  const index_t a_cols = ta == Trans::No ? k : m;
  const index_t b_rows = tb == Trans::No ? k : n;
  const index_t b_cols = tb == Trans::No ? n : k;
  const index_t lda = a_rows + static_cast<index_t>(rng.below(7));
  const index_t ldb = b_rows + static_cast<index_t>(rng.below(7));
  const index_t ldc = m + static_cast<index_t>(rng.below(7));
  const double alpha = rng.below(8) == 0 ? 0.0 : rng.uniform(-2.0, 2.0);

  AlignedVector<double> a(static_cast<std::size_t>(lda * a_cols), 0.0);
  AlignedVector<double> b(static_cast<std::size_t>(ldb * b_cols), 0.0);
  AlignedVector<double> c_out(static_cast<std::size_t>(ldc * n), 0.0);
  AlignedVector<double> c_ref(static_cast<std::size_t>(ldc * n), 0.0);
  fill_random(MatrixView(a.data(), a_rows, a_cols, lda), rng.next());
  fill_random(MatrixView(b.data(), b_rows, b_cols, ldb), rng.next());
  fill_random(MatrixView(c_out.data(), m, n, ldc), rng.next());
  c_ref = c_out;

  blas::gemm_naive(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                   c_ref.data(), ldc);
  blas::gemm_blocked_with(kern, ta, tb, m, n, k, alpha, a.data(), lda,
                          b.data(), ldb, beta, c_out.data(), ldc);

  EXPECT_LE(rel_error(ConstMatrixView(c_out.data(), m, n, ldc),
                      ConstMatrixView(c_ref.data(), m, n, ldc)),
            1e-12)
      << kern.name << ": m=" << m << " n=" << n << " k=" << k
      << " ta=" << static_cast<char>(ta) << " tb=" << static_cast<char>(tb)
      << " lda=" << lda << " ldb=" << ldb << " ldc=" << ldc
      << " alpha=" << alpha << " beta=" << beta;
}

class KernelVerification
    : public ::testing::TestWithParam<const blas::GemmKernel*> {
 protected:
  void SetUp() override {
    if (!GetParam()->supported())
      GTEST_SKIP() << GetParam()->name << " is not supported on this CPU";
  }
};

TEST_P(KernelVerification, MatchesNaiveOnRandomizedGrid) {
  const blas::GemmKernel& kern = *GetParam();
  Rng rng(20260806);
  const Trans ts[] = {Trans::No, Trans::Yes};
  const double betas[] = {0.0, 1.0, 0.5};
  int trial = 0;
  for (Trans ta : ts) {
    for (Trans tb : ts) {
      for (int rep = 0; rep < 9; ++rep, ++trial) {
        index_t m = 1 + static_cast<index_t>(rng.below(190));
        index_t n = 1 + static_cast<index_t>(rng.below(190));
        index_t k = 1 + static_cast<index_t>(rng.below(300));
        if (rep % 3 == 1) {
          // Bias toward register-tile edges: one off a tile multiple.
          m = kern.mr * (1 + static_cast<index_t>(rng.below(4))) - 1;
          n = kern.nr * (1 + static_cast<index_t>(rng.below(4))) + 1;
        } else if (rep % 3 == 2) {
          // Exact tile multiples (pure full-tile path).
          m = kern.mr * (1 + static_cast<index_t>(rng.below(6)));
          n = kern.nr * (1 + static_cast<index_t>(rng.below(6)));
        }
        check_case(kern, rng, m, n, k, ta, tb, betas[trial % 3]);
      }
    }
  }
}

TEST_P(KernelVerification, CrossesCacheBlockBoundaries) {
  // Shapes straddling the kernel's own mc/kc/nc blocking, so the jc/pc/ic
  // loops all take more than one trip and beta is applied exactly once.
  const blas::GemmKernel& kern = *GetParam();
  Rng rng(7);
  check_case(kern, rng, kern.mc + kern.mr + 3, kern.nr + 1, kern.kc + 17,
             Trans::No, Trans::No, 0.5);
  check_case(kern, rng, kern.mc + 1, 2 * kern.nr, kern.kc + 1, Trans::Yes,
             Trans::Yes, 1.0);
}

TEST_P(KernelVerification, DeterministicRunToRun) {
  // The same call must produce bit-identical output (no uninitialized
  // packing lanes can leak into results).
  const blas::GemmKernel& kern = *GetParam();
  const index_t m = 3 * kern.mr - 1, n = 2 * kern.nr + 1, k = 97;
  Matrix a(m, k), b(k, n), c1(m, n), c2(m, n);
  fill_random(a.view(), 1);
  fill_random(b.view(), 2);
  blas::gemm_blocked_with(kern, Trans::No, Trans::No, m, n, k, 1.0, a.data(),
                          a.ld(), b.data(), b.ld(), 0.0, c1.data(), c1.ld());
  blas::gemm_blocked_with(kern, Trans::No, Trans::No, m, n, k, 1.0, a.data(),
                          a.ld(), b.data(), b.ld(), 0.0, c2.data(), c2.ld());
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, KernelVerification,
    ::testing::ValuesIn(blas::kernel_registry()),
    [](const ::testing::TestParamInfo<const blas::GemmKernel*>& pinfo) {
      return std::string(pinfo.param->name);
    });

TEST(KernelRegistry, BaselineKernelsAlwaysPresent) {
  ASSERT_NE(blas::find_kernel("scalar"), nullptr);
  ASSERT_NE(blas::find_kernel("portable"), nullptr);
  EXPECT_TRUE(blas::find_kernel("scalar")->supported());
  EXPECT_TRUE(blas::find_kernel("portable")->supported());
  EXPECT_EQ(blas::find_kernel("no-such-kernel"), nullptr);
  for (const blas::GemmKernel* k : blas::kernel_registry()) {
    EXPECT_GT(k->mr, 0);
    EXPECT_GT(k->nr, 0);
    EXPECT_EQ(k->mc % k->mr, 0) << k->name << ": mc must be a multiple of mr";
    EXPECT_EQ(k->nc % k->nr, 0) << k->name << ": nc must be a multiple of nr";
  }
}

TEST(KernelRegistry, PinAndRestoreActiveKernel) {
  const std::string before = blas::active_kernel().name;
  blas::set_active_kernel("scalar");
  EXPECT_STREQ(blas::active_kernel().name, "scalar");
  // Dispatch goes through the pinned kernel.
  Matrix a(9, 9), b(9, 9), c(9, 9), c_ref(9, 9);
  fill_random(a.view(), 3);
  fill_random(b.view(), 4);
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  blas::gemm_blocked_with(*blas::find_kernel("scalar"), Trans::No, Trans::No,
                          9, 9, 9, 1.0, a.data(), a.ld(), b.data(), b.ld(),
                          0.0, c_ref.data(), c_ref.ld());
  EXPECT_EQ(max_abs_diff(c.view(), c_ref.view()), 0.0);
  EXPECT_THROW(blas::set_active_kernel("no-such-kernel"), Error);
  EXPECT_STREQ(blas::active_kernel().name, "scalar");  // pin survives errors
  // Restore the startup selection (honoring an env-var pin if present).
  const char* env = std::getenv("SRUMMA_GEMM_KERNEL");
  blas::set_active_kernel(env == nullptr ? "auto" : env);
  EXPECT_EQ(blas::active_kernel().name, before);
}

TEST(KernelRegistry, ScalarKernelMatchesSeedAlgorithmExactly) {
  // The scalar kernel is the numerical baseline: its result must be
  // bit-identical to the seed's fixed 8x4 blocked loop nest, reproduced
  // here verbatim (pack with alpha folded in, p-s-r accumulation order,
  // 128/256/1024 blocking).  A tolerance would hide reassociation bugs.
  const index_t m = 137, n = 41, k = 300;  // crosses mc and kc boundaries
  Matrix a(m, k), b(k, n), c_kernel(m, n), c_seed(m, n);
  fill_random(a.view(), 11);
  fill_random(b.view(), 12);
  fill_random(c_kernel.view(), 13);
  c_seed = c_kernel;
  const double alpha = -1.25, beta = 0.5;

  blas::gemm_blocked_with(*blas::find_kernel("scalar"), Trans::No, Trans::No,
                          m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
                          beta, c_kernel.data(), c_kernel.ld());

  // Seed algorithm, inlined.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) c_seed(i, j) *= beta;
  constexpr index_t kMc = 128, kKc = 256, kNc = 1024, kMr = 8, kNr = 4;
  std::vector<double> ap(kMc * kKc, 0.0), bp(kKc * kNc, 0.0);
  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      for (index_t j0 = 0; j0 < nc; j0 += kNr) {
        const index_t nr = std::min(kNr, nc - j0);
        double* bpp = bp.data() + (j0 / kNr) * kc * kNr;
        for (index_t p = 0; p < kc; ++p) {
          for (index_t s = 0; s < nr; ++s)
            bpp[p * kNr + s] = b(pc + p, jc + j0 + s);
          for (index_t s = nr; s < kNr; ++s) bpp[p * kNr + s] = 0.0;
        }
      }
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        for (index_t i0 = 0; i0 < mc; i0 += kMr) {
          const index_t mr = std::min(kMr, mc - i0);
          double* app = ap.data() + (i0 / kMr) * kc * kMr;
          for (index_t p = 0; p < kc; ++p) {
            for (index_t r = 0; r < mr; ++r)
              app[p * kMr + r] = alpha * a(ic + i0 + r, pc + p);
            for (index_t r = mr; r < kMr; ++r) app[p * kMr + r] = 0.0;
          }
        }
        for (index_t j0 = 0; j0 < nc; j0 += kNr) {
          const index_t nr = std::min(kNr, nc - j0);
          const double* bpp = bp.data() + (j0 / kNr) * kc * kNr;
          for (index_t i0 = 0; i0 < mc; i0 += kMr) {
            const index_t mr = std::min(kMr, mc - i0);
            const double* app = ap.data() + (i0 / kMr) * kc * kMr;
            double acc[kMr][kNr] = {};
            for (index_t p = 0; p < kc; ++p) {
              const double* av = app + p * kMr;
              const double* bv = bpp + p * kNr;
              for (index_t s = 0; s < kNr; ++s) {
                const double bsv = bv[s];
                for (index_t r = 0; r < kMr; ++r) acc[r][s] += av[r] * bsv;
              }
            }
            for (index_t s = 0; s < nr; ++s)
              for (index_t r = 0; r < mr; ++r)
                c_seed(ic + i0 + r, jc + j0 + s) += acc[r][s];
          }
        }
      }
    }
  }
  EXPECT_EQ(max_abs_diff(c_kernel.view(), c_seed.view()), 0.0);
}

}  // namespace
}  // namespace srumma
