// Tests for the SRUMMA task decomposition and ordering: K segmentation,
// tiling, plan completeness invariants, and the pure ordering policies.

#include <gtest/gtest.h>

#include <set>

#include "core/task_plan.hpp"
#include "rma/rma.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

TEST(KSegments, AlignedGridsCutAtOwnerBoundaries) {
  BlockDist1D a(12, 3), b(12, 3);
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 4, 8, 12}));
}

TEST(KSegments, MisalignedGridsUnionBoundaries) {
  BlockDist1D a(12, 3);  // cuts at 0,4,8,12
  BlockDist1D b(12, 4);  // cuts at 0,3,6,9,12
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 3, 4, 6, 8, 9, 12}));
}

TEST(KSegments, ChunkRefinesLongSegments) {
  BlockDist1D a(10, 1), b(10, 1);
  const auto ks = k_segment_bounds(a, b, 4);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 4, 8, 10}));
}

TEST(KSegments, RemaindersRespected) {
  BlockDist1D a(7, 2);  // 4 + 3 -> cuts 0,4,7
  BlockDist1D b(7, 3);  // 3+2+2 -> cuts 0,3,5,7
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 3, 4, 5, 7}));
  // Every segment lies within one part of each axis.
  for (std::size_t s = 0; s + 1 < ks.size(); ++s) {
    EXPECT_EQ(a.owner(ks[s]), a.owner(ks[s + 1] - 1));
    EXPECT_EQ(b.owner(ks[s]), b.owner(ks[s + 1] - 1));
  }
}

TEST(KSegments, MismatchedTotalsThrow) {
  BlockDist1D a(10, 2), b(12, 2);
  EXPECT_THROW(k_segment_bounds(a, b, 0), Error);
}

TEST(KSegments, ZeroKDegeneratesToSingleBound) {
  // k == 0: the multiply is a pure beta scaling of C; downstream consumers
  // expect one bound (zero segments), not the {0, 0} pair a naive
  // implementation emits.
  BlockDist1D a(0, 3), b(0, 2);
  EXPECT_EQ(k_segment_bounds(a, b, 0), std::vector<index_t>{0});
  EXPECT_EQ(k_segment_bounds(a, b, 4), std::vector<index_t>{0});
}

TEST(KSegments, EmptyPartsEmitNoDegenerateCuts) {
  // k < parts: the empty tail parts all start at k; their boundaries must
  // be skipped or the plan would contain zero-length K segments.
  BlockDist1D a(3, 5), b(3, 7);
  EXPECT_EQ(k_segment_bounds(a, b, 0), (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(KSegments, RandomizedInvariants) {
  // Property sweep over axis sizes (including 0 and k < parts), part
  // counts, and chunk values: bounds are strictly increasing from 0 to k,
  // every segment is at most k_chunk long (when chunking), and no segment
  // crosses an owner boundary of either axis.
  Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t k = static_cast<index_t>(rng.below(41));
    BlockDist1D a(k, 1 + static_cast<int>(rng.below(8)));
    BlockDist1D b(k, 1 + static_cast<int>(rng.below(8)));
    const index_t chunk = static_cast<index_t>(rng.below(6));  // 0 = off
    const auto ks = k_segment_bounds(a, b, chunk);
    ASSERT_GE(ks.size(), 1u) << "trial " << trial;
    EXPECT_EQ(ks.front(), 0) << "trial " << trial;
    EXPECT_EQ(ks.back(), k) << "trial " << trial;
    if (k == 0) {
      EXPECT_EQ(ks, std::vector<index_t>{0}) << "trial " << trial;
      continue;
    }
    for (std::size_t s = 0; s + 1 < ks.size(); ++s) {
      ASSERT_LT(ks[s], ks[s + 1]) << "trial " << trial;
      if (chunk > 0) {
        EXPECT_LE(ks[s + 1] - ks[s], chunk) << "trial " << trial;
      }
      EXPECT_EQ(a.owner(ks[s]), a.owner(ks[s + 1] - 1)) << "trial " << trial;
      EXPECT_EQ(b.owner(ks[s]), b.owner(ks[s + 1] - 1)) << "trial " << trial;
    }
  }
}

TEST(TileBounds, ChunkingAndWhole) {
  EXPECT_EQ(tile_bounds(10, 0), (std::vector<index_t>{0, 10}));
  EXPECT_EQ(tile_bounds(10, 4), (std::vector<index_t>{0, 4, 8, 10}));
  EXPECT_EQ(tile_bounds(0, 4), (std::vector<index_t>{0}));
}

struct PlanEnv {
  Team team;
  RmaRuntime rma;
  explicit PlanEnv(MachineModel m) : team(std::move(m)), rma(team) {}
};

// Invariant checks a valid plan must satisfy for any configuration.
void check_plan_invariants(Rank& me, const TaskPlan& plan, const DistMatrix& c,
                           index_t k) {
  // Per C tile, the K segments cover [0, k) exactly once.
  std::map<std::pair<index_t, index_t>, std::vector<std::pair<index_t, index_t>>>
      by_tile;
  for (const Task& t : plan.tasks) {
    EXPECT_GT(t.cm, 0);
    EXPECT_GT(t.cn, 0);
    EXPECT_GT(t.kk, 0);
    EXPECT_LE(t.ci + t.cm, c.block_rows(me.id()));
    EXPECT_LE(t.cj + t.cn, c.block_cols(me.id()));
    by_tile[{t.ci, t.cj}].push_back({t.k0, t.kk});
  }
  for (auto& [tile, segs] : by_tile) {
    std::sort(segs.begin(), segs.end());
    index_t covered = 0;
    for (auto [k0, kk] : segs) {
      EXPECT_EQ(k0, covered) << "gap or overlap in K coverage";
      covered += kk;
    }
    EXPECT_EQ(covered, k);
  }
}

TEST(TaskPlan, CoversKExactlyPerTile) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 13, 17, ProcGrid{2, 2}, true);
    DistMatrix b(env.rma, me, 17, 9, ProcGrid{2, 2}, true);
    DistMatrix c(env.rma, me, 13, 9, ProcGrid{2, 2}, true);
    SrummaOptions opt;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 17);
  });
}

TEST(TaskPlan, CoversWithChunkingAndTiling) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 16, 20, ProcGrid{4, 1}, true);
    DistMatrix b(env.rma, me, 20, 16, ProcGrid{4, 1}, true);
    DistMatrix c(env.rma, me, 16, 16, ProcGrid{4, 1}, true);
    SrummaOptions opt;
    opt.k_chunk = 3;
    opt.c_chunk = 5;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 20);
    for (const Task& t : plan.tasks) EXPECT_LE(t.kk, 3);
  });
}

TEST(TaskPlan, TransposedPatchRects) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    // C = A^T B: A stored k x m = 20 x 12, B stored 20 x 8.
    DistMatrix a(env.rma, me, 20, 12, ProcGrid{2, 2}, true);
    DistMatrix b(env.rma, me, 20, 8, ProcGrid{2, 2}, true);
    DistMatrix c(env.rma, me, 12, 8, ProcGrid{2, 2}, true);
    SrummaOptions opt;
    opt.ta = blas::Trans::Yes;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 20);
    for (const Task& t : plan.tasks) {
      // A patch is (kseg) x (C rows) in stored coordinates.
      EXPECT_EQ(t.a_m, t.kk);
      EXPECT_EQ(t.a_n, t.cm);
      EXPECT_EQ(t.b_m, t.kk);
      EXPECT_EQ(t.b_n, t.cn);
    }
  });
}

TEST(TaskPlan, NonConformingDimsThrow) {
  PlanEnv env(MachineModel::testing(2, 1));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 4, 5, ProcGrid{2, 1}, true);
    DistMatrix b(env.rma, me, 6, 4, ProcGrid{2, 1}, true);  // k mismatch
    DistMatrix c(env.rma, me, 4, 4, ProcGrid{2, 1}, true);
    EXPECT_THROW((void)build_task_plan(me, a, b, c, SrummaOptions{}), Error);
  });
}

TEST(TaskPlan, BufferMaximaCoverAllTasks) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 30, 14, ProcGrid{4, 1}, true);
    DistMatrix b(env.rma, me, 14, 22, ProcGrid{4, 1}, true);
    DistMatrix c(env.rma, me, 30, 22, ProcGrid{4, 1}, true);
    TaskPlan plan = build_task_plan(me, a, b, c, SrummaOptions{});
    for (const Task& t : plan.tasks) {
      EXPECT_LE(t.a_m, plan.max_a_m);
      EXPECT_LE(t.a_n, plan.max_a_n);
      EXPECT_LE(t.b_m, plan.max_b_m);
      EXPECT_LE(t.b_n, plan.max_b_n);
    }
  });
}

TEST(AutoKChunk, DerivedFromKAxisOwnersNotGridEdge) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    // 1 x 4 grid, C = A^T B: the K axis of both stored operands is the row
    // axis, which the 1-row grid leaves in a single part.  The old
    // heuristic divided by the grid edge (4) and produced 4x-too-small
    // chunks — i.e. 4x more first-touch (unoverlapped) gets than the
    // actual owner segmentation warrants.
    const index_t k = 2048;
    DistMatrix a(env.rma, me, k, 64, ProcGrid{1, 4}, true);
    DistMatrix b(env.rma, me, k, 64, ProcGrid{1, 4}, true);
    EXPECT_EQ(auto_k_chunk(a, b, blas::Trans::Yes, blas::Trans::No), 512);
    // Untransposed reading of the same storage: A's K axis is its column
    // axis with 4 owners -> 2048 / (4*4) = 128.  (Shapes no longer conform
    // as a product; auto_k_chunk only consults the K axes.)
    DistMatrix a2(env.rma, me, 64, k, ProcGrid{1, 4}, true);
    DistMatrix b2(env.rma, me, k, 64, ProcGrid{1, 4}, true);
    EXPECT_EQ(auto_k_chunk(a2, b2, blas::Trans::No, blas::Trans::No), 128);
    // Clamp floor/ceiling.
    DistMatrix a3(env.rma, me, 80, 16, ProcGrid{1, 4}, true);
    DistMatrix b3(env.rma, me, 80, 16, ProcGrid{1, 4}, true);
    EXPECT_EQ(auto_k_chunk(a3, b3, blas::Trans::Yes, blas::Trans::No), 64);
  });
}

TEST(TaskPlan, OneByPGridTransposedUsesWholeKSegments) {
  // Regression for the mis-sized pipeline: on a 1xP grid with ta=T the K
  // axis has a single owner, so with the auto chunk the per-tile segment
  // count must be k / chunk, not (grid edge) * k / chunk.
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    const index_t k = 2048;
    DistMatrix a(env.rma, me, k, 64, ProcGrid{1, 4}, true);
    DistMatrix b(env.rma, me, k, 64, ProcGrid{1, 4}, true);
    DistMatrix c(env.rma, me, 64, 64, ProcGrid{1, 4}, true);
    SrummaOptions opt;
    opt.ta = blas::Trans::Yes;
    opt.k_chunk = auto_k_chunk(a, b, opt.ta, opt.tb);
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, k);
    EXPECT_EQ(plan.tasks.size(), static_cast<std::size_t>(k / 512));
    for (const Task& t : plan.tasks) EXPECT_EQ(t.kk, 512);
  });
}

// ---- pure ordering tests -------------------------------------------------

Task mk_task(index_t k0, bool a_dom, bool b_dom, int a_col) {
  Task t;
  t.cm = t.cn = t.kk = 1;
  t.k0 = k0;
  t.a_in_domain = a_dom;
  t.b_in_domain = b_dom;
  t.a_owner_col = a_col;
  return t;
}

TEST(Ordering, NaiveKeepsGenerationOrder) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, true, true, 1),
                       mk_task(2, false, true, 2)};
  order_tasks(ts, OrderingPolicy::naive(), 0);
  EXPECT_EQ(ts[0].k0, 0);
  EXPECT_EQ(ts[1].k0, 1);
  EXPECT_EQ(ts[2].k0, 2);
}

TEST(Ordering, ShmFirstStablePartition) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, true, true, 1),
                       mk_task(2, false, true, 2), mk_task(3, true, true, 3)};
  OrderingPolicy p{true, false, false};
  order_tasks(ts, p, 0);
  EXPECT_EQ(ts[0].k0, 1);  // shm tasks first, in original relative order
  EXPECT_EQ(ts[1].k0, 3);
  EXPECT_EQ(ts[2].k0, 0);  // remote tasks keep relative order
  EXPECT_EQ(ts[3].k0, 2);
}

TEST(Ordering, DiagonalShiftRotatesToDiagonalOwner) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, false, false, 1),
                       mk_task(2, false, false, 2), mk_task(3, false, false, 3)};
  OrderingPolicy p{false, true, false};
  order_tasks(ts, p, 2);
  EXPECT_EQ(ts[0].a_owner_col, 2);  // starts at the diagonal column
  EXPECT_EQ(ts[1].a_owner_col, 3);  // cyclic order preserved
  EXPECT_EQ(ts[2].a_owner_col, 0);
  EXPECT_EQ(ts[3].a_owner_col, 1);
}

TEST(Ordering, DiagonalShiftOnlyTouchesRemoteRun) {
  std::vector<Task> ts{mk_task(0, true, true, 0), mk_task(1, false, false, 1),
                       mk_task(2, false, false, 2)};
  OrderingPolicy p{true, true, false};
  order_tasks(ts, p, 2);
  EXPECT_TRUE(ts[0].in_domain());      // shm task stays in front
  EXPECT_EQ(ts[1].a_owner_col, 2);     // remote run rotated
  EXPECT_EQ(ts[2].a_owner_col, 1);
}

TEST(Ordering, MissingDiagonalColumnLeavesOrder) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, false, false, 1)};
  OrderingPolicy p{false, true, false};
  order_tasks(ts, p, 7);  // no such column
  EXPECT_EQ(ts[0].k0, 0);
  EXPECT_EQ(ts[1].k0, 1);
}

TEST(Ordering, PermutationPreserved) {
  // Whatever the policy, ordering must be a permutation of the input.
  std::vector<Task> ts;
  for (index_t i = 0; i < 20; ++i)
    ts.push_back(mk_task(i, i % 3 == 0, i % 2 == 0, static_cast<int>(i % 4)));
  order_tasks(ts, OrderingPolicy::full(), 1);
  std::set<index_t> seen;
  for (const Task& t : ts) seen.insert(t.k0);
  EXPECT_EQ(seen.size(), 20u);
  // shm-first property holds.
  bool seen_remote = false;
  for (const Task& t : ts) {
    if (!t.in_domain()) seen_remote = true;
    if (t.in_domain()) {
      EXPECT_FALSE(seen_remote) << "shm task after remote";
    }
  }
}

// Count maximal runs of tasks sharing one A patch (the unit the pipeline's
// buffer reuse cares about).
int count_a_runs(const std::vector<Task>& ts) {
  if (ts.empty()) return 0;
  int runs = 1;
  for (std::size_t i = 1; i < ts.size(); ++i)
    if (!ts[i].same_a_patch(ts[i - 1])) ++runs;
  return runs;
}

TEST(Ordering, DiagonalShiftSplitsAtMostOneAReuseRun) {
  // Property: the diagonal rotation is a single cyclic shift of the remote
  // tail, so it can cut at most one maximal A-reuse run in two.  Randomized
  // over run structures, owner columns and rotation targets.
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Task> ts;
    const int groups = 1 + static_cast<int>(rng.below(6));
    index_t idx = 0;
    for (int g = 0; g < groups; ++g) {
      const int len = 1 + static_cast<int>(rng.below(4));
      const int col = static_cast<int>(rng.below(4));
      for (int i = 0; i < len; ++i) {
        Task t = mk_task(idx++, false, false, col);
        t.a_i0 = g;  // distinct patch per group -> `groups` maximal runs
        ts.push_back(t);
      }
    }
    const int before = count_a_runs(ts);
    OrderingPolicy p{false, true, true};
    order_tasks(ts, p, static_cast<int>(rng.below(5)));  // col 4 may miss
    EXPECT_LE(count_a_runs(ts), before + 1) << "trial " << trial;
    EXPECT_EQ(ts.size(), static_cast<std::size_t>(idx));
  }
}

TEST(Ordering, ShmFirstIsStableUnderRandomInput) {
  // Property: shm_first is a *stable* partition — within each class the
  // original generation order (recorded in k0) survives untouched.
  Rng rng(977);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Task> ts;
    const index_t n = 1 + static_cast<index_t>(rng.below(24));
    for (index_t i = 0; i < n; ++i)
      ts.push_back(mk_task(i, rng.below(2) == 0, rng.below(2) == 0,
                           static_cast<int>(rng.below(4))));
    OrderingPolicy p{true, false, false};
    order_tasks(ts, p, 0);
    ASSERT_EQ(ts.size(), static_cast<std::size_t>(n));
    index_t last_shm = -1, last_remote = -1;
    bool seen_remote = false;
    for (const Task& t : ts) {
      if (t.in_domain()) {
        EXPECT_FALSE(seen_remote) << "shm task after remote, trial " << trial;
        EXPECT_GT(t.k0, last_shm) << "shm order perturbed, trial " << trial;
        last_shm = t.k0;
      } else {
        seen_remote = true;
        EXPECT_GT(t.k0, last_remote)
            << "remote order perturbed, trial " << trial;
        last_remote = t.k0;
      }
    }
  }
}

TEST(Ordering, AReuseGroupsConsecutiveAPatches) {
  PlanEnv env(MachineModel::testing(1, 1));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    DistMatrix b(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    DistMatrix c(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    SrummaOptions opt;
    opt.c_chunk = 4;  // 2x2 tiles
    opt.k_chunk = 4;  // 2 segments
    opt.ordering = OrderingPolicy::full();
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    ASSERT_EQ(plan.tasks.size(), 8u);
    // Count A-patch switches: with (ci, k, cj) nesting each (ci,k) pair's
    // tasks are adjacent -> 4 groups -> 3 switches (plus possibly 1 from the
    // diagonal rotation split).
    int switches = 0;
    for (std::size_t i = 1; i < plan.tasks.size(); ++i)
      if (!plan.tasks[i].same_a_patch(plan.tasks[i - 1])) ++switches;
    EXPECT_LE(switches, 4);
    // Without reuse nesting, every adjacent pair differs in A.
    SrummaOptions naive = opt;
    naive.ordering = OrderingPolicy::naive();
    TaskPlan nplan = build_task_plan(me, a, b, c, naive);
    int nswitches = 0;
    for (std::size_t i = 1; i < nplan.tasks.size(); ++i)
      if (!nplan.tasks[i].same_a_patch(nplan.tasks[i - 1])) ++nswitches;
    EXPECT_GT(nswitches, switches);
  });
}

}  // namespace
}  // namespace srumma
