// Tests for the SRUMMA task decomposition and ordering: K segmentation,
// tiling, plan completeness invariants, and the pure ordering policies.

#include <gtest/gtest.h>

#include <set>

#include "core/task_plan.hpp"
#include "rma/rma.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

TEST(KSegments, AlignedGridsCutAtOwnerBoundaries) {
  BlockDist1D a(12, 3), b(12, 3);
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 4, 8, 12}));
}

TEST(KSegments, MisalignedGridsUnionBoundaries) {
  BlockDist1D a(12, 3);  // cuts at 0,4,8,12
  BlockDist1D b(12, 4);  // cuts at 0,3,6,9,12
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 3, 4, 6, 8, 9, 12}));
}

TEST(KSegments, ChunkRefinesLongSegments) {
  BlockDist1D a(10, 1), b(10, 1);
  const auto ks = k_segment_bounds(a, b, 4);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 4, 8, 10}));
}

TEST(KSegments, RemaindersRespected) {
  BlockDist1D a(7, 2);  // 4 + 3 -> cuts 0,4,7
  BlockDist1D b(7, 3);  // 3+2+2 -> cuts 0,3,5,7
  const auto ks = k_segment_bounds(a, b, 0);
  EXPECT_EQ(ks, (std::vector<index_t>{0, 3, 4, 5, 7}));
  // Every segment lies within one part of each axis.
  for (std::size_t s = 0; s + 1 < ks.size(); ++s) {
    EXPECT_EQ(a.owner(ks[s]), a.owner(ks[s + 1] - 1));
    EXPECT_EQ(b.owner(ks[s]), b.owner(ks[s + 1] - 1));
  }
}

TEST(KSegments, MismatchedTotalsThrow) {
  BlockDist1D a(10, 2), b(12, 2);
  EXPECT_THROW(k_segment_bounds(a, b, 0), Error);
}

TEST(TileBounds, ChunkingAndWhole) {
  EXPECT_EQ(tile_bounds(10, 0), (std::vector<index_t>{0, 10}));
  EXPECT_EQ(tile_bounds(10, 4), (std::vector<index_t>{0, 4, 8, 10}));
  EXPECT_EQ(tile_bounds(0, 4), (std::vector<index_t>{0}));
}

struct PlanEnv {
  Team team;
  RmaRuntime rma;
  explicit PlanEnv(MachineModel m) : team(std::move(m)), rma(team) {}
};

// Invariant checks a valid plan must satisfy for any configuration.
void check_plan_invariants(Rank& me, const TaskPlan& plan, const DistMatrix& c,
                           index_t k) {
  // Per C tile, the K segments cover [0, k) exactly once.
  std::map<std::pair<index_t, index_t>, std::vector<std::pair<index_t, index_t>>>
      by_tile;
  for (const Task& t : plan.tasks) {
    EXPECT_GT(t.cm, 0);
    EXPECT_GT(t.cn, 0);
    EXPECT_GT(t.kk, 0);
    EXPECT_LE(t.ci + t.cm, c.block_rows(me.id()));
    EXPECT_LE(t.cj + t.cn, c.block_cols(me.id()));
    by_tile[{t.ci, t.cj}].push_back({t.k0, t.kk});
  }
  for (auto& [tile, segs] : by_tile) {
    std::sort(segs.begin(), segs.end());
    index_t covered = 0;
    for (auto [k0, kk] : segs) {
      EXPECT_EQ(k0, covered) << "gap or overlap in K coverage";
      covered += kk;
    }
    EXPECT_EQ(covered, k);
  }
}

TEST(TaskPlan, CoversKExactlyPerTile) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 13, 17, ProcGrid{2, 2}, true);
    DistMatrix b(env.rma, me, 17, 9, ProcGrid{2, 2}, true);
    DistMatrix c(env.rma, me, 13, 9, ProcGrid{2, 2}, true);
    SrummaOptions opt;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 17);
  });
}

TEST(TaskPlan, CoversWithChunkingAndTiling) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 16, 20, ProcGrid{4, 1}, true);
    DistMatrix b(env.rma, me, 20, 16, ProcGrid{4, 1}, true);
    DistMatrix c(env.rma, me, 16, 16, ProcGrid{4, 1}, true);
    SrummaOptions opt;
    opt.k_chunk = 3;
    opt.c_chunk = 5;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 20);
    for (const Task& t : plan.tasks) EXPECT_LE(t.kk, 3);
  });
}

TEST(TaskPlan, TransposedPatchRects) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    // C = A^T B: A stored k x m = 20 x 12, B stored 20 x 8.
    DistMatrix a(env.rma, me, 20, 12, ProcGrid{2, 2}, true);
    DistMatrix b(env.rma, me, 20, 8, ProcGrid{2, 2}, true);
    DistMatrix c(env.rma, me, 12, 8, ProcGrid{2, 2}, true);
    SrummaOptions opt;
    opt.ta = blas::Trans::Yes;
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    check_plan_invariants(me, plan, c, 20);
    for (const Task& t : plan.tasks) {
      // A patch is (kseg) x (C rows) in stored coordinates.
      EXPECT_EQ(t.a_m, t.kk);
      EXPECT_EQ(t.a_n, t.cm);
      EXPECT_EQ(t.b_m, t.kk);
      EXPECT_EQ(t.b_n, t.cn);
    }
  });
}

TEST(TaskPlan, NonConformingDimsThrow) {
  PlanEnv env(MachineModel::testing(2, 1));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 4, 5, ProcGrid{2, 1}, true);
    DistMatrix b(env.rma, me, 6, 4, ProcGrid{2, 1}, true);  // k mismatch
    DistMatrix c(env.rma, me, 4, 4, ProcGrid{2, 1}, true);
    EXPECT_THROW((void)build_task_plan(me, a, b, c, SrummaOptions{}), Error);
  });
}

TEST(TaskPlan, BufferMaximaCoverAllTasks) {
  PlanEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 30, 14, ProcGrid{4, 1}, true);
    DistMatrix b(env.rma, me, 14, 22, ProcGrid{4, 1}, true);
    DistMatrix c(env.rma, me, 30, 22, ProcGrid{4, 1}, true);
    TaskPlan plan = build_task_plan(me, a, b, c, SrummaOptions{});
    for (const Task& t : plan.tasks) {
      EXPECT_LE(t.a_m, plan.max_a_m);
      EXPECT_LE(t.a_n, plan.max_a_n);
      EXPECT_LE(t.b_m, plan.max_b_m);
      EXPECT_LE(t.b_n, plan.max_b_n);
    }
  });
}

// ---- pure ordering tests -------------------------------------------------

Task mk_task(index_t k0, bool a_dom, bool b_dom, int a_col) {
  Task t;
  t.cm = t.cn = t.kk = 1;
  t.k0 = k0;
  t.a_in_domain = a_dom;
  t.b_in_domain = b_dom;
  t.a_owner_col = a_col;
  return t;
}

TEST(Ordering, NaiveKeepsGenerationOrder) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, true, true, 1),
                       mk_task(2, false, true, 2)};
  order_tasks(ts, OrderingPolicy::naive(), 0);
  EXPECT_EQ(ts[0].k0, 0);
  EXPECT_EQ(ts[1].k0, 1);
  EXPECT_EQ(ts[2].k0, 2);
}

TEST(Ordering, ShmFirstStablePartition) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, true, true, 1),
                       mk_task(2, false, true, 2), mk_task(3, true, true, 3)};
  OrderingPolicy p{true, false, false};
  order_tasks(ts, p, 0);
  EXPECT_EQ(ts[0].k0, 1);  // shm tasks first, in original relative order
  EXPECT_EQ(ts[1].k0, 3);
  EXPECT_EQ(ts[2].k0, 0);  // remote tasks keep relative order
  EXPECT_EQ(ts[3].k0, 2);
}

TEST(Ordering, DiagonalShiftRotatesToDiagonalOwner) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, false, false, 1),
                       mk_task(2, false, false, 2), mk_task(3, false, false, 3)};
  OrderingPolicy p{false, true, false};
  order_tasks(ts, p, 2);
  EXPECT_EQ(ts[0].a_owner_col, 2);  // starts at the diagonal column
  EXPECT_EQ(ts[1].a_owner_col, 3);  // cyclic order preserved
  EXPECT_EQ(ts[2].a_owner_col, 0);
  EXPECT_EQ(ts[3].a_owner_col, 1);
}

TEST(Ordering, DiagonalShiftOnlyTouchesRemoteRun) {
  std::vector<Task> ts{mk_task(0, true, true, 0), mk_task(1, false, false, 1),
                       mk_task(2, false, false, 2)};
  OrderingPolicy p{true, true, false};
  order_tasks(ts, p, 2);
  EXPECT_TRUE(ts[0].in_domain());      // shm task stays in front
  EXPECT_EQ(ts[1].a_owner_col, 2);     // remote run rotated
  EXPECT_EQ(ts[2].a_owner_col, 1);
}

TEST(Ordering, MissingDiagonalColumnLeavesOrder) {
  std::vector<Task> ts{mk_task(0, false, false, 0), mk_task(1, false, false, 1)};
  OrderingPolicy p{false, true, false};
  order_tasks(ts, p, 7);  // no such column
  EXPECT_EQ(ts[0].k0, 0);
  EXPECT_EQ(ts[1].k0, 1);
}

TEST(Ordering, PermutationPreserved) {
  // Whatever the policy, ordering must be a permutation of the input.
  std::vector<Task> ts;
  for (index_t i = 0; i < 20; ++i)
    ts.push_back(mk_task(i, i % 3 == 0, i % 2 == 0, static_cast<int>(i % 4)));
  order_tasks(ts, OrderingPolicy::full(), 1);
  std::set<index_t> seen;
  for (const Task& t : ts) seen.insert(t.k0);
  EXPECT_EQ(seen.size(), 20u);
  // shm-first property holds.
  bool seen_remote = false;
  for (const Task& t : ts) {
    if (!t.in_domain()) seen_remote = true;
    if (t.in_domain()) {
      EXPECT_FALSE(seen_remote) << "shm task after remote";
    }
  }
}

TEST(Ordering, AReuseGroupsConsecutiveAPatches) {
  PlanEnv env(MachineModel::testing(1, 1));
  env.team.run([&](Rank& me) {
    DistMatrix a(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    DistMatrix b(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    DistMatrix c(env.rma, me, 8, 8, ProcGrid{1, 1}, true);
    SrummaOptions opt;
    opt.c_chunk = 4;  // 2x2 tiles
    opt.k_chunk = 4;  // 2 segments
    opt.ordering = OrderingPolicy::full();
    TaskPlan plan = build_task_plan(me, a, b, c, opt);
    ASSERT_EQ(plan.tasks.size(), 8u);
    // Count A-patch switches: with (ci, k, cj) nesting each (ci,k) pair's
    // tasks are adjacent -> 4 groups -> 3 switches (plus possibly 1 from the
    // diagonal rotation split).
    int switches = 0;
    for (std::size_t i = 1; i < plan.tasks.size(); ++i)
      if (!plan.tasks[i].same_a_patch(plan.tasks[i - 1])) ++switches;
    EXPECT_LE(switches, 4);
    // Without reuse nesting, every adjacent pair differs in A.
    SrummaOptions naive = opt;
    naive.ordering = OrderingPolicy::naive();
    TaskPlan nplan = build_task_plan(me, a, b, c, naive);
    int nswitches = 0;
    for (std::size_t i = 1; i < nplan.tasks.size(); ++i)
      if (!nplan.tasks[i].same_a_patch(nplan.tasks[i - 1])) ++nswitches;
    EXPECT_GT(nswitches, switches);
  });
}

}  // namespace
}  // namespace srumma
