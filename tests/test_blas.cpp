// Tests for the serial BLAS substrate: the blocked kernel must match the
// naive oracle over a broad parameter sweep (shapes, transposes, alpha/beta,
// padded leading dimensions) since every parallel algorithm leans on it.

#include <gtest/gtest.h>

#include <tuple>

#include "blas/gemm.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

using blas::Trans;

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, BlockedMatchesNaive) {
  const GemmCase c = GetParam();
  const index_t a_rows = c.ta == Trans::No ? c.m : c.k;
  const index_t a_cols = c.ta == Trans::No ? c.k : c.m;
  const index_t b_rows = c.tb == Trans::No ? c.k : c.n;
  const index_t b_cols = c.tb == Trans::No ? c.n : c.k;

  Matrix a(a_rows, a_cols), b(b_rows, b_cols);
  Matrix c_ref(c.m, c.n), c_out(c.m, c.n);
  fill_random(a.view(), 11);
  fill_random(b.view(), 22);
  fill_random(c_ref.view(), 33);
  copy(c_ref.view(), c_out.view());

  blas::gemm_naive(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), a.ld(),
                   b.data(), b.ld(), c.beta, c_ref.data(), c_ref.ld());
  blas::gemm_blocked(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), a.ld(),
                     b.data(), b.ld(), c.beta, c_out.data(), c_out.ld());
  EXPECT_LE(max_abs_diff(c_ref.view(), c_out.view()),
            testing::gemm_tolerance(c.k))
      << "m=" << c.m << " n=" << c.n << " k=" << c.k;
}

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases;
  const Trans ts[] = {Trans::No, Trans::Yes};
  // Shapes spanning: tiny, non-divisible by the micro-kernel (8x4), larger
  // than one cache block (kMc=128, kKc=256), and degenerate edges.
  const std::tuple<index_t, index_t, index_t> shapes[] = {
      {1, 1, 1},   {2, 3, 4},    {7, 5, 9},    {8, 4, 16},  {13, 17, 11},
      {32, 32, 32}, {33, 31, 29}, {64, 1, 64}, {1, 64, 64}, {130, 70, 260},
      {150, 150, 1}, {5, 5, 300}};
  for (auto [m, n, k] : shapes)
    for (Trans ta : ts)
      for (Trans tb : ts)
        cases.push_back({m, n, k, ta, tb, 1.0, 0.0});
  // alpha/beta coverage on one awkward shape.
  for (double alpha : {0.0, -1.5, 2.0})
    for (double beta : {0.0, 1.0, 0.5})
      cases.push_back({19, 23, 37, Trans::Yes, Trans::No, alpha, beta});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmSweep, ::testing::ValuesIn(gemm_cases()));

TEST(Gemm, ZeroSizeIsNoop) {
  Matrix c(0, 0);
  blas::gemm(Trans::No, Trans::No, 0, 0, 0, 1.0, nullptr, 1, nullptr, 1, 0.0,
             c.data(), 1);
}

TEST(Gemm, KZeroOnlyAppliesBeta) {
  Matrix c(3, 3);
  c.fill(2.0);
  blas::gemm(Trans::No, Trans::No, 3, 3, 0, 1.0, nullptr, 1, nullptr, 1, 0.5,
             c.data(), c.ld());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(c(i, j), 1.0);
}

TEST(Gemm, BetaZeroOverwritesNaNs) {
  // beta == 0 must ignore prior contents entirely (BLAS semantics).
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  b(0, 0) = b(1, 1) = 1.0;
  c.fill(std::numeric_limits<double>::quiet_NaN());
  blas::gemm(Trans::No, Trans::No, 2, 2, 2, 1.0, a.data(), 2, b.data(), 2, 0.0,
             c.data(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(Gemm, StridedViewsWork) {
  // Operate on interior blocks of larger arrays (ld > rows).
  Matrix a(10, 10), b(10, 10), c(10, 10), c_ref(10, 10);
  fill_random(a.view(), 1);
  fill_random(b.view(), 2);
  blas::gemm_naive(Trans::No, Trans::No, 4, 4, 4, 1.0, &a(3, 3), a.ld(),
                   &b(2, 1), b.ld(), 0.0, &c_ref(1, 2), c_ref.ld());
  blas::gemm_blocked(Trans::No, Trans::No, 4, 4, 4, 1.0, &a(3, 3), a.ld(),
                     &b(2, 1), b.ld(), 0.0, &c(1, 2), c.ld());
  EXPECT_LE(max_abs_diff(c.block(1, 2, 4, 4), c_ref.block(1, 2, 4, 4)),
            testing::gemm_tolerance(4));
}

TEST(Gemm, ViewWrapperChecksConformance) {
  Matrix a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(
      blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view()),
      Error);
  Matrix b2(4, 6);
  Matrix c_bad(4, 6);
  EXPECT_THROW(blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b2.view(), 0.0,
                          c_bad.view()),
               Error);
}

TEST(Gemm, ViewWrapperTransposedDims) {
  // op(A) = A^T with A stored 4x3 gives a 3x4 operand.
  Matrix a(4, 3), b(4, 5), c(3, 5), c_ref(3, 5);
  fill_random(a.view(), 3);
  fill_random(b.view(), 4);
  blas::gemm(Trans::Yes, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  blas::gemm_naive(Trans::Yes, Trans::No, 3, 5, 4, 1.0, a.data(), a.ld(),
                   b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()), testing::gemm_tolerance(4));
}

TEST(Gemm, OpDimHelpers) {
  Matrix a(3, 7);
  EXPECT_EQ(blas::op_rows(Trans::No, a.view()), 3);
  EXPECT_EQ(blas::op_cols(Trans::No, a.view()), 7);
  EXPECT_EQ(blas::op_rows(Trans::Yes, a.view()), 7);
  EXPECT_EQ(blas::op_cols(Trans::Yes, a.view()), 3);
}

TEST(Gemm, NegativeDimThrows) {
  Matrix c(2, 2);
  EXPECT_THROW(blas::gemm(Trans::No, Trans::No, -1, 2, 2, 1.0, nullptr, 1,
                          nullptr, 1, 0.0, c.data(), 2),
               Error);
}

TEST(Gemm, LdaTooSmallThrows) {
  // BLAS argument checking: lda must cover the *stored* A height — m for
  // 'N' (A is m x k), k for 'T' (A is k x m).  Both kernels must die before
  // reading out of bounds.
  Matrix a(8, 8), b(8, 8), c(4, 4);
  EXPECT_THROW(blas::gemm_blocked(Trans::No, Trans::No, 4, 4, 8, 1.0,
                                  a.data(), 3, b.data(), 8, 0.0, c.data(), 4),
               Error);
  EXPECT_THROW(blas::gemm_naive(Trans::No, Trans::No, 4, 4, 8, 1.0, a.data(),
                                3, b.data(), 8, 0.0, c.data(), 4),
               Error);
  EXPECT_THROW(blas::gemm_blocked(Trans::Yes, Trans::No, 4, 4, 8, 1.0,
                                  a.data(), 7, b.data(), 8, 0.0, c.data(), 4),
               Error);
  // Valid lower bounds pass.
  blas::gemm_blocked(Trans::No, Trans::No, 4, 4, 8, 1.0, a.data(), 4,
                     b.data(), 8, 0.0, c.data(), 4);
  blas::gemm_blocked(Trans::Yes, Trans::No, 4, 4, 8, 1.0, a.data(), 8,
                     b.data(), 8, 0.0, c.data(), 4);
}

TEST(Gemm, LdbTooSmallThrows) {
  // Stored B height is k for 'N' (B is k x n), n for 'T' (B is n x k).
  Matrix a(8, 8), b(8, 8), c(4, 4);
  EXPECT_THROW(blas::gemm_blocked(Trans::No, Trans::No, 4, 4, 8, 1.0,
                                  a.data(), 8, b.data(), 7, 0.0, c.data(), 4),
               Error);
  EXPECT_THROW(blas::gemm_naive(Trans::No, Trans::No, 4, 4, 8, 1.0, a.data(),
                                8, b.data(), 7, 0.0, c.data(), 4),
               Error);
  EXPECT_THROW(blas::gemm_blocked(Trans::No, Trans::Yes, 4, 4, 8, 1.0,
                                  a.data(), 8, b.data(), 3, 0.0, c.data(), 4),
               Error);
  blas::gemm_blocked(Trans::No, Trans::Yes, 4, 4, 8, 1.0, a.data(), 8,
                     b.data(), 4, 0.0, c.data(), 4);
}

TEST(Gemm, DegenerateOperandsSkipLdChecks) {
  // k == 0 leaves A and B unread (possibly null); only beta applies, and
  // the historical lda/ldb = 1 convention must keep working.
  Matrix c(3, 3);
  c.fill(4.0);
  blas::gemm_blocked(Trans::No, Trans::No, 3, 3, 0, 1.0, nullptr, 1, nullptr,
                     1, 0.25, c.data(), c.ld());
  EXPECT_DOUBLE_EQ(c(2, 2), 1.0);
}

TEST(Gemm, LargeAccumulationAccuracy) {
  // Summing k=2000 terms of +-1-ish values stays well-conditioned.
  const index_t k = 2000;
  Matrix a(4, k), b(k, 4), c(4, 4), c_ref(4, 4);
  fill_random(a.view(), 5);
  fill_random(b.view(), 6);
  blas::gemm_naive(Trans::No, Trans::No, 4, 4, k, 1.0, a.data(), a.ld(),
                   b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  blas::gemm_blocked(Trans::No, Trans::No, 4, 4, k, 1.0, a.data(), a.ld(),
                     b.data(), b.ld(), 0.0, c.data(), c.ld());
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()), testing::gemm_tolerance(k));
}

}  // namespace
}  // namespace srumma
