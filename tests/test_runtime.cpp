// Tests for the Team/Rank substrate: SPMD launch, virtual-time barriers,
// gemm charging, failure propagation, and the trace board.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <string>

#include "msg/comm.hpp"
#include "runtime/abortable_wait.hpp"
#include "rma/rma.hpp"
#include "runtime/team.hpp"
#include "util/error.hpp"

namespace srumma {
namespace {

TEST(Team, RunsEveryRankOnce) {
  Team team(MachineModel::testing(2, 3));
  std::atomic<int> count{0};
  std::atomic<int> id_sum{0};
  team.run([&](Rank& me) {
    count.fetch_add(1);
    id_sum.fetch_add(me.id());
  });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(id_sum.load(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(Team, RankTopologyAccessors) {
  Team team(MachineModel::testing(2, 2));
  team.run([&](Rank& me) {
    EXPECT_EQ(me.node(), me.id() / 2);
    EXPECT_EQ(me.domain(), me.node());
    EXPECT_EQ(&me.team(), &team);
  });
}

TEST(Team, BarrierEqualizesClocksToMaxPlusCost) {
  Team team(MachineModel::testing(4, 1));
  const double hop = team.machine().barrier_hop_latency;
  team.run([&](Rank& me) {
    me.charge_seconds(static_cast<double>(me.id()) * 0.5);
    me.barrier();
    // max clock was 1.5 (rank 3); tree depth ceil(log2 4) = 2 hops.
    EXPECT_NEAR(me.clock().now(), 1.5 + 2 * hop, 1e-12);
  });
}

TEST(Team, RepeatedBarriersStayConsistent) {
  Team team(MachineModel::testing(3, 1));
  team.run([&](Rank& me) {
    for (int i = 0; i < 50; ++i) {
      me.charge_seconds(me.id() == i % 3 ? 1e-3 : 0.0);
      me.barrier();
    }
  });
  // All clocks identical after a barrier.
  const double t0 = team.rank(0).clock().now();
  for (int r = 1; r < team.size(); ++r)
    EXPECT_DOUBLE_EQ(team.rank(r).clock().now(), t0);
}

TEST(Team, ChargeGemmAdvancesClockAndTrace) {
  Team team(MachineModel::testing(1, 1));
  team.run([&](Rank& me) {
    me.charge_gemm(100, 100, 100);
    const double expect = team.machine().dgemm.time(100, 100, 100);
    EXPECT_DOUBLE_EQ(me.clock().now(), expect);
    EXPECT_DOUBLE_EQ(me.trace().time_compute, expect);
    EXPECT_EQ(me.trace().gemm_calls, 1u);
    EXPECT_DOUBLE_EQ(me.trace().flops, 2e6);
  });
}

TEST(Team, ChargeGemmRateFactorSlowsDown) {
  Team team(MachineModel::testing(1, 1));
  team.run([&](Rank& me) {
    me.charge_gemm(64, 64, 64, 0.5);
    EXPECT_NEAR(me.clock().now(), team.machine().dgemm.time(64, 64, 64) * 2.0,
                1e-15);
    EXPECT_THROW(me.charge_gemm(8, 8, 8, 0.0), Error);
  });
}

TEST(Team, ExceptionPropagatesAndDoesNotDeadlock) {
  Team team(MachineModel::testing(4, 1));
  EXPECT_THROW(team.run([&](Rank& me) {
    if (me.id() == 2) throw Error("rank 2 failed");
    me.barrier();  // would deadlock without abort-propagation
  }),
               Error);
  EXPECT_TRUE(team.aborted());
  team.reset();
  EXPECT_FALSE(team.aborted());
  // Team is usable again after reset.
  team.run([](Rank& me) { me.barrier(); });
}

TEST(Team, RunAfterAbortWithoutResetThrows) {
  Team team(MachineModel::testing(2, 1));
  EXPECT_THROW(team.run([](Rank&) { throw Error("boom"); }), Error);
  EXPECT_THROW(team.run([](Rank&) {}), Error);
}

TEST(Team, ResetClearsClocksTracesAndNetwork) {
  Team team(MachineModel::testing(2, 1));
  team.run([](Rank& me) {
    me.charge_gemm(32, 32, 32);
    me.barrier();
  });
  EXPECT_GT(team.max_clock(), 0.0);
  team.reset();
  EXPECT_EQ(team.max_clock(), 0.0);
  EXPECT_EQ(team.total_trace().gemm_calls, 0u);
}

TEST(Team, TotalTraceSumsRanks) {
  Team team(MachineModel::testing(3, 1));
  team.run([](Rank& me) { me.charge_gemm(16, 16, 16); });
  EXPECT_EQ(team.total_trace().gemm_calls, 3u);
}

TEST(Team, TraceBoardSlotsArePerRank) {
  Team team(MachineModel::testing(2, 2));
  team.run([&](Rank& me) {
    TraceCounters t;
    t.gets = static_cast<std::uint64_t>(me.id());
    team.trace_board(me.id()) = t;
    me.barrier();
    std::uint64_t sum = 0;
    for (int r = 0; r < team.size(); ++r) sum += team.trace_board(r).gets;
    EXPECT_EQ(sum, 0u + 1 + 2 + 3);
  });
}

TEST(Team, SingleRankBarrierIsFree) {
  Team team(MachineModel::testing(1, 1));
  team.run([](Rank& me) {
    me.barrier();
    EXPECT_DOUBLE_EQ(me.clock().now(), 0.0);
  });
}

TEST(Team, RankOutOfRangeThrows) {
  Team team(MachineModel::testing(2, 1));
  EXPECT_THROW((void)team.rank(2), Error);
  EXPECT_THROW((void)team.rank(-1), Error);
  EXPECT_THROW((void)team.trace_board(7), Error);
}

TEST(Team, ManyRanksBarrierStress) {
  Team team(MachineModel::testing(32, 2));  // 64 threads on this host
  team.run([](Rank& me) {
    for (int i = 0; i < 10; ++i) me.barrier();
  });
  EXPECT_GT(team.max_clock(), 0.0);
}

// A rank that fails while a peer is parked inside a blocking collective
// wait must (a) wake that peer promptly via the abort-cv registry instead
// of leaving it to ride out a polling interval, and (b) surface *its own*
// error at the Team::run call site, not the peer's secondary abort error.
TEST(Team, AbortWakesPeerBlockedInSymmetricAlloc) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    team.run([&](Rank& me) {
      if (me.id() == 0) throw Error("original failure");
      (void)rma.malloc_symmetric(me, 128);  // blocks: rank 0 never joins
      FAIL() << "peer must not complete the collective";
    });
    FAIL() << "Team::run must rethrow";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "original failure");
  }
  const auto wall = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(wall).count(), 5);
  EXPECT_TRUE(team.aborted());
}

// Direct coverage of the deadline variant backing bounded blocking waits:
// satisfied predicate returns true, an expired deadline returns false with
// the lock still held, and a team abort throws out of the wait.
TEST(Team, WaitAbortableForTimesOutAndAborts) {
  Team team(MachineModel::testing(1, 1));
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  std::unique_lock<std::mutex> lock(mu);
  EXPECT_FALSE(wait_abortable_for(lock, cv, team,
                                  std::chrono::milliseconds(5),
                                  [&] { return ready; }));
  EXPECT_TRUE(lock.owns_lock());

  ready = true;
  EXPECT_TRUE(wait_abortable_for(lock, cv, team,
                                 std::chrono::milliseconds(5),
                                 [&] { return ready; }));

  ready = false;
  team.abort();
  EXPECT_THROW(static_cast<void>(wait_abortable_for(
                   lock, cv, team, std::chrono::seconds(10),
                   [&] { return ready; })),
               Error);
}

TEST(Team, AbortWakesPeerBlockedInRecv) {
  Team team(MachineModel::testing(2, 1));
  Comm comm(team);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    team.run([&](Rank& me) {
      if (me.id() == 0) throw Error("sender died");
      double x = 0.0;
      comm.recv(me, 0, 7, &x, 1);  // blocks: the message never arrives
      FAIL() << "recv must not complete";
    });
    FAIL() << "Team::run must rethrow";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "sender died");
  }
  const auto wall = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(wall).count(), 5);
  EXPECT_TRUE(team.aborted());
}

}  // namespace
}  // namespace srumma
