// Tests for the OS-noise (daemon preemption) model: determinism, rate
// correctness, decorrelation across ranks, and the synchronization-
// amplification effect the paper's Section 2 argues for.

#include <gtest/gtest.h>

#include "core/srumma.hpp"
#include "msg/comm.hpp"
#include "runtime/team.hpp"

namespace srumma {
namespace {

MachineModel noisy_machine(int nodes, int rpn, double interval, double dur) {
  MachineModel m = MachineModel::testing(nodes, rpn);
  m.noise_daemon_interval = interval;
  m.noise_daemon_duration = dur;
  return m;
}

TEST(Noise, DisabledByDefaultInTestingModel) {
  Team team(MachineModel::testing(1, 2));
  team.run([](Rank& me) {
    me.charge_seconds(100.0);
    EXPECT_EQ(me.trace().time_noise, 0.0);
  });
}

TEST(Noise, RateMatchesParameters) {
  // interval 0.1 s, duration 1 ms: 10 s of CPU should collect ~100
  // preemptions = ~0.1 s of noise (gaps are uniform in [0.5, 1.5] x
  // interval, so the expectation is exact up to edge effects).
  Team team(noisy_machine(1, 1, 0.1, 1e-3));
  team.run([](Rank& me) {
    me.charge_seconds(10.0);
    EXPECT_NEAR(me.trace().time_noise, 0.1, 0.03);
    EXPECT_NEAR(me.clock().now(), 10.0 + me.trace().time_noise, 1e-12);
  });
}

TEST(Noise, DeterministicAcrossRuns) {
  Team team(noisy_machine(2, 1, 0.05, 2e-3));
  double first = -1.0;
  for (int round = 0; round < 3; ++round) {
    team.reset();
    team.run([](Rank& me) {
      for (int i = 0; i < 50; ++i) me.charge_seconds(0.01 * (me.id() + 1));
    });
    const double total = team.total_trace().time_noise;
    EXPECT_GT(total, 0.0);
    if (first < 0) {
      first = total;
    } else {
      EXPECT_DOUBLE_EQ(total, first);
    }
  }
}

TEST(Noise, RanksAreDecorrelated) {
  // Two ranks consuming identical CPU must not preempt at identical points
  // (that would destroy the max-over-ranks amplification).
  Team team(noisy_machine(2, 1, 0.05, 1e-3));
  std::array<double, 64> marks0{}, marks1{};
  team.run([&](Rank& me) {
    auto& marks = me.id() == 0 ? marks0 : marks1;
    for (int i = 0; i < 64; ++i) {
      me.charge_seconds(0.01);
      marks[static_cast<std::size_t>(i)] = me.clock().now();
    }
  });
  int identical = 0;
  for (std::size_t i = 0; i < 64; ++i)
    identical += marks0[i] == marks1[i];
  EXPECT_LT(identical, 60);  // some coincide before the first preemption
}

TEST(Noise, BulkSynchronousAmplification) {
  // The paper's Section 2 argument: with per-step synchronization, each
  // step pays the *max* preemption over ranks, so the same work loses more
  // time than an asynchronous schedule that only syncs once at the end.
  const double interval = 0.02, dur = 2e-3;
  const int steps = 50;
  const double step_work = 0.01;

  Team sync_team(noisy_machine(8, 1, interval, dur));
  sync_team.run([&](Rank& me) {
    for (int s = 0; s < steps; ++s) {
      me.charge_seconds(step_work);
      me.barrier();
    }
  });
  const double t_sync = sync_team.max_clock();

  Team async_team(noisy_machine(8, 1, interval, dur));
  async_team.run([&](Rank& me) {
    for (int s = 0; s < steps; ++s) me.charge_seconds(step_work);
    me.barrier();
  });
  const double t_async = async_team.max_clock();

  // Same total work and identical per-rank noise draws; the synchronized
  // schedule must be meaningfully slower (beyond its barrier costs).
  const double barrier_cost = 50 * 3 * sync_team.machine().barrier_hop_latency;
  EXPECT_GT(t_sync - barrier_cost, t_async * 1.05);
}

TEST(Noise, ResetRestartsTheSequence) {
  Team team(noisy_machine(1, 1, 0.03, 1e-3));
  double a = 0.0, b = 0.0;
  team.run([&](Rank& me) {
    me.charge_seconds(1.0);
    a = me.clock().now();
  });
  team.reset();
  team.run([&](Rank& me) {
    me.charge_seconds(1.0);
    b = me.clock().now();
  });
  EXPECT_DOUBLE_EQ(a, b);
}

// Deeper prefetch rides out injected straggler transfers: an occasional
// get that completes 80x late stalls a lookahead-1 pipeline for most of
// its duration (only one task of compute is in flight to hide it), while
// a depth-4 pipeline issued that get four tasks early — the modeled
// completion time must improve.  (A *uniformly* slow link would not show
// this: that regime is bandwidth-bound and no prefetch depth helps.)
TEST(Noise, LookaheadHidesStragglerTransfers) {
  auto phantom_elapsed = [](int lookahead) {
    Team team(MachineModel::testing(2, 1));
    fault::FaultConfig f;
    f.seed = 5;
    f.delay_rate = 0.05;
    f.delay_factor = 80.0;
    RmaConfig cfg;
    cfg.faults = f;
    RmaRuntime rma(team, cfg);
    SrummaOptions opt;
    opt.shm_flavor = ShmFlavor::Copy;
    opt.lookahead = lookahead;
    opt.k_chunk = 16;
    const index_t n = 512;
    double elapsed = 0.0;
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, n, n, ProcGrid{2, 1}, /*phantom=*/true);
      DistMatrix b(rma, me, n, n, ProcGrid{2, 1}, /*phantom=*/true);
      DistMatrix c(rma, me, n, n, ProcGrid{2, 1}, /*phantom=*/true);
      MultiplyResult r = srumma_multiply(me, a, b, c, opt);
      if (me.id() == 0) elapsed = r.elapsed;
    });
    return elapsed;
  };

  const double shallow = phantom_elapsed(1);
  const double deep = phantom_elapsed(4);
  EXPECT_LT(deep, 0.95 * shallow);
}

}  // namespace
}  // namespace srumma
