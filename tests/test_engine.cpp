// Dependency-driven task engine (src/engine, docs/ENGINE.md): the engine
// must produce bitwise-identical C to the static pipeline on every
// configuration (transposes, flavors, chunking, blocking mode, faults,
// cache), reconcile its steal ledger exactly
// (engine_tasks + tasks_stolen == copy_tasks + direct_tasks == gemm_calls),
// re-arm failed fetches without requeues, and actually steal work from
// straggler-bound domain mates.

#include <gtest/gtest.h>

#include <string>

#include "core/srumma.hpp"
#include "engine/engine.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using blas::Trans;

// Small-integer fill: every product and partial sum is exactly
// representable, so engine-vs-pipeline and engine-vs-serial comparisons can
// demand bitwise equality (diff exactly 0.0) rather than a tolerance.
void fill_ints(MatrixView v, std::uint64_t seed) {
  Rng rng(seed);
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i)
      v(i, j) = static_cast<double>(static_cast<int>(rng.below(9))) - 4.0;
}

struct EngineRun {
  Matrix c;
  MultiplyResult result;
  TraceCounters trace;
};

EngineRun run_multiply(const MachineModel& mm, ProcGrid grid, index_t m,
                       index_t n, index_t k, const RmaConfig& cfg,
                       SrummaOptions opt, EngineMode mode,
                       std::uint64_t seed) {
  opt.engine = mode;
  Team team(mm);
  RmaRuntime rma(team, cfg);
  const bool tra = opt.ta == Trans::Yes;
  const bool trb = opt.tb == Trans::Yes;
  Matrix a_g(tra ? k : m, tra ? m : k);
  Matrix b_g(trb ? n : k, trb ? k : n);
  fill_ints(a_g.view(), seed);
  fill_ints(b_g.view(), seed + 1);
  Matrix c_init(m, n);
  fill_ints(c_init.view(), seed + 2);

  EngineRun out{Matrix(m, n), {}, {}};
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, a_g.rows(), a_g.cols(), grid);
    DistMatrix b(rma, me, b_g.rows(), b_g.cols(), grid);
    DistMatrix c(rma, me, m, n, grid);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    c.scatter_from(me, c_init.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out.result = r;
    c.gather_to(me, out.c.view());
  });
  out.trace = team.total_trace();
  return out;
}

// The reconciliation identities every engine run must satisfy exactly.
void expect_engine_ledger(const TraceCounters& t, const std::string& label) {
  EXPECT_EQ(t.engine_tasks + t.tasks_stolen, t.copy_tasks + t.direct_tasks)
      << label;
  EXPECT_EQ(t.copy_tasks + t.direct_tasks, t.gemm_calls) << label;
  EXPECT_EQ(t.task_requeues, 0u) << label;  // re-arm replaces requeue
}

TEST(Engine, BitwiseIdenticalToPipelineAcrossConfigs) {
  struct Case {
    MachineModel mm;
    ProcGrid grid;
    index_t m, n, k;
    SrummaOptions opt;
    RmaConfig cfg;
    const char* label;
  };
  std::vector<Case> cases;
  {
    Case c{MachineModel::testing(2, 2), ProcGrid{2, 2}, 24, 24, 24,
           SrummaOptions{}, RmaConfig{}, "default-2x2-cluster"};
    cases.push_back(c);
  }
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Case c{MachineModel::testing(2, 2), ProcGrid{2, 2}, 15, 11, 19,
             SrummaOptions{}, RmaConfig{}, "transpose"};
      c.opt.ta = ta;
      c.opt.tb = tb;
      cases.push_back(c);
    }
  }
  {
    Case c{MachineModel::cray_x1(1), ProcGrid{2, 2}, 20, 20, 20,
           SrummaOptions{}, RmaConfig{}, "x1-copy-flavor"};
    c.opt.shm_flavor = ShmFlavor::Copy;
    cases.push_back(c);
  }
  {
    Case c{MachineModel::sgi_altix(4), ProcGrid{2, 2}, 20, 20, 20,
           SrummaOptions{}, RmaConfig{}, "altix-direct"};
    cases.push_back(c);
  }
  {
    Case c{MachineModel::testing(2, 2), ProcGrid{2, 2}, 24, 24, 24,
           SrummaOptions{}, RmaConfig{}, "blocking"};
    c.opt.nonblocking = false;
    cases.push_back(c);
  }
  {
    Case c{MachineModel::testing(3, 2), ProcGrid{3, 2}, 21, 10, 33,
           SrummaOptions{}, RmaConfig{}, "tiled-odd-dims"};
    c.opt.c_chunk = 6;
    c.opt.k_chunk = 5;
    cases.push_back(c);
  }
  {
    Case c{MachineModel::testing(2, 2), ProcGrid{2, 2}, 32, 32, 32,
           SrummaOptions{}, RmaConfig{}, "faults-verify"};
    fault::FaultConfig f;
    f.seed = 77;
    f.fail_rate = 0.05;
    f.corrupt_rate = 0.05;
    RetryPolicy rp;
    rp.max_attempts = 8;
    c.cfg.faults = f;
    c.cfg.retry = rp;
    c.opt.shm_flavor = ShmFlavor::Copy;
    c.opt.verify_checksums = true;
    c.opt.c_chunk = 8;
    cases.push_back(c);
  }
  {
    Case c{MachineModel::testing(2, 2), ProcGrid{2, 2}, 32, 32, 32,
           SrummaOptions{}, RmaConfig{}, "cache-on"};
    c.cfg.cache = true;
    c.cfg.cache_capacity = std::uint64_t{64} << 20;
    c.opt.c_chunk = 8;
    c.opt.ordering.a_reuse = false;  // make repeat touches visible to the cache
    cases.push_back(c);
  }
  {
    Case c{MachineModel::linux_myrinet(2), ProcGrid{2, 2}, 32, 32, 32,
           SrummaOptions{}, RmaConfig{}, "myrinet-multi-domain"};
    c.opt.c_chunk = 8;
    cases.push_back(c);
  }

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& sc = cases[i];
    const std::string label =
        std::string(sc.label) + " (case " + std::to_string(i) + ")";
    const std::uint64_t seed = 100 + i;
    EngineRun off = run_multiply(sc.mm, sc.grid, sc.m, sc.n, sc.k, sc.cfg,
                                 sc.opt, EngineMode::Off, seed);
    EngineRun on = run_multiply(sc.mm, sc.grid, sc.m, sc.n, sc.k, sc.cfg,
                                sc.opt, EngineMode::On, seed);
    EXPECT_EQ(max_abs_diff(on.c.view(), off.c.view()), 0.0) << label;
    // The pipeline satisfies the classification identity; the engine adds
    // the steal ledger on top.
    EXPECT_EQ(off.trace.copy_tasks + off.trace.direct_tasks,
              off.trace.gemm_calls)
        << label;
    EXPECT_EQ(off.trace.engine_tasks + off.trace.tasks_stolen, 0u) << label;
    expect_engine_ledger(on.trace, label);
    EXPECT_GT(on.trace.engine_tasks, 0u) << label;
  }
}

TEST(Engine, StragglerNodeTriggersStealsThatReconcile) {
  // Two dual-CPU nodes with node 1's links 8x slow: node 1's ranks see
  // their remote fetches land far in the virtual future, so each should
  // export work to its domain mate (and the fast node's ranks drain their
  // mates' pools when they run out of own work).  The stolen products must
  // still land bitwise-identically, with the ledger exact.
  fault::FaultConfig f;
  f.seed = 5;
  f.straggler_node = 1;
  f.straggler_factor = 8.0;
  RmaConfig cfg;
  cfg.faults = f;
  SrummaOptions opt;
  opt.c_chunk = 8;
  opt.k_chunk = 8;

  const index_t n = 64;
  EngineRun off = run_multiply(MachineModel::linux_myrinet(2), ProcGrid{2, 2},
                               n, n, n, cfg, opt, EngineMode::Off, 21);
  EngineRun on = run_multiply(MachineModel::linux_myrinet(2), ProcGrid{2, 2},
                              n, n, n, cfg, opt, EngineMode::On, 21);
  EXPECT_EQ(max_abs_diff(on.c.view(), off.c.view()), 0.0);
  expect_engine_ledger(on.trace, "straggler-steal");
  EXPECT_GT(on.trace.tasks_stolen, 0u);
  EXPECT_GT(on.trace.engine_tasks, 0u);
}

TEST(Engine, SingleDomainNeverSteals) {
  // One shared-memory domain: every operand is in-domain, the steal boards
  // stay empty, and the whole plan executes as owner work.
  EngineRun on = run_multiply(MachineModel::sgi_altix(4), ProcGrid{2, 2}, 24,
                              24, 24, RmaConfig{}, SrummaOptions{},
                              EngineMode::On, 33);
  expect_engine_ledger(on.trace, "single-domain");
  EXPECT_EQ(on.trace.tasks_stolen, 0u);
  EXPECT_GT(on.trace.engine_tasks, 0u);
}

TEST(Engine, BlockingFaultsCacheStayBitwiseAndReconciled) {
  // The hard corner all at once: blocking mode (no prefetch window), a
  // fault plane injecting failures and corruption (with the verify pass
  // repairing it), and the cooperative block cache sharing fetches.  Both
  // executors must produce the exact serial result and keep their
  // accounting identities; the engine must do it without a single requeue.
  fault::FaultConfig f;
  f.seed = 9;
  f.fail_rate = 0.1;
  f.corrupt_rate = 0.1;
  RetryPolicy rp;
  rp.max_attempts = 6;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  cfg.cache = true;
  cfg.cache_capacity = std::uint64_t{64} << 20;
  SrummaOptions opt;
  opt.nonblocking = false;
  opt.shm_flavor = ShmFlavor::Copy;
  opt.verify_checksums = true;
  opt.c_chunk = 8;
  opt.k_chunk = 8;

  const index_t n = 32;
  // beta = 0 (the default), so both runs must reproduce A*B exactly no
  // matter what c_init held; fill seeds match run_multiply's (seed, seed+1).
  Matrix a_g(n, n), b_g(n, n), ref(n, n);
  fill_ints(a_g.view(), 40);
  fill_ints(b_g.view(), 41);
  ref.view().fill(0.0);
  testing::reference_gemm(Trans::No, Trans::No, 1.0, a_g, b_g, 0.0, ref);

  EngineRun off = run_multiply(MachineModel::testing(2, 2), ProcGrid{2, 2}, n,
                               n, n, cfg, opt, EngineMode::Off, 40);
  EngineRun on = run_multiply(MachineModel::testing(2, 2), ProcGrid{2, 2}, n,
                              n, n, cfg, opt, EngineMode::On, 40);
  EXPECT_EQ(max_abs_diff(off.c.view(), ref.view()), 0.0);
  EXPECT_EQ(max_abs_diff(on.c.view(), ref.view()), 0.0);
  EXPECT_EQ(off.trace.copy_tasks + off.trace.direct_tasks,
            off.trace.gemm_calls);
  expect_engine_ledger(on.trace, "blocking-faults-cache");
  EXPECT_GT(on.trace.faults_injected + on.trace.faults_corrupted, 0u);
}

TEST(Engine, EnvSelectionResolvesAutoOnly) {
  // EngineMode::Auto defers to SRUMMA_ENGINE; explicit modes ignore it.
  EXPECT_TRUE(engine::selected(EngineMode::On));
  EXPECT_FALSE(engine::selected(EngineMode::Off));
  // Auto's answer depends on the environment this test runs under (tier 1g
  // sets SRUMMA_ENGINE=1); both answers are legal, it just must not throw.
  (void)engine::selected(EngineMode::Auto);
}

}  // namespace
}  // namespace srumma
