// SRUMMA end-to-end correctness: the distributed multiply must match the
// serial reference across grids, shapes, transposes, ordering policies,
// flavors, chunk sizes, machines, and alpha/beta — plus pipeline/trace
// behaviour checks.

#include <gtest/gtest.h>

#include "core/srumma.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using blas::Trans;

struct SrummaCase {
  MachineModel machine;
  ProcGrid grid;
  index_t m, n, k;
  SrummaOptions opt;
  const char* label;
};

// Run one full distributed multiply and compare against the naive kernel.
void run_case(const SrummaCase& sc) {
  Team team(sc.machine);
  RmaRuntime rma(team);
  const bool tra = sc.opt.ta == Trans::Yes;
  const bool trb = sc.opt.tb == Trans::Yes;
  const index_t a_rows = tra ? sc.k : sc.m;
  const index_t a_cols = tra ? sc.m : sc.k;
  const index_t b_rows = trb ? sc.n : sc.k;
  const index_t b_cols = trb ? sc.k : sc.n;

  Matrix a_global = testing::coords_matrix(a_rows, a_cols);
  Matrix b_global(b_rows, b_cols);
  fill_random(b_global.view(), 77);
  Matrix c_init(sc.m, sc.n);
  fill_random(c_init.view(), 88);
  Matrix c_ref = c_init;
  testing::reference_gemm(sc.opt.ta, sc.opt.tb, sc.opt.alpha, a_global,
                          b_global, sc.opt.beta, c_ref);

  Matrix c_out(sc.m, sc.n);
  MultiplyResult result;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, a_rows, a_cols, sc.grid);
    DistMatrix b(rma, me, b_rows, b_cols, sc.grid);
    DistMatrix c(rma, me, sc.m, sc.n, sc.grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());
    c.scatter_from(me, c_init.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, sc.opt);
    if (me.id() == 0) result = r;
    c.gather_to(me, c_out.view());
  });

  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(sc.k))
      << sc.label;
  EXPECT_GT(result.elapsed, 0.0) << sc.label;
  EXPECT_NEAR(result.trace.flops,
              2.0 * static_cast<double>(sc.m) * static_cast<double>(sc.n) *
                  static_cast<double>(sc.k),
              1.0)
      << sc.label;
}

class SrummaSweep : public ::testing::TestWithParam<SrummaCase> {};

TEST_P(SrummaSweep, MatchesReference) { run_case(GetParam()); }

std::vector<SrummaCase> sweep_cases() {
  std::vector<SrummaCase> cases;
  auto base = [](int nodes, int rpn, int p, int q) {
    SrummaCase sc{MachineModel::testing(nodes, rpn), ProcGrid{p, q}, 24, 24,
                  24, SrummaOptions{}, ""};
    return sc;
  };

  {  // single rank
    auto sc = base(1, 1, 1, 1);
    sc.label = "single-rank";
    cases.push_back(sc);
  }
  {  // 2x2 on a 2-node cluster, square
    auto sc = base(2, 2, 2, 2);
    sc.label = "2x2-cluster";
    cases.push_back(sc);
  }
  {  // non-square grid, non-divisible dims
    auto sc = base(3, 2, 3, 2);
    sc.m = 17;
    sc.n = 13;
    sc.k = 23;
    sc.label = "3x2-odd-dims";
    cases.push_back(sc);
  }
  {  // rectangular: wide C, deep K (paper Section 4.2)
    auto sc = base(2, 2, 2, 2);
    sc.m = 8;
    sc.n = 30;
    sc.k = 50;
    sc.label = "rectangular-mnk";
    cases.push_back(sc);
  }
  {  // more ranks than some dimension
    auto sc = base(4, 2, 4, 2);
    sc.m = 6;
    sc.n = 7;
    sc.k = 40;
    sc.label = "tiny-m";
    cases.push_back(sc);
  }
  // All transpose variants (paper Section 4.2) on an odd-shaped problem.
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      auto sc = base(2, 2, 2, 2);
      sc.m = 15;
      sc.n = 11;
      sc.k = 19;
      sc.opt.ta = ta;
      sc.opt.tb = tb;
      sc.label = "transpose-variant";
      cases.push_back(sc);
    }
  }
  // Ordering policies, including ablations.
  for (auto policy :
       {OrderingPolicy::naive(), OrderingPolicy{true, false, false},
        OrderingPolicy{true, true, false}, OrderingPolicy::full()}) {
    auto sc = base(2, 2, 2, 2);
    sc.m = sc.n = sc.k = 20;
    sc.opt.ordering = policy;
    sc.label = "ordering-policy";
    cases.push_back(sc);
  }
  {  // blocking pipeline (Fig. 9 arm)
    auto sc = base(2, 2, 2, 2);
    sc.opt.nonblocking = false;
    sc.label = "blocking";
    cases.push_back(sc);
  }
  {  // copy flavor on a single-domain machine (Cray X1 style)
    auto sc = base(1, 1, 2, 2);
    sc.machine = MachineModel::cray_x1(1);  // 4 MSPs, one domain
    sc.opt.shm_flavor = ShmFlavor::Copy;
    sc.label = "x1-copy-flavor";
    cases.push_back(sc);
  }
  {  // direct flavor on a single-domain machine (Altix style)
    auto sc = base(1, 1, 2, 2);
    sc.machine = MachineModel::sgi_altix(4);
    sc.opt.shm_flavor = ShmFlavor::Direct;
    sc.label = "altix-direct-flavor";
    cases.push_back(sc);
  }
  // K-chunking and C-tiling.
  for (index_t kc : {3, 7}) {
    auto sc = base(2, 2, 2, 2);
    sc.m = sc.n = sc.k = 22;
    sc.opt.k_chunk = kc;
    sc.label = "k-chunked";
    cases.push_back(sc);
  }
  {
    auto sc = base(2, 2, 2, 2);
    sc.m = sc.n = sc.k = 24;
    sc.opt.c_chunk = 5;
    sc.opt.k_chunk = 6;
    sc.label = "c-tiled";
    cases.push_back(sc);
  }
  // alpha/beta combinations.
  for (double alpha : {2.0, -0.5}) {
    for (double beta : {0.0, 1.0, -1.0}) {
      auto sc = base(2, 2, 2, 2);
      sc.m = sc.n = sc.k = 16;
      sc.opt.alpha = alpha;
      sc.opt.beta = beta;
      sc.label = "alpha-beta";
      cases.push_back(sc);
    }
  }
  // Deeper prefetch pipelines (extension beyond the paper's double buffer).
  for (int lookahead : {2, 4, 7}) {
    auto sc = base(2, 2, 2, 2);
    sc.m = sc.n = sc.k = 26;
    sc.opt.lookahead = lookahead;
    sc.opt.k_chunk = 4;
    sc.label = "lookahead";
    cases.push_back(sc);
  }
  {  // the A-run-splitting pattern: C tiling + mixed shm/remote owners +
     // shm-first partition + A-reuse.  Regression guard for the pipeline's
     // buffer eviction (a naive rotation clobbers a still-referenced A
     // buffer on exactly this shape).
    auto sc = base(2, 2, 2, 2);
    sc.m = 16;
    sc.n = 24;
    sc.k = 16;
    sc.opt.c_chunk = 4;   // several cj tiles per (ci, k) group
    sc.opt.k_chunk = 4;
    sc.opt.ordering = OrderingPolicy::full();
    sc.label = "a-run-split-regression";
    cases.push_back(sc);
  }
  {  // transpose + rectangular + chunking, the works
    auto sc = base(3, 2, 2, 3);
    sc.m = 21;
    sc.n = 10;
    sc.k = 33;
    sc.opt.ta = Trans::Yes;
    sc.opt.tb = Trans::Yes;
    sc.opt.k_chunk = 5;
    sc.opt.c_chunk = 6;
    sc.label = "everything-at-once";
    cases.push_back(sc);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SrummaSweep, ::testing::ValuesIn(sweep_cases()));

TEST(Srumma, BufferFootprintAccounting) {
  // The paper's memory-efficiency claim, as invariants: direct access needs
  // zero buffers; chunking caps the footprint; the cap is respected in
  // phantom mode too (same accounting path).
  {
    Team team(MachineModel::sgi_altix(4));
    RmaRuntime rma(team);
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, 512, 512, ProcGrid{2, 2}, true);
      DistMatrix b(rma, me, 512, 512, ProcGrid{2, 2}, true);
      DistMatrix c(rma, me, 512, 512, ProcGrid{2, 2}, true);
      MultiplyResult r = srumma_multiply(me, a, b, c, SrummaOptions{});
      EXPECT_EQ(r.trace.buffer_bytes_peak, 0u);  // all tasks direct
    });
  }
  {
    Team team(MachineModel::testing(2, 2));
    RmaRuntime rma(team);
    std::uint64_t open_bytes = 0, capped_bytes = 0;
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, 512, 512, ProcGrid{2, 2}, true);
      DistMatrix b(rma, me, 512, 512, ProcGrid{2, 2}, true);
      DistMatrix c(rma, me, 512, 512, ProcGrid{2, 2}, true);
      // Capped first: buffer_bytes_peak is a per-team high-water mark, so
      // the small run must be measured before the open one raises the bar.
      SrummaOptions capped;
      capped.c_chunk = 32;
      capped.k_chunk = 32;
      MultiplyResult r1 = srumma_multiply(me, a, b, c, capped);
      MultiplyResult r2 = srumma_multiply(me, a, b, c, SrummaOptions{});
      if (me.id() == 0) {
        capped_bytes = r1.trace.buffer_bytes_peak;
        open_bytes = r2.trace.buffer_bytes_peak;
      }
    });
    EXPECT_GT(open_bytes, 0u);
    EXPECT_LT(capped_bytes, open_bytes);
    // Capped: at most (lookahead+2) A + (lookahead+1) B patches of 32x32.
    EXPECT_LE(capped_bytes, 5u * 32 * 32 * sizeof(double));
  }
}

TEST(Srumma, PeakSurvivesLaterSmallerMultiply) {
  // Regression: buffer_bytes_peak is a high-water mark, so a second,
  // smaller multiply on the same team must not erase the first one's
  // peak.  (The bug was a plain assignment instead of a max-accumulate in
  // the pipeline epilogue: the tightly tiled second run overwrote the open
  // run's footprint and benches under-reported memory use.)
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  std::uint64_t open_peak = 0, later_peak = 0;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 256, 256, ProcGrid{2, 2}, true);
    DistMatrix b(rma, me, 256, 256, ProcGrid{2, 2}, true);
    DistMatrix c(rma, me, 256, 256, ProcGrid{2, 2}, true);
    MultiplyResult open_run = srumma_multiply(me, a, b, c, SrummaOptions{});
    SrummaOptions capped;
    capped.c_chunk = 16;
    capped.k_chunk = 16;
    MultiplyResult capped_run = srumma_multiply(me, a, b, c, capped);
    if (me.id() == 0) {
      open_peak = open_run.trace.buffer_bytes_peak;
      later_peak = capped_run.trace.buffer_bytes_peak;
    }
  });
  EXPECT_GT(open_peak, 0u);
  EXPECT_GE(later_peak, open_peak);
}

TEST(Srumma, MemoryBudgetRespectedAndCorrect) {
  // max_buffer_bytes shrinks the tiling until the pipeline fits, without
  // changing the numerical result.
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(64, 64);
  Matrix b_g(64, 64);
  fill_random(b_g.view(), 8);
  Matrix c_ref(64, 64);
  testing::reference_gemm(Trans::No, Trans::No, 1.0, a_g, b_g, 0.0, c_ref);
  Matrix c_out(64, 64);
  std::uint64_t peak = 0;
  const std::uint64_t budget = 16 * 1024;  // 16 KB per rank
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 64, 64, ProcGrid{2, 2});
    DistMatrix b(rma, me, 64, 64, ProcGrid{2, 2});
    DistMatrix c(rma, me, 64, 64, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    SrummaOptions opt;
    opt.max_buffer_bytes = budget;
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) peak = r.trace.buffer_bytes_peak;
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(64));
  EXPECT_LE(peak, budget);
  EXPECT_GT(peak, 0u);
}

TEST(Srumma, MixedGridsPerMatrix) {
  // SRUMMA only needs one-sided access to A and B: the three matrices may
  // live on entirely different process grids (a property message-passing
  // algorithms like SUMMA/Cannon cannot offer — they need aligned panels).
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(18, 20);
  Matrix b_g(20, 14);
  fill_random(b_g.view(), 55);
  Matrix c_ref(18, 14);
  testing::reference_gemm(Trans::No, Trans::No, 1.0, a_g, b_g, 0.0, c_ref);
  Matrix c_out(18, 14);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 18, 20, ProcGrid{4, 1});  // row strips
    DistMatrix b(rma, me, 20, 14, ProcGrid{1, 4});  // column strips
    DistMatrix c(rma, me, 18, 14, ProcGrid{2, 2});  // square grid
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    srumma_multiply(me, a, b, c, SrummaOptions{});
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(20));
}

TEST(Srumma, RepeatedCallsAccumulateCorrectly) {
  // C = A*B then C += A*B gives 2*A*B.
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(12, 12);
  Matrix b_g(12, 12);
  fill_random(b_g.view(), 5);
  Matrix ref(12, 12);
  testing::reference_gemm(Trans::No, Trans::No, 2.0, a_g, b_g, 0.0, ref);
  Matrix out(12, 12);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 12, 12, ProcGrid{2, 2});
    DistMatrix b(rma, me, 12, 12, ProcGrid{2, 2});
    DistMatrix c(rma, me, 12, 12, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    SrummaOptions opt;
    opt.beta = 0.0;
    srumma_multiply(me, a, b, c, opt);
    opt.beta = 1.0;
    srumma_multiply(me, a, b, c, opt);
    c.gather_to(me, out.view());
  });
  EXPECT_LE(max_abs_diff(out.view(), ref.view()), testing::gemm_tolerance(24));
}

TEST(Srumma, DirectFlavorUsesNoCopiesOnSingleDomain) {
  Team team(MachineModel::sgi_altix(4));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(16, 16);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix b(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix c(rma, me, 16, 16, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, a_g.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, SrummaOptions{});
    // Every task direct, zero communication bytes.
    EXPECT_EQ(r.trace.copy_tasks, 0u);
    EXPECT_GT(r.trace.direct_tasks, 0u);
    EXPECT_EQ(r.trace.bytes_shm + r.trace.bytes_remote, 0u);
  });
}

TEST(Srumma, CopyFlavorMovesBytes) {
  Team team(MachineModel::cray_x1(1));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(16, 16);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix b(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix c(rma, me, 16, 16, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, a_g.view());
    SrummaOptions opt;
    opt.shm_flavor = ShmFlavor::Copy;
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    EXPECT_EQ(r.trace.direct_tasks, 0u);
    EXPECT_GT(r.trace.bytes_shm, 0u);
  });
}

TEST(Srumma, ClusterRunSplitsShmAndRemoteTraffic) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Matrix a_g = testing::coords_matrix(16, 16);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix b(rma, me, 16, 16, ProcGrid{2, 2});
    DistMatrix c(rma, me, 16, 16, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, a_g.view());
    MultiplyResult r = srumma_multiply(me, a, b, c, SrummaOptions{});
    // On a 2-node machine both kinds of traffic appear (direct flavor can
    // view the same-domain blocks, but cross-node panels must be fetched).
    EXPECT_GT(r.trace.bytes_remote, 0u);
    EXPECT_GE(r.overlap, 0.0);
    EXPECT_LE(r.overlap, 1.0);
  });
}

TEST(Srumma, PhantomRunMatchesRealRunTiming) {
  // The virtual-time outcome must not depend on whether data exists:
  // phantom mode exists precisely so huge benches can trust it.
  const MachineModel machine = MachineModel::testing(2, 2);
  auto run_once = [&](bool phantom) {
    Team team(machine);
    RmaRuntime rma(team);
    double elapsed = 0.0;
    Matrix a_g = testing::coords_matrix(24, 24);
    team.run([&](Rank& me) {
      DistMatrix a(rma, me, 24, 24, ProcGrid{2, 2}, phantom);
      DistMatrix b(rma, me, 24, 24, ProcGrid{2, 2}, phantom);
      DistMatrix c(rma, me, 24, 24, ProcGrid{2, 2}, phantom);
      if (!phantom) {
        a.scatter_from(me, a_g.view());
        b.scatter_from(me, a_g.view());
      }
      // Pin the static pipeline: engine timings are schedule-dependent
      // (steal decisions race in real time), so a timing-equality assertion
      // only holds for the deterministic executor.
      SrummaOptions opt;
      opt.engine = EngineMode::Off;
      MultiplyResult r = srumma_multiply(me, a, b, c, opt);
      if (me.id() == 0) elapsed = r.elapsed;
    });
    return elapsed;
  };
  const double real = run_once(false);
  const double phantom = run_once(true);
  EXPECT_NEAR(real, phantom, real * 1e-9);
}

TEST(Srumma, MismatchedPhantomFlagsThrow) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    DistMatrix a(rma, me, 8, 8, ProcGrid{2, 1}, true);
    DistMatrix b(rma, me, 8, 8, ProcGrid{2, 1}, false);
    DistMatrix c(rma, me, 8, 8, ProcGrid{2, 1}, false);
    srumma_multiply(me, a, b, c, SrummaOptions{});
  }),
               Error);
}

TEST(Srumma, NonblockingBeatsBlockingOnClusters) {
  // The pipeline must hide remote latency: nonblocking virtual time strictly
  // below blocking virtual time on a multi-node machine (Fig. 9's claim).
  Team team(MachineModel::testing(4, 2));
  RmaRuntime rma(team);
  double t_nb = 0.0, t_bl = 0.0;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 256, 256, ProcGrid{4, 2}, true);
    DistMatrix b(rma, me, 256, 256, ProcGrid{4, 2}, true);
    DistMatrix c(rma, me, 256, 256, ProcGrid{4, 2}, true);
    SrummaOptions opt;
    // Deterministic-timing comparison: pin the static pipeline (engine
    // steal decisions race in real time and can reorder either arm).
    opt.engine = EngineMode::Off;
    opt.nonblocking = true;
    MultiplyResult r1 = srumma_multiply(me, a, b, c, opt);
    opt.nonblocking = false;
    MultiplyResult r2 = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) {
      t_nb = r1.elapsed;
      t_bl = r2.elapsed;
    }
  });
  EXPECT_LT(t_nb, t_bl);
}

}  // namespace
}  // namespace srumma
