// Tests for the one-sided (ARMCI-model) runtime: collective symmetric
// allocation, get/put data correctness under real concurrency, protocol
// timing (latency, bandwidth, zero-copy host steal), and phantom mode.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rma/rma.hpp"
#include "runtime/team.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

TEST(RmaAlloc, SymmetricBasesVisibleEverywhere) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 16);
    for (int peer = 0; peer < team.size(); ++peer)
      EXPECT_NE(r.base(peer), nullptr);
    // My segment is writable and zero-initialized.
    EXPECT_EQ(r.base(me.id())[7], 0.0);
    r.base(me.id())[7] = static_cast<double>(me.id());
    me.barrier();
    // Shared address space: peers' writes are visible after a barrier.
    EXPECT_EQ(r.base((me.id() + 1) % team.size())[7],
              static_cast<double>((me.id() + 1) % team.size()));
  });
}

TEST(RmaAlloc, DifferentSizesPerRank) {
  Team team(MachineModel::testing(3, 1));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r =
        rma.malloc_symmetric(me, static_cast<std::size_t>(me.id() + 1) * 8);
    EXPECT_NE(r.base(2), nullptr);
  });
}

TEST(RmaAlloc, PhantomSegmentsAreNull) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 0);
    EXPECT_EQ(r.base(0), nullptr);
    EXPECT_EQ(r.base(1), nullptr);
  });
}

TEST(RmaAlloc, FreeIsCollectiveAndChecked) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 8);
    rma.free_symmetric(me, r);
    EXPECT_THROW(rma.free_symmetric(me, r), Error);  // double free
  });
}

TEST(RmaAlloc, SequentialAllocationsMatchAcrossRanks) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r1 = rma.malloc_symmetric(me, 4);
    SymmetricRegion r2 = rma.malloc_symmetric(me, 4);
    EXPECT_NE(r1.seq, r2.seq);
    EXPECT_NE(r1.base(me.id()), r2.base(me.id()));
  });
}

TEST(RmaGet, MovesDataBetweenRanks) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 64);
    for (int i = 0; i < 64; ++i)
      r.base(me.id())[i] = 100.0 * me.id() + i;
    me.barrier();
    const int peer = (me.id() + 1) % team.size();
    double buf[64];
    RmaHandle h = rma.nbget(me, peer, r.base(peer), buf, 64);
    rma.wait(me, h);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(buf[i], 100.0 * peer + i);
    EXPECT_EQ(me.trace().gets, 1u);
  });
}

TEST(RmaGet, Strided2dRespectsLeadingDims) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 6 * 5);  // 6x5 block
    MatrixView mine(r.base(me.id()), 6, 5, 6);
    fill_coords(mine, me.id() * 6, 0);
    me.barrier();
    const int peer = 1 - me.id();
    Matrix dst(10, 10);
    // Fetch peer's interior 3x2 patch at (2,1) into dst at (4,3).
    RmaHandle h = rma.nbget2d(me, peer, r.base(peer) + 2 + 1 * 6, 6, 3, 2,
                              &dst(4, 3), dst.ld());
    rma.wait(me, h);
    Matrix expect(3, 2);
    fill_coords(expect.view(), peer * 6 + 2, 1);
    EXPECT_EQ(max_abs_diff(dst.block(4, 3, 3, 2), expect.view()), 0.0);
  });
}

TEST(RmaPut, MovesDataToOwner) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 8);
    me.barrier();
    if (me.id() == 0) {
      double src[8];
      for (int i = 0; i < 8; ++i) src[i] = 7.0 + i;
      RmaHandle h = rma.nbput2d(me, 1, src, 8, 8, 1, r.base(1), 8);
      rma.wait(me, h);
      EXPECT_EQ(me.trace().puts, 1u);
    }
    me.barrier();
    if (me.id() == 1) {
      EXPECT_EQ(r.base(1)[3], 10.0);
    }
  });
}

TEST(RmaTiming, IntraDomainChargesSynchronously) {
  // Shared-memory copies are CPU-executed: the clock advances at issue and
  // wait() is (nearly) free — no fake overlap on shared-memory machines.
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 1 << 14);
    me.barrier();
    const double t0 = me.clock().now();
    const std::size_t elems = 1 << 14;
    RmaHandle h =
        rma.nbget(me, 1 - me.id(), r.base(1 - me.id()), nullptr, elems);
    const double issue_cost = me.clock().now() - t0;
    const double expected = mm.rma_issue_overhead + mm.shm_latency +
                            static_cast<double>(elems * 8) / mm.shm_bw;
    EXPECT_GE(issue_cost, expected * 0.99);
    rma.wait(me, h);
    EXPECT_EQ(me.trace().bytes_shm, elems * 8);
    EXPECT_EQ(me.trace().bytes_remote, 0u);
  });
}

TEST(RmaTiming, RemoteGetOverlapsUntilWait) {
  // Inter-node zero-copy gets complete in the background: issue is cheap,
  // and the wait at completion reflects latency + wire time.
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 1 << 15);
    me.barrier();
    const double t0 = me.clock().now();
    const std::size_t elems = 1 << 15;
    RmaHandle h =
        rma.nbget(me, 1 - me.id(), r.base(1 - me.id()), nullptr, elems);
    const double issue_cost = me.clock().now() - t0;
    EXPECT_LE(issue_cost, mm.rma_issue_overhead * 1.01);  // nonblocking
    const double wire = static_cast<double>(elems * 8) / mm.net_bw;
    EXPECT_NEAR(h.completion - t0, mm.rma_issue_overhead + mm.net_latency + wire,
                1e-9);
    // Computing this long should fully hide the transfer.
    me.charge_seconds(wire * 2);
    const double before = me.clock().now();
    rma.wait(me, h);
    EXPECT_DOUBLE_EQ(me.clock().now(), before);  // already complete
    EXPECT_EQ(me.trace().bytes_remote, elems * 8);
  });
}

TEST(RmaTiming, NonZeroCopyStealsFromOwner) {
  MachineModel m = MachineModel::testing(2, 1);
  m.zero_copy = false;
  Team team(m);
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 4096);
    me.barrier();
    if (me.id() == 0) {
      RmaHandle h = rma.nbget(me, 1, r.base(1), nullptr, 4096);
      rma.wait(me, h);
    }
    me.barrier();
    if (me.id() == 1) {
      // The owner's CPU paid the host copy.
      EXPECT_NEAR(me.clock().steal_total(),
                  4096.0 * 8 / team.machine().host_copy_bw, 1e-12);
    }
  });
}

TEST(RmaTiming, ZeroCopyOverrideDisablesSteal) {
  MachineModel m = MachineModel::testing(2, 1);
  m.zero_copy = false;
  Team team(m);
  RmaConfig zc_cfg;
  zc_cfg.zero_copy = true;
  RmaRuntime rma(team, zc_cfg);
  EXPECT_TRUE(rma.zero_copy());
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 4096);
    me.barrier();
    if (me.id() == 0) {
      RmaHandle h = rma.nbget(me, 1, r.base(1), nullptr, 4096);
      rma.wait(me, h);
    }
    me.barrier();
    if (me.id() == 1) {
      EXPECT_EQ(me.clock().steal_total(), 0.0);
    }
  });
}

TEST(RmaTiming, NicContentionSerializesGetsFromOneNode) {
  // 4 single-rank nodes all pulling from node 0 at once: the last transfer
  // completes no earlier than 4x the wire time (egress NIC serialization).
  Team team(MachineModel::testing(4, 1));
  RmaRuntime rma(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 1 << 16);
    me.barrier();
    if (me.id() != 0) {
      const std::size_t elems = 1 << 16;
      RmaHandle h = rma.nbget(me, 0, r.base(0), nullptr, elems);
      rma.wait(me, h);
      team.trace_board(me.id()).time_wait = me.clock().now();
    }
    me.barrier();
    if (me.id() == 0) {
      double last = 0.0;
      for (int rk = 1; rk < 4; ++rk)
        last = std::max(last, team.trace_board(rk).time_wait);
      const double wire = (1 << 16) * 8.0 / mm.net_bw;
      EXPECT_GE(last, 3.0 * wire);  // serialized behind two predecessors
    }
  });
}

TEST(RmaAlloc, MixedZeroSizeAllocationFreesCleanly) {
  // A collective allocation where only some ranks contribute storage is
  // legal (e.g. edge ranks of an uneven block distribution): zero-size
  // ranks publish a null base, everyone still sees everyone else's, and
  // the collective free completes.
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    const std::size_t elems = me.id() == 0 ? 0 : 8;
    SymmetricRegion r = rma.malloc_symmetric(me, elems);
    EXPECT_EQ(r.base(0), nullptr);
    EXPECT_NE(r.base(1), nullptr);
    rma.free_symmetric(me, r);
    me.barrier();
  });
}

TEST(RmaAlloc, ForeignRegionFreeThrows) {
  // Two runtimes over the same team hand out colliding allocation sequence
  // numbers; free_symmetric must still reject a region the *other* runtime
  // allocated instead of silently unmapping its own.
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma1(team);
  RmaRuntime rma2(team);
  team.run([&](Rank& me) {
    SymmetricRegion r1 = rma1.malloc_symmetric(me, 8);
    SymmetricRegion r2 = rma2.malloc_symmetric(me, 8);
    try {
      rma2.free_symmetric(me, r1);
      FAIL() << "freeing a foreign region must throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("not allocated by this runtime"),
                std::string::npos);
    }
    rma1.free_symmetric(me, r1);
    rma2.free_symmetric(me, r2);
    me.barrier();
  });
}

TEST(RmaAlloc, NeverAllocatedRegionFreeThrows) {
  Team team(MachineModel::testing(1, 1));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion bogus;  // default: seq 0, no bases
    try {
      rma.free_symmetric(me, bogus);
      FAIL() << "freeing an unknown region must throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("not live"), std::string::npos);
    }
  });
}

TEST(RmaErrors, BadArgumentsThrow) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    RmaHandle h;
    EXPECT_THROW(rma.wait(me, h), Error);  // never issued
    EXPECT_THROW(rma.nbget(me, 99, nullptr, nullptr, 8), Error);
    EXPECT_THROW(rma.nbget2d(me, 0, nullptr, 1, -1, 2, nullptr, 1), Error);
    me.barrier();
  });
}

TEST(RmaErrors, Strided2dArgumentValidation) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    std::vector<double> buf(64, 0.0);
    // Leading dimension smaller than the patch height.
    EXPECT_THROW(
        rma.nbget2d(me, 0, buf.data(), 2, 4, 2, buf.data() + 32, 4), Error);
    EXPECT_THROW(
        rma.nbput2d(me, 0, buf.data(), 4, 4, 2, buf.data() + 32, 2), Error);
    // Owner rank out of range.
    EXPECT_THROW(
        rma.nbput2d(me, 2, buf.data(), 4, 4, 2, buf.data() + 32, 4), Error);
    EXPECT_THROW(rma.nbacc2d(me, -1, 1.0, buf.data(), 4, 4, 2,
                             buf.data() + 32, 4),
                 Error);
    // Negative extents.
    EXPECT_THROW(rma.nbacc2d(me, 0, 1.0, buf.data(), 4, 4, -2,
                             buf.data() + 32, 4),
                 Error);
    me.barrier();
  });
}

TEST(RmaWait, IdempotentOnCompletedHandle) {
  Team team(MachineModel::testing(1, 2));
  RmaConfig cfg;
  cfg.check = false;  // plain-runtime semantics, regardless of environment
  RmaRuntime rma(team, cfg);
  team.run([&](Rank& me) {
    std::vector<double> src(8, 1.0);
    std::vector<double> dst(8, 0.0);
    RmaHandle h = rma.nbget(me, me.id(), src.data(), dst.data(), 8);
    rma.wait(me, h);
    EXPECT_FALSE(h.pending);
    const double after_first = me.clock().now();
    EXPECT_NO_THROW(rma.wait(me, h));  // documented no-op
    EXPECT_NO_THROW(rma.wait(me, h));
    EXPECT_EQ(me.clock().now(), after_first);
    EXPECT_EQ(dst[0], 1.0);
  });
}

TEST(RmaGet, ZeroByteGetCompletesImmediately) {
  Team team(MachineModel::testing(1, 2));
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    RmaHandle h = rma.nbget(me, 1 - me.id(), nullptr, nullptr, 0);
    rma.wait(me, h);
    EXPECT_EQ(me.trace().bytes_shm + me.trace().bytes_remote, 0u);
  });
}

TEST(RmaGet, BlockingGetIncludesTransferTime) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  const MachineModel& mm = team.machine();
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 1024);
    me.barrier();
    const double t0 = me.clock().now();
    rma.get2d(me, 1 - me.id(), r.base(1 - me.id()), 1024, 1024, 1, nullptr, 1024);
    EXPECT_GE(me.clock().now() - t0,
              mm.net_latency + 1024 * 8.0 / mm.net_bw * 0.99);
  });
}

}  // namespace
}  // namespace srumma
