// Tests for the distribution layer: grids, 1-D block distribution
// (property-swept), and the DistMatrix generalized get / direct view.

#include <gtest/gtest.h>

#include "dist/dist_matrix.hpp"
#include "dist/grid.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace srumma {
namespace {

TEST(ProcGrid, ColumnMajorRanks) {
  ProcGrid g{4, 2};
  EXPECT_EQ(g.size(), 8);
  EXPECT_EQ(g.rank_of(0, 0), 0);
  EXPECT_EQ(g.rank_of(3, 0), 3);
  EXPECT_EQ(g.rank_of(0, 1), 4);
  const auto [i, j] = g.coords_of(5);
  EXPECT_EQ(i, 1);
  EXPECT_EQ(j, 1);
  EXPECT_THROW((void)g.rank_of(4, 0), Error);
  EXPECT_THROW((void)g.coords_of(8), Error);
}

TEST(ProcGrid, NearSquareFactorizations) {
  EXPECT_EQ(ProcGrid::near_square(1).p, 1);
  EXPECT_EQ(ProcGrid::near_square(4).p, 2);
  EXPECT_EQ(ProcGrid::near_square(4).q, 2);
  EXPECT_EQ(ProcGrid::near_square(12).p, 4);
  EXPECT_EQ(ProcGrid::near_square(12).q, 3);
  EXPECT_EQ(ProcGrid::near_square(128).p, 16);
  EXPECT_EQ(ProcGrid::near_square(128).q, 8);
  EXPECT_EQ(ProcGrid::near_square(7).p, 7);  // prime: 7x1
}

// Property sweep: the 1-D block distribution partitions [0, n) exactly.
class BlockDistSweep
    : public ::testing::TestWithParam<std::pair<index_t, int>> {};

TEST_P(BlockDistSweep, PartitionInvariants) {
  const auto [n, parts] = GetParam();
  BlockDist1D d(n, parts);
  index_t covered = 0;
  for (int p = 0; p < parts; ++p) {
    EXPECT_EQ(d.start(p), covered);
    EXPECT_GE(d.count(p), 0);
    // Balanced: sizes differ by at most one.
    EXPECT_LE(d.count(p), n / parts + 1);
    covered += d.count(p);
  }
  EXPECT_EQ(covered, n);
  // owner() agrees with the ranges.
  for (index_t i = 0; i < n; ++i) {
    const int o = d.owner(i);
    EXPECT_GE(i, d.start(o));
    EXPECT_LT(i, d.start(o) + d.count(o));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockDistSweep,
    ::testing::Values(std::pair<index_t, int>{0, 3},
                      std::pair<index_t, int>{1, 1},
                      std::pair<index_t, int>{5, 8},   // more parts than items
                      std::pair<index_t, int>{7, 3},
                      std::pair<index_t, int>{100, 7},
                      std::pair<index_t, int>{128, 16},
                      std::pair<index_t, int>{1000, 13},
                      std::pair<index_t, int>{999, 1}));

struct DistEnv {
  Team team;
  RmaRuntime rma;
  explicit DistEnv(MachineModel m) : team(std::move(m)), rma(team) {}
};

TEST(DistMatrix, LocalBlocksTileTheMatrix) {
  DistEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 10, 7, ProcGrid{2, 2});
    index_t total = 0;
    for (int r = 0; r < 4; ++r) total += x.block_rows(r) * x.block_cols(r);
    EXPECT_EQ(total, 70);
    EXPECT_EQ(x.local_view(me).rows(), x.block_rows(me.id()));
  });
}

TEST(DistMatrix, OwnerMatchesBlockRanges) {
  DistEnv env(MachineModel::testing(3, 2));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 17, 11, ProcGrid{3, 2});
    for (index_t i = 0; i < 17; i += 3)
      for (index_t j = 0; j < 11; j += 2) {
        const int o = x.owner(i, j);
        EXPECT_GE(i, x.block_row_start(o));
        EXPECT_LT(i, x.block_row_start(o) + x.block_rows(o));
        EXPECT_GE(j, x.block_col_start(o));
        EXPECT_LT(j, x.block_col_start(o) + x.block_cols(o));
      }
  });
}

TEST(DistMatrix, ScatterGatherRoundTrip) {
  DistEnv env(MachineModel::testing(2, 2));
  Matrix global = testing::coords_matrix(9, 13);
  Matrix out(9, 13);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 9, 13, ProcGrid{2, 2});
    x.scatter_from(me, global.view());
    x.gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(global.view(), out.view()), 0.0);
}

TEST(DistMatrix, FillCoordsMatchesSerialFill) {
  DistEnv env(MachineModel::testing(2, 3));
  Matrix out(12, 8);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 12, 8, ProcGrid{3, 2});
    x.fill_coords_local(me);
    x.gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(out.view(), testing::coords_matrix(12, 8).view()), 0.0);
}

TEST(DistMatrix, FetchArbitraryRectangles) {
  // Generalized get across owner boundaries must reproduce the global data
  // exactly, for a randomized set of rectangles.
  DistEnv env(MachineModel::testing(3, 2));
  Matrix global = testing::coords_matrix(23, 19);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 23, 19, ProcGrid{2, 3});
    x.fill_coords_local(me);
    me.barrier();
    Rng rng(static_cast<std::uint64_t>(1000 + me.id()));
    for (int trial = 0; trial < 25; ++trial) {
      const index_t i0 = static_cast<index_t>(rng.below(23));
      const index_t j0 = static_cast<index_t>(rng.below(19));
      const index_t mi = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(23 - i0)));
      const index_t nj = 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(19 - j0)));
      Matrix dst(mi, nj);
      PatchHandle h = x.fetch_nb(me, i0, j0, mi, nj, dst.view());
      x.wait(me, h);
      EXPECT_EQ(max_abs_diff(dst.view(), global.block(i0, j0, mi, nj)), 0.0)
          << "rect " << i0 << "," << j0 << " " << mi << "x" << nj;
    }
  });
}

TEST(DistMatrix, FetchWholeMatrixTouchesAllOwners) {
  DistEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 8, 8, ProcGrid{2, 2});
    x.fill_coords_local(me);
    me.barrier();
    Matrix dst(8, 8);
    const auto gets_before = me.trace().gets;
    PatchHandle h = x.fetch_nb(me, 0, 0, 8, 8, dst.view());
    x.wait(me, h);
    EXPECT_EQ(me.trace().gets - gets_before, 4u);  // one per owner block
    EXPECT_EQ(max_abs_diff(dst.view(), testing::coords_matrix(8, 8).view()),
              0.0);
  });
}

TEST(DistMatrix, DirectViewOnlyWithinDomain) {
  // 2 nodes x 2 ranks: grid columns map to nodes, so a rank shares a domain
  // exactly with its grid-column neighbour.
  DistEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 8, 8, ProcGrid{2, 2});
    x.fill_coords_local(me);
    me.barrier();
    // Block (1,0) is owned by rank 1 (node 0); block (0,1) by rank 2 (node 1).
    const auto same_col = x.direct_view(me, 4, 0, 4, 4);   // rank 1's block
    const auto other_col = x.direct_view(me, 0, 4, 4, 4);  // rank 2's block
    if (me.node() == 0) {
      ASSERT_TRUE(same_col.has_value());
      Matrix expect(4, 4);
      fill_coords(expect.view(), 4, 0);
      EXPECT_EQ(max_abs_diff(*same_col, expect.view()), 0.0);
      EXPECT_FALSE(other_col.has_value());
    } else {
      EXPECT_FALSE(same_col.has_value());
      ASSERT_TRUE(other_col.has_value());
    }
    // Spanning rectangle never has a direct view.
    EXPECT_FALSE(x.direct_view(me, 2, 2, 4, 4).has_value());
  });
}

TEST(DistMatrix, SingleDomainMachineDirectViewsEverything) {
  DistEnv env(MachineModel::sgi_altix(4));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 8, 8, ProcGrid{2, 2});
    x.fill_coords_local(me);
    me.barrier();
    EXPECT_TRUE(x.direct_view(me, 0, 4, 4, 4).has_value());
    EXPECT_TRUE(x.single_owner_in_domain(me, 4, 4, 4, 4).has_value());
    EXPECT_TRUE(x.rect_in_domain(me, 0, 0, 8, 8));
  });
}

TEST(DistMatrix, PhantomChargesWithoutStorage) {
  DistEnv env(MachineModel::testing(2, 1));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 1000, 1000, ProcGrid{2, 1}, /*phantom=*/true);
    EXPECT_TRUE(x.phantom());
    EXPECT_THROW((void)x.local_view(me), Error);
    const double t0 = me.clock().now();
    PatchHandle h = x.fetch_nb(me, 0, 0, 1000, 1000, MatrixView{});
    x.wait(me, h);
    EXPECT_GT(me.clock().now(), t0);  // cost charged
    EXPECT_GT(me.trace().bytes_shm + me.trace().bytes_remote, 0u);
  });
}

TEST(DistMatrix, PhantomDirectViewNullButModeledEligible) {
  DistEnv env(MachineModel::sgi_altix(2));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 10, 10, ProcGrid{2, 1}, /*phantom=*/true);
    EXPECT_FALSE(x.direct_view(me, 0, 0, 5, 10).has_value());
    EXPECT_TRUE(x.single_owner_in_domain(me, 0, 0, 5, 10).has_value());
  });
}

TEST(DistMatrix, DestroyReleasesCollectively) {
  DistEnv env(MachineModel::testing(2, 1));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 4, 4, ProcGrid{2, 1});
    x.destroy(me);
  });
}

TEST(DistMatrix, RectBoundsChecked) {
  DistEnv env(MachineModel::testing(1, 1));
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 4, 4, ProcGrid{1, 1});
    Matrix dst(2, 2);
    EXPECT_THROW((void)x.fetch_nb(me, 3, 3, 2, 2, dst.view()), Error);
    EXPECT_THROW((void)x.fetch_nb(me, -1, 0, 1, 1, dst.view()), Error);
    EXPECT_THROW((void)x.direct_view(me, 0, 0, 5, 1), Error);
  });
}

TEST(DistMatrix, GridSizeMustMatchTeam) {
  DistEnv env(MachineModel::testing(2, 1));
  EXPECT_THROW(env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 4, 4, ProcGrid{3, 1});
  }),
               Error);
}

}  // namespace
}  // namespace srumma
