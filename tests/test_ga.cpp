// Tests for the Global-Arrays-style layer and the generalized one-sided
// store/accumulate primitives underneath it.

#include <gtest/gtest.h>

#include <cmath>

#include "ga/global_array.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

struct GaEnv {
  Team team;
  RmaRuntime rma;
  explicit GaEnv(MachineModel m) : team(std::move(m)), rma(team) {}
};

TEST(DistStore, PutRectangleAcrossOwners) {
  GaEnv env(MachineModel::testing(2, 2));
  Matrix out(12, 12);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 12, 12, ProcGrid{2, 2});
    me.barrier();
    if (me.id() == 3) {
      Matrix patch(5, 7);
      fill_coords(patch.view(), 4, 3);
      PatchHandle h = x.store_nb(me, 4, 3, 5, 7, patch.view());
      x.wait(me, h);
    }
    x.gather_to(me, out.view());
  });
  Matrix expect(12, 12);
  fill_coords(expect.block(4, 3, 5, 7), 4, 3);
  EXPECT_EQ(max_abs_diff(out.view(), expect.view()), 0.0);
}

TEST(DistStore, AccumulateSumsConcurrentContributions) {
  // Every rank accumulates 1.0 into the same global rectangle; the result
  // must be exactly P in every cell (atomicity under real concurrency).
  GaEnv env(MachineModel::testing(2, 2));
  Matrix out(8, 8);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 8, 8, ProcGrid{2, 2});
    me.barrier();
    Matrix ones(6, 6);
    ones.fill(1.0);
    PatchHandle h = x.accumulate_nb(me, 1, 1, 6, 6, 1.0, ones.view());
    x.wait(me, h);
    x.gather_to(me, out.view());
  });
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) {
      const bool inside = i >= 1 && i < 7 && j >= 1 && j < 7;
      EXPECT_DOUBLE_EQ(out(i, j), inside ? 4.0 : 0.0) << i << "," << j;
    }
}

TEST(DistStore, AccumulateScalesByAlpha) {
  GaEnv env(MachineModel::testing(2, 1));
  Matrix out(4, 4);
  env.team.run([&](Rank& me) {
    DistMatrix x(env.rma, me, 4, 4, ProcGrid{2, 1});
    me.barrier();
    if (me.id() == 0) {
      Matrix p(4, 4);
      p.fill(2.0);
      PatchHandle h1 = x.accumulate_nb(me, 0, 0, 4, 4, 0.5, p.view());
      x.wait(me, h1);
      PatchHandle h2 = x.accumulate_nb(me, 0, 0, 4, 4, -0.25, p.view());
      x.wait(me, h2);
    }
    x.gather_to(me, out.view());
  });
  EXPECT_DOUBLE_EQ(out(3, 3), 0.5);  // 2*0.5 - 2*0.25
}

TEST(RmaAcc, RemoteAccumulateStealsOwnerCpu) {
  GaEnv env(MachineModel::testing(2, 1));
  env.team.run([&](Rank& me) {
    SymmetricRegion r = env.rma.malloc_symmetric(me, 256);
    me.barrier();
    if (me.id() == 0) {
      Matrix p(16, 16);
      p.fill(1.0);
      RmaHandle h =
          env.rma.nbacc2d(me, 1, 1.0, p.data(), 16, 16, 16, r.base(1), 16);
      env.rma.wait(me, h);
    }
    me.barrier();
    if (me.id() == 1) {
      EXPECT_GT(me.clock().steal_total(), 0.0);  // the add ran on my CPU
      EXPECT_DOUBLE_EQ(r.base(1)[100], 1.0);
    }
  });
}

TEST(Ga, CreateFillAccessDistribution) {
  GaEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 10, 6);
    a.fill(me, 3.5);
    EXPECT_DOUBLE_EQ(a.access(me)(0, 0), 3.5);
    const auto [rrange, crange] = a.distribution(me.id());
    EXPECT_EQ(rrange.second - rrange.first, a.dist().block_rows(me.id()));
    EXPECT_EQ(crange.second - crange.first, a.dist().block_cols(me.id()));
    a.destroy(me);
  });
}

TEST(Ga, GetPutRoundTrip) {
  GaEnv env(MachineModel::testing(3, 2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 15, 11);
    a.fill(me, 0.0);
    if (me.id() == 2) {
      Matrix patch(6, 5);
      fill_coords(patch.view(), 0, 0);
      a.put(me, 7, 4, 6, 5, patch.view());
    }
    a.sync(me);
    Matrix readback(6, 5);
    a.get(me, 7, 4, 6, 5, readback.view());
    Matrix expect(6, 5);
    fill_coords(expect.view(), 0, 0);
    EXPECT_EQ(max_abs_diff(readback.view(), expect.view()), 0.0);
  });
}

TEST(Ga, AccIsAtomicAcrossRanks) {
  GaEnv env(MachineModel::testing(3, 2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 9, 9);
    a.fill(me, 1.0);
    Matrix inc(9, 9);
    inc.fill(static_cast<double>(me.id()));
    a.acc(me, 0, 0, 9, 9, 1.0, inc.view());
    a.sync(me);
    Matrix full(9, 9);
    a.get(me, 0, 0, 9, 9, full.view());
    // 1 + sum of rank ids 0..5 = 16
    EXPECT_DOUBLE_EQ(full(4, 4), 16.0);
  });
}

TEST(Ga, DgemmMatchesReference) {
  GaEnv env(MachineModel::testing(2, 2));
  Matrix a_g = testing::coords_matrix(14, 18);
  Matrix b_g(14, 10);
  fill_random(b_g.view(), 33);
  // C = 2 * A^T B with A stored 14x18 -> C is 18x10.
  Matrix c_ref(18, 10);
  testing::reference_gemm(blas::Trans::Yes, blas::Trans::No, 2.0, a_g, b_g,
                          0.0, c_ref);
  Matrix c_out(18, 10);
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 14, 18);
    ga::GlobalArray b(env.rma, me, 14, 10);
    ga::GlobalArray c(env.rma, me, 18, 10);
    a.dist().scatter_from(me, a_g.view());
    b.dist().scatter_from(me, b_g.view());
    MultiplyResult r = ga::dgemm(me, 't', 'n', 2.0, a, b, 0.0, c);
    EXPECT_GT(r.gflops, 0.0);
    c.dist().gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(14));
}

TEST(Ga, DgemmRejectsBadTransposeFlag) {
  GaEnv env(MachineModel::testing(1, 1));
  EXPECT_THROW(env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 4, 4);
    ga::GlobalArray c(env.rma, me, 4, 4);
    ga::dgemm(me, 'x', 'n', 1.0, a, a, 0.0, c);
  }),
               Error);
}

TEST(Ga, TransposeOneSided) {
  GaEnv env(MachineModel::testing(3, 2));
  Matrix a_g = testing::coords_matrix(13, 7);
  Matrix expect(7, 13);
  transpose(a_g.view(), expect.view());
  Matrix out(7, 13);
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 13, 7);
    ga::GlobalArray b(env.rma, me, 7, 13);
    a.dist().scatter_from(me, a_g.view());
    const auto msgs_before = me.trace().sends;
    ga::transpose(me, a, b);
    EXPECT_EQ(me.trace().sends, msgs_before);  // strictly one-sided
    b.dist().gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(out.view(), expect.view()), 0.0);
}

TEST(Ga, AddAndScale) {
  GaEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 8, 8);
    ga::GlobalArray b(env.rma, me, 8, 8);
    ga::GlobalArray c(env.rma, me, 8, 8);
    a.fill(me, 2.0);
    b.fill(me, 3.0);
    ga::add(me, 2.0, a, -1.0, b, c);  // 2*2 - 3 = 1
    Matrix out(1, 1);
    c.get(me, 5, 5, 1, 1, out.view());
    EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
    ga::scale(me, c, 4.0);
    c.get(me, 5, 5, 1, 1, out.view());
    EXPECT_DOUBLE_EQ(out(0, 0), 4.0);
  });
}

TEST(Ga, DotReducesAcrossRanks) {
  GaEnv env(MachineModel::testing(2, 2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 6, 6);
    ga::GlobalArray b(env.rma, me, 6, 6);
    a.fill(me, 2.0);
    b.fill(me, 0.5);
    const double d = ga::dot(me, a, b);
    EXPECT_DOUBLE_EQ(d, 36.0);  // 36 elements * 1.0
  });
}

TEST(Ga, DotOnPhantomThrows) {
  GaEnv env(MachineModel::testing(2, 1));
  EXPECT_THROW(env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 4, 4, std::nullopt, /*phantom=*/true);
    ga::dot(me, a, a);
  }),
               Error);
}

TEST(Ga, PhantomDgemmCharges) {
  GaEnv env(MachineModel::linux_myrinet(2));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 512, 512, std::nullopt, true);
    ga::GlobalArray b(env.rma, me, 512, 512, std::nullopt, true);
    ga::GlobalArray c(env.rma, me, 512, 512, std::nullopt, true);
    MultiplyResult r = ga::dgemm(me, 'n', 'n', 1.0, a, b, 0.0, c);
    EXPECT_GT(r.elapsed, 0.0);
  });
}

TEST(Ga, CopyArraySameAndDifferentGrids) {
  GaEnv env(MachineModel::testing(2, 2));
  Matrix src = testing::coords_matrix(10, 8);
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 10, 8);
    ga::GlobalArray b(env.rma, me, 10, 8);
    ga::GlobalArray c(env.rma, me, 10, 8, ProcGrid{4, 1});
    a.dist().scatter_from(me, src.view());
    ga::copy_array(me, a, b);
    ga::copy_array(me, a, c);  // cross-grid: one-sided pull
    Matrix out_b(10, 8), out_c(10, 8);
    b.get(me, 0, 0, 10, 8, out_b.view());
    c.get(me, 0, 0, 10, 8, out_c.view());
    EXPECT_EQ(max_abs_diff(out_b.view(), src.view()), 0.0);
    EXPECT_EQ(max_abs_diff(out_c.view(), src.view()), 0.0);
  });
}

TEST(Ga, NormInfMatchesSerial) {
  GaEnv env(MachineModel::testing(3, 2));
  Matrix src(11, 7);
  fill_random(src.view(), 44);
  double expect = 0.0;
  for (index_t i = 0; i < 11; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 7; ++j) s += std::abs(src(i, j));
    expect = std::max(expect, s);
  }
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 11, 7);
    a.dist().scatter_from(me, src.view());
    EXPECT_DOUBLE_EQ(ga::norm_inf(me, a), expect);
  });
}

TEST(Ga, SymmetrizeProducesSymmetricMatrix) {
  GaEnv env(MachineModel::testing(2, 2));
  Matrix src(12, 12);
  fill_random(src.view(), 45);
  Matrix expect(12, 12);
  for (index_t j = 0; j < 12; ++j)
    for (index_t i = 0; i < 12; ++i)
      expect(i, j) = 0.5 * (src(i, j) + src(j, i));
  Matrix out(12, 12);
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 12, 12);
    a.dist().scatter_from(me, src.view());
    ga::symmetrize(me, a);
    a.dist().gather_to(me, out.view());
  });
  EXPECT_LE(max_abs_diff(out.view(), expect.view()), 1e-14);
}

TEST(Ga, ExplicitGridRespected) {
  GaEnv env(MachineModel::testing(4, 1));
  env.team.run([&](Rank& me) {
    ga::GlobalArray a(env.rma, me, 8, 8, ProcGrid{4, 1});
    EXPECT_EQ(a.dist().grid().p, 4);
    EXPECT_EQ(a.dist().block_cols(me.id()), 8);
  });
}

}  // namespace
}  // namespace srumma
