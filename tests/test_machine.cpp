// Tests for the machine models: topology helpers, domain mapping, the
// dgemm rate saturation model, and the paper-platform parameter sets.

#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "util/error.hpp"

namespace srumma {
namespace {

TEST(DgemmRate, SaturatesMonotonically) {
  DgemmRateModel m{1e9, 0.8, 32.0};
  double prev = 0.0;
  for (index_t s : {1, 2, 4, 8, 16, 32, 64, 128, 512, 4096}) {
    const double r = m.rate(s, s, s);
    EXPECT_GT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, 0.8e9);                    // never exceeds the asymptote
  EXPECT_GT(prev, 0.8e9 * 4096 / (4096.0 + 32.0) * 0.999);
}

TEST(DgemmRate, HalfSizePoint) {
  DgemmRateModel m{2e9, 0.5, 64.0};
  EXPECT_NEAR(m.rate(64, 64, 64), 2e9 * 0.5 * 0.5, 1e3);
}

TEST(DgemmRate, TimeMatchesFlopsOverRate) {
  DgemmRateModel m{1e9, 0.9, 16.0};
  const double t = m.time(100, 200, 50);
  EXPECT_NEAR(t, 2.0 * 100 * 200 * 50 / m.rate(100, 200, 50), 1e-12);
  EXPECT_EQ(m.time(0, 10, 10), 0.0);
}

TEST(DgemmRate, NonCubicShapeUsesGeometricMean) {
  DgemmRateModel m{1e9, 0.8, 32.0};
  // (1000, 1000, 1) has geometric mean 100: same rate as a 100-cube.
  EXPECT_NEAR(m.rate(1000, 1000, 1), m.rate(100, 100, 100), 1.0);
}

TEST(Machine, NodeAndDomainMapping) {
  MachineModel m = MachineModel::testing(4, 3);
  EXPECT_EQ(m.total_ranks(), 12);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(2), 0);
  EXPECT_EQ(m.node_of(3), 1);
  EXPECT_EQ(m.node_of(11), 3);
  EXPECT_TRUE(m.same_domain(0, 2));
  EXPECT_FALSE(m.same_domain(2, 3));
  EXPECT_EQ(m.num_domains(), 4);
  EXPECT_EQ(m.domain_size(), 3);
}

TEST(Machine, SingleDomainMachinesSpanAllRanks) {
  MachineModel altix = MachineModel::sgi_altix(16);
  EXPECT_TRUE(altix.single_shared_domain);
  EXPECT_TRUE(altix.same_domain(0, altix.total_ranks() - 1));
  EXPECT_EQ(altix.num_domains(), 1);
  EXPECT_EQ(altix.domain_size(), 16);
  // Aggregate bandwidth scales with bricks in the single domain.
  EXPECT_NEAR(altix.domain_agg_bw(), altix.shm_agg_bw_per_node * 8, 1.0);
}

TEST(Machine, PaperPlatformTopologies) {
  EXPECT_EQ(MachineModel::linux_myrinet(64).total_ranks(), 128);
  EXPECT_EQ(MachineModel::linux_myrinet(64).ranks_per_node, 2);
  EXPECT_EQ(MachineModel::ibm_sp(16).total_ranks(), 256);
  EXPECT_EQ(MachineModel::ibm_sp(16).ranks_per_node, 16);
  EXPECT_EQ(MachineModel::cray_x1(32).total_ranks(), 128);
  EXPECT_EQ(MachineModel::sgi_altix(128).total_ranks(), 128);
}

TEST(Machine, PaperPlatformProtocolTraits) {
  // The traits the paper's experiments hinge on.
  EXPECT_TRUE(MachineModel::linux_myrinet(4).zero_copy);   // GM RDMA
  EXPECT_FALSE(MachineModel::ibm_sp(4).zero_copy);         // LAPI host copies
  EXPECT_FALSE(MachineModel::cray_x1(4).remote_cacheable); // X1 coherence
  EXPECT_TRUE(MachineModel::sgi_altix(8).remote_cacheable);
  EXPECT_LT(MachineModel::cray_x1(4).remote_direct_rate_factor, 0.5);
  EXPECT_GT(MachineModel::sgi_altix(8).remote_direct_rate_factor, 0.5);
}

TEST(Machine, PaperPlatformPeakRates) {
  EXPECT_NEAR(MachineModel::sgi_altix(2).dgemm.peak_flops, 6e9, 1);   // It2 1.5GHz
  EXPECT_NEAR(MachineModel::cray_x1(1).dgemm.peak_flops, 12.8e9, 1);  // MSP
  EXPECT_NEAR(MachineModel::ibm_sp(1).dgemm.peak_flops, 1.5e9, 1);    // P3 375MHz
  EXPECT_NEAR(MachineModel::linux_myrinet(1).dgemm.peak_flops, 4.8e9, 1);
}

TEST(Machine, InvalidConfigsThrow) {
  EXPECT_THROW(MachineModel::linux_myrinet(0), Error);
  EXPECT_THROW(MachineModel::sgi_altix(3), Error);  // bricks hold 2 CPUs
  EXPECT_THROW(MachineModel::testing(0, 1), Error);
}

TEST(Machine, EagerThresholdIs16K) {
  // Fig. 7's protocol cliff sits at 16 KB on the paper's clusters.
  EXPECT_DOUBLE_EQ(MachineModel::linux_myrinet(1).eager_threshold, 16384.0);
  EXPECT_DOUBLE_EQ(MachineModel::ibm_sp(1).eager_threshold, 16384.0);
}

}  // namespace
}  // namespace srumma
