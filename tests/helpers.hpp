#pragma once
// Shared fixtures and reference implementations for the test suite.

#include <gtest/gtest.h>

#include <functional>

#include "blas/gemm.hpp"
#include "dist/dist_matrix.hpp"
#include "machine/machine.hpp"
#include "rma/rma.hpp"
#include "runtime/team.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace srumma::testing {

/// Dense reference: C := alpha*op(A)*op(B) + beta*C via the naive kernel.
inline void reference_gemm(blas::Trans ta, blas::Trans tb, double alpha,
                           const Matrix& a, const Matrix& b, double beta,
                           Matrix& c) {
  const index_t m = ta == blas::Trans::No ? a.rows() : a.cols();
  const index_t k = ta == blas::Trans::No ? a.cols() : a.rows();
  blas::gemm_naive(ta, tb, m, c.cols(), k, alpha, a.data(), a.ld(), b.data(),
                   b.ld(), beta, c.data(), c.ld());
}

/// Build the global matrix the distributed fill_coords_local produces.
inline Matrix coords_matrix(index_t m, index_t n) {
  Matrix x(m, n);
  fill_coords(x.view(), 0, 0);
  return x;
}

/// Tolerance scaled to the accumulation depth.
inline double gemm_tolerance(index_t k) {
  return 1e-12 * static_cast<double>(std::max<index_t>(k, 1)) * 16.0;
}

}  // namespace srumma::testing
