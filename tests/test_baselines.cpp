// Tests for the message-passing baselines: Cannon's algorithm, SUMMA, the
// transposed redistribution, and the pdgemm model.

#include <gtest/gtest.h>

#include "baselines/cannon.hpp"
#include "baselines/summa.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using blas::Trans;

// Prepare Cannon's padded local blocks from global matrices.
void cannon_scatter(Rank& me, int p, const Matrix& global, index_t bi,
                    index_t bj, MatrixView block) {
  block.fill(0.0);
  const int pi = me.id() % p;
  const int pj = me.id() / p;
  const index_t r0 = pi * bi;
  const index_t c0 = pj * bj;
  const index_t rows = std::min(bi, global.rows() - std::min(global.rows(), r0));
  const index_t cols = std::min(bj, global.cols() - std::min(global.cols(), c0));
  if (rows > 0 && cols > 0)
    copy(global.block(r0, c0, rows, cols), block.block(0, 0, rows, cols));
}

void run_cannon_case(index_t m, index_t n, index_t k, int p) {
  Team team(MachineModel::testing(p * p, 1));
  Comm comm(team);
  Matrix a_g = testing::coords_matrix(m, k);
  Matrix b_g(k, n);
  fill_random(b_g.view(), 3);
  Matrix c_ref(m, n);
  testing::reference_gemm(Trans::No, Trans::No, 1.0, a_g, b_g, 0.0, c_ref);

  const index_t bm = cannon_block(m, p);
  const index_t bn = cannon_block(n, p);
  const index_t bk = cannon_block(k, p);
  Matrix c_out(m, n);
  team.run([&](Rank& me) {
    Matrix a_blk(bm, bk), b_blk(bk, bn), c_blk(bm, bn);
    cannon_scatter(me, p, a_g, bm, bk, a_blk.view());
    cannon_scatter(me, p, b_g, bk, bn, b_blk.view());
    CannonOptions opt;
    opt.m = m;
    opt.n = n;
    opt.k = k;
    MultiplyResult r =
        cannon_multiply(me, comm, a_blk.view(), b_blk.view(), c_blk.view(), opt);
    EXPECT_GT(r.elapsed, 0.0);
    // Gather my C block into the shared output.
    const int pi = me.id() % p;
    const int pj = me.id() / p;
    const index_t r0 = pi * bm;
    const index_t c0 = pj * bn;
    me.barrier();
    const index_t rows = std::min(bm, m - std::min(m, r0));
    const index_t cols = std::min(bn, n - std::min(n, c0));
    if (rows > 0 && cols > 0)
      copy(ConstMatrixView(c_blk.block(0, 0, rows, cols)),
           c_out.view().block(r0, c0, rows, cols));
    me.barrier();
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()), testing::gemm_tolerance(k))
      << "m=" << m << " n=" << n << " k=" << k << " p=" << p;
}

TEST(Cannon, TwoByTwoDivisible) { run_cannon_case(16, 16, 16, 2); }
TEST(Cannon, TwoByTwoNonDivisible) { run_cannon_case(17, 13, 19, 2); }
TEST(Cannon, ThreeByThree) { run_cannon_case(21, 21, 21, 3); }
TEST(Cannon, ThreeByThreeRectangular) { run_cannon_case(10, 25, 14, 3); }
TEST(Cannon, SingleRank) { run_cannon_case(9, 9, 9, 1); }

TEST(Cannon, NonSquareTeamThrows) {
  Team team(MachineModel::testing(3, 1));
  Comm comm(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    CannonOptions opt;
    opt.m = opt.n = opt.k = 6;
    opt.phantom = true;
    cannon_multiply(me, comm, MatrixView{}, MatrixView{}, MatrixView{}, opt);
  }),
               Error);
}

TEST(Cannon, PhantomRunProducesTimes) {
  Team team(MachineModel::testing(4, 1));
  Comm comm(team);
  team.run([&](Rank& me) {
    CannonOptions opt;
    opt.m = opt.n = opt.k = 1024;
    opt.phantom = true;
    MultiplyResult r =
        cannon_multiply(me, comm, MatrixView{}, MatrixView{}, MatrixView{}, opt);
    EXPECT_GT(r.elapsed, 0.0);
    EXPECT_GT(r.trace.bytes_msg, 0u);
    EXPECT_GT(r.gflops, 0.0);
  });
}

void run_summa_case(index_t m, index_t n, index_t k, ProcGrid grid,
                    MachineModel machine, index_t panel) {
  Team team(std::move(machine));
  RmaRuntime rma(team);
  Comm comm(team);
  Matrix a_g = testing::coords_matrix(m, k);
  Matrix b_g(k, n);
  fill_random(b_g.view(), 4);
  Matrix c_ref(m, n);
  testing::reference_gemm(Trans::No, Trans::No, 1.0, a_g, b_g, 0.0, c_ref);
  Matrix c_out(m, n);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, m, k, grid);
    DistMatrix b(rma, me, k, n, grid);
    DistMatrix c(rma, me, m, n, grid);
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    SummaOptions opt;
    opt.panel = panel;
    MultiplyResult r = summa_multiply(me, comm, a, b, c, opt);
    EXPECT_GT(r.elapsed, 0.0);
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(k));
}

TEST(Summa, SquareGrid) {
  run_summa_case(20, 20, 20, ProcGrid{2, 2}, MachineModel::testing(2, 2), 8);
}
TEST(Summa, NonSquareGridOddDims) {
  run_summa_case(17, 23, 31, ProcGrid{3, 2}, MachineModel::testing(3, 2), 5);
}
TEST(Summa, OwnerAlignedPanels) {
  run_summa_case(16, 16, 16, ProcGrid{2, 2}, MachineModel::testing(2, 2), 0);
}
TEST(Summa, SingleRank) {
  run_summa_case(9, 9, 9, ProcGrid{1, 1}, MachineModel::testing(1, 1), 4);
}
TEST(Summa, WideRectangular) {
  run_summa_case(8, 40, 12, ProcGrid{2, 2}, MachineModel::testing(2, 2), 7);
}

TEST(Summa, PhantomTimesScaleWithPanel) {
  // Narrower panels = more broadcasts = more latency on a cluster.
  Team team(MachineModel::testing(4, 1));
  RmaRuntime rma(team);
  Comm comm(team);
  double t_narrow = 0.0, t_wide = 0.0;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 512, 512, ProcGrid{2, 2}, true);
    DistMatrix b(rma, me, 512, 512, ProcGrid{2, 2}, true);
    DistMatrix c(rma, me, 512, 512, ProcGrid{2, 2}, true);
    SummaOptions opt;
    opt.panel = 16;
    MultiplyResult narrow = summa_multiply(me, comm, a, b, c, opt);
    opt.panel = 256;
    MultiplyResult wide = summa_multiply(me, comm, a, b, c, opt);
    if (me.id() == 0) {
      t_narrow = narrow.elapsed;
      t_wide = wide.elapsed;
    }
  });
  EXPECT_GT(t_narrow, t_wide);
}

TEST(TransposeRedistribute, RoundTripExact) {
  Team team(MachineModel::testing(3, 2));
  RmaRuntime rma(team);
  Comm comm(team);
  Matrix src_g = testing::coords_matrix(14, 9);
  Matrix expect(9, 14);
  transpose(src_g.view(), expect.view());
  Matrix out(9, 14);
  team.run([&](Rank& me) {
    DistMatrix src(rma, me, 14, 9, ProcGrid{3, 2});
    DistMatrix dst(rma, me, 9, 14, ProcGrid{3, 2});
    src.scatter_from(me, src_g.view());
    transpose_redistribute(me, comm, src, dst);
    dst.gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(out.view(), expect.view()), 0.0);
}

TEST(TransposeRedistribute, SquareInPlaceShape) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Comm comm(team);
  Matrix src_g = testing::coords_matrix(12, 12);
  Matrix expect(12, 12);
  transpose(src_g.view(), expect.view());
  Matrix out(12, 12);
  team.run([&](Rank& me) {
    DistMatrix src(rma, me, 12, 12, ProcGrid{2, 2});
    DistMatrix dst(rma, me, 12, 12, ProcGrid{2, 2});
    src.scatter_from(me, src_g.view());
    transpose_redistribute(me, comm, src, dst);
    dst.gather_to(me, out.view());
  });
  EXPECT_EQ(max_abs_diff(out.view(), expect.view()), 0.0);
}

TEST(TransposeRedistribute, DimensionMismatchThrows) {
  Team team(MachineModel::testing(2, 1));
  RmaRuntime rma(team);
  Comm comm(team);
  EXPECT_THROW(team.run([&](Rank& me) {
    DistMatrix src(rma, me, 6, 4, ProcGrid{2, 1});
    DistMatrix dst(rma, me, 6, 4, ProcGrid{2, 1});
    transpose_redistribute(me, comm, src, dst);
  }),
               Error);
}

struct PdgemmCase {
  Trans ta, tb;
  index_t m, n, k;
};

class PdgemmSweep : public ::testing::TestWithParam<PdgemmCase> {};

TEST_P(PdgemmSweep, MatchesReference) {
  const PdgemmCase pc = GetParam();
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Comm comm(team);
  const index_t a_rows = pc.ta == Trans::No ? pc.m : pc.k;
  const index_t a_cols = pc.ta == Trans::No ? pc.k : pc.m;
  const index_t b_rows = pc.tb == Trans::No ? pc.k : pc.n;
  const index_t b_cols = pc.tb == Trans::No ? pc.n : pc.k;
  Matrix a_g = testing::coords_matrix(a_rows, a_cols);
  Matrix b_g(b_rows, b_cols);
  fill_random(b_g.view(), 6);
  Matrix c_ref(pc.m, pc.n);
  testing::reference_gemm(pc.ta, pc.tb, 1.0, a_g, b_g, 0.0, c_ref);
  Matrix c_out(pc.m, pc.n);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, a_rows, a_cols, ProcGrid{2, 2});
    DistMatrix b(rma, me, b_rows, b_cols, ProcGrid{2, 2});
    DistMatrix c(rma, me, pc.m, pc.n, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    PdgemmOptions opt;
    opt.ta = pc.ta;
    opt.tb = pc.tb;
    opt.panel = 6;
    MultiplyResult r = pdgemm_model(me, comm, a, b, c, opt);
    EXPECT_GT(r.gflops, 0.0);
    c.gather_to(me, c_out.view());
  });
  EXPECT_LE(max_abs_diff(c_out.view(), c_ref.view()),
            testing::gemm_tolerance(pc.k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdgemmSweep,
    ::testing::Values(PdgemmCase{Trans::No, Trans::No, 18, 14, 22},
                      PdgemmCase{Trans::Yes, Trans::No, 18, 14, 22},
                      PdgemmCase{Trans::No, Trans::Yes, 18, 14, 22},
                      PdgemmCase{Trans::Yes, Trans::Yes, 18, 14, 22},
                      PdgemmCase{Trans::Yes, Trans::Yes, 7, 29, 11}));

TEST(Pdgemm, TransposeCostsShowUp) {
  // pdgemm's transposed path pays a full redistribution; the virtual time
  // must exceed the non-transposed run (the paper's Table 1 effect).
  Team team(MachineModel::testing(4, 2));
  RmaRuntime rma(team);
  Comm comm(team);
  double t_nn = 0.0, t_tt = 0.0;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 256, 256, ProcGrid{4, 2}, true);
    DistMatrix b(rma, me, 256, 256, ProcGrid{4, 2}, true);
    DistMatrix c(rma, me, 256, 256, ProcGrid{4, 2}, true);
    PdgemmOptions opt;
    MultiplyResult nn = pdgemm_model(me, comm, a, b, c, opt);
    opt.ta = opt.tb = Trans::Yes;
    MultiplyResult tt = pdgemm_model(me, comm, a, b, c, opt);
    if (me.id() == 0) {
      t_nn = nn.elapsed;
      t_tt = tt.elapsed;
    }
  });
  EXPECT_GT(t_tt, t_nn);
}

}  // namespace
}  // namespace srumma
