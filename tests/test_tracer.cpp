// Structured event tracer: span nesting/ordering under virtual time, the
// ring-buffer overflow policy, Chrome-trace export (parsed back by a
// minimal JSON reader), the zero-perturbation guarantee when tracing is
// on, environment activation, and — under fault injection — exact
// agreement between traced events and the TraceCounters aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/srumma.hpp"
#include "trace/report.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics_json.hpp"
#include "trace/tracer.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using trace::CounterId;
using trace::EvType;
using trace::Phase;
using trace::TraceEvent;
using trace::Tracer;
using trace::TracerConfig;

// ---------------------------------------------------------------------------
// Minimal JSON reader — enough to parse back what the exporter emits and
// prove the file is well-formed JSON (objects, arrays, strings with
// escapes, numbers, booleans, null).
struct JsonValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return obj.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : p_(text.c_str()) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (*p_ != '\0') throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void ws() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r') ++p_;
  }
  char expect(char c) {
    if (*p_ != c)
      throw std::runtime_error(std::string("expected '") + c + "' got '" +
                               (*p_ ? std::string(1, *p_) : "EOF") + "'");
    return *p_++;
  }
  JsonValue value() {
    ws();
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': literal("true");  return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null");  return JsonValue{};
      default:  return number();
    }
  }
  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }
  void literal(const char* lit) {
    for (; *lit != '\0'; ++lit) {
      if (*p_ != *lit) throw std::runtime_error("bad literal");
      ++p_;
    }
  }
  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Obj;
    ws();
    if (*p_ == '}') { ++p_; return v; }
    for (;;) {
      ws();
      JsonValue key = string();
      ws();
      expect(':');
      v.obj.emplace(key.str, value());
      ws();
      if (*p_ == ',') { ++p_; continue; }
      expect('}');
      return v;
    }
  }
  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Arr;
    ws();
    if (*p_ == ']') { ++p_; return v; }
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (*p_ == ',') { ++p_; continue; }
      expect(']');
      return v;
    }
  }
  JsonValue string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::Str;
    while (*p_ != '"') {
      if (*p_ == '\0') throw std::runtime_error("unterminated string");
      if (*p_ == '\\') {
        ++p_;
        switch (*p_) {
          case '"': v.str.push_back('"'); break;
          case '\\': v.str.push_back('\\'); break;
          case '/': v.str.push_back('/'); break;
          case 'b': case 'f': case 'n': case 'r': case 't':
            v.str.push_back(' ');
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) ++p_;
            v.str.push_back('?');
            break;
          default: throw std::runtime_error("bad escape");
        }
        ++p_;
      } else {
        v.str.push_back(*p_++);
      }
    }
    ++p_;
    return v;
  }
  JsonValue number() {
    char* end = nullptr;
    JsonValue v;
    v.kind = JsonValue::Kind::Num;
    v.num = std::strtod(p_, &end);
    if (end == p_) throw std::runtime_error("bad number");
    p_ = end;
    return v;
  }

  const char* p_;
};

// ---------------------------------------------------------------------------
// Shared runners.

struct TracedRun {
  MultiplyResult result;
  double makespan = 0.0;
};

TracedRun run_phantom(Team& team, RmaRuntime& rma, index_t n,
                      SrummaOptions opt = {}) {
  const ProcGrid g = ProcGrid::near_square(team.size());
  TracedRun out;
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g, true);
    DistMatrix b(rma, me, n, n, g, true);
    DistMatrix c(rma, me, n, n, g, true);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out.result = r;
  });
  out.makespan = team.max_clock();
  return out;
}

double span_total(const std::vector<TraceEvent>& evs,
                  std::initializer_list<Phase> phases) {
  double total = 0.0;
  for (const TraceEvent& e : evs) {
    if (e.type != EvType::Span) continue;
    for (Phase p : phases)
      if (e.phase == p) total += e.t1 - e.t0;
  }
  return total;
}

std::uint64_t instant_count(const std::vector<TraceEvent>& evs, Phase p) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : evs)
    if (e.type == EvType::Instant && e.phase == p) ++n;
  return n;
}

bool is_comm(Phase p) {
  return p == Phase::Get || p == Phase::Put || p == Phase::Acc ||
         p == Phase::Send || p == Phase::Recv;
}

// ---------------------------------------------------------------------------

TEST(Tracer, OffByDefaultAndZeroPerturbation) {
  // Two identical phantom multiplies, one team traced, one not: the tracer
  // reads clocks but never advances them, so every modeled number must be
  // bit-identical — the "one branch when off" path and the "zero
  // perturbation when on" guarantee in one comparison.
  const MachineModel mm = MachineModel::testing(2, 2);

  Team plain(mm);
  EXPECT_EQ(plain.tracer_ptr(), nullptr);
  EXPECT_EQ(plain.rank(0).tracer(), nullptr);
  RmaRuntime plain_rma(plain);
  const TracedRun base = run_phantom(plain, plain_rma, 128);

  Team traced(mm);
  traced.enable_tracer(TracerConfig{});  // record-only, no output path
  ASSERT_NE(traced.tracer_ptr(), nullptr);
  RmaRuntime traced_rma(traced);
  const TracedRun probe = run_phantom(traced, traced_rma, 128);

  EXPECT_EQ(probe.makespan, base.makespan);
  EXPECT_EQ(probe.result.elapsed, base.result.elapsed);
  EXPECT_EQ(probe.result.gflops, base.result.gflops);
  EXPECT_EQ(probe.result.trace.time_compute, base.result.trace.time_compute);
  EXPECT_EQ(probe.result.trace.time_wait, base.result.trace.time_wait);
  EXPECT_EQ(probe.result.trace.gets, base.result.trace.gets);

  // And the traced team actually recorded something.
  std::uint64_t recorded = 0;
  for (int r = 0; r < traced.size(); ++r)
    recorded += traced.tracer_ptr()->recorded(r);
  EXPECT_GT(recorded, 0u);
}

TEST(Tracer, SpanNestingAndOrderingUnderVirtualTime) {
  Team team(MachineModel::testing(2, 2));
  team.enable_tracer(TracerConfig{});
  RmaRuntime rma(team);
  SrummaOptions opt;
  opt.c_chunk = 32;  // several tasks per rank
  run_phantom(team, rma, 128, opt);

  const Tracer& tr = *team.tracer_ptr();
  for (int r = 0; r < team.size(); ++r) {
    const std::vector<TraceEvent> evs = tr.events(r);
    ASSERT_EQ(tr.dropped(r), 0u) << "rank " << r;
    ASSERT_FALSE(evs.empty()) << "rank " << r;

    // Exactly one Multiply span per rank; it brackets every Task span, and
    // every Compute span lies inside some Task span.
    std::vector<TraceEvent> multiplies, tasks, computes;
    double last_end = 0.0;  // CPU records land at the rank's current clock
    for (const TraceEvent& e : evs) {
      if (e.type == EvType::Span) {
        EXPECT_GE(e.t1, e.t0);
        if (e.phase == Phase::Multiply) multiplies.push_back(e);
        if (e.phase == Phase::Task) tasks.push_back(e);
        if (e.phase == Phase::Compute) computes.push_back(e);
      }
      if (!(e.type == EvType::Span && is_comm(e.phase))) {
        const double stamp = std::max(e.t0, e.t1);
        EXPECT_GE(stamp, last_end - 1e-12) << "rank " << r;
        last_end = stamp;
      }
    }
    ASSERT_EQ(multiplies.size(), 1u) << "rank " << r;
    ASSERT_FALSE(tasks.empty()) << "rank " << r;
    ASSERT_FALSE(computes.empty()) << "rank " << r;
    for (const TraceEvent& t : tasks) {
      EXPECT_GE(t.t0, multiplies[0].t0);
      EXPECT_LE(t.t1, multiplies[0].t1);
    }
    for (const TraceEvent& c : computes) {
      bool inside = false;
      for (const TraceEvent& t : tasks)
        if (c.t0 >= t.t0 - 1e-12 && c.t1 <= t.t1 + 1e-12) {
          inside = true;
          break;
        }
      EXPECT_TRUE(inside) << "rank " << r << ": dgemm outside every task";
    }

    // Span totals reconcile with the aggregate counters.
    const TraceCounters& tc = team.rank(r).trace();
    EXPECT_NEAR(span_total(evs, {Phase::Compute}), tc.time_compute,
                1e-9 * (1.0 + tc.time_compute));
    EXPECT_NEAR(span_total(evs, {Phase::Wait, Phase::RecoveryWait}),
                tc.time_wait, 1e-9 + 0.01 * tc.time_wait);
    EXPECT_EQ(instant_count(evs, Phase::TaskIssue), tasks.size());
  }
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  TracerConfig cfg;
  cfg.ring_capacity = 8;
  Tracer tr({{0, 0}}, cfg);
  for (int i = 0; i < 20; ++i)
    tr.instant(0, Phase::TaskIssue, static_cast<double>(i),
               static_cast<std::uint64_t>(i));
  EXPECT_EQ(tr.recorded(0), 20u);
  EXPECT_EQ(tr.dropped(0), 12u);
  const std::vector<TraceEvent> evs = tr.events(0);
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].arg, 12 + i) << "oldest events must be the dropped ones";
  }
  tr.clear();
  EXPECT_EQ(tr.recorded(0), 0u);
  EXPECT_TRUE(tr.events(0).empty());
}

TEST(Tracer, ChromeTraceExportParsesBack) {
  Team team(MachineModel::testing(2, 2));
  team.enable_tracer(TracerConfig{});
  RmaRuntime rma(team);
  run_phantom(team, rma, 96);

  std::ostringstream os;
  trace::write_chrome_trace(os, *team.tracer_ptr());
  JsonValue doc = JsonParser(os.str()).parse();

  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  EXPECT_EQ(doc.at("otherData").at("schema").str, "srumma-chrome-trace/1");
  EXPECT_EQ(doc.at("otherData").at("ranks").num, team.size());
  const auto& events = doc.at("traceEvents").arr;
  ASSERT_FALSE(events.empty());

  std::size_t complete = 0, asyncs = 0, counters = 0, meta = 0;
  std::map<double, double> open_async;  // id -> begin ts
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      ++meta;
      continue;
    }
    EXPECT_GE(e.at("ts").num, 0.0);
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").num, 0.0);
    } else if (ph == "b") {
      ++asyncs;
      open_async[e.at("id").num] = e.at("ts").num;
      EXPECT_TRUE(e.at("args").has("bytes"));
    } else if (ph == "e") {
      auto it = open_async.find(e.at("id").num);
      ASSERT_NE(it, open_async.end()) << "async end without begin";
      EXPECT_GE(e.at("ts").num, it->second);
      open_async.erase(it);
    } else if (ph == "C") {
      ++counters;
      EXPECT_TRUE(e.at("args").has("value"));
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  EXPECT_TRUE(open_async.empty()) << "unmatched async begins";
  EXPECT_GT(complete, 0u);
  EXPECT_GT(asyncs, 0u);
  EXPECT_GT(counters, 0u);
  // process_name per node + thread_name/sort per rank.
  EXPECT_GE(meta, static_cast<std::size_t>(2 * team.size()));
}

TEST(Tracer, EnvActivationWritesFileOnTeamDestruction) {
  const std::string path =
      ::testing::TempDir() + "srumma_trace_env_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("SRUMMA_TRACE", path.c_str(), 1), 0);
  ASSERT_EQ(setenv("SRUMMA_TRACE_CAP", "4096", 1), 0);
  {
    Team team(MachineModel::testing(2, 1));
    ASSERT_NE(team.tracer_ptr(), nullptr);
    EXPECT_EQ(team.tracer_ptr()->config().ring_capacity, 4096u);
    RmaRuntime rma(team);
    run_phantom(team, rma, 64);
  }  // ~Team flushes the chrome trace
  unsetenv("SRUMMA_TRACE");
  unsetenv("SRUMMA_TRACE_CAP");

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "trace file was not written: " << path;
  std::stringstream body;
  body << f.rdbuf();
  JsonValue doc = JsonParser(body.str()).parse();
  EXPECT_FALSE(doc.at("traceEvents").arr.empty());
  std::remove(path.c_str());
}

TEST(Tracer, FaultRunEventsMatchCounters) {
  // Deterministic fault injection: every recovery counter must have an
  // exactly matching traced event stream, in-flight counters must return
  // to zero, and the recovery-time identity must hold per rank.
  fault::FaultConfig f;
  f.seed = 7;
  f.fail_rate = 0.15;
  f.delay_rate = 0.1;
  RetryPolicy rp;
  rp.max_attempts = 12;
  rp.backoff_base = 1e-6;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;

  Team team(MachineModel::testing(2, 2));
  team.enable_tracer(TracerConfig{});
  RmaRuntime rma(team, cfg);
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;  // every task goes through the RMA path
  opt.c_chunk = 32;
  run_phantom(team, rma, 128, opt);

  const Tracer& tr = *team.tracer_ptr();
  std::uint64_t retries = 0, faults = 0, requeues = 0, timeouts = 0;
  for (int r = 0; r < team.size(); ++r) {
    ASSERT_EQ(tr.dropped(r), 0u) << "rank " << r;
    const std::vector<TraceEvent> evs = tr.events(r);
    const TraceCounters& tc = team.rank(r).trace();

    EXPECT_EQ(instant_count(evs, Phase::Retry), tc.rma_retries) << "rank " << r;
    EXPECT_EQ(instant_count(evs, Phase::Fault), tc.faults_injected)
        << "rank " << r;
    EXPECT_EQ(instant_count(evs, Phase::Requeue), tc.task_requeues)
        << "rank " << r;
    EXPECT_EQ(instant_count(evs, Phase::OpTimeout), tc.rma_op_timeouts)
        << "rank " << r;
    retries += tc.rma_retries;
    faults += tc.faults_injected;
    requeues += tc.task_requeues;
    timeouts += tc.rma_op_timeouts;

    // Reconciliation within 1% (the acceptance bound; in practice exact).
    EXPECT_NEAR(span_total(evs, {Phase::Wait, Phase::RecoveryWait}),
                tc.time_wait, 1e-12 + 0.01 * tc.time_wait)
        << "rank " << r;
    EXPECT_NEAR(
        span_total(evs, {Phase::RecoveryWait, Phase::Backoff, Phase::Redo}),
        tc.time_recovery, 1e-12 + 0.01 * tc.time_recovery)
        << "rank " << r;
    EXPECT_NEAR(span_total(evs, {Phase::Compute}), tc.time_compute,
                1e-9 * (1.0 + tc.time_compute))
        << "rank " << r;

    // Every issued op was consumed: in-flight gauges land back on zero,
    // and the recovery gauge ends at the rank's recovery total.
    EXPECT_EQ(tr.counter_value(r, CounterId::InflightBytes), 0.0)
        << "rank " << r;
    EXPECT_EQ(tr.counter_value(r, CounterId::InflightOps), 0.0)
        << "rank " << r;
    if (tc.rma_retries > 0) {
      EXPECT_NEAR(tr.counter_value(r, CounterId::RecoverySeconds),
                  tc.time_recovery, 1e-12 + 0.01 * tc.time_recovery)
          << "rank " << r;
    }
  }
  EXPECT_GT(faults, 0u) << "fault injection did not fire; weak test";
  EXPECT_GT(retries, 0u);
}

TEST(Tracer, MetricsJsonSchemaRoundTrips) {
  trace::MetricsLog log("unit");
  MultiplyResult r;
  r.elapsed = 0.5;
  r.gflops = 12.0;
  r.overlap = 0.75;
  r.trace.gets = 3;
  r.trace.time_compute = 0.25;
  log.add("arm \"a\"", r, {{"n", 128.0}}, 0.125);
  log.add_metrics("scalar", {{"x", 1.0}, {"y", 2.0}}, {{"bytes", 256.0}},
                  0.25, 2.0);
  ASSERT_EQ(log.size(), 2u);

  JsonValue doc = JsonParser(log.json()).parse();
  EXPECT_EQ(doc.at("schema").str, "srumma-bench-metrics/1");
  EXPECT_EQ(doc.at("bench").str, "unit");
  const auto& rows = doc.at("rows").arr;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("label").str, "arm \"a\"");
  EXPECT_EQ(rows[0].at("params").at("n").num, 128.0);
  EXPECT_EQ(rows[0].at("metrics").at("gflops").num, 12.0);
  EXPECT_EQ(rows[0].at("counters").at("gets").num, 3.0);
  EXPECT_EQ(rows[0].at("counters").at("time_compute").num, 0.25);
  EXPECT_EQ(rows[0].at("metrics").at("wall_seconds").num, 0.125);
  EXPECT_EQ(rows[0].at("metrics").at("wall_per_virtual_second").num,
            0.125 / 0.5);
  EXPECT_FALSE(rows[1].has("counters"));
  EXPECT_EQ(rows[1].at("metrics").at("y").num, 2.0);
  EXPECT_EQ(rows[1].at("metrics").at("wall_seconds").num, 0.25);
  EXPECT_EQ(rows[1].at("metrics").at("wall_per_virtual_second").num,
            0.25 / 2.0);
}

}  // namespace
}  // namespace srumma
