// Fault injection, retry, timeout, and degradation: transient failures are
// retried transparently, exhausted retries surface as status (try_wait) or
// errors (wait), wait_for models bounded waiting, dead shared-memory
// domains degrade Direct -> Copy, corrupted payloads are caught by the
// checksum pass and redone — and the whole fault plane replays exactly
// from its seed.

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/srumma.hpp"
#include "msg/comm.hpp"
#include "trace/report.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

// Small-integer fill: every product and partial sum is exactly
// representable, so a recovered run must match the serial reference
// *bitwise* — any surviving corruption or lost retry shows up as a
// nonzero difference.
void fill_ints(MatrixView v, std::uint64_t seed) {
  Rng rng(seed);
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i)
      v(i, j) = static_cast<double>(static_cast<int>(rng.below(9))) - 4.0;
}

struct FaultRun {
  Matrix c;
  MultiplyResult result;
  TraceCounters trace;
};

FaultRun run_fault_multiply(const MachineModel& mm, ProcGrid grid, index_t n,
                            const RmaConfig& cfg, const SrummaOptions& opt,
                            std::uint64_t fill_seed) {
  Team team(mm);
  RmaRuntime rma(team, cfg);
  Matrix a_global(n, n), b_global(n, n);
  fill_ints(a_global.view(), fill_seed);
  fill_ints(b_global.view(), fill_seed + 1);

  FaultRun out{Matrix(n, n), {}, {}};
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, grid);
    DistMatrix b(rma, me, n, n, grid);
    DistMatrix c(rma, me, n, n, grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());
    c.local_view(me).fill(0.0);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out.result = r;
    c.gather_to(me, out.c.view());
  });
  out.trace = team.total_trace();
  return out;
}

Matrix reference_product(index_t n, std::uint64_t fill_seed) {
  Matrix a(n, n), b(n, n), c(n, n);
  fill_ints(a.view(), fill_seed);
  fill_ints(b.view(), fill_seed + 1);
  c.view().fill(0.0);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, 1.0, a, b, 0.0, c);
  return c;
}

TEST(FaultPlane, AbsentByDefault) {
  // No SRUMMA_FAULT_* environment, no RmaConfig::faults: no plane, and
  // FaultConfig::from_env agrees.
  Team team(MachineModel::testing(2, 1));
  EXPECT_EQ(team.faults(), nullptr);
  EXPECT_FALSE(fault::FaultConfig::from_env().has_value());
}

TEST(FaultPlane, KillKnobsDoNotShiftRandomStreams) {
  // The permanent kill (docs/FAULTS.md §7) is structural, not random:
  // reach_kill_point consumes NO rng draw.  Two planes with identical
  // random rates — one additionally configured to kill domain 1 at the
  // Chain point — must therefore produce bit-identical on_transfer /
  // on_message decision sequences, even with kill-point traffic (including
  // the trip itself) interleaved between every pair of draws.  Compared
  // call-by-call rather than run-by-run: a real killed run also changes
  // WHICH ops it issues after the death, but each (rank, seq) draw must
  // stay the same pure function of the seed.
  const MachineModel mm = MachineModel::testing(4, 2);
  fault::FaultConfig base;
  base.seed = 0xfeedbeef;
  base.fail_rate = 0.3;
  base.corrupt_rate = 0.2;
  base.delay_rate = 0.25;
  base.delay_factor = 4.0;
  fault::FaultConfig with_kill = base;
  with_kill.kill_domain = 1;
  with_kill.kill_point = fault::KillPoint::Chain;
  with_kill.buddy_offset = 1;

  fault::FaultPlane plain(mm, base);
  fault::FaultPlane killer(mm, with_kill);
  killer.arm_kills();

  for (int step = 0; step < 64; ++step) {
    const double vt = 1e-6 * step;
    // Non-matching point, matching point (trips on the first pass and is
    // idempotently re-reached on every later one), then the draws.
    (void)killer.reach_kill_point(fault::KillPoint::Prefetch, 0, vt);
    (void)killer.reach_kill_point(fault::KillPoint::Chain, 1, vt);
    for (int rank = 0; rank < mm.total_ranks(); ++rank) {
      const int peer = (rank + 1 + step) % mm.total_ranks();
      const fault::FaultDecision want = plain.on_transfer(rank, peer, vt);
      const fault::FaultDecision got = killer.on_transfer(rank, peer, vt);
      EXPECT_EQ(want.fail, got.fail) << "rank " << rank << " step " << step;
      EXPECT_EQ(want.corrupt, got.corrupt)
          << "rank " << rank << " step " << step;
      EXPECT_EQ(want.delay, got.delay) << "rank " << rank << " step " << step;
      EXPECT_EQ(plain.on_message(rank, peer, vt),
                killer.on_message(rank, peer, vt))
          << "rank " << rank << " step " << step;
    }
  }
  EXPECT_TRUE(killer.domain_killed(1));
  EXPECT_FALSE(plain.domain_killed(1));
}

TEST(FaultRecovery, TransientFailuresRetryTransparently) {
  Team team(MachineModel::testing(2, 1));
  fault::FaultConfig f;
  f.seed = 42;
  f.fail_rate = 0.3;
  RetryPolicy rp;
  rp.max_attempts = 12;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  RmaRuntime rma(team, cfg);

  constexpr std::size_t kElems = 64;
  team.run([&](Rank& me) {
    SymmetricRegion reg = rma.malloc_symmetric(me, kElems);
    double* mine = reg.base(me.id());
    for (std::size_t i = 0; i < kElems; ++i)
      mine[i] = 1000.0 * me.id() + static_cast<double>(i);
    me.barrier();

    const int peer = 1 - me.id();
    std::array<double, kElems> dst{};
    for (int round = 0; round < 32; ++round) {
      dst.fill(-1.0);
      RmaHandle h = rma.nbget(me, peer, reg.base(peer), dst.data(), kElems);
      rma.wait(me, h);
      EXPECT_EQ(h.status, RmaStatus::Ok);
      for (std::size_t i = 0; i < kElems; ++i)
        ASSERT_EQ(dst[i], 1000.0 * peer + static_cast<double>(i));
    }
    me.barrier();
  });

  const TraceCounters t = team.total_trace();
  EXPECT_GT(t.faults_injected, 0u);
  EXPECT_GT(t.rma_retries, 0u);
  EXPECT_GT(t.time_recovery, 0.0);
}

TEST(FaultRecovery, ExhaustedRetriesSurfaceAsStatusOrError) {
  fault::FaultConfig f;
  f.fail_rate = 1.0;  // every transfer fails, every retry fails
  RetryPolicy rp;
  rp.max_attempts = 2;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;

  {  // try_wait: status, no throw — and the failed transfer moved no data
    Team team(MachineModel::testing(2, 1));
    RmaRuntime rma(team, cfg);
    team.run([&](Rank& me) {
      SymmetricRegion reg = rma.malloc_symmetric(me, 8);
      reg.base(me.id())[0] = 3.25;
      me.barrier();
      double sentinel = -7.0;
      RmaHandle h = rma.nbget(me, 1 - me.id(), reg.base(1 - me.id()),
                              &sentinel, 1);
      EXPECT_EQ(rma.try_wait(me, h), RmaStatus::Error);
      EXPECT_FALSE(h.pending);
      EXPECT_EQ(h.status, RmaStatus::Error);
      EXPECT_EQ(h.attempts, 2);
      EXPECT_EQ(sentinel, -7.0);
      me.barrier();
    });
    EXPECT_EQ(team.total_trace().rma_retries, 2u);  // 1 retry per rank
  }

  {  // wait: throws, and Team::run rethrows the rank's error at call site
    Team team(MachineModel::testing(2, 1));
    RmaRuntime rma(team, cfg);
    try {
      team.run([&](Rank& me) {
        SymmetricRegion reg = rma.malloc_symmetric(me, 8);
        me.barrier();
        double x = 0.0;
        RmaHandle h =
            rma.nbget(me, 1 - me.id(), reg.base(1 - me.id()), &x, 1);
        rma.wait(me, h);
        FAIL() << "wait() must throw after exhausted retries";
      });
      FAIL() << "Team::run must rethrow the rank's error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("still failing"),
                std::string::npos);
    }
  }
}

TEST(FaultRecovery, WaitForTimesOutThenCompletes) {
  Team team(MachineModel::testing(2, 1));
  fault::FaultConfig f;
  f.delay_rate = 1.0;
  f.delay_factor = 50.0;
  RmaConfig cfg;
  cfg.faults = f;
  RmaRuntime rma(team, cfg);

  constexpr std::size_t kElems = 1 << 15;
  std::vector<double> dst(kElems, 0.0);
  team.run([&](Rank& me) {
    SymmetricRegion reg = rma.malloc_symmetric(me, kElems);
    me.barrier();
    if (me.id() == 0) {
      RmaHandle h = rma.nbget(me, 1, reg.base(1), dst.data(), kElems);
      const double t0 = me.clock().now();
      EXPECT_EQ(rma.wait_for(me, h, 1e-9), RmaStatus::Timeout);
      EXPECT_TRUE(h.pending);  // not consumed: the op is still in flight
      EXPECT_NEAR(me.clock().now(), t0 + 1e-9, 1e-15);
      rma.wait(me, h);  // same handle, no double-completion
      EXPECT_EQ(h.status, RmaStatus::Ok);
      EXPECT_GE(me.clock().now(), h.completion);
    }
    me.barrier();
  });
  EXPECT_GT(team.total_trace().faults_delayed, 0u);
}

TEST(FaultRecovery, OpTimeoutDoesNotReapplyAccumulate) {
  // A delayed-but-successful accumulate already applied its read-modify-
  // write at the owner when it was issued; the op-timeout channel must
  // count the overrun but keep the attempt — re-issuing would add
  // alpha*src a second time (silent numerical corruption).
  Team team(MachineModel::testing(2, 1));
  fault::FaultConfig f;
  f.delay_rate = 1.0;  // every op straggles...
  f.delay_factor = 50.0;
  RetryPolicy rp;
  rp.op_timeout = 1e-9;  // ...and every straggler blows the op deadline
  rp.max_attempts = 8;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  RmaRuntime rma(team, cfg);

  constexpr index_t kRows = 1 << 10;
  team.run([&](Rank& me) {
    SymmetricRegion reg =
        rma.malloc_symmetric(me, static_cast<std::size_t>(kRows));
    double* mine = reg.base(me.id());
    for (index_t i = 0; i < kRows; ++i) mine[i] = 1.0;
    me.barrier();
    if (me.id() == 0) {
      std::vector<double> src(static_cast<std::size_t>(kRows), 2.0);
      RmaHandle h = rma.nbacc2d(me, 1, 3.0, src.data(), kRows, kRows, 1,
                                reg.base(1), kRows);
      rma.wait(me, h);
      EXPECT_EQ(h.status, RmaStatus::Ok);
      EXPECT_EQ(h.attempts, 1);  // never re-issued
    }
    me.barrier();
    if (me.id() == 1) {
      for (index_t i = 0; i < kRows; ++i)
        ASSERT_EQ(mine[i], 1.0 + 3.0 * 2.0);  // applied exactly once
    }
    me.barrier();
  });
  EXPECT_GT(team.total_trace().rma_op_timeouts, 0u);
  EXPECT_EQ(team.total_trace().rma_retries, 0u);
}

TEST(FaultRecovery, WaitForParksAtDeadlineDuringRetryBackoff) {
  // The deadline lands between a failed attempt's completion and its
  // re-issue: wait_for must park exactly at the deadline — not charge the
  // backoff or book a fresh attempt past it — and a later wait resumes
  // the retry from the parked state.
  Team team(MachineModel::testing(2, 1));
  fault::FaultConfig f;
  f.fail_rate = 1.0;
  f.last_op = 0;  // only each rank's first RMA op fails; the retry succeeds
  RetryPolicy rp;
  rp.backoff_base = 1e-3;  // long pause: the deadline lands inside it
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  RmaRuntime rma(team, cfg);

  constexpr std::size_t kElems = 256;
  team.run([&](Rank& me) {
    SymmetricRegion reg = rma.malloc_symmetric(me, kElems);
    double* mine = reg.base(me.id());
    for (std::size_t i = 0; i < kElems; ++i)
      mine[i] = 10.0 * me.id() + 1.0;
    me.barrier();
    if (me.id() == 0) {
      std::vector<double> dst(kElems, -1.0);
      RmaHandle h = rma.nbget(me, 1, reg.base(1), dst.data(), kElems);
      const double t0 = me.clock().now();
      // Past the failed attempt's completion, inside the backoff window.
      const double timeout = (h.completion - t0) + 0.5 * rp.backoff_base;
      EXPECT_EQ(rma.wait_for(me, h, timeout), RmaStatus::Timeout);
      EXPECT_TRUE(h.pending);
      EXPECT_TRUE(h.retry_parked);
      EXPECT_EQ(me.clock().now(), t0 + timeout);  // exactly timeout, no more
      EXPECT_EQ(me.trace().rma_retries, 0u);      // no re-issue was booked

      rma.wait(me, h);  // resumes backoff + re-issue; retry succeeds
      EXPECT_EQ(h.status, RmaStatus::Ok);
      EXPECT_EQ(h.attempts, 2);
      for (std::size_t i = 0; i < kElems; ++i) ASSERT_EQ(dst[i], 11.0);
    }
    me.barrier();
  });
  EXPECT_EQ(team.total_trace().rma_retries, 1u);
}

TEST(FaultRecovery, SameDomainEagerSendsDrawNoDelay) {
  // The intra-domain eager handoff schedules no wire, so the delay channel
  // must not be drawn there — a drawn factor would inflate faults_delayed
  // with delays that had no effect.
  fault::FaultConfig f;
  f.delay_rate = 1.0;
  auto eager_exchange = [&](const MachineModel& mm) {
    Team team(mm);
    team.set_fault_plane(
        std::make_shared<fault::FaultPlane>(team.machine(), f));
    Comm comm(team);
    const std::array<double, 4> buf{1.0, 2.0, 3.0, 4.0};
    team.run([&](Rank& me) {
      if (me.id() == 0) {
        comm.send(me, 1, 7, buf.data(), buf.size());
      } else {
        std::array<double, 4> r{};
        comm.recv(me, 0, 7, r.data(), r.size());
        for (std::size_t i = 0; i < r.size(); ++i) ASSERT_EQ(r[i], buf[i]);
      }
    });
    return team.total_trace().faults_delayed;
  };
  // Same domain: no wire, no draw, counter stays zero.
  EXPECT_EQ(eager_exchange(MachineModel::testing(1, 2)), 0u);
  // Inter-node: the factor really stretches the wire and is counted.
  EXPECT_GT(eager_exchange(MachineModel::testing(2, 1)), 0u);
}

TEST(FaultRecovery, DeadDomainFallsBackToCopy) {
  fault::FaultConfig f;
  f.dead_domain = 1;
  RmaConfig cfg;
  cfg.faults = f;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Direct;

  const index_t n = 32;
  FaultRun run = run_fault_multiply(MachineModel::testing(2, 2),
                                    ProcGrid{2, 2}, n, cfg, opt, 7);
  EXPECT_EQ(max_abs_diff(run.c.view(), reference_product(n, 7).view()), 0.0);
  EXPECT_GT(run.trace.shm_fallbacks, 0u);

  // The clean run uses direct access where the degraded one paid copies.
  FaultRun clean = run_fault_multiply(MachineModel::testing(2, 2),
                                      ProcGrid{2, 2}, n, RmaConfig{}, opt, 7);
  EXPECT_EQ(clean.trace.shm_fallbacks, 0u);
  EXPECT_GT(run.trace.copy_tasks, clean.trace.copy_tasks);
}

TEST(FaultRecovery, ChecksumPassRepairsCorruption) {
  fault::FaultConfig f;
  f.seed = 99;
  f.corrupt_rate = 0.3;
  RmaConfig cfg;
  cfg.faults = f;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;  // every operand is fetched

  const index_t n = 32;
  const Matrix ref = reference_product(n, 5);

  // Without verification the injected bit flips land in C...
  SrummaOptions off = opt;
  FaultRun bad = run_fault_multiply(MachineModel::testing(2, 2),
                                    ProcGrid{2, 2}, n, cfg, off, 5);
  EXPECT_GT(bad.trace.faults_corrupted, 0u);
  EXPECT_GT(max_abs_diff(bad.c.view(), ref.view()), 0.0);

  // ...with it, every corrupt patch is refetched before dgemm consumes it.
  opt.verify_checksums = true;
  FaultRun good = run_fault_multiply(MachineModel::testing(2, 2),
                                     ProcGrid{2, 2}, n, cfg, opt, 5);
  EXPECT_GT(good.trace.faults_corrupted, 0u);
  EXPECT_GT(good.trace.checksum_redos, 0u);
  EXPECT_GT(good.trace.time_recovery, 0.0);
  EXPECT_EQ(max_abs_diff(good.c.view(), ref.view()), 0.0);
}

// The acceptance bar: failures, corruption, and a straggler link all at
// once; the pipeline must finish, match the serial reference bitwise, and
// replay identically — per seed — run over run.
TEST(FaultRecovery, RecoversBitwiseAcrossSeedsDeterministically) {
  const index_t n = 48;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;
  opt.verify_checksums = true;
  opt.c_chunk = 12;
  opt.k_chunk = 8;

  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    fault::FaultConfig f;
    f.seed = seed;
    f.fail_rate = 0.03;
    f.corrupt_rate = 0.03;
    f.delay_rate = 0.05;
    f.straggler_node = 1;
    RetryPolicy rp;
    rp.max_attempts = 8;
    RmaConfig cfg;
    cfg.faults = f;
    cfg.retry = rp;

    const Matrix ref = reference_product(n, seed);
    FaultRun r1 = run_fault_multiply(MachineModel::testing(2, 2),
                                     ProcGrid{2, 2}, n, cfg, opt, seed);
    EXPECT_EQ(max_abs_diff(r1.c.view(), ref.view()), 0.0)
        << "seed " << seed;
    EXPECT_GT(r1.trace.faults_injected + r1.trace.faults_corrupted, 0u)
        << "seed " << seed;
    EXPECT_GT(r1.trace.rma_retries + r1.trace.checksum_redos +
                  r1.trace.task_requeues,
              0u)
        << "seed " << seed;

    // Exact replay: fresh team, same seed, bit-identical result and an
    // identical fault/recovery schedule.  (Virtual *makespan* is only
    // deterministic up to the contention model's first-fit gap placement,
    // which resolves overlapping NIC reservations in booking order — the
    // decision streams and the data path replay exactly.)
    FaultRun r2 = run_fault_multiply(MachineModel::testing(2, 2),
                                     ProcGrid{2, 2}, n, cfg, opt, seed);
    EXPECT_EQ(max_abs_diff(r2.c.view(), r1.c.view()), 0.0) << "seed " << seed;
    EXPECT_EQ(r2.trace.faults_injected, r1.trace.faults_injected)
        << "seed " << seed;
    EXPECT_EQ(r2.trace.faults_corrupted, r1.trace.faults_corrupted)
        << "seed " << seed;
    EXPECT_EQ(r2.trace.faults_delayed, r1.trace.faults_delayed)
        << "seed " << seed;
    EXPECT_EQ(r2.trace.rma_retries, r1.trace.rma_retries) << "seed " << seed;
    EXPECT_EQ(r2.trace.checksum_redos, r1.trace.checksum_redos)
        << "seed " << seed;
    EXPECT_EQ(r2.trace.task_requeues, r1.trace.task_requeues)
        << "seed " << seed;
  }
}

TEST(FaultRecovery, ClassificationReconcilesExactlyUnderRequeues) {
  // Accounting identity: copy_tasks + direct_tasks must equal the block
  // products actually executed (gemm_calls) — exactly, even when operand
  // fetches exhaust their RMA retries and tasks are requeued (pipeline) or
  // re-armed (engine).  The regression this guards: the pipeline counted
  // the classification at *issue* time, so every requeued task was counted
  // twice and the copy/direct split drifted from the work done.
  fault::FaultConfig f;
  f.seed = 31;
  f.fail_rate = 0.45;
  RetryPolicy rp;
  rp.max_attempts = 2;  // exhaustion is common -> plenty of requeues
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;  // every operand is fetched
  opt.c_chunk = 8;
  opt.k_chunk = 8;

  const index_t n = 32;
  const Matrix ref = reference_product(n, 13);

  // Static pipeline: failed acquires requeue the task at the tail; each
  // tail copy's fresh fetches count as reissues, never as new products.
  opt.engine = EngineMode::Off;
  FaultRun pipe = run_fault_multiply(MachineModel::testing(2, 2),
                                     ProcGrid{2, 2}, n, cfg, opt, 13);
  EXPECT_EQ(max_abs_diff(pipe.c.view(), ref.view()), 0.0);
  EXPECT_GT(pipe.trace.task_requeues, 0u);
  EXPECT_GT(pipe.trace.task_reissues, 0u);
  EXPECT_EQ(pipe.trace.copy_tasks + pipe.trace.direct_tasks,
            pipe.trace.gemm_calls);
  EXPECT_EQ(pipe.trace.direct_tasks, 0u);  // Copy flavor: nothing direct

  // Task engine: failed operands re-arm in place — no requeues, the same
  // reissue counter, and the steal ledger reconciles against the classes.
  opt.engine = EngineMode::On;
  FaultRun eng = run_fault_multiply(MachineModel::testing(2, 2),
                                    ProcGrid{2, 2}, n, cfg, opt, 13);
  EXPECT_EQ(max_abs_diff(eng.c.view(), ref.view()), 0.0);
  EXPECT_EQ(eng.trace.task_requeues, 0u);
  EXPECT_GT(eng.trace.task_reissues, 0u);
  EXPECT_EQ(eng.trace.copy_tasks + eng.trace.direct_tasks,
            eng.trace.gemm_calls);
  EXPECT_EQ(eng.trace.engine_tasks + eng.trace.tasks_stolen,
            eng.trace.copy_tasks + eng.trace.direct_tasks);
}

TEST(FaultRecovery, CheckerStaysCleanUnderRetries) {
  // A retried op must be a fresh checker op, not a double-wait on the old
  // one: with the shadow-state checker in throw mode, completing at all is
  // the assertion.
  fault::FaultConfig f;
  f.seed = 3;
  f.fail_rate = 0.4;
  RetryPolicy rp;
  rp.max_attempts = 16;
  RmaConfig cfg;
  cfg.check = true;
  cfg.faults = f;
  cfg.retry = rp;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;

  const index_t n = 24;
  FaultRun run = run_fault_multiply(MachineModel::testing(2, 2),
                                    ProcGrid{2, 2}, n, cfg, opt, 9);
  EXPECT_EQ(max_abs_diff(run.c.view(), reference_product(n, 9).view()), 0.0);
  EXPECT_GT(run.trace.rma_retries, 0u);
}

TEST(FaultRecovery, TraceReportShowsRecovery) {
  fault::FaultConfig f;
  f.seed = 17;
  f.fail_rate = 0.1;
  RetryPolicy rp;
  rp.max_attempts = 10;
  RmaConfig cfg;
  cfg.faults = f;
  cfg.retry = rp;
  SrummaOptions opt;
  opt.shm_flavor = ShmFlavor::Copy;

  FaultRun noisy = run_fault_multiply(MachineModel::testing(2, 2),
                                      ProcGrid{2, 2}, 32, cfg, opt, 4);
  EXPECT_NE(describe(noisy.result).find("recovery:"), std::string::npos);

  FaultRun clean = run_fault_multiply(MachineModel::testing(2, 2),
                                      ProcGrid{2, 2}, 32, RmaConfig{}, opt, 4);
  EXPECT_EQ(describe(clean.result).find("recovery:"), std::string::npos);
  EXPECT_EQ(clean.trace.faults_injected, 0u);
  EXPECT_EQ(clean.trace.rma_retries, 0u);
  EXPECT_EQ(clean.trace.time_recovery, 0.0);
}

TEST(FaultRecovery, MsgStragglerSlowsRendezvous) {
  // Same rendezvous exchange with and without a straggler link on node 1:
  // the wire time must stretch by roughly the configured factor.
  constexpr std::size_t kElems = 1 << 16;  // rendezvous-sized
  auto exchange_time = [&](double straggler_factor) {
    Team team(MachineModel::testing(2, 1));
    if (straggler_factor > 1.0) {
      fault::FaultConfig f;
      f.straggler_node = 1;
      f.straggler_factor = straggler_factor;
      team.set_fault_plane(
          std::make_shared<fault::FaultPlane>(team.machine(), f));
    }
    Comm comm(team);
    std::vector<double> buf(kElems, 1.0);
    team.run([&](Rank& me) {
      if (me.id() == 0) {
        comm.send(me, 1, 5, buf.data(), kElems);
      } else {
        std::vector<double> r(kElems);
        comm.recv(me, 0, 5, r.data(), kElems);
      }
    });
    return team.max_clock();
  };

  const double t_clean = exchange_time(1.0);
  const double t_slow = exchange_time(8.0);
  EXPECT_GT(t_slow, 3.0 * t_clean);
}

}  // namespace
}  // namespace srumma
