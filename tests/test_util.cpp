// Unit tests for src/util: matrix container and views, RNG, tables, CLI.

#include <gtest/gtest.h>

#include <sstream>

#include "util/aligned.hpp"
#include "util/cli.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace srumma {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.ld(), 3);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1.0);
  EXPECT_EQ(m.data()[1], 2.0);
  EXPECT_EQ(m.data()[2], 3.0);
}

TEST(Matrix, AlignedStorage) {
  Matrix m(5, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kCacheLineBytes, 0u);
}

TEST(Matrix, EmptyIsLegal) {
  Matrix m(0, 0);
  EXPECT_TRUE(m.empty());
  Matrix r(0, 5);
  EXPECT_EQ(r.size(), 0);
}

TEST(Matrix, NegativeDimsThrow) {
  EXPECT_THROW(Matrix(-1, 2), Error);
  EXPECT_THROW(Matrix(2, -1), Error);
}

TEST(MatrixView, BlockAddressesSubmatrix) {
  Matrix m(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(10 * i + j);
  MatrixView b = m.block(1, 2, 2, 2);
  EXPECT_EQ(b(0, 0), m(1, 2));
  EXPECT_EQ(b(1, 1), m(2, 3));
  EXPECT_EQ(b.ld(), 4);
  b(0, 0) = -5.0;
  EXPECT_EQ(m(1, 2), -5.0);
}

TEST(MatrixView, OutOfRangeBlockThrows) {
  Matrix m(4, 4);
  EXPECT_THROW((void)m.block(2, 2, 3, 1), Error);
  EXPECT_THROW((void)m.block(0, 0, 5, 1), Error);
  EXPECT_THROW((void)m.block(-1, 0, 1, 1), Error);
}

TEST(MatrixView, LdSmallerThanRowsThrows) {
  double buf[4] = {};
  EXPECT_THROW(MatrixView(buf, 4, 1, 2), Error);
}

TEST(MatrixOps, CopyRespectsStrides) {
  Matrix src(4, 4);
  fill_random(src.view(), 1);
  Matrix dst(2, 2);
  copy(src.block(1, 1, 2, 2), dst.view());
  EXPECT_EQ(dst(0, 0), src(1, 1));
  EXPECT_EQ(dst(1, 1), src(2, 2));
}

TEST(MatrixOps, CopyDimMismatchThrows) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(copy(a.view(), b.view()), Error);
}

TEST(MatrixOps, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  a(1, 0) = 3.0;
  b(1, 0) = 1.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 2.0);
}

TEST(MatrixOps, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(a.view()), 5.0);
}

TEST(MatrixOps, TransposeRoundTrip) {
  Matrix a(3, 5);
  fill_random(a.view(), 7);
  Matrix at(5, 3);
  transpose(a.view(), at.view());
  Matrix back(3, 5);
  transpose(at.view(), back.view());
  EXPECT_EQ(max_abs_diff(a.view(), back.view()), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, FillCoordsMatchesOffsets) {
  // A sub-block filled with offsets equals the same region of a full fill.
  Matrix full(8, 10);
  fill_coords(full.view(), 0, 0);
  Matrix sub(3, 4);
  fill_coords(sub.view(), 2, 5);
  EXPECT_EQ(max_abs_diff(sub.view(), full.block(2, 5, 3, 4)), 0.0);
}

TEST(Table, AlignsAndCounts) {
  TableWriter t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os, "title");
  const std::string s = os.str();
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, CellCountMismatchThrows) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvOutput) {
  TableWriter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormat) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(static_cast<long long>(42)), "42");
}

TEST(Cli, ParsesValuesAndDefaults) {
  CliParser p;
  p.add_flag("n", "100", "size");
  p.add_flag("verbose", "false", "switch");
  const char* argv[] = {"prog", "--n", "250", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.get_int("n"), 250);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Cli, EqualsForm) {
  CliParser p;
  p.add_flag("rate", "1.5", "a rate");
  const char* argv[] = {"prog", "--rate=2.25"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.25);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser p;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(p.parse(3, argv), Error);
}

TEST(Cli, BadIntThrows) {
  CliParser p;
  p.add_flag("n", "1", "");
  const char* argv[] = {"prog", "--n", "12x"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW((void)p.get_int("n"), std::exception);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ(5_us, 5e-6);
  EXPECT_DOUBLE_EQ(2.5_GBs, 2.5e9);
  EXPECT_DOUBLE_EQ(16_KiB, 16384.0);
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

TEST(Error, MessageCarriesContext) {
  try {
    SRUMMA_REQUIRE(false, "something bad");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("something bad"), std::string::npos);
  }
}

}  // namespace
}  // namespace srumma
