// Tests for the Section 2.1 analytic model and the trace/report helpers.

#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "perf/model.hpp"
#include "trace/profile.hpp"
#include "trace/report.hpp"

namespace srumma {
namespace {

perf::CostParams sample_params() {
  // 1 GFLOP/s-ish machine, 250 MB/s network, 10 us latency.
  return perf::CostParams{2e-9, 3.2e-8, 1e-5};
}

TEST(PerfModel, SequentialTimeIsCubic) {
  const auto p = sample_params();
  EXPECT_DOUBLE_EQ(perf::t_seq(100, p), 1e6 * p.t_ma);
  EXPECT_DOUBLE_EQ(perf::t_seq(200, p) / perf::t_seq(100, p), 8.0);
}

TEST(PerfModel, SingleProcessorDegeneratesToSerialPlusLatency) {
  const auto p = sample_params();
  EXPECT_NEAR(perf::t_par_rma(100, 1, p),
              perf::t_seq(100, p) + 2 * 100.0 * 100.0 * p.t_w + 2 * p.t_s,
              1e-12);
}

TEST(PerfModel, ComputeTermScalesInverselyWithP) {
  const auto p = sample_params();
  const double t4 = perf::t_par_rma_overlap(1000, 4, p, 0.0);
  const double t16 = perf::t_par_rma_overlap(1000, 16, p, 0.0);
  // omega = 0: only compute + latency terms remain; latency is tiny here.
  EXPECT_NEAR(t4 / t16, 4.0, 0.01);
}

TEST(PerfModel, FullOverlapReducesToComputePlusLatency) {
  const auto p = sample_params();
  const double n = 2000, np = 16;
  EXPECT_NEAR(perf::t_par_rma_overlap(n, np, p, 0.0),
              n * n * n * p.t_ma / np + 2 * p.t_s * std::sqrt(np), 1e-12);
  // Eq. (1) == eq. (3) at omega = 1.
  EXPECT_DOUBLE_EQ(perf::t_par_rma(n, np, p),
                   perf::t_par_rma_overlap(n, np, p, 1.0));
}

TEST(PerfModel, OverlapMonotone) {
  const auto p = sample_params();
  double prev = 0.0;
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double t = perf::t_par_rma_overlap(500, 64, p, w);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PerfModel, EfficiencyPropertiesMatchThePaper) {
  const auto p = sample_params();
  // Efficiency falls with P at fixed N, rises with N at fixed P.
  EXPECT_GT(perf::efficiency(1000, 4, p), perf::efficiency(1000, 64, p));
  EXPECT_GT(perf::efficiency(4000, 64, p), perf::efficiency(500, 64, p));
  EXPECT_LE(perf::efficiency(1e9, 4, p), 1.0);
}

TEST(PerfModel, IsoefficiencyIsSqrtP) {
  const auto p = sample_params();
  // Holding eta fixed, N must grow like sqrt(P): N(4P)/N(P) = 2, so the
  // work N^3 grows like P^1.5 — the paper's O(P^{3/2}) isoefficiency.
  const double n1 = perf::isoefficiency_n(16, 0.8, p);
  const double n2 = perf::isoefficiency_n(64, 0.8, p);
  EXPECT_NEAR(n2 / n1, 2.0, 1e-9);
  // And the returned N really does produce the requested efficiency.
  EXPECT_NEAR(perf::efficiency(n1, 16, p), 0.8, 1e-9);
}

TEST(PerfModel, ParamsFromMachineAreConsistent) {
  const MachineModel m = MachineModel::linux_myrinet(4);
  const auto p = perf::params_from_machine(m, 1000);
  EXPECT_NEAR(p.t_w, 8.0 / m.net_bw, 1e-15);
  EXPECT_DOUBLE_EQ(p.t_s, m.net_latency);
  EXPECT_NEAR(p.t_ma, 2.0 / m.dgemm.rate(1000, 1000, 1000), 1e-18);
}

TEST(PerfModel, InvalidInputsThrow) {
  const auto p = sample_params();
  EXPECT_THROW((void)perf::t_par_rma(0, 4, p), Error);
  EXPECT_THROW((void)perf::t_par_rma_overlap(10, 4, p, 1.5), Error);
  EXPECT_THROW((void)perf::efficiency(10, 0, p), Error);
  EXPECT_THROW((void)perf::isoefficiency_n(4, 1.0, p), Error);
}

TEST(TraceReport, DeltaSubtractsFieldwise) {
  TraceCounters start, end;
  start.time_compute = 1.0;
  start.gets = 2;
  end.time_compute = 3.5;
  end.gets = 7;
  end.bytes_remote = 100;
  const TraceCounters d = trace_delta(end, start);
  EXPECT_DOUBLE_EQ(d.time_compute, 2.5);
  EXPECT_EQ(d.gets, 5u);
  EXPECT_EQ(d.bytes_remote, 100u);
}

TEST(TraceReport, CollectResultAggregatesAcrossRanks) {
  Team team(MachineModel::testing(2, 2));
  MultiplyResult out;
  team.run([&](Rank& me) {
    me.barrier();
    const double t0 = me.clock().now();
    const TraceCounters start = me.trace();
    me.charge_gemm(10, 10, 10);
    MultiplyResult r = collect_result(me, t0, start, 4 * 2.0 * 1000.0);
    if (me.id() == 0) out = r;
  });
  EXPECT_EQ(out.trace.gemm_calls, 4u);
  EXPECT_GT(out.elapsed, 0.0);
  EXPECT_GT(out.gflops, 0.0);
}

TEST(TraceReport, DescribeMentionsKeyNumbers) {
  MultiplyResult r;
  r.gflops = 12.34;
  r.elapsed = 0.5;
  r.overlap = 0.9;
  const std::string s = describe(r);
  EXPECT_NE(s.find("12.34"), std::string::npos);
  EXPECT_NE(s.find("90.00%"), std::string::npos);
}

TEST(TraceProfile, ReportsRanksAndResources) {
  Team team(MachineModel::testing(2, 2));
  team.run([&](Rank& me) {
    me.charge_gemm(64, 64, 64);
    if (me.id() == 0) {
      // Book some NIC time so the resource section is non-empty.
      team.network().nic_out(0).book(0.0, 1e-3);
      team.network().domain_mem(0).book(0.0, 5e-4);
    }
    me.barrier();
  });
  std::ostringstream os;
  print_profile(os, team);
  const std::string s = os.str();
  EXPECT_NE(s.find("rank profile"), std::string::npos);
  EXPECT_NE(s.find("resource utilization"), std::string::npos);
  EXPECT_NE(s.find("node 0 NIC out"), std::string::npos);
  EXPECT_NE(s.find("domain 0 memory"), std::string::npos);
}

TEST(TraceProfile, CapsRowsOnBigTeams) {
  Team team(MachineModel::sgi_altix(64));
  team.run([](Rank& me) { me.charge_gemm(8, 8, 8); });
  std::ostringstream os;
  print_profile(os, team, 8);
  // Header + separator + at most 8 rank rows.
  EXPECT_LT(os.str().size(), 2000u);
}

}  // namespace
}  // namespace srumma
