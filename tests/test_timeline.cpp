// Tests for the opt-in event timeline: recording hooks, Gantt rendering,
// CSV output, and the off-by-default guarantee.

#include <gtest/gtest.h>

#include <sstream>

#include "core/srumma.hpp"
#include "rma/rma.hpp"
#include "tests/helpers.hpp"
#include "vtime/timeline.hpp"

namespace srumma {
namespace {

TEST(Timeline, OffByDefault) {
  Team team(MachineModel::testing(2, 1));
  EXPECT_EQ(team.timeline(), nullptr);
  team.run([](Rank& me) { me.charge_gemm(32, 32, 32); });
  EXPECT_EQ(team.timeline(), nullptr);
}

TEST(Timeline, RecordsComputeGetWaitBarrier) {
  Team team(MachineModel::testing(2, 1));
  team.enable_timeline();
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    SymmetricRegion r = rma.malloc_symmetric(me, 4096);
    me.barrier();
    me.charge_gemm(64, 64, 64);
    if (me.id() == 0) {
      RmaHandle h = rma.nbget(me, 1, r.base(1), nullptr, 4096);
      rma.wait(me, h);  // remote transfer: wait is non-trivial
    }
    me.barrier();
  });
  ASSERT_NE(team.timeline(), nullptr);
  const auto& ev0 = team.timeline()->events(0);
  bool has_compute = false, has_wait = false;
  for (const auto& e : ev0) {
    EXPECT_LT(e.t0, e.t1);  // spans are well-formed
    has_compute |= e.kind == EventKind::Compute;
    has_wait |= e.kind == EventKind::Wait;
  }
  EXPECT_TRUE(has_compute);
  EXPECT_TRUE(has_wait);
  // Rank 1 idled into the final barrier: must show a Barrier span.
  bool has_barrier = false;
  for (const auto& e : team.timeline()->events(1))
    has_barrier |= e.kind == EventKind::Barrier;
  EXPECT_TRUE(has_barrier);
}

TEST(Timeline, GetSpanRecordedAtIssue) {
  // The Get span covers issue -> modeled completion (the overlap window),
  // not the wait.
  Team team(MachineModel::testing(2, 1));
  team.enable_timeline();
  RmaRuntime rma(team);
  team.run([&](Rank& me) {
    me.barrier();
    if (me.id() == 0) {
      Matrix dst(64, 64);
      SymmetricRegion r = rma.malloc_symmetric(me, 64 * 64);
      RmaHandle h = rma.nbget2d(me, 1, r.base(1), 64, 64, 64, dst.data(), 64);
      rma.wait(me, h);
    } else {
      (void)rma.malloc_symmetric(me, 64 * 64);
    }
  });
  bool has_get = false;
  for (const auto& e : team.timeline()->events(0)) {
    if (e.kind == EventKind::Get) {
      has_get = true;
      EXPECT_GT(e.t1 - e.t0, team.machine().net_latency * 0.9);
    }
  }
  EXPECT_TRUE(has_get);
}

TEST(Timeline, ClearedByTeamReset) {
  Team team(MachineModel::testing(1, 1));
  team.enable_timeline();
  team.run([](Rank& me) { me.charge_gemm(16, 16, 16); });
  EXPECT_FALSE(team.timeline()->events(0).empty());
  team.reset();
  EXPECT_NE(team.timeline(), nullptr);  // still enabled
  EXPECT_TRUE(team.timeline()->events(0).empty());
}

TEST(Timeline, GanttRendersDominantKinds) {
  Timeline tl(2);
  tl.record(0, EventKind::Compute, 0.0, 0.6);
  tl.record(0, EventKind::Wait, 0.6, 1.0);
  tl.record(1, EventKind::Get, 0.0, 1.0);
  std::ostringstream os;
  tl.print_gantt(os, 0.0, 1.0, 10, 16);
  const std::string s = os.str();
  EXPECT_NE(s.find("CCCCCC"), std::string::npos);
  EXPECT_NE(s.find("WWW"), std::string::npos);
  EXPECT_NE(s.find("GGGGGGGGGG"), std::string::npos);
}

TEST(Timeline, GanttAutoRangeAndIdle) {
  Timeline tl(1);
  tl.record(0, EventKind::Compute, 1.0, 2.0);
  std::ostringstream os;
  tl.print_gantt(os, 0.0, 0.0, 20, 16);  // auto range [0, 2]
  const std::string s = os.str();
  EXPECT_NE(s.find(".........."), std::string::npos);  // first half idle
  EXPECT_NE(s.find("CCCCCCCCC"), std::string::npos);
}

TEST(Timeline, GanttCapsRanks) {
  Timeline tl(40);
  for (int r = 0; r < 40; ++r) tl.record(r, EventKind::Compute, 0, 1);
  std::ostringstream os;
  tl.print_gantt(os, 0, 1, 20, 8);
  EXPECT_NE(os.str().find("32 more ranks not shown"), std::string::npos);
}

TEST(Timeline, CsvRoundTrips) {
  Timeline tl(2);
  tl.record(1, EventKind::Put, 0.5, 0.75);
  std::ostringstream os;
  tl.write_csv(os);
  EXPECT_NE(os.str().find("rank,kind,start,end"), std::string::npos);
  EXPECT_NE(os.str().find("1,P,0.5,0.75"), std::string::npos);
}

TEST(Timeline, ZeroLengthSpansDropped) {
  Timeline tl(1);
  tl.record(0, EventKind::Wait, 1.0, 1.0);
  EXPECT_TRUE(tl.events(0).empty());
  EXPECT_THROW(tl.record(5, EventKind::Wait, 0, 1), Error);
}

TEST(Timeline, SrummaPipelineShowsOverlap) {
  // On a cluster run, gets must overlap compute: rank 0's Get spans overlap
  // its Compute spans in virtual time (that is the whole point).
  Team team(MachineModel::linux_myrinet(4));
  team.enable_timeline();
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(8);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 1024, 1024, g, true);
    DistMatrix b(rma, me, 1024, 1024, g, true);
    DistMatrix c(rma, me, 1024, 1024, g, true);
    srumma_multiply(me, a, b, c, SrummaOptions{});
  });
  const auto& ev = team.timeline()->events(0);
  bool overlapped = false;
  for (const auto& get : ev) {
    if (get.kind != EventKind::Get) continue;
    for (const auto& cmp : ev) {
      if (cmp.kind != EventKind::Compute) continue;
      if (get.t0 < cmp.t1 && cmp.t0 < get.t1) {
        overlapped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlapped);
}

}  // namespace
}  // namespace srumma
