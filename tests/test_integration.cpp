// Integration tests: cross-algorithm agreement on real data, and the
// paper's qualitative claims expressed as assertions over the virtual-time
// model (who wins, what helps, where the effects come from).

#include <gtest/gtest.h>

#include "baselines/cannon.hpp"
#include "baselines/summa.hpp"
#include "core/srumma.hpp"
#include "perf/model.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

using blas::Trans;

TEST(Integration, SrummaAndSummaProduceTheSameProduct) {
  Team team(MachineModel::testing(2, 2));
  RmaRuntime rma(team);
  Comm comm(team);
  Matrix a_g = testing::coords_matrix(20, 24);
  Matrix b_g(24, 16);
  fill_random(b_g.view(), 9);
  Matrix c_srumma(20, 16), c_summa(20, 16);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, 20, 24, ProcGrid{2, 2});
    DistMatrix b(rma, me, 24, 16, ProcGrid{2, 2});
    DistMatrix c1(rma, me, 20, 16, ProcGrid{2, 2});
    DistMatrix c2(rma, me, 20, 16, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    srumma_multiply(me, a, b, c1, SrummaOptions{});
    summa_multiply(me, comm, a, b, c2, SummaOptions{});
    c1.gather_to(me, c_srumma.view());
    c2.gather_to(me, c_summa.view());
  });
  EXPECT_LE(max_abs_diff(c_srumma.view(), c_summa.view()),
            testing::gemm_tolerance(24));
}

// Phantom SRUMMA run on a machine; returns team-level result.  Every test
// built on this helper asserts the static pipeline's timing-model shapes
// (who wins, what helps, how close to eq. (3)); the task engine's
// out-of-order/steal schedule legitimately changes those, so pin it off
// regardless of SRUMMA_ENGINE.  The numerical-agreement tests above/below
// call srumma_multiply directly and do honor the env selection.
MultiplyResult run_srumma(Team& team, RmaRuntime& rma, index_t n, ProcGrid g,
                          SrummaOptions opt) {
  opt.engine = EngineMode::Off;
  MultiplyResult out;
  team.reset();
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g, true);
    DistMatrix b(rma, me, n, n, g, true);
    DistMatrix c(rma, me, n, n, g, true);
    MultiplyResult r = srumma_multiply(me, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  return out;
}

MultiplyResult run_pdgemm(Team& team, RmaRuntime& rma, Comm& comm, index_t n,
                          ProcGrid g, PdgemmOptions opt) {
  MultiplyResult out;
  team.reset();
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, g, true);
    DistMatrix b(rma, me, n, n, g, true);
    DistMatrix c(rma, me, n, n, g, true);
    MultiplyResult r = pdgemm_model(me, comm, a, b, c, opt);
    if (me.id() == 0) out = r;
  });
  return out;
}

TEST(Integration, SrummaBeatsPdgemmOnEveryPaperPlatform) {
  // The headline claim (Fig. 10): SRUMMA outperforms pdgemm on all four
  // platform models.  N = 2000 on 16 ranks.
  struct P {
    MachineModel m;
    const char* name;
  };
  const P platforms[] = {
      {MachineModel::linux_myrinet(8), "Linux-Myrinet"},
      {MachineModel::ibm_sp(1), "IBM-SP"},
      {MachineModel::cray_x1(4), "Cray-X1"},
      {MachineModel::sgi_altix(16), "SGI-Altix"},
  };
  for (const auto& p : platforms) {
    Team team(p.m);
    RmaRuntime rma(team);
    Comm comm(team);
    const ProcGrid g = ProcGrid::near_square(team.size());
    SrummaOptions sopt;
    if (!p.m.remote_cacheable) sopt.shm_flavor = ShmFlavor::Copy;
    const MultiplyResult s = run_srumma(team, rma, 2000, g, sopt);
    const MultiplyResult d = run_pdgemm(team, rma, comm, 2000, g, {});
    EXPECT_LT(s.elapsed, d.elapsed) << p.name;
  }
}

TEST(Integration, OverlapExceeds90PercentOnLinuxCluster) {
  // Paper Section 4: "we were able to overlap 90% of the communication with
  // computation" on the Linux cluster.
  Team team(MachineModel::linux_myrinet(8));
  RmaRuntime rma(team);
  const MultiplyResult r =
      run_srumma(team, rma, 2000, ProcGrid::near_square(16), SrummaOptions{});
  EXPECT_GT(r.overlap, 0.9);
}

TEST(Integration, NonblockingAndZeroCopyBothMatter) {
  // Fig. 9: four protocol arms on the Linux/Myrinet model.  Nonblocking
  // beats blocking; zero-copy beats host-assisted; the full combination
  // wins and the degradations compose.
  Team team(MachineModel::linux_myrinet(8));
  const ProcGrid g = ProcGrid::near_square(16);
  // N in the communication-sensitive regime: every pairwise margin is
  // >=10%, well clear of the model's scheduling/noise jitter.
  const index_t n = 1000;
  double t[2][2];  // [nonblocking][zero_copy]
  for (int nb = 0; nb < 2; ++nb) {
    for (int zc = 0; zc < 2; ++zc) {
      RmaConfig rc;
      rc.zero_copy = zc == 1;
      RmaRuntime rma(team, rc);
      SrummaOptions opt;
      opt.nonblocking = nb == 1;
      t[nb][zc] = run_srumma(team, rma, n, g, opt).elapsed;
    }
  }
  EXPECT_LT(t[1][1], t[0][1]);  // nonblocking helps with zero-copy
  EXPECT_LT(t[1][1], t[1][0]);  // zero-copy helps with nonblocking
  EXPECT_LT(t[1][1], t[0][0]);  // full protocol is best overall
}

TEST(Integration, CopyBeatsDirectOnX1AndNotOnAltix) {
  // Fig. 5: on the Cray X1 (non-cacheable remote memory) the copy-based
  // flavor wins; on the SGI Altix direct access wins.
  const index_t n = 2000;
  {
    Team team(MachineModel::cray_x1(4));  // 16 MSPs
    RmaRuntime rma(team);
    const ProcGrid g = ProcGrid::near_square(16);
    SrummaOptions direct;
    direct.shm_flavor = ShmFlavor::Direct;
    SrummaOptions copy;
    copy.shm_flavor = ShmFlavor::Copy;
    EXPECT_LT(run_srumma(team, rma, n, g, copy).elapsed,
              run_srumma(team, rma, n, g, direct).elapsed);
  }
  {
    // On the Altix the margin is tiny at 16 CPUs (within the model's OS
    // noise) and grows with P — the paper: "the gap between these two
    // algorithms actually increases for larger processor counts".  Assert
    // at 64 CPUs where the direction is unambiguous.
    Team team(MachineModel::sgi_altix(64));
    RmaRuntime rma(team);
    const ProcGrid g = ProcGrid::near_square(64);
    SrummaOptions direct;
    direct.shm_flavor = ShmFlavor::Direct;
    SrummaOptions copy;
    copy.shm_flavor = ShmFlavor::Copy;
    EXPECT_LT(run_srumma(team, rma, n, g, direct).elapsed,
              run_srumma(team, rma, n, g, copy).elapsed);
  }
}

TEST(Integration, DiagonalShiftReducesContention) {
  // Fig. 4 / Section 3.1: on a many-way SMP cluster the diagonal shift
  // lowers the time by spreading first-step gets across source nodes.
  Team team(MachineModel::ibm_sp(4));  // 4 x 16-way nodes
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(team.size());
  SrummaOptions with;
  with.ordering = OrderingPolicy{true, true, false};
  SrummaOptions without;
  without.ordering = OrderingPolicy{true, false, false};
  // N chosen in the communication-bound regime where the first-step
  // convoy is visible (at large N the pipeline hides everything anyway).
  const double t_with = run_srumma(team, rma, 2048, g, with).elapsed;
  const double t_without = run_srumma(team, rma, 2048, g, without).elapsed;
  EXPECT_LT(t_with, t_without * 0.95);  // a real, >5% improvement
}

TEST(Integration, ShmFirstOrderingImprovesOverlap) {
  // Starting with shared-memory tasks primes the pipeline (Section 3.1
  // step 2): overlap with shm-first must be at least as good as naive.
  Team team(MachineModel::ibm_sp(2));
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(team.size());
  SrummaOptions naive;
  naive.ordering = OrderingPolicy::naive();
  SrummaOptions shm;
  shm.ordering = OrderingPolicy{true, false, false};
  const MultiplyResult rn = run_srumma(team, rma, 2048, g, naive);
  const MultiplyResult rs = run_srumma(team, rma, 2048, g, shm);
  EXPECT_GE(rs.overlap + 1e-9, rn.overlap);
  EXPECT_LE(rs.elapsed, rn.elapsed * 1.02);
}

TEST(Integration, MeasuredTimeTracksAnalyticModel) {
  // In the compute-dominated regime the virtual time must sit near eq. (3)
  // with high overlap (within 2x — the model ignores grid asymmetry and
  // block-size effects).
  Team team(MachineModel::linux_myrinet(8));
  RmaRuntime rma(team);
  const index_t n = 4000;
  const MultiplyResult r =
      run_srumma(team, rma, n, ProcGrid::near_square(16), SrummaOptions{});
  const auto params =
      perf::params_from_machine(team.machine(), n / 4);  // block-sized rate
  const double predicted = perf::t_par_rma_overlap(
      static_cast<double>(n), 16.0, params, 1.0 - r.overlap);
  EXPECT_LT(r.elapsed, predicted * 2.0);
  EXPECT_GT(r.elapsed, predicted * 0.5);
}

TEST(Integration, ScalingImprovesWithMoreProcessors) {
  // Same N, more ranks => lower virtual time (the regime Fig. 10 plots).
  const index_t n = 4000;
  double prev = 1e100;
  for (int nodes : {2, 8, 32}) {
    Team team(MachineModel::linux_myrinet(nodes));
    RmaRuntime rma(team);
    const MultiplyResult r = run_srumma(
        team, rma, n, ProcGrid::near_square(team.size()), SrummaOptions{});
    EXPECT_LT(r.elapsed, prev);
    prev = r.elapsed;
  }
}

TEST(Integration, SmallMatricesAtHighPLoseEfficiency) {
  // Section 4.2: "performance degrades for smaller matrices on larger
  // processor counts" — efficiency at N=600 on 64 ranks is far below
  // efficiency at N=4000 on 64 ranks.
  Team team(MachineModel::linux_myrinet(32));
  RmaRuntime rma(team);
  const ProcGrid g = ProcGrid::near_square(64);
  const MultiplyResult small = run_srumma(team, rma, 600, g, SrummaOptions{});
  const MultiplyResult large = run_srumma(team, rma, 4000, g, SrummaOptions{});
  EXPECT_LT(small.gflops, large.gflops * 0.6);
}

TEST(Integration, CannonAndSrummaAgreeNumerically) {
  const index_t n = 18;
  Team team(MachineModel::testing(4, 1));
  RmaRuntime rma(team);
  Comm comm(team);
  Matrix a_g = testing::coords_matrix(n, n);
  Matrix b_g(n, n);
  fill_random(b_g.view(), 2);
  Matrix c_srumma(n, n), c_cannon(n, n);
  const index_t blk = cannon_block(n, 2);
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, ProcGrid{2, 2});
    DistMatrix b(rma, me, n, n, ProcGrid{2, 2});
    DistMatrix c(rma, me, n, n, ProcGrid{2, 2});
    a.scatter_from(me, a_g.view());
    b.scatter_from(me, b_g.view());
    srumma_multiply(me, a, b, c, SrummaOptions{});
    c.gather_to(me, c_srumma.view());

    // Cannon on the same data via padded blocks.
    Matrix ab(blk, blk), bb(blk, blk), cb(blk, blk);
    const int pi = me.id() % 2, pj = me.id() / 2;
    for (index_t j = 0; j < blk; ++j)
      for (index_t i = 0; i < blk; ++i) {
        const index_t gi = pi * blk + i, gj = pj * blk + j;
        ab(i, j) = gi < n && gj < n ? a_g(gi, gj) : 0.0;
        bb(i, j) = gi < n && gj < n ? b_g(gi, gj) : 0.0;
      }
    CannonOptions opt;
    opt.m = opt.n = opt.k = n;
    cannon_multiply(me, comm, ab.view(), bb.view(), cb.view(), opt);
    me.barrier();
    for (index_t j = 0; j < blk; ++j)
      for (index_t i = 0; i < blk; ++i) {
        const index_t gi = pi * blk + i, gj = pj * blk + j;
        if (gi < n && gj < n) c_cannon(gi, gj) = cb(i, j);
      }
    me.barrier();
  });
  EXPECT_LE(max_abs_diff(c_srumma.view(), c_cannon.view()),
            testing::gemm_tolerance(n));
}

}  // namespace
}  // namespace srumma
