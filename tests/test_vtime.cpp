// Tests for the virtual-time substrate: clocks, steal accounting, and the
// serialized bandwidth resources used for contention modeling.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "machine/machine.hpp"
#include "vtime/clock.hpp"
#include "vtime/network.hpp"
#include "vtime/resource.hpp"
#include "vtime/trace_counters.hpp"

namespace srumma {
namespace {

TEST(VClock, AdvanceAndSync) {
  VClock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(1.0);  // past: no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(VClock, StealFoldsIn) {
  VClock c;
  c.advance(1.0);
  c.add_steal(0.25);
  EXPECT_DOUBLE_EQ(c.now(), 1.25);  // applied lazily at next observation
  EXPECT_DOUBLE_EQ(c.steal_total(), 0.25);
}

TEST(VClock, StealFromManyThreads) {
  VClock c;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.emplace_back([&c] {
      for (int j = 0; j < 1000; ++j) c.add_steal(0.001);
    });
  for (auto& t : ts) t.join();
  EXPECT_NEAR(c.now(), 8.0, 1e-9);
}

TEST(VClock, ResetClearsEverything) {
  VClock c;
  c.advance(5.0);
  c.add_steal(1.0);
  c.reset();
  EXPECT_EQ(c.now(), 0.0);
  EXPECT_EQ(c.steal_total(), 0.0);
}

TEST(Resource, SerializesOverlappingBookings) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 2.0);  // queues behind the first
  EXPECT_DOUBLE_EQ(r.book(5.0, 1.0), 6.0);  // idle gap respected
  EXPECT_DOUBLE_EQ(r.busy_total(), 3.0);
}

TEST(Resource, PlacementIsVirtualTimeOrderedNotArrivalOrdered) {
  // A transfer booked later in real time but ready earlier in virtual time
  // must not queue behind unrelated future reservations.
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(10.0, 1.0), 11.0);  // booked first, ready late
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);    // booked second, ready early
}

TEST(Resource, FillsGapsFirstFit) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);   // [0,1)
  EXPECT_DOUBLE_EQ(r.book(3.0, 1.0), 4.0);   // [3,4)
  EXPECT_DOUBLE_EQ(r.book(0.0, 2.0), 3.0);   // exact fit into [1,3)
  EXPECT_DOUBLE_EQ(r.book(0.0, 0.5), 4.5);   // no gap left before 4
}

TEST(Resource, SkipsTooSmallGaps) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);   // [0,1)
  EXPECT_DOUBLE_EQ(r.book(1.5, 1.0), 2.5);   // [1.5,2.5)
  EXPECT_DOUBLE_EQ(r.book(0.0, 0.8), 3.3);   // [1,1.5) too small -> after 2.5
}

TEST(Resource, ConservesThroughputUnderContention) {
  // N concurrent bookings of duration d on one resource must finish no
  // earlier than N*d: a link can never move more than its bandwidth.
  Resource r;
  constexpr int kN = 16;
  std::vector<std::thread> ts;
  std::vector<double> done(kN);
  for (int i = 0; i < kN; ++i)
    ts.emplace_back([&r, &done, i] {
      done[static_cast<std::size_t>(i)] = r.book(0.0, 0.5);
    });
  for (auto& t : ts) t.join();
  double last = 0.0;
  for (double d : done) last = std::max(last, d);
  EXPECT_NEAR(last, kN * 0.5, 1e-9);
  EXPECT_NEAR(r.busy_total(), kN * 0.5, 1e-9);
}

TEST(Resource, ResetRestoresIdle) {
  Resource r;
  r.book(0.0, 2.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.next_free(), 0.0);
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);
}

TEST(Network, PerNodeAndPerDomainResources) {
  MachineModel m = MachineModel::testing(3, 2);
  NetworkState net(m);
  net.nic_out(0).book(0.0, 1.0);
  EXPECT_DOUBLE_EQ(net.nic_out(0).next_free(), 1.0);
  EXPECT_DOUBLE_EQ(net.nic_out(1).next_free(), 0.0);  // independent
  EXPECT_DOUBLE_EQ(net.nic_in(0).next_free(), 0.0);   // full duplex
  net.domain_mem(2).book(0.0, 0.5);
  EXPECT_DOUBLE_EQ(net.domain_mem(2).next_free(), 0.5);
  EXPECT_THROW((void)net.nic_out(3), Error);
  EXPECT_THROW((void)net.domain_mem(5), Error);
}

TEST(Network, SingleDomainMachineHasOneMemResource) {
  MachineModel m = MachineModel::sgi_altix(8);
  NetworkState net(m);
  net.domain_mem(0).book(0.0, 1.0);
  EXPECT_THROW((void)net.domain_mem(1), Error);
}

TEST(TraceCounters, OverlapClampsAndAccumulates) {
  TraceCounters t;
  EXPECT_DOUBLE_EQ(t.overlap(), 1.0);  // no communication: fully hidden
  t.time_comm = 10.0;
  t.time_wait = 1.0;
  EXPECT_DOUBLE_EQ(t.overlap(), 0.9);
  t.time_wait = 20.0;
  EXPECT_DOUBLE_EQ(t.overlap(), 0.0);  // clamped

  TraceCounters a;
  a.bytes_shm = 5;
  a.gets = 2;
  TraceCounters b;
  b.bytes_shm = 7;
  b.gets = 1;
  a += b;
  EXPECT_EQ(a.bytes_shm, 12u);
  EXPECT_EQ(a.gets, 3u);
}

}  // namespace
}  // namespace srumma
