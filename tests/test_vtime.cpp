// Tests for the virtual-time substrate: clocks, steal accounting, and the
// serialized bandwidth resources used for contention modeling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "machine/machine.hpp"
#include "vtime/clock.hpp"
#include "vtime/network.hpp"
#include "vtime/resource.hpp"
#include "vtime/trace_counters.hpp"

namespace srumma {
namespace {

TEST(VClock, AdvanceAndSync) {
  VClock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(1.0);  // past: no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(VClock, StealFoldsIn) {
  VClock c;
  c.advance(1.0);
  c.add_steal(0.25);
  EXPECT_DOUBLE_EQ(c.now(), 1.25);  // applied lazily at next observation
  EXPECT_DOUBLE_EQ(c.steal_total(), 0.25);
}

TEST(VClock, StealFromManyThreads) {
  VClock c;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.emplace_back([&c] {
      for (int j = 0; j < 1000; ++j) c.add_steal(0.001);
    });
  for (auto& t : ts) t.join();
  EXPECT_NEAR(c.now(), 8.0, 1e-9);
}

TEST(VClock, ResetClearsEverything) {
  VClock c;
  c.advance(5.0);
  c.add_steal(1.0);
  c.reset();
  EXPECT_EQ(c.now(), 0.0);
  EXPECT_EQ(c.steal_total(), 0.0);
}

TEST(Resource, SerializesOverlappingBookings) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 2.0);  // queues behind the first
  EXPECT_DOUBLE_EQ(r.book(5.0, 1.0), 6.0);  // idle gap respected
  EXPECT_DOUBLE_EQ(r.busy_total(), 3.0);
}

TEST(Resource, PlacementIsVirtualTimeOrderedNotArrivalOrdered) {
  // A transfer booked later in real time but ready earlier in virtual time
  // must not queue behind unrelated future reservations.
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(10.0, 1.0), 11.0);  // booked first, ready late
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);    // booked second, ready early
}

TEST(Resource, FillsGapsFirstFit) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);   // [0,1)
  EXPECT_DOUBLE_EQ(r.book(3.0, 1.0), 4.0);   // [3,4)
  EXPECT_DOUBLE_EQ(r.book(0.0, 2.0), 3.0);   // exact fit into [1,3)
  EXPECT_DOUBLE_EQ(r.book(0.0, 0.5), 4.5);   // no gap left before 4
}

TEST(Resource, SkipsTooSmallGaps) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);   // [0,1)
  EXPECT_DOUBLE_EQ(r.book(1.5, 1.0), 2.5);   // [1.5,2.5)
  EXPECT_DOUBLE_EQ(r.book(0.0, 0.8), 3.3);   // [1,1.5) too small -> after 2.5
}

TEST(Resource, ConservesThroughputUnderContention) {
  // N concurrent bookings of duration d on one resource must finish no
  // earlier than N*d: a link can never move more than its bandwidth.
  Resource r;
  constexpr int kN = 16;
  std::vector<std::thread> ts;
  std::vector<double> done(kN);
  for (int i = 0; i < kN; ++i)
    ts.emplace_back([&r, &done, i] {
      done[static_cast<std::size_t>(i)] = r.book(0.0, 0.5);
    });
  for (auto& t : ts) t.join();
  double last = 0.0;
  for (double d : done) last = std::max(last, d);
  EXPECT_NEAR(last, kN * 0.5, 1e-9);
  EXPECT_NEAR(r.busy_total(), kN * 0.5, 1e-9);
}

// Reference implementation of first-fit gap booking: the original
// std::map-based algorithm, with no adjacency merging and no frontier.
// The flat coalescing Resource must return bit-identical completions.
class ReferenceResource {
 public:
  double book(double ready, double duration) {
    if (duration <= 0.0) return ready;
    double start = ready;
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) start = prev->second;
    }
    while (it != intervals_.end() && it->first < start + duration) {
      start = it->second;
      ++it;
    }
    intervals_.emplace(start, start + duration);
    return start + duration;
  }

 private:
  std::map<double, double> intervals_;
};

// Deterministic 64-bit LCG so the fuzz cases replay exactly.
std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

TEST(Resource, FlatStructureMatchesMapReference) {
  Resource r;
  ReferenceResource ref;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 20000; ++i) {
    const double ready = static_cast<double>(lcg(seed) % 4096) * 0.25;
    const double dur = static_cast<double>(lcg(seed) % 64) * 0.125;
    ASSERT_EQ(r.book(ready, dur), ref.book(ready, dur)) << "op " << i;
  }
}

TEST(Resource, FrontierCoalescingPreservesFutureBookings) {
  // Contract: after advance_frontier(W), every future ready is >= W.  Under
  // that contract the coalesced resource must keep returning exactly what
  // an uncoalesced reference returns, even though gaps below W vanished.
  Resource r;
  ReferenceResource ref;
  std::uint64_t seed = 999;
  double watermark = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      const double ready =
          watermark + static_cast<double>(lcg(seed) % 512) * 0.5;
      const double dur = static_cast<double>(lcg(seed) % 32) * 0.25;
      ASSERT_EQ(r.book(ready, dur), ref.book(ready, dur))
          << "round " << round << " op " << i;
    }
    // Advance the watermark the way a barrier does: to a time at or below
    // which everything already booked has completed, here the next round's
    // minimum ready time.
    watermark += 100.0;
    r.advance_frontier(watermark);
  }
}

TEST(Resource, BookingConservationUnderHammer) {
  // Satellite bar: many threads book concurrently; reservations must never
  // overlap (a link can never exceed its bandwidth) and busy_total must
  // equal the exact sum of durations — all observed through the lock-free
  // accessors.
  Resource r;
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::vector<std::pair<double, double>>> placed(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&r, &placed, t] {
      std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kOps; ++i) {
        const double ready = static_cast<double>(lcg(seed) % 1024) * 0.5;
        const double dur =
            0.25 + static_cast<double>(lcg(seed) % 16) * 0.125;
        const double end = r.book(ready, dur);
        EXPECT_GE(end, ready + dur);
        placed[static_cast<std::size_t>(t)].push_back({end - dur, end});
      }
    });
  for (auto& t : ts) t.join();

  std::vector<std::pair<double, double>> all;
  double busy = 0.0;
  for (auto& v : placed)
    for (auto& iv : v) {
      all.push_back(iv);
      busy += iv.second - iv.first;
    }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i)
    ASSERT_LE(all[i - 1].second, all[i].first)
        << "overlapping reservations at index " << i;
  EXPECT_NEAR(r.busy_total(), busy, 1e-9);
  EXPECT_NEAR(r.next_free(), all.back().second, 0.0);
}

TEST(Resource, NextFreeAndBusyVisibleWithoutLock) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.next_free(), 0.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 0.0);
  r.book(1.0, 2.0);
  EXPECT_DOUBLE_EQ(r.next_free(), 3.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 2.0);
  r.book(0.0, 0.5);  // fills the gap below 1.0; horizon unchanged
  EXPECT_DOUBLE_EQ(r.next_free(), 3.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 2.5);
}

TEST(Network, AdvanceFrontierCoversAllResources) {
  MachineModel m = MachineModel::testing(2, 2);
  NetworkState net(m);
  net.nic_out(0).book(0.0, 1.0);
  net.nic_out(0).book(2.0, 1.0);
  net.nic_in(1).book(0.0, 1.0);
  net.domain_mem(0).book(0.0, 1.0);
  net.advance_frontier(3.0);
  // Post-frontier bookings at ready >= watermark still queue correctly.
  EXPECT_DOUBLE_EQ(net.nic_out(0).book(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(net.nic_in(1).book(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(net.domain_mem(0).book(3.0, 1.0), 4.0);
}

TEST(Resource, ResetRestoresIdle) {
  Resource r;
  r.book(0.0, 2.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.next_free(), 0.0);
  EXPECT_DOUBLE_EQ(r.book(0.0, 1.0), 1.0);
}

TEST(Network, PerNodeAndPerDomainResources) {
  MachineModel m = MachineModel::testing(3, 2);
  NetworkState net(m);
  net.nic_out(0).book(0.0, 1.0);
  EXPECT_DOUBLE_EQ(net.nic_out(0).next_free(), 1.0);
  EXPECT_DOUBLE_EQ(net.nic_out(1).next_free(), 0.0);  // independent
  EXPECT_DOUBLE_EQ(net.nic_in(0).next_free(), 0.0);   // full duplex
  net.domain_mem(2).book(0.0, 0.5);
  EXPECT_DOUBLE_EQ(net.domain_mem(2).next_free(), 0.5);
  EXPECT_THROW((void)net.nic_out(3), Error);
  EXPECT_THROW((void)net.domain_mem(5), Error);
}

TEST(Network, SingleDomainMachineHasOneMemResource) {
  MachineModel m = MachineModel::sgi_altix(8);
  NetworkState net(m);
  net.domain_mem(0).book(0.0, 1.0);
  EXPECT_THROW((void)net.domain_mem(1), Error);
}

TEST(TraceCounters, OverlapClampsAndAccumulates) {
  TraceCounters t;
  EXPECT_DOUBLE_EQ(t.overlap(), 1.0);  // no communication: fully hidden
  t.time_comm = 10.0;
  t.time_wait = 1.0;
  EXPECT_DOUBLE_EQ(t.overlap(), 0.9);
  t.time_wait = 20.0;
  EXPECT_DOUBLE_EQ(t.overlap(), 0.0);  // clamped

  TraceCounters a;
  a.bytes_shm = 5;
  a.gets = 2;
  TraceCounters b;
  b.bytes_shm = 7;
  b.gets = 1;
  a += b;
  EXPECT_EQ(a.bytes_shm, 12u);
  EXPECT_EQ(a.gets, 3u);
}

}  // namespace
}  // namespace srumma
