// Seeded chaos soak: a whole shared-memory domain fail-stops mid-multiply
// at each kill point (operand prefetch, commit-chain advance, steal
// attempt, barrier entry) under both executors with the cooperative cache
// on and off.  Every cell must run to completion, survivors must adopt the
// dead domain's commit chains from the buddy replicas, the gathered C must
// match the serial reference *bitwise*, and the task ledger must reconcile
// exactly (adopted work is counted on both sides of the identity).

#include <gtest/gtest.h>

#include <string>

#include "core/srumma.hpp"
#include "fault/fault_plane.hpp"
#include "trace/report.hpp"
#include "tests/helpers.hpp"

namespace srumma {
namespace {

// Small-integer fill: every product and partial sum is exactly
// representable, so a recovered run must match the serial reference
// bitwise — an adopted chain replayed out of plan order, a stale replica,
// or a lost contribution all show up as a nonzero difference.
void fill_ints(MatrixView v, std::uint64_t seed) {
  Rng rng(seed);
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i)
      v(i, j) = static_cast<double>(static_cast<int>(rng.below(9))) - 4.0;
}

struct ChaosRun {
  Matrix c;
  TraceCounters trace;
};

// One multiply on the 4-domain x 2-ranks testing machine with a permanent
// kill configured.  `c_seed != 0` prefills C (for beta accumulation);
// otherwise C starts zeroed.
ChaosRun run_chaos_multiply(const RmaConfig& cfg, const SrummaOptions& opt,
                            index_t n, std::uint64_t fill_seed,
                            std::uint64_t c_seed = 0) {
  const MachineModel mm = MachineModel::testing(4, 2);
  const ProcGrid grid{4, 2};
  Team team(mm);
  RmaRuntime rma(team, cfg);
  Matrix a_global(n, n), b_global(n, n), c_global(n, n);
  fill_ints(a_global.view(), fill_seed);
  fill_ints(b_global.view(), fill_seed + 1);
  if (c_seed != 0)
    fill_ints(c_global.view(), c_seed);
  else
    c_global.view().fill(0.0);

  ChaosRun out{Matrix(n, n), {}};
  team.run([&](Rank& me) {
    DistMatrix a(rma, me, n, n, grid);
    DistMatrix b(rma, me, n, n, grid);
    DistMatrix c(rma, me, n, n, grid);
    a.scatter_from(me, a_global.view());
    b.scatter_from(me, b_global.view());
    c.scatter_from(me, c_global.view());
    srumma_multiply(me, a, b, c, opt);
    c.gather_to(me, out.c.view());
  });
  out.trace = team.total_trace();
  return out;
}

Matrix chaos_reference(index_t n, std::uint64_t fill_seed, double alpha,
                       double beta, std::uint64_t c_seed = 0) {
  Matrix a(n, n), b(n, n), c(n, n);
  fill_ints(a.view(), fill_seed);
  fill_ints(b.view(), fill_seed + 1);
  if (c_seed != 0)
    fill_ints(c.view(), c_seed);
  else
    c.view().fill(0.0);
  testing::reference_gemm(blas::Trans::No, blas::Trans::No, alpha, a, b, beta,
                          c);
  return c;
}

fault::FaultConfig kill_config(fault::KillPoint p, std::uint64_t seed = 99) {
  fault::FaultConfig f;
  f.seed = seed;
  f.kill_domain = 1;
  f.kill_point = p;
  f.kill_after_vtime = 0.0;
  f.buddy_offset = 1;
  return f;
}

const char* point_name(fault::KillPoint p) {
  switch (p) {
    case fault::KillPoint::Prefetch: return "prefetch";
    case fault::KillPoint::Chain: return "chain";
    case fault::KillPoint::Steal: return "steal";
    case fault::KillPoint::Barrier: return "barrier";
    default: return "none";
  }
}

// The full sweep: kill point x executor x cache.  Which cells actually
// trip is deterministic (docs/FAULTS.md §7): Prefetch and Chain trip under
// both executors, Steal only under the engine (the pipeline never steals),
// Barrier trips at the recovery pre-barrier.  A cell that cannot trip must
// degenerate to a fault-free run — same bitwise C, nothing adopted.
TEST(Chaos, KillPointSweepCompletesAndReconciles) {
  constexpr index_t n = 48;
  constexpr std::uint64_t fill_seed = 404;
  const Matrix ref = chaos_reference(n, fill_seed, 1.0, 0.0);

  const fault::KillPoint points[] = {
      fault::KillPoint::Prefetch, fault::KillPoint::Chain,
      fault::KillPoint::Steal, fault::KillPoint::Barrier};
  for (const fault::KillPoint kp : points) {
    for (const bool engine : {false, true}) {
      for (const bool cache : {false, true}) {
        const std::string label = std::string(point_name(kp)) +
                                  (engine ? "/engine" : "/pipeline") +
                                  (cache ? "/cache" : "/nocache");
        RmaConfig cfg;
        cfg.faults = kill_config(kp);
        cfg.cache = cache;
        SrummaOptions opt;
        opt.engine = engine ? EngineMode::On : EngineMode::Off;
        const ChaosRun run = run_chaos_multiply(cfg, opt, n, fill_seed);
        const TraceCounters& t = run.trace;

        for (index_t j = 0; j < n; ++j)
          for (index_t i = 0; i < n; ++i)
            ASSERT_EQ(run.c.view()(i, j), ref.view()(i, j))
                << label << " C(" << i << "," << j << ")";

        // Ledger identity, adoption included: every dgemm is exactly one
        // pipeline task, engine task, steal, or adoption, and each is
        // classified copy xor direct.
        EXPECT_EQ(t.copy_tasks + t.direct_tasks, t.gemm_calls) << label;
        if (engine) {
          EXPECT_EQ(t.engine_tasks + t.tasks_stolen + t.tasks_adopted,
                    t.gemm_calls)
              << label;
        } else {
          EXPECT_EQ(t.engine_tasks, 0u) << label;
          EXPECT_EQ(t.tasks_stolen, 0u) << label;
        }

        const bool trips = kp != fault::KillPoint::Steal || engine;
        if (trips) {
          EXPECT_GT(t.tasks_adopted, 0u) << label;
        } else {
          // pipeline x Steal: the kill point is unreachable — fault-free
          // run, recovery degenerates to a barrier.
          EXPECT_EQ(t.tasks_adopted, 0u) << label;
          EXPECT_EQ(t.rma_domain_dead, 0u) << label;
        }
      }
    }
  }
}

// beta accumulation across a death: the buddy replica snapshots the
// beta-applied C before the kill hooks arm, so an adopted chain replays on
// top of the correct prior value.
TEST(Chaos, BetaAccumulationSurvivesDomainDeath) {
  constexpr index_t n = 48;
  constexpr std::uint64_t fill_seed = 505;
  constexpr std::uint64_t c_seed = 606;
  const Matrix ref = chaos_reference(n, fill_seed, 1.0, 2.0, c_seed);
  for (const bool engine : {false, true}) {
    RmaConfig cfg;
    cfg.faults = kill_config(fault::KillPoint::Chain);
    cfg.cache = true;
    SrummaOptions opt;
    opt.engine = engine ? EngineMode::On : EngineMode::Off;
    opt.beta = 2.0;
    const ChaosRun run = run_chaos_multiply(cfg, opt, n, fill_seed, c_seed);
    EXPECT_GT(run.trace.tasks_adopted, 0u);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(run.c.view()(i, j), ref.view()(i, j))
            << (engine ? "engine" : "pipeline") << " C(" << i << "," << j
            << ")";
  }
}

// Permanent death layered on transient noise: random failures and payload
// corruption keep firing on the surviving links while the dead domain's
// chains are adopted.  Retries + checksums must still converge to the
// bitwise reference.
TEST(Chaos, SurvivesDeathUnderTransientNoise) {
  constexpr index_t n = 64;
  constexpr std::uint64_t fill_seed = 707;
  const Matrix ref = chaos_reference(n, fill_seed, 1.0, 0.0);
  fault::FaultConfig f = kill_config(fault::KillPoint::Chain, 1234);
  // Rates high enough that "no fault ever fired" is impossible in practice
  // even though the cooperative cache + warm recovery epoch leave far
  // fewer wire transfers to draw on than a cold run would (the number of
  // transfers also varies run to run with single-flight fetcher election).
  f.fail_rate = 0.15;
  f.corrupt_rate = 0.05;
  RetryPolicy rp;
  rp.max_attempts = 8;
  for (const bool engine : {false, true}) {
    RmaConfig cfg;
    cfg.faults = f;
    cfg.retry = rp;
    cfg.cache = true;
    SrummaOptions opt;
    opt.engine = engine ? EngineMode::On : EngineMode::Off;
    opt.verify_checksums = true;
    const ChaosRun run = run_chaos_multiply(cfg, opt, n, fill_seed);
    EXPECT_GT(run.trace.tasks_adopted, 0u);
    EXPECT_GT(run.trace.faults_injected, 0u);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(run.c.view()(i, j), ref.view()(i, j))
            << (engine ? "engine" : "pipeline") << " C(" << i << "," << j
            << ")";
  }
}

// Both executors must reconstruct the *same* bits for the dead domain's
// tiles (the adopted replay is executor-independent: replica snapshot +
// plan-order chain).
TEST(Chaos, ExecutorsAgreeBitwiseOnAdoptedTiles) {
  constexpr index_t n = 48;
  constexpr std::uint64_t fill_seed = 808;
  RmaConfig cfg;
  cfg.faults = kill_config(fault::KillPoint::Prefetch);
  cfg.cache = true;
  SrummaOptions off, on;
  off.engine = EngineMode::Off;
  on.engine = EngineMode::On;
  const ChaosRun a = run_chaos_multiply(cfg, off, n, fill_seed);
  const ChaosRun b = run_chaos_multiply(cfg, on, n, fill_seed);
  EXPECT_GT(a.trace.tasks_adopted, 0u);
  EXPECT_GT(b.trace.tasks_adopted, 0u);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(a.c.view()(i, j), b.c.view()(i, j))
          << "C(" << i << "," << j << ")";
}

// Install-time validation (docs/FAULTS.md): a kill configuration that can
// never fire or has no survivors is rejected at FaultPlane construction.
TEST(Chaos, KillConfigValidation) {
  const MachineModel mm = MachineModel::testing(4, 2);

  {  // kill_domain outside the machine's domains
    fault::FaultConfig f = kill_config(fault::KillPoint::Chain);
    f.kill_domain = 4;
    EXPECT_THROW(fault::FaultPlane(mm, f), Error);
  }
  {  // kill_domain without a kill point
    fault::FaultConfig f;
    f.kill_domain = 1;
    EXPECT_THROW(fault::FaultPlane(mm, f), Error);
  }
  {  // kill point without a kill_domain
    fault::FaultConfig f;
    f.kill_point = fault::KillPoint::Barrier;
    EXPECT_THROW(fault::FaultPlane(mm, f), Error);
  }
  {  // single-domain machine: no survivors to adopt
    fault::FaultConfig f = kill_config(fault::KillPoint::Chain);
    f.kill_domain = 0;
    EXPECT_THROW(fault::FaultPlane(MachineModel::testing(1, 4), f), Error);
  }
  {  // buddy_offset must keep the replica off the protected domain
    fault::FaultConfig f = kill_config(fault::KillPoint::Chain);
    f.buddy_offset = 0;
    EXPECT_THROW(fault::FaultPlane(mm, f), Error);
    f.buddy_offset = 4;
    EXPECT_THROW(fault::FaultPlane(mm, f), Error);
  }
  {  // a valid configuration constructs and reports itself
    fault::FaultConfig f = kill_config(fault::KillPoint::Steal);
    fault::FaultPlane fp(mm, f);
    EXPECT_TRUE(fp.kill_enabled());
    EXPECT_EQ(fp.kill_domain(), 1);
    EXPECT_EQ(fp.buddy_offset(), 1);
    EXPECT_FALSE(fp.domain_killed(1));
    EXPECT_FALSE(fp.any_domain_dead());
  }
}

// The kill trips only once armed, only at its configured point/domain, and
// never consumes an rng draw; declaration is sticky and idempotent.
TEST(Chaos, KillTripSemantics) {
  const MachineModel mm = MachineModel::testing(4, 2);
  fault::FaultConfig f = kill_config(fault::KillPoint::Chain);
  f.kill_after_vtime = 10.0;
  fault::FaultPlane fp(mm, f);

  // Unarmed: nothing trips.
  EXPECT_FALSE(fp.reach_kill_point(fault::KillPoint::Chain, 1, 99.0));
  fp.arm_kills();
  // Wrong point, wrong domain, too early: still alive.
  EXPECT_FALSE(fp.reach_kill_point(fault::KillPoint::Prefetch, 1, 99.0));
  EXPECT_FALSE(fp.reach_kill_point(fault::KillPoint::Chain, 2, 99.0));
  EXPECT_FALSE(fp.reach_kill_point(fault::KillPoint::Chain, 1, 9.0));
  EXPECT_FALSE(fp.domain_killed(1));
  // The configured point: trips, and stays tripped.
  EXPECT_TRUE(fp.reach_kill_point(fault::KillPoint::Chain, 1, 10.0));
  EXPECT_TRUE(fp.domain_killed(1));
  EXPECT_TRUE(fp.reach_kill_point(fault::KillPoint::Prefetch, 1, 0.0));
  EXPECT_FALSE(fp.domain_killed(2));
  // Killed -> direct segment access faults (Direct degrades to Copy).
  EXPECT_TRUE(fp.direct_faults(1));
  // Declaration is a separate, idempotent promotion.
  EXPECT_FALSE(fp.domain_dead(1));
  fp.declare_dead(1);
  fp.declare_dead(1);
  EXPECT_TRUE(fp.domain_dead(1));
  EXPECT_TRUE(fp.any_domain_dead());
  // reset() rewinds the whole fail-stop state for a replay.
  fp.reset();
  EXPECT_FALSE(fp.domain_killed(1));
  EXPECT_FALSE(fp.any_domain_dead());
}

}  // namespace
}  // namespace srumma
