#include "check/rma_checker.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "runtime/team.hpp"
#include "trace/journal.hpp"
#include "util/error.hpp"

namespace srumma::check {

const char* diag_name(Diag d) {
  switch (d) {
    case Diag::UseBeforeWait: return "use-before-wait";
    case Diag::UnwaitedAtBarrier: return "unwaited-at-barrier";
    case Diag::EpochConflict: return "epoch-conflict";
    case Diag::NonDomainDirect: return "non-domain-direct";
    case Diag::PendingAtFree: return "pending-at-free";
    case Diag::OutOfBounds: return "out-of-bounds";
    case Diag::DoubleWait: return "double-wait";
  }
  return "unknown";
}

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::Get: return "get";
    case OpKind::Put: return "put";
    case OpKind::Acc: return "acc";
    case OpKind::DirectRead: return "direct-read";
    case OpKind::ComputeRead: return "compute-read";
    case OpKind::LocalWrite: return "local-write";
  }
  return "unknown";
}

bool footprints_overlap(const Footprint& a, const Footprint& b) {
  if (a.empty() || b.empty()) return false;
  // Cheap reject on the covering spans first.
  if (a.span_end() <= b.lo || b.span_end() <= a.lo) return false;
  // Exact: intersect each column of `a` with the columns of `b` it can
  // reach.  Column i of a covers [a.lo + i*a.ld, +a.rows).
  for (std::uint64_t i = 0; i < a.cols; ++i) {
    const std::uint64_t alo = a.lo + i * a.ld;
    const std::uint64_t ahi = alo + a.rows;
    if (ahi <= b.lo) continue;
    // Columns of b whose start could precede ahi.
    const std::uint64_t jhi =
        b.ld == 0 ? 1 : std::min(b.cols, (ahi - b.lo + b.ld - 1) / b.ld);
    // First column of b whose end could exceed alo.
    std::uint64_t jlo = 0;
    if (b.ld != 0 && alo > b.lo + b.rows)
      jlo = std::min(jhi, (alo - b.lo - b.rows) / b.ld);
    for (std::uint64_t j = jlo; j < jhi; ++j) {
      const std::uint64_t blo = b.lo + j * b.ld;
      if (blo < ahi && alo < blo + b.rows) return true;
    }
  }
  return false;
}

namespace {

[[nodiscard]] bool is_write(OpKind k) {
  return k == OpKind::Put || k == OpKind::Acc || k == OpKind::LocalWrite;
}

/// Epoch-conflict rule: reads never conflict, acc/acc is atomic, and ops
/// from one origin ordered by a completed wait() are sequenced.
[[nodiscard]] bool conflicts(const RmaChecker* /*self*/, OpKind prior_kind,
                             int prior_rank, bool prior_completed,
                             OpKind next_kind, int next_rank) {
  if (!is_write(prior_kind) && !is_write(next_kind)) return false;
  if (prior_kind == OpKind::Acc && next_kind == OpKind::Acc) return false;
  if (prior_rank == next_rank && prior_completed) return false;
  return true;
}

[[nodiscard]] std::string site_str(std::source_location site) {
  std::ostringstream os;
  const char* file = site.file_name();
  if (const char* slash = std::strrchr(file, '/')) file = slash + 1;
  os << file << ':' << site.line();
  if (site.function_name() != nullptr && *site.function_name() != '\0')
    os << " (" << site.function_name() << ")";
  return os.str();
}

}  // namespace

bool RmaChecker::env_enabled() {
  const char* v = std::getenv("SRUMMA_RMA_CHECK");
  if (v != nullptr) return *v != '\0' && std::strcmp(v, "0") != 0;
#ifdef SRUMMA_RMA_CHECK_DEFAULT
  return true;
#else
  return false;
#endif
}

RmaChecker::RmaChecker(Team& team, bool throw_on_diagnostic)
    : team_(team),
      throw_on_diagnostic_(throw_on_diagnostic),
      epoch_(static_cast<std::size_t>(team.size()), 0),
      completed_handles_(static_cast<std::size_t>(team.size())) {
  const std::string journal_path = trace::journal_env_path();
  if (!journal_path.empty())
    journal_ = std::make_unique<trace::JournalWriter>(journal_path);
  observer_id_ = team_.add_epoch_observer([this](int r) { on_barrier(r); });
}

RmaChecker::~RmaChecker() { team_.remove_epoch_observer(observer_id_); }

void RmaChecker::journal_op(const OpRecord& op) {
  if (!journal_) return;
  trace::JournalRecord r;
  r.ev = "op";
  r.rank = op.rank;
  r.kind = op_name(op.kind);
  r.owner = op.owner;
  r.seq = op.seq;
  r.handle = op.completed ? 0 : op.handle;  // 0 = completed synchronously
  r.epoch = op.epoch;
  r.rlo = op.remote.lo;
  r.rrows = op.remote.rows;
  r.rcols = op.remote.cols;
  r.rld = op.remote.ld;
  r.llo = op.local.lo;
  r.lrows = op.local.rows;
  r.lcols = op.local.cols;
  r.lld = op.local.ld;
  r.site = site_str(op.site);
  journal_->record(r);
}

void RmaChecker::journal_event(const char* ev, int rank, std::uint64_t seq,
                               std::uint64_t handle) {
  if (!journal_) return;
  trace::JournalRecord r;
  r.ev = ev;
  r.rank = rank;
  r.seq = seq;
  r.handle = handle;
  r.epoch = epoch_[static_cast<std::size_t>(rank)];
  journal_->record(r);
}

void RmaChecker::emit(Diag d, int rank, std::uint64_t seq, int owner,
                      const Footprint& fp, std::uint64_t epoch,
                      std::uint64_t handle, std::source_location site,
                      const std::string& detail) {
  CheckReport r;
  r.diag = d;
  r.rank = rank;
  r.region_seq = seq;
  r.owner = owner;
  r.lo = fp.lo;
  r.hi = fp.span_end();
  r.epoch = epoch;
  r.handle = handle;
  r.site = site_str(site);

  std::ostringstream os;
  os << "[rma-check] " << diag_name(d) << ": rank " << rank;
  if (seq != kNoRegion) {
    os << ", region seq " << seq;
    if (owner >= 0) os << " (owner " << owner << ")";
    os << ", bytes [" << r.lo << ", " << r.hi << ")";
  }
  os << ", epoch " << epoch;
  if (handle != 0) os << ", handle " << handle;
  os << ", at " << r.site << ": " << detail;
  r.message = os.str();
  reports_.push_back(r);
  if (journal_) {
    trace::JournalRecord jr;
    jr.ev = "diag";
    jr.kind = diag_name(d);
    jr.rank = rank;
    jr.owner = owner;
    jr.seq = seq;
    jr.handle = handle;
    jr.epoch = epoch;
    // The report interval [lo, hi) as a degenerate one-column footprint.
    jr.rlo = r.lo;
    jr.rrows = r.hi - r.lo;
    jr.rcols = r.hi > r.lo ? 1 : 0;
    jr.rld = r.hi - r.lo;
    jr.site = r.site;
    journal_->record(jr);
  }
  if (throw_on_diagnostic_) throw Error(r.message);
}

const RmaChecker::Segment* RmaChecker::find_segment(std::uint64_t addr) const {
  if (segs_by_base_.empty() || addr == 0) return nullptr;
  auto it = segs_by_base_.upper_bound(addr);
  if (it == segs_by_base_.begin()) return nullptr;
  --it;
  const Segment& s = it->second;
  return addr < s.base + s.len ? &s : nullptr;
}

const RmaChecker::Segment* RmaChecker::find_segment_by_id(std::uint64_t seq,
                                                          int owner) const {
  auto it = segs_by_id_.find({seq, owner});
  return it == segs_by_id_.end() ? nullptr : &it->second;
}

void RmaChecker::on_malloc(int rank, std::uint64_t seq, const double* base,
                           std::size_t elems) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment s;
  s.seq = seq;
  s.owner = rank;
  s.base = reinterpret_cast<std::uint64_t>(base);
  s.len = elems * sizeof(double);
  segs_by_id_[{seq, rank}] = s;
  if (s.base != 0 && s.len != 0) segs_by_base_[s.base] = s;
  if (journal_) {
    trace::JournalRecord r;
    r.ev = "alloc";
    r.rank = rank;
    r.owner = rank;
    r.seq = seq;
    r.epoch = epoch_[static_cast<std::size_t>(rank)];
    r.rrows = s.len;  // segment bytes
    r.rcols = s.len != 0 ? 1 : 0;
    r.rld = s.len;
    journal_->record(r);
  }
}

void RmaChecker::on_free(int rank, std::uint64_t seq,
                         std::source_location site) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_event("free", rank, seq, 0);
  // The freeing rank must have completed every transfer it issued against
  // the region; flag and retire stragglers so the barrier inside
  // free_symmetric does not re-report them.
  for (OpRecord& op : ops_) {
    if (op.rank != rank || op.completed || op.handle == 0 || op.seq != seq)
      continue;
    op.completed = true;
    emit(Diag::PendingAtFree, rank, seq, op.owner, op.remote,
         epoch_[static_cast<std::size_t>(rank)], op.handle, site,
         std::string("free_symmetric while a ") + op_name(op.kind) +
             " issued at " + site_str(op.site) + " is still pending");
  }
  if (++free_arrivals_[seq] == team_.size()) {
    free_arrivals_.erase(seq);
    for (auto it = segs_by_id_.begin(); it != segs_by_id_.end();) {
      if (it->first.first == seq) {
        if (it->second.base != 0) segs_by_base_.erase(it->second.base);
        it = segs_by_id_.erase(it);
      } else {
        ++it;
      }
    }
    std::erase_if(ops_, [seq](const OpRecord& op) { return op.seq == seq; });
  }
}

void RmaChecker::check_region_conflicts(const OpRecord& incoming) {
  if (incoming.seq == kNoRegion || incoming.remote.empty()) return;
  for (const OpRecord& prior : ops_) {
    if (prior.seq != incoming.seq || prior.owner != incoming.owner) continue;
    if (!conflicts(this, prior.kind, prior.rank, prior.completed,
                   incoming.kind, incoming.rank))
      continue;
    if (!footprints_overlap(prior.remote, incoming.remote)) continue;
    std::ostringstream os;
    os << op_name(incoming.kind) << " overlaps a " << op_name(prior.kind)
       << " by rank " << prior.rank << " (issued at " << site_str(prior.site)
       << (prior.completed ? ", completed" : ", still pending")
       << ") in the same barrier epoch; separate conflicting accesses with a "
          "barrier";
    emit(Diag::EpochConflict, incoming.rank, incoming.seq, incoming.owner,
         incoming.remote, incoming.epoch, incoming.handle, incoming.site,
         os.str());
    return;  // one report per issue is enough
  }
}

void RmaChecker::check_local_reuse(int rank, const Footprint& local,
                                   std::source_location site,
                                   const char* what) {
  if (local.empty()) return;
  for (const OpRecord& prior : ops_) {
    if (prior.rank != rank || prior.kind != OpKind::Get || prior.completed)
      continue;
    if (!footprints_overlap(prior.local, local)) continue;
    std::ostringstream os;
    os << what << " touches the destination buffer of a get (issued at "
       << site_str(prior.site) << ") that has not been wait()ed";
    emit(Diag::UseBeforeWait, rank, prior.seq, prior.owner, prior.remote,
         epoch_[static_cast<std::size_t>(rank)], prior.handle, site, os.str());
    return;
  }
}

std::uint64_t RmaChecker::on_issue(int rank, OpKind kind, int owner,
                                   const double* remote, Footprint remote_shape,
                                   const double* local, Footprint local_shape,
                                   std::source_location site) {
  std::lock_guard<std::mutex> lock(mu_);
  OpRecord op;
  op.kind = kind;
  op.rank = rank;
  op.handle = next_handle_++;
  op.completed = false;
  op.epoch = epoch_[static_cast<std::size_t>(rank)];
  op.seq = kNoRegion;
  op.owner = -1;
  op.site = site;

  // (1) the origin buffer of this op must not alias a pending get's
  // destination: a get re-targeting the buffer is premature reuse, a
  // put/acc reading it sends stale data.
  if (local != nullptr && !local_shape.empty()) {
    local_shape.lo = reinterpret_cast<std::uint64_t>(local);
    op.local = local_shape;
    check_local_reuse(rank, op.local, site,
                      kind == OpKind::Get ? "get destination reuse"
                                          : "put/acc source read");
  }

  // Resolve the owner-side pointer against the live segments.
  if (remote != nullptr && !remote_shape.empty()) {
    const std::uint64_t addr = reinterpret_cast<std::uint64_t>(remote);
    if (const Segment* seg = find_segment(addr)) {
      op.seq = seg->seq;
      op.owner = seg->owner;
      remote_shape.lo = addr - seg->base;
      op.remote = remote_shape;
      // (5) footprint must stay inside the owner's segment.
      if (op.remote.span_end() > seg->len) {
        std::ostringstream os;
        os << op_name(kind) << " footprint ends at byte "
           << op.remote.span_end() << " but the owner segment is only "
           << seg->len << " bytes";
        emit(Diag::OutOfBounds, rank, op.seq, op.owner, op.remote, op.epoch,
             op.handle, site, os.str());
      }
      // (3) conflicting access in the same epoch.
      check_region_conflicts(op);
    }
  } else {
    // Phantom transfer: no owner-side pointer to resolve.  Attribute the
    // footprint to the nominal owner so handle-lifecycle checks still run.
    op.owner = owner;
  }

  journal_op(op);
  ops_.push_back(op);
  return op.handle;
}

void RmaChecker::on_wait(int rank, std::uint64_t handle_id,
                         std::source_location site) {
  if (handle_id == 0) return;  // issued while the checker was off
  std::lock_guard<std::mutex> lock(mu_);
  journal_event("wait", rank, kNoRegion, handle_id);
  auto& done = completed_handles_[static_cast<std::size_t>(rank)];
  if (done.count(handle_id) != 0) {
    emit(Diag::DoubleWait, rank, kNoRegion, -1, Footprint{},
         epoch_[static_cast<std::size_t>(rank)], handle_id, site,
         "wait() on a handle that already completed (likely a lost or "
         "aliased handle)");
    return;
  }
  for (OpRecord& op : ops_) {
    if (op.handle != handle_id) continue;
    op.completed = true;
    done.insert(handle_id);
    return;
  }
  // The record crossed a barrier unwaited (reported there) or belongs to a
  // freed region; nothing further to check.
}

void RmaChecker::on_barrier(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_event("barrier", rank, kNoRegion, 0);
  // (2) every handle this rank issued in the closing epoch must be complete.
  for (const OpRecord& op : ops_) {
    if (op.rank != rank || op.completed || op.handle == 0) continue;
    emit(Diag::UnwaitedAtBarrier, rank, op.seq, op.owner, op.remote, op.epoch,
         op.handle, op.site,
         std::string("nonblocking ") + op_name(op.kind) +
             " crossed a barrier without wait(); its completion is now "
             "undefined");
  }
  std::erase_if(ops_, [rank](const OpRecord& op) { return op.rank == rank; });
  completed_handles_[static_cast<std::size_t>(rank)].clear();
  ++epoch_[static_cast<std::size_t>(rank)];
}

void RmaChecker::on_direct_access(int rank, int owner, std::uint64_t seq,
                                  Footprint shape, std::source_location site) {
  std::lock_guard<std::mutex> lock(mu_);
  // (4) reach-through is only legal within the caller's memory domain.
  if (!team_.machine().same_domain(rank, owner)) {
    std::ostringstream os;
    os << "direct load/store to a segment owned by rank " << owner
       << " (domain " << team_.machine().domain_of(owner)
       << ") from a rank in domain " << team_.machine().domain_of(rank)
       << "; remote segments must be reached with get/put";
    emit(Diag::NonDomainDirect, rank, seq, owner, shape,
         epoch_[static_cast<std::size_t>(rank)], 0, site, os.str());
    return;
  }
  OpRecord op;
  op.kind = OpKind::DirectRead;
  op.rank = rank;
  op.handle = 0;
  op.completed = true;
  op.epoch = epoch_[static_cast<std::size_t>(rank)];
  op.seq = seq;
  op.owner = owner;
  op.remote = shape;
  op.site = site;
  if (const Segment* seg = find_segment_by_id(seq, owner)) {
    if (seg->len != 0 && op.remote.span_end() > seg->len) {
      std::ostringstream os;
      os << "direct access footprint ends at byte " << op.remote.span_end()
         << " but the owner segment is only " << seg->len << " bytes";
      emit(Diag::OutOfBounds, rank, seq, owner, op.remote, op.epoch, 0, site,
           os.str());
    }
  }
  check_region_conflicts(op);
  journal_op(op);
  ops_.push_back(op);
}

void RmaChecker::on_shared_read(int rank, int owner, std::uint64_t seq,
                                Footprint shape, std::source_location site) {
  std::lock_guard<std::mutex> lock(mu_);
  OpRecord op;
  op.kind = OpKind::Get;
  op.rank = rank;
  op.handle = 0;  // no wait lifecycle: the share completes synchronously
  op.completed = true;
  op.epoch = epoch_[static_cast<std::size_t>(rank)];
  op.seq = seq;
  op.owner = owner;
  op.remote = shape;
  op.site = site;
  if (const Segment* seg = find_segment_by_id(seq, owner)) {
    if (seg->len != 0 && op.remote.span_end() > seg->len) {
      std::ostringstream os;
      os << "cache shared-read footprint ends at byte " << op.remote.span_end()
         << " but the owner segment is only " << seg->len << " bytes";
      emit(Diag::OutOfBounds, rank, seq, owner, op.remote, op.epoch, 0, site,
           os.str());
    }
  }
  check_region_conflicts(op);
  journal_op(op);
  ops_.push_back(op);
}

void RmaChecker::on_compute_access(int rank, const double* ptr,
                                   Footprint shape, bool write,
                                   std::source_location site) {
  if (ptr == nullptr || shape.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t addr = reinterpret_cast<std::uint64_t>(ptr);
  Footprint abs = shape;
  abs.lo = addr;
  // (1) compute must not consume a buffer a pending get is still filling.
  check_local_reuse(rank, abs, site,
                    write ? "compute write" : "compute read");

  OpRecord op;
  op.kind = write ? OpKind::LocalWrite : OpKind::ComputeRead;
  op.rank = rank;
  op.handle = 0;
  op.completed = true;
  op.epoch = epoch_[static_cast<std::size_t>(rank)];
  op.seq = kNoRegion;
  op.owner = -1;
  op.local = abs;
  op.site = site;
  if (const Segment* seg = find_segment(addr)) {
    op.seq = seg->seq;
    op.owner = seg->owner;
    op.remote = shape;
    op.remote.lo = addr - seg->base;
    // (3) local compute on a live region joins the epoch conflict map.
    check_region_conflicts(op);
  }
  journal_op(op);
  ops_.push_back(op);
}

std::vector<CheckReport> RmaChecker::reports() {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::size_t RmaChecker::report_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

void RmaChecker::clear_reports() {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.clear();
}

}  // namespace srumma::check
