#pragma once
// Shadow-state race & completion checker for the one-sided runtime.
//
// SRUMMA's correctness rests on discipline the compiler cannot see: a
// nonblocking get must be wait()ed before its destination buffer is read or
// reused, conflicting puts/gets on one global region must be separated by a
// barrier epoch, and direct load/store reach-through to a peer's segment is
// legal only inside a shared-memory domain.  ARMCI imposed these rules by
// specification; this checker imposes them by instrumentation.
//
// The checker mirrors every live SymmetricRegion as an interval map of
// outstanding operations keyed by barrier epoch and handle identity, fed by
// hooks in RmaRuntime (issue/wait/alloc/free), Team::barrier_wait (epoch
// advance, via the epoch-observer callback), DistMatrix (direct-view
// declarations) and the SRUMMA pipeline (compute read/write declarations).
// Diagnosed classes:
//
//   (1) UseBeforeWait      destination buffer of a pending get is read or
//                          re-targeted before wait();
//   (2) UnwaitedAtBarrier  a handle crosses a barrier without wait();
//   (3) EpochConflict      overlapping put/put, put/get, put/acc or
//                          put/local-compute inside one barrier epoch
//                          (same-origin ops ordered by wait() are exempt;
//                          acc/acc is exempt — accumulates are atomic);
//   (4) NonDomainDirect    direct load/store declared on a segment whose
//                          owner is outside the caller's memory domain;
//   (5) PendingAtFree      free_symmetric with transfers still pending;
//       OutOfBounds        an op's footprint exceeds the owner's segment;
//   (6) DoubleWait         wait() on an already-completed handle.
//
// Enabling: env SRUMMA_RMA_CHECK=1 (any non-"0" value), the CMake option
// SRUMMA_RMA_CHECK (compiles the default to on), or RmaConfig::check.  When
// disabled the runtime carries a single null-pointer test per hook — no
// locks, no lookups, no allocation.
//
// Strided footprints are tracked exactly (column stride preserved), so two
// interleaved patches of one owner block do not falsely conflict.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <source_location>
#include <string>
#include <vector>

namespace srumma {
class Team;
}  // namespace srumma

namespace srumma::trace {
class JournalWriter;
}  // namespace srumma::trace

namespace srumma::check {

/// Diagnostic classes (see file comment for the discipline each enforces).
enum class Diag {
  UseBeforeWait,
  UnwaitedAtBarrier,
  EpochConflict,
  NonDomainDirect,
  PendingAtFree,
  OutOfBounds,
  DoubleWait,
};

[[nodiscard]] const char* diag_name(Diag d);

/// What an operation does to the bytes it touches.
enum class OpKind {
  Get,          ///< one-sided read of an owner segment into a local buffer
  Put,          ///< one-sided write of an owner segment
  Acc,          ///< one-sided atomic accumulate into an owner segment
  DirectRead,   ///< declared load/store reach-through to a peer segment
  ComputeRead,  ///< declared local compute read (dgemm operand)
  LocalWrite,   ///< declared local compute write (C tile, GA access view)
};

[[nodiscard]] const char* op_name(OpKind k);

/// A strided byte footprint: `cols` columns of `rows` bytes, `ld` bytes
/// apart, starting at `lo` (an offset within a segment, or an absolute
/// address for origin-local buffers).  cols == 0 means empty.
struct Footprint {
  std::uint64_t lo = 0;
  std::uint64_t rows = 0;  ///< contiguous bytes per column
  std::uint64_t cols = 0;
  std::uint64_t ld = 0;  ///< column stride in bytes (>= rows)

  [[nodiscard]] bool empty() const noexcept { return cols == 0 || rows == 0; }
  /// One past the last byte touched (== lo for an empty footprint).
  [[nodiscard]] std::uint64_t span_end() const noexcept {
    return empty() ? lo : lo + (cols - 1) * ld + rows;
  }
};

/// Exact overlap test between two strided footprints.
[[nodiscard]] bool footprints_overlap(const Footprint& a, const Footprint& b);

/// One recorded diagnostic.
struct CheckReport {
  Diag diag;
  int rank;                  ///< rank the violating call executed on
  std::uint64_t region_seq;  ///< region sequence id, kNoRegion when n/a
  int owner;                 ///< segment owner rank, -1 when n/a
  std::uint64_t lo;          ///< byte interval within the owner segment
  std::uint64_t hi;
  std::uint64_t epoch;   ///< barrier epoch of the violating rank
  std::uint64_t handle;  ///< handle id, 0 when n/a
  std::string site;      ///< issuing call site ("file:line (function)")
  std::string message;   ///< fully formatted diagnostic text
};

inline constexpr std::uint64_t kNoRegion = ~std::uint64_t{0};

/// The shadow-state checker.  One instance per RmaRuntime; all methods are
/// thread-safe (rank threads call them concurrently).
class RmaChecker {
 public:
  /// `throw_on_diagnostic`: throw srumma::Error at the first violation
  /// (the default for env-enabled runs) or only record (tests inspect
  /// reports()).
  RmaChecker(Team& team, bool throw_on_diagnostic);
  ~RmaChecker();
  RmaChecker(const RmaChecker&) = delete;
  RmaChecker& operator=(const RmaChecker&) = delete;

  /// True when the SRUMMA_RMA_CHECK environment variable (or the
  /// SRUMMA_RMA_CHECK CMake default) asks for checking.
  [[nodiscard]] static bool env_enabled();

  // -- allocation lifecycle -------------------------------------------------
  void on_malloc(int rank, std::uint64_t seq, const double* base,
                 std::size_t elems);
  void on_free(int rank, std::uint64_t seq, std::source_location site);

  // -- one-sided operations -------------------------------------------------
  /// Record an issued op and run issue-time diagnostics.  `remote` is the
  /// owner-side pointer (nullptr in phantom mode), `local` the origin-side
  /// buffer (dst of a get, src of a put/acc; may be nullptr).  Returns the
  /// handle identity to store in the RmaHandle.
  std::uint64_t on_issue(int rank, OpKind kind, int owner, const double* remote,
                         Footprint remote_shape, const double* local,
                         Footprint local_shape, std::source_location site);
  void on_wait(int rank, std::uint64_t handle_id, std::source_location site);

  /// Epoch advance: called by Team::barrier_wait as `rank` enters a barrier.
  void on_barrier(int rank);

  // -- discipline declarations ---------------------------------------------
  /// Direct load/store reach-through into (seq, owner) at byte offset
  /// `shape.lo`.  Diagnoses NonDomainDirect when owner is outside the
  /// caller's shared-memory domain.
  void on_direct_access(int rank, int owner, std::uint64_t seq,
                        Footprint shape, std::source_location site);
  /// Local compute read/write of [ptr, shape).  Resolved against the live
  /// segments so owner-segment accesses join the epoch conflict map; always
  /// checked against the rank's pending get destinations.
  void on_compute_access(int rank, const double* ptr, Footprint shape,
                         bool write, std::source_location site);
  /// A read of (seq, owner) consumed through the cooperative block cache:
  /// the rank moved no bytes over the NIC itself, but it semantically read
  /// the owner's segment, so register a completed get at the TRUE origin
  /// (out-of-bounds + epoch-conflict checked).  Unlike on_direct_access the
  /// owner is legitimately outside the caller's domain — the domain mate
  /// that fetched it is the one that touched the wire.
  void on_shared_read(int rank, int owner, std::uint64_t seq, Footprint shape,
                      std::source_location site);

  // -- results --------------------------------------------------------------
  [[nodiscard]] std::vector<CheckReport> reports();
  [[nodiscard]] std::size_t report_count();
  void clear_reports();

 private:
  struct Segment {
    std::uint64_t seq;
    int owner;
    std::uint64_t base;  ///< address (0 for phantom)
    std::uint64_t len;   ///< bytes
  };

  struct OpRecord {
    OpKind kind;
    int rank;               ///< issuing rank
    std::uint64_t handle;   ///< 0 for declarations
    bool completed;         ///< waited (ops) or instantaneous (declarations)
    std::uint64_t epoch;    ///< issuing rank's epoch at issue time
    std::uint64_t seq;      ///< target region, kNoRegion when unresolved
    int owner;              ///< segment owner, -1 when unresolved
    Footprint remote;       ///< footprint within the owner segment (bytes)
    Footprint local;        ///< origin-buffer footprint (absolute addresses)
    std::source_location site;
  };

  // All helpers below require mu_ held.
  const Segment* find_segment(std::uint64_t addr) const;
  const Segment* find_segment_by_id(std::uint64_t seq, int owner) const;
  void check_region_conflicts(const OpRecord& incoming);
  void check_local_reuse(int rank, const Footprint& local,
                         std::source_location site, const char* what);
  void emit(Diag d, int rank, std::uint64_t seq, int owner,
            const Footprint& fp, std::uint64_t epoch, std::uint64_t handle,
            std::source_location site, const std::string& detail);
  /// Journal an op/declaration record when SRUMMA_RMA_JOURNAL is set
  /// (srumma-analyze --trace cross-validates the stream, docs/ANALYSIS.md).
  void journal_op(const OpRecord& op);
  void journal_event(const char* ev, int rank, std::uint64_t seq,
                     std::uint64_t handle);

  Team& team_;
  bool throw_on_diagnostic_;
  std::uint64_t observer_id_;
  std::unique_ptr<trace::JournalWriter> journal_;

  std::mutex mu_;
  std::uint64_t next_handle_ = 1;
  std::vector<std::uint64_t> epoch_;  // per rank
  std::map<std::uint64_t, Segment> segs_by_base_;  // keyed by base address
  std::map<std::pair<std::uint64_t, int>, Segment> segs_by_id_;
  std::map<std::uint64_t, int> free_arrivals_;  // seq -> ranks freed
  std::vector<OpRecord> ops_;
  std::vector<std::set<std::uint64_t>> completed_handles_;  // per rank
  std::vector<CheckReport> reports_;
};

}  // namespace srumma::check
