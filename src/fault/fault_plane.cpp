#include "fault/fault_plane.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace srumma::fault {

namespace {

// splitmix64 finalizer: mixes (seed, rank, seq) into one well-distributed
// word used to seed the per-decision Rng.  Matches the style of the
// deterministic noise jitter in Rank::consume_cpu.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t combine(std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t rank, std::uint64_t seq) noexcept {
  std::uint64_t x = seed;
  x = mix(x + 0x9e3779b97f4a7c15ULL * (stream + 1));
  x = mix(x + 0x9e3779b97f4a7c15ULL * (rank + 1));
  x = mix(x + 0x9e3779b97f4a7c15ULL * (seq + 1));
  return x;
}

bool env_flag_present(const char* name, bool& any) {
  if (std::getenv(name) != nullptr) any = true;
  return any;
}

void parse_double(const char* name, double& out, bool& any) {
  if (const char* v = std::getenv(name)) {
    out = std::strtod(v, nullptr);
    any = true;
  }
}

void parse_int(const char* name, int& out, bool& any) {
  if (const char* v = std::getenv(name)) {
    out = static_cast<int>(std::strtol(v, nullptr, 10));
    any = true;
  }
}

void parse_u64(const char* name, std::uint64_t& out, bool& any) {
  if (const char* v = std::getenv(name)) {
    out = std::strtoull(v, nullptr, 10);
    any = true;
  }
}

void parse_kill_point(const char* name, KillPoint& out, bool& any) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  any = true;
  const std::string s(v);
  if (s == "none" || s.empty()) {
    out = KillPoint::None;
  } else if (s == "prefetch") {
    out = KillPoint::Prefetch;
  } else if (s == "chain") {
    out = KillPoint::Chain;
  } else if (s == "steal") {
    out = KillPoint::Steal;
  } else if (s == "barrier") {
    out = KillPoint::Barrier;
  } else {
    SRUMMA_REQUIRE(false,
                   "SRUMMA_FAULT_KILL_POINT: expected one of "
                   "prefetch|chain|steal|barrier|none, got \"" +
                       s + "\"");
  }
}

}  // namespace

std::optional<FaultConfig> FaultConfig::from_env() {
  FaultConfig cfg;
  bool any = false;
  parse_u64("SRUMMA_FAULT_SEED", cfg.seed, any);
  parse_double("SRUMMA_FAULT_FAIL_RATE", cfg.fail_rate, any);
  parse_double("SRUMMA_FAULT_CORRUPT_RATE", cfg.corrupt_rate, any);
  parse_double("SRUMMA_FAULT_DELAY_RATE", cfg.delay_rate, any);
  parse_double("SRUMMA_FAULT_DELAY_FACTOR", cfg.delay_factor, any);
  parse_int("SRUMMA_FAULT_STRAGGLER_NODE", cfg.straggler_node, any);
  parse_double("SRUMMA_FAULT_STRAGGLER_FACTOR", cfg.straggler_factor, any);
  parse_int("SRUMMA_FAULT_DEAD_DOMAIN", cfg.dead_domain, any);
  parse_int("SRUMMA_FAULT_KILL_DOMAIN", cfg.kill_domain, any);
  parse_kill_point("SRUMMA_FAULT_KILL_POINT", cfg.kill_point, any);
  parse_double("SRUMMA_FAULT_KILL_AFTER_VTIME", cfg.kill_after_vtime, any);
  parse_int("SRUMMA_FAULT_BUDDY_OFFSET", cfg.buddy_offset, any);
  parse_int("SRUMMA_FAULT_ONLY_RANK", cfg.only_rank, any);
  parse_int("SRUMMA_FAULT_ONLY_PEER", cfg.only_peer, any);
  parse_u64("SRUMMA_FAULT_FIRST_OP", cfg.first_op, any);
  parse_u64("SRUMMA_FAULT_LAST_OP", cfg.last_op, any);
  parse_double("SRUMMA_FAULT_AFTER_VTIME", cfg.after_vtime, any);
  env_flag_present("SRUMMA_FAULT", any);  // bare switch: defaults, no faults
  if (!any) return std::nullopt;
  return cfg;
}

FaultPlane::FaultPlane(const MachineModel& machine, FaultConfig cfg)
    : cfg_(cfg),
      machine_(machine),
      op_seq_(static_cast<std::size_t>(machine.total_ranks())),
      msg_seq_(static_cast<std::size_t>(machine.total_ranks())) {
  SRUMMA_REQUIRE(cfg_.fail_rate >= 0.0 && cfg_.fail_rate <= 1.0 &&
                     cfg_.corrupt_rate >= 0.0 && cfg_.corrupt_rate <= 1.0 &&
                     cfg_.delay_rate >= 0.0 && cfg_.delay_rate <= 1.0,
                 "FaultConfig: rates must lie in [0, 1]");
  SRUMMA_REQUIRE(cfg_.delay_factor >= 1.0 && cfg_.straggler_factor >= 1.0,
                 "FaultConfig: delay factors must be >= 1");
  // Install-time range validation (docs/FAULTS.md): a structural-fault
  // domain id outside this machine's domains would silently never fire —
  // reject it here so a typo'd SRUMMA_FAULT_DEAD_DOMAIN / _KILL_DOMAIN
  // fails loudly instead of producing a clean-looking fault-free run.
  const int domains = machine_.num_domains();
  SRUMMA_REQUIRE(cfg_.dead_domain < domains,
                 "FaultConfig: dead_domain " + std::to_string(cfg_.dead_domain) +
                     " out of range for a machine with " +
                     std::to_string(domains) + " shared-memory domain(s)");
  SRUMMA_REQUIRE(cfg_.kill_domain < domains,
                 "FaultConfig: kill_domain " + std::to_string(cfg_.kill_domain) +
                     " out of range for a machine with " +
                     std::to_string(domains) + " shared-memory domain(s)");
  if (cfg_.kill_point != KillPoint::None || cfg_.kill_domain >= 0) {
    SRUMMA_REQUIRE(cfg_.kill_point != KillPoint::None && cfg_.kill_domain >= 0,
                   "FaultConfig: kill_domain and kill_point must be set "
                   "together (SRUMMA_FAULT_KILL_DOMAIN + "
                   "SRUMMA_FAULT_KILL_POINT)");
    SRUMMA_REQUIRE(domains >= 2,
                   "FaultConfig: killing a domain needs at least two "
                   "shared-memory domains (no survivors otherwise)");
    SRUMMA_REQUIRE(domains <= 64,
                   "FaultConfig: the dead-domain bitset supports at most 64 "
                   "domains");
    SRUMMA_REQUIRE(cfg_.buddy_offset >= 1 && cfg_.buddy_offset < domains,
                   "FaultConfig: buddy_offset " +
                       std::to_string(cfg_.buddy_offset) +
                       " must lie in [1, " + std::to_string(domains) +
                       ") so a domain never buddies itself");
  }
  any_random_ =
      cfg_.fail_rate > 0.0 || cfg_.corrupt_rate > 0.0 || cfg_.delay_rate > 0.0;
  reset();
}

bool FaultPlane::reach_kill_point(KillPoint p, int domain,
                                  double vtime) noexcept {
  if (cfg_.kill_point == KillPoint::None || domain != cfg_.kill_domain)
    return false;
  if (killed_.load(std::memory_order_acquire)) return true;
  if (!armed_.load(std::memory_order_acquire)) return false;
  if (p != cfg_.kill_point) return false;
  if (vtime < cfg_.kill_after_vtime) return false;
  killed_.store(true, std::memory_order_release);
  return true;
}

bool FaultPlane::in_scope(int rank, int peer, std::uint64_t seq,
                          double vtime) const noexcept {
  if (cfg_.only_rank >= 0 && rank != cfg_.only_rank) return false;
  if (cfg_.only_peer >= 0 && peer != cfg_.only_peer) return false;
  if (seq < cfg_.first_op || seq > cfg_.last_op) return false;
  return vtime >= cfg_.after_vtime;
}

FaultDecision FaultPlane::on_transfer(int rank, int owner,
                                      double issue_vtime) noexcept {
  FaultDecision d;
  if (!any_random_) return d;
  const std::uint64_t seq =
      op_seq_[static_cast<std::size_t>(rank)].fetch_add(
          1, std::memory_order_relaxed);
  if (!in_scope(rank, owner, seq, issue_vtime)) return d;
  Rng rng(combine(cfg_.seed, /*stream=*/0,
                  static_cast<std::uint64_t>(rank), seq));
  // Fixed draw order so adding one knob never shifts another's stream.
  const double u_fail = rng.uniform();
  const double u_corrupt = rng.uniform();
  const double u_delay = rng.uniform();
  d.fail = u_fail < cfg_.fail_rate;
  // A failed transfer delivers nothing, so corruption only applies to
  // transfers that complete.
  d.corrupt = !d.fail && u_corrupt < cfg_.corrupt_rate;
  if (u_delay < cfg_.delay_rate) d.delay = cfg_.delay_factor;
  return d;
}

double FaultPlane::on_message(int rank, int dst, double issue_vtime) noexcept {
  if (!any_random_ || cfg_.delay_rate <= 0.0) return 1.0;
  const std::uint64_t seq =
      msg_seq_[static_cast<std::size_t>(rank)].fetch_add(
          1, std::memory_order_relaxed);
  if (!in_scope(rank, dst, seq, issue_vtime)) return 1.0;
  Rng rng(combine(cfg_.seed, /*stream=*/1,
                  static_cast<std::uint64_t>(rank), seq));
  return rng.uniform() < cfg_.delay_rate ? cfg_.delay_factor : 1.0;
}

void FaultPlane::corrupt_payload(double* dst, index_t ld, index_t rows,
                                 index_t cols, std::uint64_t salt) noexcept {
  if (dst == nullptr || rows <= 0 || cols <= 0) return;  // phantom buffer
  const std::uint64_t h = mix(salt + 0x9e3779b97f4a7c15ULL);
  const auto i = static_cast<index_t>(h % static_cast<std::uint64_t>(rows));
  const auto j = static_cast<index_t>((h >> 20) %
                                      static_cast<std::uint64_t>(cols));
  double& cell = dst[i + j * ld];
  std::uint64_t bits;
  std::memcpy(&bits, &cell, sizeof(bits));
  // Flip one mantissa bit: the value stays finite, but any bitwise
  // comparison against the owner's copy detects it.
  bits ^= std::uint64_t{1} << (h % 52);
  std::memcpy(&cell, &bits, sizeof(bits));
}

void FaultPlane::reset() noexcept {
  for (auto& c : op_seq_) c.store(0, std::memory_order_relaxed);
  for (auto& c : msg_seq_) c.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_release);
  killed_.store(false, std::memory_order_release);
  dead_mask_.store(0, std::memory_order_release);
}

std::shared_ptr<FaultPlane> plane_from_env(const MachineModel& machine) {
  if (auto cfg = FaultConfig::from_env())
    return std::make_shared<FaultPlane>(machine, *cfg);
  return nullptr;
}

}  // namespace srumma::fault
