#pragma once
// Deterministic fault-injection plane for the communication layers.
//
// SRUMMA's owner-computes design assumes every one-sided transfer succeeds
// on first issue; this plane lets the runtime prove otherwise on purpose.
// A FaultPlane is attached to a Team (one per team; nullptr when disabled —
// the same zero-cost null-test pattern as the RMA checker) and consulted by
// RmaRuntime at every nb* issue and by msg::Comm when scheduling wire
// transfers.  Injectable fault classes:
//
//   * transient failure   — the handle completes in an error state and the
//                           payload is NOT delivered (RetryPolicy re-issues);
//   * payload corruption  — the transfer completes normally but one element
//                           of the destination buffer has a flipped mantissa
//                           bit (detectable by checksum verification);
//   * delayed completion  — the modeled wire/copy time is multiplied by
//                           delay_factor (a random straggler op);
//   * straggler link      — every inter-node transfer touching one node is
//                           slowed by a constant factor (a persistently slow
//                           link rather than a random event);
//   * dead shm domain     — direct load/store reach-through into segments
//                           owned by one shared-memory domain faults, forcing
//                           the pipeline to degrade ShmFlavor::Direct to Copy;
//   * permanent kill      — one shared-memory domain fail-stops when one of
//                           its ranks reaches a chosen execution point
//                           (prefetch issue, commit-chain advance, steal
//                           attempt, barrier entry).  Every subsequent
//                           transfer targeting the killed domain fails; the
//                           RMA layer promotes retry-budget exhaustion
//                           against it into a team-wide "domain declared
//                           dead" epoch (RmaStatus::DomainDead) and the
//                           distribution/engine layers recover from buddy
//                           replicas (docs/FAULTS.md §7).
//
// Determinism: every random decision is drawn from util/rng seeded by
// (seed, rank, that rank's own op sequence number).  Each rank's decision
// stream depends only on its own issue order, never on thread interleaving,
// so runs replay exactly — including under retries, because a re-issued op
// advances the sequence and draws fresh values.
//
// Faults can be scoped per rank (`only_rank`), per target (`only_peer`) and
// scheduled by op count (`first_op`/`last_op`, per-rank) or virtual time
// (`after_vtime`).  Environment knobs (SRUMMA_FAULT_*) are documented in
// docs/FAULTS.md.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "machine/machine.hpp"
#include "util/matrix.hpp"

namespace srumma::fault {

/// Execution points at which a permanent domain kill can trip.  The kill is
/// structural, not random: reaching the configured point with the configured
/// domain fail-stops that domain, and NO rng draw is consumed — the random
/// fault classes' decision streams are untouched (tested in
/// tests/test_fault_recovery.cpp).
enum class KillPoint {
  None = 0,
  Prefetch,  ///< a killed-domain rank issues an operand prefetch
  Chain,     ///< a killed-domain rank advances a C-tile commit chain
  Steal,     ///< a killed-domain rank attempts a task steal (engine only)
  Barrier,   ///< a killed-domain rank enters a team barrier
};

/// Injection knobs.  All rates are probabilities in [0, 1] per operation.
struct FaultConfig {
  std::uint64_t seed = 0x5eed;

  // -- random per-op faults (RMA layer) -------------------------------------
  double fail_rate = 0.0;     ///< transient nbget/nbput/nbacc failure
  double corrupt_rate = 0.0;  ///< destination-payload bit flip
  double delay_rate = 0.0;    ///< straggler op (wire time multiplied)
  double delay_factor = 8.0;  ///< multiplier for delayed ops (>= 1)

  // -- deterministic structural faults --------------------------------------
  /// Node id whose inter-node links are persistently slow (-1 = none).
  int straggler_node = -1;
  double straggler_factor = 8.0;  ///< wire-time multiplier on that link
  /// Shared-memory domain whose segments fault under direct load/store
  /// (-1 = none).  Copy-path (get/put) access still works.
  int dead_domain = -1;

  // -- permanent fail-stop (docs/FAULTS.md §7) ------------------------------
  /// Shared-memory domain that fail-stops mid-run (-1 = none).  Requires
  /// kill_point; every rank of the domain dies together (node loss model).
  int kill_domain = -1;
  /// Execution point at which the kill trips (None = no kill).
  KillPoint kill_point = KillPoint::None;
  /// Additional gate: the kill only trips at/after this virtual time.
  double kill_after_vtime = 0.0;
  /// Buddy-replication placement: domain d's panels are mirrored onto
  /// domain (d + buddy_offset) mod num_domains.  Must lie in
  /// [1, num_domains) so a domain never buddies itself.
  int buddy_offset = 1;

  // -- scoping & scheduling -------------------------------------------------
  int only_rank = -1;  ///< restrict random faults to ops issued by this rank
  int only_peer = -1;  ///< restrict random faults to ops targeting this owner
  std::uint64_t first_op = 0;  ///< per-rank op index window [first, last]
  std::uint64_t last_op = ~std::uint64_t{0};
  double after_vtime = 0.0;  ///< only ops issued at/after this virtual time

  /// Parse the SRUMMA_FAULT_* environment; nullopt when no knob is set.
  [[nodiscard]] static std::optional<FaultConfig> from_env();
};

/// Outcome of one per-op draw.
struct FaultDecision {
  bool fail = false;
  bool corrupt = false;
  double delay = 1.0;  ///< wire/copy time multiplier (1.0 = undisturbed)
};

class FaultPlane {
 public:
  FaultPlane(const MachineModel& machine, FaultConfig cfg);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

  /// Draw the fate of one one-sided transfer issued by `rank` against
  /// `owner`.  Advances `rank`'s op sequence; must be called from that
  /// rank's own thread (which every nb* issue path guarantees).
  [[nodiscard]] FaultDecision on_transfer(int rank, int owner,
                                          double issue_vtime) noexcept;

  /// Draw the fate of one two-sided message sent by `rank` to `dst`.
  /// Separate per-rank sequence from on_transfer; only the delay channel
  /// applies (two-sided retry semantics are out of scope).
  [[nodiscard]] double on_message(int rank, int dst,
                                  double issue_vtime) noexcept;

  /// Constant wire-time multiplier for the src -> dst inter-node link
  /// (the straggler-link knob; 1.0 for healthy links).
  [[nodiscard]] double link_delay(int src_node, int dst_node) const noexcept {
    return (cfg_.straggler_node >= 0 && (src_node == cfg_.straggler_node ||
                                         dst_node == cfg_.straggler_node))
               ? cfg_.straggler_factor
               : 1.0;
  }

  /// True when direct load/store into segments owned by `domain` faults.
  [[nodiscard]] bool direct_faults(int domain) const noexcept {
    return (cfg_.dead_domain >= 0 && domain == cfg_.dead_domain) ||
           domain_killed(domain);
  }

  // -- permanent fail-stop (docs/FAULTS.md §7) ------------------------------

  /// Whether a permanent kill is configured (kill_point + kill_domain set).
  [[nodiscard]] bool kill_enabled() const noexcept {
    return cfg_.kill_point != KillPoint::None;
  }
  [[nodiscard]] int kill_domain() const noexcept { return cfg_.kill_domain; }
  [[nodiscard]] int buddy_offset() const noexcept { return cfg_.buddy_offset; }

  /// Arm the kill hooks.  Called by srumma_multiply once buddy replication
  /// has completed, so a domain can never die before its panels are
  /// mirrored — before arming, reach_kill_point never trips.
  void arm_kills() noexcept { armed_.store(true, std::memory_order_release); }

  /// A rank of `domain` reached execution point `p` at virtual time
  /// `vtime`.  Trips the configured kill when armed and matching; returns
  /// whether the caller's domain is (now) killed, so executors can enter
  /// their zombie drain path.  Consumes no rng draw.
  bool reach_kill_point(KillPoint p, int domain, double vtime) noexcept;

  /// True when `domain` has fail-stopped (the kill tripped).  Transfers
  /// targeting a killed domain fail; its ranks drain and stop working.
  [[nodiscard]] bool domain_killed(int domain) const noexcept {
    return cfg_.kill_domain >= 0 && domain == cfg_.kill_domain &&
           killed_.load(std::memory_order_acquire);
  }

  /// Survivor consensus: promote `domain` from "ops keep failing" to
  /// permanently dead.  Called by the RMA layer on retry-budget exhaustion
  /// against a killed domain and by the recovery sync point.  Idempotent.
  void declare_dead(int domain) noexcept {
    if (domain >= 0 && domain < 64)
      dead_mask_.fetch_or(std::uint64_t{1} << domain,
                          std::memory_order_acq_rel);
  }

  /// True once `domain` has been declared dead: no new ops are issued to
  /// it, in-flight handles drain with RmaStatus::DomainDead, and the
  /// distribution layer redirects its blocks to the buddy replicas.
  [[nodiscard]] bool domain_dead(int domain) const noexcept {
    return domain >= 0 && domain < 64 &&
           (dead_mask_.load(std::memory_order_acquire) &
            (std::uint64_t{1} << domain)) != 0;
  }

  /// True when any domain has been declared dead (cheap recovery gate).
  [[nodiscard]] bool any_domain_dead() const noexcept {
    return dead_mask_.load(std::memory_order_acquire) != 0;
  }

  /// Deterministically flip one mantissa bit of one element of a rows x
  /// cols column-major patch (ld >= rows).  `salt` decorrelates repeated
  /// corruptions of one buffer.
  static void corrupt_payload(double* dst, index_t ld, index_t rows,
                              index_t cols, std::uint64_t salt) noexcept;

  /// Restart every rank's op sequence so a re-run replays the same faults
  /// (called by Team::reset).
  void reset() noexcept;

 private:
  [[nodiscard]] bool in_scope(int rank, int peer, std::uint64_t seq,
                              double vtime) const noexcept;

  FaultConfig cfg_;
  MachineModel machine_;
  bool any_random_ = false;
  std::vector<std::atomic<std::uint64_t>> op_seq_;   // per rank, RMA ops
  std::vector<std::atomic<std::uint64_t>> msg_seq_;  // per rank, messages
  // Permanent fail-stop state (cleared by reset()).
  std::atomic<bool> armed_{false};   // kill hooks live (replicas exist)
  std::atomic<bool> killed_{false};  // the configured kill has tripped
  std::atomic<std::uint64_t> dead_mask_{0};  // domains declared dead (bitset)
};

/// Convenience: build a plane from the environment (nullptr when no
/// SRUMMA_FAULT_* knob is set).
[[nodiscard]] std::shared_ptr<FaultPlane> plane_from_env(
    const MachineModel& machine);

}  // namespace srumma::fault
