#pragma once
// Deterministic fault-injection plane for the communication layers.
//
// SRUMMA's owner-computes design assumes every one-sided transfer succeeds
// on first issue; this plane lets the runtime prove otherwise on purpose.
// A FaultPlane is attached to a Team (one per team; nullptr when disabled —
// the same zero-cost null-test pattern as the RMA checker) and consulted by
// RmaRuntime at every nb* issue and by msg::Comm when scheduling wire
// transfers.  Injectable fault classes:
//
//   * transient failure   — the handle completes in an error state and the
//                           payload is NOT delivered (RetryPolicy re-issues);
//   * payload corruption  — the transfer completes normally but one element
//                           of the destination buffer has a flipped mantissa
//                           bit (detectable by checksum verification);
//   * delayed completion  — the modeled wire/copy time is multiplied by
//                           delay_factor (a random straggler op);
//   * straggler link      — every inter-node transfer touching one node is
//                           slowed by a constant factor (a persistently slow
//                           link rather than a random event);
//   * dead shm domain     — direct load/store reach-through into segments
//                           owned by one shared-memory domain faults, forcing
//                           the pipeline to degrade ShmFlavor::Direct to Copy.
//
// Determinism: every random decision is drawn from util/rng seeded by
// (seed, rank, that rank's own op sequence number).  Each rank's decision
// stream depends only on its own issue order, never on thread interleaving,
// so runs replay exactly — including under retries, because a re-issued op
// advances the sequence and draws fresh values.
//
// Faults can be scoped per rank (`only_rank`), per target (`only_peer`) and
// scheduled by op count (`first_op`/`last_op`, per-rank) or virtual time
// (`after_vtime`).  Environment knobs (SRUMMA_FAULT_*) are documented in
// docs/FAULTS.md.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "machine/machine.hpp"
#include "util/matrix.hpp"

namespace srumma::fault {

/// Injection knobs.  All rates are probabilities in [0, 1] per operation.
struct FaultConfig {
  std::uint64_t seed = 0x5eed;

  // -- random per-op faults (RMA layer) -------------------------------------
  double fail_rate = 0.0;     ///< transient nbget/nbput/nbacc failure
  double corrupt_rate = 0.0;  ///< destination-payload bit flip
  double delay_rate = 0.0;    ///< straggler op (wire time multiplied)
  double delay_factor = 8.0;  ///< multiplier for delayed ops (>= 1)

  // -- deterministic structural faults --------------------------------------
  /// Node id whose inter-node links are persistently slow (-1 = none).
  int straggler_node = -1;
  double straggler_factor = 8.0;  ///< wire-time multiplier on that link
  /// Shared-memory domain whose segments fault under direct load/store
  /// (-1 = none).  Copy-path (get/put) access still works.
  int dead_domain = -1;

  // -- scoping & scheduling -------------------------------------------------
  int only_rank = -1;  ///< restrict random faults to ops issued by this rank
  int only_peer = -1;  ///< restrict random faults to ops targeting this owner
  std::uint64_t first_op = 0;  ///< per-rank op index window [first, last]
  std::uint64_t last_op = ~std::uint64_t{0};
  double after_vtime = 0.0;  ///< only ops issued at/after this virtual time

  /// Parse the SRUMMA_FAULT_* environment; nullopt when no knob is set.
  [[nodiscard]] static std::optional<FaultConfig> from_env();
};

/// Outcome of one per-op draw.
struct FaultDecision {
  bool fail = false;
  bool corrupt = false;
  double delay = 1.0;  ///< wire/copy time multiplier (1.0 = undisturbed)
};

class FaultPlane {
 public:
  FaultPlane(const MachineModel& machine, FaultConfig cfg);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

  /// Draw the fate of one one-sided transfer issued by `rank` against
  /// `owner`.  Advances `rank`'s op sequence; must be called from that
  /// rank's own thread (which every nb* issue path guarantees).
  [[nodiscard]] FaultDecision on_transfer(int rank, int owner,
                                          double issue_vtime) noexcept;

  /// Draw the fate of one two-sided message sent by `rank` to `dst`.
  /// Separate per-rank sequence from on_transfer; only the delay channel
  /// applies (two-sided retry semantics are out of scope).
  [[nodiscard]] double on_message(int rank, int dst,
                                  double issue_vtime) noexcept;

  /// Constant wire-time multiplier for the src -> dst inter-node link
  /// (the straggler-link knob; 1.0 for healthy links).
  [[nodiscard]] double link_delay(int src_node, int dst_node) const noexcept {
    return (cfg_.straggler_node >= 0 && (src_node == cfg_.straggler_node ||
                                         dst_node == cfg_.straggler_node))
               ? cfg_.straggler_factor
               : 1.0;
  }

  /// True when direct load/store into segments owned by `domain` faults.
  [[nodiscard]] bool direct_faults(int domain) const noexcept {
    return cfg_.dead_domain >= 0 && domain == cfg_.dead_domain;
  }

  /// Deterministically flip one mantissa bit of one element of a rows x
  /// cols column-major patch (ld >= rows).  `salt` decorrelates repeated
  /// corruptions of one buffer.
  static void corrupt_payload(double* dst, index_t ld, index_t rows,
                              index_t cols, std::uint64_t salt) noexcept;

  /// Restart every rank's op sequence so a re-run replays the same faults
  /// (called by Team::reset).
  void reset() noexcept;

 private:
  [[nodiscard]] bool in_scope(int rank, int peer, std::uint64_t seq,
                              double vtime) const noexcept;

  FaultConfig cfg_;
  MachineModel machine_;
  bool any_random_ = false;
  std::vector<std::atomic<std::uint64_t>> op_seq_;   // per rank, RMA ops
  std::vector<std::atomic<std::uint64_t>> msg_seq_;  // per rank, messages
};

/// Convenience: build a plane from the environment (nullptr when no
/// SRUMMA_FAULT_* knob is set).
[[nodiscard]] std::shared_ptr<FaultPlane> plane_from_env(
    const MachineModel& machine);

}  // namespace srumma::fault
