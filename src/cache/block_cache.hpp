#pragma once
// Per-shared-memory-domain cooperative cache of remote block patches with
// single-flight fetch.
//
// SRUMMA's cost model makes intra-domain shared memory nearly free while
// inter-node RMA gets are the scarce resource — yet ranks in one domain
// repeatedly pull the *same* remote patches over the modeled NIC: domain
// mates share whole operand panels (with the column-major grid layout a
// node's ranks share a grid column, hence the B_kj panel), and C tiling
// makes one rank re-fetch the same B patch once per C tile.  The cache
// turns every repeat into an intra-domain copy:
//
//   * the first rank in a domain to need a patch (keyed by the owning
//     SymmetricRegion's allocation seq + the patch rectangle) becomes the
//     *fetcher*: it issues its own nonblocking get and, when the issue is
//     clean, publishes the bytes under the domain lock — at that point the
//     modeled completion time of the get is known, so the entry carries
//     the virtual time at which the data becomes visible (`ready_vt`);
//   * any other request for the same key becomes a *sharer*: it pins the
//     entry and later waits (virtual time) until `ready_vt`, then pays
//     shm latency + its share of the domain's aggregate memory bandwidth
//     for the local copy — no second NIC transfer.  A request whose
//     `ready_vt` is already in the past is a *hit*; one that lands while
//     the fetch is still in flight (in virtual time) is an
//     *in-flight join*;
//   * a fetch that drew a fault (failure, corruption, or a completion past
//     the per-op deadline) is never published: the entry stays *dirty* and
//     the next requester *re-arms* it — it becomes a fetcher itself with
//     fresh fault draws, so a failed single-flight fetch is retried by a
//     waiter, never silently shared.
//
// Entries are pinned while a requester holds a Ref (pins block eviction),
// capacity-bounded with LRU eviction, and invalidated at the multiply /
// epoch boundary — A and B are read-only inside one srumma_multiply
// collective, which is what makes the shared bytes trivially coherent.
// Real payload bytes are stored only for non-phantom matrices; phantom
// (model-only) runs keep the full cost accounting with no storage.
//
// Integration contracts (the caller is src/core/srumma.cpp):
//   * the fetch callback runs under the domain lock and must both issue
//     the caller's own nonblocking get and report {modeled completion,
//     clean-at-issue};
//   * sharer copies register their read with the RMA checker at the true
//     origin (DistMatrix::declare_shared_read) — done by the caller, which
//     knows the matrix;
//   * the tracer sees CacheRead comm spans plus hit/join/evict/re-arm
//     instants and a bytes-saved counter track; TraceCounters aggregates
//     the same events per rank.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/team.hpp"
#include "util/aligned.hpp"
#include "util/matrix.hpp"

namespace srumma::cache {

/// Cache knobs resolved from RmaConfig + environment.
struct CacheConfig {
  bool enabled = false;
  /// Per-domain capacity in bytes; 0 = size from the pipeline's lookahead
  /// footprint at each multiply (the begin_epoch default).
  std::uint64_t capacity_bytes = 0;

  /// Apply SRUMMA_CACHE / SRUMMA_CACHE_CAP on top of `base`.
  [[nodiscard]] static CacheConfig from_env(CacheConfig base);
};

/// Identity of one remote patch: the owning SymmetricRegion's allocation
/// seq (lockstep-identical across ranks and never reused, so it is a
/// process-wide unique matrix id) plus the global patch rectangle.
struct PatchKey {
  std::uint64_t region = 0;
  index_t i0 = 0;
  index_t j0 = 0;
  index_t rows = 0;
  index_t cols = 0;

  friend auto operator<=>(const PatchKey&, const PatchKey&) = default;
};

/// What the caller's fetch callback reports about the get it issued.
struct FetchOutcome {
  double completion = 0.0;  ///< modeled completion (virtual seconds)
  /// No piece failed, was corrupted, or overran the per-op deadline at
  /// issue time — i.e. the fetched bytes equal the owner's and may be
  /// published for sharers immediately.
  bool clean = false;
};

/// One cached patch.  `ready` entries hold published data (conceptually —
/// storage is empty for phantom matrices) visible from `ready_vt`; dirty
/// entries mark a fetch whose outcome was not publishable and wait for a
/// re-arm.  `generation` guards late publishes against re-arms.
struct Entry {
  PatchKey key;
  std::uint64_t bytes = 0;         ///< modeled payload size (rows*cols*8)
  std::uint64_t remote_bytes = 0;  ///< inter-node portion — saved per share
  std::uint64_t generation = 0;
  bool ready = false;
  double issue_vt = 0.0;  ///< when the publishing get was issued (causality)
  double ready_vt = 0.0;
  int pins = 0;
  std::uint64_t last_use = 0;  ///< LRU tick
  AlignedVector<double> data;  ///< packed (ld == rows); empty when phantom
};

/// The part this rank plays for one acquisition.
enum class Role : std::uint8_t {
  Fetch,   ///< issue the get (and publish it when clean)
  Shared,  ///< consume the published copy, no NIC transfer
  Bypass,  ///< cache not engaged (disabled, no capacity, out of epoch)
};

/// Handle returned by acquire(); must be finished with finish_fetch() /
/// consume_shared() (which unpin) unless the role is Bypass.
struct Ref {
  std::shared_ptr<Entry> entry;
  Role role = Role::Bypass;
  std::uint64_t generation = 0;
  bool rearmed = false;    ///< this fetch replaced a failed predecessor
  double ready_vt = 0.0;   ///< Shared: when the published bytes exist
  [[nodiscard]] bool active() const noexcept { return role != Role::Bypass; }
};

/// All domains' caches for one Team.  Thread-safe: one mutex per domain;
/// ranks only ever touch their own domain's cache.
class BlockCacheSet {
 public:
  BlockCacheSet(Team& team, CacheConfig cfg);

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }

  /// Open this rank's domain for one multiply collective.  The first rank
  /// of the domain to enter drops every stale unpinned entry and sets the
  /// capacity: SRUMMA_CACHE_CAP wins, else the installed config, else
  /// `default_capacity_bytes` (the caller's lookahead-footprint estimate).
  /// Must be called after a team barrier that separates multiplies.
  ///
  /// `keep_warm` skips the stale-entry drop at the open: the recovery
  /// epoch (docs/FAULTS.md §7) is a CONTINUATION of the multiply it
  /// follows — A/B stay read-only until the result is collected — so the
  /// panels survivors already fetched stay servable for adoption replay.
  /// Must be rank-uniform across the domain (it is decided by the
  /// rank-uniform "a kill is configured" predicate, never by the racy
  /// "the kill has tripped" observation).
  void begin_epoch(Rank& me, std::uint64_t default_capacity_bytes,
                   bool keep_warm = false);

  /// Leave the epoch.  Entries are invalidated once EVERY rank of the
  /// domain has been through the epoch (entered and left) — not when
  /// concurrent occupancy hits zero, because the virtual-time simulation
  /// gives no real-time overlap guarantee between domain mates and the
  /// modeled savings must not depend on OS scheduling.  `keep_warm` (same
  /// uniformity rule as begin_epoch) retains the entries through the
  /// close for a recovery epoch to inherit; if none follows (the kill
  /// never tripped), the next multiply's plain begin_epoch drops them.
  void end_epoch(Rank& me, bool keep_warm = false);

  /// Single-flight acquisition of `key` (which must be at least partly
  /// remote; `remote_bytes` is its modeled inter-node volume).
  ///
  /// Roles: if the key is absent (or dirty) the caller becomes the
  /// fetcher — `fetch` is invoked under the domain lock, must issue the
  /// caller's own nonblocking get into the caller's buffer, and report
  /// the outcome; a clean outcome publishes `fetched` (the caller's
  /// buffer view — pass an empty view for phantom matrices) right away.
  /// If the key is ready, the caller becomes a sharer and must NOT issue
  /// a get.  Bypass means proceed exactly as without a cache.
  ///
  /// Causality rule: a ready entry is shared only when its publishing get
  /// was issued at or before the requester's virtual now, OR when the
  /// published bytes become visible within the requester's own uncontended
  /// fetch horizon (net latency + bytes / net bandwidth).  Rank threads
  /// run under arbitrary OS scheduling, so a mate whose whole multiply
  /// executes first (real time) publishes entries carrying *late* virtual
  /// issue stamps; blindly sharing one from an earlier virtual now would
  /// wait on a fetch that, on a real machine, had not happened yet —
  /// turning the cache into a slowdown.  A requester that fails both
  /// checks fetches itself (Role::Fetch on the ready entry, counted as a
  /// refetch) and takes over the entry's issue/ready stamps — its issue is
  /// the earliest known — so later requesters (including this rank's own
  /// next touch of the key) are guaranteed to share.  Sharing is therefore
  /// never slower than fetching (beyond the intra-domain copy itself).
  Ref acquire(Rank& me, const PatchKey& key, std::uint64_t remote_bytes,
              const std::function<FetchOutcome()>& fetch,
              ConstMatrixView fetched);

  /// Fetcher epilogue, after the pipeline finished waiting on (and
  /// possibly retrying / checksum-verifying) its own copy.  `publishable`
  /// = the final bytes are known equal to the owner's; a dirty entry then
  /// gets a late publish of `src` at the current virtual time.  Unpins.
  void finish_fetch(Rank& me, Ref& ref, bool publishable, ConstMatrixView src);

  /// Sharer epilogue: advance the clock to the entry's `ready_vt` (traced
  /// as a Wait span, like any exposed completion), charge the intra-domain
  /// copy (shm latency + share of the domain aggregate bandwidth), copy
  /// the published bytes into `dst` (no-op when phantom), and unpin.
  void consume_shared(Rank& me, Ref& ref, MatrixView dst);

  /// Entries currently resident in `domain` (tests).
  [[nodiscard]] std::size_t resident(int domain);
  /// Resident bytes in `domain` (tests).
  [[nodiscard]] std::uint64_t resident_bytes(int domain);

 private:
  struct Domain {
    std::mutex mu;
    std::map<PatchKey, std::shared_ptr<Entry>> entries;
    std::uint64_t bytes = 0;     ///< sum of resident entry payloads
    std::uint64_t capacity = 0;  ///< 0 until an epoch opens
    std::uint64_t tick = 0;      ///< LRU clock
    int entered = 0;             ///< ranks that begin_epoch'd this epoch
    int left = 0;                ///< ranks that end_epoch'd this epoch
    bool open = false;
  };

  Domain& domain_for(Rank& me);
  /// Evict unpinned LRU entries until `need` more bytes fit; false if the
  /// key cannot fit even in an empty cache.
  bool make_room(Rank& me, Domain& d, std::uint64_t need);
  static void drop_unpinned(Domain& d);

  Team& team_;
  CacheConfig cfg_;
  std::vector<Domain> domains_;
};

}  // namespace srumma::cache
