#include "cache/block_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace srumma::cache {

CacheConfig CacheConfig::from_env(CacheConfig base) {
  if (const char* v = std::getenv("SRUMMA_CACHE"))
    base.enabled = *v != '\0' && *v != '0';
  if (const char* v = std::getenv("SRUMMA_CACHE_CAP"))
    base.capacity_bytes =
        static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
  return base;
}

namespace {

/// Packed (ld == rows) copy into / out of an entry's storage.
void pack_into(AlignedVector<double>& data, ConstMatrixView src) {
  const auto rows = static_cast<std::size_t>(src.rows());
  data.resize(rows * static_cast<std::size_t>(src.cols()));
  for (index_t j = 0; j < src.cols(); ++j)
    std::memcpy(data.data() + static_cast<std::size_t>(j) * rows,
                src.data() + j * src.ld(), rows * sizeof(double));
}

void unpack_from(const AlignedVector<double>& data, MatrixView dst) {
  const auto rows = static_cast<std::size_t>(dst.rows());
  SRUMMA_REQUIRE(data.size() == rows * static_cast<std::size_t>(dst.cols()),
                 "block cache: published payload does not match the patch");
  for (index_t j = 0; j < dst.cols(); ++j)
    std::memcpy(dst.data() + j * dst.ld(),
                data.data() + static_cast<std::size_t>(j) * rows,
                rows * sizeof(double));
}

}  // namespace

BlockCacheSet::BlockCacheSet(Team& team, CacheConfig cfg)
    : team_(team),
      cfg_(cfg),
      domains_(static_cast<std::size_t>(team.machine().num_domains())) {}

BlockCacheSet::Domain& BlockCacheSet::domain_for(Rank& me) {
  return domains_[static_cast<std::size_t>(me.domain())];
}

void BlockCacheSet::drop_unpinned(Domain& d) {
  for (auto it = d.entries.begin(); it != d.entries.end();) {
    if (it->second->pins == 0) {
      d.bytes -= it->second->bytes;
      it = d.entries.erase(it);
    } else {
      // A pin outliving the epoch means a Ref leaked past the multiply's
      // exit barrier; keep the entry (its holder may still copy from it)
      // and let the next boundary collect it.
      ++it;
    }
  }
}

void BlockCacheSet::begin_epoch(Rank& me, std::uint64_t default_cap,
                                bool keep_warm) {
  Domain& d = domain_for(me);
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.entered == 0) {
    if (!keep_warm) drop_unpinned(d);
    d.capacity = cfg_.capacity_bytes != 0 ? cfg_.capacity_bytes : default_cap;
    d.open = true;
  }
  d.entered += 1;
}

void BlockCacheSet::end_epoch(Rank& me, bool keep_warm) {
  Domain& d = domain_for(me);
  std::lock_guard<std::mutex> lock(d.mu);
  SRUMMA_REQUIRE(d.left < d.entered, "block cache: end_epoch without begin");
  d.left += 1;
  // The epoch closes only once EVERY rank of the domain has been through
  // it, not when concurrent occupancy drops to zero: the virtual-time
  // simulation gives no real-time overlap guarantee between domain mates
  // (a mate's whole multiply may run before another's starts), and an
  // occupancy-based close would wipe the entries a serialized mate was
  // about to share — making the modeled savings depend on OS scheduling.
  // The caller's collective barriers guarantee every mate's begin_epoch
  // happens before any rank's next-epoch begin_epoch, so `entered` reaches
  // the domain population exactly once per epoch.
  if (d.left == team_.machine().domain_size()) {
    if (!keep_warm) drop_unpinned(d);
    d.open = false;
    d.entered = 0;
    d.left = 0;
  }
}

bool BlockCacheSet::make_room(Rank& me, Domain& d, std::uint64_t need) {
  if (need > d.capacity) return false;
  while (d.bytes + need > d.capacity) {
    auto victim = d.entries.end();
    for (auto it = d.entries.begin(); it != d.entries.end(); ++it) {
      if (it->second->pins != 0) continue;
      if (victim == d.entries.end() ||
          it->second->last_use < victim->second->last_use)
        victim = it;
    }
    if (victim == d.entries.end()) return false;  // everything is pinned
    d.bytes -= victim->second->bytes;
    d.entries.erase(victim);
    me.trace().cache_evictions += 1;
    if (trace::Tracer* tr = me.tracer())
      tr->instant(me.id(), trace::Phase::CacheEvict, me.clock().now());
  }
  return true;
}

Ref BlockCacheSet::acquire(Rank& me, const PatchKey& key,
                           std::uint64_t remote_bytes,
                           const std::function<FetchOutcome()>& fetch,
                           ConstMatrixView fetched) {
  Domain& d = domain_for(me);
  TraceCounters& tc = me.trace();
  trace::Tracer* tr = me.tracer();
  std::lock_guard<std::mutex> lock(d.mu);
  if (!cfg_.enabled || !d.open) {
    tc.cache_bypasses += 1;
    return {};
  }
  const double now = me.clock().now();
  auto it = d.entries.find(key);
  if (it != d.entries.end() && it->second->ready) {
    Entry& e = *it->second;
    // Lower bound on this rank's own fetch completion: an uncontended NIC
    // transfer (no issue overhead, no link queueing).  Sharing is accepted
    // when the publishing get was issued at or before `now` (plain
    // real-machine causality), or when the published bytes become visible
    // within that horizon anyway — waiting for them can then never cost
    // more than fetching them ourselves would.
    const double own_fetch_est =
        me.machine().net_latency +
        static_cast<double>(e.remote_bytes) / me.machine().net_bw;
    if (e.issue_vt <= now || e.ready_vt <= now + own_fetch_est) {
      e.pins += 1;
      e.last_use = ++d.tick;
      // Hit vs in-flight join is a virtual-time distinction: the publishing
      // get's modeled completion may still be in this rank's future even
      // though the bytes are physically present (they are copied at issue).
      const bool join = e.ready_vt > now;
      (join ? tc.cache_joins : tc.cache_hits) += 1;
      tc.cache_bytes_saved += e.remote_bytes;
      if (tr != nullptr) {
        tr->instant(me.id(), join ? trace::Phase::CacheJoin
                                  : trace::Phase::CacheHit,
                    now, e.bytes);
        tr->counter_add(me.id(), trace::CounterId::CacheBytesSaved, now,
                        static_cast<double>(e.remote_bytes));
      }
      return Ref{it->second, Role::Shared, e.generation, false, e.ready_vt};
    }
    // Causality refetch: the published get was issued AFTER this rank's
    // virtual now — real-time thread scheduling ran the publishing mate
    // ahead of the modeled timeline.  On a real machine this rank would
    // have fetched first, so waiting on that future publish would make the
    // cache a slowdown.  Fetch ourselves, and if our get completes earlier
    // pull the entry's stamps back so later sharers see the earliest
    // publish (the payload bytes are owner-equal either way).
    e.pins += 1;
    e.last_use = ++d.tick;
    tc.cache_refetches += 1;
    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::CacheRefetch, now, e.bytes);
    Ref ref{it->second, Role::Fetch, e.generation, false, 0.0};
    const FetchOutcome out = fetch();
    if (out.clean) {
      // The entry carries the stamps of the publish with the EARLIEST
      // issue — ours, by the branch condition.  Taking them over even when
      // our completion books later keeps the sharing test monotone: this
      // rank's own next touch of the key (now >= this issue) is guaranteed
      // to share, so C-tiling temporal reuse never degenerates into a
      // refetch chain.
      e.issue_vt = now;
      e.ready_vt = out.completion;
    }
    return ref;
  }

  std::shared_ptr<Entry> ep;
  bool rearmed = false;
  if (it != d.entries.end()) {
    // Dirty entry: the previous fetch drew a fault and was never
    // published.  This requester re-arms it — a fresh fetch generation
    // with fresh fault draws — so a failed single-flight fetch is retried
    // by a waiter, never shared.
    ep = it->second;
    ep->generation += 1;
    rearmed = true;
    tc.cache_rearms += 1;
    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::CacheRearm, now);
  } else {
    const std::uint64_t bytes = static_cast<std::uint64_t>(key.rows) *
                                static_cast<std::uint64_t>(key.cols) *
                                sizeof(double);
    if (!make_room(me, d, bytes)) {
      tc.cache_bypasses += 1;
      return {};
    }
    ep = std::make_shared<Entry>();
    ep->key = key;
    ep->bytes = bytes;
    ep->remote_bytes = remote_bytes;
    d.entries.emplace(key, ep);
    d.bytes += bytes;
    tc.cache_misses += 1;
  }
  ep->ready = false;
  ep->pins += 1;
  ep->last_use = ++d.tick;
  Ref ref{ep, Role::Fetch, ep->generation, rearmed, 0.0};

  // Issue the fetcher's own nonblocking get while still holding the domain
  // lock: nbget2d performs the payload copy synchronously at issue, so a
  // clean outcome can be published before any domain mate can observe the
  // entry — sharers therefore only ever see ready or dirty, never a
  // half-fetched state, and no real-time blocking is needed.
  const FetchOutcome out = fetch();
  if (out.clean) {
    if (!fetched.empty()) pack_into(ep->data, fetched);
    ep->ready = true;
    ep->issue_vt = now;
    ep->ready_vt = out.completion;
  }
  return ref;
}

void BlockCacheSet::finish_fetch(Rank& me, Ref& ref, bool publishable,
                                 ConstMatrixView src) {
  SRUMMA_REQUIRE(ref.role == Role::Fetch, "finish_fetch: not a fetch ref");
  Domain& d = domain_for(me);
  std::lock_guard<std::mutex> lock(d.mu);
  Entry& e = *ref.entry;
  if (!e.ready && publishable && e.generation == ref.generation) {
    // Late publish: the fetcher's retry/verification loop repaired the
    // patch after a dirty issue.  The bytes become visible when the
    // recovery finished — i.e. now.
    if (!src.empty()) pack_into(e.data, src);
    e.ready = true;
    e.issue_vt = me.clock().now();
    e.ready_vt = e.issue_vt;
  }
  e.pins -= 1;
  ref = {};
}

void BlockCacheSet::consume_shared(Rank& me, Ref& ref, MatrixView dst) {
  SRUMMA_REQUIRE(ref.role == Role::Shared, "consume_shared: not a shared ref");
  const MachineModel& mm = me.machine();
  VClock& clk = me.clock();
  TraceCounters& tc = me.trace();
  trace::Tracer* tr = me.tracer();
  Entry& e = *ref.entry;

  // The publishing get's completion may be in this rank's virtual future:
  // block on it exactly like any exposed completion (traced as Wait so the
  // span/counter reconciliation invariants keep holding).
  const double before = clk.now();
  if (ref.ready_vt > before) {
    tc.time_wait += ref.ready_vt - before;
    clk.sync_to(ref.ready_vt);
    if (tr != nullptr)
      tr->span(me.id(), trace::Phase::Wait, before, ref.ready_vt);
  }

  // Intra-domain copy out of the cache, mirroring the same-domain branch of
  // RmaRuntime::transfer: the origin CPU pays latency + per-rank copy time
  // and queues on the domain's aggregate memory system.  No fault draw —
  // the copy is process-local, not a transport op.
  const double t0 = clk.now();
  const double dbytes = static_cast<double>(e.bytes);
  const double dur = dbytes / mm.shm_bw;
  const double ready = t0 + mm.shm_latency;
  const double agg = team_.network()
                         .domain_mem(me.domain())
                         .book(ready, dbytes / mm.domain_agg_bw());
  clk.sync_to(std::max(ready + dur, agg));
  tc.time_comm += dur;
  tc.bytes_shm += e.bytes;
  if (tr != nullptr)
    tr->span(me.id(), trace::Phase::CacheRead, t0, clk.now(), e.bytes);

  // Real payload: the entry is ready, and a ready entry's *data* is
  // immutable for the rest of the epoch (re-arms only touch dirty entries;
  // causality refetches adjust the virtual-time stamps under the lock but
  // never the bytes, which are owner-equal for every publisher), so reading
  // outside the domain lock is race-free — the acquire that returned this
  // Ref observed `ready` under the lock, ordering the publish before us.
  if (!dst.empty()) unpack_from(e.data, dst);

  Domain& d = domain_for(me);
  std::lock_guard<std::mutex> lock(d.mu);
  e.pins -= 1;
  ref = {};
}

std::size_t BlockCacheSet::resident(int domain) {
  Domain& d = domains_[static_cast<std::size_t>(domain)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.entries.size();
}

std::uint64_t BlockCacheSet::resident_bytes(int domain) {
  Domain& d = domains_[static_cast<std::size_t>(domain)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.bytes;
}

}  // namespace srumma::cache
