#include "runtime/fiber_exec.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

// Sanitizer fiber annotations.  GCC defines __SANITIZE_THREAD__ /
// __SANITIZE_ADDRESS__; clang exposes __has_feature.  The interface
// functions are declared here directly (not via <sanitizer/...> headers) so
// the build never depends on header availability — the symbols live in
// libtsan/libasan, which are linked exactly when the macros are defined.
#if defined(__SANITIZE_THREAD__)
#define SRUMMA_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SRUMMA_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define SRUMMA_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SRUMMA_FIBER_ASAN 1
#endif
#endif

#if defined(SRUMMA_FIBER_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif
#if defined(SRUMMA_FIBER_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

namespace srumma::exec {
namespace {

struct Pool;

struct FiberState {
  ucontext_t ctx{};
  Pool* pool = nullptr;
  int index = 0;
  char* map_base = nullptr;   // mmap base (guard page lives here)
  std::size_t map_bytes = 0;  // total mapped, guard included
  char* stack_lo = nullptr;   // usable stack bottom (above the guard)
  std::size_t stack_bytes = 0;
  bool finished = false;
#if defined(SRUMMA_FIBER_TSAN)
  void* tsan_fiber = nullptr;
#endif
#if defined(SRUMMA_FIBER_ASAN)
  void* asan_fake_stack = nullptr;        // saved when switching out
  const void* return_stack_bottom = nullptr;  // resuming worker's stack
  std::size_t return_stack_size = 0;
#endif
};

// Per-worker scheduler context.  A fiber always swaps back to the context
// stored here by the worker that most recently resumed it, so migration
// across workers is safe: nothing on the fiber side reads worker TLS after
// the switch.
struct Worker {
  ucontext_t sched_ctx{};
#if defined(SRUMMA_FIBER_TSAN)
  void* tsan_fiber = nullptr;  // the worker thread's own TSan fiber
#endif
#if defined(SRUMMA_FIBER_ASAN)
  void* asan_fake_stack = nullptr;
#endif
};

struct Pool {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<FiberState*> runnable;  // guarded by mu
  int live = 0;                      // guarded by mu
  const std::function<void(int)>* body = nullptr;
};

thread_local Worker* t_worker = nullptr;
thread_local FiberState* t_fiber = nullptr;

// Switch the worker into `f`; returns when `f` yields or finishes.
void switch_to_fiber(Worker& w, FiberState& f) {
#if defined(SRUMMA_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&w.asan_fake_stack, f.stack_lo,
                                 f.stack_bytes);
#endif
#if defined(SRUMMA_FIBER_TSAN)
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
  swapcontext(&w.sched_ctx, &f.ctx);
#if defined(SRUMMA_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(w.asan_fake_stack, nullptr, nullptr);
#endif
}

// Switch the current fiber back to the worker that resumed it.  With
// `finishing` the fiber never runs again (its ASan fake stack is released,
// its TSan fiber is destroyed by the worker).
void switch_to_worker(FiberState& f, [[maybe_unused]] bool finishing) {
  Worker& w = *t_worker;  // read BEFORE the switch, on the worker's thread
#if defined(SRUMMA_FIBER_ASAN)
  __sanitizer_start_switch_fiber(finishing ? nullptr : &f.asan_fake_stack,
                                 f.return_stack_bottom, f.return_stack_size);
#endif
#if defined(SRUMMA_FIBER_TSAN)
  __tsan_switch_to_fiber(w.tsan_fiber, 0);
#endif
  swapcontext(&f.ctx, &w.sched_ctx);
  // Resumed (never reached when finishing), possibly on another worker.
#if defined(SRUMMA_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(f.asan_fake_stack, &f.return_stack_bottom,
                                  &f.return_stack_size);
#endif
}

// makecontext passes arguments as ints; smuggle the pointer as two 32-bit
// halves so this works regardless of how wide int is relative to void*.
void fiber_trampoline(unsigned hi, unsigned lo) {
  const std::uint64_t u = (std::uint64_t{hi} << 32) | std::uint64_t{lo};
  FiberState* f = reinterpret_cast<FiberState*>(static_cast<std::uintptr_t>(u));
#if defined(SRUMMA_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, &f->return_stack_bottom,
                                  &f->return_stack_size);
#endif
  (*f->pool->body)(f->index);
  f->finished = true;
  switch_to_worker(*f, /*finishing=*/true);
  // Unreachable: the worker never resumes a finished fiber.
}

std::size_t page_size() {
  const long p = sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : std::size_t{4096};
}

FiberState* create_fiber(Pool* pool, int index, std::size_t stack_bytes) {
  static_assert(sizeof(void*) <= 8, "fiber pointer smuggling assumes <=64bit");
  const std::size_t page = page_size();
  const std::size_t usable = ((stack_bytes + page - 1) / page) * page;
  const std::size_t total = usable + page;  // + guard page at the low end
  void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  SRUMMA_REQUIRE(base != MAP_FAILED, "fiber stack mmap failed");
  SRUMMA_REQUIRE(mprotect(base, page, PROT_NONE) == 0,
                 "fiber guard page mprotect failed");

  auto* f = new FiberState();
  f->pool = pool;
  f->index = index;
  f->map_base = static_cast<char*>(base);
  f->map_bytes = total;
  f->stack_lo = f->map_base + page;
  f->stack_bytes = usable;
#if defined(SRUMMA_FIBER_TSAN)
  f->tsan_fiber = __tsan_create_fiber(0);
#endif
  SRUMMA_REQUIRE(getcontext(&f->ctx) == 0, "getcontext failed");
  f->ctx.uc_stack.ss_sp = f->stack_lo;
  f->ctx.uc_stack.ss_size = f->stack_bytes;
  f->ctx.uc_link = nullptr;  // fibers exit via switch_to_worker, never return
  const auto p = reinterpret_cast<std::uintptr_t>(f);
  const auto hi = static_cast<unsigned>(std::uint64_t{p} >> 32);
  const auto lo = static_cast<unsigned>(std::uint64_t{p} & 0xffffffffu);
  // Casting to void(*)() is the documented makecontext protocol; GCC's
  // -Wcast-function-type special-cases this exact target type.
  makecontext(&f->ctx, reinterpret_cast<void (*)()>(&fiber_trampoline), 2, hi,
              lo);
  return f;
}

void destroy_fiber(FiberState* f) {
#if defined(SRUMMA_FIBER_TSAN)
  __tsan_destroy_fiber(f->tsan_fiber);
#endif
  munmap(f->map_base, f->map_bytes);
  delete f;
}

void worker_main(Pool* pool) {
  Worker w;
#if defined(SRUMMA_FIBER_TSAN)
  w.tsan_fiber = __tsan_get_current_fiber();
#endif
  t_worker = &w;
  for (;;) {
    FiberState* f = nullptr;
    {
      std::unique_lock<std::mutex> lk(pool->mu);
      pool->cv.wait(lk,
                    [&] { return !pool->runnable.empty() || pool->live == 0; });
      if (pool->runnable.empty()) break;  // live == 0: all fibers done
      f = pool->runnable.front();
      pool->runnable.pop_front();
    }
    t_fiber = f;
    switch_to_fiber(w, *f);
    t_fiber = nullptr;
    if (f->finished) {
      destroy_fiber(f);
      std::lock_guard<std::mutex> lk(pool->mu);
      if (--pool->live == 0) pool->cv.notify_all();
    } else {
      // Parked: requeue at the tail so every fiber keeps getting polled
      // (round-robin — the liveness argument for poll-yield parking).
      std::lock_guard<std::mutex> lk(pool->mu);
      pool->runnable.push_back(f);
      pool->cv.notify_one();
    }
  }
  t_worker = nullptr;
}

}  // namespace

bool on_fiber() noexcept { return t_fiber != nullptr; }

void yield() {
  FiberState* f = t_fiber;
  SRUMMA_REQUIRE(f != nullptr, "exec::yield called outside a fiber");
  switch_to_worker(*f, /*finishing=*/false);
}

void run_fibers(int n, int workers, std::size_t stack_bytes,
                const std::function<void(int)>& body) {
  SRUMMA_REQUIRE(n >= 0, "run_fibers: negative fiber count");
  SRUMMA_REQUIRE(!on_fiber(), "run_fibers: reentrant call from a fiber");
  if (n == 0) return;
  Pool pool;
  pool.body = &body;
  pool.live = n;
  for (int i = 0; i < n; ++i)
    pool.runnable.push_back(create_fiber(&pool, i, stack_bytes));

  int nw = workers;
  if (nw < 1) nw = 1;
  if (nw > n) nw = n;
  // The calling thread is worker 0, so nw == 1 spawns nothing: one
  // cooperative scheduler with zero thread churn.
  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(nw - 1));
  Worker* const saved_worker = t_worker;  // restore around nested use
  for (int i = 1; i < nw; ++i) extra.emplace_back(worker_main, &pool);
  worker_main(&pool);
  for (auto& t : extra) t.join();
  t_worker = saved_worker;
}

int default_workers() noexcept {
  if (const char* s = std::getenv("SRUMMA_HARNESS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::size_t default_stack_bytes() noexcept {
  long kb = 512;
  if (const char* s = std::getenv("SRUMMA_HARNESS_STACK_KB")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && *end == '\0' && v >= 64 && v <= 64 * 1024) kb = v;
  }
  return static_cast<std::size_t>(kb) * 1024u;
}

}  // namespace srumma::exec
