#include "runtime/subteam.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace srumma {

TeamPartition::TeamPartition(int total_nodes) : total_(total_nodes) {
  SRUMMA_REQUIRE(total_nodes >= 1, "partition needs at least one node");
  busy_.assign(static_cast<std::size_t>(total_nodes), 0);
}

int TeamPartition::free_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(std::count(busy_.begin(), busy_.end(), 0));
}

int TeamPartition::largest_free_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  int best = 0;
  int run = 0;
  for (char b : busy_) {
    run = b != 0 ? 0 : run + 1;
    best = std::max(best, run);
  }
  return best;
}

std::optional<NodeLease> TeamPartition::acquire(int nodes) {
  SRUMMA_REQUIRE(nodes >= 1 && nodes <= total_,
                 "lease size must lie in [1, total_nodes]");
  std::lock_guard<std::mutex> lock(mu_);
  int run = 0;
  for (int i = 0; i < total_; ++i) {
    run = busy_[static_cast<std::size_t>(i)] != 0 ? 0 : run + 1;
    if (run == nodes) {
      const int first = i - nodes + 1;
      for (int j = first; j <= i; ++j) busy_[static_cast<std::size_t>(j)] = 1;
      return NodeLease{first, nodes};
    }
  }
  return std::nullopt;
}

void TeamPartition::release(const NodeLease& lease) {
  std::lock_guard<std::mutex> lock(mu_);
  SRUMMA_REQUIRE(lease.first_node >= 0 && lease.nodes >= 1 &&
                     lease.first_node + lease.nodes <= total_,
                 "release: lease out of range");
  for (int j = lease.first_node; j < lease.first_node + lease.nodes; ++j) {
    SRUMMA_REQUIRE(busy_[static_cast<std::size_t>(j)] != 0,
                   "release: node is not leased");
    busy_[static_cast<std::size_t>(j)] = 0;
  }
}

SubTeam::SubTeam(const MachineModel& parent, NodeLease lease)
    : lease_(lease),
      team_(std::make_unique<Team>(parent.carve(lease.nodes))) {
  if (trace::Tracer* tr = team_->tracer_ptr();
      tr != nullptr && !tr->config().path.empty()) {
    trace::TracerConfig cfg = tr->config();
    cfg.path.clear();  // record-only: never flush to the shared env path
    team_->enable_tracer(cfg);
  }
}

}  // namespace srumma
