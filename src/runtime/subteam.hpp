#pragma once
// Sub-team carve-out: running several SPMD collectives side by side on
// disjoint slices of one simulated machine.
//
// A Team owns the whole machine it was built for — one barrier, one
// network, one fault plane.  The request plane (src/service,
// docs/SERVICE.md) needs to run many srumma_multiply jobs at once, each on
// its own set of nodes, without any of them sharing synchronization state.
// Rather than teaching Team about partitions, a SubTeam builds a *fresh*
// Team over MachineModel::carve(lease.nodes): because every machine
// parameter is homogeneous per node, the carved Team is behaviorally
// identical to a standalone machine of that size — independent barriers,
// epochs, network contention state and fault-decision streams by
// construction, and bitwise-identical multiply results (the service's
// identity guarantee falls out of this, not out of any replay trickery).
//
// TeamPartition is the node allocator: first-fit contiguous leases over
// the parent machine's node line, thread-safe so schedulers and tests may
// probe it from any thread.  Leases are position-tracked (first_node)
// even though the carved model only needs a count, so traces and
// utilization accounting can attribute work to concrete parent nodes.

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "machine/machine.hpp"
#include "runtime/team.hpp"

namespace srumma {

/// A contiguous run of parent-machine nodes held by one dispatch.
struct NodeLease {
  int first_node = 0;
  int nodes = 0;
};

/// Thread-safe first-fit allocator over a machine's node line.
class TeamPartition {
 public:
  explicit TeamPartition(int total_nodes);

  [[nodiscard]] int total_nodes() const noexcept { return total_; }
  /// Nodes not currently under any lease.
  [[nodiscard]] int free_nodes() const;
  /// Largest contiguous free run — the biggest lease acquire() could grant
  /// right now.
  [[nodiscard]] int largest_free_run() const;

  /// First-fit contiguous acquisition; nullopt when no run of `nodes`
  /// consecutive free nodes exists.
  [[nodiscard]] std::optional<NodeLease> acquire(int nodes);

  /// Return a lease's nodes to the free pool.  Releasing nodes that are
  /// not currently leased is a logic error and throws.
  void release(const NodeLease& lease);

 private:
  mutable std::mutex mu_;
  std::vector<char> busy_;
  int total_;
};

/// A fresh Team over the carved sub-machine of one lease.
///
/// The Team constructor auto-installs a fault plane and a tracer from the
/// SRUMMA_FAULT_* / SRUMMA_TRACE environment.  The fault plane is kept
/// (every sub-team must see the injected environment, with its own
/// decision stream); the env tracer is neutralized to record-only —
/// concurrent sub-teams would otherwise all flush to the same
/// SRUMMA_TRACE path at destruction, clobbering each other.  Job-level
/// tracing lives in the service's own tracer (docs/SERVICE.md §7).
class SubTeam {
 public:
  SubTeam(const MachineModel& parent, NodeLease lease);

  [[nodiscard]] Team& team() noexcept { return *team_; }
  [[nodiscard]] const NodeLease& lease() const noexcept { return lease_; }
  [[nodiscard]] int ranks() const noexcept { return team_->size(); }

 private:
  NodeLease lease_;
  std::unique_ptr<Team> team_;
};

}  // namespace srumma
