#pragma once
// Condition-variable wait that cannot outlive a failing team.
//
// When any rank throws, Team::abort() flips a flag; every blocking wait in
// the communication layers polls that flag so a failure on one rank
// propagates instead of deadlocking the remaining ranks.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "runtime/team.hpp"
#include "util/error.hpp"

namespace srumma {

template <typename Pred>
void wait_abortable(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, Team& team, Pred pred) {
  while (!pred()) {
    if (team.aborted()) throw Error("team aborted while waiting");
    cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

}  // namespace srumma
