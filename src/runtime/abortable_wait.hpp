#pragma once
// Blocking waits that cannot outlive a failing team, in both execution
// modes.
//
// When any rank throws, Team::abort() flips a flag; every blocking wait in
// the communication layers polls that flag so a failure on one rank
// propagates instead of deadlocking the remaining ranks.
//
// On a pooled-mode fiber (exec::on_fiber()), a wait must never block the
// OS worker: these wrappers park by dropping the lock, yielding the fiber,
// and re-polling the predicate on resume.  Abort and deadline semantics
// are unchanged because both are part of the re-polled condition.  The
// lock is NEVER held across a yield.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "runtime/fiber_exec.hpp"
#include "runtime/team.hpp"
#include "util/error.hpp"

namespace srumma {

template <typename Pred>
void wait_abortable(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, Team& team, Pred pred) {
  if (exec::on_fiber()) {
    while (!pred()) {
      if (team.aborted()) throw Error("team aborted while waiting");
      lock.unlock();
      exec::yield();
      lock.lock();
    }
    return;
  }
  while (!pred()) {
    if (team.aborted()) throw Error("team aborted while waiting");
    cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

/// Deadline variant: waits until `pred` holds or `rel_time` (wall clock)
/// elapses.  Returns true when the predicate was satisfied, false on
/// timeout; throws when the team aborts, exactly like wait_abortable.
template <typename Rep, typename Period, typename Pred>
bool wait_abortable_for(std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, Team& team,
                        std::chrono::duration<Rep, Period> rel_time,
                        Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + rel_time;
  if (exec::on_fiber()) {
    while (!pred()) {
      if (team.aborted()) throw Error("team aborted while waiting");
      if (std::chrono::steady_clock::now() >= deadline) return pred();
      lock.unlock();
      exec::yield();
      lock.lock();
    }
    return true;
  }
  while (!pred()) {
    if (team.aborted()) throw Error("team aborted while waiting");
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return pred();
    cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                          deadline - now, std::chrono::milliseconds(20)));
  }
  return true;
}

/// Non-throwing park used by waits whose predicate already folds in abort
/// and kill conditions (the engine's domain boards).  Equivalent to
/// cv.wait(lock, pred) in threaded mode; fiber-yield polling in pooled
/// mode.
template <typename Pred>
void park_until(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                Pred pred) {
  if (exec::on_fiber()) {
    while (!pred()) {
      lock.unlock();
      exec::yield();
      lock.lock();
    }
    return;
  }
  cv.wait(lock, std::move(pred));
}

}  // namespace srumma
