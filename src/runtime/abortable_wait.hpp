#pragma once
// Condition-variable wait that cannot outlive a failing team.
//
// When any rank throws, Team::abort() flips a flag; every blocking wait in
// the communication layers polls that flag so a failure on one rank
// propagates instead of deadlocking the remaining ranks.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "runtime/team.hpp"
#include "util/error.hpp"

namespace srumma {

template <typename Pred>
void wait_abortable(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, Team& team, Pred pred) {
  while (!pred()) {
    if (team.aborted()) throw Error("team aborted while waiting");
    cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

/// Deadline variant: waits until `pred` holds or `rel_time` (wall clock)
/// elapses.  Returns true when the predicate was satisfied, false on
/// timeout; throws when the team aborts, exactly like wait_abortable.
template <typename Rep, typename Period, typename Pred>
bool wait_abortable_for(std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, Team& team,
                        std::chrono::duration<Rep, Period> rel_time,
                        Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + rel_time;
  while (!pred()) {
    if (team.aborted()) throw Error("team aborted while waiting");
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return pred();
    cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                          deadline - now, std::chrono::milliseconds(20)));
  }
  return true;
}

}  // namespace srumma
