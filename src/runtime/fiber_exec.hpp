#pragma once
// Cooperative fiber pool for pooled rank execution.
//
// run_fibers(n, ...) runs `n` rank bodies as stackful fibers (ucontext)
// multiplexed over a bounded pool of OS worker threads.  A fiber that
// reaches a blocking point calls yield(): it is swapped out, re-enqueued at
// the tail of the runnable queue, and resumed later (possibly on a
// different worker) to re-check its predicate.  This poll-yield parking
// needs no wakeup plumbing — abort flags and deadlines keep working because
// the predicate is re-evaluated on every resume — and with one worker it
// degenerates into deterministic round-robin scheduling.
//
// Blocking code MUST NOT hold a mutex across yield(): unlock, yield,
// relock (see runtime/abortable_wait.hpp for the canonical wrappers).
//
// Stacks are mmap'd with a PROT_NONE guard page at the low end; size comes
// from SRUMMA_HARNESS_STACK_KB (default 256 KiB).  Worker count comes from
// SRUMMA_HARNESS_THREADS (default: hardware concurrency, capped at the
// fiber count).  Fiber switches carry the TSan/ASan fiber annotations so
// the pooled scheduler runs clean under both sanitizers.

#include <cstddef>
#include <functional>

namespace srumma::exec {

/// True when the calling code runs on a pooled rank fiber (and yield() is
/// therefore legal).  Deliberately non-inline: the compiler must not cache
/// TLS addresses across a fiber switch.
[[nodiscard]] bool on_fiber() noexcept;

/// Cooperatively give up the worker; the fiber is re-enqueued at the tail
/// of the runnable queue and resumes later.  Must only be called on a
/// fiber, and never while holding a mutex.
void yield();

/// Run bodies 0..n-1 as fibers over `workers` OS threads (clamped to
/// [1, n]).  The calling thread acts as one of the workers, so workers==1
/// spawns no threads at all.  Blocks until every fiber finishes.  Bodies
/// must not let exceptions escape (catch them and record, as Team::run
/// does).  Not reentrant from a fiber — callers gate on !on_fiber().
void run_fibers(int n, int workers, std::size_t stack_bytes,
                const std::function<void(int)>& body);

/// SRUMMA_HARNESS_THREADS, else std::thread::hardware_concurrency(), >= 1.
[[nodiscard]] int default_workers() noexcept;

/// SRUMMA_HARNESS_STACK_KB * 1024, else 256 KiB; page-rounded, >= 64 KiB.
[[nodiscard]] std::size_t default_stack_bytes() noexcept;

}  // namespace srumma::exec
