#pragma once
// Rank/Team execution substrate.
//
// A Team turns one simulated machine into a set of concurrently executing
// ranks sharing the process address space — the stand-in for cluster
// processes — each with its own virtual clock and trace counters.
// Algorithms are written as a callable taking a Rank&, exactly like an SPMD
// main(); Team::run executes every rank (as fibers over a bounded worker
// pool by default, or as one OS thread per rank — see ExecMode and
// docs/HARNESS.md), waits for all of them, and propagates the first
// exception (waking any rank parked in a barrier so a failing run cannot
// deadlock the suite).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/fault_plane.hpp"
#include "machine/machine.hpp"
#include "trace/tracer.hpp"
#include "vtime/clock.hpp"
#include "vtime/network.hpp"
#include "vtime/timeline.hpp"
#include "vtime/trace_counters.hpp"

namespace srumma {

class Team;

/// How Team::run executes rank bodies.
///  - Pooled: ranks are stackful fibers multiplexed over a bounded worker
///    pool (see runtime/fiber_exec.hpp); blocking points park by yielding.
///    The default — 1024+-rank teams cost no OS threads.
///  - Threads: one OS thread per rank; the original mode, kept as a
///    fallback and as the differential-testing oracle (tests assert both
///    modes produce bitwise-identical virtual-time results).
///  - Auto: resolve from SRUMMA_HARNESS ("pooled" | "threads"; default
///    pooled) at run() time.
enum class ExecMode : std::uint8_t { Auto, Pooled, Threads };

/// Per-rank execution context handed to the SPMD body.
class Rank {
 public:
  Rank(Team* team, int id) : team_(team), id_(id) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int node() const noexcept;
  [[nodiscard]] int domain() const noexcept;
  [[nodiscard]] Team& team() noexcept { return *team_; }
  [[nodiscard]] const MachineModel& machine() const noexcept;

  [[nodiscard]] VClock& clock() noexcept { return clock_; }
  [[nodiscard]] TraceCounters& trace() noexcept { return trace_; }

  /// The team's structured event tracer; nullptr when tracing is off (the
  /// common case — instrumentation sites null-test it, exactly like the
  /// RMA checker and the fault plane).
  [[nodiscard]] trace::Tracer* tracer() noexcept;

  /// Synchronize all ranks; every clock advances to the team max plus the
  /// modeled tree-barrier cost.
  void barrier();

  /// Charge one m x n x k block product against this rank's clock.
  /// `rate_factor` scales the dgemm rate (used for direct access to
  /// non-cacheable or remote NUMA memory).
  void charge_gemm(index_t m, index_t n, index_t k, double rate_factor = 1.0);

  /// Charge an arbitrary modeled duration (seconds).
  void charge_seconds(double dt);

  // -- used by Team::reset --------------------------------------------------
  void reset_noise();

 private:
  /// Consume CPU time, injecting deterministic daemon-preemption noise per
  /// the machine model (see MachineModel::noise_daemon_interval).
  void consume_cpu(double dt);

  Team* team_;
  int id_;
  VClock clock_;
  TraceCounters trace_;
  // OS-noise state: CPU consumed and the (jittered) next preemption point.
  double cpu_used_ = 0.0;
  double next_preempt_ = -1.0;  // lazily initialized
  std::uint64_t noise_seq_ = 0;
};

/// A set of ranks executing on one simulated machine.
class Team {
 public:
  /// One rank per CPU described by the machine model.
  explicit Team(MachineModel machine);
  /// Flushes the structured trace (see flush_trace) before teardown.
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] const MachineModel& machine() const noexcept { return machine_; }
  [[nodiscard]] NetworkState& network() noexcept { return net_; }
  [[nodiscard]] Rank& rank(int id);

  /// Run an SPMD body on every rank; blocks until all complete.  The first
  /// exception thrown by any rank is rethrown here after all ranks finish.
  void run(const std::function<void(Rank&)>& body);

  /// Select the execution mode (and, for Pooled, an optional worker-count
  /// override; workers <= 0 means "resolve from the environment").  Takes
  /// effect at the next run(); safe to change between runs.
  void set_execution(ExecMode mode, int workers = 0) noexcept {
    exec_mode_ = mode;
    exec_workers_ = workers;
  }
  [[nodiscard]] ExecMode execution() const noexcept { return exec_mode_; }

  /// Reset clocks, traces and network resources between experiments.
  void reset();

  /// Max virtual clock across ranks (the parallel makespan after a run that
  /// ends in a barrier).
  [[nodiscard]] double max_clock();

  /// Sum of all ranks' trace counters.
  [[nodiscard]] TraceCounters total_trace();

  /// Per-rank scratch slots used by collective algorithms to publish their
  /// local statistics; a slot is written by its owning rank before a
  /// barrier and read by everyone after it.
  ///
  /// Synchronization: the boards carry no locks of their own.  The
  /// write-before-barrier / read-after-barrier discipline is sound because
  /// barrier_wait establishes a happens-before edge between every rank's
  /// pre-barrier work and every rank's post-barrier work: each arrival
  /// acquires barrier_mu_, and each departure observes the generation bump
  /// published under that same mutex (verified race-free under
  /// -fsanitize=thread; see docs/CHECKING.md).  Readers must also finish
  /// before the *next* barrier, after which slots may be overwritten.
  [[nodiscard]] TraceCounters& trace_board(int rank);

  /// Per-rank double slot with the same write-before-barrier / read-after
  /// discipline (and the same barrier-provided synchronization) as
  /// trace_board; used for collective reductions over shared memory.
  [[nodiscard]] double& value_board(int rank);

  /// Fault-injection plane consulted by the communication layers; nullptr
  /// when injection is disabled (the common case — callers null-test it,
  /// exactly like the RMA checker).  Auto-installed from the SRUMMA_FAULT_*
  /// environment at construction; set_fault_plane overrides (nullptr
  /// disables).  One plane per team so the RMA and msg layers draw from the
  /// same seeded decision streams.
  [[nodiscard]] fault::FaultPlane* faults() noexcept { return faults_.get(); }
  void set_fault_plane(std::shared_ptr<fault::FaultPlane> plane) noexcept {
    faults_ = std::move(plane);
  }

  /// Register a condition variable that abort() must notify, so blocking
  /// waits in the comm layers (symmetric allocation, mailboxes) wake
  /// promptly when a peer rank throws instead of riding out their polling
  /// interval.  Returns a slot id for remove_abort_cv — an index into a
  /// free-listed registry, so registering/removing the O(ranks) mailbox
  /// cvs of a 4096-rank team costs O(1) each instead of an O(n) scan.
  /// The caller owns the cv and must remove it before the cv is destroyed.
  std::uint64_t add_abort_cv(std::condition_variable* cv);
  void remove_abort_cv(std::uint64_t id);

  /// Start recording per-rank event spans (see vtime/timeline.hpp); off by
  /// default.  Safe to call between runs; reset() clears recorded events
  /// but keeps recording enabled.
  void enable_timeline();
  /// nullptr when recording is disabled.
  [[nodiscard]] Timeline* timeline() noexcept { return timeline_.get(); }

  /// Install the structured event tracer (src/trace/tracer.hpp); replaces
  /// any existing tracer.  Auto-installed from the SRUMMA_TRACE environment
  /// at construction.  reset() clears recorded events but keeps tracing
  /// enabled, so a trace covers the Team's most recent run.
  void enable_tracer(trace::TracerConfig cfg);
  [[nodiscard]] trace::Tracer* tracer_ptr() noexcept { return tracer_.get(); }

  /// Write the Chrome-trace JSON to the tracer's configured path (no-op
  /// when tracing is off, the path is empty, or no events were recorded).
  /// Called automatically from the destructor; call earlier to inspect the
  /// file while the Team is still alive.  Returns false on I/O failure.
  bool flush_trace();

  /// Register a callback invoked with the rank id every time that rank
  /// *enters* a barrier (before it blocks) — the epoch-advance hook the RMA
  /// checker uses to close an access epoch.  Returns an id for
  /// remove_epoch_observer.  When no observer is registered the barrier
  /// path pays one relaxed atomic load and nothing else.
  std::uint64_t add_epoch_observer(std::function<void(int)> fn);
  void remove_epoch_observer(std::uint64_t id);

  // -- used by Rank::barrier and the comm layers ----------------------------
  void barrier_wait(Rank& me);
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }
  void abort() noexcept;

 private:
  MachineModel machine_;
  int size_;
  NetworkState net_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<TraceCounters> trace_board_;
  std::vector<double> value_board_;
  std::unique_ptr<Timeline> timeline_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::shared_ptr<fault::FaultPlane> faults_;

  std::mutex abort_cv_mu_;
  // Index-keyed registry: slot id -> cv (nullptr = free slot, recycled via
  // the free list).  abort() walks the slots once; add/remove are O(1).
  std::vector<std::condition_variable*> abort_cv_slots_;
  std::vector<std::uint64_t> abort_cv_free_;

  ExecMode exec_mode_ = ExecMode::Auto;
  int exec_workers_ = 0;

  void notify_epoch_observers(int rank);

  std::mutex observer_mu_;
  std::map<std::uint64_t, std::function<void(int)>> epoch_observers_;
  std::uint64_t next_observer_id_ = 1;
  std::atomic<bool> has_epoch_observers_{false};

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_ = 0.0;
  double barrier_release_ = 0.0;
  std::atomic<bool> aborted_{false};
};

}  // namespace srumma
