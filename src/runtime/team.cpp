#include "runtime/team.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "runtime/fiber_exec.hpp"
#include "trace/chrome_trace.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

int Rank::node() const noexcept { return team_->machine().node_of(id_); }
int Rank::domain() const noexcept { return team_->machine().domain_of(id_); }
const MachineModel& Rank::machine() const noexcept { return team_->machine(); }

trace::Tracer* Rank::tracer() noexcept { return team_->tracer_ptr(); }

void Rank::barrier() { team_->barrier_wait(*this); }

void Rank::charge_gemm(index_t m, index_t n, index_t k, double rate_factor) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  SRUMMA_REQUIRE(rate_factor > 0.0, "rate_factor must be positive");
  const double dt = machine().dgemm.time(m, n, k) / rate_factor;
  const double before = clock_.now();
  clock_.advance(dt);
  if (Timeline* tl = team_->timeline())
    tl->record(id_, EventKind::Compute, before, before + dt);
  if (trace::Tracer* tr = tracer())
    tr->span(id_, trace::Phase::Compute, before, before + dt,
             static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n));
  trace_.time_compute += dt;
  trace_.gemm_calls += 1;
  trace_.flops += gemm_flops(static_cast<double>(m), static_cast<double>(n),
                             static_cast<double>(k));
  consume_cpu(dt);
}

void Rank::charge_seconds(double dt) {
  SRUMMA_REQUIRE(dt >= 0.0, "cannot charge negative time");
  clock_.advance(dt);
  consume_cpu(dt);
}

void Rank::consume_cpu(double dt) {
  const MachineModel& mm = machine();
  if (mm.noise_daemon_interval <= 0.0 || mm.noise_daemon_duration <= 0.0)
    return;
  // Deterministic per-rank jitter: the gap to the next preemption is drawn
  // from [0.5, 1.5] x interval using a hash of (rank, sequence), so runs
  // are exactly reproducible and ranks are decorrelated — which is what
  // makes bulk-synchronous codes pay the max over ranks at every step.
  auto next_gap = [this, &mm] {
    std::uint64_t x =
        static_cast<std::uint64_t>(id_) * std::uint64_t{0x9e3779b97f4a7c15} +
        ++noise_seq_ * std::uint64_t{0xbf58476d1ce4e5b9};
    x ^= x >> 30;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 27;
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0,1)
    return mm.noise_daemon_interval * (0.5 + u);
  };
  if (next_preempt_ < 0.0) next_preempt_ = next_gap();
  cpu_used_ += dt;
  while (cpu_used_ >= next_preempt_) {
    const double before = clock_.now();
    clock_.advance(mm.noise_daemon_duration);
    if (Timeline* tl = team_->timeline())
      tl->record(id_, EventKind::Noise, before, clock_.now());
    if (trace::Tracer* tr = tracer())
      tr->span(id_, trace::Phase::Noise, before, clock_.now());
    trace_.time_noise += mm.noise_daemon_duration;
    next_preempt_ += next_gap();
  }
}

void Rank::reset_noise() {
  cpu_used_ = 0.0;
  next_preempt_ = -1.0;
  noise_seq_ = 0;
}

Team::Team(MachineModel machine)
    : machine_(std::move(machine)),
      size_(machine_.total_ranks()),
      net_(machine_),
      trace_board_(static_cast<std::size_t>(size_)),
      value_board_(static_cast<std::size_t>(size_), 0.0) {
  ranks_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    ranks_.push_back(std::make_unique<Rank>(this, r));
  }
  faults_ = fault::plane_from_env(machine_);
  if (auto cfg = trace::TracerConfig::from_env()) enable_tracer(*cfg);
}

Team::~Team() { flush_trace(); }

void Team::enable_tracer(trace::TracerConfig cfg) {
  std::vector<trace::TrackInfo> tracks;
  tracks.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    tracks.push_back({machine_.node_of(r), machine_.domain_of(r)});
  tracer_ = std::make_unique<trace::Tracer>(std::move(tracks), std::move(cfg));
}

bool Team::flush_trace() {
  if (!tracer_ || tracer_->config().path.empty()) return true;
  bool any = false;
  for (int r = 0; r < size_ && !any; ++r) any = tracer_->recorded(r) > 0;
  if (!any) return true;
  return trace::write_chrome_trace_file(tracer_->config().path, *tracer_);
}

Rank& Team::rank(int id) {
  SRUMMA_REQUIRE(id >= 0 && id < size_, "rank id out of range");
  return *ranks_[static_cast<std::size_t>(id)];
}

namespace {

ExecMode mode_from_env() {
  const char* s = std::getenv("SRUMMA_HARNESS");
  if (s != nullptr && std::strcmp(s, "threads") == 0) return ExecMode::Threads;
  return ExecMode::Pooled;
}

}  // namespace

void Team::run(const std::function<void(Rank&)>& body) {
  SRUMMA_REQUIRE(!aborted(), "team was aborted; call reset() before reuse");
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto rank_body = [this, &body, &err_mu, &first_error](int r) {
    try {
      body(*ranks_[static_cast<std::size_t>(r)]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort();  // wake parked ranks so the run cannot hang
    }
  };

  ExecMode mode = exec_mode_ == ExecMode::Auto ? mode_from_env() : exec_mode_;
  // A body that itself runs a nested team (the request plane does this from
  // non-fiber scheduler threads, but be safe) cannot stack a second fiber
  // pool on a fiber: fall back to thread-per-rank for the nested run.
  if (mode == ExecMode::Pooled && exec::on_fiber()) mode = ExecMode::Threads;

  if (mode == ExecMode::Pooled) {
    const int workers =
        exec_workers_ > 0 ? exec_workers_ : exec::default_workers();
    exec::run_fibers(size_, workers, exec::default_stack_bytes(), rank_body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r)
      threads.emplace_back([&rank_body, r] { rank_body(r); });
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

void Team::reset() {
  for (auto& r : ranks_) {
    r->clock().reset();
    r->trace() = TraceCounters{};
    r->reset_noise();
  }
  net_.reset();
  if (timeline_) timeline_->clear();
  // Drop traced events so timestamps stay monotone within one recording:
  // after a reset the trace covers the Team's most recent run.
  if (tracer_) tracer_->clear();
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_arrived_ = 0;
    barrier_max_ = 0.0;
    barrier_release_ = 0.0;
  }
  aborted_.store(false, std::memory_order_release);
  // Replay the same injected faults on the next run.
  if (faults_) faults_->reset();
}

double Team::max_clock() {
  double m = 0.0;
  for (auto& r : ranks_) m = std::max(m, r->clock().now());
  return m;
}

TraceCounters& Team::trace_board(int rank) {
  SRUMMA_REQUIRE(rank >= 0 && rank < size_, "trace_board: rank out of range");
  return trace_board_[static_cast<std::size_t>(rank)];
}

void Team::enable_timeline() {
  if (!timeline_) timeline_ = std::make_unique<Timeline>(size_);
}

double& Team::value_board(int rank) {
  SRUMMA_REQUIRE(rank >= 0 && rank < size_, "value_board: rank out of range");
  return value_board_[static_cast<std::size_t>(rank)];
}

TraceCounters Team::total_trace() {
  TraceCounters t;
  for (auto& r : ranks_) t += r->trace();
  return t;
}

void Team::abort() noexcept {
  aborted_.store(true, std::memory_order_release);
  barrier_cv_.notify_all();
  // Wake every registered blocking wait (symmetric allocation, mailboxes)
  // so peers observe the abort promptly instead of riding out their
  // polling interval.  (Pooled-mode fibers need no wakeup: parked fibers
  // re-poll their predicate, which checks aborted(), on every resume.)
  std::lock_guard<std::mutex> lock(abort_cv_mu_);
  for (std::condition_variable* cv : abort_cv_slots_)
    if (cv != nullptr) cv->notify_all();
}

std::uint64_t Team::add_abort_cv(std::condition_variable* cv) {
  std::lock_guard<std::mutex> lock(abort_cv_mu_);
  if (!abort_cv_free_.empty()) {
    const std::uint64_t id = abort_cv_free_.back();
    abort_cv_free_.pop_back();
    abort_cv_slots_[static_cast<std::size_t>(id)] = cv;
    return id;
  }
  const std::uint64_t id = abort_cv_slots_.size();
  abort_cv_slots_.push_back(cv);
  return id;
}

void Team::remove_abort_cv(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(abort_cv_mu_);
  SRUMMA_REQUIRE(id < abort_cv_slots_.size() &&
                     abort_cv_slots_[static_cast<std::size_t>(id)] != nullptr,
                 "remove_abort_cv: unknown registry id");
  abort_cv_slots_[static_cast<std::size_t>(id)] = nullptr;
  abort_cv_free_.push_back(id);
}

std::uint64_t Team::add_epoch_observer(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  const std::uint64_t id = next_observer_id_++;
  epoch_observers_.emplace(id, std::move(fn));
  has_epoch_observers_.store(true, std::memory_order_release);
  return id;
}

void Team::remove_epoch_observer(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  epoch_observers_.erase(id);
  has_epoch_observers_.store(!epoch_observers_.empty(),
                             std::memory_order_release);
}

void Team::notify_epoch_observers(int rank) {
  // Copy under the lock, call outside it: an observer may throw (the RMA
  // checker in throw mode) and must not leave observer_mu_ held.
  std::vector<std::function<void(int)>> fns;
  {
    std::lock_guard<std::mutex> lock(observer_mu_);
    fns.reserve(epoch_observers_.size());
    for (auto& [id, fn] : epoch_observers_) fns.push_back(fn);
  }
  for (auto& fn : fns) fn(rank);
}

void Team::barrier_wait(Rank& me) {
  // Barrier kill point: a configured fail-stop whose trigger is "at the
  // next synchronization" trips as its domain's ranks enter the barrier.
  // The rank still joins (barriers count all ranks, dead or alive); the
  // recovery protocol detects and declares the death at its own barrier.
  if (fault::FaultPlane* fp = faults(); fp != nullptr)
    fp->reach_kill_point(fault::KillPoint::Barrier, me.domain(),
                         me.clock().now());
  if (has_epoch_observers_.load(std::memory_order_acquire)) {
    if (trace::Tracer* tr = tracer_.get())
      tr->instant(me.id(), trace::Phase::Epoch, me.clock().now());
    notify_epoch_observers(me.id());
  }

  const double barrier_cost =
      machine_.barrier_hop_latency *
      (size_ > 1 ? std::ceil(std::log2(static_cast<double>(size_))) : 0.0);

  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (aborted()) throw Error("team aborted while entering barrier");
  barrier_max_ = std::max(barrier_max_, me.clock().now());
  if (++barrier_arrived_ == size_) {
    barrier_release_ = barrier_max_ + barrier_cost;
    barrier_arrived_ = 0;
    barrier_max_ = 0.0;
    ++barrier_generation_;
    // Watermark coalescing: every peer is quiescent inside this barrier
    // (parked on barrier_cv_ or yielded in its poll loop, never mid-book),
    // and every future booking's ready time derives from a clock that will
    // be sync'd to barrier_release_ — so reservations ending at or before
    // the release can never influence a future placement and may be merged
    // into one dead prefix interval.  This bounds Resource memory on long
    // runs without changing any modeled result.
    net_.advance_frontier(barrier_release_);
    barrier_cv_.notify_all();
  } else {
    const std::uint64_t gen = barrier_generation_;
    auto released = [&] { return barrier_generation_ != gen || aborted(); };
    if (exec::on_fiber()) {
      // Pooled mode: park by yielding the fiber (lock dropped across the
      // yield); the predicate is re-polled on every resume.
      while (!released()) {
        lock.unlock();
        exec::yield();
        lock.lock();
      }
    } else {
      barrier_cv_.wait(lock, released);
    }
    if (aborted()) throw Error("team aborted while waiting in barrier");
  }
  const double before = me.clock().now();
  me.clock().sync_to(barrier_release_);
  if (Timeline* tl = timeline_.get()) {
    if (barrier_release_ > before)
      tl->record(me.id(), EventKind::Barrier, before, barrier_release_);
  }
  if (trace::Tracer* tr = tracer_.get()) {
    if (barrier_release_ > before)
      tr->span(me.id(), trace::Phase::Barrier, before, barrier_release_);
  }
}

}  // namespace srumma
