#pragma once
// Global-Arrays-style convenience layer.
//
// SRUMMA's production home is the Global Arrays toolkit (it became GA's
// ga_dgemm, running underneath NWChem).  This layer reproduces the GA
// programming surface the paper's users see: collective array creation,
// one-sided get/put/accumulate on arbitrary global patches, sync, local
// access, and a dgemm entry point that dispatches to SRUMMA.  It is a thin
// veneer over DistMatrix/RmaRuntime — every operation maps to the same
// primitives the core algorithm uses.
//
// All operations are one-sided unless documented collective; the usual GA
// discipline applies: bracket communication epochs with sync().

#include <optional>
#include <utility>

#include "core/options.hpp"
#include "dist/dist_matrix.hpp"
#include "trace/report.hpp"

namespace srumma::ga {

/// A dense, block-distributed 2-D global array (GA's 2-D double arrays).
class GlobalArray {
 public:
  /// Collective creation over the whole team; the grid defaults to the
  /// most-square factorization of the team size (GA's default layout).
  GlobalArray(RmaRuntime& rma, Rank& me, index_t rows, index_t cols,
              std::optional<ProcGrid> grid = std::nullopt,
              bool phantom = false);

  /// Collective destruction of the backing storage (GA_Destroy).
  void destroy(Rank& me) { m_.destroy(me); }

  [[nodiscard]] index_t rows() const noexcept { return m_.rows(); }
  [[nodiscard]] index_t cols() const noexcept { return m_.cols(); }
  [[nodiscard]] bool phantom() const noexcept { return m_.phantom(); }

  /// Collective: set every element (GA_Fill).
  void fill(Rank& me, double value);

  /// Collective: fill with the deterministic coordinate pattern (handy for
  /// tests — the same logical matrix regardless of grid shape).
  void fill_pattern(Rank& me);

  /// One-sided read of the global patch [i0, i0+mi) x [j0, j0+nj) (NGA_Get).
  void get(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
           MatrixView out);

  /// One-sided write of a global patch (NGA_Put).
  void put(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
           ConstMatrixView in);

  /// One-sided atomic accumulate: patch += alpha * in (NGA_Acc).
  void acc(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
           double alpha, ConstMatrixView in);

  /// Barrier + memory epoch boundary (GA_Sync).
  void sync(Rank& me) { me.barrier(); }

  /// Direct view of my local block (GA_Access); valid until the array dies.
  /// Under the RMA checker the view is declared as a local write for the
  /// current epoch, so a one-sided put/acc landing in this block before the
  /// next sync() is diagnosed as an epoch conflict.
  [[nodiscard]] MatrixView access(
      Rank& me,
      std::source_location site = std::source_location::current()) {
    MatrixView v = m_.local_view(me);
    m_.rma().declare_compute_write(me, v.data(), v.rows(), v.cols(), v.ld(),
                                   site);
    return v;
  }

  /// Global [row, col) ranges owned by `rank` (GA_Distribution).
  [[nodiscard]] std::pair<std::pair<index_t, index_t>,
                          std::pair<index_t, index_t>>
  distribution(int rank) const;

  /// The underlying distributed matrix (escape hatch for the core API).
  [[nodiscard]] DistMatrix& dist() noexcept { return m_; }
  [[nodiscard]] RmaRuntime& rma() noexcept { return m_.rma(); }

 private:
  DistMatrix m_;
};

/// Collective GA_Dgemm: c := alpha * op(a) op(b) + beta * c via SRUMMA.
/// `ta`/`tb` follow the BLAS convention ('n'/'N' or 't'/'T').
MultiplyResult dgemm(Rank& me, char ta, char tb, double alpha, GlobalArray& a,
                     GlobalArray& b, double beta, GlobalArray& c,
                     const SrummaOptions& tuning = SrummaOptions{});

/// Collective GA_Transpose: b := a^T, implemented with one-sided gets only
/// (each rank pulls the transposed patch of its own block) — no
/// sender-receiver coordination, in the spirit of SRUMMA.
void transpose(Rank& me, GlobalArray& a, GlobalArray& b);

/// Collective element-wise GA_Add: c := alpha*a + beta*b (shapes equal,
/// same distribution).
void add(Rank& me, double alpha, GlobalArray& a, double beta, GlobalArray& b,
         GlobalArray& c);

/// Collective GA_Ddot: sum_ij a(i,j) * b(i,j); identical result on every
/// rank.  Not available for phantom arrays.
double dot(Rank& me, GlobalArray& a, GlobalArray& b);

/// Collective scale in place: a *= value (GA_Scale).
void scale(Rank& me, GlobalArray& a, double value);

/// Collective element-wise copy: b := a (GA_Copy; same shape and grid).
void copy_array(Rank& me, GlobalArray& a, GlobalArray& b);

/// Collective infinity norm: max_i sum_j |a(i,j)|.  Identical on all ranks.
double norm_inf(Rank& me, GlobalArray& a);

/// Collective symmetrization in place: a := (a + a^T)/2 (GA_Symmetrize;
/// square arrays).  Uses the one-sided transpose internally.
void symmetrize(Rank& me, GlobalArray& a);

}  // namespace srumma::ga
