#include "ga/global_array.hpp"

#include <cmath>

#include "core/srumma.hpp"
#include "util/rng.hpp"

namespace srumma::ga {

GlobalArray::GlobalArray(RmaRuntime& rma, Rank& me, index_t rows, index_t cols,
                         std::optional<ProcGrid> grid, bool phantom)
    : m_(rma, me, rows, cols,
         grid.value_or(ProcGrid::near_square(rma.team().size())), phantom) {}

void GlobalArray::fill(Rank& me, double value) {
  if (!m_.phantom()) m_.local_view(me).fill(value);
  me.barrier();
}

void GlobalArray::fill_pattern(Rank& me) {
  if (!m_.phantom()) m_.fill_coords_local(me);
  me.barrier();
}

void GlobalArray::get(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
                      MatrixView out) {
  PatchHandle h = m_.fetch_nb(me, i0, j0, mi, nj, out);
  m_.wait(me, h);
}

void GlobalArray::put(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
                      ConstMatrixView in) {
  PatchHandle h = m_.store_nb(me, i0, j0, mi, nj, in);
  m_.wait(me, h);
}

void GlobalArray::acc(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
                      double alpha, ConstMatrixView in) {
  PatchHandle h = m_.accumulate_nb(me, i0, j0, mi, nj, alpha, in);
  m_.wait(me, h);
}

std::pair<std::pair<index_t, index_t>, std::pair<index_t, index_t>>
GlobalArray::distribution(int rank) const {
  return {{m_.block_row_start(rank),
           m_.block_row_start(rank) + m_.block_rows(rank)},
          {m_.block_col_start(rank),
           m_.block_col_start(rank) + m_.block_cols(rank)}};
}

MultiplyResult dgemm(Rank& me, char ta, char tb, double alpha, GlobalArray& a,
                     GlobalArray& b, double beta, GlobalArray& c,
                     const SrummaOptions& tuning) {
  auto to_trans = [](char t) {
    switch (t) {
      case 'n':
      case 'N':
        return blas::Trans::No;
      case 't':
      case 'T':
        return blas::Trans::Yes;
      default:
        throw Error(std::string("ga::dgemm: bad transpose flag '") + t + "'");
    }
  };
  SrummaOptions opt = tuning;
  opt.ta = to_trans(ta);
  opt.tb = to_trans(tb);
  opt.alpha = alpha;
  opt.beta = beta;
  return srumma_multiply(me, a.dist(), b.dist(), c.dist(), opt);
}

void transpose(Rank& me, GlobalArray& a, GlobalArray& b) {
  SRUMMA_REQUIRE(a.rows() == b.cols() && a.cols() == b.rows(),
                 "ga::transpose: b must be a transposed");
  SRUMMA_REQUIRE(a.phantom() == b.phantom(),
                 "ga::transpose: phantom flags must agree");
  me.barrier();
  // Pull the transposed source patch of my block, then transpose locally.
  const index_t r0 = b.dist().block_row_start(me.id());
  const index_t bm = b.dist().block_rows(me.id());
  const index_t c0 = b.dist().block_col_start(me.id());
  const index_t bn = b.dist().block_cols(me.id());
  if (a.phantom()) {
    PatchHandle h = a.dist().fetch_nb(me, c0, r0, bn, bm, MatrixView{});
    a.dist().wait(me, h);
  } else if (bm > 0 && bn > 0) {
    Matrix buf(bn, bm);  // source orientation: a[c0:c0+bn, r0:r0+bm]
    PatchHandle h = a.dist().fetch_nb(me, c0, r0, bn, bm, buf.view());
    a.dist().wait(me, h);
    srumma::transpose(buf.view(), b.access(me));
    me.charge_seconds(static_cast<double>(bm * bn) * sizeof(double) /
                      me.machine().shm_bw);
  }
  me.barrier();
}

void add(Rank& me, double alpha, GlobalArray& a, double beta, GlobalArray& b,
         GlobalArray& c) {
  SRUMMA_REQUIRE(a.rows() == c.rows() && a.cols() == c.cols() &&
                     b.rows() == c.rows() && b.cols() == c.cols(),
                 "ga::add: shapes must match");
  me.barrier();
  if (!c.phantom()) {
    MatrixView av = a.access(me);
    MatrixView bv = b.access(me);
    MatrixView cv = c.access(me);
    for (index_t j = 0; j < cv.cols(); ++j)
      for (index_t i = 0; i < cv.rows(); ++i)
        cv(i, j) = alpha * av(i, j) + beta * bv(i, j);
  }
  me.charge_seconds(
      3.0 * static_cast<double>(c.dist().block_rows(me.id())) *
      static_cast<double>(c.dist().block_cols(me.id())) * sizeof(double) /
      me.machine().shm_bw);
  me.barrier();
}

double dot(Rank& me, GlobalArray& a, GlobalArray& b) {
  SRUMMA_REQUIRE(!a.phantom() && !b.phantom(),
                 "ga::dot: phantom arrays have no data");
  SRUMMA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "ga::dot: shapes must match");
  me.barrier();
  MatrixView av = a.access(me);
  MatrixView bv = b.access(me);
  double partial = 0.0;
  for (index_t j = 0; j < av.cols(); ++j)
    for (index_t i = 0; i < av.rows(); ++i) partial += av(i, j) * bv(i, j);
  Team& team = me.team();
  team.value_board(me.id()) = partial;
  me.barrier();
  double total = 0.0;
  for (int r = 0; r < team.size(); ++r) total += team.value_board(r);
  me.barrier();
  return total;
}

void scale(Rank& me, GlobalArray& a, double value) {
  me.barrier();
  if (!a.phantom()) {
    MatrixView av = a.access(me);
    for (index_t j = 0; j < av.cols(); ++j)
      for (index_t i = 0; i < av.rows(); ++i) av(i, j) *= value;
  }
  me.barrier();
}

void copy_array(Rank& me, GlobalArray& a, GlobalArray& b) {
  SRUMMA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "ga::copy: shapes must match");
  SRUMMA_REQUIRE(a.phantom() == b.phantom(),
                 "ga::copy: phantom flags must agree");
  me.barrier();
  if (!a.phantom()) {
    // Same grid -> block-local copy; otherwise pull my block one-sided.
    if (a.dist().grid().p == b.dist().grid().p &&
        a.dist().grid().q == b.dist().grid().q) {
      copy(ConstMatrixView(a.access(me)), b.access(me));
    } else {
      MatrixView mine = b.access(me);
      PatchHandle h = a.dist().fetch_nb(
          me, b.dist().block_row_start(me.id()),
          b.dist().block_col_start(me.id()), mine.rows(), mine.cols(), mine);
      a.dist().wait(me, h);
    }
  }
  me.charge_seconds(static_cast<double>(b.dist().block_rows(me.id()) *
                                        b.dist().block_cols(me.id())) *
                    sizeof(double) / me.machine().shm_bw);
  me.barrier();
}

double norm_inf(Rank& me, GlobalArray& a) {
  SRUMMA_REQUIRE(!a.phantom(), "ga::norm_inf: phantom arrays have no data");
  Team& team = me.team();
  me.barrier();
  // Partial row sums of my block, reduced across grid rows via the board:
  // simplest correct scheme — every rank publishes the max over *full*
  // global rows it can assemble one-sided.  To stay one-sided and simple,
  // each rank fetches its block-row band of the whole matrix row by block.
  const index_t r0 = a.dist().block_row_start(me.id());
  const index_t rn = a.dist().block_rows(me.id());
  double local_max = 0.0;
  if (rn > 0 && a.dist().block_cols(me.id()) > 0) {
    // Only one rank per grid row does the work for that row band (the one
    // in grid column 0), so bands are counted exactly once.
    if (a.dist().grid().coords_of(me.id()).second == 0) {
      Matrix band(rn, a.cols());
      PatchHandle h = a.dist().fetch_nb(me, r0, 0, rn, a.cols(), band.view());
      a.dist().wait(me, h);
      for (index_t i = 0; i < rn; ++i) {
        double s = 0.0;
        for (index_t j = 0; j < a.cols(); ++j) s += std::abs(band(i, j));
        local_max = std::max(local_max, s);
      }
    }
  }
  team.value_board(me.id()) = local_max;
  me.barrier();
  double result = 0.0;
  for (int r = 0; r < team.size(); ++r)
    result = std::max(result, team.value_board(r));
  me.barrier();
  return result;
}

void symmetrize(Rank& me, GlobalArray& a) {
  SRUMMA_REQUIRE(a.rows() == a.cols(), "ga::symmetrize: array must be square");
  Team& team = me.team();
  // a := (a + a^T)/2 via a temporary transposed copy (one-sided).
  GlobalArray at(a.rma(), me, a.rows(), a.cols(), a.dist().grid(),
                 a.phantom());
  transpose(me, a, at);
  add(me, 0.5, a, 0.5, at, a);
  at.destroy(me);
  (void)team;
}

}  // namespace srumma::ga
