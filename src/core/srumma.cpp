#include "core/srumma.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "blas/gemm.hpp"
#include "cache/block_cache.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

namespace {

// One acquired operand patch: either a direct (in-place) view of a peer's
// block, or a copy fetched into one of the rotating buffers.
struct OperandState {
  Matrix buf;            // backing storage for the copy path
  PatchHandle handle;    // pending fetch (copy path only)
  ConstMatrixView view;  // what dgemm will read (empty in phantom mode)
  // Patch identity, for A-reuse matching.
  index_t i0 = -1, j0 = -1, m = -1, n = -1;
  bool valid = false;
  bool direct = false;
  // The fetch behind this state exhausted its RMA retries: the buffer
  // contents are unreliable.  Every task that reads it must be requeued,
  // including later A-reuse consumers — the flag stays set until the state
  // is re-acquired, and matches() refuses to pair a new task with it.
  bool failed = false;
  // Cooperative-cache participation of the current acquire (inactive when
  // the cache is off, the patch is in-domain, or the path is direct).
  cache::Ref cache_ref;
  double rate_factor = 1.0;  // dgemm rate multiplier for direct access
  // Modeled buffer capacity this state has grown to via copy-path
  // acquires (tracked even in phantom mode, where nothing is allocated).
  std::uint64_t cap_bytes = 0;
  // Highest task index that reads this state.  A state may only be evicted
  // (refetched with a different patch) once that task has been computed —
  // reuse runs can keep a buffer live across many pipeline slots.
  std::ptrdiff_t last_user = -1;

  [[nodiscard]] bool matches(index_t pi0, index_t pj0, index_t pm,
                             index_t pn) const {
    return valid && !failed && i0 == pi0 && j0 == pj0 && m == pm && n == pn;
  }
};

// Acquire a patch of `mat` into `st` (direct view or nonblocking fetch).
void acquire(Rank& me, DistMatrix& mat, index_t i0, index_t j0, index_t mi,
             index_t nj, ShmFlavor flavor, OperandState& st) {
  const MachineModel& mm = me.machine();
  SRUMMA_ASSERT(!st.cache_ref.active(),
                "srumma: re-acquiring an operand whose cache ref was never "
                "finished");
  st.handle = PatchHandle{};
  st.view = ConstMatrixView{};
  st.i0 = i0;
  st.j0 = j0;
  st.m = mi;
  st.n = nj;
  st.valid = true;
  st.failed = false;
  st.rate_factor = 1.0;

  if (flavor == ShmFlavor::Direct) {
    const std::optional<int> owner =
        mat.single_owner_in_domain(me, i0, j0, mi, nj);
    fault::FaultPlane* fp = me.team().faults();
    if (owner.has_value() && fp != nullptr &&
        fp->direct_faults(mm.domain_of(*owner))) {
      // Direct loads/stores into this domain fault (injected dead domain):
      // degrade this peer's access flavor to Copy — the one-sided get path
      // below still works, it just pays the buffer.
      me.trace().shm_fallbacks += 1;
      if (trace::Tracer* tr = me.tracer())
        tr->instant(me.id(), trace::Phase::ShmFallback, me.clock().now());
    } else if (owner.has_value()) {
      st.direct = true;
      // dgemm streams operands straight out of the owner's memory; when the
      // owner sits on another physical node the kernel runs at the
      // machine's remote-direct rate (non-cacheable on the X1, NUMA-far on
      // the Altix).
      st.rate_factor = mm.node_of(*owner) == me.node()
                           ? 1.0
                           : mm.remote_direct_rate_factor;
      if (!mat.phantom()) {
        st.view = *mat.direct_view(me, i0, j0, mi, nj);
      } else {
        // No data to view, but the *modeled* loads still reach through to
        // the owner's segment — declare them so the checker sees the same
        // access pattern the real run would.
        mat.declare_direct_read(me, *owner, i0, j0, mi, nj);
      }
      me.trace().direct_tasks += 1;
      return;
    }
  }
  // Copy path: fetch into the rotating buffer with a (possibly) nonblocking
  // generalized get.
  st.direct = false;
  MatrixView dst;
  if (!mat.phantom()) {
    if (st.buf.rows() < mi || st.buf.cols() < nj) {
      st.buf = Matrix(mi, nj);
    }
    dst = st.buf.block(0, 0, mi, nj);
    st.view = dst;
  }
  const auto do_fetch = [&] { st.handle = mat.fetch_nb(me, i0, j0, mi, nj, dst); };
  cache::BlockCacheSet* cs = mat.rma().block_cache();
  if (cs != nullptr && !mat.rect_in_domain(me, i0, j0, mi, nj)) {
    // Cooperative single-flight acquisition.  As fetcher, the callback
    // issues this rank's own get and reports whether the issue was clean —
    // every piece delivered, uncorrupted, and inside the per-op deadline —
    // in which case the bytes are publishable for domain mates right away.
    // As sharer, no get is issued at all (st.handle stays empty, so the
    // compute loop's wait/verify steps skip naturally); the buffer is
    // filled from the published entry by finish-cache before dgemm.
    const cache::PatchKey key{mat.region_seq(), i0, j0, mi, nj};
    st.cache_ref = cs->acquire(
        me, key, mat.remote_piece_bytes(me, i0, j0, mi, nj),
        [&]() -> cache::FetchOutcome {
          do_fetch();
          const double deadline = mat.rma().retry_policy().op_timeout;
          bool clean = true;
          for (const RmaHandle& p : st.handle.pieces) {
            if (p.failed || p.corrupted ||
                (deadline > 0.0 && p.completion - p.issue_vt > deadline)) {
              clean = false;
            }
          }
          return {st.handle.completion(), clean};
        },
        st.view);
    if (st.cache_ref.role == cache::Role::Bypass) do_fetch();
  } else {
    do_fetch();
  }
  st.cap_bytes = std::max(
      st.cap_bytes,
      static_cast<std::uint64_t>(mi) * static_cast<std::uint64_t>(nj) *
          sizeof(double));
  me.trace().copy_tasks += 1;
}

// Checksum stand-in for a freshly fetched copy-path patch: compare the
// buffer against the owners' (quiescent) segments and refetch on mismatch.
// Bounded — a refetch draws fresh fault decisions and can be corrupted
// again, but 16 consecutive corruptions at any sane injection rate means
// the configuration is broken, not unlucky.  A refetch that itself
// exhausts its RMA retries marks the state failed so the consuming task
// requeues through the normal degradation path.
void verify_operand(Rank& me, DistMatrix& mat, OperandState& st) {
  if (st.direct || st.failed || mat.phantom()) return;
  int redos = 0;
  while (!mat.verify_fetched(me, st.i0, st.j0, st.m, st.n, st.view)) {
    SRUMMA_REQUIRE(++redos <= 16,
                   "srumma: fetched patch still corrupt after 16 refetches");
    const double t0 = me.clock().now();
    MatrixView dst = st.buf.block(0, 0, st.m, st.n);
    PatchHandle h = mat.fetch_nb(me, st.i0, st.j0, st.m, st.n, dst);
    const bool ok = mat.try_wait(me, h);
    me.trace().checksum_redos += 1;
    me.trace().time_recovery += me.clock().now() - t0;
    if (trace::Tracer* tr = me.tracer()) {
      tr->span(me.id(), trace::Phase::Redo, t0, me.clock().now());
      tr->counter_set(me.id(), trace::CounterId::RecoverySeconds,
                      me.clock().now(), me.trace().time_recovery);
    }
    if (!ok) {
      st.failed = true;
      return;
    }
  }
}

}  // namespace

MultiplyResult srumma_multiply(Rank& me, DistMatrix& a, DistMatrix& b,
                               DistMatrix& c, const SrummaOptions& opt) {
  SRUMMA_REQUIRE(a.phantom() == c.phantom() && b.phantom() == c.phantom(),
                 "srumma: phantom flags of A, B, C must agree");

  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();
  // Entry barrier to exit barrier, including collect_result's reduction.
  trace::SpanGuard multiply_span(me.tracer(), me.id(), trace::Phase::Multiply,
                                 me.clock());

  SrummaOptions tuned = opt;
  if (tuned.k_chunk == 0) {
    // Auto block size derived from the K-axis owner segmentation of the
    // stored operands (see auto_k_chunk).  This reproduces the paper's
    // empirically-tuned block size at the model level.
    tuned.k_chunk = auto_k_chunk(a, b, opt.ta, opt.tb);
  }

  if (tuned.lookahead == 0) {
    // Auto prefetch depth: SRUMMA_LOOKAHEAD wins; otherwise keep enough
    // patches in flight to cover the network's latency-bandwidth product
    // (one get's payload per slot), so the pipeline never drains while an
    // issue is still paying t_s.  A patch is roughly (local C extent,
    // capped by c_chunk) x k_chunk doubles.
    if (const char* env = std::getenv("SRUMMA_LOOKAHEAD")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      SRUMMA_REQUIRE(end != env && *end == '\0' && v >= 1 && v <= 64,
                     "SRUMMA_LOOKAHEAD must be an integer in [1, 64]");
      tuned.lookahead = static_cast<int>(v);
    } else {
      const MachineModel& mm = me.machine();
      index_t est_rows =
          std::max({c.block_rows(me.id()), c.block_cols(me.id()),
                    index_t{1}});
      if (tuned.c_chunk > 0) est_rows = std::min(est_rows, tuned.c_chunk);
      const double patch_bytes =
          static_cast<double>(est_rows) *
          static_cast<double>(std::max<index_t>(tuned.k_chunk, 1)) *
          static_cast<double>(sizeof(double));
      tuned.lookahead = std::clamp(
          static_cast<int>(
              std::ceil(mm.net_latency * mm.net_bw / patch_bytes)),
          1, 8);
    }
  }

  if (tuned.max_buffer_bytes > 0) {
    // Shrink the tiling until (lookahead+2) A patches + (lookahead+1) B
    // patches of the worst-case extents fit the budget.  Patch extents are
    // bounded by (c_chunk x k_chunk), so halve both until they fit (floor 8
    // to keep dgemm calls non-degenerate).
    const std::uint64_t slots =
        2 * static_cast<std::uint64_t>(tuned.lookahead) + 3;
    const index_t m_local = c.block_rows(me.id());
    const index_t n_local = c.block_cols(me.id());
    if (tuned.c_chunk == 0)
      tuned.c_chunk = std::max<index_t>(m_local, n_local);
    while (slots * static_cast<std::uint64_t>(
                       std::min(tuned.c_chunk,
                                std::max(m_local, n_local))) *
                   static_cast<std::uint64_t>(tuned.k_chunk) * sizeof(double) >
               tuned.max_buffer_bytes &&
           (tuned.c_chunk > 8 || tuned.k_chunk > 8)) {
      if (tuned.c_chunk > 8) tuned.c_chunk = (tuned.c_chunk + 1) / 2;
      if (tuned.k_chunk > 8) tuned.k_chunk = (tuned.k_chunk + 1) / 2;
    }
  }

  TaskPlan plan = build_task_plan(me, a, b, c, tuned);

  // Apply beta to my local C block once, before accumulation.
  if (!c.phantom() && opt.beta != 1.0) {
    MatrixView mine = c.local_view(me);
    if (opt.beta == 0.0) {
      mine.fill(0.0);
    } else {
      for (index_t j = 0; j < mine.cols(); ++j)
        for (index_t i = 0; i < mine.rows(); ++i) mine(i, j) *= opt.beta;
    }
  }

  // Pipeline state (the paper's B1/B2 double buffer, generalized to a
  // prefetch depth of `lookahead`).  B patches are unique per task, so a
  // (lookahead+1)-deep rotation is safe: task t's B slot is not rewritten
  // before compute(t).  A patches may be *reused* by several in-flight
  // tasks (Section 3.1's locality consideration), so A states are evicted
  // by last-user age instead of rotation: a pool of lookahead+2 states
  // always contains one whose readers have all been computed.
  SRUMMA_REQUIRE(tuned.lookahead >= 1 && tuned.lookahead <= 64,
                 "srumma: lookahead must be in [1, 64]");
  const int lookahead = opt.nonblocking ? tuned.lookahead : 0;
  const std::size_t n_slots = static_cast<std::size_t>(lookahead) + 1;
  std::vector<OperandState> a_state(n_slots + 1);
  std::vector<OperandState> b_state(n_slots);
  std::vector<std::size_t> slot_a(n_slots, 0);

  // Open the cooperative block cache for this multiply (the entry barrier
  // above is the inter-multiply separator begin_epoch requires).  The
  // default capacity covers the whole domain's pipeline footprint — every
  // mate's worst-case operand slots — so single-flight sharing is never
  // starved by its own working set.  A and B may in principle live on
  // different runtimes; open each distinct cache once.
  cache::BlockCacheSet* cache_sets[2] = {a.rma().block_cache(),
                                         b.rma().block_cache()};
  if (cache_sets[1] == cache_sets[0]) cache_sets[1] = nullptr;
  const std::uint64_t cache_default_cap =
      static_cast<std::uint64_t>(me.machine().domain_size()) *
      (2 * static_cast<std::uint64_t>(lookahead) + 3) *
      std::max(static_cast<std::uint64_t>(plan.max_a_m) *
                   static_cast<std::uint64_t>(plan.max_a_n),
               static_cast<std::uint64_t>(plan.max_b_m) *
                   static_cast<std::uint64_t>(plan.max_b_n)) *
      sizeof(double);
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->begin_epoch(me, cache_default_cap);

  // Cooperative-cache epilogue for one operand state, run after the
  // pipeline waited on (and possibly verified) its own fetch and before
  // the task is allowed to requeue (so a failed fetcher always releases
  // its pin, leaving a dirty entry for the next requester to re-arm).
  // Sharers pay the intra-domain copy here and register the read with the
  // checker at the true origin; fetchers publish when the final bytes are
  // known good — verified against the owner, or delivered with no piece
  // corrupted — and a late (post-recovery) publish otherwise stays dirty.
  auto finish_cache = [&me](DistMatrix& mat, OperandState& st, bool fetched,
                            bool verify) {
    if (!st.cache_ref.active()) return;
    cache::BlockCacheSet* cset = mat.rma().block_cache();
    if (st.cache_ref.role == cache::Role::Shared) {
      MatrixView dst;
      if (!mat.phantom()) dst = st.buf.block(0, 0, st.m, st.n);
      cset->consume_shared(me, st.cache_ref, dst);
      mat.declare_shared_read(me, st.i0, st.j0, st.m, st.n);
    } else {
      bool corrupted = false;
      for (const RmaHandle& p : st.handle.pieces) corrupted |= p.corrupted;
      const bool verified = verify && fetched && !st.failed && !mat.phantom();
      cset->finish_fetch(me, st.cache_ref,
                         !st.failed && (verified || !corrupted), st.view);
    }
  };

  // Mutable working copy: a task whose fetch exhausts its RMA retries is
  // re-enqueued at the tail (graceful degradation instead of aborting the
  // whole multiply), so the list can grow while we walk it.
  std::vector<Task> tasks = plan.tasks;
  const std::size_t requeue_cap = 4 * plan.tasks.size() + 16;
  std::size_t requeues = 0;

  auto issue = [&](std::size_t t_idx) {
    const Task& t = tasks[t_idx];
    const std::size_t slot = t_idx % n_slots;
    if (trace::Tracer* tr = me.tracer())
      tr->instant(me.id(), trace::Phase::TaskIssue, me.clock().now(), t_idx);
    // A: reuse a live matching patch if the policy allows.
    std::ptrdiff_t ai = -1;
    if (opt.ordering.a_reuse) {
      for (std::size_t i = 0; i < a_state.size(); ++i) {
        if (a_state[i].matches(t.a_i0, t.a_j0, t.a_m, t.a_n)) {
          ai = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
    }
    if (ai < 0) {
      // Evict the state whose last reader is oldest; with pool size
      // lookahead+2 it is guaranteed to have been computed already.
      ai = 0;
      for (std::size_t i = 1; i < a_state.size(); ++i) {
        if (a_state[i].last_user < a_state[static_cast<std::size_t>(ai)].last_user)
          ai = static_cast<std::ptrdiff_t>(i);
      }
      // issue(t_idx) runs in iteration max(0, t_idx - lookahead); every
      // task below that index has been computed, so its buffers are free.
      const std::ptrdiff_t compute_floor =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(t_idx) -
                                          lookahead);
      SRUMMA_ASSERT(a_state[static_cast<std::size_t>(ai)].last_user <
                        compute_floor,
                    "srumma pipeline: evicting an A buffer still in flight");
      acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor,
              a_state[static_cast<std::size_t>(ai)]);
    }
    a_state[static_cast<std::size_t>(ai)].last_user =
        static_cast<std::ptrdiff_t>(t_idx);
    slot_a[slot] = static_cast<std::size_t>(ai);
    acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor,
            b_state[slot]);
  };

  std::size_t next_issue = 0;
  for (std::size_t t_idx = 0; t_idx < tasks.size(); ++t_idx) {
    // Keep up to `lookahead` tasks in flight beyond the current one.
    while (next_issue < tasks.size() &&
           next_issue <= t_idx + static_cast<std::size_t>(lookahead)) {
      issue(next_issue++);
    }
    // By value: a requeue below push_backs into `tasks`, which may
    // reallocate out from under a reference.
    const Task t = tasks[t_idx];
    // Operand wait + verify + dgemm for this task (issue() above is outside:
    // issued fetches belong to the async comm tracks).
    trace::SpanGuard task_span(me.tracer(), me.id(), trace::Phase::Task,
                               me.clock(), t_idx);
    const std::size_t slot = t_idx % n_slots;
    OperandState& as = a_state[slot_a[slot]];
    OperandState& bs = b_state[slot];
    const bool a_fetched = as.handle.pending;
    const bool b_fetched = bs.handle.pending;
    if (a_fetched && !a.try_wait(me, as.handle)) as.failed = true;
    if (b_fetched && !b.try_wait(me, bs.handle)) bs.failed = true;
    if (opt.verify_checksums) {
      // Only freshly completed fetches: a reused A patch was verified when
      // its first consumer waited on it, and the panels are read-only for
      // the rest of the multiply.
      if (a_fetched) verify_operand(me, a, as);
      if (b_fetched) verify_operand(me, b, bs);
    }
    finish_cache(a, as, a_fetched, opt.verify_checksums);
    finish_cache(b, bs, b_fetched, opt.verify_checksums);
    if (as.failed || bs.failed) {
      // Exhausted retries on an operand: push the task to the tail and move
      // on — the pipeline refetches it with fresh handles later (each retry
      // of the tail copy draws new fault decisions).  The failed flag stays
      // on the state so in-flight A-reuse consumers of the same patch also
      // requeue rather than compute on unreliable data.
      SRUMMA_REQUIRE(requeues < requeue_cap,
                     "srumma: task requeue budget exhausted — transfers keep "
                     "failing after RMA retries");
      ++requeues;
      me.trace().task_requeues += 1;
      if (trace::Tracer* tr = me.tracer())
        tr->instant(me.id(), trace::Phase::Requeue, me.clock().now(), t_idx);
      tasks.push_back(t);
      continue;
    }

    if (!c.phantom()) {
      MatrixView c_tile = c.local_view(me).block(t.ci, t.cj, t.cm, t.cn);
      if (a.rma().checker() != nullptr) {
        // Declare dgemm's operand reads and result write: the checker
        // verifies no pending fetch is still filling a buffer this kernel
        // consumes, and joins direct views to the epoch conflict map.
        a.rma().declare_compute_read(me, as.view.data(), as.view.rows(),
                                     as.view.cols(), as.view.ld());
        b.rma().declare_compute_read(me, bs.view.data(), bs.view.rows(),
                                     bs.view.cols(), bs.view.ld());
        c.rma().declare_compute_write(me, c_tile.data(), c_tile.rows(),
                                      c_tile.cols(), c_tile.ld());
      }
      blas::gemm(opt.ta, opt.tb, opt.alpha, as.view, bs.view, 1.0, c_tile);
    }
    me.charge_gemm(t.cm, t.cn, t.kk,
                   std::min(as.rate_factor, bs.rate_factor));
  }

  // Pipeline buffer footprint: what the copy-path acquires grew the
  // operand states to (zero when every task ran on direct views).
  {
    std::uint64_t bytes = 0;
    for (const OperandState& st : a_state) bytes += st.cap_bytes;
    for (const OperandState& st : b_state) bytes += st.cap_bytes;
    me.trace().buffer_bytes_peak = bytes;  // per-run value
  }

  // Close the cache epoch: the last rank out invalidates the domain's
  // entries (A and B are only guaranteed read-only inside this multiply).
  // collect_result's barriers separate this from the next begin_epoch.
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->end_epoch(me);

  const index_t m = c.rows();
  const index_t n = c.cols();
  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(m),
                                   static_cast<double>(n),
                                   static_cast<double>(plan.k_total)));
}

}  // namespace srumma
