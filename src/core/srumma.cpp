#include "core/srumma.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "blas/gemm.hpp"
#include "cache/block_cache.hpp"
#include "engine/engine.hpp"
#include "engine/operand.hpp"
#include "engine/recovery.hpp"
#include "fault/fault_plane.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

// Operand acquisition (direct view / nonblocking fetch / cache-cooperative
// fetch), checksum verification and the cache epilogue live in
// engine/operand.* so the static pipeline below and the dependency-driven
// engine (engine/engine.cpp) acquire operands identically.
using engine::OperandState;
using engine::acquire;
using engine::finish_cache;
using engine::verify_operand;

MultiplyResult srumma_multiply(Rank& me, DistMatrix& a, DistMatrix& b,
                               DistMatrix& c, const SrummaOptions& opt) {
  SRUMMA_REQUIRE(a.phantom() == c.phantom() && b.phantom() == c.phantom(),
                 "srumma: phantom flags of A, B, C must agree");

  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();
  // Entry barrier to exit barrier, including collect_result's reduction.
  trace::SpanGuard multiply_span(me.tracer(), me.id(), trace::Phase::Multiply,
                                 me.clock());

  // Auto-tuning (k_chunk, lookahead, buffer-budget shrink) lives in
  // tune_options so the static analyzer resolves the exact executor
  // configuration a run would use (src/analysis, docs/ANALYSIS.md).
  const SrummaOptions tuned = tune_options(me.id(), me.machine(), layout_of(a),
                                           layout_of(b), layout_of(c), opt);

  TaskPlan plan = build_task_plan(me, a, b, c, tuned);
  const int lookahead = opt.nonblocking ? tuned.lookahead : 0;

  // Apply beta to my local C block once, before accumulation.
  if (!c.phantom() && opt.beta != 1.0) {
    MatrixView mine = c.local_view(me);
    if (opt.beta == 0.0) {
      mine.fill(0.0);
    } else {
      for (index_t j = 0; j < mine.cols(); ++j)
        for (index_t i = 0; i < mine.rows(); ++i) mine(i, j) *= opt.beta;
    }
  }

  SRUMMA_REQUIRE(tuned.lookahead >= 1 && tuned.lookahead <= 64,
                 "srumma: lookahead must be in [1, 64]");

  // Permanent-failure preparation (docs/FAULTS.md §7): when a kill is
  // configured, mirror the operand panels and the beta-applied C onto each
  // rank's buddy domain and deposit the plan for adoption BEFORE arming
  // the kill hooks — a domain can then never die with unrecoverable state.
  fault::FaultPlane* fp = me.team().faults();
  const bool kill_active = fp != nullptr && fp->kill_enabled();
  std::optional<engine::RecoveryGuard> recovery;
  if (kill_active) {
    recovery.emplace(me);
    // Split-phase mirror of all three matrices: all replica segments are
    // allocated first (allocation is a collective with a barrier, which no
    // in-flight get may cross), then the three block gets overlap on the
    // wire and one publication barrier covers them all.  With beta == 0
    // the C mirror carries no information (the post-beta snapshot is all
    // zeros and adoption recomputes every element), so only the replica
    // segment is allocated.
    a.replicate_alloc(me);
    b.replicate_alloc(me);
    c.replicate_alloc(me);
    RmaHandle ra = a.replicate_nb(me);
    RmaHandle rb = b.replicate_nb(me);
    RmaHandle rc = c.replicate_nb(me, /*mirror=*/tuned.beta != 0.0);
    a.replicate_finish(me, ra);
    b.replicate_finish(me, rb);
    c.replicate_finish(me, rc);
    me.barrier();
    recovery->deposit(me, plan, tuned);
    fp->arm_kills();
  }

  // Executor dispatch: the dependency-driven engine replaces the rest of
  // this function's static pipeline with per-task operand ownership,
  // out-of-order execution across C tiles and intra-domain work stealing
  // (src/engine, docs/ENGINE.md).  Both executors produce bitwise-identical
  // C; the engine's modeled timing may vary run to run.
  if (engine::selected(tuned.engine)) {
    engine::run_plan(me, a, b, c, tuned, lookahead, plan);
    if (recovery) recovery->run(me, a, b, c);
    const index_t em = c.rows();
    const index_t en = c.cols();
    return collect_result(me, start_vt, my_start,
                          gemm_flops(static_cast<double>(em),
                                     static_cast<double>(en),
                                     static_cast<double>(plan.k_total)));
  }

  // Pipeline state (the paper's B1/B2 double buffer, generalized to a
  // prefetch depth of `lookahead`).  B patches are unique per task, so a
  // (lookahead+1)-deep rotation is safe: task t's B slot is not rewritten
  // before compute(t).  A patches may be *reused* by several in-flight
  // tasks (Section 3.1's locality consideration), so A states are evicted
  // by last-user age instead of rotation: a pool of lookahead+2 states
  // always contains one whose readers have all been computed.
  const std::size_t n_slots = static_cast<std::size_t>(lookahead) + 1;
  std::vector<OperandState> a_state(n_slots + 1);
  std::vector<OperandState> b_state(n_slots);
  std::vector<std::size_t> slot_a(n_slots, 0);

  // Open the cooperative block cache for this multiply (the entry barrier
  // above is the inter-multiply separator begin_epoch requires).  The
  // default capacity covers the whole domain's pipeline footprint — every
  // mate's worst-case operand slots — so single-flight sharing is never
  // starved by its own working set.  A and B may in principle live on
  // different runtimes; open each distinct cache once.
  cache::BlockCacheSet* cache_sets[2] = {a.rma().block_cache(),
                                         b.rma().block_cache()};
  if (cache_sets[1] == cache_sets[0]) cache_sets[1] = nullptr;
  const std::uint64_t cache_default_cap =
      static_cast<std::uint64_t>(me.machine().domain_size()) *
      (2 * static_cast<std::uint64_t>(lookahead) + 3) *
      std::max(static_cast<std::uint64_t>(plan.max_a_m) *
                   static_cast<std::uint64_t>(plan.max_a_n),
               static_cast<std::uint64_t>(plan.max_b_m) *
                   static_cast<std::uint64_t>(plan.max_b_n)) *
      sizeof(double);
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->begin_epoch(me, cache_default_cap);

  // Mutable working copy: a task whose fetch exhausts its RMA retries is
  // re-enqueued at the tail (graceful degradation instead of aborting the
  // whole multiply), so the list can grow while we walk it.
  std::vector<Task> tasks = plan.tasks;
  const std::size_t requeue_cap = 4 * plan.tasks.size() + 16;
  std::size_t requeues = 0;

  // Fail-stop hooks: a configured kill trips at this rank's next prefetch
  // issue or chain (task) advance; once the domain is killed the rank
  // becomes a zombie — it stops issuing and executing, drains what is in
  // flight, and keeps joining collectives.
  const auto killed_now = [&] {
    return kill_active && fp->domain_killed(me.domain());
  };

  auto issue = [&](std::size_t t_idx) {
    if (kill_active) {
      fp->reach_kill_point(fault::KillPoint::Prefetch, me.domain(),
                           me.clock().now());
      if (killed_now()) return;  // fail-stop: no new fetches
    }
    const Task& t = tasks[t_idx];
    const std::size_t slot = t_idx % n_slots;
    if (trace::Tracer* tr = me.tracer())
      tr->instant(me.id(), trace::Phase::TaskIssue, me.clock().now(), t_idx);
    // Fetches issued past the original plan belong to requeued tail copies:
    // each one is an operand reissue (the engine's re-arm counts the same
    // way, so the recovery effort of the two executors is comparable).
    if (t_idx >= plan.tasks.size()) me.trace().task_reissues += 1;
    // A: reuse a live matching patch if the policy allows.
    std::ptrdiff_t ai = -1;
    if (opt.ordering.a_reuse) {
      for (std::size_t i = 0; i < a_state.size(); ++i) {
        if (a_state[i].matches(t.a_i0, t.a_j0, t.a_m, t.a_n)) {
          ai = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
    }
    if (ai < 0) {
      // Evict the state whose last reader is oldest; with pool size
      // lookahead+2 it is guaranteed to have been computed already.
      ai = 0;
      for (std::size_t i = 1; i < a_state.size(); ++i) {
        if (a_state[i].last_user < a_state[static_cast<std::size_t>(ai)].last_user)
          ai = static_cast<std::ptrdiff_t>(i);
      }
      // issue(t_idx) runs in iteration max(0, t_idx - lookahead); every
      // task below that index has been computed, so its buffers are free.
      const std::ptrdiff_t compute_floor =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(t_idx) -
                                          lookahead);
      SRUMMA_ASSERT(a_state[static_cast<std::size_t>(ai)].last_user <
                        compute_floor,
                    "srumma pipeline: evicting an A buffer still in flight");
      acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor,
              a_state[static_cast<std::size_t>(ai)]);
    }
    a_state[static_cast<std::size_t>(ai)].last_user =
        static_cast<std::ptrdiff_t>(t_idx);
    slot_a[slot] = static_cast<std::size_t>(ai);
    acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor,
            b_state[slot]);
  };

  std::size_t next_issue = 0;
  for (std::size_t t_idx = 0; t_idx < tasks.size(); ++t_idx) {
    if (kill_active) {
      fp->reach_kill_point(fault::KillPoint::Chain, me.domain(),
                           me.clock().now());
      if (killed_now()) break;  // fail-stop at a task boundary: drain below
    }
    // Keep up to `lookahead` tasks in flight beyond the current one.
    while (next_issue < tasks.size() &&
           next_issue <= t_idx + static_cast<std::size_t>(lookahead)) {
      issue(next_issue++);
    }
    // A Prefetch kill trips inside issue(): this task's operands were never
    // fetched, so bail to the drain rather than compute on empty slots.
    if (killed_now()) break;
    // By value: a requeue below push_backs into `tasks`, which may
    // reallocate out from under a reference.
    const Task t = tasks[t_idx];
    // Operand wait + verify + dgemm for this task (issue() above is outside:
    // issued fetches belong to the async comm tracks).
    trace::SpanGuard task_span(me.tracer(), me.id(), trace::Phase::Task,
                               me.clock(), t_idx);
    const std::size_t slot = t_idx % n_slots;
    OperandState& as = a_state[slot_a[slot]];
    OperandState& bs = b_state[slot];
    const bool a_fetched = as.handle.pending;
    const bool b_fetched = bs.handle.pending;
    if (a_fetched && !a.try_wait(me, as.handle)) as.failed = true;
    if (b_fetched && !b.try_wait(me, bs.handle)) bs.failed = true;
    if (opt.verify_checksums) {
      // Only freshly completed fetches: a reused A patch was verified when
      // its first consumer waited on it, and the panels are read-only for
      // the rest of the multiply.
      if (a_fetched) verify_operand(me, a, as);
      if (b_fetched) verify_operand(me, b, bs);
    }
    finish_cache(me, a, as, a_fetched, opt.verify_checksums);
    finish_cache(me, b, bs, b_fetched, opt.verify_checksums);
    if (as.failed || bs.failed) {
      // Exhausted retries on an operand: push the task to the tail and move
      // on — the pipeline refetches it with fresh handles later (each retry
      // of the tail copy draws new fault decisions).  The failed flag stays
      // on the state so in-flight A-reuse consumers of the same patch also
      // requeue rather than compute on unreliable data.
      SRUMMA_REQUIRE(requeues < requeue_cap,
                     "srumma: task requeue budget exhausted — transfers keep "
                     "failing after RMA retries");
      ++requeues;
      me.trace().task_requeues += 1;
      if (trace::Tracer* tr = me.tracer())
        tr->instant(me.id(), trace::Phase::Requeue, me.clock().now(), t_idx);
      tasks.push_back(t);
      continue;
    }

    if (!c.phantom()) {
      MatrixView c_tile = c.local_view(me).block(t.ci, t.cj, t.cm, t.cn);
      if (a.rma().checker() != nullptr) {
        // Declare dgemm's operand reads and result write: the checker
        // verifies no pending fetch is still filling a buffer this kernel
        // consumes, and joins direct views to the epoch conflict map.
        a.rma().declare_compute_read(me, as.view.data(), as.view.rows(),
                                     as.view.cols(), as.view.ld());
        b.rma().declare_compute_read(me, bs.view.data(), bs.view.rows(),
                                     bs.view.cols(), bs.view.ld());
        c.rma().declare_compute_write(me, c_tile.data(), c_tile.rows(),
                                      c_tile.cols(), c_tile.ld());
      }
      blas::gemm(opt.ta, opt.tb, opt.alpha, as.view, bs.view, 1.0, c_tile);
    }
    me.charge_gemm(t.cm, t.cn, t.kk,
                   std::min(as.rate_factor, bs.rate_factor));
    // Classify the block product at execution time (not per acquire): both
    // operands direct -> a direct task, anything else paid a copy buffer.
    // Keeps copy_tasks + direct_tasks == executed block products exact,
    // even under requeues, reissues and A-patch reuse.
    if (as.direct && bs.direct) {
      me.trace().direct_tasks += 1;
    } else {
      me.trace().copy_tasks += 1;
    }
  }

  if (killed_now()) {
    // Zombie drain: complete in-flight handles and release cache refs so
    // the domain's cache/checker state stays balanced; the data (if any) is
    // discarded.  Tasks this rank never committed are adopted by survivors
    // from the buddy replicas in the recovery phase below.
    const auto drain = [&](DistMatrix& mat, OperandState& st) {
      const bool fetched = st.handle.pending;
      if (fetched) mat.try_wait(me, st.handle);
      finish_cache(me, mat, st, fetched, false);
    };
    for (OperandState& st : a_state) drain(a, st);
    for (OperandState& st : b_state) drain(b, st);
  }

  // Pipeline buffer footprint: what the copy-path acquires grew the
  // operand states to (zero when every task ran on direct views).
  {
    std::uint64_t bytes = 0;
    for (const OperandState& st : a_state) bytes += st.cap_bytes;
    for (const OperandState& st : b_state) bytes += st.cap_bytes;
    // High-water mark: never let a later, smaller multiply erase the peak
    // an earlier one established on this rank.
    me.trace().buffer_bytes_peak = std::max(me.trace().buffer_bytes_peak, bytes);
  }

  // Close the cache epoch: the last rank out invalidates the domain's
  // entries (A and B are only guaranteed read-only inside this multiply).
  // collect_result's barriers separate this from the next begin_epoch.
  // With a kill configured the entries are kept warm through the close:
  // the recovery epoch that follows is the same read-only quiescent
  // period, and adoption replays the panels survivors already fetched.
  // (kill_active is rank-uniform; whether the kill TRIPPED is not yet.)
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->end_epoch(me, /*keep_warm=*/kill_active);

  if (recovery) recovery->run(me, a, b, c);

  const index_t m = c.rows();
  const index_t n = c.cols();
  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(m),
                                   static_cast<double>(n),
                                   static_cast<double>(plan.k_total)));
}

}  // namespace srumma
