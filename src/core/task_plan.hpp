#pragma once
// SRUMMA task decomposition and ordering (paper Section 3.1, steps 1-2).
//
// Owner-computes: the rank holding block C_ij performs every product that
// accumulates into it.  The K dimension is cut at every A-panel and B-panel
// owner boundary (so each task's A and B patches each have a well-defined
// primary owner), then optionally re-chunked to opt.k_chunk; the local C
// block is optionally tiled to opt.c_chunk.  One task is one
//     C_tile += op(A)[rows(C_tile), kseg] * op(B)[kseg, cols(C_tile)]
// block product; the patches are fetched with generalized gets (or viewed
// in place within the shared-memory domain).
//
// The ordering pass is pure and separately unit-tested: shared-memory tasks
// first, diagonal-shift rotation of the remote run, A-reuse grouping via
// the generation order.

#include <optional>
#include <vector>

#include "core/options.hpp"
#include "dist/dist_matrix.hpp"
#include "machine/machine.hpp"

namespace srumma {

/// Metadata-only mirror of a DistMatrix's distribution: dimensions, process
/// grid and 1-D block maps, answering exactly the ownership and domain
/// queries the plan builder asks a live matrix.  The static analyzer
/// (src/analysis, srumma-analyze) builds plans from layouts alone — no
/// allocation, no team, no virtual clock — and because the live overloads
/// below delegate to the layout-based ones, the analyzed plan is the plan
/// a run would execute, not a reimplementation that could drift.
struct MatrixLayout {
  index_t m = 0;  ///< stored rows
  index_t n = 0;  ///< stored cols
  ProcGrid grid;
  BlockDist1D rows{0, 1};
  BlockDist1D cols{0, 1};

  MatrixLayout() = default;
  MatrixLayout(index_t m_, index_t n_, ProcGrid g)
      : m(m_), n(n_), grid(g), rows(m_, g.p), cols(n_, g.q) {}

  [[nodiscard]] int owner(index_t i, index_t j) const {
    return grid.rank_of(rows.owner(i), cols.owner(j));
  }
  [[nodiscard]] index_t block_row_start(int rank) const {
    return rows.start(grid.coords_of(rank).first);
  }
  [[nodiscard]] index_t block_rows(int rank) const {
    return rows.count(grid.coords_of(rank).first);
  }
  [[nodiscard]] index_t block_col_start(int rank) const {
    return cols.start(grid.coords_of(rank).second);
  }
  [[nodiscard]] index_t block_cols(int rank) const {
    return cols.count(grid.coords_of(rank).second);
  }
  /// Every owner block the rectangle touches lies in `rank`'s domain
  /// (mirrors DistMatrix::rect_in_domain; empty rectangles are in-domain).
  [[nodiscard]] bool rect_in_domain(const MachineModel& mm, int rank,
                                    index_t i0, index_t j0, index_t mi,
                                    index_t nj) const;
  /// The rectangle lies within one owner block AND that owner is in
  /// `rank`'s domain (mirrors DistMatrix::single_owner_in_domain — the
  /// Direct-flavor reach-through eligibility test).
  [[nodiscard]] std::optional<int> single_owner_in_domain(
      const MachineModel& mm, int rank, index_t i0, index_t j0, index_t mi,
      index_t nj) const;
};

/// The layout of a live matrix (for feeding the pure overloads below).
[[nodiscard]] MatrixLayout layout_of(const DistMatrix& m);

/// One block product assigned to this rank.
struct Task {
  // C tile, relative to my local C block.
  index_t ci = 0, cj = 0, cm = 0, cn = 0;
  // K segment in global coordinates.
  index_t k0 = 0, kk = 0;
  // A and B patches in *stored* coordinates (transposition already applied
  // to the rectangle, not to the data).
  index_t a_i0 = 0, a_j0 = 0, a_m = 0, a_n = 0;
  index_t b_i0 = 0, b_j0 = 0, b_m = 0, b_n = 0;
  // Locality classification for ordering and flavor selection.
  bool a_in_domain = false;
  bool b_in_domain = false;
  int a_owner = -1;      ///< owner of the A patch's upper-left element
  int b_owner = -1;
  int a_owner_col = -1;  ///< grid column of a_owner in A's grid

  [[nodiscard]] bool in_domain() const { return a_in_domain && b_in_domain; }
  [[nodiscard]] bool same_a_patch(const Task& o) const {
    return a_i0 == o.a_i0 && a_j0 == o.a_j0 && a_m == o.a_m && a_n == o.a_n;
  }
};

struct TaskPlan {
  std::vector<Task> tasks;
  // Buffer sizing: maximum stored-coordinate patch extents over all tasks.
  index_t max_a_m = 0, max_a_n = 0;
  index_t max_b_m = 0, max_b_n = 0;
  index_t k_total = 0;  ///< inner dimension of the multiply
};

/// Cut [0, k) at every boundary of both 1-D distributions, then re-chunk
/// segments longer than k_chunk (0 = no re-chunking).  Returns segment
/// start offsets plus a final sentinel k.
[[nodiscard]] std::vector<index_t> k_segment_bounds(const BlockDist1D& a_axis,
                                                    const BlockDist1D& b_axis,
                                                    index_t k_chunk);

/// Split [0, n) into tiles of at most `chunk` (0 = single tile).  Returns
/// tile start offsets plus a final sentinel n.
[[nodiscard]] std::vector<index_t> tile_bounds(index_t n, index_t chunk);

/// Auto-tuned K block size: ~4 pipeline tasks per K-axis owner segment
/// keeps the first (unoverlapped) get small and the later gets hidden,
/// without dropping below a latency-amortizing floor.  The divisor is the
/// actual K-axis owner count of the stored operands (k_segment_bounds cuts
/// there), *not* C's grid edge — on nonsquare grids and transposed
/// operands the two differ and the grid edge mis-sizes the pipeline.
[[nodiscard]] index_t auto_k_chunk(const DistMatrix& a, const DistMatrix& b,
                                   blas::Trans ta, blas::Trans tb);
[[nodiscard]] index_t auto_k_chunk(const MatrixLayout& a, const MatrixLayout& b,
                                   blas::Trans ta, blas::Trans tb);

/// Resolve the auto-tuned option fields exactly as srumma_multiply does:
/// k_chunk from the K-axis owner segmentation, lookahead from
/// SRUMMA_LOOKAHEAD or the latency-bandwidth product, and the
/// max_buffer_bytes shrink loop over (c_chunk, k_chunk).  Pure in the
/// machine/layout inputs (the env override is deliberate: the analyzer must
/// see the same pipeline depth the run would use).  Tuning is per rank —
/// block extents differ — so team-wide static bounds take the max.
[[nodiscard]] SrummaOptions tune_options(int rank, const MachineModel& mm,
                                         const MatrixLayout& a,
                                         const MatrixLayout& b,
                                         const MatrixLayout& c,
                                         const SrummaOptions& opt);

/// Build this rank's task list in generation order: A-reuse policy picks
/// the loop nest (ci, k, cj) so consecutive tasks share the A patch,
/// otherwise (ci, cj, k).
[[nodiscard]] TaskPlan build_task_plan(Rank& me, const DistMatrix& a,
                                       const DistMatrix& b,
                                       const DistMatrix& c,
                                       const SrummaOptions& opt);

/// Metadata-only overload: the plan `rank` would build against the given
/// layouts and machine.  The live overload above delegates here, so the two
/// can never disagree.
[[nodiscard]] TaskPlan build_task_plan(int rank, const MachineModel& mm,
                                       const MatrixLayout& a,
                                       const MatrixLayout& b,
                                       const MatrixLayout& c,
                                       const SrummaOptions& opt);

/// Reorder in place per the policy.  `diag_col` is the A-grid column this
/// rank's diagonal-shift rotation should start fetching from (pi mod
/// A.grid.q); pure so it can be property-tested.  a_group additionally
/// buckets the remote run by A-patch identity in first-occurrence order,
/// repairing the one run the rotation may have split.
void order_tasks(std::vector<Task>& tasks, const OrderingPolicy& policy,
                 int diag_col);

}  // namespace srumma
