#pragma once
// SRUMMA task decomposition and ordering (paper Section 3.1, steps 1-2).
//
// Owner-computes: the rank holding block C_ij performs every product that
// accumulates into it.  The K dimension is cut at every A-panel and B-panel
// owner boundary (so each task's A and B patches each have a well-defined
// primary owner), then optionally re-chunked to opt.k_chunk; the local C
// block is optionally tiled to opt.c_chunk.  One task is one
//     C_tile += op(A)[rows(C_tile), kseg] * op(B)[kseg, cols(C_tile)]
// block product; the patches are fetched with generalized gets (or viewed
// in place within the shared-memory domain).
//
// The ordering pass is pure and separately unit-tested: shared-memory tasks
// first, diagonal-shift rotation of the remote run, A-reuse grouping via
// the generation order.

#include <vector>

#include "core/options.hpp"
#include "dist/dist_matrix.hpp"

namespace srumma {

/// One block product assigned to this rank.
struct Task {
  // C tile, relative to my local C block.
  index_t ci = 0, cj = 0, cm = 0, cn = 0;
  // K segment in global coordinates.
  index_t k0 = 0, kk = 0;
  // A and B patches in *stored* coordinates (transposition already applied
  // to the rectangle, not to the data).
  index_t a_i0 = 0, a_j0 = 0, a_m = 0, a_n = 0;
  index_t b_i0 = 0, b_j0 = 0, b_m = 0, b_n = 0;
  // Locality classification for ordering and flavor selection.
  bool a_in_domain = false;
  bool b_in_domain = false;
  int a_owner = -1;      ///< owner of the A patch's upper-left element
  int b_owner = -1;
  int a_owner_col = -1;  ///< grid column of a_owner in A's grid

  [[nodiscard]] bool in_domain() const { return a_in_domain && b_in_domain; }
  [[nodiscard]] bool same_a_patch(const Task& o) const {
    return a_i0 == o.a_i0 && a_j0 == o.a_j0 && a_m == o.a_m && a_n == o.a_n;
  }
};

struct TaskPlan {
  std::vector<Task> tasks;
  // Buffer sizing: maximum stored-coordinate patch extents over all tasks.
  index_t max_a_m = 0, max_a_n = 0;
  index_t max_b_m = 0, max_b_n = 0;
  index_t k_total = 0;  ///< inner dimension of the multiply
};

/// Cut [0, k) at every boundary of both 1-D distributions, then re-chunk
/// segments longer than k_chunk (0 = no re-chunking).  Returns segment
/// start offsets plus a final sentinel k.
[[nodiscard]] std::vector<index_t> k_segment_bounds(const BlockDist1D& a_axis,
                                                    const BlockDist1D& b_axis,
                                                    index_t k_chunk);

/// Split [0, n) into tiles of at most `chunk` (0 = single tile).  Returns
/// tile start offsets plus a final sentinel n.
[[nodiscard]] std::vector<index_t> tile_bounds(index_t n, index_t chunk);

/// Auto-tuned K block size: ~4 pipeline tasks per K-axis owner segment
/// keeps the first (unoverlapped) get small and the later gets hidden,
/// without dropping below a latency-amortizing floor.  The divisor is the
/// actual K-axis owner count of the stored operands (k_segment_bounds cuts
/// there), *not* C's grid edge — on nonsquare grids and transposed
/// operands the two differ and the grid edge mis-sizes the pipeline.
[[nodiscard]] index_t auto_k_chunk(const DistMatrix& a, const DistMatrix& b,
                                   blas::Trans ta, blas::Trans tb);

/// Build this rank's task list in generation order: A-reuse policy picks
/// the loop nest (ci, k, cj) so consecutive tasks share the A patch,
/// otherwise (ci, cj, k).
[[nodiscard]] TaskPlan build_task_plan(Rank& me, const DistMatrix& a,
                                       const DistMatrix& b,
                                       const DistMatrix& c,
                                       const SrummaOptions& opt);

/// Reorder in place per the policy.  `diag_col` is the A-grid column this
/// rank's diagonal-shift rotation should start fetching from (pi mod
/// A.grid.q); pure so it can be property-tested.  a_group additionally
/// buckets the remote run by A-patch identity in first-occurrence order,
/// repairing the one run the rotation may have split.
void order_tasks(std::vector<Task>& tasks, const OrderingPolicy& policy,
                 int diag_col);

}  // namespace srumma
