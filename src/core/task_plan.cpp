#include "core/task_plan.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "util/error.hpp"

namespace srumma {

std::vector<index_t> k_segment_bounds(const BlockDist1D& a_axis,
                                      const BlockDist1D& b_axis,
                                      index_t k_chunk) {
  SRUMMA_REQUIRE(a_axis.total() == b_axis.total(),
                 "k_segment_bounds: axes disagree on K");
  SRUMMA_REQUIRE(k_chunk >= 0, "k_chunk must be non-negative");
  const index_t k = a_axis.total();
  // A zero-length axis has no segments: the multiply degenerates to a beta
  // scaling of C, and every downstream consumer (build_task_plan's nseg,
  // the refinement loop below) expects a single bound, not a pair.
  if (k == 0) return {0};
  std::vector<index_t> bounds;
  bounds.push_back(0);
  bounds.push_back(k);
  // Interior owner boundaries of both axes.  A part with no elements
  // (k < parts) contributes no boundary: its start duplicates a
  // neighbour's, and with it the first/last non-empty parts of the axis
  // would emit degenerate leading/trailing cuts at 0 or k.  Skipping empty
  // parts makes the dedup below purely about boundaries the two axes
  // share, never about degenerate segments.
  for (const BlockDist1D* axis : {&a_axis, &b_axis}) {
    for (int p = 0; p < axis->parts(); ++p) {
      if (axis->count(p) > 0) bounds.push_back(axis->start(p));
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  if (k_chunk > 0) {
    std::vector<index_t> refined;
    for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
      for (index_t x = bounds[s]; x < bounds[s + 1]; x += k_chunk)
        refined.push_back(x);
    }
    refined.push_back(k);
    bounds = std::move(refined);
  }
  return bounds;
}

std::vector<index_t> tile_bounds(index_t n, index_t chunk) {
  SRUMMA_REQUIRE(n >= 0 && chunk >= 0, "tile_bounds: negative argument");
  std::vector<index_t> bounds;
  if (chunk == 0) chunk = std::max<index_t>(n, 1);
  for (index_t x = 0; x < n; x += chunk) bounds.push_back(x);
  bounds.push_back(n);
  return bounds;
}

index_t auto_k_chunk(const DistMatrix& a, const DistMatrix& b, blas::Trans ta,
                     blas::Trans tb) {
  const BlockDist1D& a_k = ta == blas::Trans::Yes ? a.row_dist() : a.col_dist();
  const BlockDist1D& b_k = tb == blas::Trans::Yes ? b.col_dist() : b.row_dist();
  SRUMMA_REQUIRE(a_k.total() == b_k.total(),
                 "auto_k_chunk: operand K axes disagree");
  const index_t k = a_k.total();
  // The k_segment_bounds cut uses the union of both axes' owner
  // boundaries; the finer of the two bounds the number of first-touch gets.
  const index_t k_owners = std::max(a_k.parts(), b_k.parts());
  return std::clamp<index_t>(k / (4 * k_owners), 64, 512);
}

TaskPlan build_task_plan(Rank& me, const DistMatrix& a, const DistMatrix& b,
                         const DistMatrix& c, const SrummaOptions& opt) {
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;

  // Conformance: op(A) is m x k, op(B) is k x n, C is m x n.
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = tra ? a.rows() : a.cols();
  SRUMMA_REQUIRE((tra ? a.cols() : a.rows()) == m,
                 "srumma: op(A) row count must match C rows");
  SRUMMA_REQUIRE((trb ? b.rows() : b.cols()) == n,
                 "srumma: op(B) column count must match C cols");
  SRUMMA_REQUIRE((trb ? b.cols() : b.rows()) == k,
                 "srumma: op(A) and op(B) inner dimensions must conform");

  // K axis distributions of the stored matrices.
  const BlockDist1D& a_k_axis = tra ? a.row_dist() : a.col_dist();
  const BlockDist1D& b_k_axis = trb ? b.col_dist() : b.row_dist();

  const std::vector<index_t> ks =
      k_segment_bounds(a_k_axis, b_k_axis, opt.k_chunk);

  // My C block in global coordinates.
  const index_t r0 = c.block_row_start(me.id());
  const index_t c0 = c.block_col_start(me.id());
  const index_t cm_all = c.block_rows(me.id());
  const index_t cn_all = c.block_cols(me.id());
  const std::vector<index_t> is = tile_bounds(cm_all, opt.c_chunk);
  const std::vector<index_t> js = tile_bounds(cn_all, opt.c_chunk);

  TaskPlan plan;
  plan.k_total = k;

  auto emit = [&](index_t ti, index_t tj, std::size_t s) {
    Task t;
    t.ci = is[ti];
    t.cm = is[ti + 1] - is[ti];
    t.cj = js[tj];
    t.cn = js[tj + 1] - js[tj];
    t.k0 = ks[s];
    t.kk = ks[s + 1] - ks[s];
    if (t.cm == 0 || t.cn == 0 || t.kk == 0) return;

    const index_t gi = r0 + t.ci;  // global C-row range of the tile
    const index_t gj = c0 + t.cj;  // global C-col range of the tile
    // A patch: op(A)[gi : gi+cm, k0 : k0+kk] in stored coordinates.
    if (tra) {
      t.a_i0 = t.k0; t.a_j0 = gi; t.a_m = t.kk; t.a_n = t.cm;
    } else {
      t.a_i0 = gi; t.a_j0 = t.k0; t.a_m = t.cm; t.a_n = t.kk;
    }
    // B patch: op(B)[k0 : k0+kk, gj : gj+cn] in stored coordinates.
    if (trb) {
      t.b_i0 = gj; t.b_j0 = t.k0; t.b_m = t.cn; t.b_n = t.kk;
    } else {
      t.b_i0 = t.k0; t.b_j0 = gj; t.b_m = t.kk; t.b_n = t.cn;
    }
    t.a_in_domain = a.rect_in_domain(me, t.a_i0, t.a_j0, t.a_m, t.a_n);
    t.b_in_domain = b.rect_in_domain(me, t.b_i0, t.b_j0, t.b_m, t.b_n);
    t.a_owner = a.owner(t.a_i0, t.a_j0);
    t.b_owner = b.owner(t.b_i0, t.b_j0);
    t.a_owner_col = a.grid().coords_of(t.a_owner).second;

    plan.max_a_m = std::max(plan.max_a_m, t.a_m);
    plan.max_a_n = std::max(plan.max_a_n, t.a_n);
    plan.max_b_m = std::max(plan.max_b_m, t.b_m);
    plan.max_b_n = std::max(plan.max_b_n, t.b_n);
    plan.tasks.push_back(t);
  };

  const std::size_t nseg = ks.size() - 1;
  if (opt.ordering.a_reuse) {
    // (ci, k, cj): consecutive tasks share the A patch across C tiles.
    for (std::size_t ti = 0; ti + 1 < is.size(); ++ti)
      for (std::size_t s = 0; s < nseg; ++s)
        for (std::size_t tj = 0; tj + 1 < js.size(); ++tj)
          emit(static_cast<index_t>(ti), static_cast<index_t>(tj), s);
  } else {
    for (std::size_t ti = 0; ti + 1 < is.size(); ++ti)
      for (std::size_t tj = 0; tj + 1 < js.size(); ++tj)
        for (std::size_t s = 0; s < nseg; ++s)
          emit(static_cast<index_t>(ti), static_cast<index_t>(tj), s);
  }

  order_tasks(plan.tasks, opt.ordering,
              c.grid().coords_of(me.id()).first % a.grid().q);
  return plan;
}

void order_tasks(std::vector<Task>& tasks, const OrderingPolicy& policy,
                 int diag_col) {
  if (tasks.empty()) return;

  auto remote_begin = tasks.begin();
  if (policy.shm_first) {
    remote_begin = std::stable_partition(
        tasks.begin(), tasks.end(), [](const Task& t) { return t.in_domain(); });
  }
  if (policy.diagonal_shift && remote_begin != tasks.end()) {
    // Start the remote run at a task fetching from the "diagonal" A owner
    // column, so the ranks of one node hit distinct source nodes first
    // (paper Fig. 4).  Rotation preserves the relative cyclic order (and
    // thus A-reuse runs, up to the single split point).
    auto pivot = std::find_if(remote_begin, tasks.end(), [&](const Task& t) {
      return t.a_owner_col == diag_col;
    });
    if (pivot != tasks.end() && pivot != remote_begin) {
      std::rotate(remote_begin, pivot, tasks.end());
    }
  }
  if (policy.a_group && remote_begin != tasks.end()) {
    // Make every set of remote tasks sharing one A patch contiguous, keyed
    // by first occurrence in the (possibly rotated) run.  The rotation can
    // cut exactly one A-reuse run in two, with the severed head at the
    // tail; the stable regroup splices it back without disturbing the
    // inter-patch order the rotation established.  Adjacent same-patch
    // fetches also arrive at the cooperative block cache back to back,
    // turning the duplicate gets of domain mates into in-flight joins.
    std::map<std::array<index_t, 4>, std::size_t> first_seen;
    for (auto it = remote_begin; it != tasks.end(); ++it) {
      first_seen.emplace(std::array{it->a_i0, it->a_j0, it->a_m, it->a_n},
                         first_seen.size());
    }
    std::stable_sort(remote_begin, tasks.end(),
                     [&](const Task& x, const Task& y) {
                       return first_seen.at(
                                  {x.a_i0, x.a_j0, x.a_m, x.a_n}) <
                              first_seen.at({y.a_i0, y.a_j0, y.a_m, y.a_n});
                     });
  }
}

}  // namespace srumma
