#include "core/task_plan.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>

#include "util/error.hpp"

namespace srumma {

bool MatrixLayout::rect_in_domain(const MachineModel& mm, int rank, index_t i0,
                                  index_t j0, index_t mi, index_t nj) const {
  SRUMMA_REQUIRE(i0 >= 0 && j0 >= 0 && mi >= 0 && nj >= 0 && i0 + mi <= m &&
                     j0 + nj <= n,
                 "MatrixLayout: rectangle out of range");
  if (mi == 0 || nj == 0) return true;
  const int pi_lo = rows.owner(i0);
  const int pi_hi = rows.owner(i0 + mi - 1);
  const int pj_lo = cols.owner(j0);
  const int pj_hi = cols.owner(j0 + nj - 1);
  for (int pi = pi_lo; pi <= pi_hi; ++pi)
    for (int pj = pj_lo; pj <= pj_hi; ++pj)
      if (!mm.same_domain(rank, grid.rank_of(pi, pj))) return false;
  return true;
}

std::optional<int> MatrixLayout::single_owner_in_domain(const MachineModel& mm,
                                                        int rank, index_t i0,
                                                        index_t j0, index_t mi,
                                                        index_t nj) const {
  SRUMMA_REQUIRE(i0 >= 0 && j0 >= 0 && mi >= 0 && nj >= 0 && i0 + mi <= m &&
                     j0 + nj <= n,
                 "MatrixLayout: rectangle out of range");
  if (mi == 0 || nj == 0) return std::nullopt;
  const int o = owner(i0, j0);
  if (owner(i0 + mi - 1, j0 + nj - 1) != o) return std::nullopt;
  if (!mm.same_domain(rank, o)) return std::nullopt;
  return o;
}

MatrixLayout layout_of(const DistMatrix& m) {
  MatrixLayout l;
  l.m = m.rows();
  l.n = m.cols();
  l.grid = m.grid();
  l.rows = m.row_dist();
  l.cols = m.col_dist();
  return l;
}

std::vector<index_t> k_segment_bounds(const BlockDist1D& a_axis,
                                      const BlockDist1D& b_axis,
                                      index_t k_chunk) {
  SRUMMA_REQUIRE(a_axis.total() == b_axis.total(),
                 "k_segment_bounds: axes disagree on K");
  SRUMMA_REQUIRE(k_chunk >= 0, "k_chunk must be non-negative");
  const index_t k = a_axis.total();
  // A zero-length axis has no segments: the multiply degenerates to a beta
  // scaling of C, and every downstream consumer (build_task_plan's nseg,
  // the refinement loop below) expects a single bound, not a pair.
  if (k == 0) return {0};
  std::vector<index_t> bounds;
  bounds.push_back(0);
  bounds.push_back(k);
  // Interior owner boundaries of both axes.  A part with no elements
  // (k < parts) contributes no boundary: its start duplicates a
  // neighbour's, and with it the first/last non-empty parts of the axis
  // would emit degenerate leading/trailing cuts at 0 or k.  Skipping empty
  // parts makes the dedup below purely about boundaries the two axes
  // share, never about degenerate segments.
  for (const BlockDist1D* axis : {&a_axis, &b_axis}) {
    for (int p = 0; p < axis->parts(); ++p) {
      if (axis->count(p) > 0) bounds.push_back(axis->start(p));
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  if (k_chunk > 0) {
    std::vector<index_t> refined;
    for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
      for (index_t x = bounds[s]; x < bounds[s + 1]; x += k_chunk)
        refined.push_back(x);
    }
    refined.push_back(k);
    bounds = std::move(refined);
  }
  return bounds;
}

std::vector<index_t> tile_bounds(index_t n, index_t chunk) {
  SRUMMA_REQUIRE(n >= 0 && chunk >= 0, "tile_bounds: negative argument");
  std::vector<index_t> bounds;
  if (chunk == 0) chunk = std::max<index_t>(n, 1);
  for (index_t x = 0; x < n; x += chunk) bounds.push_back(x);
  bounds.push_back(n);
  return bounds;
}

namespace {

index_t auto_k_chunk_axes(const BlockDist1D& a_k, const BlockDist1D& b_k) {
  SRUMMA_REQUIRE(a_k.total() == b_k.total(),
                 "auto_k_chunk: operand K axes disagree");
  const index_t k = a_k.total();
  // The k_segment_bounds cut uses the union of both axes' owner
  // boundaries; the finer of the two bounds the number of first-touch gets.
  const index_t k_owners = std::max(a_k.parts(), b_k.parts());
  return std::clamp<index_t>(k / (4 * k_owners), 64, 512);
}

}  // namespace

index_t auto_k_chunk(const DistMatrix& a, const DistMatrix& b, blas::Trans ta,
                     blas::Trans tb) {
  return auto_k_chunk_axes(
      ta == blas::Trans::Yes ? a.row_dist() : a.col_dist(),
      tb == blas::Trans::Yes ? b.col_dist() : b.row_dist());
}

index_t auto_k_chunk(const MatrixLayout& a, const MatrixLayout& b,
                     blas::Trans ta, blas::Trans tb) {
  return auto_k_chunk_axes(ta == blas::Trans::Yes ? a.rows : a.cols,
                           tb == blas::Trans::Yes ? b.cols : b.rows);
}

SrummaOptions tune_options(int rank, const MachineModel& mm,
                           const MatrixLayout& a, const MatrixLayout& b,
                           const MatrixLayout& c, const SrummaOptions& opt) {
  SrummaOptions tuned = opt;
  if (tuned.k_chunk == 0) {
    // Auto block size derived from the K-axis owner segmentation of the
    // stored operands (see auto_k_chunk).  This reproduces the paper's
    // empirically-tuned block size at the model level.
    tuned.k_chunk = auto_k_chunk(a, b, opt.ta, opt.tb);
  }

  if (tuned.lookahead == 0) {
    // Auto prefetch depth: SRUMMA_LOOKAHEAD wins; otherwise keep enough
    // patches in flight to cover the network's latency-bandwidth product
    // (one get's payload per slot), so the pipeline never drains while an
    // issue is still paying t_s.  A patch is roughly (local C extent,
    // capped by c_chunk) x k_chunk doubles.
    if (const char* env = std::getenv("SRUMMA_LOOKAHEAD")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      SRUMMA_REQUIRE(end != env && *end == '\0' && v >= 1 && v <= 64,
                     "SRUMMA_LOOKAHEAD must be an integer in [1, 64]");
      tuned.lookahead = static_cast<int>(v);
    } else {
      index_t est_rows =
          std::max({c.block_rows(rank), c.block_cols(rank), index_t{1}});
      if (tuned.c_chunk > 0) est_rows = std::min(est_rows, tuned.c_chunk);
      const double patch_bytes =
          static_cast<double>(est_rows) *
          static_cast<double>(std::max<index_t>(tuned.k_chunk, 1)) *
          static_cast<double>(sizeof(double));
      tuned.lookahead = std::clamp(
          static_cast<int>(
              std::ceil(mm.net_latency * mm.net_bw / patch_bytes)),
          1, 8);
    }
  }

  if (tuned.max_buffer_bytes > 0) {
    // Shrink the tiling until (lookahead+2) A patches + (lookahead+1) B
    // patches of the worst-case extents fit the budget.  Patch extents are
    // bounded by (c_chunk x k_chunk), so halve both until they fit (floor 8
    // to keep dgemm calls non-degenerate).
    const std::uint64_t slots =
        2 * static_cast<std::uint64_t>(tuned.lookahead) + 3;
    const index_t m_local = c.block_rows(rank);
    const index_t n_local = c.block_cols(rank);
    if (tuned.c_chunk == 0)
      tuned.c_chunk = std::max<index_t>(m_local, n_local);
    while (slots * static_cast<std::uint64_t>(
                       std::min(tuned.c_chunk,
                                std::max(m_local, n_local))) *
                   static_cast<std::uint64_t>(tuned.k_chunk) * sizeof(double) >
               tuned.max_buffer_bytes &&
           (tuned.c_chunk > 8 || tuned.k_chunk > 8)) {
      if (tuned.c_chunk > 8) tuned.c_chunk = (tuned.c_chunk + 1) / 2;
      if (tuned.k_chunk > 8) tuned.k_chunk = (tuned.k_chunk + 1) / 2;
    }
  }
  return tuned;
}

TaskPlan build_task_plan(Rank& me, const DistMatrix& a, const DistMatrix& b,
                         const DistMatrix& c, const SrummaOptions& opt) {
  // Delegate to the metadata-only builder: DistMatrix's ownership and
  // domain queries are pure functions of the layout and machine (its
  // rect_in_domain asks RmaRuntime::same_domain, which delegates to the
  // machine model), so this produces the identical plan.
  return build_task_plan(me.id(), me.machine(), layout_of(a), layout_of(b),
                         layout_of(c), opt);
}

TaskPlan build_task_plan(int rank, const MachineModel& mm,
                         const MatrixLayout& a, const MatrixLayout& b,
                         const MatrixLayout& c, const SrummaOptions& opt) {
  const bool tra = opt.ta == blas::Trans::Yes;
  const bool trb = opt.tb == blas::Trans::Yes;

  // Conformance: op(A) is m x k, op(B) is k x n, C is m x n.
  const index_t m = c.m;
  const index_t n = c.n;
  const index_t k = tra ? a.m : a.n;
  SRUMMA_REQUIRE((tra ? a.n : a.m) == m,
                 "srumma: op(A) row count must match C rows");
  SRUMMA_REQUIRE((trb ? b.m : b.n) == n,
                 "srumma: op(B) column count must match C cols");
  SRUMMA_REQUIRE((trb ? b.n : b.m) == k,
                 "srumma: op(A) and op(B) inner dimensions must conform");

  // K axis distributions of the stored matrices.
  const BlockDist1D& a_k_axis = tra ? a.rows : a.cols;
  const BlockDist1D& b_k_axis = trb ? b.cols : b.rows;

  const std::vector<index_t> ks =
      k_segment_bounds(a_k_axis, b_k_axis, opt.k_chunk);

  // My C block in global coordinates.
  const index_t r0 = c.block_row_start(rank);
  const index_t c0 = c.block_col_start(rank);
  const index_t cm_all = c.block_rows(rank);
  const index_t cn_all = c.block_cols(rank);
  const std::vector<index_t> is = tile_bounds(cm_all, opt.c_chunk);
  const std::vector<index_t> js = tile_bounds(cn_all, opt.c_chunk);

  TaskPlan plan;
  plan.k_total = k;

  auto emit = [&](std::size_t ti, std::size_t tj, std::size_t s) {
    Task t;
    t.ci = is[ti];
    t.cm = is[ti + 1] - is[ti];
    t.cj = js[tj];
    t.cn = js[tj + 1] - js[tj];
    t.k0 = ks[s];
    t.kk = ks[s + 1] - ks[s];
    if (t.cm == 0 || t.cn == 0 || t.kk == 0) return;

    const index_t gi = r0 + t.ci;  // global C-row range of the tile
    const index_t gj = c0 + t.cj;  // global C-col range of the tile
    // A patch: op(A)[gi : gi+cm, k0 : k0+kk] in stored coordinates.
    if (tra) {
      t.a_i0 = t.k0; t.a_j0 = gi; t.a_m = t.kk; t.a_n = t.cm;
    } else {
      t.a_i0 = gi; t.a_j0 = t.k0; t.a_m = t.cm; t.a_n = t.kk;
    }
    // B patch: op(B)[k0 : k0+kk, gj : gj+cn] in stored coordinates.
    if (trb) {
      t.b_i0 = gj; t.b_j0 = t.k0; t.b_m = t.cn; t.b_n = t.kk;
    } else {
      t.b_i0 = t.k0; t.b_j0 = gj; t.b_m = t.kk; t.b_n = t.cn;
    }
    t.a_in_domain = a.rect_in_domain(mm, rank, t.a_i0, t.a_j0, t.a_m, t.a_n);
    t.b_in_domain = b.rect_in_domain(mm, rank, t.b_i0, t.b_j0, t.b_m, t.b_n);
    t.a_owner = a.owner(t.a_i0, t.a_j0);
    t.b_owner = b.owner(t.b_i0, t.b_j0);
    t.a_owner_col = a.grid.coords_of(t.a_owner).second;

    plan.max_a_m = std::max(plan.max_a_m, t.a_m);
    plan.max_a_n = std::max(plan.max_a_n, t.a_n);
    plan.max_b_m = std::max(plan.max_b_m, t.b_m);
    plan.max_b_n = std::max(plan.max_b_n, t.b_n);
    plan.tasks.push_back(t);
  };

  const std::size_t nseg = ks.size() - 1;
  if (opt.ordering.a_reuse) {
    // (ci, k, cj): consecutive tasks share the A patch across C tiles.
    for (std::size_t ti = 0; ti + 1 < is.size(); ++ti)
      for (std::size_t s = 0; s < nseg; ++s)
        for (std::size_t tj = 0; tj + 1 < js.size(); ++tj)
          emit(ti, tj, s);
  } else {
    for (std::size_t ti = 0; ti + 1 < is.size(); ++ti)
      for (std::size_t tj = 0; tj + 1 < js.size(); ++tj)
        for (std::size_t s = 0; s < nseg; ++s)
          emit(ti, tj, s);
  }

  order_tasks(plan.tasks, opt.ordering,
              c.grid.coords_of(rank).first % a.grid.q);
  return plan;
}

void order_tasks(std::vector<Task>& tasks, const OrderingPolicy& policy,
                 int diag_col) {
  if (tasks.empty()) return;

  auto remote_begin = tasks.begin();
  if (policy.shm_first) {
    remote_begin = std::stable_partition(
        tasks.begin(), tasks.end(), [](const Task& t) { return t.in_domain(); });
  }
  if (policy.diagonal_shift && remote_begin != tasks.end()) {
    // Start the remote run at a task fetching from the "diagonal" A owner
    // column, so the ranks of one node hit distinct source nodes first
    // (paper Fig. 4).  Rotation preserves the relative cyclic order (and
    // thus A-reuse runs, up to the single split point).
    auto pivot = std::find_if(remote_begin, tasks.end(), [&](const Task& t) {
      return t.a_owner_col == diag_col;
    });
    if (pivot != tasks.end() && pivot != remote_begin) {
      std::rotate(remote_begin, pivot, tasks.end());
    }
  }
  if (policy.a_group && remote_begin != tasks.end()) {
    // Make every set of remote tasks sharing one A patch contiguous, keyed
    // by first occurrence in the (possibly rotated) run.  The rotation can
    // cut exactly one A-reuse run in two, with the severed head at the
    // tail; the stable regroup splices it back without disturbing the
    // inter-patch order the rotation established.  Adjacent same-patch
    // fetches also arrive at the cooperative block cache back to back,
    // turning the duplicate gets of domain mates into in-flight joins.
    std::map<std::array<index_t, 4>, std::size_t> first_seen;
    for (auto it = remote_begin; it != tasks.end(); ++it) {
      first_seen.emplace(std::array{it->a_i0, it->a_j0, it->a_m, it->a_n},
                         first_seen.size());
    }
    std::stable_sort(remote_begin, tasks.end(),
                     [&](const Task& x, const Task& y) {
                       return first_seen.at(
                                  {x.a_i0, x.a_j0, x.a_m, x.a_n}) <
                              first_seen.at({y.a_i0, y.a_j0, y.a_m, y.a_n});
                     });
  }
}

}  // namespace srumma
