#pragma once
// SRUMMA — Shared and Remote-memory based Universal Matrix Multiplication
// Algorithm (Krishnan & Nieplocha, IPDPS 2004).
//
// Computes C := alpha * op(A) * op(B) + beta * C over block-distributed
// matrices using only one-sided communication:
//
//   1. each rank builds the task list of block products that accumulate
//      into its own C block ("owner computes", eq. 4);
//   2. the list is reordered — shared-memory-domain tasks first, then the
//      remote run rotated by the diagonal shift (Fig. 4) and grouped for
//      A-block reuse;
//   3. a double-buffered pipeline issues the nonblocking get for the next
//      task's patches while dgemm runs on the current task (Fig. 3);
//      within the shared-memory domain, patches are either passed to dgemm
//      in place (Direct flavor — Altix) or block-copied first (Copy flavor
//      — Cray X1, whose remote memory is not cacheable).
//
// No rank ever coordinates with the owners of the blocks it reads: there is
// no sender-side code at all, which is exactly what distinguishes SRUMMA
// from Cannon/SUMMA-style message passing.
//
// srumma_multiply is an SPMD collective: every rank of the team must call
// it with the same matrices and options.

#include "core/options.hpp"
#include "core/task_plan.hpp"
#include "dist/dist_matrix.hpp"
#include "trace/report.hpp"

namespace srumma {

/// Parallel matrix multiplication; returns identical results on all ranks.
MultiplyResult srumma_multiply(Rank& me, DistMatrix& a, DistMatrix& b,
                               DistMatrix& c,
                               const SrummaOptions& opt = SrummaOptions{});

}  // namespace srumma
