#pragma once
// SRUMMA configuration knobs.
//
// The defaults reproduce the algorithm exactly as the paper describes it
// (Section 3.1): nonblocking gets with double buffering, shared-memory
// tasks first, diagonal-shift remote ordering, A-block reuse, direct
// load/store access within the shared-memory domain.  Every knob exists so
// the ablation benches can turn one paper design choice off at a time.

#include <cstdint>

#include "util/matrix.hpp"

#include "blas/gemm.hpp"

namespace srumma {

/// Task-list ordering refinements (paper Section 3.1, step 2).
struct OrderingPolicy {
  /// Move tasks whose blocks live in my shared-memory domain to the front,
  /// so the remote-get pipeline starts while computing on local data.
  bool shm_first = true;
  /// Rotate the remote tasks so ranks on one node start fetching from
  /// *different* nodes (Fig. 4), spreading the contention.
  bool diagonal_shift = true;
  /// Group tasks so a fetched A block is used by consecutive products
  /// before its buffer is reused.
  bool a_reuse = true;
  /// Regroup the remote run so every set of tasks sharing one A patch is
  /// contiguous (repairing the split the diagonal-shift rotation can cut
  /// through one A-reuse run).  Keeps same-patch fetches adjacent, which
  /// also maximizes in-flight joins in the cooperative block cache.
  /// Aggregate-initialized policies ({a, b, c}) leave it off.
  bool a_group = false;

  [[nodiscard]] static OrderingPolicy naive() {
    return {false, false, false, false};
  }
  [[nodiscard]] static OrderingPolicy full() {
    return {true, true, true, true};
  }
};

/// Shared-memory access flavor (paper Section 3.2).
enum class ShmFlavor {
  /// Pass in-place views of peer blocks straight to dgemm.  Fast when
  /// remote memory is cacheable (SGI Altix), slow when it is not (Cray X1).
  Direct,
  /// Copy peer blocks to a local buffer first, then run dgemm at full rate.
  Copy,
};

/// Task-execution engine selection (docs/ENGINE.md).
enum class EngineMode : std::uint8_t {
  /// Defer to the SRUMMA_ENGINE environment variable (unset/0 = Off).
  Auto,
  /// The paper's static ordered pipeline (Fig. 3): in-order waits, slot
  /// rotation, tail requeue on operand failure.  Deterministic timing.
  Off,
  /// Dependency-driven task engine (src/engine): per-task operand
  /// ownership, out-of-order execution across C tiles, fetch re-arm on
  /// failure, and intra-domain work stealing.  C is bitwise-identical to
  /// the pipeline; modeled *timing* may vary run-to-run because steal
  /// decisions race in real time (see docs/ENGINE.md).
  On,
};

struct SrummaOptions {
  blas::Trans ta = blas::Trans::No;
  blas::Trans tb = blas::Trans::No;
  double alpha = 1.0;
  double beta = 0.0;

  OrderingPolicy ordering = OrderingPolicy::full();
  ShmFlavor shm_flavor = ShmFlavor::Direct;
  /// Which executor consumes the task plan (docs/ENGINE.md).
  EngineMode engine = EngineMode::Auto;
  /// Nonblocking prefetch pipeline (Fig. 3).  Off = issue each get and wait
  /// immediately; the blocking arm of the Fig. 9 experiment.
  bool nonblocking = true;
  /// Prefetch depth: how many tasks ahead gets are issued (paper: 1, the
  /// classic double buffer).  Deeper pipelines trade buffer memory for
  /// resilience to bursty contention; an extension beyond the paper,
  /// ablated in bench_ablation_blocksize.  Ignored when !nonblocking.
  /// 0 = auto: the SRUMMA_LOOKAHEAD environment variable if set, otherwise
  /// the latency-bandwidth-product heuristic
  /// clamp(ceil(net_latency * net_bw / patch_bytes), 1, 8).
  int lookahead = 0;

  /// Maximum K-segment length.  0 = auto-tune: pick a chunk that gives the
  /// double-buffered pipeline several tasks per owner segment (the paper's
  /// "optimum block sizes were chosen empirically").  Explicit values cap
  /// segments at that length after cutting at block-owner boundaries.
  index_t k_chunk = 0;
  /// Maximum local C tile edge.  0 = compute the whole local block as one
  /// tile.  Smaller tiles bound buffer memory and enable A-block reuse.
  index_t c_chunk = 0;
  /// Optional per-rank buffer memory budget in bytes (0 = unlimited).  When
  /// set, the driver shrinks c_chunk (and if needed k_chunk) until the
  /// pipeline's patch buffers fit — the "memory efficient" operating mode.
  /// Explicit c_chunk/k_chunk values are only ever shrunk, never grown.
  std::uint64_t max_buffer_bytes = 0;

  /// Verify every freshly fetched copy-path operand patch against the
  /// owners' segments before dgemm consumes it (the checksum stand-in; see
  /// docs/FAULTS.md).  A mismatch — e.g. an injected payload corruption —
  /// triggers a refetch of the patch before the block product runs, so the
  /// multiply survives corrupt transfers at the cost of a local memory scan
  /// per fetched patch.  No effect on direct-access or phantom operands.
  bool verify_checksums = false;
};

}  // namespace srumma
