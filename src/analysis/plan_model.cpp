#include "analysis/plan_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace srumma::analysis {

namespace {

// Deterministic site selection (splitmix64): mutation placement must be
// reproducible from the seed alone — Date/random sources would make the
// negative tests flaky.
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Would the pipeline fetch this task's A (resp. B) patch through the copy
/// path?  Mirrors engine::acquire: direct access needs the Direct flavor
/// and a single in-domain owner; everything else posts a get.
bool copies_a(const PlanModel& pm, int rank, const Task& t) {
  return pm.cfg.options.shm_flavor != ShmFlavor::Direct ||
         !pm.a.single_owner_in_domain(pm.cfg.machine, rank, t.a_i0, t.a_j0,
                                      t.a_m, t.a_n)
              .has_value();
}

bool copies_b(const PlanModel& pm, int rank, const Task& t) {
  return pm.cfg.options.shm_flavor != ShmFlavor::Direct ||
         !pm.b.single_owner_in_domain(pm.cfg.machine, rank, t.b_i0, t.b_j0,
                                      t.b_m, t.b_n)
              .has_value();
}

}  // namespace

PlanModel build_plan_model(const AnalysisConfig& cfg) {
  SRUMMA_REQUIRE(cfg.m > 0 && cfg.n > 0 && cfg.k > 0,
                 "analysis: m, n, k must be positive");
  const int nranks = cfg.machine.total_ranks();
  const ProcGrid grid = ProcGrid::near_square(nranks);
  const bool tra = cfg.options.ta == blas::Trans::Yes;
  const bool trb = cfg.options.tb == blas::Trans::Yes;

  PlanModel pm;
  pm.cfg = cfg;
  // Stored shapes: op(A) is m x k, op(B) is k x n (build_task_plan checks
  // conformance of these layouts again).
  pm.a = tra ? MatrixLayout(cfg.k, cfg.m, grid) : MatrixLayout(cfg.m, cfg.k, grid);
  pm.b = trb ? MatrixLayout(cfg.n, cfg.k, grid) : MatrixLayout(cfg.k, cfg.n, grid);
  pm.c = MatrixLayout(cfg.m, cfg.n, grid);

  pm.ranks.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    RankModel rm;
    rm.rank = r;
    rm.tuned = tune_options(r, cfg.machine, pm.a, pm.b, pm.c, cfg.options);
    rm.lookahead = cfg.options.nonblocking ? rm.tuned.lookahead : 0;
    rm.plan = build_task_plan(r, cfg.machine, pm.a, pm.b, pm.c, rm.tuned);
    rm.chains = engine::chain_layout(rm.plan);
    rm.stealable =
        engine::stealable_tasks(rm.plan, cfg.machine.domain_size());
    pm.ranks.push_back(std::move(rm));
  }
  return pm;
}

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::DropWait: return "drop-wait";
    case Mutation::ReorderCommit: return "reorder-commit";
    case Mutation::WidenGetWindow: return "widen-get";
    case Mutation::AliasStealScratch: return "alias-scratch";
    case Mutation::AdoptChain: return "adopt-chain";
  }
  return "?";
}

std::optional<Mutation> mutation_from_name(std::string_view s) {
  if (s == "drop-wait") return Mutation::DropWait;
  if (s == "reorder-commit") return Mutation::ReorderCommit;
  if (s == "widen-get") return Mutation::WidenGetWindow;
  if (s == "alias-scratch") return Mutation::AliasStealScratch;
  if (s == "adopt-chain") return Mutation::AdoptChain;
  return std::nullopt;
}

std::string mutate_plan(PlanModel& pm, Mutation mut, std::uint64_t seed) {
  std::uint64_t rng = seed ^ 0x5143554d4d41ull;  // decorrelate seed 0
  const auto pick = [&](std::size_t n) {
    return static_cast<std::size_t>(next_rand(rng) % n);
  };

  switch (mut) {
    case Mutation::DropWait: {
      // Only a copy-path fetch has a wait to forget; dropping a "wait" on a
      // direct view would be a no-op and the analyzer would rightly stay
      // silent.
      std::vector<std::pair<std::size_t, std::size_t>> sites;  // (rank, task)
      for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
        const std::vector<Task>& tasks = pm.ranks[r].plan.tasks;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          if (copies_a(pm, static_cast<int>(r), tasks[i]) ||
              copies_b(pm, static_cast<int>(r), tasks[i]))
            sites.emplace_back(r, i);
        }
      }
      SRUMMA_REQUIRE(!sites.empty(),
                     "mutate_plan: no copy-path fetch to drop a wait from "
                     "in this configuration");
      const auto [r, i] = sites[pick(sites.size())];
      pm.ranks[r].dropped_waits.push_back(i);
      return "drop-wait: rank " + std::to_string(r) +
             " skips the operand waits of task " + std::to_string(i);
    }

    case Mutation::ReorderCommit: {
      std::vector<std::pair<std::size_t, std::size_t>> sites;  // (rank, tile)
      for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
        const auto& tiles = pm.ranks[r].chains.tile_tasks;
        for (std::size_t t = 0; t < tiles.size(); ++t)
          if (tiles[t].size() >= 2) sites.emplace_back(r, t);
      }
      SRUMMA_REQUIRE(!sites.empty(),
                     "mutate_plan: no commit chain with two links to reorder "
                     "in this configuration");
      const auto [r, t] = sites[pick(sites.size())];
      std::vector<std::size_t>& chain = pm.ranks[r].chains.tile_tasks[t];
      const std::size_t p = pick(chain.size() - 1);
      std::swap(chain[p], chain[p + 1]);
      return "reorder-commit: rank " + std::to_string(r) + " tile " +
             std::to_string(t) + " swaps chain links " + std::to_string(p) +
             " and " + std::to_string(p + 1);
    }

    case Mutation::WidenGetWindow: {
      const std::size_t r = pick(pm.ranks.size());
      RankModel& rm = pm.ranks[r];
      SRUMMA_REQUIRE(!rm.plan.tasks.empty(),
                     "mutate_plan: rank has no tasks to widen a window of");
      const std::size_t i = pick(rm.plan.tasks.size());
      Task& t = rm.plan.tasks[i];
      // Grow the A window by one stored column/row, staying inside the
      // matrix so the fault models a *mis-sized* get, not an out-of-bounds
      // one (OutOfBounds has its own dynamic diagnostic).
      std::string how;
      if (t.a_j0 + t.a_n < pm.a.n) {
        t.a_n += 1;
        how = "one extra column";
      } else if (t.a_i0 + t.a_m < pm.a.m) {
        t.a_m += 1;
        how = "one extra row";
      } else if (t.a_j0 > 0) {
        t.a_j0 -= 1;
        t.a_n += 1;
        how = "one leading column";
      } else {
        SRUMMA_REQUIRE(t.a_i0 > 0,
                       "mutate_plan: A window already spans the whole matrix");
        t.a_i0 -= 1;
        t.a_m += 1;
        how = "one leading row";
      }
      return "widen-get: rank " + std::to_string(r) + " task " +
             std::to_string(i) + " A window grows by " + how;
    }

    case Mutation::AliasStealScratch: {
      std::vector<std::size_t> ranks_with;
      for (std::size_t r = 0; r < pm.ranks.size(); ++r)
        if (!pm.ranks[r].stealable.empty()) ranks_with.push_back(r);
      SRUMMA_REQUIRE(!ranks_with.empty(),
                     "mutate_plan: no stealable task whose scratch could "
                     "alias (single-domain machine or all-local plan)");
      const std::size_t r = ranks_with[pick(ranks_with.size())];
      RankModel& rm = pm.ranks[r];
      const std::size_t i = rm.stealable[pick(rm.stealable.size())];
      rm.scratch_alias.push_back(i);
      return "alias-scratch: rank " + std::to_string(r) +
             "'s stealable task " + std::to_string(i) +
             " hands thieves a scratch aliased onto its live C tile";
    }

    case Mutation::AdoptChain: {
      // Recovery-side fault (docs/FAULTS.md §7): a survivor adopts a dead
      // rank's C tile but replays its commit chain out of plan order —
      // the accumulation order changes, so the recovered tile is no
      // longer bitwise identical to the fault-free run.  Needs a second
      // rank to play the survivor and a chain with two links to swap.
      std::vector<std::pair<std::size_t, std::size_t>> sites;  // (dead, tile)
      for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
        const auto& tiles = pm.ranks[r].chains.tile_tasks;
        for (std::size_t t = 0; t < tiles.size(); ++t)
          if (tiles[t].size() >= 2) sites.emplace_back(r, t);
      }
      SRUMMA_REQUIRE(pm.ranks.size() >= 2 && !sites.empty(),
                     "mutate_plan: adopt-chain needs a surviving rank and a "
                     "dead-rank commit chain with two links");
      const auto [dead, tile] = sites[pick(sites.size())];
      std::size_t adopter = pick(pm.ranks.size() - 1);
      if (adopter >= dead) ++adopter;
      RankModel::AdoptedChain ac;
      ac.dead_rank = static_cast<int>(dead);
      ac.tile = tile;
      ac.task_idxs = pm.ranks[dead].chains.tile_tasks[tile];
      const std::size_t p = pick(ac.task_idxs.size() - 1);
      std::swap(ac.task_idxs[p], ac.task_idxs[p + 1]);
      pm.ranks[adopter].adopted_chains.push_back(std::move(ac));
      return "adopt-chain: rank " + std::to_string(adopter) +
             " adopts dead rank " + std::to_string(dead) + "'s tile " +
             std::to_string(tile) + " chain with links " + std::to_string(p) +
             " and " + std::to_string(p + 1) + " swapped";
    }
  }
  SRUMMA_REQUIRE(false, "mutate_plan: unknown mutation");
  return {};
}

}  // namespace srumma::analysis
