#pragma once
// Happens-before race detector over RMA-checker journals (srumma-analyze
// --trace, docs/ANALYSIS.md).
//
// The dynamic checker reasons in barrier epochs and handle identities; this
// module rebuilds the same execution from its journal with an *independent*
// happens-before order and cross-validates the two: every HB race must have
// a matching recorded diagnostic, or the epoch model has a blind spot —
// a hard failure for `srumma-analyze --trace`.
//
// The HB order is the weakest one the runtime actually guarantees:
//   - program order within a rank (journal lines of one rank are ordered);
//   - collective barriers (everything a rank completed before entering
//     barrier epoch e happens-before anything any rank issues in epoch
//     > e).
// An operation occupies [issue, wait]; an op whose wait never appears
// stays open forever.  Two operations race when their byte footprints
// overlap, at least one writes, and neither's completion happens-before
// the other's issue (atomic accumulates are exempt against each other).

#include <cstdint>
#include <string>
#include <vector>

#include "trace/journal.hpp"

namespace srumma::analysis {

/// One operation reconstructed from the journal.
struct HbOp {
  int rank = -1;
  std::string kind;  ///< get/put/acc/direct-read/compute-read/local-write
  int owner = -1;
  std::uint64_t seq = ~std::uint64_t{0};  ///< target region, ~0 = unresolved
  std::uint64_t handle = 0;               ///< 0 = completed at issue
  std::size_t issue_line = 0;             ///< journal line index
  std::size_t wait_line = 0;              ///< == issue_line when synchronous
  bool waited = false;
  std::uint64_t issue_epoch = 0;
  std::uint64_t wait_epoch = 0;  ///< valid only when waited
  // Byte footprints as journaled (remote: owner-segment offsets; local:
  // absolute origin addresses, 0 when running phantom).
  std::uint64_t rlo = 0, rrows = 0, rcols = 0, rld = 0;
  std::uint64_t llo = 0, lrows = 0, lcols = 0, lld = 0;
  std::string site;
};

/// A pair of operations unordered by happens-before with conflicting
/// overlapping footprints.
struct HbRace {
  std::size_t op1 = 0;  ///< indices into HbResult::ops
  std::size_t op2 = 0;
  bool remote = false;  ///< true: owner-segment conflict; false: local buffer
  std::uint64_t seq = ~std::uint64_t{0};
  int owner = -1;
  /// True when some journaled diagnostic plausibly covers this race (same
  /// region or same rank) — i.e. the epoch checker saw it too.
  bool matched = false;
};

struct HbResult {
  std::size_t n_records = 0;
  std::size_t n_barriers = 0;
  std::vector<HbOp> ops;
  std::vector<trace::JournalRecord> diags;
  std::vector<HbRace> races;

  /// Races the epoch-based checker did not diagnose — the cross-validation
  /// failure count.
  [[nodiscard]] std::size_t missed() const {
    std::size_t n = 0;
    for (const HbRace& r : races)
      if (!r.matched) ++n;
    return n;
  }
};

/// Run the happens-before analysis over a parsed journal stream.
[[nodiscard]] HbResult analyze_journal(
    const std::vector<trace::JournalRecord>& recs);

/// Machine-readable report ("srumma-analysis-trace/1"), one JSON object.
[[nodiscard]] std::string hb_report_json(const std::string& path,
                                         const HbResult& res);

}  // namespace srumma::analysis
