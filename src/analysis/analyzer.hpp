#pragma once
// The static verifier behind srumma-analyze (docs/ANALYSIS.md).
//
// analyze() proves, per configuration, the three properties the dynamic
// RMA checker can only spot-check at runtime:
//
//   1. Epoch safety — every get window equals its task's C-tile x K-segment
//      footprint, lies inside the operand, carries correct locality flags,
//      and every C write stays inside the rank's own disjoint block; plus
//      an exact replay of the prefetch pipeline's slot rotation proving no
//      buffer is read or re-targeted while its get is pending.  Together
//      these rule out every diagnostic class in src/check for clean plans.
//   2. Commit-chain consistency and steal-protocol deadlock freedom — the
//      chains the engine executes are exactly the plan-order grouping, and
//      a fixpoint simulation over adversarial steal scenarios (none / all /
//      alternate stealable tasks claimed by thieves) terminates with every
//      product committed, mechanizing the earliest-uncommitted-position
//      induction of docs/ENGINE.md.
//   3. Static resource bounds — provable per-team ceilings on
//      buffer_bytes_peak and concurrent cache pins for both executors,
//      cross-checked against the replay's exact clean-run peak.
//
// Findings carry the dynamic Diag class they would surface as, so the
// static-vs-dynamic coverage matrix in docs/CHECKING.md is checkable.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/plan_model.hpp"
#include "check/rma_checker.hpp"

namespace srumma::analysis {

enum class FindingKind {
  PlanShape,      ///< get window or locality flag disagrees with the task
  EpochSafety,    ///< an ownership / bounds premise of epoch safety fails
  Pipeline,       ///< the pipeline replay read or re-targeted a pending buffer
  CommitChain,    ///< chain layout is not the plan-order grouping
  StealProtocol,  ///< steal fixpoint deadlocks or scratch aliases live C
  ResourceBound,  ///< a replay peak exceeds its provable static bound
};

[[nodiscard]] const char* finding_kind_name(FindingKind k);

struct Finding {
  FindingKind kind;
  /// Dynamic diagnostic this fault would surface as, when one exists.
  std::optional<check::Diag> diag;
  int rank = -1;
  std::ptrdiff_t task = -1;  ///< plan index, -1 when not task-specific
  std::string message;
};

/// Provable static ceilings (bytes / pin counts are per-rank maxima, i.e.
/// exactly what the MAX-aggregated bench counters report team-wide).
struct ResourceBounds {
  std::uint64_t pipeline_buffer_bytes = 0;
  std::uint64_t engine_buffer_bytes = 0;
  /// max of the two executors — safe whichever one SRUMMA_ENGINE selects.
  std::uint64_t buffer_bytes = 0;
  std::uint64_t pipeline_cache_pins = 0;
  std::uint64_t engine_cache_pins = 0;
  std::uint64_t cache_pins = 0;
};

struct AnalysisReport {
  std::vector<Finding> findings;
  ResourceBounds bounds;
  std::size_t total_tasks = 0;
  std::size_t total_stealable = 0;
  std::size_t total_tiles = 0;
  int max_lookahead = 0;
  /// Exact clean-run pipeline footprint from the replay (<= the bound).
  std::uint64_t pipeline_replay_peak_bytes = 0;
  std::uint64_t pipeline_replay_peak_pins = 0;

  [[nodiscard]] bool certified() const { return findings.empty(); }
};

[[nodiscard]] AnalysisReport analyze(const PlanModel& pm);

/// Machine-readable report ("srumma-analysis/1"), one JSON object.
[[nodiscard]] std::string report_json(const PlanModel& pm,
                                      const AnalysisReport& rep,
                                      const std::string& mutation,
                                      const std::string& mutation_detail);

}  // namespace srumma::analysis
