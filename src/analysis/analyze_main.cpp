// srumma-analyze — static schedule verifier and trace cross-checker
// (docs/ANALYSIS.md).
//
// Default mode builds the full plan model for one configuration x machine
// and runs the static analysis; exit status 0 means certified (zero
// findings).  --mutate seeds one protocol fault first and the run is
// expected to exit nonzero.  --trace <journal> ingests an RMA-checker
// journal instead and exits nonzero when the happens-before detector finds
// a race the epoch checker missed.

#include <cstdio>
#include <exception>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/hb.hpp"
#include "analysis/plan_model.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace srumma;

MachineModel make_machine(const std::string& name, int nodes, int rpn) {
  if (name == "cluster") return MachineModel::linux_myrinet(nodes);
  if (name == "sp") return MachineModel::ibm_sp(nodes);
  if (name == "x1") return MachineModel::cray_x1(nodes);
  if (name == "altix") return MachineModel::sgi_altix(nodes * rpn);
  return MachineModel::testing(nodes, rpn);
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.add_flag("trace", "",
               "RMA-checker journal to cross-validate (switches to "
               "happens-before mode; all plan flags are ignored)");
  cli.add_choice_flag("machine", "testing",
                      {"testing", "cluster", "sp", "x1", "altix", "ib"},
                      "machine model to analyze against");
  cli.add_flag("nodes", "2", "number of nodes (altix: bricks of --rpn CPUs)");
  cli.add_flag("rpn", "2", "ranks per node");
  cli.add_flag("m", "96", "C rows");
  cli.add_flag("n", "96", "C cols");
  cli.add_flag("k", "96", "inner dimension");
  cli.add_flag("ta", "0", "transpose A");
  cli.add_flag("tb", "0", "transpose B");
  cli.add_choice_flag("flavor", "direct", {"direct", "copy"},
                      "shared-memory access flavor");
  cli.add_flag("nonblocking", "1", "nonblocking prefetch pipeline");
  cli.add_flag("lookahead", "0", "prefetch depth (0 = auto heuristic)");
  cli.add_flag("k-chunk", "0", "max K-segment length (0 = auto)");
  cli.add_flag("c-chunk", "0", "max C-tile edge (0 = whole block)");
  cli.add_flag("max-buffer-bytes", "0",
               "per-rank buffer budget in bytes (0 = unlimited)");
  cli.add_choice_flag("ordering", "full", {"full", "naive"},
                      "task ordering policy");
  cli.add_choice_flag("mutate", "none",
                      {"none", "drop-wait", "reorder-commit", "widen-get",
                       "alias-scratch", "adopt-chain"},
                      "seed one protocol fault before analyzing "
                      "(expected to exit nonzero)");
  cli.add_flag("seed", "1", "mutation site selection seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::string trace = cli.get("trace");
  if (!trace.empty()) {
    const auto recs = trace::read_journal(trace);
    const analysis::HbResult res = analysis::analyze_journal(recs);
    std::printf("%s\n", analysis::hb_report_json(trace, res).c_str());
    if (res.missed() != 0) {
      std::fprintf(stderr,
                   "srumma-analyze: %zu happens-before race(s) have no "
                   "matching checker diagnostic\n",
                   res.missed());
      return 1;
    }
    return 0;
  }

  analysis::AnalysisConfig cfg;
  cfg.machine = make_machine(cli.get("machine"),
                             static_cast<int>(cli.get_int("nodes")),
                             static_cast<int>(cli.get_int("rpn")));
  if (cli.get("machine") == "ib")
    cfg.machine = MachineModel::infiniband_cluster(
        static_cast<int>(cli.get_int("nodes")));
  cfg.m = cli.get_int("m");
  cfg.n = cli.get_int("n");
  cfg.k = cli.get_int("k");
  cfg.options.ta = cli.get_bool("ta") ? blas::Trans::Yes : blas::Trans::No;
  cfg.options.tb = cli.get_bool("tb") ? blas::Trans::Yes : blas::Trans::No;
  cfg.options.shm_flavor =
      cli.get("flavor") == "copy" ? ShmFlavor::Copy : ShmFlavor::Direct;
  cfg.options.nonblocking = cli.get_bool("nonblocking");
  cfg.options.lookahead = static_cast<int>(cli.get_int("lookahead"));
  cfg.options.k_chunk = cli.get_int("k-chunk");
  cfg.options.c_chunk = cli.get_int("c-chunk");
  cfg.options.max_buffer_bytes =
      static_cast<std::uint64_t>(cli.get_int("max-buffer-bytes"));
  if (cli.get("ordering") == "naive")
    cfg.options.ordering = OrderingPolicy::naive();

  analysis::PlanModel pm = analysis::build_plan_model(cfg);

  std::string mutation = "none";
  std::string detail;
  if (cli.get("mutate") != "none") {
    const auto mut = analysis::mutation_from_name(cli.get("mutate"));
    SRUMMA_REQUIRE(mut.has_value(), "unknown mutation name");
    detail = analysis::mutate_plan(
        pm, *mut, static_cast<std::uint64_t>(cli.get_int("seed")));
    mutation = analysis::mutation_name(*mut);
  }

  const analysis::AnalysisReport rep = analysis::analyze(pm);
  std::printf("%s\n",
              analysis::report_json(pm, rep, mutation, detail).c_str());
  if (!rep.certified()) {
    for (const analysis::Finding& f : rep.findings)
      std::fprintf(stderr, "srumma-analyze: [%s] rank %d task %td: %s\n",
                   analysis::finding_kind_name(f.kind), f.rank, f.task,
                   f.message.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "srumma-analyze: error: %s\n", e.what());
    return 2;
  }
}
