#include "analysis/hb.hpp"

#include <algorithm>
#include <map>

#include "check/rma_checker.hpp"

namespace srumma::analysis {

namespace {

constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

bool writes_remote(const std::string& kind) {
  return kind == "put" || kind == "acc" || kind == "local-write";
}

bool writes_local(const std::string& kind) {
  // A get fills its origin destination; a declared local write mutates the
  // buffer directly.  put/acc/compute-read only read their local side.
  return kind == "get" || kind == "local-write";
}

check::Footprint remote_fp(const HbOp& op) {
  return check::Footprint{op.rlo, op.rrows, op.rcols, op.rld};
}

check::Footprint local_fp(const HbOp& op) {
  return check::Footprint{op.llo, op.lrows, op.lcols, op.lld};
}

/// Does op1's completion happen-before op2's issue?
bool completion_before_issue(const HbOp& op1, const HbOp& op2) {
  if (!op1.waited) return false;  // never completes — orders after nothing
  if (op1.rank == op2.rank) return op1.wait_line < op2.issue_line;
  // Cross-rank ordering exists only through collective barriers: op1 must
  // complete in a strictly earlier epoch than op2's issue.
  return op1.wait_epoch < op2.issue_epoch;
}

bool unordered(const HbOp& a, const HbOp& b) {
  return !completion_before_issue(a, b) && !completion_before_issue(b, a);
}

bool diag_covers(const trace::JournalRecord& d, const HbOp& a,
                 const HbOp& b) {
  if (d.seq != kNoSeq && (d.seq == a.seq || d.seq == b.seq)) return true;
  return d.rank == a.rank || d.rank == b.rank;
}

void append_escaped_json(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) out += ch;
    }
  }
  out += '"';
}

}  // namespace

HbResult analyze_journal(const std::vector<trace::JournalRecord>& recs) {
  HbResult res;
  res.n_records = recs.size();

  // Pass 1: reconstruct ops with issue/wait lines and a self-consistent
  // epoch clock (count of this rank's barrier records so far — the same
  // numbering the checker journals, but derived independently).
  std::map<int, std::uint64_t> epoch_of;
  std::map<std::pair<int, std::uint64_t>, std::size_t> open;  // (rank,handle)
  for (std::size_t line = 0; line < recs.size(); ++line) {
    const trace::JournalRecord& r = recs[line];
    if (r.ev == "barrier") {
      epoch_of[r.rank] += 1;
      ++res.n_barriers;
    } else if (r.ev == "diag") {
      res.diags.push_back(r);
    } else if (r.ev == "op") {
      HbOp op;
      op.rank = r.rank;
      op.kind = r.kind;
      op.owner = r.owner;
      op.seq = r.seq;
      op.handle = r.handle;
      op.issue_line = line;
      op.issue_epoch = epoch_of[r.rank];
      op.rlo = r.rlo; op.rrows = r.rrows; op.rcols = r.rcols; op.rld = r.rld;
      op.llo = r.llo; op.lrows = r.lrows; op.lcols = r.lcols; op.lld = r.lld;
      op.site = r.site;
      if (op.handle == 0) {  // declarations complete at issue
        op.waited = true;
        op.wait_line = line;
        op.wait_epoch = op.issue_epoch;
      } else {
        open[{r.rank, r.handle}] = res.ops.size();
      }
      res.ops.push_back(std::move(op));
    } else if (r.ev == "wait") {
      const auto it = open.find({r.rank, r.handle});
      if (it == open.end()) continue;  // double wait / unknown handle
      HbOp& op = res.ops[it->second];
      op.waited = true;
      op.wait_line = line;
      op.wait_epoch = epoch_of[r.rank];
      open.erase(it);
    }
  }

  // Pass 2a: remote conflicts, grouped per owner segment.
  std::map<std::pair<std::uint64_t, int>, std::vector<std::size_t>> by_seg;
  for (std::size_t i = 0; i < res.ops.size(); ++i) {
    const HbOp& op = res.ops[i];
    if (op.seq != kNoSeq && op.rcols != 0 && op.rrows != 0)
      by_seg[{op.seq, op.owner}].push_back(i);
  }
  for (const auto& [seg, idxs] : by_seg) {
    for (std::size_t x = 0; x < idxs.size(); ++x) {
      for (std::size_t y = x + 1; y < idxs.size(); ++y) {
        const HbOp& a = res.ops[idxs[x]];
        const HbOp& b = res.ops[idxs[y]];
        if (!writes_remote(a.kind) && !writes_remote(b.kind)) continue;
        if (a.kind == "acc" && b.kind == "acc") continue;  // atomic
        if (!check::footprints_overlap(remote_fp(a), remote_fp(b))) continue;
        if (!unordered(a, b)) continue;
        HbRace race;
        race.op1 = idxs[x];
        race.op2 = idxs[y];
        race.remote = true;
        race.seq = seg.first;
        race.owner = seg.second;
        for (const trace::JournalRecord& d : res.diags)
          if (diag_covers(d, a, b)) { race.matched = true; break; }
        res.races.push_back(race);
      }
    }
  }

  // Pass 2b: local (origin-buffer) conflicts.  llo == 0 means the run was
  // phantom (no real buffers) — nothing to compare.
  std::vector<std::size_t> locals;
  for (std::size_t i = 0; i < res.ops.size(); ++i) {
    const HbOp& op = res.ops[i];
    if (op.llo != 0 && op.lcols != 0 && op.lrows != 0) locals.push_back(i);
  }
  for (std::size_t x = 0; x < locals.size(); ++x) {
    for (std::size_t y = x + 1; y < locals.size(); ++y) {
      const HbOp& a = res.ops[locals[x]];
      const HbOp& b = res.ops[locals[y]];
      if (!writes_local(a.kind) && !writes_local(b.kind)) continue;
      if (!check::footprints_overlap(local_fp(a), local_fp(b))) continue;
      if (!unordered(a, b)) continue;
      HbRace race;
      race.op1 = locals[x];
      race.op2 = locals[y];
      race.remote = false;
      for (const trace::JournalRecord& d : res.diags)
        if (diag_covers(d, a, b)) { race.matched = true; break; }
      res.races.push_back(race);
    }
  }
  return res;
}

std::string hb_report_json(const std::string& path, const HbResult& res) {
  std::string j = "{\"schema\":\"srumma-analysis-trace/1\",\"journal\":";
  append_escaped_json(j, path);
  j += ",\"records\":" + std::to_string(res.n_records);
  j += ",\"ops\":" + std::to_string(res.ops.size());
  j += ",\"barriers\":" + std::to_string(res.n_barriers);
  j += ",\"diags\":" + std::to_string(res.diags.size());
  j += ",\"races\":[";
  for (std::size_t i = 0; i < res.races.size(); ++i) {
    const HbRace& r = res.races[i];
    const HbOp& a = res.ops[r.op1];
    const HbOp& b = res.ops[r.op2];
    if (i > 0) j += ",";
    j += "{\"space\":\"";
    j += r.remote ? "remote" : "local";
    j += "\"";
    if (r.remote) {
      j += ",\"seq\":" + std::to_string(r.seq);
      j += ",\"owner\":" + std::to_string(r.owner);
    }
    j += ",\"rank1\":" + std::to_string(a.rank) + ",\"kind1\":";
    append_escaped_json(j, a.kind);
    j += ",\"site1\":";
    append_escaped_json(j, a.site);
    j += ",\"rank2\":" + std::to_string(b.rank) + ",\"kind2\":";
    append_escaped_json(j, b.kind);
    j += ",\"site2\":";
    append_escaped_json(j, b.site);
    j += ",\"matched\":";
    j += r.matched ? "true" : "false";
    j += "}";
  }
  j += "],\"race_count\":" + std::to_string(res.races.size());
  j += ",\"missed\":" + std::to_string(res.missed());
  j += ",\"cross_validated\":";
  j += res.missed() == 0 ? "true" : "false";
  j += "}";
  return j;
}

}  // namespace srumma::analysis
