#pragma once
// Static plan model for srumma-analyze (docs/ANALYSIS.md).
//
// A PlanModel is everything a SRUMMA run decides *before* touching data:
// the tuned option set, every rank's task plan, the commit-chain layout the
// engine would execute and the set of tasks it would post on the steal
// board.  It is built from the same code paths the run uses —
// tune_options, the layout-based build_task_plan overload and
// engine::chain_layout — so the analyzed schedule cannot drift from the
// executed one.  No team, no allocation, no virtual clock.
//
// The mutation hooks seed one deliberate protocol fault into a model
// (negative testing for the analyzer itself): dropping an operand wait,
// reordering a commit-chain link, widening a get window past its task's
// footprint, aliasing a steal scratch buffer onto the victim's live C
// tile, or replaying an adopted dead rank's commit chain out of plan
// order (the recovery-side analogue of reorder-commit, docs/FAULTS.md §7).
// srumma-analyze must flag every class and certify clean models with zero
// findings.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/task_plan.hpp"
#include "engine/engine.hpp"
#include "machine/machine.hpp"

namespace srumma::analysis {

/// One configuration under analysis: a machine model, the user-visible
/// option set and the multiply shape C[m x n] += op(A) * op(B) over k.
struct AnalysisConfig {
  MachineModel machine = MachineModel::testing(1, 2);
  SrummaOptions options;
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
};

/// Everything one rank's executors would consume.
struct RankModel {
  int rank = -1;
  /// Option set after tune_options (k_chunk, lookahead, budget shrink).
  SrummaOptions tuned;
  /// Resolved prefetch depth: tuned.lookahead, or 0 in blocking mode —
  /// exactly srumma_multiply's dispatch value.
  int lookahead = 0;
  TaskPlan plan;
  engine::ChainLayout chains;
  std::vector<std::size_t> stealable;

  // -- seeded faults (empty in clean models) --------------------------------
  /// Plan indices whose operand waits the pipeline "forgets" (the replay
  /// skips them; the analyzer must diagnose the use-before-wait class).
  std::vector<std::size_t> dropped_waits;
  /// Stealable plan indices whose thief scratch buffer aliases the victim's
  /// live C tile instead of fresh storage.
  std::vector<std::size_t> scratch_alias;
  /// Recovery model (docs/FAULTS.md §7): a dead rank's commit chain this
  /// rank would adopt and replay from the buddy replica.  `task_idxs` is
  /// the replay order over the DEAD rank's plan indices; recovery promises
  /// a bitwise-identical C, which holds only when it equals the dead
  /// rank's own chain_layout grouping exactly.
  struct AdoptedChain {
    int dead_rank = -1;
    std::size_t tile = 0;  ///< tile index in the dead rank's chain layout
    std::vector<std::size_t> task_idxs;
  };
  std::vector<AdoptedChain> adopted_chains;
};

struct PlanModel {
  AnalysisConfig cfg;
  MatrixLayout a;
  MatrixLayout b;
  MatrixLayout c;
  std::vector<RankModel> ranks;
};

/// Build the full team model: stored-operand layouts on the near-square
/// grid (the library's default distribution), then per rank the tuned
/// options, plan, chains and steal set.
[[nodiscard]] PlanModel build_plan_model(const AnalysisConfig& cfg);

/// Seeded protocol faults, one per dynamic diagnostic family the analyzer
/// must prove impossible on clean plans.
enum class Mutation {
  DropWait,           ///< pipeline skips one task's operand waits
  ReorderCommit,      ///< swap two adjacent commit-chain links
  WidenGetWindow,     ///< grow one get window past the task's footprint
  AliasStealScratch,  ///< thief scratch aliases the victim's live C tile
  AdoptChain,         ///< survivor replays an adopted chain out of plan order
};

[[nodiscard]] const char* mutation_name(Mutation m);
[[nodiscard]] std::optional<Mutation> mutation_from_name(std::string_view s);

/// Apply one seeded fault to the model, choosing the site deterministically
/// from `seed`.  Returns a human-readable description of what was broken.
/// Requires a config where the class can occur at all (e.g. DropWait needs
/// at least one copy-path fetch) and fails loudly otherwise.
[[nodiscard]] std::string mutate_plan(PlanModel& pm, Mutation mut,
                                      std::uint64_t seed);

}  // namespace srumma::analysis
