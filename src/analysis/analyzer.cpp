#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace srumma::analysis {

namespace {

std::uint64_t patch_bytes(index_t pm, index_t pn) {
  return static_cast<std::uint64_t>(pm) * static_cast<std::uint64_t>(pn) *
         sizeof(double);
}

std::string task_str(const Task& t) {
  return "C(" + std::to_string(t.ci) + "," + std::to_string(t.cj) + " " +
         std::to_string(t.cm) + "x" + std::to_string(t.cn) + ") k[" +
         std::to_string(t.k0) + "," + std::to_string(t.k0 + t.kk) + ")";
}

void add(std::vector<Finding>& out, FindingKind kind,
         std::optional<check::Diag> diag, int rank, std::ptrdiff_t task,
         std::string msg) {
  out.push_back(Finding{kind, diag, rank, task, std::move(msg)});
}

// ---------------------------------------------------------------------------
// 1. Plan shape & epoch-safety premises.
//
// Every get window must equal the footprint its task needs (C-tile rows x
// K-segment for A, K-segment x C-tile cols for B, transposition applied),
// stay inside the operand, and carry locality flags that match a fresh
// ownership recomputation.  C tiles must partition the rank's own block —
// combined with the disjointness of the block distribution itself this is
// exactly why no two ranks' compute writes can ever overlap, i.e. why the
// dynamic checker's EpochConflict can never fire on a clean plan (A and B
// are read-only for the whole multiply; the only writes are C tiles).
// ---------------------------------------------------------------------------

void check_plan_shape(const PlanModel& pm, const RankModel& rm,
                      std::vector<Finding>& out) {
  const MachineModel& mm = pm.cfg.machine;
  const bool tra = pm.cfg.options.ta == blas::Trans::Yes;
  const bool trb = pm.cfg.options.tb == blas::Trans::Yes;
  const index_t k = rm.plan.k_total;
  const index_t r0 = pm.c.block_row_start(rm.rank);
  const index_t c0 = pm.c.block_col_start(rm.rank);
  const index_t cm_all = pm.c.block_rows(rm.rank);
  const index_t cn_all = pm.c.block_cols(rm.rank);

  for (std::size_t i = 0; i < rm.plan.tasks.size(); ++i) {
    const Task& t = rm.plan.tasks[i];
    const auto idx = static_cast<std::ptrdiff_t>(i);

    // C tile inside my own block (the write side of epoch safety).
    if (t.ci < 0 || t.cj < 0 || t.cm <= 0 || t.cn <= 0 ||
        t.ci + t.cm > cm_all || t.cj + t.cn > cn_all) {
      add(out, FindingKind::EpochSafety, check::Diag::EpochConflict, rm.rank,
          idx,
          "task " + task_str(t) + " writes outside rank " +
              std::to_string(rm.rank) + "'s C block (" +
              std::to_string(cm_all) + "x" + std::to_string(cn_all) + ")");
      continue;
    }
    if (t.k0 < 0 || t.kk <= 0 || t.k0 + t.kk > k) {
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, idx,
          "task " + task_str(t) + " has a K segment outside [0, " +
              std::to_string(k) + ")");
      continue;
    }

    // Expected windows from the tile and segment alone.
    const index_t gi = r0 + t.ci;
    const index_t gj = c0 + t.cj;
    index_t ea_i0 = gi, ea_j0 = t.k0, ea_m = t.cm, ea_n = t.kk;
    if (tra) { ea_i0 = t.k0; ea_j0 = gi; ea_m = t.kk; ea_n = t.cm; }
    index_t eb_i0 = t.k0, eb_j0 = gj, eb_m = t.kk, eb_n = t.cn;
    if (trb) { eb_i0 = gj; eb_j0 = t.k0; eb_m = t.cn; eb_n = t.kk; }

    if (t.a_i0 != ea_i0 || t.a_j0 != ea_j0 || t.a_m != ea_m ||
        t.a_n != ea_n) {
      // Note: a mis-sized window that stays inside the matrix is a *legal*
      // RMA get — no dynamic diagnostic fires.  Only the static model
      // catches it (wrong bytes under the dgemm, silently wrong C).
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, idx,
          "task " + task_str(t) + " A window [" + std::to_string(t.a_i0) +
              "," + std::to_string(t.a_j0) + " " + std::to_string(t.a_m) +
              "x" + std::to_string(t.a_n) + "] differs from the derived " +
              "footprint [" + std::to_string(ea_i0) + "," +
              std::to_string(ea_j0) + " " + std::to_string(ea_m) + "x" +
              std::to_string(ea_n) + "] — no dynamic diagnostic would fire");
      continue;
    }
    if (t.b_i0 != eb_i0 || t.b_j0 != eb_j0 || t.b_m != eb_m ||
        t.b_n != eb_n) {
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, idx,
          "task " + task_str(t) + " B window differs from its derived " +
              "K-segment x C-cols footprint — no dynamic diagnostic fires");
      continue;
    }

    // Window bounds (the OutOfBounds premise).
    if (t.a_i0 + t.a_m > pm.a.m || t.a_j0 + t.a_n > pm.a.n ||
        t.b_i0 + t.b_m > pm.b.m || t.b_j0 + t.b_n > pm.b.n ||
        t.a_i0 < 0 || t.a_j0 < 0 || t.b_i0 < 0 || t.b_j0 < 0) {
      add(out, FindingKind::EpochSafety, check::Diag::OutOfBounds, rm.rank,
          idx, "task " + task_str(t) + " get window leaves the operand");
      continue;
    }

    // Locality flags drive ordering, the steal board and cache routing;
    // recompute them from the layouts.
    const bool a_in = pm.a.rect_in_domain(mm, rm.rank, t.a_i0, t.a_j0, t.a_m,
                                          t.a_n);
    const bool b_in = pm.b.rect_in_domain(mm, rm.rank, t.b_i0, t.b_j0, t.b_m,
                                          t.b_n);
    if (a_in != t.a_in_domain || b_in != t.b_in_domain) {
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, idx,
          "task " + task_str(t) + " locality flags (a=" +
              std::to_string(static_cast<int>(t.a_in_domain)) + ",b=" +
              std::to_string(static_cast<int>(t.b_in_domain)) +
              ") disagree with the ownership map (a=" +
              std::to_string(static_cast<int>(a_in)) + ",b=" +
              std::to_string(static_cast<int>(b_in)) + ")");
    }
    if (t.a_owner != pm.a.owner(t.a_i0, t.a_j0) ||
        t.b_owner != pm.b.owner(t.b_i0, t.b_j0)) {
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, idx,
          "task " + task_str(t) + " records the wrong patch owner");
    }
  }

  // Tile / K-segment partition of the rank's block x [0, k): full coverage
  // with no duplicates means the plan computes each C element's complete
  // k-sum exactly once.
  if (cm_all > 0 && cn_all > 0 && k > 0) {
    std::map<std::pair<index_t, index_t>, std::vector<std::pair<index_t, index_t>>>
        tiles;  // (ci, cj) -> sorted (k0, kk)
    std::map<index_t, index_t> ci_ext;
    std::map<index_t, index_t> cj_ext;
    bool dup = false;
    for (const Task& t : rm.plan.tasks) {
      tiles[{t.ci, t.cj}].emplace_back(t.k0, t.kk);
      const auto [ri, fresh_i] = ci_ext.emplace(t.ci, t.cm);
      if (!fresh_i && ri->second != t.cm) dup = true;
      const auto [rj, fresh_j] = cj_ext.emplace(t.cj, t.cn);
      if (!fresh_j && rj->second != t.cn) dup = true;
    }
    if (dup) {
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, -1,
          "inconsistent tile extents across tasks sharing a tile origin");
    }
    const auto check_axis = [&](const std::map<index_t, index_t>& ext,
                                index_t total, const char* axis) {
      index_t at = 0;
      for (const auto& [start, len] : ext) {
        if (start != at) {
          add(out, FindingKind::PlanShape, std::nullopt, rm.rank, -1,
              std::string("C-tile ") + axis + " axis leaves a gap at " +
                  std::to_string(at));
          return;
        }
        at += len;
      }
      if (at != total)
        add(out, FindingKind::PlanShape, std::nullopt, rm.rank, -1,
            std::string("C-tile ") + axis + " axis covers " +
                std::to_string(at) + " of " + std::to_string(total));
    };
    check_axis(ci_ext, cm_all, "row");
    check_axis(cj_ext, cn_all, "col");
    if (tiles.size() != ci_ext.size() * cj_ext.size())
      add(out, FindingKind::PlanShape, std::nullopt, rm.rank, -1,
          "tile grid is not the full row x col cross product");
    for (auto& [tile, segs] : tiles) {
      std::sort(segs.begin(), segs.end());
      index_t at = 0;
      bool bad = false;
      for (const auto& [k0, kk] : segs) {
        if (k0 != at) { bad = true; break; }
        at += kk;
      }
      if (bad || at != k)
        add(out, FindingKind::PlanShape, std::nullopt, rm.rank, -1,
            "tile (" + std::to_string(tile.first) + "," +
                std::to_string(tile.second) +
                ") K segments do not partition [0, " + std::to_string(k) +
                ")");
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Pipeline replay.
//
// Re-executes core/srumma.cpp's issue/compute loop on metadata alone: slot
// rotation, A-pool oldest-reader eviction, A-reuse matching, copy-path
// buffer growth and cache-pin lifetimes.  Proves that on a clean plan no
// buffer is read or re-targeted while its get is pending and no handle
// crosses the final barrier unwaited — the static counterpart of the
// UseBeforeWait / UnwaitedAtBarrier diagnostics — and computes the exact
// clean-run footprint the ResourceBound check compares to the closed-form
// ceiling.
// ---------------------------------------------------------------------------

struct ReplayResult {
  std::uint64_t peak_bytes = 0;
  std::uint64_t peak_pins = 0;
};

ReplayResult pipeline_replay(const PlanModel& pm, const RankModel& rm,
                             std::vector<Finding>& out) {
  const MachineModel& mm = pm.cfg.machine;
  const std::vector<Task>& tasks = rm.plan.tasks;
  const int lookahead = rm.lookahead;
  const std::size_t n_slots = static_cast<std::size_t>(lookahead) + 1;
  const std::set<std::size_t> dropped(rm.dropped_waits.begin(),
                                      rm.dropped_waits.end());

  struct SimState {
    index_t i0 = -1, j0 = -1, m = -1, n = -1;
    bool valid = false;
    bool pending = false;
    bool pinned = false;
    std::uint64_t cap = 0;
    std::ptrdiff_t last_user = -1;
    std::size_t src = 0;  ///< task whose acquire left it pending
  };
  std::vector<SimState> a_state(n_slots + 1);
  std::vector<SimState> b_state(n_slots);
  std::vector<std::size_t> slot_a(n_slots, 0);

  std::size_t pins = 0;
  ReplayResult res;
  const auto unpin = [&](SimState& st) {
    if (st.pinned) { st.pinned = false; --pins; }
  };
  const auto sim_acquire = [&](const MatrixLayout& lay, SimState& st,
                               index_t i0, index_t j0, index_t pmi,
                               index_t pnj) {
    st.i0 = i0; st.j0 = j0; st.m = pmi; st.n = pnj;
    st.valid = true;
    st.pending = false;
    const bool direct =
        pm.cfg.options.shm_flavor == ShmFlavor::Direct &&
        lay.single_owner_in_domain(mm, rm.rank, i0, j0, pmi, pnj).has_value();
    if (direct) return;
    st.pending = true;
    st.cap = std::max(st.cap, patch_bytes(pmi, pnj));
    // The cooperative cache routes out-of-domain fetches only; its pin
    // lives until this rank's finish_cache at first-consumer compute.
    if (!lay.rect_in_domain(mm, rm.rank, i0, j0, pmi, pnj)) {
      st.pinned = true;
      ++pins;
      res.peak_pins = std::max<std::uint64_t>(res.peak_pins, pins);
    }
  };

  const auto issue = [&](std::size_t j) {
    const Task& t = tasks[j];
    const std::size_t slot = j % n_slots;
    std::ptrdiff_t ai = -1;
    if (rm.tuned.ordering.a_reuse) {
      for (std::size_t s = 0; s < a_state.size(); ++s) {
        const SimState& st = a_state[s];
        if (st.valid && st.i0 == t.a_i0 && st.j0 == t.a_j0 &&
            st.m == t.a_m && st.n == t.a_n) {
          ai = static_cast<std::ptrdiff_t>(s);
          break;
        }
      }
    }
    if (ai < 0) {
      ai = 0;
      for (std::size_t s = 1; s < a_state.size(); ++s)
        if (a_state[s].last_user <
            a_state[static_cast<std::size_t>(ai)].last_user)
          ai = static_cast<std::ptrdiff_t>(s);
      SimState& ev = a_state[static_cast<std::size_t>(ai)];
      if (ev.pending) {
        add(out, FindingKind::Pipeline, check::Diag::UseBeforeWait, rm.rank,
            static_cast<std::ptrdiff_t>(j),
            "issue of task " + std::to_string(j) +
                " re-targets the A buffer whose get (task " +
                std::to_string(ev.src) + ") was never waited");
        unpin(ev);
        ev.pending = false;
      }
      const auto floor =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(j) -
                                          lookahead);
      if (ev.last_user >= floor)
        add(out, FindingKind::Pipeline, std::nullopt, rm.rank,
            static_cast<std::ptrdiff_t>(j),
            "A-pool eviction invariant broken: buffer's last reader " +
                std::to_string(ev.last_user) + " is not below the compute "
                "floor " + std::to_string(floor));
      sim_acquire(pm.a, ev, t.a_i0, t.a_j0, t.a_m, t.a_n);
      ev.src = j;
    }
    a_state[static_cast<std::size_t>(ai)].last_user =
        static_cast<std::ptrdiff_t>(j);
    slot_a[slot] = static_cast<std::size_t>(ai);
    SimState& bs = b_state[slot];
    if (bs.pending) {
      add(out, FindingKind::Pipeline, check::Diag::UseBeforeWait, rm.rank,
          static_cast<std::ptrdiff_t>(j),
          "issue of task " + std::to_string(j) +
              " re-targets the B slot whose get (task " +
              std::to_string(bs.src) + ") was never waited");
      unpin(bs);
    }
    sim_acquire(pm.b, bs, t.b_i0, t.b_j0, t.b_m, t.b_n);
    bs.src = j;
  };

  std::size_t next_issue = 0;
  for (std::size_t t_idx = 0; t_idx < tasks.size(); ++t_idx) {
    while (next_issue < tasks.size() &&
           next_issue <= t_idx + static_cast<std::size_t>(lookahead))
      issue(next_issue++);
    const std::size_t slot = t_idx % n_slots;
    for (SimState* st : {&a_state[slot_a[slot]], &b_state[slot]}) {
      if (!st->pending) continue;
      if (dropped.count(t_idx) != 0) {
        add(out, FindingKind::Pipeline, check::Diag::UseBeforeWait, rm.rank,
            static_cast<std::ptrdiff_t>(t_idx),
            "dgemm of task " + std::to_string(t_idx) +
                " reads a buffer whose get was never waited (seeded "
                "drop-wait)");
        continue;  // wait skipped: the state stays pending
      }
      st->pending = false;
      unpin(*st);
    }
  }

  for (const std::vector<SimState>* pool : {&a_state, &b_state}) {
    for (const SimState& st : *pool) {
      if (st.pending)
        add(out, FindingKind::Pipeline, check::Diag::UnwaitedAtBarrier,
            rm.rank, static_cast<std::ptrdiff_t>(st.src),
            "get issued by task " + std::to_string(st.src) +
                " crosses the collect_result barrier unwaited");
      res.peak_bytes += st.cap;
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// 3. Commit-chain consistency.
//
// chain_layout groups the plan by C tile with positions in plan order; the
// engine trusts that grouping twice (the task_pos execute gate and the
// tile_tasks handback head scan).  Verifying the two views agree — every
// task exactly once, positions strictly in plan order, tiles homogeneous —
// establishes that the dependency graph is a disjoint union of linear
// chains, hence acyclic.
// ---------------------------------------------------------------------------

void check_chains(const RankModel& rm, std::vector<Finding>& out) {
  const std::size_t n_tasks = rm.plan.tasks.size();
  const engine::ChainLayout& ch = rm.chains;
  if (ch.task_tile.size() != n_tasks || ch.task_pos.size() != n_tasks) {
    add(out, FindingKind::CommitChain, std::nullopt, rm.rank, -1,
        "chain arrays do not cover the plan");
    return;
  }
  std::vector<int> seen(n_tasks, 0);
  for (std::size_t tile = 0; tile < ch.tile_tasks.size(); ++tile) {
    const std::vector<std::size_t>& chain = ch.tile_tasks[tile];
    std::size_t prev = 0;
    for (std::size_t p = 0; p < chain.size(); ++p) {
      const std::size_t idx = chain[p];
      if (idx >= n_tasks) {
        add(out, FindingKind::CommitChain, std::nullopt, rm.rank, -1,
            "chain of tile " + std::to_string(tile) +
                " references task " + std::to_string(idx) + " out of range");
        continue;
      }
      seen[idx] += 1;
      if (ch.task_tile[idx] != static_cast<int>(tile) ||
          ch.task_pos[idx] != static_cast<int>(p))
        add(out, FindingKind::CommitChain, std::nullopt, rm.rank,
            static_cast<std::ptrdiff_t>(idx),
            "task " + std::to_string(idx) + " sits at position " +
                std::to_string(p) + " of tile " + std::to_string(tile) +
                "'s chain but records (tile " +
                std::to_string(ch.task_tile[idx]) + ", pos " +
                std::to_string(ch.task_pos[idx]) +
                ") — the execute gate and the handback head scan disagree");
      if (p > 0 && idx <= prev)
        add(out, FindingKind::CommitChain, std::nullopt, rm.rank,
            static_cast<std::ptrdiff_t>(idx),
            "tile " + std::to_string(tile) +
                "'s chain is not in plan order at position " +
                std::to_string(p) +
                " — commits would not replay the pipeline's accumulation "
                "order and C loses bitwise identity");
      if (p > 0) {
        const Task& x = rm.plan.tasks[chain[p - 1]];
        const Task& y = rm.plan.tasks[idx];
        if (x.ci != y.ci || x.cj != y.cj)
          add(out, FindingKind::CommitChain, std::nullopt, rm.rank,
              static_cast<std::ptrdiff_t>(idx),
              "tile " + std::to_string(tile) +
                  "'s chain mixes tasks of different C tiles");
      }
      prev = idx;
    }
  }
  for (std::size_t i = 0; i < n_tasks; ++i)
    if (seen[i] != 1)
      add(out, FindingKind::CommitChain, std::nullopt, rm.rank,
          static_cast<std::ptrdiff_t>(i),
          "task " + std::to_string(i) + " appears " +
              std::to_string(seen[i]) + " times across the commit chains");
}

// Adopted chains (the recovery model of docs/FAULTS.md §7): when a
// survivor adopts a dead rank's C tile it promises to replay that tile's
// commit chain exactly as the dead rank's own chain_layout grouped it —
// any other order changes the accumulation order and the recovered tile
// loses bitwise identity with the fault-free run.  Clean models adopt
// nothing, so every entry here came from the adopt-chain mutation and the
// analyzer must prove the replay order wrong (or the reference invalid).
void check_adopted_chains(const PlanModel& pm, const RankModel& rm,
                          std::vector<Finding>& out) {
  for (const RankModel::AdoptedChain& ac : rm.adopted_chains) {
    if (ac.dead_rank < 0 ||
        static_cast<std::size_t>(ac.dead_rank) >= pm.ranks.size() ||
        ac.dead_rank == rm.rank) {
      add(out, FindingKind::CommitChain, std::nullopt, rm.rank, -1,
          "adopted chain names an invalid dead rank " +
              std::to_string(ac.dead_rank));
      continue;
    }
    const RankModel& dead = pm.ranks[static_cast<std::size_t>(ac.dead_rank)];
    if (ac.tile >= dead.chains.tile_tasks.size()) {
      add(out, FindingKind::CommitChain, std::nullopt, rm.rank, -1,
          "adopted chain names tile " + std::to_string(ac.tile) +
              " which dead rank " + std::to_string(ac.dead_rank) +
              " does not own");
      continue;
    }
    if (ac.task_idxs != dead.chains.tile_tasks[ac.tile])
      add(out, FindingKind::CommitChain, std::nullopt, rm.rank, -1,
          "rank " + std::to_string(rm.rank) + " adopts dead rank " +
              std::to_string(ac.dead_rank) + "'s tile " +
              std::to_string(ac.tile) +
              " but replays its commit chain out of plan order — the "
              "recovered tile would not be bitwise identical to the "
              "fault-free run");
  }
}

// ---------------------------------------------------------------------------
// 4. Steal-protocol fixpoint.
//
// Simulates the engine's scheduling rules at the dependency level for
// adversarial steal scenarios: thieves pre-claim a chosen subset of every
// rank's stealable tasks (none / all / every second one).  Owners issue in
// plan order under the lookahead window, execute any in-flight task whose
// chain position equals its tile's commit count, thieves finish a stolen
// task once its predecessor products committed, and owners commit a
// finished handback when it is the chain head — exactly run_plan's gates.
// Reaching a fixpoint short of full commitment is a protocol deadlock; the
// clean-plan proof mechanizes the earliest-uncommitted-position induction
// (the minimal uncommitted plan index is always its tile's head and always
// runnable).
// ---------------------------------------------------------------------------

void steal_fixpoint(const PlanModel& pm, std::vector<Finding>& out) {
  struct Scenario {
    const char* name;
    int keep_mod;  // steal stealable[i] when i % keep_mod == 0; 0 = none
  };
  const Scenario scenarios[] = {{"none-stolen", 0},
                                {"all-stolen", 1},
                                {"alternate-stolen", 2}};

  for (const Scenario& sc : scenarios) {
    struct RankSim {
      std::set<std::size_t> stolen;
      std::vector<int> commits;
      std::vector<std::size_t> inflight;
      std::size_t next = 0;
      std::size_t committed = 0;
      std::set<std::size_t> thief_done;
      std::set<std::size_t> hb_done;
    };
    std::vector<RankSim> sims(pm.ranks.size());
    std::size_t total = 0;
    for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
      sims[r].commits.assign(pm.ranks[r].chains.tile_tasks.size(), 0);
      total += pm.ranks[r].plan.tasks.size();
      if (sc.keep_mod > 0)
        for (std::size_t s = 0; s < pm.ranks[r].stealable.size(); ++s)
          if (s % static_cast<std::size_t>(sc.keep_mod) == 0)
            sims[r].stolen.insert(pm.ranks[r].stealable[s]);
    }

    std::size_t committed_team = 0;
    bool changed = true;
    while (changed && committed_team < total) {
      changed = false;
      for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
        const RankModel& rm = pm.ranks[r];
        RankSim& st = sims[r];
        const std::size_t n = rm.plan.tasks.size();
        const std::size_t window =
            static_cast<std::size_t>(rm.lookahead) + 1;
        const auto topup = [&] {
          while (st.inflight.size() < window && st.next < n) {
            const std::size_t idx = st.next++;
            changed = true;
            if (st.stolen.count(idx) != 0) continue;  // thief's problem now
            st.inflight.push_back(idx);
          }
        };
        topup();
        // Execute every gated-open own task (the engine picks by readiness;
        // for deadlock freedom only the gate matters).
        bool ran = true;
        while (ran) {
          ran = false;
          for (std::size_t p = 0; p < st.inflight.size(); ++p) {
            const std::size_t idx = st.inflight[p];
            const int tile = rm.chains.task_tile[idx];
            if (rm.chains.task_pos[idx] !=
                st.commits[static_cast<std::size_t>(tile)])
              continue;
            st.commits[static_cast<std::size_t>(tile)] += 1;
            ++st.committed;
            ++committed_team;
            st.inflight.erase(st.inflight.begin() +
                              static_cast<std::ptrdiff_t>(p));
            topup();
            ran = true;
            changed = true;
            break;
          }
        }
        // Thieves: a claimed task runs once its predecessors committed
        // (the try_steal predicate; a blocked thief wakes on that commit).
        for (const std::size_t idx : st.stolen) {
          if (st.thief_done.count(idx) != 0) continue;
          const int tile = rm.chains.task_tile[idx];
          if (st.commits[static_cast<std::size_t>(tile)] >=
              rm.chains.task_pos[idx]) {
            st.thief_done.insert(idx);
            changed = true;
          }
        }
        // Handbacks: run_plan scans each tile's chain *head* for a
        // claimed-and-done descriptor — a done thief result anywhere else
        // in the chain is invisible to it.
        for (std::size_t tile = 0; tile < rm.chains.tile_tasks.size();
             ++tile) {
          const std::vector<std::size_t>& chain = rm.chains.tile_tasks[tile];
          const auto pos = static_cast<std::size_t>(st.commits[tile]);
          if (pos >= chain.size()) continue;
          const std::size_t head = chain[pos];
          if (st.stolen.count(head) == 0 || st.hb_done.count(head) != 0 ||
              st.thief_done.count(head) == 0)
            continue;
          st.hb_done.insert(head);
          st.commits[tile] += 1;
          ++st.committed;
          ++committed_team;
          changed = true;
        }
      }
    }

    if (committed_team < total) {
      for (std::size_t r = 0; r < pm.ranks.size(); ++r) {
        const RankSim& st = sims[r];
        const RankModel& rm = pm.ranks[r];
        if (st.committed == rm.plan.tasks.size()) continue;
        std::string stuck;
        for (std::size_t tile = 0; tile < rm.chains.tile_tasks.size();
             ++tile) {
          if (static_cast<std::size_t>(st.commits[tile]) <
              rm.chains.tile_tasks[tile].size()) {
            if (!stuck.empty()) stuck += ", ";
            stuck += std::to_string(tile) + "@" +
                     std::to_string(st.commits[tile]);
            if (stuck.size() > 60) { stuck += ", ..."; break; }
          }
        }
        add(out, FindingKind::StealProtocol, std::nullopt,
            static_cast<int>(r), -1,
            std::string("steal scenario '") + sc.name +
                "' deadlocks: rank committed " +
                std::to_string(st.committed) + "/" +
                std::to_string(rm.plan.tasks.size()) +
                " products, tiles stuck at " + stuck);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Steal-scratch aliasing.
//
// A thief's scratch tile must be fresh storage: it is copied over the
// victim's C tile only at handback, under the commit gate.  A scratch
// aliased onto any part of the victim's live C block races the victim's own
// commits with no epoch separating them — exactly the overlap test the
// dynamic checker applies, run here over the modeled footprints.
// ---------------------------------------------------------------------------

check::Footprint tile_footprint(const Task& t, index_t block_rows) {
  check::Footprint fp;
  fp.lo = static_cast<std::uint64_t>(t.cj * block_rows + t.ci) *
          sizeof(double);
  fp.rows = static_cast<std::uint64_t>(t.cm) * sizeof(double);
  fp.cols = static_cast<std::uint64_t>(t.cn);
  fp.ld = static_cast<std::uint64_t>(block_rows) * sizeof(double);
  return fp;
}

void check_scratch_alias(const PlanModel& pm, const RankModel& rm,
                         std::vector<Finding>& out) {
  if (rm.scratch_alias.empty()) return;
  const index_t block_rows = pm.c.block_rows(rm.rank);
  for (const std::size_t idx : rm.scratch_alias) {
    const check::Footprint scratch =
        tile_footprint(rm.plan.tasks[idx], block_rows);
    for (std::size_t j = 0; j < rm.plan.tasks.size(); ++j) {
      const check::Footprint owned =
          tile_footprint(rm.plan.tasks[j], block_rows);
      if (check::footprints_overlap(scratch, owned)) {
        add(out, FindingKind::StealProtocol, check::Diag::EpochConflict,
            rm.rank, static_cast<std::ptrdiff_t>(idx),
            "thief scratch of stolen task " + std::to_string(idx) +
                " aliases the victim's live C block (overlaps the write "
                "footprint of task " + std::to_string(j) +
                ") — the gemm into scratch races the owner's commits");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 6. Resource bounds.
// ---------------------------------------------------------------------------

struct RankBounds {
  std::uint64_t pipeline_bytes = 0;
  std::uint64_t engine_bytes = 0;
  std::uint64_t pipeline_pins = 0;
  std::uint64_t engine_pins = 0;
};

RankBounds rank_bounds(const PlanModel& pm, const RankModel& rm) {
  const MachineModel& mm = pm.cfg.machine;
  const std::vector<Task>& tasks = rm.plan.tasks;
  RankBounds rb;
  if (tasks.empty()) return rb;

  std::uint64_t max_a = 0, max_b = 0;
  bool any_remote = false;
  for (const Task& t : tasks) {
    max_a = std::max(max_a, patch_bytes(t.a_m, t.a_n));
    max_b = std::max(max_b, patch_bytes(t.b_m, t.b_n));
    // Cache pins exist only for out-of-domain fetches; reuse the verified
    // locality flags (a widened window may leave the matrix, so recomputing
    // here could trap — the shape check already reported it).
    if (!t.a_in_domain || !t.b_in_domain) any_remote = true;
  }
  const std::uint64_t n_slots = static_cast<std::uint64_t>(rm.lookahead) + 1;
  const std::uint64_t window = n_slots;  // engine issue window

  // Pipeline: (lookahead+2) A states + (lookahead+1) B slots, each capped
  // by the largest patch it can ever be grown to.  Holds for any execution
  // order, including fault requeues (caps are grow-only per state and a
  // requeued task's patches obey the same maxima).
  rb.pipeline_bytes = (n_slots + 1) * max_a + n_slots * max_b;
  // One pin per unwaited copy-path acquire: at most lookahead+2 A states
  // and lookahead+1 B slots are ever unwaited at once.
  rb.pipeline_pins = any_remote ? 2 * n_slots + 1 : 0;

  // Engine: slots dedup by patch identity.  A slot is live only while some
  // consumer is uncommitted; at issue cursor n that consumer is either a
  // plan index > n (the slot's [first, last] consumer interval then spans
  // n — the sweep term) or one of the <= window issued-uncommitted tasks
  // (each pinning at most one A and one B slot — the additive term).  The
  // bound therefore holds for arbitrary commit orders and steal
  // interleavings, not just the replayed clean order.
  struct SlotSpan {
    std::uint64_t bytes = 0;
    std::size_t first = 0, last = 0;
  };
  std::vector<SlotSpan> spans;
  std::map<std::array<index_t, 4>, std::size_t> a_of, b_of;
  const auto touch = [&](std::map<std::array<index_t, 4>, std::size_t>& m,
                         index_t i0, index_t j0, index_t pmi, index_t pnj,
                         std::size_t i) {
    const auto [it, fresh] =
        m.try_emplace(std::array<index_t, 4>{i0, j0, pmi, pnj},
                      spans.size());
    if (fresh)
      spans.push_back(SlotSpan{patch_bytes(pmi, pnj), i, i});
    else
      spans[it->second].last = i;
  };
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    touch(a_of, tasks[i].a_i0, tasks[i].a_j0, tasks[i].a_m, tasks[i].a_n, i);
    touch(b_of, tasks[i].b_i0, tasks[i].b_j0, tasks[i].b_m, tasks[i].b_n, i);
  }
  std::vector<std::uint64_t> delta(tasks.size() + 1, 0);
  std::vector<std::uint64_t> drop(tasks.size() + 1, 0);
  for (const SlotSpan& s : spans) {
    delta[s.first] += s.bytes;
    drop[s.last + 1] += s.bytes;
  }
  std::uint64_t live = 0, sweep_max = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    live += delta[i];
    live -= drop[i];
    sweep_max = std::max(sweep_max, live);
  }
  rb.engine_bytes = sweep_max + window * (max_a + max_b);
  // <= window own tasks hold unwaited slots (2 each) plus one in-flight
  // steal's scratch operands.
  rb.engine_pins =
      any_remote || mm.domain_size() > 1 ? 2 * window + 2 : 2 * window;
  if (!any_remote) rb.engine_pins = 0;
  return rb;
}

}  // namespace

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::PlanShape: return "plan-shape";
    case FindingKind::EpochSafety: return "epoch-safety";
    case FindingKind::Pipeline: return "pipeline";
    case FindingKind::CommitChain: return "commit-chain";
    case FindingKind::StealProtocol: return "steal-protocol";
    case FindingKind::ResourceBound: return "resource-bound";
  }
  return "?";
}

AnalysisReport analyze(const PlanModel& pm) {
  AnalysisReport rep;
  std::uint64_t replay_peak_bytes = 0;
  std::uint64_t replay_peak_pins = 0;
  std::vector<RankBounds> per_rank;
  per_rank.reserve(pm.ranks.size());

  for (const RankModel& rm : pm.ranks) {
    rep.total_tasks += rm.plan.tasks.size();
    rep.total_stealable += rm.stealable.size();
    rep.total_tiles += rm.chains.tile_tasks.size();
    rep.max_lookahead = std::max(rep.max_lookahead, rm.lookahead);

    check_plan_shape(pm, rm, rep.findings);
    check_chains(rm, rep.findings);
    check_adopted_chains(pm, rm, rep.findings);
    check_scratch_alias(pm, rm, rep.findings);
    const ReplayResult rr = pipeline_replay(pm, rm, rep.findings);
    replay_peak_bytes = std::max(replay_peak_bytes, rr.peak_bytes);
    replay_peak_pins = std::max(replay_peak_pins, rr.peak_pins);
    per_rank.push_back(rank_bounds(pm, rm));
  }

  steal_fixpoint(pm, rep.findings);

  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const RankBounds& rb = per_rank[r];
    rep.bounds.pipeline_buffer_bytes =
        std::max(rep.bounds.pipeline_buffer_bytes, rb.pipeline_bytes);
    rep.bounds.engine_buffer_bytes =
        std::max(rep.bounds.engine_buffer_bytes, rb.engine_bytes);
    rep.bounds.pipeline_cache_pins =
        std::max(rep.bounds.pipeline_cache_pins, rb.pipeline_pins);
    rep.bounds.engine_cache_pins =
        std::max(rep.bounds.engine_cache_pins, rb.engine_pins);
  }
  rep.bounds.buffer_bytes = std::max(rep.bounds.pipeline_buffer_bytes,
                                     rep.bounds.engine_buffer_bytes);
  rep.bounds.cache_pins = std::max(rep.bounds.pipeline_cache_pins,
                                   rep.bounds.engine_cache_pins);
  rep.pipeline_replay_peak_bytes = replay_peak_bytes;
  rep.pipeline_replay_peak_pins = replay_peak_pins;

  if (replay_peak_bytes > rep.bounds.pipeline_buffer_bytes)
    add(rep.findings, FindingKind::ResourceBound, std::nullopt, -1, -1,
        "pipeline replay peak " + std::to_string(replay_peak_bytes) +
            " bytes exceeds the static bound " +
            std::to_string(rep.bounds.pipeline_buffer_bytes));
  if (replay_peak_pins > rep.bounds.pipeline_cache_pins)
    add(rep.findings, FindingKind::ResourceBound, std::nullopt, -1, -1,
        "pipeline replay holds " + std::to_string(replay_peak_pins) +
            " cache pins, above the static bound " +
            std::to_string(rep.bounds.pipeline_cache_pins));
  return rep;
}

namespace {

void append_escaped_json(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) out += ch;
    }
  }
  out += '"';
}

}  // namespace

std::string report_json(const PlanModel& pm, const AnalysisReport& rep,
                        const std::string& mutation,
                        const std::string& mutation_detail) {
  const SrummaOptions& o = pm.cfg.options;
  std::string j = "{\"schema\":\"srumma-analysis/1\",\"machine\":";
  append_escaped_json(j, pm.cfg.machine.name);
  j += ",\"ranks\":" + std::to_string(pm.cfg.machine.total_ranks());
  j += ",\"m\":" + std::to_string(pm.cfg.m) +
       ",\"n\":" + std::to_string(pm.cfg.n) +
       ",\"k\":" + std::to_string(pm.cfg.k);
  j += ",\"options\":{\"ta\":";
  j += o.ta == blas::Trans::Yes ? "1" : "0";
  j += ",\"tb\":";
  j += o.tb == blas::Trans::Yes ? "1" : "0";
  j += ",\"flavor\":\"";
  j += o.shm_flavor == ShmFlavor::Direct ? "direct" : "copy";
  j += "\",\"nonblocking\":";
  j += o.nonblocking ? "true" : "false";
  j += ",\"max_lookahead\":" + std::to_string(rep.max_lookahead) + "}";
  j += ",\"total_tasks\":" + std::to_string(rep.total_tasks);
  j += ",\"total_tiles\":" + std::to_string(rep.total_tiles);
  j += ",\"stealable_tasks\":" + std::to_string(rep.total_stealable);
  j += ",\"bounds\":{\"buffer_bytes_peak_bound\":" +
       std::to_string(rep.bounds.buffer_bytes);
  j += ",\"pipeline_buffer_bytes_bound\":" +
       std::to_string(rep.bounds.pipeline_buffer_bytes);
  j += ",\"engine_buffer_bytes_bound\":" +
       std::to_string(rep.bounds.engine_buffer_bytes);
  j += ",\"cache_pins_bound\":" + std::to_string(rep.bounds.cache_pins);
  j += ",\"pipeline_cache_pins_bound\":" +
       std::to_string(rep.bounds.pipeline_cache_pins);
  j += ",\"engine_cache_pins_bound\":" +
       std::to_string(rep.bounds.engine_cache_pins);
  j += ",\"pipeline_replay_peak_bytes\":" +
       std::to_string(rep.pipeline_replay_peak_bytes);
  j += ",\"pipeline_replay_peak_pins\":" +
       std::to_string(rep.pipeline_replay_peak_pins) + "}";
  j += ",\"mutation\":";
  append_escaped_json(j, mutation);
  if (!mutation_detail.empty()) {
    j += ",\"mutation_detail\":";
    append_escaped_json(j, mutation_detail);
  }
  j += ",\"findings\":[";
  for (std::size_t i = 0; i < rep.findings.size(); ++i) {
    const Finding& f = rep.findings[i];
    if (i > 0) j += ",";
    j += "{\"kind\":\"";
    j += finding_kind_name(f.kind);
    j += "\"";
    if (f.diag.has_value()) {
      j += ",\"diag\":\"";
      j += check::diag_name(*f.diag);
      j += "\"";
    }
    j += ",\"rank\":" + std::to_string(f.rank);
    j += ",\"task\":" + std::to_string(f.task);
    j += ",\"message\":";
    append_escaped_json(j, f.message);
    j += "}";
  }
  j += "],\"certified\":";
  j += rep.certified() ? "true" : "false";
  j += "}";
  return j;
}

}  // namespace srumma::analysis
