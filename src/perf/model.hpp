#pragma once
// Analytic efficiency model of SRUMMA (paper Section 2.1).
//
// The paper costs an N x N x N multiply on P = sqrt(P) x sqrt(P) processes
// as (eq. 1):
//
//     T_par_rma = N^3/P + 2 (N^2/sqrt(P)) t_w + 2 t_s sqrt(P)
//
// in units where one multiply-add costs 1; here everything is in seconds,
// so the compute term carries t_ma (seconds per multiply-add).  With
// nonblocking gets a fraction of the communication hides behind
// computation; omega is the *exposed* fraction (the paper reports omega
// < 10% on the Linux cluster), giving (eq. 3):
//
//     T = N^3 t_ma / P + omega * 2 (N^2/sqrt(P)) t_w + 2 t_s sqrt(P)
//
// Parallel efficiency (t_s neglected):  eta = 1 / (1 + 2 sqrt(P) t_w /
// (N t_ma)), whose isoefficiency function is O(P^1.5) — the same as
// Cannon's algorithm.

#include "machine/machine.hpp"

namespace srumma::perf {

struct CostParams {
  double t_ma;  ///< seconds per multiply-add (2 flops)
  double t_w;   ///< data transfer seconds per matrix element
  double t_s;   ///< per-transfer latency / startup seconds
};

/// Derive model parameters from a machine model.  `n_hint` selects the
/// dgemm efficiency point (per-block rate depends on block size).
[[nodiscard]] CostParams params_from_machine(const MachineModel& m,
                                             index_t n_hint);

/// Sequential time: N^3 multiply-adds.
[[nodiscard]] double t_seq(double n, const CostParams& p);

/// Eq. (1): fully exposed communication.
[[nodiscard]] double t_par_rma(double n, double nproc, const CostParams& p);

/// Eq. (3): `omega` in [0, 1] is the exposed (non-overlapped) fraction of
/// the communication term.
[[nodiscard]] double t_par_rma_overlap(double n, double nproc,
                                       const CostParams& p, double omega);

/// Parallel efficiency eta = speedup / P (t_s neglected, as in the paper).
[[nodiscard]] double efficiency(double n, double nproc, const CostParams& p);

/// Isoefficiency: the N required to sustain efficiency `eta` on P
/// processors.  N grows like sqrt(P), so work N^3 grows like P^1.5.
[[nodiscard]] double isoefficiency_n(double nproc, double eta,
                                     const CostParams& p);

}  // namespace srumma::perf
