#include "perf/model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace srumma::perf {

CostParams params_from_machine(const MachineModel& m, index_t n_hint) {
  CostParams p{};
  p.t_ma = 2.0 / m.dgemm.rate(n_hint, n_hint, n_hint);
  p.t_w = sizeof(double) / m.net_bw;
  p.t_s = m.net_latency;
  return p;
}

double t_seq(double n, const CostParams& p) { return n * n * n * p.t_ma; }

double t_par_rma(double n, double nproc, const CostParams& p) {
  return t_par_rma_overlap(n, nproc, p, 1.0);
}

double t_par_rma_overlap(double n, double nproc, const CostParams& p,
                         double omega) {
  SRUMMA_REQUIRE(n > 0 && nproc >= 1, "model: need n > 0 and P >= 1");
  SRUMMA_REQUIRE(omega >= 0.0 && omega <= 1.0, "model: omega in [0,1]");
  const double sq = std::sqrt(nproc);
  return n * n * n * p.t_ma / nproc + omega * 2.0 * (n * n / sq) * p.t_w +
         2.0 * p.t_s * sq;
}

double efficiency(double n, double nproc, const CostParams& p) {
  SRUMMA_REQUIRE(n > 0 && nproc >= 1, "model: need n > 0 and P >= 1");
  return 1.0 / (1.0 + 2.0 * std::sqrt(nproc) * p.t_w / (n * p.t_ma));
}

double isoefficiency_n(double nproc, double eta, const CostParams& p) {
  SRUMMA_REQUIRE(eta > 0.0 && eta < 1.0, "model: eta in (0,1)");
  // Solve eta = 1 / (1 + 2 sqrt(P) t_w / (N t_ma)) for N.
  return 2.0 * std::sqrt(nproc) * (p.t_w / p.t_ma) * eta / (1.0 - eta);
}

}  // namespace srumma::perf
