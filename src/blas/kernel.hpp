#pragma once
// The dgemm kernel subsystem: register-tile micro-kernels behind a runtime
// dispatch.
//
// The blocked driver (gemm_blocked.cpp) factors the Goto/BLIS decomposition
// into a kernel-independent packing/blocking skeleton and a per-ISA
// register-tile micro-kernel described by GemmKernel.  Kernels are selected
// once at startup: the SRUMMA_GEMM_KERNEL environment variable if set
// (scalar | portable | avx2; "auto" or unset picks the highest-priority
// kernel this CPU supports via __builtin_cpu_supports).  Tests and benches
// can pin a kernel programmatically with set_active_kernel() or run one
// explicitly with gemm_blocked_with().
//
// Packed-panel formats (fixed by the driver, shared by every kernel):
//   Ap: ceil(mc/mr) panels, each kc columns of mr contiguous rows (alpha
//       folded in); panel i starts at ap + i*kc*mr and is 64-byte aligned
//       whenever mr*sizeof(double) is a multiple of 64 or kc*mr is.
//   Bp: ceil(nc/nr) panels, each kc rows of nr contiguous columns.
// Rows/columns beyond the live extent of a partial tile are left unpacked;
// the driver routes partial tiles to the kernel's edge path, which must not
// read them.

#include <string_view>
#include <vector>

#include "blas/gemm.hpp"

namespace srumma::blas {

/// Full register tile: C[0:mr, 0:nr] += Ap_panel * Bp_panel, C unpacked
/// column-major with leading dimension ldc.
using MicroKernelFn = void (*)(index_t kc, const double* ap, const double* bp,
                               double* c, index_t ldc);

/// Edge tile: same contract restricted to the live mr_eff x nr_eff corner
/// (mr_eff <= mr, nr_eff <= nr); must not touch C or the packed panels
/// outside it.
using EdgeKernelFn = void (*)(index_t kc, const double* ap, const double* bp,
                              double* c, index_t ldc, index_t mr_eff,
                              index_t nr_eff);

/// One registered micro-kernel plus the cache-blocking constants tuned for
/// it.  All instances have static storage duration; pointers returned by
/// the registry are valid for the program lifetime.
struct GemmKernel {
  const char* name;     ///< dispatch key: "scalar", "portable", "avx2", ...
  index_t mr, nr;       ///< register tile footprint
  index_t mc, kc, nc;   ///< cache blocking (A panel mc x kc, B panel kc x nc)
  MicroKernelFn full;   ///< full mr x nr tile
  EdgeKernelFn edge;    ///< partial tails (never sees a full tile)
  bool (*supported)();  ///< runtime CPU capability check
  int priority;         ///< auto-selection rank; higher wins
};

/// Every kernel compiled into this binary, in registration order.  Entries
/// may be unsupported on the running CPU; check supported() before use.
[[nodiscard]] const std::vector<const GemmKernel*>& kernel_registry();

/// Kernel by dispatch name, or nullptr if not compiled in.
[[nodiscard]] const GemmKernel* find_kernel(std::string_view name);

/// The kernel gemm()/gemm_blocked() dispatch to.  Resolved once on first
/// use: SRUMMA_GEMM_KERNEL if set (throws srumma::Error when unknown or
/// unsupported), otherwise the highest-priority supported kernel.
[[nodiscard]] const GemmKernel& active_kernel();

/// Re-pin the active kernel by name; "auto" restores default selection.
/// Throws srumma::Error for unknown or unsupported kernels.
void set_active_kernel(std::string_view name);

/// gemm_blocked through an explicit kernel, bypassing dispatch — the entry
/// point of the kernel verification harness and the per-kernel benches.
void gemm_blocked_with(const GemmKernel& kernel, Trans ta, Trans tb, index_t m,
                       index_t n, index_t k, double alpha, const double* a,
                       index_t lda, const double* b, index_t ldb, double beta,
                       double* c, index_t ldc);

/// Bytes currently held by the calling thread's packing buffers.
[[nodiscard]] std::size_t pack_buffer_bytes();

/// Release the calling thread's packing buffers (they are grow-only
/// otherwise).  Long-lived processes and stress tests use this to keep
/// resident memory honest between phases.
void reset_pack_buffers();

namespace detail {
const GemmKernel& scalar_kernel();
const GemmKernel& portable_kernel();
}  // namespace detail

}  // namespace srumma::blas
