#include "blas/gemm.hpp"

namespace srumma::blas {

namespace {
// Element accessor applying the op() transposition: op(A)(i, p).
inline double at(Trans t, const double* x, index_t ldx, index_t i, index_t p) {
  return t == Trans::No ? x[i + p * ldx] : x[p + i * ldx];
}
}  // namespace

void gemm_naive(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                double alpha, const double* a, index_t lda, const double* b,
                index_t ldb, double beta, double* c, index_t ldc) {
  detail::check_gemm_args(ta, tb, m, n, k, lda, ldb, ldc);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p) {
        acc += at(ta, a, lda, i, p) * at(tb, b, ldb, p, j);
      }
      double& cij = c[i + j * ldc];
      cij = alpha * acc + (beta == 0.0 ? 0.0 : beta * cij);
    }
  }
}

}  // namespace srumma::blas
