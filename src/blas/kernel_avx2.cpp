// AVX2/FMA 8x6 micro-kernel.  This TU is the only one compiled with
// -mavx2 -mfma (see src/blas/CMakeLists.txt); the registry consults
// supported() before ever dispatching here, so the binary stays runnable
// on CPUs without AVX2.
//
// Register budget (16 ymm): 12 accumulators (2 ymm per column x 6 columns)
// + 2 for the A column + broadcasts, the classic FMA-bound 8x6 tile.  A
// panels are packed 8 doubles per k step (64 bytes), so A loads are
// aligned; B is read via broadcasts where alignment is irrelevant.

#include "blas/kernel.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace srumma::blas::detail {

// Declared here (not in kernel.hpp) so translation units of the library
// can reference the kernel only when it is compiled in.
const GemmKernel& avx2_kernel();

namespace {

constexpr index_t kMr = 8;
constexpr index_t kNr = 6;

#if defined(__AVX2__) && defined(__FMA__)

void avx2_full(index_t kc, const double* ap, const double* bp, double* c,
               index_t ldc) {
  // Named accumulators, not arrays: with `__m256d acc[6]` GCC keeps the
  // array live on the stack and mirrors every FMA result back to memory
  // (12 extra stores per k step), halving throughput.
  __m256d c0l = _mm256_setzero_pd(), c0h = _mm256_setzero_pd();
  __m256d c1l = _mm256_setzero_pd(), c1h = _mm256_setzero_pd();
  __m256d c2l = _mm256_setzero_pd(), c2h = _mm256_setzero_pd();
  __m256d c3l = _mm256_setzero_pd(), c3h = _mm256_setzero_pd();
  __m256d c4l = _mm256_setzero_pd(), c4h = _mm256_setzero_pd();
  __m256d c5l = _mm256_setzero_pd(), c5h = _mm256_setzero_pd();
  for (index_t p = 0; p < kc; ++p, ap += kMr, bp += kNr) {
    const __m256d a_lo = _mm256_load_pd(ap);
    const __m256d a_hi = _mm256_load_pd(ap + 4);
    __m256d bs = _mm256_broadcast_sd(bp + 0);
    c0l = _mm256_fmadd_pd(a_lo, bs, c0l);
    c0h = _mm256_fmadd_pd(a_hi, bs, c0h);
    bs = _mm256_broadcast_sd(bp + 1);
    c1l = _mm256_fmadd_pd(a_lo, bs, c1l);
    c1h = _mm256_fmadd_pd(a_hi, bs, c1h);
    bs = _mm256_broadcast_sd(bp + 2);
    c2l = _mm256_fmadd_pd(a_lo, bs, c2l);
    c2h = _mm256_fmadd_pd(a_hi, bs, c2h);
    bs = _mm256_broadcast_sd(bp + 3);
    c3l = _mm256_fmadd_pd(a_lo, bs, c3l);
    c3h = _mm256_fmadd_pd(a_hi, bs, c3h);
    bs = _mm256_broadcast_sd(bp + 4);
    c4l = _mm256_fmadd_pd(a_lo, bs, c4l);
    c4h = _mm256_fmadd_pd(a_hi, bs, c4h);
    bs = _mm256_broadcast_sd(bp + 5);
    c5l = _mm256_fmadd_pd(a_lo, bs, c5l);
    c5h = _mm256_fmadd_pd(a_hi, bs, c5h);
  }
  const __m256d acc_lo[kNr] = {c0l, c1l, c2l, c3l, c4l, c5l};
  const __m256d acc_hi[kNr] = {c0h, c1h, c2h, c3h, c4h, c5h};
  for (index_t s = 0; s < kNr; ++s) {
    double* cs = c + s * ldc;
    _mm256_storeu_pd(cs, _mm256_add_pd(_mm256_loadu_pd(cs), acc_lo[s]));
    _mm256_storeu_pd(cs + 4, _mm256_add_pd(_mm256_loadu_pd(cs + 4), acc_hi[s]));
  }
}

#endif  // __AVX2__ && __FMA__

// Tails are latency-bound scalar work either way; keep them simple.  The
// compiler still contracts the multiply-adds to FMAs in this TU.
void avx2_edge(index_t kc, const double* ap, const double* bp, double* c,
               index_t ldc, index_t mr_eff, index_t nr_eff) {
  double acc[kMr][kNr] = {};
  for (index_t p = 0; p < kc; ++p, ap += kMr, bp += kNr) {
    for (index_t s = 0; s < nr_eff; ++s) {
      const double bs = bp[s];
      for (index_t r = 0; r < mr_eff; ++r) acc[r][s] += ap[r] * bs;
    }
  }
  for (index_t s = 0; s < nr_eff; ++s)
    for (index_t r = 0; r < mr_eff; ++r) c[r + s * ldc] += acc[r][s];
}

bool avx2_supported() {
#if defined(__AVX2__) && defined(__FMA__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

const GemmKernel& avx2_kernel() {
  static const GemmKernel k{"avx2",
                            kMr,
                            kNr,
                            /*mc=*/128,
                            /*kc=*/256,
                            /*nc=*/1020,
#if defined(__AVX2__) && defined(__FMA__)
                            avx2_full,
#else
                            nullptr,
#endif
                            avx2_edge,
                            avx2_supported,
                            /*priority=*/100};
  return k;
}

}  // namespace srumma::blas::detail
