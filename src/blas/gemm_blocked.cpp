#include <algorithm>
#include <cstring>

#include "blas/gemm.hpp"
#include "util/aligned.hpp"

// Cache-blocked dgemm following the Goto/BLIS decomposition:
//   jc-loop over N by kNc  -> pack B panel (kc x nc) into Bp
//   pc-loop over K by kKc
//   ic-loop over M by kMc  -> pack A panel (mc x kc) into Ap (alpha folded in)
//   macro kernel: kMr x kNr register tiles with the k-loop innermost region
//   packed so every load is unit-stride.
// Transposition is applied during packing, so the kernel itself only ever
// sees the non-transposed layout.

namespace srumma::blas {

namespace {

constexpr index_t kMc = 128;
constexpr index_t kKc = 256;
constexpr index_t kNc = 1024;
constexpr index_t kMr = 8;
constexpr index_t kNr = 4;

// Pack op(A)[ic:ic+mc, pc:pc+kc] into Ap as mr-wide row panels:
// Ap holds ceil(mc/mr) panels, each kc columns of mr contiguous rows,
// zero-padded to mr.  alpha is folded in here (once per element).
void pack_a(Trans ta, const double* a, index_t lda, index_t ic, index_t pc,
            index_t mc, index_t kc, double alpha, double* ap) {
  for (index_t i0 = 0; i0 < mc; i0 += kMr) {
    const index_t mr = std::min(kMr, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t r = 0; r < mr; ++r) {
        const index_t gi = ic + i0 + r;
        const index_t gp = pc + p;
        const double v =
            ta == Trans::No ? a[gi + gp * lda] : a[gp + gi * lda];
        ap[p * kMr + r] = alpha * v;
      }
      for (index_t r = mr; r < kMr; ++r) ap[p * kMr + r] = 0.0;
    }
    ap += kc * kMr;
  }
}

// Pack op(B)[pc:pc+kc, jc:jc+nc] into Bp as nr-wide column panels:
// Bp holds ceil(nc/nr) panels, each kc rows of nr contiguous columns,
// zero-padded to nr.
void pack_b(Trans tb, const double* b, index_t ldb, index_t pc, index_t jc,
            index_t kc, index_t nc, double* bp) {
  for (index_t j0 = 0; j0 < nc; j0 += kNr) {
    const index_t nr = std::min(kNr, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t s = 0; s < nr; ++s) {
        const index_t gp = pc + p;
        const index_t gj = jc + j0 + s;
        bp[p * kNr + s] =
            tb == Trans::No ? b[gp + gj * ldb] : b[gj + gp * ldb];
      }
      for (index_t s = nr; s < kNr; ++s) bp[p * kNr + s] = 0.0;
    }
    bp += kc * kNr;
  }
}

// C[.. mr x nr ..] += Ap_panel * Bp_panel for one register tile.
// acc is kept in locals so the compiler can hold it in registers and
// vectorize the p-loop body.
inline void micro_kernel(index_t kc, const double* ap, const double* bp,
                         double* c, index_t ldc, index_t mr, index_t nr) {
  double acc[kMr][kNr] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* av = ap + p * kMr;
    const double* bv = bp + p * kNr;
    for (index_t s = 0; s < kNr; ++s) {
      const double bsv = bv[s];
      for (index_t r = 0; r < kMr; ++r) acc[r][s] += av[r] * bsv;
    }
  }
  for (index_t s = 0; s < nr; ++s)
    for (index_t r = 0; r < mr; ++r) c[r + s * ldc] += acc[r][s];
}

}  // namespace

void gemm_blocked(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc) {
  SRUMMA_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  SRUMMA_REQUIRE(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");

  // Apply beta once, up front.
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c + j * ldc;
      if (beta == 0.0) {
        std::memset(cj, 0, static_cast<std::size_t>(m) * sizeof(double));
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  thread_local AlignedVector<double> ap_buf;
  thread_local AlignedVector<double> bp_buf;
  ap_buf.resize(static_cast<std::size_t>(((kMc + kMr - 1) / kMr) * kMr * kKc));
  bp_buf.resize(static_cast<std::size_t>(kKc * ((kNc + kNr - 1) / kNr) * kNr));

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      pack_b(tb, b, ldb, pc, jc, kc, nc, bp_buf.data());
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        pack_a(ta, a, lda, ic, pc, mc, kc, alpha, ap_buf.data());
        // Macro kernel over register tiles of the packed panels.
        for (index_t j0 = 0; j0 < nc; j0 += kNr) {
          const index_t nr = std::min(kNr, nc - j0);
          const double* bp = bp_buf.data() + (j0 / kNr) * kc * kNr;
          for (index_t i0 = 0; i0 < mc; i0 += kMr) {
            const index_t mr = std::min(kMr, mc - i0);
            const double* ap = ap_buf.data() + (i0 / kMr) * kc * kMr;
            micro_kernel(kc, ap, bp, c + (ic + i0) + (jc + j0) * ldc, ldc, mr,
                         nr);
          }
        }
      }
    }
  }
}

void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  gemm_blocked(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const index_t m = op_rows(ta, a);
  const index_t ka = op_cols(ta, a);
  const index_t kb = op_rows(tb, b);
  const index_t n = op_cols(tb, b);
  SRUMMA_REQUIRE(ka == kb, "gemm: inner dimensions do not conform");
  SRUMMA_REQUIRE(c.rows() == m && c.cols() == n,
                 "gemm: C dimensions do not conform");
  gemm(ta, tb, m, n, ka, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
       c.data(), c.ld());
}

}  // namespace srumma::blas
