#include <algorithm>
#include <cstring>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "util/aligned.hpp"

// Cache-blocked dgemm driver following the Goto/BLIS decomposition:
//   jc-loop over N by nc  -> pack B panel (kc x nc) into Bp
//   pc-loop over K by kc
//   ic-loop over M by mc  -> pack A panel (mc x kc) into Ap (alpha folded in)
//   macro kernel: mr x nr register tiles with the k-loop innermost; panels
//   are packed so every kernel load is unit-stride.
// Transposition is applied during packing, so kernels only ever see the
// non-transposed layout.  The register tile, its micro-kernel and the
// blocking constants come from the dispatched GemmKernel (kernel.hpp);
// full tiles run the kernel's SIMD path, tails take the edge path and skip
// the dead padded lanes entirely.

namespace srumma::blas {

namespace {

// Grow-only, per-thread packing workspace.  Capacity is derived from what
// the *current* problem needs (not the kernel's worst-case mc*kc / kc*nc
// panels), so a stream of small gemms never touches — or allocates — the
// full panel footprint.  reset_pack_buffers() releases the storage.
thread_local AlignedVector<double> ap_buf;
thread_local AlignedVector<double> bp_buf;

[[nodiscard]] constexpr index_t round_up(index_t x, index_t step) {
  return ((x + step - 1) / step) * step;
}

// Pack op(A)[ic:ic+mc, pc:pc+kc] into Ap as mr-wide row panels: ceil(mc/mr)
// panels, each kc columns of mr contiguous rows, alpha folded in (once per
// element).  Rows past the live extent of the tail panel are left unpacked;
// the driver routes that panel to the edge kernel, which never reads them.
void pack_a(Trans ta, const double* a, index_t lda, index_t ic, index_t pc,
            index_t mc, index_t kc, double alpha, index_t kmr, double* ap) {
  for (index_t i0 = 0; i0 < mc; i0 += kmr) {
    const index_t mr = std::min(kmr, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t r = 0; r < mr; ++r) {
        const index_t gi = ic + i0 + r;
        const index_t gp = pc + p;
        const double v =
            ta == Trans::No ? a[gi + gp * lda] : a[gp + gi * lda];
        ap[p * kmr + r] = alpha * v;
      }
    }
    ap += kc * kmr;
  }
}

// Pack op(B)[pc:pc+kc, jc:jc+nc] into Bp as nr-wide column panels:
// ceil(nc/nr) panels, each kc rows of nr contiguous columns; the tail
// panel's dead columns stay unpacked (edge path only).
void pack_b(Trans tb, const double* b, index_t ldb, index_t pc, index_t jc,
            index_t kc, index_t nc, index_t knr, double* bp) {
  for (index_t j0 = 0; j0 < nc; j0 += knr) {
    const index_t nr = std::min(knr, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t s = 0; s < nr; ++s) {
        const index_t gp = pc + p;
        const index_t gj = jc + j0 + s;
        bp[p * knr + s] =
            tb == Trans::No ? b[gp + gj * ldb] : b[gj + gp * ldb];
      }
    }
    bp += kc * knr;
  }
}

void ensure_capacity(AlignedVector<double>& buf, std::size_t need) {
  if (buf.size() < need) buf.resize(need);
}

}  // namespace

void gemm_blocked_with(const GemmKernel& kern, Trans ta, Trans tb, index_t m,
                       index_t n, index_t k, double alpha, const double* a,
                       index_t lda, const double* b, index_t ldb, double beta,
                       double* c, index_t ldc) {
  detail::check_gemm_args(ta, tb, m, n, k, lda, ldb, ldc);

  // Apply beta once, up front.
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c + j * ldc;
      if (beta == 0.0) {
        std::memset(cj, 0, static_cast<std::size_t>(m) * sizeof(double));
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  const index_t kmc = kern.mc;
  const index_t kkc = kern.kc;
  const index_t knc = kern.nc;
  const index_t kmr = kern.mr;
  const index_t knr = kern.nr;

  // Workspace sized to this problem, capped by the kernel's panel bounds.
  const index_t a_need = std::min(round_up(m, kmr), round_up(kmc, kmr)) *
                         std::min(k, kkc);
  const index_t b_need = std::min(k, kkc) *
                         std::min(round_up(n, knr), round_up(knc, knr));
  ensure_capacity(ap_buf, static_cast<std::size_t>(a_need));
  ensure_capacity(bp_buf, static_cast<std::size_t>(b_need));

  for (index_t jc = 0; jc < n; jc += knc) {
    const index_t nc = std::min(knc, n - jc);
    for (index_t pc = 0; pc < k; pc += kkc) {
      const index_t kc = std::min(kkc, k - pc);
      pack_b(tb, b, ldb, pc, jc, kc, nc, knr, bp_buf.data());
      for (index_t ic = 0; ic < m; ic += kmc) {
        const index_t mc = std::min(kmc, m - ic);
        pack_a(ta, a, lda, ic, pc, mc, kc, alpha, kmr, ap_buf.data());
        // Macro kernel over register tiles of the packed panels.
        for (index_t j0 = 0; j0 < nc; j0 += knr) {
          const index_t nr = std::min(knr, nc - j0);
          const double* bp = bp_buf.data() + (j0 / knr) * kc * knr;
          for (index_t i0 = 0; i0 < mc; i0 += kmr) {
            const index_t mr = std::min(kmr, mc - i0);
            const double* ap = ap_buf.data() + (i0 / kmr) * kc * kmr;
            double* ct = c + (ic + i0) + (jc + j0) * ldc;
            if (mr == kmr && nr == knr) {
              kern.full(kc, ap, bp, ct, ldc);
            } else {
              kern.edge(kc, ap, bp, ct, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
}

std::size_t pack_buffer_bytes() {
  return (ap_buf.capacity() + bp_buf.capacity()) * sizeof(double);
}

void reset_pack_buffers() {
  ap_buf = AlignedVector<double>{};
  bp_buf = AlignedVector<double>{};
}

void gemm_blocked(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc) {
  gemm_blocked_with(active_kernel(), ta, tb, m, n, k, alpha, a, lda, b, ldb,
                    beta, c, ldc);
}

void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  gemm_blocked(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const index_t m = op_rows(ta, a);
  const index_t ka = op_cols(ta, a);
  const index_t kb = op_rows(tb, b);
  const index_t n = op_cols(tb, b);
  SRUMMA_REQUIRE(ka == kb, "gemm: inner dimensions do not conform");
  SRUMMA_REQUIRE(c.rows() == m && c.cols() == n,
                 "gemm: C dimensions do not conform");
  gemm(ta, tb, m, n, ka, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
       c.data(), c.ld());
}

}  // namespace srumma::blas
