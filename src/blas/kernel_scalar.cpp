// Scalar 8x4 micro-kernel: the seed implementation, kept as the always-
// available fallback and the bit-exact numerical baseline.  The accumulator
// lives in locals so the compiler can hold it in registers; no SIMD
// intrinsics, no ISA assumptions beyond plain doubles.
//
// SRUMMA_GEMM_KERNEL=scalar must reproduce the pre-dispatch results
// bit-for-bit, so the floating-point operation order here (p outermost,
// then s, then r, one multiply-add per element) and the blocking constants
// must not change.

#include "blas/kernel.hpp"

namespace srumma::blas::detail {

namespace {

constexpr index_t kMr = 8;
constexpr index_t kNr = 4;

void scalar_full(index_t kc, const double* ap, const double* bp, double* c,
                 index_t ldc) {
  double acc[kMr][kNr] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* av = ap + p * kMr;
    const double* bv = bp + p * kNr;
    for (index_t s = 0; s < kNr; ++s) {
      const double bsv = bv[s];
      for (index_t r = 0; r < kMr; ++r) acc[r][s] += av[r] * bsv;
    }
  }
  for (index_t s = 0; s < kNr; ++s)
    for (index_t r = 0; r < kMr; ++r) c[r + s * ldc] += acc[r][s];
}

// Restricting the loops to the live corner performs, per live element, the
// identical operation sequence as the padded full tile: bit-for-bit equal,
// without the dead-lane arithmetic.
void scalar_edge(index_t kc, const double* ap, const double* bp, double* c,
                 index_t ldc, index_t mr_eff, index_t nr_eff) {
  double acc[kMr][kNr] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* av = ap + p * kMr;
    const double* bv = bp + p * kNr;
    for (index_t s = 0; s < nr_eff; ++s) {
      const double bsv = bv[s];
      for (index_t r = 0; r < mr_eff; ++r) acc[r][s] += av[r] * bsv;
    }
  }
  for (index_t s = 0; s < nr_eff; ++s)
    for (index_t r = 0; r < mr_eff; ++r) c[r + s * ldc] += acc[r][s];
}

}  // namespace

const GemmKernel& scalar_kernel() {
  static const GemmKernel k{
      "scalar", kMr,         kNr,         /*mc=*/128,         /*kc=*/256,
      /*nc=*/1024, scalar_full, scalar_edge, [] { return true; }, /*priority=*/0};
  return k;
}

}  // namespace srumma::blas::detail
