// Portable "simulated vector" micro-kernel: fixed-width lanes of doubles
// that the compiler's autovectorizer maps onto whatever SIMD width the
// build targets (SSE2 on baseline x86-64, AVX/AVX-512 under -march=...),
// with no intrinsics and no pragmas.  Every lane operation is a
// constant-trip-count loop over an aligned array, which is the shape GCC
// and Clang vectorize unconditionally at -O3.
//
// The 8x6 tile matches the AVX2 kernel so a -march=native build of this TU
// reaches similar throughput, while the default build still beats the
// scalar kernel's 8x4 tile on B-panel reuse.

#include "blas/kernel.hpp"

namespace srumma::blas::detail {

namespace {

constexpr index_t kLanes = 4;  // doubles per simulated vector register
constexpr index_t kMr = 2 * kLanes;
constexpr index_t kNr = 6;

struct alignas(kLanes * sizeof(double)) Lane {
  double v[kLanes];
};

inline void lane_fma(Lane& acc, const Lane& a, double b) {
  for (index_t l = 0; l < kLanes; ++l) acc.v[l] += a.v[l] * b;
}

void portable_full(index_t kc, const double* ap, const double* bp, double* c,
                   index_t ldc) {
  Lane acc_lo[kNr] = {};
  Lane acc_hi[kNr] = {};
  for (index_t p = 0; p < kc; ++p, ap += kMr, bp += kNr) {
    Lane a_lo, a_hi;
    for (index_t l = 0; l < kLanes; ++l) a_lo.v[l] = ap[l];
    for (index_t l = 0; l < kLanes; ++l) a_hi.v[l] = ap[kLanes + l];
    for (index_t s = 0; s < kNr; ++s) {
      lane_fma(acc_lo[s], a_lo, bp[s]);
      lane_fma(acc_hi[s], a_hi, bp[s]);
    }
  }
  for (index_t s = 0; s < kNr; ++s) {
    double* cs = c + s * ldc;
    for (index_t l = 0; l < kLanes; ++l) cs[l] += acc_lo[s].v[l];
    for (index_t l = 0; l < kLanes; ++l) cs[kLanes + l] += acc_hi[s].v[l];
  }
}

void portable_edge(index_t kc, const double* ap, const double* bp, double* c,
                   index_t ldc, index_t mr_eff, index_t nr_eff) {
  double acc[kMr][kNr] = {};
  for (index_t p = 0; p < kc; ++p, ap += kMr, bp += kNr) {
    for (index_t s = 0; s < nr_eff; ++s) {
      const double bs = bp[s];
      for (index_t r = 0; r < mr_eff; ++r) acc[r][s] += ap[r] * bs;
    }
  }
  for (index_t s = 0; s < nr_eff; ++s)
    for (index_t r = 0; r < mr_eff; ++r) c[r + s * ldc] += acc[r][s];
}

}  // namespace

const GemmKernel& portable_kernel() {
  static const GemmKernel k{"portable",     kMr,
                            kNr,            /*mc=*/128,
                            /*kc=*/256,     /*nc=*/1020,
                            portable_full,  portable_edge,
                            [] { return true; }, /*priority=*/10};
  return k;
}

}  // namespace srumma::blas::detail
