#pragma once
// Serial BLAS-3 substrate: double-precision general matrix multiply.
//
// This plays the role of the vendor dgemm (-lsci/-lessl/-lscs/-lmkl) the
// paper links against: the serial building block every parallel algorithm
// calls per block product.  Two implementations are provided:
//   * gemm_naive   — straightforward triple loop; the correctness oracle.
//   * gemm_blocked — cache-blocked, packed-panel driver; the default.  Its
//     register-tile micro-kernel is selected at runtime from the kernel
//     registry (scalar / portable / avx2 — see blas/kernel.hpp), pinnable
//     via the SRUMMA_GEMM_KERNEL environment variable.
// Both follow BLAS semantics: C = alpha*op(A)*op(B) + beta*C with
// column-major storage and explicit leading dimensions.

#include "util/matrix.hpp"

namespace srumma::blas {

/// Transposition selector for gemm operands (BLAS 'N'/'T').
enum class Trans : char { No = 'N', Yes = 'T' };

/// op(X): rows of op(A) is m, cols of op(B) is n, inner dim is k.
/// A is lda x (ta==No ? k : m) holding (ta==No ? m x k : k x m);
/// B is ldb x (tb==No ? n : k) holding (tb==No ? k x n : n x k).
void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

/// Reference kernel; identical semantics to gemm(), O(mnk) triple loop.
void gemm_naive(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                double alpha, const double* a, index_t lda, const double* b,
                index_t ldb, double beta, double* c, index_t ldc);

/// Cache-blocked kernel; identical semantics to gemm().
void gemm_blocked(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc);

/// View-based convenience wrapper.  `a` and `b` are the stored (pre-op)
/// matrices; dimensions are validated against op(a)*op(b) conformance.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Dimensions of op(X) given the stored view.
[[nodiscard]] inline index_t op_rows(Trans t, ConstMatrixView x) {
  return t == Trans::No ? x.rows() : x.cols();
}
[[nodiscard]] inline index_t op_cols(Trans t, ConstMatrixView x) {
  return t == Trans::No ? x.cols() : x.rows();
}

namespace detail {
/// BLAS-style argument checking shared by every gemm entry point.  The
/// lda/ldb lower bounds are checked against the *stored* operand heights
/// (m or k for A, k or n for B depending on the op), but only when that
/// operand is non-empty, so degenerate calls (k == 0 with null operand
/// pointers) remain legal no-ops that just apply beta.
inline void check_gemm_args(Trans ta, Trans tb, index_t m, index_t n,
                            index_t k, index_t lda, index_t ldb, index_t ldc) {
  SRUMMA_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  SRUMMA_REQUIRE(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");
  const index_t a_rows = ta == Trans::No ? m : k;
  const index_t b_rows = tb == Trans::No ? k : n;
  if (m > 0 && k > 0) {
    SRUMMA_REQUIRE(lda >= a_rows, "gemm: lda too small for stored op(A)");
  }
  if (n > 0 && k > 0) {
    SRUMMA_REQUIRE(ldb >= b_rows, "gemm: ldb too small for stored op(B)");
  }
}
}  // namespace detail

}  // namespace srumma::blas
