#pragma once
// Serial BLAS-3 substrate: double-precision general matrix multiply.
//
// This plays the role of the vendor dgemm (-lsci/-lessl/-lscs/-lmkl) the
// paper links against: the serial building block every parallel algorithm
// calls per block product.  Two implementations are provided:
//   * gemm_naive   — straightforward triple loop; the correctness oracle.
//   * gemm_blocked — cache-blocked, packed-panel kernel; the default.
// Both follow BLAS semantics: C = alpha*op(A)*op(B) + beta*C with
// column-major storage and explicit leading dimensions.

#include "util/matrix.hpp"

namespace srumma::blas {

/// Transposition selector for gemm operands (BLAS 'N'/'T').
enum class Trans : char { No = 'N', Yes = 'T' };

/// op(X): rows of op(A) is m, cols of op(B) is n, inner dim is k.
/// A is lda x (ta==No ? k : m) holding (ta==No ? m x k : k x m);
/// B is ldb x (tb==No ? n : k) holding (tb==No ? k x n : n x k).
void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

/// Reference kernel; identical semantics to gemm(), O(mnk) triple loop.
void gemm_naive(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                double alpha, const double* a, index_t lda, const double* b,
                index_t ldb, double beta, double* c, index_t ldc);

/// Cache-blocked kernel; identical semantics to gemm().
void gemm_blocked(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc);

/// View-based convenience wrapper.  `a` and `b` are the stored (pre-op)
/// matrices; dimensions are validated against op(a)*op(b) conformance.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Dimensions of op(X) given the stored view.
[[nodiscard]] inline index_t op_rows(Trans t, ConstMatrixView x) {
  return t == Trans::No ? x.rows() : x.cols();
}
[[nodiscard]] inline index_t op_cols(Trans t, ConstMatrixView x) {
  return t == Trans::No ? x.cols() : x.rows();
}

}  // namespace srumma::blas
