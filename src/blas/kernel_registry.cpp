// Kernel registry and runtime dispatch.  Selection happens once, on first
// use: SRUMMA_GEMM_KERNEL pins a kernel by name (tests use this to make
// runs reproducible across hosts), otherwise the highest-priority kernel
// whose supported() check passes wins.

#include "blas/kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "util/error.hpp"

namespace srumma::blas {

#if defined(SRUMMA_HAVE_AVX2_KERNEL)
namespace detail {
const GemmKernel& avx2_kernel();
}  // namespace detail
#endif

const std::vector<const GemmKernel*>& kernel_registry() {
  static const std::vector<const GemmKernel*> registry = [] {
    std::vector<const GemmKernel*> v;
    v.push_back(&detail::scalar_kernel());
    v.push_back(&detail::portable_kernel());
#if defined(SRUMMA_HAVE_AVX2_KERNEL)
    v.push_back(&detail::avx2_kernel());
#endif
    return v;
  }();
  return registry;
}

const GemmKernel* find_kernel(std::string_view name) {
  for (const GemmKernel* k : kernel_registry()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

namespace {

std::once_flag g_dispatch_once;
std::atomic<const GemmKernel*> g_active{nullptr};

const GemmKernel* auto_select() {
  const GemmKernel* best = nullptr;
  for (const GemmKernel* k : kernel_registry()) {
    if (k->supported() && (best == nullptr || k->priority > best->priority)) {
      best = k;
    }
  }
  SRUMMA_ASSERT(best != nullptr, "gemm kernel registry has no usable kernel");
  return best;
}

std::string known_kernel_names() {
  std::ostringstream os;
  os << "auto";
  for (const GemmKernel* k : kernel_registry()) os << "|" << k->name;
  return os.str();
}

const GemmKernel* resolve(std::string_view name) {
  if (name.empty() || name == "auto") return auto_select();
  const GemmKernel* k = find_kernel(name);
  SRUMMA_REQUIRE(k != nullptr, "unknown gemm kernel '" + std::string(name) +
                                   "' (valid: " + known_kernel_names() + ")");
  SRUMMA_REQUIRE(k->supported(), "gemm kernel '" + std::string(name) +
                                     "' is not supported on this CPU");
  return k;
}

void init_dispatch() {
  std::call_once(g_dispatch_once, [] {
    const char* env = std::getenv("SRUMMA_GEMM_KERNEL");
    g_active.store(resolve(env == nullptr ? "auto" : env),
                   std::memory_order_release);
  });
}

}  // namespace

const GemmKernel& active_kernel() {
  init_dispatch();
  return *g_active.load(std::memory_order_acquire);
}

void set_active_kernel(std::string_view name) {
  const GemmKernel* k = resolve(name);  // throws before touching state
  init_dispatch();                      // an explicit pin outranks the env
  g_active.store(k, std::memory_order_release);
}

}  // namespace srumma::blas
