#include "rma/rma.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cache/block_cache.hpp"
#include "runtime/abortable_wait.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace srumma {

RetryPolicy RetryPolicy::from_env(RetryPolicy base) {
  if (const char* v = std::getenv("SRUMMA_FAULT_MAX_ATTEMPTS"))
    base.max_attempts = static_cast<int>(std::strtol(v, nullptr, 10));
  if (const char* v = std::getenv("SRUMMA_FAULT_BACKOFF_BASE"))
    base.backoff_base = std::strtod(v, nullptr);
  if (const char* v = std::getenv("SRUMMA_FAULT_BACKOFF_MULT"))
    base.backoff_mult = std::strtod(v, nullptr);
  if (const char* v = std::getenv("SRUMMA_FAULT_OP_TIMEOUT"))
    base.op_timeout = std::strtod(v, nullptr);
  return base;
}

RmaRuntime::RmaRuntime(Team& team, RmaConfig cfg)
    : team_(team),
      zero_copy_(cfg.zero_copy.value_or(team.machine().zero_copy)),
      retry_(cfg.retry ? *cfg.retry : RetryPolicy::from_env()),
      next_alloc_seq_(static_cast<std::size_t>(team.size()), 0),
      next_free_seq_(static_cast<std::size_t>(team.size()), 0) {
  SRUMMA_REQUIRE(retry_.max_attempts >= 1 && retry_.backoff_base >= 0.0 &&
                     retry_.backoff_mult >= 1.0 && retry_.op_timeout >= 0.0,
                 "RetryPolicy: invalid parameters");
  if (cfg.faults)
    team_.set_fault_plane(
        std::make_shared<fault::FaultPlane>(team_.machine(), *cfg.faults));
  if (cfg.check.value_or(check::RmaChecker::env_enabled()))
    checker_ = std::make_unique<check::RmaChecker>(team, cfg.check_throw);
  cache::CacheConfig cache_cfg;
  cache_cfg.capacity_bytes = cfg.cache_capacity;
  cache_cfg = cache::CacheConfig::from_env(cache_cfg);
  if (cfg.cache) cache_cfg.enabled = *cfg.cache;
  if (cache_cfg.enabled)
    cache_ = std::make_unique<cache::BlockCacheSet>(team, cache_cfg);
  // Let Team::abort wake ranks parked in a collective allocation promptly.
  alloc_cv_id_ = team_.add_abort_cv(&alloc_cv_);
}

RmaRuntime::~RmaRuntime() { team_.remove_abort_cv(alloc_cv_id_); }

void RmaRuntime::validate2d(const char* op, int owner, index_t ld_src,
                            index_t rows, index_t cols, index_t ld_dst) const {
  SRUMMA_REQUIRE(rows >= 0 && cols >= 0,
                 std::string(op) + ": negative patch extent");
  SRUMMA_REQUIRE(ld_src >= rows && ld_src >= 1,
                 std::string(op) + ": source leading dimension < rows");
  SRUMMA_REQUIRE(ld_dst >= rows && ld_dst >= 1,
                 std::string(op) + ": destination leading dimension < rows");
  SRUMMA_REQUIRE(owner >= 0 && owner < team_.size(),
                 std::string(op) + ": owner rank out of range");
}

void RmaRuntime::declare_direct_access(Rank& me, const SymmetricRegion& region,
                                       int owner, index_t offset_elems,
                                       index_t rows, index_t cols, index_t ld,
                                       std::source_location site) {
  if (!checker_) return;
  check::Footprint f = shape(rows, cols, ld);
  f.lo = static_cast<std::uint64_t>(offset_elems) * sizeof(double);
  checker_->on_direct_access(me.id(), owner, region.seq, f, site);
}

SymmetricRegion RmaRuntime::malloc_symmetric(Rank& me, std::size_t elems) {
  const int size = team_.size();
  const std::uint64_t seq = next_alloc_seq_[static_cast<std::size_t>(me.id())]++;
  SymmetricRegion region;
  region.seq = seq;
  {
    std::unique_lock<std::mutex> lock(alloc_mu_);
    AllocRecord& rec = live_allocs_[seq];
    if (rec.segs.empty()) {
      rec.segs.resize(static_cast<std::size_t>(size));
      rec.bases.assign(static_cast<std::size_t>(size), nullptr);
    }
    auto& seg = rec.segs[static_cast<std::size_t>(me.id())];
    seg.assign(elems, 0.0);
    rec.bases[static_cast<std::size_t>(me.id())] =
        elems > 0 ? seg.data() : nullptr;
    if (++rec.arrived == size) {
      rec.ready = true;
      alloc_cv_.notify_all();
    } else {
      wait_abortable(lock, alloc_cv_, team_, [&] { return rec.ready; });
    }
    region.bases = rec.bases;
  }
  if (checker_)
    checker_->on_malloc(me.id(), region.seq, region.base(me.id()), elems);
  me.barrier();
  return region;
}

void RmaRuntime::free_symmetric(Rank& me, const SymmetricRegion& region) {
  const int size = team_.size();
  if (checker_)
    checker_->on_free(me.id(), region.seq, std::source_location::current());
  {
    std::unique_lock<std::mutex> lock(alloc_mu_);
    auto it = live_allocs_.find(region.seq);
    SRUMMA_REQUIRE(it != live_allocs_.end(),
                   "free_symmetric: region is not live (already freed, or "
                   "never allocated by this runtime)");
    // A foreign SymmetricRegion (allocated by another runtime instance) can
    // collide on seq but never on the actual segment addresses.
    SRUMMA_REQUIRE(it->second.bases == region.bases,
                   "free_symmetric: region was not allocated by this runtime");
    FreeRecord& fr = free_arrivals_[region.seq];
    if (fr.freed.empty())
      fr.freed.assign(static_cast<std::size_t>(size), 0);
    char& mine = fr.freed[static_cast<std::size_t>(me.id())];
    SRUMMA_REQUIRE(mine == 0, "free_symmetric: double free");
    mine = 1;
    if (++fr.arrived == size) {
      live_allocs_.erase(region.seq);
      free_arrivals_.erase(region.seq);
      alloc_cv_.notify_all();
    } else {
      wait_abortable(lock, alloc_cv_, team_, [&] {
        return live_allocs_.count(region.seq) == 0;
      });
    }
  }
  me.barrier();
}

RmaHandle RmaRuntime::transfer(Rank& me, int owner, std::size_t bytes,
                               bool is_get) {
  const MachineModel& mm = team_.machine();
  SRUMMA_REQUIRE(owner >= 0 && owner < team_.size(),
                 "rma transfer: owner rank out of range");
  RmaHandle h;
  h.pending = true;
  h.issued = true;
  h.attempts = 1;
  if (bytes == 0) {
    // A zero-byte op is a no-op on every transport: complete immediately
    // without charging the issue overhead or drawing from the fault plane's
    // decision stream (which would shift deterministic fault schedules).
    h.issue_vt = h.completion = me.clock().now();
    return h;
  }
  me.clock().advance(mm.rma_issue_overhead);
  const double t0 = me.clock().now();
  h.issue_vt = t0;

  // Fault injection: draw this op's fate from the team's plane (nullptr in
  // the common case — one branch, no arithmetic change when disabled).
  fault::FaultDecision fd;
  fault::FaultPlane* fp = team_.faults();
  if (fp != nullptr) {
    fd = fp->on_transfer(me.id(), owner, t0);
    h.failed = fd.fail;
    h.corrupted = fd.corrupt;
    if (fd.fail) {
      me.trace().faults_injected += 1;
      if (trace::Tracer* tr = team_.tracer_ptr())
        tr->instant(me.id(), trace::Phase::Fault, t0);
    }
    if (fd.delay > 1.0) me.trace().faults_delayed += 1;
    // faults_corrupted is counted where the corruption is applied: the nb*
    // entry points (accumulates are exempt — a corrupted read-modify-write
    // could not be redone, so the corrupt channel skips Acc ops).

    // Permanent fail-stop: any transfer targeting a killed domain fails —
    // the payload never arrives.  Forced AFTER the random draw above so the
    // transient classes' decision streams are untouched, and not counted in
    // faults_injected (this is structural loss, not a transient fault; the
    // drain is counted once per handle as rma_domain_dead in wait_impl).
    if (fp->domain_killed(mm.domain_of(owner))) {
      h.failed = true;
      h.corrupted = false;
    }
  }

  const double dbytes = static_cast<double>(bytes);
  if (mm.same_domain(me.id(), owner)) {
    // Intra-domain: a block memory copy executed by the *origin CPU* — it
    // cannot be overlapped with computation, so the cost is charged to the
    // clock synchronously.  The copy also queues on the domain's aggregate
    // memory system, so many ranks copying at once see reduced bandwidth.
    double dur = dbytes / mm.shm_bw;
    if (fp != nullptr) dur *= fd.delay;
    const double ready = t0 + mm.shm_latency;
    const double agg = team_.network()
                           .domain_mem(mm.domain_of(me.id()))
                           .book(ready, dbytes / mm.domain_agg_bw());
    me.clock().sync_to(std::max(ready + dur, agg));
    h.completion = me.clock().now();
    h.duration = dur;
    me.trace().bytes_shm += bytes;
  } else {
    // Inter-node RMA: the request travels to the target (t_s), then the
    // payload serializes on the source node's egress NIC and the
    // destination node's ingress NIC.
    const double ready = t0 + mm.net_latency;
    double dur = dbytes / mm.net_bw;
    if (!zero_copy_) {
      // Host-assisted protocol: the owner's CPU copies between user and
      // DMA buffers; that time is stolen from whatever the owner was doing.
      const double host = dbytes / mm.host_copy_bw;
      dur += host;
      team_.rank(owner).clock().add_steal(host);
    }
    const int src_node = is_get ? mm.node_of(owner) : mm.node_of(me.id());
    const int dst_node = is_get ? mm.node_of(me.id()) : mm.node_of(owner);
    if (fp != nullptr) dur *= fd.delay * fp->link_delay(src_node, dst_node);
    const double c1 = team_.network().nic_out(src_node).book(ready, dur);
    const double c2 = team_.network().nic_in(dst_node).book(ready, dur);
    h.completion = std::max(c1, c2);
    h.duration = dur;
    me.trace().bytes_remote += bytes;
  }
  me.trace().time_comm += h.duration;
  return h;
}

void RmaRuntime::copy2d(const double* src, index_t ld_src, index_t rows,
                        index_t cols, double* dst, index_t ld_dst) {
  if (src == nullptr || dst == nullptr) return;  // phantom transfer
  SRUMMA_REQUIRE(ld_src >= rows && ld_dst >= rows,
                 "copy2d: leading dimensions too small");
  for (index_t j = 0; j < cols; ++j) {
    std::memcpy(dst + j * ld_dst, src + j * ld_src,
                static_cast<std::size_t>(rows) * sizeof(double));
  }
}

namespace {

/// Deterministic per-op salt for payload corruption: virtual issue times
/// are themselves deterministic, so this replays exactly.
std::uint64_t corrupt_salt(int rank, int owner, double issue_vt) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner)) ^
         std::bit_cast<std::uint64_t>(issue_vt);
}

/// Payload size of a replayable op — the amount the in-flight counter
/// tracks from issue (nb*) to consumption (wait_impl).
std::uint64_t op_bytes(const ReplayOp& op) {
  switch (op.kind) {
    case ReplayOp::Kind::Get:
      return static_cast<std::uint64_t>(op.elems) * sizeof(double);
    case ReplayOp::Kind::Get2d:
    case ReplayOp::Kind::Put2d:
    case ReplayOp::Kind::Acc2d:
      return static_cast<std::uint64_t>(op.rows) *
             static_cast<std::uint64_t>(op.cols) * sizeof(double);
    case ReplayOp::Kind::None:
      break;
  }
  return 0;
}

/// Trace one issued one-sided op: an async in-flight span [issue,
/// completion] plus in-flight byte/depth counter bumps, matched by the
/// decrement at consumption time in wait_impl.
void trace_issue(trace::Tracer* tr, int rank, trace::Phase ph,
                 const RmaHandle& h) {
  if (tr == nullptr) return;
  const std::uint64_t bytes = op_bytes(h.op);
  tr->span(rank, ph, h.issue_vt, h.completion, bytes);
  tr->counter_add(rank, trace::CounterId::InflightBytes, h.issue_vt,
                  static_cast<double>(bytes));
  tr->counter_add(rank, trace::CounterId::InflightOps, h.issue_vt, 1.0);
}

}  // namespace

RmaHandle RmaRuntime::nbget(Rank& me, int owner, const double* src,
                            double* dst, std::size_t elems,
                            std::source_location site) {
  RmaHandle h = transfer(me, owner, elems * sizeof(double), /*is_get=*/true);
  h.op.kind = ReplayOp::Kind::Get;
  h.op.owner = owner;
  h.op.src = src;
  h.op.dst = dst;
  h.op.elems = elems;
  if (checker_) {
    const auto n = static_cast<index_t>(elems);
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Get, owner, src,
                                    shape(n, 1, n), dst, shape(n, 1, n), site);
  }
  if (!h.failed && src != nullptr && dst != nullptr && elems > 0) {
    std::memcpy(dst, src, elems * sizeof(double));
    if (h.corrupted) {
      const auto n = static_cast<index_t>(elems);
      fault::FaultPlane::corrupt_payload(
          dst, n, n, 1, corrupt_salt(me.id(), owner, h.issue_vt));
      me.trace().faults_corrupted += 1;
    }
  }
  me.trace().gets += 1;
  trace_issue(team_.tracer_ptr(), me.id(), trace::Phase::Get, h);
  return h;
}

RmaHandle RmaRuntime::nbget2d(Rank& me, int owner, const double* src,
                              index_t ld_src, index_t rows, index_t cols,
                              double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbget2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  const double issued = me.clock().now();
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/true);
  h.op.kind = ReplayOp::Kind::Get2d;
  h.op.owner = owner;
  h.op.src = src;
  h.op.ld_src = ld_src;
  h.op.rows = rows;
  h.op.cols = cols;
  h.op.dst = dst;
  h.op.ld_dst = ld_dst;
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Get, owner, src,
                                    shape(rows, cols, ld_src), dst,
                                    shape(rows, cols, ld_dst), site);
  }
  if (Timeline* tl = team_.timeline())
    tl->record(me.id(), EventKind::Get, issued, h.completion);
  if (!h.failed) {
    copy2d(src, ld_src, rows, cols, dst, ld_dst);
    if (h.corrupted && src != nullptr && dst != nullptr && rows > 0 &&
        cols > 0) {
      fault::FaultPlane::corrupt_payload(
          dst, ld_dst, rows, cols, corrupt_salt(me.id(), owner, h.issue_vt));
      me.trace().faults_corrupted += 1;
    }
  }
  me.trace().gets += 1;
  trace_issue(team_.tracer_ptr(), me.id(), trace::Phase::Get, h);
  return h;
}

RmaHandle RmaRuntime::nbput2d(Rank& me, int owner, const double* src,
                              index_t ld_src, index_t rows, index_t cols,
                              double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbput2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  const double issued = me.clock().now();
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/false);
  h.op.kind = ReplayOp::Kind::Put2d;
  h.op.owner = owner;
  h.op.src = src;
  h.op.ld_src = ld_src;
  h.op.rows = rows;
  h.op.cols = cols;
  h.op.dst = dst;
  h.op.ld_dst = ld_dst;
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Put, owner, dst,
                                    shape(rows, cols, ld_dst), src,
                                    shape(rows, cols, ld_src), site);
  }
  if (Timeline* tl = team_.timeline())
    tl->record(me.id(), EventKind::Put, issued, h.completion);
  if (!h.failed) {
    copy2d(src, ld_src, rows, cols, dst, ld_dst);
    if (h.corrupted && src != nullptr && dst != nullptr && rows > 0 &&
        cols > 0) {
      fault::FaultPlane::corrupt_payload(
          dst, ld_dst, rows, cols, corrupt_salt(me.id(), owner, h.issue_vt));
      me.trace().faults_corrupted += 1;
    }
  }
  me.trace().puts += 1;
  trace_issue(team_.tracer_ptr(), me.id(), trace::Phase::Put, h);
  return h;
}

RmaHandle RmaRuntime::nbacc2d(Rank& me, int owner, double alpha,
                              const double* src, index_t ld_src, index_t rows,
                              index_t cols, double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbacc2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/false);
  // Accumulates are exempt from the corruption channel: the read-modify-
  // write could not be redone after a detected corruption (it is not
  // idempotent), so only fail/delay apply.  The same non-idempotence exempts
  // a late-but-successful accumulate from the op-timeout re-issue in
  // wait_impl — only a *failed* attempt (no add performed, see below) is
  // ever replayed.
  h.corrupted = false;
  h.op.kind = ReplayOp::Kind::Acc2d;
  h.op.owner = owner;
  h.op.alpha = alpha;
  h.op.src = src;
  h.op.ld_src = ld_src;
  h.op.rows = rows;
  h.op.cols = cols;
  h.op.dst = dst;
  h.op.ld_dst = ld_dst;
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Acc, owner, dst,
                                    shape(rows, cols, ld_dst), src,
                                    shape(rows, cols, ld_src), site);
  }
  if (bytes > 0 && !h.failed) {
    // The read-modify-write always runs on the owner's host CPU, even on
    // zero-copy networks: charge the add to the owner (remote) or to the
    // origin (same domain — the origin CPU performs it).  A failed attempt
    // never reaches the owner, so it performs (and charges) no add.
    const MachineModel& mm = team_.machine();
    const double add_time =
        static_cast<double>(bytes) / mm.host_copy_bw;
    if (mm.same_domain(me.id(), owner)) {
      me.clock().advance(add_time);
    } else {
      team_.rank(owner).clock().add_steal(add_time);
      h.completion += add_time;
    }
  }
  if (!h.failed && src != nullptr && dst != nullptr && rows > 0 && cols > 0) {
    SRUMMA_REQUIRE(ld_src >= rows && ld_dst >= rows,
                   "nbacc2d: leading dimensions too small");
    std::lock_guard<std::mutex> lock(acc_mu_);
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i < rows; ++i)
        dst[i + j * ld_dst] += alpha * src[i + j * ld_src];
  }
  me.trace().puts += 1;
  trace_issue(team_.tracer_ptr(), me.id(), trace::Phase::Acc, h);
  return h;
}

RmaHandle RmaRuntime::reissue(Rank& me, const ReplayOp& op,
                              std::source_location site) {
  switch (op.kind) {
    case ReplayOp::Kind::Get:
      return nbget(me, op.owner, op.src, op.dst, op.elems, site);
    case ReplayOp::Kind::Get2d:
      return nbget2d(me, op.owner, op.src, op.ld_src, op.rows, op.cols,
                     op.dst, op.ld_dst, site);
    case ReplayOp::Kind::Put2d:
      return nbput2d(me, op.owner, op.src, op.ld_src, op.rows, op.cols,
                     op.dst, op.ld_dst, site);
    case ReplayOp::Kind::Acc2d:
      return nbacc2d(me, op.owner, op.alpha, op.src, op.ld_src, op.rows,
                     op.cols, op.dst, op.ld_dst, site);
    case ReplayOp::Kind::None:
      break;
  }
  throw Error("rma retry: handle carries no replayable operation");
}

RmaStatus RmaRuntime::wait_impl(Rank& me, RmaHandle& h, double timeout,
                                bool throw_on_error,
                                std::source_location site) {
  SRUMMA_REQUIRE(h.issued, "wait: handle was never issued");
  if (!h.pending) {
    // Idempotent on already-completed handles (the checker still sees the
    // repeat wait and reports its double-wait diagnostic).
    if (checker_) checker_->on_wait(me.id(), h.check_id, site);
    return h.status;
  }
  const double deadline = timeout >= 0.0 ? me.clock().now() + timeout : -1.0;
  for (;;) {
    if (team_.aborted()) throw Error("team aborted while waiting on rma op");
    if (!h.retry_parked) {
      if (deadline >= 0.0 && h.completion > deadline) {
        // Caller deadline expires before this attempt completes: park the
        // clock exactly at the deadline and leave the handle pending (no
        // checker on_wait — the op has not been consumed).
        const double now = me.clock().now();
        if (deadline > now) {
          me.trace().time_wait += deadline - now;
          me.clock().sync_to(deadline);
          if (trace::Tracer* tr = team_.tracer_ptr())
            tr->span(me.id(), trace::Phase::Wait, now, deadline);
        }
        return RmaStatus::Timeout;
      }
      if (checker_) checker_->on_wait(me.id(), h.check_id, site);
      const double before = me.clock().now();
      double waited = 0.0;
      if (h.completion > before) {
        waited = h.completion - before;
        me.trace().time_wait += waited;
        me.clock().sync_to(h.completion);
        if (Timeline* tl = team_.timeline())
          tl->record(me.id(), EventKind::Wait, before, h.completion);
      }
      h.pending = false;

      bool attempt_failed = h.failed;
      if (!attempt_failed && retry_.op_timeout > 0.0 &&
          h.completion - h.issue_vt > retry_.op_timeout) {
        // The attempt completed, but only after blowing its per-op deadline
        // (e.g. an injected straggler): a real initiator would have
        // abandoned and re-issued it, so treat it as failed.  Accumulates
        // are exempt: their read-modify-write was already applied at the
        // owner when the op was issued, so re-issuing a late-but-successful
        // accumulate would apply alpha*src a second time.  The overrun is
        // still counted; the attempt is kept.
        me.trace().rma_op_timeouts += 1;
        if (trace::Tracer* tr = team_.tracer_ptr())
          tr->instant(me.id(), trace::Phase::OpTimeout, me.clock().now());
        if (h.op.kind != ReplayOp::Kind::Acc2d) attempt_failed = true;
      }
      // The attempt is consumed either way: retire its in-flight counters
      // (a re-issue below re-increments them) and classify the wait span
      // now that success/failure is known — Wait feeds time_wait only,
      // RecoveryWait feeds both time_wait and time_recovery, which is what
      // keeps span totals reconcilable with the counters.
      if (trace::Tracer* tr = team_.tracer_ptr()) {
        const double now = me.clock().now();
        tr->counter_add(me.id(), trace::CounterId::InflightBytes, now,
                        -static_cast<double>(op_bytes(h.op)));
        tr->counter_add(me.id(), trace::CounterId::InflightOps, now, -1.0);
        if (waited > 0.0)
          tr->span(me.id(),
                   attempt_failed ? trace::Phase::RecoveryWait
                                  : trace::Phase::Wait,
                   before, h.completion);
      }
      if (!attempt_failed) {
        h.status = RmaStatus::Ok;
        return RmaStatus::Ok;
      }
      me.trace().time_recovery += waited;  // time sunk into the failed attempt
      if (trace::Tracer* tr = team_.tracer_ptr())
        tr->counter_set(me.id(), trace::CounterId::RecoverySeconds,
                        me.clock().now(), me.trace().time_recovery);

      // Failure detector (docs/FAULTS.md §7): a failed attempt against a
      // killed domain is permanent, not transient.  Once the retry budget
      // is exhausted the initiator PROMOTES the failure — it declares the
      // domain dead team-wide and completes the handle with the terminal
      // DomainDead status (no throw: recovery-aware callers refetch from
      // the buddy replicas).  Later waits on ops already in flight against
      // a declared-dead domain fast-fail on their first failed attempt
      // instead of burning the full budget.
      if (fault::FaultPlane* fp = team_.faults();
          fp != nullptr && h.op.kind != ReplayOp::Kind::None) {
        const int target_domain = team_.machine().domain_of(h.op.owner);
        if (fp->domain_killed(target_domain) &&
            (fp->domain_dead(target_domain) ||
             h.attempts >= retry_.max_attempts)) {
          fp->declare_dead(target_domain);
          h.status = RmaStatus::DomainDead;
          me.trace().rma_domain_dead += 1;
          if (trace::Tracer* tr = team_.tracer_ptr())
            tr->instant(me.id(), trace::Phase::DomainDead, me.clock().now(),
                        static_cast<std::uint64_t>(target_domain));
          return RmaStatus::DomainDead;
        }
      }

      if (h.attempts >= retry_.max_attempts) {
        h.status = RmaStatus::Error;
        if (throw_on_error)
          throw Error("rma wait: transfer still failing after " +
                      std::to_string(h.attempts) + " attempts");
        return RmaStatus::Error;
      }

      // The failed attempt is now consumed (checker on_wait done, clock at
      // its completion); all that remains is backoff + re-issue.  Park the
      // handle in that state so a deadline expiring below can hand it back
      // still pending, and a later wait resumes exactly here.
      h.retry_parked = true;
      h.pending = true;
    }

    // Exponential backoff before the re-issue, charged to virtual time.
    const double backoff =
        retry_.backoff_base *
        std::pow(retry_.backoff_mult, static_cast<double>(h.attempts - 1));
    if (deadline >= 0.0 &&
        me.clock().now() + backoff + team_.machine().rma_issue_overhead >
            deadline) {
      // Backoff plus the issue overhead alone would push the clock past the
      // caller's deadline: park exactly at the deadline without booking any
      // NIC/memory bandwidth for a fresh attempt.  The handle stays pending
      // and retry-parked; a later wait/try_wait/wait_for resumes the retry.
      const double now = me.clock().now();
      if (deadline > now) {
        me.trace().time_recovery += deadline - now;
        me.clock().sync_to(deadline);
        if (trace::Tracer* tr = team_.tracer_ptr()) {
          tr->span(me.id(), trace::Phase::Backoff, now, deadline);
          tr->counter_set(me.id(), trace::CounterId::RecoverySeconds, deadline,
                          me.trace().time_recovery);
        }
      }
      return RmaStatus::Timeout;
    }
    if (backoff > 0.0) {
      const double b0 = me.clock().now();
      me.clock().advance(backoff);
      me.trace().time_recovery += backoff;
      if (trace::Tracer* tr = team_.tracer_ptr()) {
        tr->span(me.id(), trace::Phase::Backoff, b0, me.clock().now());
        tr->counter_set(me.id(), trace::CounterId::RecoverySeconds,
                        me.clock().now(), me.trace().time_recovery);
      }
    }
    me.trace().rma_retries += 1;
    if (trace::Tracer* tr = team_.tracer_ptr())
      tr->instant(me.id(), trace::Phase::Retry, me.clock().now(),
                  static_cast<std::uint64_t>(h.attempts));

    // Re-issue through the public nb* path: a fresh checker-visible op with
    // its own check_id (never a double wait) and a fresh fault draw.
    const int attempts = h.attempts;
    const ReplayOp op = h.op;
    RmaHandle fresh = reissue(me, op, site);
    fresh.attempts = attempts + 1;
    h = fresh;
  }
}

void RmaRuntime::wait(Rank& me, RmaHandle& h, std::source_location site) {
  wait_impl(me, h, /*timeout=*/-1.0, /*throw_on_error=*/true, site);
}

RmaStatus RmaRuntime::try_wait(Rank& me, RmaHandle& h,
                               std::source_location site) {
  return wait_impl(me, h, /*timeout=*/-1.0, /*throw_on_error=*/false, site);
}

RmaStatus RmaRuntime::wait_for(Rank& me, RmaHandle& h, double timeout,
                               std::source_location site) {
  SRUMMA_REQUIRE(timeout >= 0.0, "wait_for: negative timeout");
  return wait_impl(me, h, timeout, /*throw_on_error=*/false, site);
}

void RmaRuntime::get2d(Rank& me, int owner, const double* src, index_t ld_src,
                       index_t rows, index_t cols, double* dst, index_t ld_dst,
                       std::source_location site) {
  RmaHandle h = nbget2d(me, owner, src, ld_src, rows, cols, dst, ld_dst, site);
  wait(me, h, site);
}

}  // namespace srumma
