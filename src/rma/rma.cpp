#include "rma/rma.hpp"

#include <algorithm>
#include <cstring>

#include "runtime/abortable_wait.hpp"
#include "util/error.hpp"

namespace srumma {

RmaRuntime::RmaRuntime(Team& team, RmaConfig cfg)
    : team_(team),
      zero_copy_(cfg.zero_copy.value_or(team.machine().zero_copy)),
      next_alloc_seq_(static_cast<std::size_t>(team.size()), 0),
      next_free_seq_(static_cast<std::size_t>(team.size()), 0) {
  if (cfg.check.value_or(check::RmaChecker::env_enabled()))
    checker_ = std::make_unique<check::RmaChecker>(team, cfg.check_throw);
}

void RmaRuntime::validate2d(const char* op, int owner, index_t ld_src,
                            index_t rows, index_t cols, index_t ld_dst) const {
  SRUMMA_REQUIRE(rows >= 0 && cols >= 0,
                 std::string(op) + ": negative patch extent");
  SRUMMA_REQUIRE(ld_src >= rows && ld_src >= 1,
                 std::string(op) + ": source leading dimension < rows");
  SRUMMA_REQUIRE(ld_dst >= rows && ld_dst >= 1,
                 std::string(op) + ": destination leading dimension < rows");
  SRUMMA_REQUIRE(owner >= 0 && owner < team_.size(),
                 std::string(op) + ": owner rank out of range");
}

void RmaRuntime::declare_direct_access(Rank& me, const SymmetricRegion& region,
                                       int owner, index_t offset_elems,
                                       index_t rows, index_t cols, index_t ld,
                                       std::source_location site) {
  if (!checker_) return;
  check::Footprint f = shape(rows, cols, ld);
  f.lo = static_cast<std::uint64_t>(offset_elems) * sizeof(double);
  checker_->on_direct_access(me.id(), owner, region.seq, f, site);
}

SymmetricRegion RmaRuntime::malloc_symmetric(Rank& me, std::size_t elems) {
  const int size = team_.size();
  const std::uint64_t seq = next_alloc_seq_[static_cast<std::size_t>(me.id())]++;
  SymmetricRegion region;
  region.seq = seq;
  {
    std::unique_lock<std::mutex> lock(alloc_mu_);
    AllocRecord& rec = live_allocs_[seq];
    if (rec.segs.empty()) {
      rec.segs.resize(static_cast<std::size_t>(size));
      rec.bases.assign(static_cast<std::size_t>(size), nullptr);
    }
    auto& seg = rec.segs[static_cast<std::size_t>(me.id())];
    seg.assign(elems, 0.0);
    rec.bases[static_cast<std::size_t>(me.id())] =
        elems > 0 ? seg.data() : nullptr;
    if (++rec.arrived == size) {
      rec.ready = true;
      alloc_cv_.notify_all();
    } else {
      wait_abortable(lock, alloc_cv_, team_, [&] { return rec.ready; });
    }
    region.bases = rec.bases;
  }
  if (checker_)
    checker_->on_malloc(me.id(), region.seq, region.base(me.id()), elems);
  me.barrier();
  return region;
}

void RmaRuntime::free_symmetric(Rank& me, const SymmetricRegion& region) {
  const int size = team_.size();
  if (checker_)
    checker_->on_free(me.id(), region.seq, std::source_location::current());
  {
    std::unique_lock<std::mutex> lock(alloc_mu_);
    SRUMMA_REQUIRE(live_allocs_.count(region.seq) == 1,
                   "free_symmetric: region is not live");
    if (++free_arrivals_[region.seq] == size) {
      live_allocs_.erase(region.seq);
      free_arrivals_.erase(region.seq);
      alloc_cv_.notify_all();
    } else {
      wait_abortable(lock, alloc_cv_, team_, [&] {
        return live_allocs_.count(region.seq) == 0;
      });
    }
  }
  me.barrier();
}

RmaHandle RmaRuntime::transfer(Rank& me, int owner, std::size_t bytes,
                               bool is_get) {
  const MachineModel& mm = team_.machine();
  SRUMMA_REQUIRE(owner >= 0 && owner < team_.size(),
                 "rma transfer: owner rank out of range");
  me.clock().advance(mm.rma_issue_overhead);
  const double t0 = me.clock().now();

  RmaHandle h;
  h.pending = true;
  h.issued = true;
  if (bytes == 0) {
    h.completion = t0;
    return h;
  }

  const double dbytes = static_cast<double>(bytes);
  if (mm.same_domain(me.id(), owner)) {
    // Intra-domain: a block memory copy executed by the *origin CPU* — it
    // cannot be overlapped with computation, so the cost is charged to the
    // clock synchronously.  The copy also queues on the domain's aggregate
    // memory system, so many ranks copying at once see reduced bandwidth.
    const double dur = dbytes / mm.shm_bw;
    const double ready = t0 + mm.shm_latency;
    const double agg = team_.network()
                           .domain_mem(mm.domain_of(me.id()))
                           .book(ready, dbytes / mm.domain_agg_bw());
    me.clock().sync_to(std::max(ready + dur, agg));
    h.completion = me.clock().now();
    h.duration = dur;
    me.trace().bytes_shm += bytes;
  } else {
    // Inter-node RMA: the request travels to the target (t_s), then the
    // payload serializes on the source node's egress NIC and the
    // destination node's ingress NIC.
    const double ready = t0 + mm.net_latency;
    double dur = dbytes / mm.net_bw;
    if (!zero_copy_) {
      // Host-assisted protocol: the owner's CPU copies between user and
      // DMA buffers; that time is stolen from whatever the owner was doing.
      const double host = dbytes / mm.host_copy_bw;
      dur += host;
      team_.rank(owner).clock().add_steal(host);
    }
    const int src_node = is_get ? mm.node_of(owner) : mm.node_of(me.id());
    const int dst_node = is_get ? mm.node_of(me.id()) : mm.node_of(owner);
    const double c1 = team_.network().nic_out(src_node).book(ready, dur);
    const double c2 = team_.network().nic_in(dst_node).book(ready, dur);
    h.completion = std::max(c1, c2);
    h.duration = dur;
    me.trace().bytes_remote += bytes;
  }
  me.trace().time_comm += h.duration;
  return h;
}

void RmaRuntime::copy2d(const double* src, index_t ld_src, index_t rows,
                        index_t cols, double* dst, index_t ld_dst) {
  if (src == nullptr || dst == nullptr) return;  // phantom transfer
  SRUMMA_REQUIRE(ld_src >= rows && ld_dst >= rows,
                 "copy2d: leading dimensions too small");
  for (index_t j = 0; j < cols; ++j) {
    std::memcpy(dst + j * ld_dst, src + j * ld_src,
                static_cast<std::size_t>(rows) * sizeof(double));
  }
}

RmaHandle RmaRuntime::nbget(Rank& me, int owner, const double* src,
                            double* dst, std::size_t elems,
                            std::source_location site) {
  RmaHandle h = transfer(me, owner, elems * sizeof(double), /*is_get=*/true);
  if (checker_) {
    const auto n = static_cast<index_t>(elems);
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Get, owner, src,
                                    shape(n, 1, n), dst, shape(n, 1, n), site);
  }
  if (src != nullptr && dst != nullptr && elems > 0) {
    std::memcpy(dst, src, elems * sizeof(double));
  }
  me.trace().gets += 1;
  return h;
}

RmaHandle RmaRuntime::nbget2d(Rank& me, int owner, const double* src,
                              index_t ld_src, index_t rows, index_t cols,
                              double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbget2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  const double issued = me.clock().now();
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/true);
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Get, owner, src,
                                    shape(rows, cols, ld_src), dst,
                                    shape(rows, cols, ld_dst), site);
  }
  if (Timeline* tl = team_.timeline())
    tl->record(me.id(), EventKind::Get, issued, h.completion);
  copy2d(src, ld_src, rows, cols, dst, ld_dst);
  me.trace().gets += 1;
  return h;
}

RmaHandle RmaRuntime::nbput2d(Rank& me, int owner, const double* src,
                              index_t ld_src, index_t rows, index_t cols,
                              double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbput2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  const double issued = me.clock().now();
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/false);
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Put, owner, dst,
                                    shape(rows, cols, ld_dst), src,
                                    shape(rows, cols, ld_src), site);
  }
  if (Timeline* tl = team_.timeline())
    tl->record(me.id(), EventKind::Put, issued, h.completion);
  copy2d(src, ld_src, rows, cols, dst, ld_dst);
  me.trace().puts += 1;
  return h;
}

RmaHandle RmaRuntime::nbacc2d(Rank& me, int owner, double alpha,
                              const double* src, index_t ld_src, index_t rows,
                              index_t cols, double* dst, index_t ld_dst,
                              std::source_location site) {
  validate2d("nbacc2d", owner, ld_src, rows, cols, ld_dst);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
      sizeof(double);
  RmaHandle h = transfer(me, owner, bytes, /*is_get=*/false);
  if (checker_) {
    h.check_id = checker_->on_issue(me.id(), check::OpKind::Acc, owner, dst,
                                    shape(rows, cols, ld_dst), src,
                                    shape(rows, cols, ld_src), site);
  }
  if (bytes > 0) {
    // The read-modify-write always runs on the owner's host CPU, even on
    // zero-copy networks: charge the add to the owner (remote) or to the
    // origin (same domain — the origin CPU performs it).
    const MachineModel& mm = team_.machine();
    const double add_time =
        static_cast<double>(bytes) / mm.host_copy_bw;
    if (mm.same_domain(me.id(), owner)) {
      me.clock().advance(add_time);
    } else {
      team_.rank(owner).clock().add_steal(add_time);
      h.completion += add_time;
    }
  }
  if (src != nullptr && dst != nullptr && rows > 0 && cols > 0) {
    SRUMMA_REQUIRE(ld_src >= rows && ld_dst >= rows,
                   "nbacc2d: leading dimensions too small");
    std::lock_guard<std::mutex> lock(acc_mu_);
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i < rows; ++i)
        dst[i + j * ld_dst] += alpha * src[i + j * ld_src];
  }
  me.trace().puts += 1;
  return h;
}

void RmaRuntime::wait(Rank& me, RmaHandle& h, std::source_location site) {
  SRUMMA_REQUIRE(h.issued, "wait: handle was never issued");
  if (checker_) checker_->on_wait(me.id(), h.check_id, site);
  if (!h.pending) return;  // idempotent on already-completed handles
  const double before = me.clock().now();
  if (h.completion > before) {
    me.trace().time_wait += h.completion - before;
    me.clock().sync_to(h.completion);
    if (Timeline* tl = team_.timeline())
      tl->record(me.id(), EventKind::Wait, before, h.completion);
  }
  h.pending = false;
}

void RmaRuntime::get2d(Rank& me, int owner, const double* src, index_t ld_src,
                       index_t rows, index_t cols, double* dst, index_t ld_dst,
                       std::source_location site) {
  RmaHandle h = nbget2d(me, owner, src, ld_src, rows, cols, dst, ld_dst, site);
  wait(me, h, site);
}

}  // namespace srumma
