#pragma once
// One-sided communication runtime (the ARMCI stand-in).
//
// This layer reproduces the ARMCI facilities SRUMMA depends on:
//   * ARMCI_Malloc        -> malloc_symmetric(): collective allocation that
//                            returns every rank's base pointer, so peers in
//                            the same shared-memory domain can load/store
//                            each other's segments directly;
//   * cluster query       -> same_domain(): which ranks share memory;
//   * nonblocking get/put -> nbget/nbget2d/nbput2d + wait(), one-sided with
//                            no target-side coordination.
//
// Ranks share one OS address space, so the data movement is a memcpy; the
// *cost* of each operation is charged to virtual clocks according to the
// machine model:
//   * intra-domain ops pay shm latency + copy time, and additionally queue
//     on the domain's aggregate memory-system resource;
//   * inter-node ops pay the request latency (t_s), then queue the wire
//     time (bytes * t_w) on the source node's egress NIC and the target
//     node's ingress NIC;
//   * on machines without zero-copy NICs (IBM SP / LAPI) the transfer also
//     pays a host-CPU copy, and that time is *stolen* from the data owner's
//     rank — reproducing the paper's observation that non-zero-copy
//     protocols tax the remote CPU (Section 4.1, Fig. 9).
//
// Passing nullptr for a data pointer runs the op in "phantom" mode: full
// cost accounting, no actual copy.  The model-only benches use this to run
// N=16000-class problems instantly.

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <source_location>
#include <vector>

#include "check/rma_checker.hpp"
#include "fault/fault_plane.hpp"
#include "runtime/team.hpp"
#include "util/aligned.hpp"
#include "util/matrix.hpp"

namespace srumma {

namespace cache {
class BlockCacheSet;
}  // namespace cache

/// Completion status of a one-sided operation (valid once the handle is no
/// longer pending, or when a timed wait gives up).
enum class RmaStatus {
  Ok,      ///< transfer delivered
  Error,   ///< transient failures exhausted the retry budget
  Timeout, ///< caller deadline expired; the handle is still pending
  /// Terminal: the target's shared-memory domain has permanently
  /// fail-stopped (docs/FAULTS.md §7).  Distinct from Timeout ("peer slow")
  /// and Error ("transient budget exhausted"): the op will never succeed,
  /// no retry is attempted once the domain is declared dead, and callers
  /// must recover from the buddy replicas.  Counted in rma_domain_dead,
  /// separately from rma_op_timeouts.
  DomainDead
};

/// Recovery policy applied inside RmaRuntime when a transfer completes in
/// an error state (injected transient failure) or overruns its per-attempt
/// deadline.  All times are *virtual* seconds: backoff is charged to the
/// waiting rank's clock and accounted as time_recovery, so benches can
/// quantify recovery overhead.
struct RetryPolicy {
  int max_attempts = 3;        ///< total issue attempts (>= 1)
  double backoff_base = 2e-6;  ///< virtual pause before the first re-issue
  double backoff_mult = 2.0;   ///< exponential growth per further retry
  /// Per-attempt completion deadline (virtual seconds); an attempt whose
  /// modeled completion exceeds issue time + op_timeout is abandoned and
  /// re-issued (counts against max_attempts).  0 disables the deadline.
  /// Accumulates are exempt from the re-issue (their read-modify-write was
  /// already applied at the owner, so a replay would double-apply); the
  /// overrun is still counted in rma_op_timeouts.
  double op_timeout = 0.0;

  /// `base` with any SRUMMA_FAULT_MAX_ATTEMPTS / SRUMMA_FAULT_BACKOFF_BASE /
  /// SRUMMA_FAULT_BACKOFF_MULT / SRUMMA_FAULT_OP_TIMEOUT overrides applied.
  [[nodiscard]] static RetryPolicy from_env(RetryPolicy base);
  [[nodiscard]] static RetryPolicy from_env() {
    return from_env(RetryPolicy{});
  }
};

/// Tuning knobs for protocol experiments (Fig. 9) and checking.
struct RmaConfig {
  /// Override the machine's zero-copy capability (disable to measure the
  /// host-CPU-copy penalty on a zero-copy-capable network).
  std::optional<bool> zero_copy;
  /// Enable the shadow-state RMA checker (src/check) for this runtime,
  /// overriding the SRUMMA_RMA_CHECK environment / build default.
  std::optional<bool> check;
  /// Checker failure mode: throw srumma::Error at the first diagnostic
  /// (default) or record only (tests inspect checker()->reports()).
  bool check_throw = true;
  /// Retry policy; when unset, defaults + SRUMMA_FAULT_* env overrides.
  std::optional<RetryPolicy> retry;
  /// Install a fault-injection plane on the team (overriding any plane the
  /// SRUMMA_FAULT_* environment installed; see Team::set_fault_plane).
  std::optional<fault::FaultConfig> faults;
  /// Enable the domain-level cooperative block cache (src/cache), overriding
  /// the SRUMMA_CACHE environment default (off).
  std::optional<bool> cache;
  /// Per-domain cache capacity in bytes; 0 = size from the pipeline's
  /// lookahead footprint at each multiply.  SRUMMA_CACHE_CAP overrides.
  std::uint64_t cache_capacity = 0;
};

/// Everything needed to re-issue a nonblocking op after a transient
/// failure: the op kind plus its original arguments.  Recorded in the
/// handle at issue; consumed by the retry loop inside RmaRuntime's waits.
struct ReplayOp {
  enum class Kind : std::uint8_t { None, Get, Get2d, Put2d, Acc2d };
  Kind kind = Kind::None;
  int owner = 0;
  double alpha = 0.0;  ///< Acc2d only
  const double* src = nullptr;
  index_t ld_src = 0;
  index_t rows = 0;
  index_t cols = 0;
  double* dst = nullptr;
  index_t ld_dst = 0;
  std::size_t elems = 0;  ///< contiguous Get only
};

/// Completion record for a nonblocking one-sided operation.
///
/// wait() semantics: a handle becomes `issued` when returned by an nb* call
/// and stops being `pending` after its first wait().  Waiting a completed
/// handle is a documented idempotent no-op (so generic drain loops need no
/// bookkeeping); waiting a never-issued handle throws.  Under the RMA
/// checker a second wait is additionally reported as a double-wait
/// diagnostic, because in real code it almost always means a lost or
/// aliased handle.
///
/// Error/result state: with fault injection active, a transfer can complete
/// in an error state (`failed`); the retry loop inside wait()/try_wait()
/// re-issues it transparently (each re-issue is a *new* checker-visible op
/// with a fresh check_id, never a double wait).  After the handle completes,
/// `status` records the outcome; `attempts` counts issues performed.
struct RmaHandle {
  double completion = 0.0;  ///< virtual time the transfer finishes
  double duration = 0.0;    ///< modeled wire/copy time
  bool pending = false;
  bool issued = false;          ///< returned by an nb* call (wait() requires)
  std::uint64_t check_id = 0;   ///< checker handle identity (0 = untracked)

  // -- error/result state (fault injection + retry) --------------------------
  RmaStatus status = RmaStatus::Ok;  ///< outcome once no longer pending
  bool failed = false;      ///< this attempt's payload was not delivered
  bool corrupted = false;   ///< payload was delivered with injected damage
  int attempts = 0;         ///< issue attempts so far (1 after the nb* call)
  double issue_vt = 0.0;    ///< virtual time of the current attempt's issue
  /// A failed attempt was fully consumed (checker wait done, clock synced)
  /// but the backoff + re-issue has not run yet — set when a wait_for
  /// deadline expires in that gap.  The handle stays `pending`; the next
  /// wait/try_wait/wait_for resumes the retry sequence from here.
  bool retry_parked = false;
  ReplayOp op;              ///< re-issue recipe for the retry loop
};

/// Result of a collective symmetric allocation: every rank's base pointer.
/// Ranks in the same shared-memory domain may dereference each other's
/// segment directly (the load/store path); other segments must be reached
/// through get/put.
struct SymmetricRegion {
  std::uint64_t seq = 0;
  std::vector<double*> bases;

  [[nodiscard]] double* base(int rank) const {
    SRUMMA_REQUIRE(rank >= 0 && rank < static_cast<int>(bases.size()),
                   "SymmetricRegion::base: rank out of range");
    return bases[static_cast<std::size_t>(rank)];
  }
};

class RmaRuntime {
 public:
  explicit RmaRuntime(Team& team, RmaConfig cfg = {});
  ~RmaRuntime();
  RmaRuntime(const RmaRuntime&) = delete;
  RmaRuntime& operator=(const RmaRuntime&) = delete;

  [[nodiscard]] Team& team() noexcept { return team_; }
  [[nodiscard]] bool zero_copy() const noexcept { return zero_copy_; }
  [[nodiscard]] bool same_domain(int r1, int r2) const {
    return team_.machine().same_domain(r1, r2);
  }

  /// Collective allocation (ARMCI_Malloc): every rank calls with its own
  /// element count and receives the base pointers of all ranks' segments.
  /// elems == 0 produces a phantom segment (nullptr).  Acts as a barrier.
  SymmetricRegion malloc_symmetric(Rank& me, std::size_t elems);

  /// Collective deallocation of a region returned by malloc_symmetric.
  /// Acts as a barrier.
  void free_symmetric(Rank& me, const SymmetricRegion& region);

  /// Nonblocking contiguous get of `elems` doubles owned by rank `owner`.
  RmaHandle nbget(Rank& me, int owner, const double* src, double* dst,
                  std::size_t elems,
                  std::source_location site = std::source_location::current());

  /// Nonblocking strided get of a rows x cols column-major patch.
  RmaHandle nbget2d(Rank& me, int owner, const double* src, index_t ld_src,
                    index_t rows, index_t cols, double* dst, index_t ld_dst,
                    std::source_location site = std::source_location::current());

  /// Nonblocking strided put (origin -> owner).
  RmaHandle nbput2d(Rank& me, int owner, const double* src, index_t ld_src,
                    index_t rows, index_t cols, double* dst, index_t ld_dst,
                    std::source_location site = std::source_location::current());

  /// Nonblocking strided accumulate: dst += alpha * src at the owner
  /// (ARMCI_Acc).  Element updates are atomic with respect to concurrent
  /// accumulates into the same region; cost-wise an accumulate is a put
  /// whose target-side add always runs on a host CPU (never zero-copy).
  RmaHandle nbacc2d(Rank& me, int owner, double alpha, const double* src,
                    index_t ld_src, index_t rows, index_t cols, double* dst,
                    index_t ld_dst,
                    std::source_location site = std::source_location::current());

  /// Block until a nonblocking op completes; charges the wait to the clock.
  /// Idempotent on an already-completed handle; throws on a handle that was
  /// never issued (see RmaHandle).  Transient injected failures are retried
  /// per the RetryPolicy; when the retry budget is exhausted this throws
  /// srumma::Error (use try_wait to handle the failure instead).  A handle
  /// that drains with RmaStatus::DomainDead (permanent fail-stop of the
  /// target's domain) does NOT throw — the status is terminal and recorded
  /// on the handle; recovery-aware callers inspect it and refetch from the
  /// buddy replicas (docs/FAULTS.md §7).
  void wait(Rank& me, RmaHandle& h,
            std::source_location site = std::source_location::current());

  /// Like wait(), but reports an exhausted retry budget as
  /// RmaStatus::Error instead of throwing.  The handle is always completed
  /// (never left pending) so drain loops stay balanced under failures.
  RmaStatus try_wait(Rank& me, RmaHandle& h,
                     std::source_location site = std::source_location::current());

  /// Timed wait: like try_wait(), but gives up once the op (including any
  /// retries and backoff) would need more than `timeout` virtual seconds
  /// beyond the caller's current clock.  On RmaStatus::Timeout the clock
  /// advances by exactly `timeout` and the handle REMAINS pending — a later
  /// wait/try_wait/wait_for picks it up.  The deadline can expire either
  /// before the current attempt's modeled completion (the op stays in
  /// flight and unconsumed, so abandoning it is checker-visible) or between
  /// a failed attempt and its re-issue (the handle parks in the retry
  /// sequence, see RmaHandle::retry_parked); in both cases no backoff is
  /// charged and no fresh attempt books bandwidth past the deadline.
  /// Abort-aware like every blocking path (see runtime/abortable_wait.hpp).
  RmaStatus wait_for(Rank& me, RmaHandle& h, double timeout,
                     std::source_location site = std::source_location::current());

  /// The active retry policy (RmaConfig::retry or env-adjusted defaults).
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  /// Blocking variants (issue + immediate wait; zero overlap).
  void get2d(Rank& me, int owner, const double* src, index_t ld_src,
             index_t rows, index_t cols, double* dst, index_t ld_dst,
             std::source_location site = std::source_location::current());

  /// The domain-level cooperative block cache, or nullptr when disabled
  /// (the common case — callers null-test it, exactly like the checker and
  /// the fault plane, so a disabled cache perturbs nothing).
  [[nodiscard]] cache::BlockCacheSet* block_cache() noexcept {
    return cache_.get();
  }

  // -- checker access & discipline declarations -----------------------------
  /// The shadow-state checker, or nullptr when disabled.  Every declare_*
  /// below is a single null test when checking is off.
  [[nodiscard]] check::RmaChecker* checker() noexcept { return checker_.get(); }

  /// Declare that `me`'s compute consumes [ptr, rows x cols, ld] (doubles).
  /// The checker verifies no pending get is still filling the buffer and,
  /// when ptr lies in a symmetric segment, joins it to the epoch conflict
  /// map (get-vs-dgemm overlap checking in the SRUMMA pipeline).
  void declare_compute_read(
      Rank& me, const double* ptr, index_t rows, index_t cols, index_t ld,
      std::source_location site = std::source_location::current()) {
    if (checker_)
      checker_->on_compute_access(me.id(), ptr, shape(rows, cols, ld),
                                  /*write=*/false, site);
  }
  /// Declare a local compute write (a C tile, a GA access view).
  void declare_compute_write(
      Rank& me, const double* ptr, index_t rows, index_t cols, index_t ld,
      std::source_location site = std::source_location::current()) {
    if (checker_)
      checker_->on_compute_access(me.id(), ptr, shape(rows, cols, ld),
                                  /*write=*/true, site);
  }
  /// Declare a direct load/store reach-through into `region`'s segment on
  /// `owner`, starting `offset_elems` doubles into the segment.  The checker
  /// diagnoses reach-through to owners outside the caller's memory domain.
  void declare_direct_access(
      Rank& me, const SymmetricRegion& region, int owner, index_t offset_elems,
      index_t rows, index_t cols, index_t ld,
      std::source_location site = std::source_location::current());

 private:
  struct AllocRecord {
    std::vector<AlignedVector<double>> segs;
    std::vector<double*> bases;
    int arrived = 0;
    bool ready = false;
  };

  RmaHandle transfer(Rank& me, int owner, std::size_t bytes, bool is_get);
  void copy2d(const double* src, index_t ld_src, index_t rows, index_t cols,
              double* dst, index_t ld_dst);

  /// Shared completion path: retries failed attempts per retry_; with
  /// timeout >= 0, gives up (leaving the handle pending) once the deadline
  /// passes.  throw_on_error turns an exhausted budget into srumma::Error.
  RmaStatus wait_impl(Rank& me, RmaHandle& h, double timeout,
                      bool throw_on_error, std::source_location site);
  /// Re-issue the recorded op (a fresh checker-visible operation).
  RmaHandle reissue(Rank& me, const ReplayOp& op, std::source_location site);

  /// Checker footprint of a rows x cols patch of doubles with stride ld.
  [[nodiscard]] static check::Footprint shape(index_t rows, index_t cols,
                                              index_t ld) {
    check::Footprint f;
    if (rows > 0 && cols > 0) {
      f.rows = static_cast<std::uint64_t>(rows) * sizeof(double);
      f.cols = static_cast<std::uint64_t>(cols);
      f.ld = static_cast<std::uint64_t>(ld) * sizeof(double);
    }
    return f;
  }
  /// Shared argument validation for the strided nb* entry points.
  void validate2d(const char* op, int owner, index_t ld_src, index_t rows,
                  index_t cols, index_t ld_dst) const;

  Team& team_;
  bool zero_copy_;
  RetryPolicy retry_;
  std::unique_ptr<check::RmaChecker> checker_;
  std::unique_ptr<cache::BlockCacheSet> cache_;
  std::mutex acc_mu_;  // serializes concurrent accumulate updates

  std::mutex alloc_mu_;
  std::condition_variable alloc_cv_;
  std::uint64_t alloc_cv_id_ = 0;  // abort-cv registry slot
  struct FreeRecord {
    int arrived = 0;
    std::vector<char> freed;  // per-rank marks for double-free detection
  };

  std::map<std::uint64_t, AllocRecord> live_allocs_;  // keyed by sequence id
  std::vector<std::uint64_t> next_alloc_seq_;         // per rank
  std::map<std::uint64_t, FreeRecord> free_arrivals_; // seq -> free progress
  std::vector<std::uint64_t> next_free_seq_;          // per rank
};

}  // namespace srumma
