#include "baselines/cannon.hpp"

#include <cmath>
#include <cstring>

#include "blas/gemm.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

namespace {
// Tags for the two circulating operands.
constexpr int kTagA = 101;
constexpr int kTagB = 102;

int square_grid_edge(int nranks) {
  const int p = static_cast<int>(std::lround(std::sqrt(nranks)));
  SRUMMA_REQUIRE(p * p == nranks,
                 "Cannon's algorithm requires a square process grid");
  return p;
}
}  // namespace

MultiplyResult cannon_multiply(Rank& me, Comm& comm, MatrixView a_block,
                               MatrixView b_block, MatrixView c_block,
                               const CannonOptions& opt) {
  Team& team = me.team();
  const int p = square_grid_edge(team.size());
  const int pi = me.id() % p;
  const int pj = me.id() / p;
  auto rank_of = [&](int i, int j) { return ((i + p) % p) + ((j + p) % p) * p; };

  const index_t bm = cannon_block(opt.m, p);
  const index_t bn = cannon_block(opt.n, p);
  const index_t bk = cannon_block(opt.k, p);
  const std::size_t a_elems = static_cast<std::size_t>(bm * bk);
  const std::size_t b_elems = static_cast<std::size_t>(bk * bn);
  if (!opt.phantom) {
    SRUMMA_REQUIRE(a_block.rows() == bm && a_block.cols() == bk,
                   "cannon: A block must be ceil(m/p) x ceil(k/p)");
    SRUMMA_REQUIRE(b_block.rows() == bk && b_block.cols() == bn,
                   "cannon: B block must be ceil(k/p) x ceil(n/p)");
    SRUMMA_REQUIRE(c_block.rows() == bm && c_block.cols() == bn,
                   "cannon: C block must be ceil(m/p) x ceil(n/p)");
    SRUMMA_REQUIRE(a_block.ld() == bm && b_block.ld() == bk,
                   "cannon: circulating blocks must be packed (ld == rows)");
  }

  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();

  if (!opt.phantom && opt.beta != 1.0) {
    if (opt.beta == 0.0) {
      c_block.fill(0.0);
    } else {
      for (index_t j = 0; j < bn; ++j)
        for (index_t i = 0; i < bm; ++i) c_block(i, j) *= opt.beta;
    }
  }

  Matrix a_tmp;
  Matrix b_tmp;
  if (!opt.phantom) {
    a_tmp = Matrix(bm, bk);
    b_tmp = Matrix(bk, bn);
  }
  me.trace().buffer_bytes_peak = std::max(
      me.trace().buffer_bytes_peak,
      static_cast<std::uint64_t>(bm * bk + bk * bn) * sizeof(double));
  double* a_cur = opt.phantom ? nullptr : a_block.data();
  double* a_alt = opt.phantom ? nullptr : a_tmp.data();
  double* b_cur = opt.phantom ? nullptr : b_block.data();
  double* b_alt = opt.phantom ? nullptr : b_tmp.data();

  // Exchange a circulating block `dist` hops along a grid dimension.
  auto shift = [&](double*& cur, double*& alt, std::size_t elems, int tag,
                   int dst, int src) {
    if (dst == me.id()) return;  // distance 0
    comm.sendrecv(me, dst, tag, cur, elems, src, tag, alt, elems);
    std::swap(cur, alt);
  };

  // 1. Skew: A row i shifts left by i, B column j shifts up by j.
  shift(a_cur, a_alt, a_elems, kTagA, rank_of(pi, pj - pi), rank_of(pi, pj + pi));
  shift(b_cur, b_alt, b_elems, kTagB, rank_of(pi - pj, pj), rank_of(pi + pj, pj));

  // 2. Multiply-and-shift steps.
  for (int step = 0; step < p; ++step) {
    if (!opt.phantom) {
      blas::gemm(blas::Trans::No, blas::Trans::No, bm, bn, bk, opt.alpha,
                 a_cur, bm, b_cur, bk, 1.0, c_block.data(), c_block.ld());
    }
    me.charge_gemm(bm, bn, bk);
    if (step + 1 < p) {
      shift(a_cur, a_alt, a_elems, kTagA, rank_of(pi, pj - 1),
            rank_of(pi, pj + 1));
      shift(b_cur, b_alt, b_elems, kTagB, rank_of(pi - 1, pj),
            rank_of(pi + 1, pj));
    }
  }
  // Leave the caller's block storage holding the final circulated data.
  if (!opt.phantom && a_cur != a_block.data()) {
    std::memcpy(a_block.data(), a_cur, a_elems * sizeof(double));
  }
  if (!opt.phantom && b_cur != b_block.data()) {
    std::memcpy(b_block.data(), b_cur, b_elems * sizeof(double));
  }

  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(opt.m),
                                   static_cast<double>(opt.n),
                                   static_cast<double>(opt.k)));
}

}  // namespace srumma
