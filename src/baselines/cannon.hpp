#pragma once
// Cannon's algorithm (1969) — the classic message-passing baseline whose
// algorithmic efficiency SRUMMA matches (isoefficiency O(P^1.5)).
//
// Requires a square sqrt(P) x sqrt(P) grid.  Every rank holds one padded
// local block of A, B and C (uniform size ceil(m/p) x ..., zero-padded so
// blocks stay shape-compatible while they circulate).  The algorithm:
//   1. skew: shift row i of A left by i, column j of B up by j;
//   2. p steps of  C_local += A_local * B_local  followed by a one-hop
//      shift of A left and B up.
// Unlike SRUMMA, every transfer is a synchronizing sendrecv with a
// neighbour — the coordination SRUMMA's one-sided design removes.

#include "msg/comm.hpp"
#include "trace/report.hpp"
#include "util/matrix.hpp"

namespace srumma {

struct CannonOptions {
  index_t m = 0, n = 0, k = 0;  ///< global dimensions
  double alpha = 1.0, beta = 0.0;
  bool phantom = false;  ///< cost model only, no data
};

/// SPMD collective.  a_block/b_block are this rank's padded local blocks of
/// size ceil(m/p) x ceil(k/p) and ceil(k/p) x ceil(n/p); both are consumed
/// (their contents circulate).  c_block is ceil(m/p) x ceil(n/p).  In
/// phantom mode pass empty views.
MultiplyResult cannon_multiply(Rank& me, Comm& comm, MatrixView a_block,
                               MatrixView b_block, MatrixView c_block,
                               const CannonOptions& opt);

/// Padded block edge sizes for a given global size and grid edge.
[[nodiscard]] inline index_t cannon_block(index_t n, int p) {
  return (n + p - 1) / p;
}

}  // namespace srumma
