#include "baselines/summa.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "core/task_plan.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

MultiplyResult summa_multiply(Rank& me, Comm& comm, DistMatrix& a,
                              DistMatrix& b, DistMatrix& c,
                              const SummaOptions& opt) {
  Team& team = me.team();
  const ProcGrid grid = c.grid();
  SRUMMA_REQUIRE(a.grid().p == grid.p && a.grid().q == grid.q &&
                     b.grid().p == grid.p && b.grid().q == grid.q,
                 "summa: A, B, C must share one process grid");
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  SRUMMA_REQUIRE(a.rows() == m && b.rows() == k && b.cols() == n,
                 "summa: dimensions do not conform");
  SRUMMA_REQUIRE(a.phantom() == c.phantom() && b.phantom() == c.phantom(),
                 "summa: phantom flags of A, B, C must agree");
  const bool phantom = c.phantom();
  const MachineModel& mm = team.machine();

  const auto [pi, pj] = grid.coords_of(me.id());
  std::vector<int> row_group;  // my grid row: broadcast domain for A panels
  for (int j = 0; j < grid.q; ++j) row_group.push_back(grid.rank_of(pi, j));
  std::vector<int> col_group;  // my grid column: broadcast domain for B panels
  for (int i = 0; i < grid.p; ++i) col_group.push_back(grid.rank_of(i, pj));

  const std::vector<index_t> ks =
      k_segment_bounds(a.col_dist(), b.row_dist(), opt.panel);
  index_t max_panel = 0;
  for (std::size_t s = 0; s + 1 < ks.size(); ++s)
    max_panel = std::max(max_panel, ks[s + 1] - ks[s]);

  const index_t bm = c.block_rows(me.id());
  const index_t bn = c.block_cols(me.id());

  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();

  if (!phantom && opt.beta != 1.0) {
    MatrixView mine = c.local_view(me);
    if (opt.beta == 0.0) {
      mine.fill(0.0);
    } else {
      for (index_t j = 0; j < bn; ++j)
        for (index_t i = 0; i < bm; ++i) mine(i, j) *= opt.beta;
    }
  }

  Matrix a_panel;
  Matrix b_panel;
  if (!phantom && max_panel > 0) {
    a_panel = Matrix(std::max<index_t>(bm, 1), max_panel);
    b_panel = Matrix(std::max<index_t>(max_panel, 1), bn);
  }
  me.trace().buffer_bytes_peak = std::max(
      me.trace().buffer_bytes_peak,
      static_cast<std::uint64_t>((bm + bn) * max_panel) * sizeof(double));

  for (std::size_t s = 0; s + 1 < ks.size(); ++s) {
    const index_t k0 = ks[s];
    const index_t kw = ks[s + 1] - k0;
    if (kw == 0) continue;

    // A panel: owned by one grid column; roots pack, then row broadcast.
    const int pc = a.col_dist().owner(k0);
    const int a_root = grid.rank_of(pi, pc);
    if (me.id() == a_root) {
      if (!phantom && bm > 0) {
        copy(ConstMatrixView(a.local_view(me).block(
                 0, k0 - a.block_col_start(me.id()), bm, kw)),
             a_panel.block(0, 0, bm, kw));
      }
      me.charge_seconds(static_cast<double>(bm * kw) * sizeof(double) /
                        mm.shm_bw);  // pack
    }
    comm.bcast(me, row_group, a_root, phantom ? nullptr : a_panel.data(),
               static_cast<std::size_t>(bm * kw));

    // B panel: owned by one grid row; roots pack, then column broadcast.
    // The panel buffer is packed with ld == kw so the broadcast payload is
    // contiguous even when this panel is narrower than the widest one.
    const int pr = b.row_dist().owner(k0);
    const int b_root = grid.rank_of(pr, pj);
    MatrixView b_packed =
        phantom ? MatrixView{}
                : MatrixView(b_panel.data(), kw, bn, std::max<index_t>(kw, 1));
    if (me.id() == b_root) {
      if (!phantom && bn > 0) {
        copy(ConstMatrixView(b.local_view(me).block(
                 k0 - b.block_row_start(me.id()), 0, kw, bn)),
             b_packed);
      }
      me.charge_seconds(static_cast<double>(kw * bn) * sizeof(double) /
                        mm.shm_bw);  // pack
    }
    comm.bcast(me, col_group, b_root, phantom ? nullptr : b_panel.data(),
               static_cast<std::size_t>(kw * bn));

    if (!phantom && bm > 0 && bn > 0) {
      MatrixView mine = c.local_view(me);
      blas::gemm(blas::Trans::No, blas::Trans::No, bm, bn, kw, opt.alpha,
                 a_panel.data(), a_panel.ld(), b_packed.data(), b_packed.ld(),
                 1.0, mine.data(), mine.ld());
    }
    me.charge_gemm(bm, bn, kw);
  }

  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(m),
                                   static_cast<double>(n),
                                   static_cast<double>(k)));
}

void transpose_redistribute(Rank& me, Comm& comm, DistMatrix& src,
                            DistMatrix& dst) {
  Team& team = me.team();
  SRUMMA_REQUIRE(src.rows() == dst.cols() && src.cols() == dst.rows(),
                 "transpose_redistribute: dst must be src transposed");
  SRUMMA_REQUIRE(src.phantom() == dst.phantom(),
                 "transpose_redistribute: phantom flags must agree");
  const bool phantom = src.phantom();
  const MachineModel& mm = team.machine();
  const int size = team.size();

  const index_t sr0 = src.block_row_start(me.id());
  const index_t sc0 = src.block_col_start(me.id());

  // Piece of *sender*'s transposed block landing in *receiver*'s dst block,
  // in dst coordinates (row range, col range).
  auto piece = [&](int sender, int receiver) {
    const index_t s_r0 = src.block_row_start(sender);
    const index_t s_m = src.block_rows(sender);
    const index_t s_c0 = src.block_col_start(sender);
    const index_t s_n = src.block_cols(sender);
    const index_t d_r0 = dst.block_row_start(receiver);
    const index_t d_m = dst.block_rows(receiver);
    const index_t d_c0 = dst.block_col_start(receiver);
    const index_t d_n = dst.block_cols(receiver);
    const index_t ilo = std::max(s_c0, d_r0);
    const index_t ihi = std::min(s_c0 + s_n, d_r0 + d_m);
    const index_t jlo = std::max(s_r0, d_c0);
    const index_t jhi = std::min(s_r0 + s_m, d_c0 + d_n);
    struct Rect {
      index_t ilo, jlo, rows, cols;
    };
    return Rect{ilo, jlo, std::max<index_t>(ihi - ilo, 0),
                std::max<index_t>(jhi - jlo, 0)};
  };

  // Pack my transposed contribution to `receiver` (dst-oriented,
  // column-major, contiguous: ld == piece rows, so the buffers stay wire-
  // compatible whatever piece size was packed previously).
  std::vector<double> send_buf;
  std::vector<double> recv_buf;
  auto pack_for = [&](int receiver) -> std::size_t {
    const auto r = piece(me.id(), receiver);
    const std::size_t elems = static_cast<std::size_t>(r.rows * r.cols);
    if (elems == 0) return 0;
    me.charge_seconds(static_cast<double>(elems) * sizeof(double) / mm.shm_bw);
    if (phantom) return elems;
    if (send_buf.size() < elems) send_buf.resize(elems);
    MatrixView sv = src.local_view(me);
    for (index_t j = 0; j < r.cols; ++j)
      for (index_t i = 0; i < r.rows; ++i)
        send_buf[static_cast<std::size_t>(i + j * r.rows)] =
            sv(r.jlo + j - sr0, r.ilo + i - sc0);
    return elems;
  };
  auto unpack_from = [&](int sender, const double* data) {
    const auto r = piece(sender, me.id());
    const std::size_t elems = static_cast<std::size_t>(r.rows * r.cols);
    if (elems == 0) return;
    me.charge_seconds(static_cast<double>(elems) * sizeof(double) / mm.shm_bw);
    if (phantom) return;
    MatrixView dv = dst.local_view(me);
    for (index_t j = 0; j < r.cols; ++j)
      for (index_t i = 0; i < r.rows; ++i)
        dv(r.ilo + i - dst.block_row_start(me.id()),
           r.jlo + j - dst.block_col_start(me.id())) =
            data[i + j * r.rows];
  };

  me.barrier();
  // Ring schedule: at step s, send to me+s, receive from me-s; step 0 is
  // the local transpose.  sendrecv posts the receive first, so every step
  // is deadlock-free.
  unpack_from(me.id(), [&] {
    pack_for(me.id());
    return phantom ? nullptr : send_buf.data();
  }());
  for (int s = 1; s < size; ++s) {
    const int to = (me.id() + s) % size;
    const int from = (me.id() - s + size) % size;
    const std::size_t selems = pack_for(to);
    const auto rrect = piece(from, me.id());
    const std::size_t relems =
        static_cast<std::size_t>(rrect.rows * rrect.cols);
    // Always exchange, even zero-sized pieces: the send/recv channels of a
    // step pair different partners, so skipping must be symmetric per
    // channel — running the empty message is the simple safe choice.
    if (!phantom && recv_buf.size() < relems) recv_buf.resize(relems);
    comm.sendrecv(me, to, 201, phantom ? nullptr : send_buf.data(), selems,
                  from, 201, phantom ? nullptr : recv_buf.data(), relems);
    if (relems > 0) unpack_from(from, phantom ? nullptr : recv_buf.data());
  }
  me.barrier();
}

MultiplyResult pdgemm_model(Rank& me, Comm& comm, DistMatrix& a, DistMatrix& b,
                            DistMatrix& c, const PdgemmOptions& opt) {
  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();

  DistMatrix* a_eff = &a;
  DistMatrix* b_eff = &b;
  std::optional<DistMatrix> at;
  std::optional<DistMatrix> bt;
  // Transposed operands cost pdgemm a full redistributed copy: the local
  // block of the temporary counts against the memory footprint.
  std::uint64_t redist_bytes = 0;
  if (opt.ta == blas::Trans::Yes) {
    redist_bytes += static_cast<std::uint64_t>(a.block_rows(me.id()) *
                                               a.block_cols(me.id())) *
                    sizeof(double);
    at.emplace(a.rma(), me, a.cols(), a.rows(), a.grid(), a.phantom());
    transpose_redistribute(me, comm, a, *at);
    a_eff = &*at;
  }
  if (opt.tb == blas::Trans::Yes) {
    redist_bytes += static_cast<std::uint64_t>(b.block_rows(me.id()) *
                                               b.block_cols(me.id())) *
                    sizeof(double);
    bt.emplace(b.rma(), me, b.cols(), b.rows(), b.grid(), b.phantom());
    transpose_redistribute(me, comm, b, *bt);
    b_eff = &*bt;
  }

  SummaOptions sopt;
  sopt.alpha = opt.alpha;
  sopt.beta = opt.beta;
  sopt.panel = opt.panel;
  (void)summa_multiply(me, comm, *a_eff, *b_eff, c, sopt);
  // Footprint: the larger of SUMMA's panels (set by the call above) and
  // the redistributed transpose temporaries.
  me.trace().buffer_bytes_peak =
      std::max(me.trace().buffer_bytes_peak, redist_bytes);

  if (at) at->destroy(me);
  if (bt) bt->destroy(me);

  const index_t k = opt.ta == blas::Trans::Yes ? a.rows() : a.cols();
  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(c.rows()),
                                   static_cast<double>(c.cols()),
                                   static_cast<double>(k)));
}

}  // namespace srumma
