#pragma once
// SUMMA (van de Geijn & Watts, 1997) and the ScaLAPACK pdgemm stand-in.
//
// SUMMA is the algorithm inside PBLAS pdgemm, the baseline the paper
// compares against on every platform.  For each K panel, the owning grid
// column broadcasts its A panel along grid rows and the owning grid row
// broadcasts its B panel along grid columns (binomial trees over the
// message-passing layer); every rank then accumulates
// C_local += A_panel * B_panel.
//
// pdgemm_model extends SUMMA to op(A)/op(B) by an explicit transposed
// redistribution before the multiply — modelling why pdgemm loses so much
// more on the transposed cases of the paper's Table 1.

#include "blas/gemm.hpp"
#include "dist/dist_matrix.hpp"
#include "msg/comm.hpp"
#include "trace/report.hpp"

namespace srumma {

struct SummaOptions {
  double alpha = 1.0, beta = 0.0;
  /// Maximum K-panel width; 0 = cut only at block-owner boundaries.
  index_t panel = 128;
};

/// SPMD collective SUMMA: C := alpha*A*B + beta*C (no transposes).
/// A, B, C must share one grid; A is m x k, B is k x n, C is m x n.
MultiplyResult summa_multiply(Rank& me, Comm& comm, DistMatrix& a,
                              DistMatrix& b, DistMatrix& c,
                              const SummaOptions& opt = SummaOptions{});

/// Redistribute src into a transposed DistMatrix (dst must be cols x rows
/// of src, same grid).  Ring-scheduled sendrecv exchange; O(P) steps.
void transpose_redistribute(Rank& me, Comm& comm, DistMatrix& src,
                            DistMatrix& dst);

struct PdgemmOptions {
  blas::Trans ta = blas::Trans::No;
  blas::Trans tb = blas::Trans::No;
  double alpha = 1.0, beta = 0.0;
  index_t panel = 64;  ///< typical ScaLAPACK distribution block size
};

/// The pdgemm model: transposed operands are first redistributed (cost
/// included in the result), then SUMMA runs.  C := alpha*op(A)*op(B)+beta*C.
MultiplyResult pdgemm_model(Rank& me, Comm& comm, DistMatrix& a, DistMatrix& b,
                            DistMatrix& c,
                            const PdgemmOptions& opt = PdgemmOptions{});

}  // namespace srumma
