#pragma once
// Machine models for the virtual-time cluster simulation.
//
// The paper evaluates on four machines (Linux/Xeon + Myrinet-2000, IBM SP
// with 16-way Power-3 nodes, Cray X1, SGI Altix 3000).  None of that
// hardware exists here, so each platform is captured as a parameter set at
// the same level of abstraction the paper's Section 2 cost model uses:
// per-CPU dgemm rate, shared-memory copy bandwidth/latency, network
// bandwidth/latency (t_w, t_s), protocol capabilities (zero-copy NICs,
// cacheable remote memory, MPI eager/rendezvous threshold).  The virtual
// time runtime (src/vtime, src/rma, src/msg) charges every operation
// against these parameters; contention is modelled by serializing transfers
// on per-node NIC and per-domain memory-system resources.
//
// Calibration targets are the absolute numbers the paper reports (e.g.
// Altix 4000x4000 on 128 CPUs: SRUMMA 384 GFLOP/s vs pdgemm 33.9), but the
// reproduction claim is about *shape*: who wins, by what factor, and where
// the crossovers fall.

#include <string>

#include "util/matrix.hpp"

namespace srumma {

/// Effective serial dgemm rate as a function of problem shape.  Small
/// blocks run far below peak (loop overhead, cold caches); the rate
/// saturates for large blocks.  rate = peak * asymptote * s/(s + half_size)
/// with s the geometric mean of (m, n, k) — the standard one-parameter
/// saturation model for BLAS-3 kernels.
struct DgemmRateModel {
  double peak_flops = 1e9;   ///< nominal per-CPU peak (flop/s)
  double asymptote = 0.85;   ///< fraction of peak reached for large blocks
  double half_size = 32.0;   ///< geometric-mean block size at 50% of asymptote

  /// Effective rate in flop/s for an m x n x k block product.
  [[nodiscard]] double rate(index_t m, index_t n, index_t k) const;

  /// Modeled execution time of one m x n x k dgemm (seconds).
  [[nodiscard]] double time(index_t m, index_t n, index_t k) const;
};

/// Full description of one platform.
struct MachineModel {
  std::string name;

  // -- topology -----------------------------------------------------------
  int num_nodes = 1;
  int ranks_per_node = 1;
  /// True when every rank can load/store the whole machine (Cray X1,
  /// SGI Altix): the entire machine is one shared-memory domain even though
  /// it is physically built from small SMP nodes.
  bool single_shared_domain = false;
  /// True when remote memory is cacheable (Altix); false when the coherence
  /// protocol forbids caching remote lines (Cray X1), which makes the
  /// copy-based shared-memory flavor faster than direct access.
  bool remote_cacheable = true;
  /// dgemm rate multiplier when operands live on another physical node and
  /// are accessed directly (no local copy).  Near 1 for cacheable NUMA,
  /// small for non-cacheable partitioned memory.
  double remote_direct_rate_factor = 1.0;

  // -- computation --------------------------------------------------------
  DgemmRateModel dgemm;

  // -- shared-memory communication (intra-domain copies) -------------------
  double shm_latency = 1e-6;        ///< per-copy startup (s)
  double shm_bw = 1e9;              ///< single-rank memcpy bandwidth (B/s)
  double shm_agg_bw_per_node = 2e9; ///< memory-system capacity per node (B/s)

  // -- RMA network (inter-node one-sided gets/puts) -------------------------
  double net_latency = 10e-6;  ///< one-way request latency, t_s (s)
  double net_bw = 250e6;       ///< per-NIC bandwidth, 1/t_w (B/s)
  bool zero_copy = true;       ///< NIC moves user buffers without host CPU
  double host_copy_bw = 700e6; ///< host-CPU copy bandwidth when !zero_copy
  double rma_issue_overhead = 0.5e-6;  ///< origin CPU cost to post a get

  // -- MPI model (two-sided, used by the baselines) -------------------------
  double mpi_latency = 8e-6;        ///< per-message latency (s)
  double eager_threshold = 16384.0; ///< bytes; above this -> rendezvous
  double mpi_copy_bw = 700e6;       ///< eager buffering copy bandwidth (B/s)
  double rendezvous_setup = 2.0;    ///< handshake cost in units of mpi_latency

  // -- collectives ----------------------------------------------------------
  double barrier_hop_latency = 5e-6;  ///< per-tree-stage cost of a barrier

  // -- OS noise (daemon preemption) ------------------------------------------
  // The paper's Section 2 argues SRUMMA's asynchrony matters because
  // "synchronization amplifies performance degradations due to the
  // nonexclusive use of the processor": every bulk-synchronous step of a
  // message-passing code waits for the slowest rank, so random daemon
  // preemptions multiply across steps, while SRUMMA absorbs them.  Each
  // rank is preempted for noise_daemon_duration seconds after roughly every
  // noise_daemon_interval seconds of CPU consumed (deterministic per-rank
  // jitter so runs are reproducible).  0 disables noise.
  double noise_daemon_interval = 0.0;
  double noise_daemon_duration = 0.0;

  // -- derived helpers ------------------------------------------------------
  [[nodiscard]] int total_ranks() const { return num_nodes * ranks_per_node; }
  [[nodiscard]] int node_of(int rank) const { return rank / ranks_per_node; }
  /// Shared-memory domain id (node id, or 0 on single-domain machines).
  [[nodiscard]] int domain_of(int rank) const {
    return single_shared_domain ? 0 : node_of(rank);
  }
  [[nodiscard]] bool same_domain(int r1, int r2) const {
    return domain_of(r1) == domain_of(r2);
  }
  [[nodiscard]] int num_domains() const {
    return single_shared_domain ? 1 : num_nodes;
  }
  /// Ranks per shared-memory domain.
  [[nodiscard]] int domain_size() const {
    return single_shared_domain ? total_ranks() : ranks_per_node;
  }
  /// Aggregate memory-system bandwidth of one domain.
  [[nodiscard]] double domain_agg_bw() const {
    const int nodes_in_domain = single_shared_domain ? num_nodes : 1;
    return shm_agg_bw_per_node * nodes_in_domain;
  }

  /// A `nodes`-node slice of this machine: identical per-node parameters,
  /// truncated topology.  Because every parameter is homogeneous per node,
  /// a Team over the carved model behaves exactly like a standalone
  /// machine of that size — the property the request plane (src/service)
  /// relies on for its bitwise-identity guarantee (docs/SERVICE.md).
  [[nodiscard]] MachineModel carve(int nodes) const;

  // -- the four paper platforms ---------------------------------------------
  /// Dual 2.4-GHz Xeon nodes, Myrinet-2000 (GM, zero-copy RMA).
  static MachineModel linux_myrinet(int num_nodes);
  /// 16-way 375-MHz Power-3 nodes, Colony switch, LAPI (not zero-copy).
  static MachineModel ibm_sp(int num_nodes);
  /// Cray X1: 4 MSPs/node, globally addressable but non-cacheable remote
  /// memory; one machine-wide shared-memory domain.
  static MachineModel cray_x1(int num_nodes);
  /// SGI Altix 3000: 2 CPUs/brick NUMA, cacheable machine-wide shared
  /// memory; one machine-wide domain.
  static MachineModel sgi_altix(int num_cpus);
  /// A what-if model: commodity cluster on InfiniBand 4x — the emerging
  /// zero-copy RDMA network the paper's introduction points to.  Not part
  /// of the paper's evaluation; used to ask how SRUMMA's advantage moves
  /// with a faster, lower-latency RMA fabric.
  static MachineModel infiniband_cluster(int num_nodes);
  /// A generic laptop-like model for functional tests.
  static MachineModel testing(int num_nodes, int ranks_per_node);
};

}  // namespace srumma
