#include "machine/machine.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

double DgemmRateModel::rate(index_t m, index_t n, index_t k) const {
  if (m <= 0 || n <= 0 || k <= 0) return peak_flops * asymptote;
  const double s = std::cbrt(static_cast<double>(m) * static_cast<double>(n) *
                             static_cast<double>(k));
  return peak_flops * asymptote * s / (s + half_size);
}

double DgemmRateModel::time(index_t m, index_t n, index_t k) const {
  if (m <= 0 || n <= 0 || k <= 0) return 0.0;
  return gemm_flops(static_cast<double>(m), static_cast<double>(n),
                    static_cast<double>(k)) /
         rate(m, n, k);
}

MachineModel MachineModel::carve(int nodes) const {
  SRUMMA_REQUIRE(nodes >= 1 && nodes <= num_nodes,
                 "carve: node count must lie in [1, num_nodes]");
  MachineModel m = *this;
  m.num_nodes = nodes;
  return m;
}

MachineModel MachineModel::linux_myrinet(int num_nodes) {
  SRUMMA_REQUIRE(num_nodes >= 1, "need at least one node");
  MachineModel m;
  m.name = "Linux-Myrinet";
  m.num_nodes = num_nodes;
  m.ranks_per_node = 2;  // dual-Xeon nodes
  m.single_shared_domain = false;
  m.remote_cacheable = true;  // irrelevant: no cross-node load/store
  m.remote_direct_rate_factor = 1.0;
  m.dgemm = {4.8_GFLOPs, 0.58, 24.0};  // 2.4 GHz Xeon + MKL
  m.shm_latency = 0.8_us;
  m.shm_bw = 1.0_GBs;
  m.shm_agg_bw_per_node = 1.8_GBs;
  m.net_latency = 12_us;  // GM get
  m.net_bw = 245.0_MBs;   // Myrinet-2000
  m.zero_copy = true;     // GM RDMA on registered memory
  m.host_copy_bw = 700.0_MBs;
  m.mpi_latency = 9_us;
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 700.0_MBs;
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 10_us;
  m.noise_daemon_interval = 0.5;   // commodity cluster: daemons share CPUs
  m.noise_daemon_duration = 2.0_ms;
  return m;
}

MachineModel MachineModel::ibm_sp(int num_nodes) {
  SRUMMA_REQUIRE(num_nodes >= 1, "need at least one node");
  MachineModel m;
  m.name = "IBM-SP";
  m.num_nodes = num_nodes;
  m.ranks_per_node = 16;  // 16-way Power-3 Nighthawk nodes
  m.single_shared_domain = false;
  m.remote_cacheable = true;
  m.remote_direct_rate_factor = 1.0;
  m.dgemm = {1.5_GFLOPs, 0.70, 24.0};  // 375 MHz Power-3 + ESSL
  m.shm_latency = 0.7_us;
  m.shm_bw = 0.8_GBs;
  m.shm_agg_bw_per_node = 1.6_GBs;  // 16 CPUs share the node memory system
  m.net_latency = 30_us;            // LAPI interrupt-driven get (paper: high)
  m.net_bw = 800.0_MBs;             // Colony switch (dual plane), per node
  m.zero_copy = false;              // LAPI requires host-CPU copies
  m.host_copy_bw = 1.2_GBs;
  m.mpi_latency = 18_us;  // polling-based, lower latency than LAPI get
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 800.0_MBs;
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 20_us;
  m.noise_daemon_interval = 0.5;
  m.noise_daemon_duration = 3.0_ms;  // AIX daemons on 16-way nodes
  return m;
}

MachineModel MachineModel::cray_x1(int num_nodes) {
  SRUMMA_REQUIRE(num_nodes >= 1, "need at least one node");
  MachineModel m;
  m.name = "Cray-X1";
  m.num_nodes = num_nodes;
  m.ranks_per_node = 4;  // 4 MSPs per node
  m.single_shared_domain = true;   // machine-wide load/store
  m.remote_cacheable = false;      // remote lines are not cacheable
  m.remote_direct_rate_factor = 0.12;  // vector dgemm starves on uncached data
  m.dgemm = {12.8_GFLOPs, 0.85, 48.0};  // MSP + libsci
  m.shm_latency = 2_us;     // global memory access setup
  m.shm_bw = 6.0_GBs;       // single-MSP block-copy bandwidth
  m.shm_agg_bw_per_node = 20.0_GBs;  // X1 node memory bandwidth is huge
  m.net_latency = 5_us;     // only used if configured multi-domain
  m.net_bw = 4.0_GBs;
  m.zero_copy = true;
  m.host_copy_bw = 4.0_GBs;
  m.mpi_latency = 8_us;
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 1.2_GBs;  // MPI pays buffering copies; paper Fig. 6
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 6_us;
  m.noise_daemon_interval = 1.0;   // lightweight microkernel on compute MSPs
  m.noise_daemon_duration = 2.0_ms;
  return m;
}

MachineModel MachineModel::sgi_altix(int num_cpus) {
  SRUMMA_REQUIRE(num_cpus >= 1, "need at least one CPU");
  SRUMMA_REQUIRE(num_cpus % 2 == 0 || num_cpus == 1,
                 "Altix is built from 2-CPU bricks");
  MachineModel m;
  m.name = "SGI-Altix";
  m.num_nodes = (num_cpus + 1) / 2;
  m.ranks_per_node = num_cpus == 1 ? 1 : 2;  // 2 CPUs per brick
  m.single_shared_domain = true;  // NUMAlink: one cacheable address space
  m.remote_cacheable = true;
  m.remote_direct_rate_factor = 0.97;  // cacheable: only first-touch misses
  m.dgemm = {6.0_GFLOPs, 0.62, 32.0};  // 1.5 GHz Itanium-2 + SCSL
  m.shm_latency = 1_us;
  m.shm_bw = 1.8_GBs;
  m.shm_agg_bw_per_node = 3.2_GBs;  // per-brick share of NUMAlink fabric
  m.net_latency = 3_us;             // unused in single-domain runs
  m.net_bw = 1.6_GBs;
  m.zero_copy = true;
  m.host_copy_bw = 1.8_GBs;
  m.mpi_latency = 2.8_us;
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 0.9_GBs;
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 3_us;
  // Full Linux on every CPU; the paper blames daemon preemption for the
  // reduced scaling of the largest runs when all 128 CPUs are used.
  m.noise_daemon_interval = 0.3;
  m.noise_daemon_duration = 5.0_ms;
  return m;
}

MachineModel MachineModel::infiniband_cluster(int num_nodes) {
  SRUMMA_REQUIRE(num_nodes >= 1, "need at least one node");
  MachineModel m;
  m.name = "Linux-InfiniBand";
  m.num_nodes = num_nodes;
  m.ranks_per_node = 2;  // same dual-Xeon nodes as the Myrinet cluster
  m.single_shared_domain = false;
  m.remote_cacheable = true;
  m.remote_direct_rate_factor = 1.0;
  m.dgemm = {4.8_GFLOPs, 0.58, 24.0};
  m.shm_latency = 0.8_us;
  m.shm_bw = 1.0_GBs;
  m.shm_agg_bw_per_node = 1.8_GBs;
  m.net_latency = 6_us;     // RDMA read
  m.net_bw = 900.0_MBs;     // IB 4x effective
  m.zero_copy = true;
  m.host_copy_bw = 1.0_GBs;
  m.mpi_latency = 5_us;
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 900.0_MBs;
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 6_us;
  m.noise_daemon_interval = 0.5;
  m.noise_daemon_duration = 2.0_ms;
  return m;
}

MachineModel MachineModel::testing(int num_nodes, int ranks_per_node) {
  SRUMMA_REQUIRE(num_nodes >= 1 && ranks_per_node >= 1,
                 "testing model needs positive topology");
  MachineModel m;
  m.name = "testing";
  m.num_nodes = num_nodes;
  m.ranks_per_node = ranks_per_node;
  m.single_shared_domain = false;
  m.remote_cacheable = true;
  m.remote_direct_rate_factor = 1.0;
  m.dgemm = {1.0_GFLOPs, 0.8, 16.0};
  m.shm_latency = 1_us;
  m.shm_bw = 1.0_GBs;
  m.shm_agg_bw_per_node = 2.0_GBs;
  m.net_latency = 10_us;
  m.net_bw = 250.0_MBs;
  m.zero_copy = true;
  m.host_copy_bw = 500.0_MBs;
  m.mpi_latency = 8_us;
  m.eager_threshold = 16_KiB;
  m.mpi_copy_bw = 500.0_MBs;
  m.rendezvous_setup = 2.0;
  m.barrier_hop_latency = 5_us;
  return m;
}

}  // namespace srumma
