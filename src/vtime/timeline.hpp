#pragma once
// Opt-in per-rank event timeline.
//
// When enabled on a Team, the runtime records (kind, start, end) spans of
// virtual time for computation, one-sided transfers, waits and noise.
// Rendered as an ASCII Gantt chart this shows the pipeline at work — where
// SRUMMA hides its gets, where the first (unhidden) task sits, and where a
// message-passing baseline convoys.  Disabled by default; recording is a
// rank-private append, so enabling it does not perturb virtual time.

#include <iosfwd>
#include <vector>

#include "util/matrix.hpp"

namespace srumma {

enum class EventKind : char {
  Compute = 'C',  ///< dgemm execution
  Get = 'G',      ///< one-sided get span (issue -> modeled completion)
  Put = 'P',      ///< one-sided put/accumulate span
  Wait = 'W',     ///< clock blocked on a completion or message
  Noise = 'N',    ///< daemon preemption
  Barrier = 'B',  ///< time spent in a barrier beyond own arrival
};

struct TimelineEvent {
  EventKind kind;
  double t0;
  double t1;
};

class Timeline {
 public:
  explicit Timeline(int nranks);

  /// Append one span for `rank` (rank-private storage: callers only ever
  /// record their own rank, so no locking is needed).
  void record(int rank, EventKind kind, double t0, double t1);

  [[nodiscard]] const std::vector<TimelineEvent>& events(int rank) const;
  [[nodiscard]] int ranks() const noexcept {
    return static_cast<int>(per_rank_.size());
  }

  void clear();

  /// ASCII Gantt: one row per rank (up to max_ranks), `width` virtual-time
  /// buckets across [t0, t1]; each cell shows the kind that dominates the
  /// bucket, '.' for idle.  Pass t1 <= t0 to span all recorded events.
  void print_gantt(std::ostream& os, double t0 = 0.0, double t1 = 0.0,
                   int width = 100, int max_ranks = 16) const;

  /// Machine-readable dump: rank,kind,start,end per line.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::vector<TimelineEvent>> per_rank_;
};

}  // namespace srumma
