#pragma once
// Per-rank virtual clock.
//
// Ranks execute as OS threads at real speed, but *time* is virtual: every
// modeled operation (dgemm, copy, message, wait) advances the owning rank's
// clock by the modeled duration.  Cross-rank effects arrive two ways:
//   * synchronization points (barrier, message match, RMA wait) take the
//     max of the clocks involved, and
//   * host-CPU "steal": a non-zero-copy RMA get interrupts the data owner's
//     CPU to copy buffers; the victim rank accumulates that stolen time
//     atomically and folds it into its own clock at its next operation.

#include <atomic>

namespace srumma {

class VClock {
 public:
  /// Current virtual time in seconds (applies any pending stolen time).
  [[nodiscard]] double now() noexcept {
    apply_steal();
    return now_;
  }

  /// Advance by a modeled duration (dt >= 0).
  void advance(double dt) noexcept {
    apply_steal();
    now_ += dt;
  }

  /// Jump forward to time t if t is in the future (used by waits/matches).
  void sync_to(double t) noexcept {
    apply_steal();
    if (t > now_) now_ = t;
  }

  /// Called by *other* ranks: this rank's CPU was borrowed for dt seconds.
  void add_steal(double dt) noexcept { steal_.fetch_add(dt, std::memory_order_relaxed); }

  /// Total stolen time folded in so far (for tracing).
  [[nodiscard]] double steal_total() const noexcept { return steal_applied_; }

  void reset() noexcept {
    now_ = 0.0;
    steal_applied_ = 0.0;
    steal_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void apply_steal() noexcept {
    const double s = steal_.exchange(0.0, std::memory_order_relaxed);
    if (s != 0.0) {
      now_ += s;
      steal_applied_ += s;
    }
  }

  double now_ = 0.0;
  double steal_applied_ = 0.0;
  std::atomic<double> steal_{0.0};
};

}  // namespace srumma
