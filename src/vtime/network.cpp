#include "vtime/network.hpp"

#include "util/error.hpp"

namespace srumma {

NetworkState::NetworkState(const MachineModel& machine) {
  nic_out_.reserve(static_cast<std::size_t>(machine.num_nodes));
  nic_in_.reserve(static_cast<std::size_t>(machine.num_nodes));
  for (int n = 0; n < machine.num_nodes; ++n) {
    nic_out_.push_back(std::make_unique<Resource>());
    nic_in_.push_back(std::make_unique<Resource>());
  }
  for (int d = 0; d < machine.num_domains(); ++d) {
    domain_mem_.push_back(std::make_unique<Resource>());
  }
}

Resource& NetworkState::nic_out(int node) {
  SRUMMA_REQUIRE(node >= 0 && node < static_cast<int>(nic_out_.size()),
                 "nic_out: node out of range");
  return *nic_out_[static_cast<std::size_t>(node)];
}

Resource& NetworkState::nic_in(int node) {
  SRUMMA_REQUIRE(node >= 0 && node < static_cast<int>(nic_in_.size()),
                 "nic_in: node out of range");
  return *nic_in_[static_cast<std::size_t>(node)];
}

Resource& NetworkState::domain_mem(int domain) {
  SRUMMA_REQUIRE(domain >= 0 && domain < static_cast<int>(domain_mem_.size()),
                 "domain_mem: domain out of range");
  return *domain_mem_[static_cast<std::size_t>(domain)];
}

void NetworkState::reset() {
  for (auto& r : nic_out_) r->reset();
  for (auto& r : nic_in_) r->reset();
  for (auto& r : domain_mem_) r->reset();
}

void NetworkState::advance_frontier(double watermark) {
  for (auto& r : nic_out_) r->advance_frontier(watermark);
  for (auto& r : nic_in_) r->advance_frontier(watermark);
  for (auto& r : domain_mem_) r->advance_frontier(watermark);
}

}  // namespace srumma
