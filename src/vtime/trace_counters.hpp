#pragma once
// Per-rank instrumentation counters.
//
// Every rank accumulates these as it executes; the trace module aggregates
// them into the per-experiment reports (achieved overlap, bytes moved by
// protocol, host-CPU steal).  All fields are in seconds or bytes.
//
// Aggregation: every field is summed across ranks (operator+=) and
// differenced across run snapshots (trace_delta) EXCEPT buffer_bytes_peak,
// which is a per-run high-water mark — MAX across ranks, end value across
// snapshots.  When adding a field, update operator+= below, trace_delta and
// the sizeof guard in trace/report.cpp, and counters_json in
// trace/metrics_json.cpp (docs/OBSERVABILITY.md documents the schema).

#include <algorithm>
#include <cstdint>

namespace srumma {

struct TraceCounters {
  // -- computation (SUM) ----------------------------------------------------
  double time_compute = 0.0;  ///< modeled dgemm time (SUM)
  std::uint64_t gemm_calls = 0;  ///< (SUM)
  double flops = 0.0;            ///< (SUM)

  // -- communication (SUM) --------------------------------------------------
  double time_comm = 0.0;  ///< modeled transfer durations issued (SUM)
  double time_wait = 0.0;  ///< clock actually lost blocking on completions
                           ///< (SUM); equals the traced Wait + RecoveryWait
                           ///< span totals (see trace/tracer.hpp)
  double time_noise = 0.0; ///< OS daemon-preemption time injected (SUM)
  std::uint64_t bytes_shm = 0;     ///< intra-domain copy traffic (SUM)
  std::uint64_t bytes_remote = 0;  ///< inter-node RMA traffic (SUM)
  std::uint64_t bytes_msg = 0;     ///< two-sided (MPI-model) traffic sent (SUM)
  std::uint64_t gets = 0;   ///< (SUM)
  std::uint64_t puts = 0;   ///< (SUM; includes accumulates)
  std::uint64_t sends = 0;  ///< (SUM)
  std::uint64_t recvs = 0;  ///< (SUM)
  std::uint64_t direct_tasks = 0;  ///< block products fed views in place (SUM)
  std::uint64_t copy_tasks = 0;    ///< block products fed copied buffers (SUM)
  /// Algorithm-internal buffer memory on one rank (communication panels,
  /// circulation temps, redistribution temporaries — not the matrices
  /// themselves).  A high-water mark: each top-level algorithm
  /// max-accumulates its own footprint, so a later smaller run never
  /// erases the peak (Team::reset clears it between experiments).  The one
  /// MAX-aggregated field: team totals report the worst rank's footprint,
  /// and trace_delta carries the end value instead of a difference.
  std::uint64_t buffer_bytes_peak = 0;

  // -- fault injection & recovery (SUM) (src/fault, RetryPolicy, pipeline) --
  std::uint64_t faults_injected = 0;   ///< transient failures injected (SUM)
  std::uint64_t faults_corrupted = 0;  ///< payload corruptions applied (SUM)
  std::uint64_t faults_delayed = 0;    ///< straggler-op delays applied (SUM)
  std::uint64_t rma_retries = 0;       ///< re-issues performed by waits (SUM)
  std::uint64_t rma_op_timeouts = 0;   ///< attempts hit op_timeout (SUM)
  /// Handles drained with the terminal RmaStatus::DomainDead after their
  /// target's shared-memory domain fail-stopped (SUM).  Counted separately
  /// from rma_op_timeouts: "peer gone" is not "peer slow".
  std::uint64_t rma_domain_dead = 0;
  std::uint64_t task_requeues = 0;     ///< tasks re-enqueued at tail (SUM)
  /// Operand fetches re-issued after a task's first acquire failed: the
  /// legacy pipeline counts the re-issue of each requeued tail copy, the
  /// task engine counts each fetch re-arm (SUM).  Keeps the classification
  /// identity exact under faults:
  ///   copy_tasks + direct_tasks == block products executed
  /// — re-acquires inflate task_reissues, never the class counters.
  std::uint64_t task_reissues = 0;
  std::uint64_t shm_fallbacks = 0;     ///< Direct -> Copy degradations (SUM)
  std::uint64_t checksum_redos = 0;    ///< patches refetched (corruption) (SUM)
  /// Virtual time sunk into recovery: waits on failed attempts, retry
  /// backoff, checksum verification refetches and redone block products
  /// (SUM); equals the traced RecoveryWait + Backoff + Redo span totals.
  double time_recovery = 0.0;

  // -- cooperative block cache (SUM) (src/cache, docs/CACHE.md) -------------
  std::uint64_t cache_hits = 0;       ///< entry ready at request time (SUM)
  std::uint64_t cache_joins = 0;      ///< joined an in-flight fetch (SUM)
  std::uint64_t cache_misses = 0;     ///< became the single-flight fetcher (SUM)
  std::uint64_t cache_bypasses = 0;   ///< capacity/epoch made caching impossible (SUM)
  std::uint64_t cache_evictions = 0;  ///< LRU evictions under pressure (SUM)
  std::uint64_t cache_rearms = 0;     ///< dirty entries re-armed by waiters (SUM)
  /// Ready entries whose publishing get was issued AFTER the requester's
  /// virtual now — on a real machine the requester would have fetched first,
  /// so sharing would time-travel; it fetches itself instead (SUM).
  std::uint64_t cache_refetches = 0;
  /// Modeled inter-node bytes NOT transferred because a domain mate's fetch
  /// was shared (SUM) — the cache's headline gauge.
  std::uint64_t cache_bytes_saved = 0;

  // -- dependency-driven task engine (SUM) (src/engine, docs/ENGINE.md) -----
  /// Block products a rank executed for its own C tiles through the engine
  /// (SUM).  Engine runs reconcile exactly:
  ///   engine_tasks + tasks_stolen == copy_tasks + direct_tasks.
  std::uint64_t engine_tasks = 0;
  /// Block products executed by an idle domain mate on the owner's behalf,
  /// counted on the thief at handback publish (SUM); the owner still
  /// commits the C tile, so every stolen task also appears in exactly one
  /// of copy_tasks/direct_tasks (again on the thief).
  std::uint64_t tasks_stolen = 0;
  /// Block products replayed by a survivor on behalf of a permanently dead
  /// domain's ranks, from the buddy replicas into scratch (SUM); each also
  /// appears in exactly one of copy_tasks/direct_tasks and in gemm_calls,
  /// so recovery runs reconcile as
  ///   engine_tasks + tasks_stolen + tasks_adopted
  ///     == copy_tasks + direct_tasks == gemm_calls.
  std::uint64_t tasks_adopted = 0;

  /// Fraction of issued communication hidden behind computation:
  /// 1 - time_wait/time_comm, clamped to [0, 1].  The paper reports >90%
  /// overlap for SRUMMA on the Linux cluster.
  [[nodiscard]] double overlap() const {
    if (time_comm <= 0.0) return 1.0;
    const double w = 1.0 - time_wait / time_comm;
    if (w < 0.0) return 0.0;
    if (w > 1.0) return 1.0;
    return w;
  }

  TraceCounters& operator+=(const TraceCounters& o) {
    time_compute += o.time_compute;
    gemm_calls += o.gemm_calls;
    flops += o.flops;
    time_comm += o.time_comm;
    time_wait += o.time_wait;
    time_noise += o.time_noise;
    bytes_shm += o.bytes_shm;
    bytes_remote += o.bytes_remote;
    bytes_msg += o.bytes_msg;
    gets += o.gets;
    puts += o.puts;
    sends += o.sends;
    recvs += o.recvs;
    direct_tasks += o.direct_tasks;
    copy_tasks += o.copy_tasks;
    buffer_bytes_peak = std::max(buffer_bytes_peak, o.buffer_bytes_peak);
    faults_injected += o.faults_injected;
    faults_corrupted += o.faults_corrupted;
    faults_delayed += o.faults_delayed;
    rma_retries += o.rma_retries;
    rma_op_timeouts += o.rma_op_timeouts;
    rma_domain_dead += o.rma_domain_dead;
    task_requeues += o.task_requeues;
    task_reissues += o.task_reissues;
    shm_fallbacks += o.shm_fallbacks;
    checksum_redos += o.checksum_redos;
    time_recovery += o.time_recovery;
    cache_hits += o.cache_hits;
    cache_joins += o.cache_joins;
    cache_misses += o.cache_misses;
    cache_bypasses += o.cache_bypasses;
    cache_evictions += o.cache_evictions;
    cache_rearms += o.cache_rearms;
    cache_refetches += o.cache_refetches;
    cache_bytes_saved += o.cache_bytes_saved;
    engine_tasks += o.engine_tasks;
    tasks_stolen += o.tasks_stolen;
    tasks_adopted += o.tasks_adopted;
    return *this;
  }
};

}  // namespace srumma
