#pragma once
// Per-rank instrumentation counters.
//
// Every rank accumulates these as it executes; the trace module aggregates
// them into the per-experiment reports (achieved overlap, bytes moved by
// protocol, host-CPU steal).  All fields are in seconds or bytes.

#include <algorithm>
#include <cstdint>

namespace srumma {

struct TraceCounters {
  // -- computation ----------------------------------------------------------
  double time_compute = 0.0;  ///< modeled dgemm time
  std::uint64_t gemm_calls = 0;
  double flops = 0.0;

  // -- communication --------------------------------------------------------
  double time_comm = 0.0;  ///< modeled transfer durations issued by this rank
  double time_wait = 0.0;  ///< clock actually lost blocking on completions
  double time_noise = 0.0; ///< OS daemon-preemption time injected
  std::uint64_t bytes_shm = 0;     ///< intra-domain copy traffic
  std::uint64_t bytes_remote = 0;  ///< inter-node RMA traffic
  std::uint64_t bytes_msg = 0;     ///< two-sided (MPI-model) traffic sent
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t direct_tasks = 0;  ///< block products fed views in place
  std::uint64_t copy_tasks = 0;    ///< block products fed copied buffers
  /// Algorithm-internal buffer memory on one rank for the most recent
  /// collective operation (communication panels, circulation temps,
  /// redistribution temporaries — not the matrices themselves).  Each
  /// top-level algorithm overwrites it per run; aggregated across ranks by
  /// MAX, so a team-level result reports the worst rank's footprint.
  std::uint64_t buffer_bytes_peak = 0;

  // -- fault injection & recovery (src/fault, RetryPolicy, pipeline) --------
  std::uint64_t faults_injected = 0;   ///< transient failures injected
  std::uint64_t faults_corrupted = 0;  ///< payload corruptions applied
  std::uint64_t faults_delayed = 0;    ///< straggler-op delays applied
  std::uint64_t rma_retries = 0;       ///< re-issues performed by waits
  std::uint64_t rma_op_timeouts = 0;   ///< attempts abandoned by op_timeout
  std::uint64_t task_requeues = 0;     ///< pipeline tasks re-enqueued at tail
  std::uint64_t shm_fallbacks = 0;     ///< Direct -> Copy operand degradations
  std::uint64_t checksum_redos = 0;    ///< block products redone (corruption)
  /// Virtual time sunk into recovery: waits on failed attempts, retry
  /// backoff, checksum verification refetches and redone block products.
  double time_recovery = 0.0;

  /// Fraction of issued communication hidden behind computation:
  /// 1 - time_wait/time_comm, clamped to [0, 1].  The paper reports >90%
  /// overlap for SRUMMA on the Linux cluster.
  [[nodiscard]] double overlap() const {
    if (time_comm <= 0.0) return 1.0;
    const double w = 1.0 - time_wait / time_comm;
    if (w < 0.0) return 0.0;
    if (w > 1.0) return 1.0;
    return w;
  }

  TraceCounters& operator+=(const TraceCounters& o) {
    time_compute += o.time_compute;
    gemm_calls += o.gemm_calls;
    flops += o.flops;
    time_comm += o.time_comm;
    time_wait += o.time_wait;
    time_noise += o.time_noise;
    bytes_shm += o.bytes_shm;
    bytes_remote += o.bytes_remote;
    bytes_msg += o.bytes_msg;
    gets += o.gets;
    puts += o.puts;
    sends += o.sends;
    recvs += o.recvs;
    direct_tasks += o.direct_tasks;
    copy_tasks += o.copy_tasks;
    buffer_bytes_peak = std::max(buffer_bytes_peak, o.buffer_bytes_peak);
    faults_injected += o.faults_injected;
    faults_corrupted += o.faults_corrupted;
    faults_delayed += o.faults_delayed;
    rma_retries += o.rma_retries;
    rma_op_timeouts += o.rma_op_timeouts;
    task_requeues += o.task_requeues;
    shm_fallbacks += o.shm_fallbacks;
    checksum_redos += o.checksum_redos;
    time_recovery += o.time_recovery;
    return *this;
  }
};

}  // namespace srumma
