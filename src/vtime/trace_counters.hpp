#pragma once
// Per-rank instrumentation counters.
//
// Every rank accumulates these as it executes; the trace module aggregates
// them into the per-experiment reports (achieved overlap, bytes moved by
// protocol, host-CPU steal).  All fields are in seconds or bytes.

#include <algorithm>
#include <cstdint>

namespace srumma {

struct TraceCounters {
  // -- computation ----------------------------------------------------------
  double time_compute = 0.0;  ///< modeled dgemm time
  std::uint64_t gemm_calls = 0;
  double flops = 0.0;

  // -- communication --------------------------------------------------------
  double time_comm = 0.0;  ///< modeled transfer durations issued by this rank
  double time_wait = 0.0;  ///< clock actually lost blocking on completions
  double time_noise = 0.0; ///< OS daemon-preemption time injected
  std::uint64_t bytes_shm = 0;     ///< intra-domain copy traffic
  std::uint64_t bytes_remote = 0;  ///< inter-node RMA traffic
  std::uint64_t bytes_msg = 0;     ///< two-sided (MPI-model) traffic sent
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t direct_tasks = 0;  ///< block products fed views in place
  std::uint64_t copy_tasks = 0;    ///< block products fed copied buffers
  /// Algorithm-internal buffer memory on one rank for the most recent
  /// collective operation (communication panels, circulation temps,
  /// redistribution temporaries — not the matrices themselves).  Each
  /// top-level algorithm overwrites it per run; aggregated across ranks by
  /// MAX, so a team-level result reports the worst rank's footprint.
  std::uint64_t buffer_bytes_peak = 0;

  /// Fraction of issued communication hidden behind computation:
  /// 1 - time_wait/time_comm, clamped to [0, 1].  The paper reports >90%
  /// overlap for SRUMMA on the Linux cluster.
  [[nodiscard]] double overlap() const {
    if (time_comm <= 0.0) return 1.0;
    const double w = 1.0 - time_wait / time_comm;
    if (w < 0.0) return 0.0;
    if (w > 1.0) return 1.0;
    return w;
  }

  TraceCounters& operator+=(const TraceCounters& o) {
    time_compute += o.time_compute;
    gemm_calls += o.gemm_calls;
    flops += o.flops;
    time_comm += o.time_comm;
    time_wait += o.time_wait;
    time_noise += o.time_noise;
    bytes_shm += o.bytes_shm;
    bytes_remote += o.bytes_remote;
    bytes_msg += o.bytes_msg;
    gets += o.gets;
    puts += o.puts;
    sends += o.sends;
    recvs += o.recvs;
    direct_tasks += o.direct_tasks;
    copy_tasks += o.copy_tasks;
    buffer_bytes_peak = std::max(buffer_bytes_peak, o.buffer_bytes_peak);
    return *this;
  }
};

}  // namespace srumma
