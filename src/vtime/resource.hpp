#pragma once
// Serialized bandwidth resources for contention modeling.
//
// A Resource represents something transfers queue on: a node's NIC (one for
// egress, one for ingress) or a shared-memory domain's aggregate memory
// system.  book(ready, dur) reserves the earliest interval of length `dur`
// starting at or after `ready` that does not overlap any existing
// reservation, and returns its end time.
//
// First-fit gap placement (rather than FIFO tail placement) matters because
// rank threads execute at unrelated real-time speeds: a rank that runs far
// ahead in *real* time may book transfers with large virtual ready times
// before a slower rank books one with ready ~ 0.  Gap placement keeps the
// schedule governed by virtual time, so the modeled contention is
// independent of OS scheduling.  The invariant that matters for the paper's
// contention effects (Fig. 4) is conservation: reservations never overlap,
// so a resource never moves more bytes per virtual second than its
// bandwidth.

#include <map>
#include <mutex>

namespace srumma {

class Resource {
 public:
  /// Reserve the earliest feasible [start, start+duration) with
  /// start >= ready; returns the completion time (start + duration).
  double book(double ready, double duration) {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ += duration;
    if (duration <= 0.0) return ready;
    double start = ready;
    // Walk reservations that could overlap [start, start+duration).
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) start = prev->second;
    }
    while (it != intervals_.end() && it->first < start + duration) {
      start = it->second;
      ++it;
    }
    intervals_.emplace(start, start + duration);
    if (start + duration > horizon_) horizon_ = start + duration;
    return start + duration;
  }

  /// Latest reservation end (the resource's makespan so far).
  [[nodiscard]] double next_free() const {
    std::lock_guard<std::mutex> lock(mu_);
    return horizon_;
  }

  /// Total reserved busy time (for utilization reporting).
  [[nodiscard]] double busy_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    intervals_.clear();
    horizon_ = 0.0;
    busy_ = 0.0;
  }

 private:
  mutable std::mutex mu_;
  std::map<double, double> intervals_;  // start -> end, non-overlapping
  double horizon_ = 0.0;
  double busy_ = 0.0;
};

}  // namespace srumma
