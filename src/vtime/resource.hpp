#pragma once
// Serialized bandwidth resources for contention modeling.
//
// A Resource represents something transfers queue on: a node's NIC (one for
// egress, one for ingress) or a shared-memory domain's aggregate memory
// system.  book(ready, dur) reserves the earliest interval of length `dur`
// starting at or after `ready` that does not overlap any existing
// reservation, and returns its end time.
//
// First-fit gap placement (rather than FIFO tail placement) matters because
// ranks execute at unrelated real-time speeds: a rank that runs far ahead
// in *real* time may book transfers with large virtual ready times before a
// slower rank books one with ready ~ 0.  Gap placement keeps the schedule
// governed by virtual time, so the modeled contention is independent of OS
// scheduling.  The invariant that matters for the paper's contention
// effects (Fig. 4) is conservation: reservations never overlap, so a
// resource never moves more bytes per virtual second than its bandwidth.
//
// Implementation notes (the hot path of every modeled transfer):
//  - Reservations live in a flat sorted vector, not a std::map: bookings
//    are overwhelmingly near the tail (ready times ride the advancing
//    clocks), so the binary search + tail insert beats node allocation,
//    and the uncontended case appends without searching at all.
//  - Exact-adjacency coalescing: a reservation starting precisely where
//    its neighbor ends is merged.  This is behavior-preserving for
//    first-fit (no gap is created or destroyed) and keeps a saturated
//    resource at O(1) intervals instead of one per transfer.
//  - advance_frontier(W) additionally merges every interval ending at or
//    before a watermark W into one dead prefix.  That DOES swallow gaps,
//    so it is only sound when every future ready time is >= W; Team's
//    barrier provides exactly that watermark (all clocks sync past the
//    release), bounding memory on long runs.
//  - next_free()/busy_total() are served from relaxed atomics maintained
//    inside book(), so profilers and tests never take the booking lock.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace srumma {

class Resource {
 public:
  /// Reserve the earliest feasible [start, start+duration) with
  /// start >= ready; returns the completion time (start + duration).
  double book(double ready, double duration) {
    std::lock_guard<std::mutex> lock(mu_);
    busy_.store(busy_.load(std::memory_order_relaxed) + duration,
                std::memory_order_relaxed);
    if (duration <= 0.0) return ready;
    const double horizon = horizon_.load(std::memory_order_relaxed);

    // Fast path: nothing booked yet, or the request starts at/after the
    // horizon — append (or glue onto) the tail without searching.
    if (iv_.empty()) {
      iv_.push_back({ready, ready + duration});
      set_horizon(ready + duration);
      return ready + duration;
    }
    if (ready >= horizon) {
      if (iv_.back().end == ready) {
        iv_.back().end = ready + duration;
      } else {
        iv_.push_back({ready, ready + duration});
      }
      set_horizon(ready + duration);
      return ready + duration;
    }

    // General case: first-fit walk from the first interval that could
    // overlap [start, start+duration).
    double start = ready;
    std::size_t i = upper_bound(start);
    if (i > 0 && iv_[i - 1].end > start) start = iv_[i - 1].end;
    while (i < iv_.size() && iv_[i].start < start + duration) {
      start = iv_[i].end;
      ++i;
    }
    const double end = start + duration;
    const bool glue_prev = i > 0 && iv_[i - 1].end == start;
    const bool glue_next = i < iv_.size() && iv_[i].start == end;
    if (glue_prev && glue_next) {
      iv_[i - 1].end = iv_[i].end;
      iv_.erase(iv_.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (glue_prev) {
      iv_[i - 1].end = end;
    } else if (glue_next) {
      iv_[i].start = start;
    } else {
      iv_.insert(iv_.begin() + static_cast<std::ptrdiff_t>(i), {start, end});
    }
    if (end > horizon) set_horizon(end);
    return end;
  }

  /// Merge every reservation ending at or before `watermark` into one dead
  /// prefix interval.  ONLY sound when the caller guarantees all future
  /// ready times are >= watermark (see header comment); the prefix then
  /// acts as a single opaque "busy since the dawn of time" block that no
  /// future first-fit walk can place anything inside.
  void advance_frontier(double watermark) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    while (n < iv_.size() && iv_[n].end <= watermark) ++n;
    if (n <= 1) return;
    iv_[0].end = iv_[n - 1].end;
    iv_.erase(iv_.begin() + 1, iv_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  /// Latest reservation end (the resource's makespan so far).  Lock-free.
  [[nodiscard]] double next_free() const {
    return horizon_.load(std::memory_order_acquire);
  }

  /// Total reserved busy time (for utilization reporting).  Lock-free.
  [[nodiscard]] double busy_total() const {
    return busy_.load(std::memory_order_acquire);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    iv_.clear();
    horizon_.store(0.0, std::memory_order_release);
    busy_.store(0.0, std::memory_order_release);
  }

 private:
  struct Interval {
    double start;
    double end;
  };

  // First index whose interval starts after `t` (like map::upper_bound on
  // the start key).
  [[nodiscard]] std::size_t upper_bound(double t) const {
    std::size_t lo = 0, hi = iv_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (iv_[mid].start <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void set_horizon(double h) { horizon_.store(h, std::memory_order_release); }

  mutable std::mutex mu_;
  std::vector<Interval> iv_;  // sorted by start; non-overlapping; gaps > 0
  std::atomic<double> horizon_{0.0};  // published by book() under mu_
  std::atomic<double> busy_{0.0};     // published by book() under mu_
};

}  // namespace srumma
