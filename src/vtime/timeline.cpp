#include "vtime/timeline.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/error.hpp"

namespace srumma {

Timeline::Timeline(int nranks) {
  SRUMMA_REQUIRE(nranks >= 1, "timeline: need at least one rank");
  per_rank_.resize(static_cast<std::size_t>(nranks));
}

void Timeline::record(int rank, EventKind kind, double t0, double t1) {
  SRUMMA_REQUIRE(rank >= 0 && rank < ranks(), "timeline: rank out of range");
  if (t1 <= t0) return;  // zero-length spans carry no information
  per_rank_[static_cast<std::size_t>(rank)].push_back({kind, t0, t1});
}

const std::vector<TimelineEvent>& Timeline::events(int rank) const {
  SRUMMA_REQUIRE(rank >= 0 && rank < ranks(), "timeline: rank out of range");
  return per_rank_[static_cast<std::size_t>(rank)];
}

void Timeline::clear() {
  for (auto& v : per_rank_) v.clear();
}

void Timeline::print_gantt(std::ostream& os, double t0, double t1, int width,
                           int max_ranks) const {
  SRUMMA_REQUIRE(width >= 10, "timeline: width too small");
  if (t1 <= t0) {
    t0 = 0.0;
    t1 = 0.0;
    for (const auto& v : per_rank_)
      for (const auto& e : v) t1 = std::max(t1, e.t1);
    if (t1 <= 0.0) {
      os << "(timeline empty)\n";
      return;
    }
  }
  const double dt = (t1 - t0) / width;
  os << "timeline [" << t0 * 1e3 << " ms .. " << t1 * 1e3 << " ms], "
     << dt * 1e3 << " ms/cell  (C compute, G get, P put, W wait, N noise, "
        "B barrier, . idle)\n";
  const int shown = std::min(max_ranks, ranks());
  for (int r = 0; r < shown; ++r) {
    // Dominant kind per bucket by covered duration.
    std::vector<std::map<char, double>> buckets(
        static_cast<std::size_t>(width));
    for (const auto& e : per_rank_[static_cast<std::size_t>(r)]) {
      const double lo = std::max(e.t0, t0);
      const double hi = std::min(e.t1, t1);
      if (hi <= lo) continue;
      int b0 = static_cast<int>((lo - t0) / dt);
      int b1 = static_cast<int>((hi - t0) / dt);
      b0 = std::clamp(b0, 0, width - 1);
      b1 = std::clamp(b1, 0, width - 1);
      for (int b = b0; b <= b1; ++b) {
        const double cell_lo = t0 + b * dt;
        const double cover = std::min(hi, cell_lo + dt) - std::max(lo, cell_lo);
        if (cover > 0)
          buckets[static_cast<std::size_t>(b)][static_cast<char>(e.kind)] +=
              cover;
      }
    }
    os << (r < 10 ? " " : "") << r << " |";
    for (const auto& bucket : buckets) {
      char best = '.';
      double best_cover = 0.0;
      for (const auto& [kind, cover] : bucket) {
        if (cover > best_cover) {
          best = kind;
          best_cover = cover;
        }
      }
      os << best;
    }
    os << "|\n";
  }
  if (shown < ranks())
    os << "(" << ranks() - shown << " more ranks not shown)\n";
}

void Timeline::write_csv(std::ostream& os) const {
  os << "rank,kind,start,end\n";
  for (int r = 0; r < ranks(); ++r) {
    for (const auto& e : per_rank_[static_cast<std::size_t>(r)]) {
      os << r << "," << static_cast<char>(e.kind) << "," << e.t0 << ","
         << e.t1 << "\n";
    }
  }
}

}  // namespace srumma
