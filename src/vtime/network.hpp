#pragma once
// Shared contention state for one simulated machine: per-node NIC resources
// (separate ingress and egress, i.e. full-duplex links into the switch) and
// per-domain memory-system resources.

#include <memory>
#include <vector>

#include "machine/machine.hpp"
#include "vtime/resource.hpp"

namespace srumma {

class NetworkState {
 public:
  explicit NetworkState(const MachineModel& machine);

  /// Egress NIC resource of a node (data leaving the node).
  [[nodiscard]] Resource& nic_out(int node);
  /// Ingress NIC resource of a node (data arriving at the node).
  [[nodiscard]] Resource& nic_in(int node);
  /// Aggregate memory-system resource of a shared-memory domain.
  [[nodiscard]] Resource& domain_mem(int domain);

  void reset();

  /// Coalesce dead reservations (end <= watermark) on every resource; see
  /// Resource::advance_frontier for the soundness contract.  Called by
  /// Team's barrier with the release time, where all ranks are quiescent.
  void advance_frontier(double watermark);

 private:
  // unique_ptr so Resource (which holds a mutex) never moves.
  std::vector<std::unique_ptr<Resource>> nic_out_;
  std::vector<std::unique_ptr<Resource>> nic_in_;
  std::vector<std::unique_ptr<Resource>> domain_mem_;
};

}  // namespace srumma
