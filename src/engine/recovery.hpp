#pragma once
// Permanent-failure recovery orchestration (docs/FAULTS.md §7).
//
// When a kill is configured (SRUMMA_FAULT_KILL_*), srumma_multiply opens a
// RecoveryGuard for the multiply.  Before the kill hooks are armed, every
// rank deposits its task plan and tuned options here — so the plans of
// ranks that later fail-stop are always on record.  After the executor
// completes (survivors finished their plans, zombies drained and bailed),
// run() performs the team-wide recovery protocol:
//
//   1. pre-barrier — every in-flight operation is accounted;
//   2. uniform declaration — all ranks observe the tripped kill and declare
//      the domain dead (barrier-level failure detection: this also covers
//      the Barrier kill point, which fails no transfer, so the RMA
//      drain path alone would never detect it);
//   3. adoption — survivors claim the dead ranks' C-tile commit chains from
//      a shared claim board, seed a scratch tile with the buddy replica's
//      post-beta snapshot, replay the chain's block products in plan order
//      (the same operand acquisition and dgemm the owner would have run, so
//      the reconstructed tile is bitwise the fault-free result), and store
//      it back — the store redirects into the buddy replica, where
//      gather_to serves dead-domain blocks from.
//
// The guard registry is keyed by Team* with the same lifetime discipline as
// the engine's steal boards: srumma_multiply's entry barrier precedes every
// construction and collect_result's barriers follow every destruction, so
// two multiplies never share a session.

#include <map>
#include <memory>
#include <mutex>

#include "core/options.hpp"
#include "core/task_plan.hpp"
#include "dist/dist_matrix.hpp"

namespace srumma::engine {

class RecoveryGuard {
 public:
  explicit RecoveryGuard(Rank& me);
  ~RecoveryGuard();
  RecoveryGuard(const RecoveryGuard&) = delete;
  RecoveryGuard& operator=(const RecoveryGuard&) = delete;

  /// Record this rank's plan and tuned options for possible adoption.
  /// Must run before FaultPlane::arm_kills so a rank can never die
  /// undeposited.
  void deposit(Rank& me, const TaskPlan& plan, const SrummaOptions& opt);

  /// The recovery protocol above.  Collective: every rank (zombies
  /// included) must call it after its executor returns; when the kill
  /// never tripped it degenerates to one barrier.
  void run(Rank& me, DistMatrix& a, DistMatrix& b, DistMatrix& c);

 private:
  struct Session;
  static std::mutex& registry_mu();
  static std::map<Team*, std::shared_ptr<Session>>& registry();
  Team* team_;
  std::shared_ptr<Session> ses_;
};

}  // namespace srumma::engine
