#include "engine/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "blas/gemm.hpp"
#include "cache/block_cache.hpp"
#include "engine/engine.hpp"
#include "engine/operand.hpp"
#include "runtime/team.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace srumma::engine {

namespace {

struct Deposit {
  TaskPlan plan;
  SrummaOptions opt;
};

// One adoptable unit of lost work: a dead rank's C tile with its in-plan-
// order commit chain (indices into the dead rank's deposited plan).
struct LostChain {
  int dead_rank = -1;
  std::vector<std::size_t> task_idxs;
};

}  // namespace

struct RecoveryGuard::Session {
  std::mutex mu;
  std::map<int, Deposit> deposits;  // rank id -> plan + options
  std::vector<LostChain> chains;    // built once, after the declaration
  bool chains_built = false;
  int users = 0;
};

std::mutex& RecoveryGuard::registry_mu() {
  static auto* mu = new std::mutex();
  return *mu;
}

std::map<Team*, std::shared_ptr<RecoveryGuard::Session>>&
RecoveryGuard::registry() {
  static auto* m = new std::map<Team*, std::shared_ptr<Session>>();
  return *m;
}

RecoveryGuard::RecoveryGuard(Rank& me) : team_(&me.team()) {
  std::lock_guard<std::mutex> lk(registry_mu());
  std::shared_ptr<Session>& slot = registry()[team_];
  if (!slot) slot = std::make_shared<Session>();
  slot->users += 1;
  ses_ = slot;
}

RecoveryGuard::~RecoveryGuard() {
  std::lock_guard<std::mutex> lk(registry_mu());
  if (--ses_->users == 0) registry().erase(team_);
}

void RecoveryGuard::deposit(Rank& me, const TaskPlan& plan,
                            const SrummaOptions& opt) {
  std::lock_guard<std::mutex> lk(ses_->mu);
  ses_->deposits[me.id()] = Deposit{plan, opt};
}

namespace {

// Replay a contiguous range of lost chains from the buddy replicas.  Each
// chain's scratch tile starts from the replica's post-beta snapshot and
// accumulates the chain's block products in plan order — the exact operand
// values and op sequence the dead owner would have run — so every
// reconstructed tile is bitwise the fault-free result.  The final stores
// redirect into the buddy's replica (the dead ranks' own segments are
// unreachable), which is where gather_to contributes dead-domain blocks
// from.
//
// The whole range runs as ONE flat task stream through a single prefetch
// ring: operand fetches for up to `depth` upcoming tasks are in flight
// across chain boundaries while earlier tasks compute, seeds are all
// issued up front, and the tile stores drain together at the end — so the
// replay pays max(comm, compute) like the executors do, not per-chain
// round trips (this is what keeps the recovery-overhead bar in
// BENCH_chaos.json within reach).
void adopt_range(Rank& me, DistMatrix& a, DistMatrix& b, DistMatrix& c,
                 const std::vector<LostChain>& chains, std::size_t lo,
                 std::size_t hi, const std::map<int, Deposit>& deposits) {
  if (lo >= hi) return;
  const bool phantom = c.phantom();

  struct Tile {
    const LostChain* ch;
    const Deposit* dep;
    index_t gi, gj, cm, cn;
    Matrix scratch;
    MatrixView sv;
    PatchHandle seed;
    bool seeded;
    PatchHandle store;
  };
  struct Item {
    const Task* t;
    std::size_t tile;
    bool first, last;
  };
  std::vector<Tile> tiles;
  std::vector<Item> stream;
  tiles.reserve(hi - lo);
  for (std::size_t ci = lo; ci < hi; ++ci) {
    const LostChain& ch = chains[ci];
    SRUMMA_ASSERT(!ch.task_idxs.empty(), "recovery: empty commit chain");
    const Deposit& dep = deposits.at(ch.dead_rank);
    const Task& t0 = dep.plan.tasks[ch.task_idxs.front()];
    Tile tl;
    tl.ch = &ch;
    tl.dep = &dep;
    tl.gi = c.block_row_start(ch.dead_rank) + t0.ci;
    tl.gj = c.block_col_start(ch.dead_rank) + t0.cj;
    tl.cm = t0.cm;
    tl.cn = t0.cn;
    // The scratch seed is the replica's post-beta snapshot.  With beta == 0
    // that snapshot is identically zero — srumma_multiply skipped the C
    // mirror bytes entirely — so the seed is a local zero fill, no wire.
    tl.seeded = dep.opt.beta != 0.0;
    if (!phantom) {
      tl.scratch = Matrix(t0.cm, t0.cn);
      tl.sv = tl.scratch.block(0, 0, t0.cm, t0.cn);
      if (!tl.seeded) tl.sv.fill(0.0);
    }
    tiles.push_back(std::move(tl));
    const std::size_t tix = tiles.size() - 1;
    for (std::size_t k = 0; k < ch.task_idxs.size(); ++k)
      stream.push_back(Item{&dep.plan.tasks[ch.task_idxs[k]], tix, k == 0,
                            k + 1 == ch.task_idxs.size()});
  }
  // All seeds up front: the gets overlap each other, the operand prefetch
  // ring below, and the first chains' compute.  Transient faults on the
  // (live) buddy path retry like any executor fetch, at first use.
  for (Tile& tl : tiles)
    if (tl.seeded) tl.seed = c.fetch_nb(me, tl.gi, tl.gj, tl.cm, tl.cn, tl.sv);

  const std::size_t depth = std::min<std::size_t>(
      stream.size(),
      std::max<std::size_t>(
          4, static_cast<std::size_t>(tiles.front().dep->opt.lookahead) + 2));
  struct Inflight {
    OperandState sa;
    OperandState sb;
  };
  std::vector<Inflight> fl(depth);
  const auto issue = [&](std::size_t i) {
    const Task& t = *stream[i].t;
    const SrummaOptions& opt = tiles[stream[i].tile].dep->opt;
    Inflight& f = fl[i % depth];
    acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor, f.sa);
    acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor, f.sb);
  };
  for (std::size_t i = 0; i < depth; ++i) issue(i);

  std::optional<trace::SpanGuard> adopt_span;
  for (std::size_t ti = 0; ti < stream.size(); ++ti) {
    const Task& t = *stream[ti].t;
    Tile& tl = tiles[stream[ti].tile];
    const SrummaOptions& opt = tl.dep->opt;
    if (stream[ti].first) {
      adopt_span.emplace(me.tracer(), me.id(), trace::Phase::Adopt,
                         me.clock(),
                         static_cast<std::uint64_t>(tl.ch->dead_rank));
      for (int tries = 0; tl.seeded;) {
        if (c.try_wait(me, tl.seed)) break;
        SRUMMA_REQUIRE(
            ++tries <= 16,
            "recovery: replica seed fetch keeps failing after retries");
        me.trace().task_reissues += 1;
        tl.seed = c.fetch_nb(me, tl.gi, tl.gj, tl.cm, tl.cn, tl.sv);
      }
    }
    OperandState& sa = fl[ti % depth].sa;
    OperandState& sb = fl[ti % depth].sb;
    int reissues = 0;
    for (;;) {
      const bool af = sa.handle.pending;
      const bool bf = sb.handle.pending;
      if (af && !a.try_wait(me, sa.handle)) sa.failed = true;
      if (bf && !b.try_wait(me, sb.handle)) sb.failed = true;
      if (opt.verify_checksums) {
        if (af) verify_operand(me, a, sa);
        if (bf) verify_operand(me, b, sb);
      }
      finish_cache(me, a, sa, af, opt.verify_checksums);
      finish_cache(me, b, sb, bf, opt.verify_checksums);
      if (!sa.failed && !sb.failed) break;
      SRUMMA_REQUIRE(++reissues <= 16,
                     "recovery: adopted-task operand keeps failing after "
                     "retries");
      me.trace().task_reissues += 1;
      if (sa.failed)
        acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor, sa);
      if (sb.failed)
        acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor, sb);
    }
    if (!phantom) {
      if (a.rma().checker() != nullptr) {
        a.rma().declare_compute_read(me, sa.view.data(), sa.view.rows(),
                                     sa.view.cols(), sa.view.ld());
        b.rma().declare_compute_read(me, sb.view.data(), sb.view.rows(),
                                     sb.view.cols(), sb.view.ld());
      }
      // Scratch is adopter-local (like a thief's), so the C-tile write is
      // not declared against put epochs; the store below is.
      blas::gemm(opt.ta, opt.tb, opt.alpha, sa.view, sb.view, 1.0, tl.sv);
    }
    me.charge_gemm(t.cm, t.cn, t.kk, std::min(sa.rate_factor, sb.rate_factor));
    if (sa.direct && sb.direct) {
      me.trace().direct_tasks += 1;
    } else {
      me.trace().copy_tasks += 1;
    }
    me.trace().tasks_adopted += 1;
    if (ti + depth < stream.size()) issue(ti + depth);
    if (stream[ti].last) {
      // Tile complete: launch the store and move on — the next chain's
      // operands are already in the ring; all stores drain below.
      tl.store = c.store_nb(me, tl.gi, tl.gj, tl.cm, tl.cn, tl.sv);
      adopt_span.reset();
    }
  }
  for (Tile& tl : tiles) {
    for (int tries = 0;;) {
      if (c.try_wait(me, tl.store)) break;
      SRUMMA_REQUIRE(++tries <= 16,
                     "recovery: reconstructed-tile store keeps failing after "
                     "retries");
      me.trace().task_reissues += 1;
      tl.store = c.store_nb(me, tl.gi, tl.gj, tl.cm, tl.cn, tl.sv);
    }
  }
}

}  // namespace

void RecoveryGuard::run(Rank& me, DistMatrix& a, DistMatrix& b,
                        DistMatrix& c) {
  fault::FaultPlane* fp = me.team().faults();
  SRUMMA_REQUIRE(fp != nullptr && fp->kill_enabled(),
                 "recovery: run() needs a fault plane with a kill configured");
  // Pre-barrier: every survivor's plan is committed, every zombie has
  // drained.  This is also where a Barrier kill point trips.
  me.barrier();
  const int kd = fp->kill_domain();
  if (!fp->domain_killed(kd)) {
    // The configured kill point was never reached by this executor (e.g. a
    // Steal kill under the non-stealing pipeline): fault-free run.  The
    // barrier above keeps the collective sequence symmetric.
    return;
  }
  // Uniform barrier-level failure detection: every rank independently
  // observes the tripped kill and declares the domain dead, whether or not
  // any of its own transfers drained with DomainDead.
  fp->declare_dead(kd);
  if (trace::Tracer* tr = me.tracer())
    tr->instant(me.id(), trace::Phase::DomainDead, me.clock().now(),
                static_cast<std::uint64_t>(kd));
  // Make the declaration (and with it the replica redirect) team-wide
  // before any adoption traffic is issued.
  me.barrier();

  const MachineModel& mm = me.machine();
  const bool zombie = mm.domain_of(me.id()) == kd;

  // Adoption reads flow through the cooperative cache exactly like executor
  // operand fetches: several adopters of one dead rank share its A panels.
  cache::BlockCacheSet* cache_sets[2] = {a.rma().block_cache(),
                                         b.rma().block_cache()};
  if (cache_sets[1] == cache_sets[0]) cache_sets[1] = nullptr;
  // Size the recovery epoch for the whole replayed working set — every A/B
  // panel the dead ranks' plans touch — so each surviving domain fetches a
  // panel at most once (single-flight) and replays the rest from cache; an
  // LRU sized for the executor's rotating slots would thrash here.
  std::uint64_t cache_cap = 0;
  for (int r = 0; r < mm.total_ranks(); ++r) {
    const std::uint64_t ab =
        static_cast<std::uint64_t>(a.block_rows(r)) *
            static_cast<std::uint64_t>(a.block_cols(r)) +
        static_cast<std::uint64_t>(b.block_rows(r)) *
            static_cast<std::uint64_t>(b.block_cols(r));
    cache_cap = std::max(cache_cap, ab * sizeof(double));
  }
  cache_cap *= static_cast<std::uint64_t>(mm.domain_size()) * 2;
  // keep_warm: this epoch CONTINUES the multiply's read-only quiescent
  // period (the executor's end_epoch kept its entries for us), so the
  // panels survivors fetched during the run — including the dead ranks'
  // own A/B blocks, cached under the matrix-level region seq that replica
  // redirect preserves — serve adoption reads without touching the wire.
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->begin_epoch(me, cache_cap, /*keep_warm=*/true);

  if (!zombie) {
    // Build the chain list once: every dead rank's commit chains, in
    // deterministic (rank, tile) order.  chain_layout is the same grouping
    // the engine executes and the static analyzer certifies, so repaired
    // chains inherit the audited plan-order structure.
    {
      std::lock_guard<std::mutex> lk(ses_->mu);
      if (!ses_->chains_built) {
        for (const auto& [r, dep] : ses_->deposits) {
          if (mm.domain_of(r) != kd) continue;
          const ChainLayout cl = chain_layout(dep.plan);
          for (const std::vector<std::size_t>& chain : cl.tile_tasks) {
            LostChain lc;
            lc.dead_rank = r;
            lc.task_idxs = chain;
            ses_->chains.push_back(std::move(lc));
          }
        }
        // Order chains by global C tile COLUMN (then dead rank, then row):
        // every chain of one column replays against the same B panels, so
        // a contiguous range handed to one adopter domain needs only that
        // column slice of the dead B working set — instead of pulling the
        // whole dead B column range through the buddy domain's NIC once
        // per adopter domain.
        std::stable_sort(
            ses_->chains.begin(), ses_->chains.end(),
            [&](const LostChain& x, const LostChain& y) {
              const Task& tx = ses_->deposits.at(x.dead_rank)
                                   .plan.tasks[x.task_idxs.front()];
              const Task& ty = ses_->deposits.at(y.dead_rank)
                                   .plan.tasks[y.task_idxs.front()];
              const index_t xj = c.block_col_start(x.dead_rank) + tx.cj;
              const index_t yj = c.block_col_start(y.dead_rank) + ty.cj;
              if (xj != yj) return xj < yj;
              if (x.dead_rank != y.dead_rank) return x.dead_rank < y.dead_rank;
              return c.block_row_start(x.dead_rank) + tx.ci <
                     c.block_row_start(y.dead_rank) + ty.ci;
            });
        ses_->chains_built = true;
      }
    }
    // Deterministic affinity-weighted contiguous assignment over the
    // survivors (a real-time claim race would let one OS thread grab most
    // chains before the others arrive, piling every other survivor's
    // modeled recovery time onto one virtual clock — and every rank then
    // pays it at the final barrier; contiguous ranges also keep the
    // replay's virtual timing exactly reproducible).
    //
    // The weights encode where the dead ranks' panels already ARE.  The
    // replay's bottleneck is not compute but the buddy domain's NIC: every
    // domain that owns none of the dead working set refetches it from the
    // one replica holder, so adding survivors adds EGRESS on that single
    // pair of links instead of spreading load.  But most of the working
    // set is already resident elsewhere: a domain on the dead ranks' C
    // grid ROW fetched the same A panels during its own multiply (owner-
    // computes row locality) and still holds them — the warm cache epoch
    // keeps them servable — a domain on the dead grid COLUMN holds the B
    // panels the same way, and the buddy domain reads the replica segments
    // at shared-memory rates.  Chains go ONLY to those domains: a domain
    // with no resident copy of anything would contribute a little compute
    // but add a full working-set refetch to the replica-NIC queue, which
    // is the critical path.  The adopter set is never empty — the buddy
    // domain is alive by construction (buddy_offset is validated against
    // the domain count).
    const int buddy_dom = (kd + fp->buddy_offset()) % mm.num_domains();
    std::vector<int> dead_rows, dead_cols;
    for (int r = 0; r < mm.total_ranks(); ++r) {
      if (mm.domain_of(r) != kd) continue;
      const auto [pi, pj] = c.grid().coords_of(r);
      dead_rows.push_back(pi);
      dead_cols.push_back(pj);
    }
    const auto rank_weight = [&](int r) {
      const int d = mm.domain_of(r);
      int w = 0;
      if (d == buddy_dom) w += 3;  // replica is domain-local
      const auto [pi, pj] = c.grid().coords_of(r);
      bool row = false, col = false;
      for (const int dr : dead_rows) row = row || dr == pi;
      for (const int dc : dead_cols) col = col || dc == pj;
      if (row) w += 3;  // dead A panels warm in my domain's cache
      if (col) w += 2;  // dead B panels warm (smaller share of the bytes)
      return w;
    };
    int total_w = 0;
    int my_lo_w = -1;
    int my_w = 0;
    for (int r = 0; r < mm.total_ranks(); ++r) {
      if (mm.domain_of(r) == kd) continue;
      const int w = rank_weight(r);
      if (r == me.id()) {
        my_lo_w = total_w;
        my_w = w;
      }
      total_w += w;
    }
    SRUMMA_ASSERT(my_lo_w >= 0, "recovery: survivor not in survivor list");
    const std::size_t nc = ses_->chains.size();
    const std::size_t lo = nc * static_cast<std::size_t>(my_lo_w) /
                           static_cast<std::size_t>(total_w);
    const std::size_t hi = nc * static_cast<std::size_t>(my_lo_w + my_w) /
                           static_cast<std::size_t>(total_w);
    adopt_range(me, a, b, c, ses_->chains, lo, hi, ses_->deposits);
  }

  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->end_epoch(me);
  // Repairs published before anyone gathers or reuses the matrices.
  me.barrier();
}

}  // namespace srumma::engine
