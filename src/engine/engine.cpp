#include "engine/engine.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "blas/gemm.hpp"
#include "cache/block_cache.hpp"
#include "engine/operand.hpp"
#include "fault/fault_plane.hpp"
#include "runtime/abortable_wait.hpp"
#include "runtime/team.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace srumma::engine {

namespace {

// ---------------------------------------------------------------------------
// Shared per-team state: one steal board per shared-memory domain.
//
// Ranks are OS threads sharing the process, so the board is plain shared
// memory under a mutex — the modeled cost of the steal protocol is charged
// separately (operand fetches on the thief's clock, one intra-domain tile
// copy each way).  The condition variable is registered with the Team's
// abort list so a rank parked on it wakes promptly when a peer throws.
// ---------------------------------------------------------------------------

// One stealable task posted by its owner.  All claim/handback fields are
// guarded by the owning domain's mutex; `task`, `task_idx`, `victim`,
// `tile`, `pos` and `c_tile` are immutable after the owner registers its
// board.
struct StolenTask {
  Task task;
  std::size_t task_idx = 0;  // owner's plan index (trace arg)
  int victim = -1;
  int tile = -1;  // owner tile id, indexes the owner's commit chain
  int pos = 0;    // position in that tile's in-plan-order commit chain
  MatrixView c_tile;  // owner's C tile (empty in phantom mode)
  // -- claim state, under the domain mutex ---------------------------------
  int thief = -1;  // -1 free; the owner self-claims at issue time
  bool done = false;
  double publish_vt = 0.0;
  Matrix result;  // thief's finished tile copy (empty in phantom mode)
};

// Per-rank state a domain mate may touch: the commit chains a thief waits
// on, and the pool of stealable tasks.  Heap-held via shared_ptr so a
// thief's reference stays valid even if the owner unwinds on an abort.
struct RankBoard {
  std::vector<int> commits;       // tile -> products committed so far
  std::vector<double> commit_vt;  // tile -> virtual time of latest commit
  std::vector<StolenTask> descs;  // stable: never resized after registration
  std::deque<std::size_t> pool;   // indices into descs, not yet thief-claimed
};

struct DomainBoard {
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, std::shared_ptr<RankBoard>> boards;  // rank id -> board
  // Ranks that have registered this multiply.  Monotonic, unlike
  // boards.size(), which dips again when a fast rank finishes and
  // deregisters — the registration rendezvous must not key on that.
  int arrived = 0;
};

struct TeamEngine {
  std::vector<std::unique_ptr<DomainBoard>> domains;  // by domain id
  std::vector<std::uint64_t> abort_cv_ids;            // registry slots
  int users = 0;
};

std::mutex g_registry_mu;
std::map<Team*, std::shared_ptr<TeamEngine>>& registry() {
  static auto* m = new std::map<Team*, std::shared_ptr<TeamEngine>>();
  return *m;
}

// Rendezvous on the per-team engine state.  Sound without extra barriers:
// srumma_multiply's entry barrier precedes every construction and the
// collect_result barriers follow every destruction, so two multiplies never
// share a TeamEngine and a Team address is never reused while an entry for
// it exists (guards unwind on exceptions too).
class TeamEngineGuard {
 public:
  explicit TeamEngineGuard(Rank& me) : team_(&me.team()) {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    std::shared_ptr<TeamEngine>& slot = registry()[team_];
    if (!slot) {
      slot = std::make_shared<TeamEngine>();
      const int nd = team_->machine().num_domains();
      for (int d = 0; d < nd; ++d) {
        slot->domains.push_back(std::make_unique<DomainBoard>());
        slot->abort_cv_ids.push_back(
            team_->add_abort_cv(&slot->domains.back()->cv));
      }
    }
    slot->users += 1;
    eng_ = slot;
  }
  ~TeamEngineGuard() {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    if (--eng_->users == 0) {
      for (const std::uint64_t id : eng_->abort_cv_ids)
        team_->remove_abort_cv(id);
      registry().erase(team_);
    }
  }
  TeamEngineGuard(const TeamEngineGuard&) = delete;
  TeamEngineGuard& operator=(const TeamEngineGuard&) = delete;

  [[nodiscard]] DomainBoard& domain(int d) {
    return *eng_->domains[static_cast<std::size_t>(d)];
  }

 private:
  Team* team_;
  std::shared_ptr<TeamEngine> eng_;
};

// Model one intra-domain tile copy (steal handback traffic), mirroring the
// same-domain branch of RmaRuntime::transfer and the cache's
// consume_shared: the copying CPU pays latency + per-rank copy time and
// queues on the domain's aggregate memory system.  No fault draw — the
// copy is process-local, not a transport op.
void charge_shm_copy(Rank& me, std::uint64_t bytes) {
  const MachineModel& mm = me.machine();
  VClock& clk = me.clock();
  const double t0 = clk.now();
  const double dbytes = static_cast<double>(bytes);
  const double dur = dbytes / mm.shm_bw;
  const double ready = t0 + mm.shm_latency;
  const double agg = me.team()
                         .network()
                         .domain_mem(me.domain())
                         .book(ready, dbytes / mm.domain_agg_bw());
  clk.sync_to(std::max(ready + dur, agg));
  me.trace().time_comm += dur;
  me.trace().bytes_shm += bytes;
}

void copy_tile(MatrixView dst, ConstMatrixView src) {
  for (index_t j = 0; j < dst.cols(); ++j)
    for (index_t i = 0; i < dst.rows(); ++i) dst(i, j) = src(i, j);
}

}  // namespace

ChainLayout chain_layout(const TaskPlan& plan) {
  const std::vector<Task>& tasks = plan.tasks;
  const std::size_t n_tasks = tasks.size();
  ChainLayout cl;
  cl.task_tile.resize(n_tasks);
  cl.task_pos.resize(n_tasks);
  std::map<std::pair<index_t, index_t>, int> tile_of;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const auto key = std::make_pair(tasks[i].ci, tasks[i].cj);
    const auto [it, fresh] =
        tile_of.try_emplace(key, static_cast<int>(cl.tile_tasks.size()));
    if (fresh) cl.tile_tasks.emplace_back();
    cl.task_tile[i] = it->second;
    cl.task_pos[i] =
        static_cast<int>(cl.tile_tasks[static_cast<std::size_t>(it->second)]
                             .size());
    cl.tile_tasks[static_cast<std::size_t>(it->second)].push_back(i);
  }
  return cl;
}

std::vector<std::size_t> stealable_tasks(const TaskPlan& plan,
                                         int domain_size) {
  std::vector<std::size_t> out;
  if (domain_size <= 1) return out;
  for (std::size_t i = 0; i < plan.tasks.size(); ++i)
    if (!plan.tasks[i].in_domain()) out.push_back(i);
  return out;
}

bool selected(EngineMode mode) {
  if (mode == EngineMode::On) return true;
  if (mode == EngineMode::Off) return false;
  const char* env = std::getenv("SRUMMA_ENGINE");
  return env != nullptr && *env != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

void run_plan(Rank& me, DistMatrix& a, DistMatrix& b, DistMatrix& c,
              const SrummaOptions& opt, int lookahead, const TaskPlan& plan) {
  const MachineModel& mm = me.machine();
  trace::Tracer* tr = me.tracer();
  const bool phantom = c.phantom();
  const std::vector<Task>& tasks = plan.tasks;
  const std::size_t n_tasks = tasks.size();

  TeamEngineGuard eng(me);
  DomainBoard& dom = eng.domain(me.domain());

  // Fail-stop hooks: a configured kill trips at this rank's next prefetch
  // issue, chain advance or steal attempt.  Once killed the rank is a
  // zombie: it bails at a task boundary, drains in-flight state and keeps
  // joining collectives.  The trip notifies the domain cv because mates may
  // be parked on it (predecessor commits, handbacks) waiting on work this
  // domain will now never publish — every such predicate has a killed
  // escape.
  fault::FaultPlane* fp = me.team().faults();
  const bool kill_active = fp != nullptr && fp->kill_enabled();
  const auto killed_now = [&] {
    return kill_active && fp->domain_killed(me.domain());
  };
  const auto trip = [&](fault::KillPoint p) {
    if (kill_active &&
        fp->reach_kill_point(p, me.domain(), me.clock().now())) {
      dom.cv.notify_all();
    }
  };

  // -- task graph setup ------------------------------------------------------
  // Group tasks by C tile; each tile's products commit in plan order (the
  // bitwise-identity invariant), execution order across tiles is free.
  // chain_layout is shared with the static analyzer, which certifies these
  // chains acyclic and deadlock-free before any run (docs/ANALYSIS.md).
  const ChainLayout chains = chain_layout(plan);
  const std::vector<std::vector<std::size_t>>& tile_tasks = chains.tile_tasks;
  const std::vector<int>& task_tile = chains.task_tile;
  const std::vector<int>& task_pos = chains.task_pos;
  const int n_tiles = chains.tiles();

  // Operand slots, deduplicated by patch identity: the task graph hands
  // each distinct patch one owner, shared by every consumer and released
  // when the last consumer commits.  (The a_reuse ordering policy still
  // shapes the plan order — and thus how long a patch stays live — but
  // dedup here is structural, not an ordering accident.)
  struct Slot {
    OperandState st;
    DistMatrix* mat = nullptr;  // which matrix the slot's patch is of
    int refs = 0;      // consumers not yet committed or stolen away
    int inflight = 0;  // consumers issued and not yet committed
    bool issued = false;
    bool waited = false;
    double ready_vt = 0.0;
  };
  std::deque<Slot> slots;  // stable storage
  using PatchKey = std::array<index_t, 4>;
  std::map<PatchKey, int> a_slot_of;
  std::map<PatchKey, int> b_slot_of;
  std::vector<int> a_slot(n_tasks);
  std::vector<int> b_slot(n_tasks);
  const auto slot_for = [&](std::map<PatchKey, int>& m, DistMatrix& mat,
                            index_t i0, index_t j0, index_t pm, index_t pn) {
    const auto [it, fresh] =
        m.try_emplace(PatchKey{i0, j0, pm, pn}, static_cast<int>(slots.size()));
    if (fresh) {
      slots.emplace_back();
      slots.back().mat = &mat;
    }
    return it->second;
  };
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const Task& t = tasks[i];
    a_slot[i] = slot_for(a_slot_of, a, t.a_i0, t.a_j0, t.a_m, t.a_n);
    b_slot[i] = slot_for(b_slot_of, b, t.b_i0, t.b_j0, t.b_m, t.b_n);
    slots[static_cast<std::size_t>(a_slot[i])].refs += 1;
    slots[static_cast<std::size_t>(b_slot[i])].refs += 1;
  }

  // -- steal board registration ----------------------------------------------
  // Stealable = any task with an out-of-domain operand (the thief refetches
  // operands itself, so only remote-fetch work is worth exporting).  On
  // single-domain machines every task is in-domain and the board stays
  // empty.
  auto board = std::make_shared<RankBoard>();
  board->commits.assign(static_cast<std::size_t>(n_tiles), 0);
  board->commit_vt.assign(static_cast<std::size_t>(n_tiles), 0.0);
  std::vector<std::ptrdiff_t> desc_of_task(n_tasks, -1);
  for (const std::size_t i : stealable_tasks(plan, mm.domain_size())) {
    StolenTask d;
    d.task = tasks[i];
    d.task_idx = i;
    d.victim = me.id();
    d.tile = task_tile[i];
    d.pos = task_pos[i];
    if (!phantom)
      d.c_tile = c.local_view(me).block(tasks[i].ci, tasks[i].cj,
                                        tasks[i].cm, tasks[i].cn);
    desc_of_task[i] = static_cast<std::ptrdiff_t>(board->descs.size());
    board->descs.push_back(std::move(d));
  }
  {
    std::lock_guard<std::mutex> lk(dom.mu);
    for (std::size_t i = 0; i < board->descs.size(); ++i)
      board->pool.push_back(i);
    dom.boards[me.id()] = board;
    dom.arrived += 1;
  }
  dom.cv.notify_all();
  struct BoardDereg {
    DomainBoard* dom;
    int id;
    ~BoardDereg() {
      std::lock_guard<std::mutex> lk(dom->mu);
      dom->boards.erase(id);
    }
  } board_dereg{&dom, me.id()};

  // Registration rendezvous: wait until every domain mate's board is up.
  // Rank threads race in real time independently of their virtual clocks
  // (a single-CPU host can run one rank's whole plan inside a scheduler
  // timeslice), so without this rendezvous the boards of domain mates may
  // never coexist and no steal could ever be observed.  Every rank reaches
  // this point — the dispatch in srumma_multiply is uniform across the
  // team and nothing above blocks — so the wait is deadlock-free; a peer
  // that throws earlier aborts the team, which wakes this cv.
  {
    int domain_ranks = 0;
    for (int r = 0; r < me.team().size(); ++r)
      if (mm.domain_of(r) == me.domain()) ++domain_ranks;
    std::unique_lock<std::mutex> lk(dom.mu);
    park_until(lk, dom.cv, [&] {
      return me.team().aborted() || dom.arrived == domain_ranks;
    });
    if (me.team().aborted())
      throw Error("engine: team aborted during board rendezvous");
  }

  // -- cooperative block cache epoch (same policy as the static pipeline) ----
  cache::BlockCacheSet* cache_sets[2] = {a.rma().block_cache(),
                                         b.rma().block_cache()};
  if (cache_sets[1] == cache_sets[0]) cache_sets[1] = nullptr;
  const std::uint64_t cache_default_cap =
      static_cast<std::uint64_t>(mm.domain_size()) *
      (2 * static_cast<std::uint64_t>(lookahead) + 3) *
      std::max(static_cast<std::uint64_t>(plan.max_a_m) *
                   static_cast<std::uint64_t>(plan.max_a_n),
               static_cast<std::uint64_t>(plan.max_b_m) *
                   static_cast<std::uint64_t>(plan.max_b_n)) *
      sizeof(double);
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->begin_epoch(me, cache_default_cap);

  // -- executor state --------------------------------------------------------
  // Issue window: how many own tasks may hold operand slots at once.  The
  // pipeline's lookahead bounds it so both executors run under comparable
  // buffer budgets; blocking mode (lookahead 0) degenerates to
  // issue-one-execute-one.
  const std::size_t window = static_cast<std::size_t>(lookahead) + 1;
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  const std::size_t reissue_cap = 4 * n_tasks + 16;
  std::size_t reissues = 0;

  const auto patch_bytes = [](const Task& t, bool is_a) {
    return is_a ? static_cast<std::uint64_t>(t.a_m) *
                      static_cast<std::uint64_t>(t.a_n) * sizeof(double)
                : static_cast<std::uint64_t>(t.b_m) *
                      static_cast<std::uint64_t>(t.b_n) * sizeof(double);
  };

  const auto acquire_slot = [&](DistMatrix& mat, Slot& s, const Task& t,
                                bool is_a) {
    const std::uint64_t before = s.st.cap_bytes;
    if (is_a) {
      acquire(me, mat, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor, s.st);
    } else {
      acquire(me, mat, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor, s.st);
    }
    live_bytes += s.st.cap_bytes - before;
    peak_bytes = std::max(peak_bytes, live_bytes);
    s.issued = true;
    s.waited = false;
  };

  // Drop a slot's buffer (budget pressure, or last consumer gone).  Only
  // legal once no issued consumer depends on it; a later consumer simply
  // re-acquires.
  const auto release_slot = [&](Slot& s) {
    SRUMMA_ASSERT(s.inflight == 0 && !s.st.cache_ref.active(),
                  "engine: releasing an operand slot still in use");
    live_bytes -= s.st.cap_bytes;
    s.st = OperandState{};
    s.issued = false;
    s.waited = false;
  };

  const auto deref_slot = [&](int si) {
    Slot& s = slots[static_cast<std::size_t>(si)];
    s.refs -= 1;
    if (s.refs == 0 && s.issued) release_slot(s);
  };

  // Wait/verify/finish one slot for the consumer that got there first;
  // later consumers just sync their clock to the slot's ready time (the
  // bytes exist only from that point in virtual time).
  const auto wait_slot = [&](DistMatrix& mat, Slot& s) {
    if (s.waited) {
      const double now = me.clock().now();
      if (s.ready_vt > now) {
        me.trace().time_wait += s.ready_vt - now;
        me.clock().sync_to(s.ready_vt);
        if (tr != nullptr)
          tr->span(me.id(), trace::Phase::Wait, now, s.ready_vt);
      }
      return;
    }
    const bool fetched = s.st.handle.pending;
    if (fetched && !mat.try_wait(me, s.st.handle)) s.st.failed = true;
    if (opt.verify_checksums && fetched) verify_operand(me, mat, s.st);
    finish_cache(me, mat, s.st, fetched, opt.verify_checksums);
    s.waited = true;
    s.ready_vt = me.clock().now();
  };

  std::size_t committed = 0;  // products landed in my C block (incl. handbacks)
  std::vector<std::size_t> inflight;  // issued, uncommitted own tasks
  std::size_t next = 0;               // next plan index to consider issuing

  const auto commit = [&](int tile) {
    {
      std::lock_guard<std::mutex> lk(dom.mu);
      board->commits[static_cast<std::size_t>(tile)] += 1;
      board->commit_vt[static_cast<std::size_t>(tile)] = me.clock().now();
    }
    dom.cv.notify_all();
    ++committed;
  };

  // Earliest virtual time the task's operands can all be consumed —
  // known at issue time because RMA completions are computed when the get
  // is posted.
  const auto ready_estimate = [&](std::size_t idx) {
    double r = me.clock().now();
    for (const int si : {a_slot[idx], b_slot[idx]}) {
      const Slot& s = slots[static_cast<std::size_t>(si)];
      if (s.waited) {
        r = std::max(r, s.ready_vt);
      } else if (s.st.handle.pending) {
        r = std::max(r, s.st.handle.completion());
      }
    }
    return r;
  };

  // -- thief side ------------------------------------------------------------
  // Claim a stealable task from a domain mate, fetch its operands on our
  // own clock and fault stream, seed a scratch tile with the owner's
  // current C tile (after its predecessor products committed), run the
  // product, and publish the finished tile for the owner to commit.
  const auto try_steal = [&](bool allow_ahead) -> bool {
    trip(fault::KillPoint::Steal);
    if (killed_now()) return false;
    StolenTask* d = nullptr;
    std::shared_ptr<RankBoard> vb;
    {
      std::lock_guard<std::mutex> lk(dom.mu);
      // Scan mates starting past my own id so thieves spread out.  Prefer
      // commit-ready tasks (the next product of their tile's chain) — the
      // predecessor sync below is then free.  Only the post-plan drain may
      // claim ahead-of-head tasks (a victim's early chain positions are
      // often its in-domain, unstealable work): the predecessor wait then
      // blocks, which is only deadlock-free once nobody can be waiting on
      // OUR commits — two mid-plan ranks blocking on each other's frozen
      // chains would deadlock.  Claimed entries are lazily discarded.
      for (const bool ready_only : {true, false}) {
        if (!ready_only && !allow_ahead) break;
        auto it = dom.boards.upper_bound(me.id());
        for (std::size_t step = 0; step < dom.boards.size() && d == nullptr;
             ++step, ++it) {
          if (it == dom.boards.end()) it = dom.boards.begin();
          if (it->first == me.id()) continue;
          RankBoard& rb = *it->second;
          for (std::size_t p = rb.pool.size(); p-- > 0;) {
            const std::size_t di = rb.pool[p];
            StolenTask& cand = rb.descs[di];
            if (cand.thief >= 0) {
              rb.pool.erase(rb.pool.begin() + static_cast<std::ptrdiff_t>(p));
              continue;
            }
            if (ready_only &&
                rb.commits[static_cast<std::size_t>(cand.tile)] < cand.pos)
              continue;
            d = &cand;
            d->thief = me.id();
            vb = it->second;
            rb.pool.erase(rb.pool.begin() + static_cast<std::ptrdiff_t>(p));
            break;
          }
        }
        if (d != nullptr) break;
      }
    }
    if (d == nullptr) return false;

    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::TaskSteal, me.clock().now(),
                  d->task_idx);
    trace::SpanGuard steal_span(tr, me.id(), trace::Phase::Steal, me.clock(),
                                d->task_idx);
    const Task& t = d->task;
    OperandState sa;
    OperandState sb;
    acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor, sa);
    acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor, sb);
    for (;;) {
      const bool af = sa.handle.pending;
      const bool bf = sb.handle.pending;
      if (af && !a.try_wait(me, sa.handle)) sa.failed = true;
      if (bf && !b.try_wait(me, sb.handle)) sb.failed = true;
      if (opt.verify_checksums) {
        if (af) verify_operand(me, a, sa);
        if (bf) verify_operand(me, b, sb);
      }
      finish_cache(me, a, sa, af, opt.verify_checksums);
      finish_cache(me, b, sb, bf, opt.verify_checksums);
      if (!sa.failed && !sb.failed) break;
      // Fail-stop mid-steal: both handles were just drained; discard the
      // claim (the victim is a domain mate, so it is dead too).
      if (killed_now()) return false;
      SRUMMA_REQUIRE(++reissues <= reissue_cap,
                     "engine: operand reissue budget exhausted — transfers "
                     "keep failing after RMA retries");
      me.trace().task_reissues += 1;
      if (tr != nullptr)
        tr->instant(me.id(), trace::Phase::TaskRearm, me.clock().now(),
                    d->task_idx);
      if (sa.failed)
        acquire(me, a, t.a_i0, t.a_j0, t.a_m, t.a_n, opt.shm_flavor, sa);
      if (sb.failed)
        acquire(me, b, t.b_i0, t.b_j0, t.b_m, t.b_n, opt.shm_flavor, sb);
    }
    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::TaskReady, me.clock().now(),
                  d->task_idx);

    // Wait (real time) for the predecessor products of the owner's tile,
    // then sync our clock to that commit: the tile bytes we copy exist only
    // from that point in virtual time.  The owner cannot advance the tile
    // PAST us (our claim gates its chain at exactly d->pos), so once the
    // predicate holds the victim's C tile is frozen until our handback
    // commits.  Progress is guaranteed: for any tile, the earliest
    // uncommitted position is either owner-executable or held by a thief
    // whose predicate is already satisfied.
    {
      std::unique_lock<std::mutex> lk(dom.mu);
      park_until(lk, dom.cv, [&] {
        return me.team().aborted() || killed_now() ||
               vb->commits[static_cast<std::size_t>(d->tile)] >= d->pos;
      });
      if (me.team().aborted())
        throw Error("engine: team aborted during steal");
      // Fail-stop while parked: the victim (a domain mate, dead with us)
      // will never commit the predecessor; discard the stolen work.
      if (killed_now() &&
          vb->commits[static_cast<std::size_t>(d->tile)] < d->pos)
        return false;
      const double pred_vt = vb->commit_vt[static_cast<std::size_t>(d->tile)];
      if (pred_vt > me.clock().now()) me.clock().sync_to(pred_vt);
    }

    const std::uint64_t tile_bytes = static_cast<std::uint64_t>(t.cm) *
                                     static_cast<std::uint64_t>(t.cn) *
                                     sizeof(double);
    charge_shm_copy(me, tile_bytes);
    Matrix scratch;
    if (!phantom) {
      scratch = Matrix(t.cm, t.cn);
      copy_tile(scratch.block(0, 0, t.cm, t.cn), d->c_tile);
      // Same kernel, operand values and beta=1 accumulation as the owner
      // would run, so the handed-back tile is bitwise what the owner would
      // have computed.  Operand reads are declared like any compute; the
      // C-tile traffic is engine-internal (mutex-synchronized scratch), so
      // it is not declared against the owner's write epochs.
      if (a.rma().checker() != nullptr) {
        a.rma().declare_compute_read(me, sa.view.data(), sa.view.rows(),
                                     sa.view.cols(), sa.view.ld());
        b.rma().declare_compute_read(me, sb.view.data(), sb.view.rows(),
                                     sb.view.cols(), sb.view.ld());
      }
      MatrixView sv = scratch.block(0, 0, t.cm, t.cn);
      blas::gemm(opt.ta, opt.tb, opt.alpha, sa.view, sb.view, 1.0, sv);
    }
    me.charge_gemm(t.cm, t.cn, t.kk, std::min(sa.rate_factor, sb.rate_factor));
    if (sa.direct && sb.direct) {
      me.trace().direct_tasks += 1;
    } else {
      me.trace().copy_tasks += 1;
    }
    me.trace().tasks_stolen += 1;
    {
      std::lock_guard<std::mutex> lk(dom.mu);
      d->result = std::move(scratch);
      d->publish_vt = me.clock().now();
      d->done = true;
    }
    dom.cv.notify_all();
    return true;
  };

  // -- owner side ------------------------------------------------------------

  // Issue one own task: claim it against thieves, fetch whatever operand
  // slots are not already live.  Returns false when a thief got there
  // first (the task will come back as a handback at its commit position).
  const auto issue = [&](std::size_t idx) -> bool {
    trip(fault::KillPoint::Prefetch);
    if (killed_now()) return false;  // fail-stop: no new fetches
    if (desc_of_task[idx] >= 0) {
      std::lock_guard<std::mutex> lk(dom.mu);
      StolenTask& d = board->descs[static_cast<std::size_t>(desc_of_task[idx])];
      if (d.thief >= 0) {
        // Stolen away: the thief fetches its own operands.
        deref_slot(a_slot[idx]);
        deref_slot(b_slot[idx]);
        return false;
      }
      d.thief = me.id();  // self-claim; thieves skip it from now on
    }
    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::TaskIssue, me.clock().now(), idx);
    const Task& t = tasks[idx];
    Slot& sa = slots[static_cast<std::size_t>(a_slot[idx])];
    Slot& sb = slots[static_cast<std::size_t>(b_slot[idx])];
    if (!sa.issued) acquire_slot(a, sa, t, true);
    if (!sb.issued) acquire_slot(b, sb, t, false);
    sa.inflight += 1;
    sb.inflight += 1;
    inflight.push_back(idx);
    return true;
  };

  // Buffer-budget pressure valve: bytes the next issue would add, and the
  // early release of idle slots to make room (mirrors the pipeline's
  // eviction — a later consumer refetches).
  const auto issue_cost = [&](std::size_t idx) {
    std::uint64_t add = 0;
    const Slot& sa = slots[static_cast<std::size_t>(a_slot[idx])];
    const Slot& sb = slots[static_cast<std::size_t>(b_slot[idx])];
    if (!sa.issued) add += patch_bytes(tasks[idx], true);
    if (!sb.issued && b_slot[idx] != a_slot[idx])
      add += patch_bytes(tasks[idx], false);
    return add;
  };
  const auto relieve_budget = [&](std::size_t idx, std::uint64_t add) {
    if (opt.max_buffer_bytes == 0) return;
    for (Slot& s : slots) {
      if (live_bytes + add <= opt.max_buffer_bytes) return;
      if (&s == &slots[static_cast<std::size_t>(a_slot[idx])] ||
          &s == &slots[static_cast<std::size_t>(b_slot[idx])])
        continue;
      if (s.issued && s.waited && s.inflight == 0 && s.st.cap_bytes > 0)
        release_slot(s);
    }
  };

  // Execute one own head task.  Returns true when the product committed,
  // false when a failed operand was re-armed in place (the task keeps its
  // position; fresh fetches draw fresh fault decisions).
  const auto execute = [&](std::size_t idx) -> bool {
    const Task& t = tasks[idx];
    trace::SpanGuard task_span(tr, me.id(), trace::Phase::Task, me.clock(),
                               idx);
    Slot& sa = slots[static_cast<std::size_t>(a_slot[idx])];
    Slot& sb = slots[static_cast<std::size_t>(b_slot[idx])];
    wait_slot(a, sa);
    wait_slot(b, sb);
    if (sa.st.failed || sb.st.failed) {
      SRUMMA_REQUIRE(reissues < reissue_cap,
                     "engine: operand reissue budget exhausted — transfers "
                     "keep failing after RMA retries");
      ++reissues;
      me.trace().task_reissues += 1;
      if (tr != nullptr)
        tr->instant(me.id(), trace::Phase::TaskRearm, me.clock().now(), idx);
      if (sa.st.failed) acquire_slot(a, sa, t, true);
      if (sb.st.failed) acquire_slot(b, sb, t, false);
      return false;
    }
    if (tr != nullptr)
      tr->instant(me.id(), trace::Phase::TaskReady, me.clock().now(), idx);
    if (!phantom) {
      MatrixView c_tile = c.local_view(me).block(t.ci, t.cj, t.cm, t.cn);
      if (a.rma().checker() != nullptr) {
        a.rma().declare_compute_read(me, sa.st.view.data(), sa.st.view.rows(),
                                     sa.st.view.cols(), sa.st.view.ld());
        b.rma().declare_compute_read(me, sb.st.view.data(), sb.st.view.rows(),
                                     sb.st.view.cols(), sb.st.view.ld());
        c.rma().declare_compute_write(me, c_tile.data(), c_tile.rows(),
                                      c_tile.cols(), c_tile.ld());
      }
      blas::gemm(opt.ta, opt.tb, opt.alpha, sa.st.view, sb.st.view, 1.0,
                 c_tile);
    }
    me.charge_gemm(t.cm, t.cn, t.kk,
                   std::min(sa.st.rate_factor, sb.st.rate_factor));
    if (sa.st.direct && sb.st.direct) {
      me.trace().direct_tasks += 1;
    } else {
      me.trace().copy_tasks += 1;
    }
    me.trace().engine_tasks += 1;
    commit(task_tile[idx]);
    sa.inflight -= 1;
    sb.inflight -= 1;
    deref_slot(a_slot[idx]);
    deref_slot(b_slot[idx]);
    inflight.erase(std::find(inflight.begin(), inflight.end(), idx));
    return true;
  };

  // Commit one stolen task's handed-back tile at its plan position.
  const auto handback = [&](StolenTask& d) {
    trace::SpanGuard span(tr, me.id(), trace::Phase::Handback, me.clock(),
                          d.task_idx);
    double pub = 0.0;
    {
      std::unique_lock<std::mutex> lk(dom.mu);
      park_until(lk, dom.cv, [&] {
        return me.team().aborted() || killed_now() || d.done;
      });
      if (me.team().aborted())
        throw Error("engine: team aborted waiting for a handback");
      // Fail-stop while parked: the thief (a domain mate, dead with us)
      // will never publish; the main loop bails right after.
      if (killed_now() && !d.done) return;
      pub = d.publish_vt;
    }
    if (pub > me.clock().now()) me.clock().sync_to(pub);
    const std::uint64_t tile_bytes = static_cast<std::uint64_t>(d.task.cm) *
                                     static_cast<std::uint64_t>(d.task.cn) *
                                     sizeof(double);
    charge_shm_copy(me, tile_bytes);
    if (!phantom) {
      if (c.rma().checker() != nullptr)
        c.rma().declare_compute_write(me, d.c_tile.data(), d.c_tile.rows(),
                                      d.c_tile.cols(), d.c_tile.ld());
      copy_tile(d.c_tile, d.result.block(0, 0, d.task.cm, d.task.cn));
      d.result = Matrix{};
    }
    commit(d.tile);
  };

  // -- main loop -------------------------------------------------------------
  while (committed < n_tasks) {
    trip(fault::KillPoint::Chain);
    if (killed_now()) break;  // fail-stop at a task boundary: drain below
    // Top up the issue window (skipping tasks stolen away).
    while (inflight.size() < window && next < n_tasks) {
      const std::uint64_t add = issue_cost(next);
      if (opt.max_buffer_bytes > 0 &&
          live_bytes + add > opt.max_buffer_bytes) {
        relieve_budget(next, add);
        if (live_bytes + add > opt.max_buffer_bytes && !inflight.empty())
          break;  // retry once something commits
      }
      issue(next);
      ++next;
    }
    if (killed_now()) break;

    // Candidate heads: for every tile, the next uncommitted product — an
    // own issued task, a pending/finished handback, or not yet issued.
    std::ptrdiff_t best_own = -1;
    double best_ready = 0.0;
    for (const std::size_t idx : inflight) {
      if (task_pos[idx] !=
          board->commits[static_cast<std::size_t>(task_tile[idx])])
        continue;  // behind an uncommitted predecessor (possibly stolen)
      const double r = ready_estimate(idx);
      if (best_own < 0 || r < best_ready) {
        best_own = static_cast<std::ptrdiff_t>(idx);
        best_ready = r;
      }
    }
    StolenTask* ready_hb = nullptr;
    bool pending_hb = false;
    {
      std::lock_guard<std::mutex> lk(dom.mu);
      for (int tile = 0; tile < n_tiles; ++tile) {
        const auto& chain = tile_tasks[static_cast<std::size_t>(tile)];
        const int pos = board->commits[static_cast<std::size_t>(tile)];
        if (static_cast<std::size_t>(pos) >= chain.size()) continue;
        const std::size_t head = chain[static_cast<std::size_t>(pos)];
        const std::ptrdiff_t di = desc_of_task[head];
        if (di < 0) continue;
        StolenTask& d = board->descs[static_cast<std::size_t>(di)];
        if (d.thief < 0 || d.thief == me.id()) continue;
        if (d.done) {
          ready_hb = &d;
          break;
        }
        pending_hb = true;
      }
    }

    // Steal when idle, or when the best own candidate's operands are so
    // far in the virtual future that a whole stolen product fits in the
    // gap (the completion is known at issue time, so this is a real gap,
    // not a guess).
    const bool idle = best_own < 0 && ready_hb == nullptr;
    const bool far_head =
        best_own >= 0 &&
        best_ready >
            me.clock().now() +
                mm.dgemm.time(tasks[static_cast<std::size_t>(best_own)].cm,
                              tasks[static_cast<std::size_t>(best_own)].cn,
                              tasks[static_cast<std::size_t>(best_own)].kk);
    if ((idle || far_head) && try_steal(false)) continue;

    if (ready_hb != nullptr) {
      handback(*ready_hb);
      continue;
    }
    if (best_own >= 0) {
      execute(static_cast<std::size_t>(best_own));
      continue;
    }
    if (pending_hb) {
      // Nothing to run until a thief publishes; park on the domain cv.
      // Only current chain heads count: `done` stays true after a handback
      // commits, so scanning all descs would wake on stale completions and
      // busy-spin.  Heads are stable while we sleep (only our own commits
      // advance them), so the one transition to wait for is a pending
      // head's thief publishing.
      std::unique_lock<std::mutex> lk(dom.mu);
      park_until(lk, dom.cv, [&] {
        if (me.team().aborted() || killed_now()) return true;
        for (int tile = 0; tile < n_tiles; ++tile) {
          const auto& chain = tile_tasks[static_cast<std::size_t>(tile)];
          const int pos = board->commits[static_cast<std::size_t>(tile)];
          if (static_cast<std::size_t>(pos) >= chain.size()) continue;
          const std::ptrdiff_t di =
              desc_of_task[chain[static_cast<std::size_t>(pos)]];
          if (di < 0) continue;
          const StolenTask& d = board->descs[static_cast<std::size_t>(di)];
          if (d.thief >= 0 && d.thief != me.id() && d.done) return true;
        }
        return false;
      });
      if (me.team().aborted())
        throw Error("engine: team aborted waiting for a handback");
      continue;
    }
    SRUMMA_ASSERT(false, "engine: no runnable task and nothing in flight");
  }

  // Own work done: drain whatever stealable work domain mates still have.
  // (try_steal refuses immediately once this domain is killed.)
  while (try_steal(true)) {
  }

  if (killed_now()) {
    // Zombie drain: complete in-flight handles and release cache refs so
    // the domain's cache/checker state stays balanced; committed products
    // stay committed (the ledger counts them once on this rank), and the
    // uncommitted remainder is adopted by survivors from the replicas.
    for (Slot& s : slots) {
      if (s.mat == nullptr) continue;
      const bool fetched = s.st.handle.pending;
      if (fetched) s.mat->try_wait(me, s.st.handle);
      finish_cache(me, *s.mat, s.st, fetched, false);
    }
    dom.cv.notify_all();  // wake any mate still parked on this domain's cv
  }

  me.trace().buffer_bytes_peak =
      std::max(me.trace().buffer_bytes_peak, peak_bytes);

  // With a kill configured, keep the domain's entries warm through the
  // close: RecoveryGuard::run (which always follows run_plan then) reopens
  // the epoch as a continuation of this one — A/B stay read-only until the
  // result is collected — so adoption replays panels from cache instead of
  // refetching them.  kill_enabled() is rank-uniform; the tripped state is
  // not yet, so it must not steer the drop.
  fault::FaultPlane* fplane = me.team().faults();
  const bool keep_warm = fplane != nullptr && fplane->kill_enabled();
  for (cache::BlockCacheSet* cset : cache_sets)
    if (cset != nullptr) cset->end_epoch(me, keep_warm);
}

}  // namespace srumma::engine
